#!/usr/bin/env bash
# Repo lint driver — the static-analysis gate of scripts/ci.sh (DESIGN.md
# §11, §16).
#
#   scripts/lint.sh [--format-check] [--all] [build-dir]
#
# Stages:
#   1. clang-format check over every tracked C++ file (--dry-run -Werror).
#   2. clang-tidy (config in .clang-tidy, including the iam-* checks from the
#      tools/tidy plugin when it has been built), driven by
#      <build-dir>/compile_commands.json (default build dir: build). By
#      default only files changed relative to the merge-base with origin/main
#      are tidied — headers map to their sibling .cc — so an interactive run
#      takes seconds; --all restores the full sweep (the clang CI lane uses
#      it). When the plugin is present its selftest runs too.
#   3. Repo-specific bans, enforced with plain grep so they run everywhere:
#        - std::rand / srand            (all randomness goes through iam::Rng)
#        - naked `new`                  (owning allocations use make_unique;
#                                        the rare exception carries a NOLINT
#                                        with a reason)
#        - printf to stdout in src/     (library code reports via Status;
#                                        stderr via the IAM_CHECK macros only)
#        - default-seeded local Rng in src/ (hidden nondeterminism; every Rng
#                                        is constructed from an explicit seed)
#        - std::mutex & friends in src/ outside src/util/ (locking goes
#                                        through the annotated util::Mutex so
#                                        clang -Wthread-safety can see it)
#        - std::chrono::system_clock / raw steady_clock::now() outside
#          src/util/ + src/obs/       (all timing goes through util::Stopwatch
#                                        so traces/latency metrics share one
#                                        monotonic clock)
#        - reinterpret_cast in src/ outside the two audited type-punning
#          sites (util/serialize and serve/protocol — DESIGN.md §16)
#        - NOLINT without a (check-name) qualifier and a trailing ": reason"
#          (a bare NOLINT silences everything forever with no audit trail)
#      A line containing NOLINT is exempt from the other grep bans.
#
# --format-check runs stage 1 only.
#
# clang-format / clang-tidy missing from the host is a skip by default (the
# gcc-only container still gets stage 3); set IAM_CI_REQUIRE_CLANG=1 to turn
# a missing tool into a hard failure (the clang CI lane does).
set -euo pipefail
cd "$(dirname "$0")/.."

mode="all"
tidy_scope="changed"
while [[ "${1:-}" == --* ]]; do
  case "$1" in
    --format-check) mode="format" ;;
    --all) tidy_scope="all" ;;
    *) echo "lint: unknown flag $1" >&2; exit 2 ;;
  esac
  shift
done
build_dir="${1:-build}"
require_clang="${IAM_CI_REQUIRE_CLANG:-0}"
failed=0

skip_or_die() {  # <tool>
  if [[ "${require_clang}" == "1" ]]; then
    echo "lint: FATAL: $1 not found and IAM_CI_REQUIRE_CLANG=1" >&2
    exit 1
  fi
  echo "lint: $1 not found; stage skipped (IAM_CI_REQUIRE_CLANG=1 enforces)"
}

mapfile -t cxx_files < <(git ls-files -- \
  'src/**/*.h' 'src/**/*.cc' 'tests/*.cc' 'bench/*.h' 'bench/*.cc' \
  'examples/*.cc' 'fuzz/*.h' 'fuzz/*.cc')

# --- Stage 1: format check. ------------------------------------------------
if command -v clang-format >/dev/null 2>&1; then
  echo "=== lint: clang-format check (${#cxx_files[@]} files) ==="
  if ! clang-format --dry-run -Werror "${cxx_files[@]}"; then
    echo "lint: formatting drift; run: clang-format -i \$(git ls-files '*.h' '*.cc')" >&2
    failed=1
  fi
else
  skip_or_die clang-format
fi
if [[ "${mode}" == "format" ]]; then
  exit "${failed}"
fi

# --- Stage 2: clang-tidy. --------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
    echo "lint: FATAL: ${build_dir}/compile_commands.json missing;" \
         "configure first: cmake -B ${build_dir} -S ." >&2
    exit 1
  fi

  # The iam-* plugin, when built (tools/tidy; needs clang-tidy dev headers).
  tidy_load=()
  plugin="$(ls -t "${build_dir}/tools/tidy/libiam_tidy_checks.so" \
              build*/tools/tidy/libiam_tidy_checks.so 2>/dev/null \
              | head -n 1 || true)"
  if [[ -n "${plugin}" ]]; then
    tidy_load=(--load="${plugin}")
    echo "=== lint: iam-* plugin selftest (${plugin}) ==="
    if ! tools/tidy/selftest.sh "${plugin}"; then
      failed=1
    fi
  fi

  mapfile -t tidy_all < <(printf '%s\n' "${cxx_files[@]}" | grep '\.cc$')
  tidy_files=()
  if [[ "${tidy_scope}" == "all" ]]; then
    tidy_files=("${tidy_all[@]}")
  else
    # Changed-files scope: everything touched since the merge-base with
    # origin/main (committed, staged, unstaged, untracked); a changed header
    # maps to its sibling .cc so its inline code still gets tidied.
    base="$(git merge-base origin/main HEAD 2>/dev/null || true)"
    [[ -n "${base}" ]] || base="HEAD"
    mapfile -t changed < <( {
        git diff --name-only "${base}" -- '*.h' '*.cc'
        git ls-files --others --exclude-standard -- '*.h' '*.cc'
      } | sort -u)
    declare -A want=()
    for f in "${changed[@]}"; do
      case "${f}" in
        *.cc) want["${f}"]=1 ;;
        *.h) [[ -f "${f%.h}.cc" ]] && want["${f%.h}.cc"]=1 ;;
      esac
    done
    for f in "${tidy_all[@]}"; do
      [[ -n "${want[${f}]:-}" ]] && tidy_files+=("${f}")
    done
  fi

  if [[ "${#tidy_files[@]}" -eq 0 ]]; then
    echo "=== lint: clang-tidy — no changed files (use --all for a sweep) ==="
  else
    echo "=== lint: clang-tidy (${#tidy_files[@]} files," \
         "scope: ${tidy_scope}) ==="
    if ! printf '%s\n' "${tidy_files[@]}" | \
         xargs -P "$(nproc 2>/dev/null || echo 2)" -n 8 \
           clang-tidy -p "${build_dir}" --quiet "${tidy_load[@]}"; then
      echo "lint: clang-tidy findings above — fix or NOLINT(check): reason" >&2
      failed=1
    fi
  fi
else
  skip_or_die clang-tidy
fi

# --- Stage 3: repo-specific bans (always on). ------------------------------
echo "=== lint: repo-specific checks ==="

# ban <description> <extended-regex> <path...>
ban() {
  local why="$1" pattern="$2"
  shift 2
  local hits
  hits="$(grep -rnE "${pattern}" "$@" --include='*.h' --include='*.cc' \
            | grep -v 'NOLINT' || true)"
  if [[ -n "${hits}" ]]; then
    echo "lint: banned pattern (${why}):" >&2
    echo "${hits}" >&2
    failed=1
  fi
}

ban "std::rand/srand — use iam::Rng with an explicit seed" \
    '\bstd::rand\b|\bsrand\(' src tests bench examples fuzz
ban "naked new in library code — use std::make_unique" \
    '(^|[^:[:alnum:]_])new [A-Za-z_:]+ ?[[({]' src
ban "printf to stdout in library code — return Status, log via IAM_CHECK" \
    '(^|[^[:alnum:]_])printf\(' src
ban "default-seeded local Rng in library code — pass an explicit seed" \
    '\bRng [[:alnum:]_]+;' src/*/*.cc
ban "raw std::mutex outside util/ — use the annotated util::Mutex" \
    'std::mutex|std::lock_guard|std::unique_lock|std::scoped_lock' \
    src/ar src/bucketize src/core src/data src/estimator src/gmm src/join \
    src/nn src/obs src/optimizer src/query src/serve
ban "raw clocks outside util/ & obs/ — time through util::Stopwatch" \
    'std::chrono::system_clock|steady_clock::now\(' \
    src/ar src/bucketize src/core src/data src/estimator src/gmm src/join \
    src/nn src/optimizer src/query src/serve tests bench examples

# reinterpret_cast is confined to the two audited type-punning sites
# (DESIGN.md §16): the serialize helpers and the wire-protocol codec. A new
# cast anywhere else in src/ must be routed through them (or argued into the
# allowlist here).
reinterpret_hits="$(grep -rnE '\breinterpret_cast' src \
    --include='*.h' --include='*.cc' \
  | grep -vE '^src/(util/serialize|serve/protocol)\.(h|cc):' \
  | grep -v 'NOLINT' || true)"
if [[ -n "${reinterpret_hits}" ]]; then
  echo "lint: banned pattern (reinterpret_cast outside util/serialize +" \
       "serve/protocol — type punning is confined to the audited" \
       "helpers):" >&2
  echo "${reinterpret_hits}" >&2
  failed=1
fi

# Every NOLINT must name its check(s) and carry a same-line ": reason" —
# `NOLINT(check-name): why` or `NOLINTNEXTLINE(check-name): why`. Bare
# NOLINTs silence every check forever with no audit trail.
nolint_hits="$(grep -rn 'NOLINT' src tests bench examples fuzz tools \
    --include='*.h' --include='*.cc' \
  | grep -vE 'NOLINT(NEXTLINE)?\([A-Za-z0-9.,* -]+\): [A-Za-z]' || true)"
if [[ -n "${nolint_hits}" ]]; then
  echo "lint: banned pattern (NOLINT without '(check-name): reason' —" \
       "suppressions must name the check and justify themselves):" >&2
  echo "${nolint_hits}" >&2
  failed=1
fi

if [[ "${failed}" == "0" ]]; then
  echo "lint OK"
fi
exit "${failed}"
