#!/usr/bin/env bash
# Repo lint driver — the static-analysis gate of scripts/ci.sh (DESIGN.md §11).
#
#   scripts/lint.sh [--format-check] [build-dir]
#
# Stages:
#   1. clang-format check over every tracked C++ file (--dry-run -Werror).
#   2. clang-tidy (config in .clang-tidy) over src/ tests/ bench/ examples/,
#      driven by <build-dir>/compile_commands.json (default build dir: build).
#   3. Repo-specific bans, enforced with plain grep so they run everywhere:
#        - std::rand / srand            (all randomness goes through iam::Rng)
#        - naked `new`                  (owning allocations use make_unique;
#                                        the rare exception carries a NOLINT
#                                        with a reason)
#        - printf to stdout in src/     (library code reports via Status;
#                                        stderr via the IAM_CHECK macros only)
#        - default-seeded local Rng in src/ (hidden nondeterminism; every Rng
#                                        is constructed from an explicit seed)
#        - std::mutex & friends in src/ outside src/util/ (locking goes
#                                        through the annotated util::Mutex so
#                                        clang -Wthread-safety can see it)
#        - std::chrono::system_clock / raw steady_clock::now() outside
#          src/util/ + src/obs/       (all timing goes through util::Stopwatch
#                                        so traces/latency metrics share one
#                                        monotonic clock)
#      A line containing NOLINT is exempt from the grep bans.
#
# --format-check runs stage 1 only.
#
# clang-format / clang-tidy missing from the host is a skip by default (the
# gcc-only container still gets stage 3); set IAM_CI_REQUIRE_CLANG=1 to turn
# a missing tool into a hard failure (the clang CI lane does).
set -euo pipefail
cd "$(dirname "$0")/.."

mode="all"
if [[ "${1:-}" == "--format-check" ]]; then
  mode="format"
  shift
fi
build_dir="${1:-build}"
require_clang="${IAM_CI_REQUIRE_CLANG:-0}"
failed=0

skip_or_die() {  # <tool>
  if [[ "${require_clang}" == "1" ]]; then
    echo "lint: FATAL: $1 not found and IAM_CI_REQUIRE_CLANG=1" >&2
    exit 1
  fi
  echo "lint: $1 not found; stage skipped (IAM_CI_REQUIRE_CLANG=1 enforces)"
}

mapfile -t cxx_files < <(git ls-files -- \
  'src/**/*.h' 'src/**/*.cc' 'tests/*.cc' 'bench/*.h' 'bench/*.cc' \
  'examples/*.cc')

# --- Stage 1: format check. ------------------------------------------------
if command -v clang-format >/dev/null 2>&1; then
  echo "=== lint: clang-format check (${#cxx_files[@]} files) ==="
  if ! clang-format --dry-run -Werror "${cxx_files[@]}"; then
    echo "lint: formatting drift; run: clang-format -i \$(git ls-files '*.h' '*.cc')" >&2
    failed=1
  fi
else
  skip_or_die clang-format
fi
if [[ "${mode}" == "format" ]]; then
  exit "${failed}"
fi

# --- Stage 2: clang-tidy. --------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
    echo "lint: FATAL: ${build_dir}/compile_commands.json missing;" \
         "configure first: cmake -B ${build_dir} -S ." >&2
    exit 1
  fi
  echo "=== lint: clang-tidy (${build_dir}/compile_commands.json) ==="
  mapfile -t tidy_files < <(printf '%s\n' "${cxx_files[@]}" | grep '\.cc$')
  if ! printf '%s\n' "${tidy_files[@]}" | \
       xargs -P "$(nproc 2>/dev/null || echo 2)" -n 8 \
         clang-tidy -p "${build_dir}" --quiet; then
    echo "lint: clang-tidy findings above — fix or NOLINT(check) with a reason" >&2
    failed=1
  fi
else
  skip_or_die clang-tidy
fi

# --- Stage 3: repo-specific bans (always on). ------------------------------
echo "=== lint: repo-specific checks ==="

# ban <description> <extended-regex> <path...>
ban() {
  local why="$1" pattern="$2"
  shift 2
  local hits
  hits="$(grep -rnE "${pattern}" "$@" --include='*.h' --include='*.cc' \
            | grep -v 'NOLINT' || true)"
  if [[ -n "${hits}" ]]; then
    echo "lint: banned pattern (${why}):" >&2
    echo "${hits}" >&2
    failed=1
  fi
}

ban "std::rand/srand — use iam::Rng with an explicit seed" \
    '\bstd::rand\b|\bsrand\(' src tests bench examples
ban "naked new in library code — use std::make_unique" \
    '(^|[^:[:alnum:]_])new [A-Za-z_:]+ ?[[({]' src
ban "printf to stdout in library code — return Status, log via IAM_CHECK" \
    '(^|[^[:alnum:]_])printf\(' src
ban "default-seeded local Rng in library code — pass an explicit seed" \
    '\bRng [[:alnum:]_]+;' src/*/*.cc
ban "raw std::mutex outside util/ — use the annotated util::Mutex" \
    'std::mutex|std::lock_guard|std::unique_lock|std::scoped_lock' \
    src/ar src/bucketize src/core src/data src/estimator src/gmm src/join \
    src/nn src/obs src/optimizer src/query src/serve
ban "raw clocks outside util/ & obs/ — time through util::Stopwatch" \
    'std::chrono::system_clock|steady_clock::now\(' \
    src/ar src/bucketize src/core src/data src/estimator src/gmm src/join \
    src/nn src/optimizer src/query src/serve tests bench examples

if [[ "${failed}" == "0" ]]; then
  echo "lint OK"
fi
exit "${failed}"
