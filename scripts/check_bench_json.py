#!/usr/bin/env python3
"""Schema check for the committed BENCH_*.json files (ci.sh stage 8b).

The bench JSON files at the repo root are commitments, not just logs: other
sections of the repo (DESIGN.md overhead numbers, the query-log acceptance
bound) cite them. This checker fails when a committed file loses a section,
a required field, or violates a committed bound:

  * BENCH_inference.json querylog_overhead.overhead_pct must stay <= 2.0
    (the always-on query-log overhead acceptance bound, DESIGN.md §17);
  * BENCH_serve.json serve_querylog records_match / draws_match must be true
    (ring records == accepted requests, ring draws == sampler counter);
  * BENCH_serve.json serve_adapt must show the closed adaptation loop
    (DESIGN.md §18) recovering: zero failed requests, post-retrain p90
    q-error within 2x the pre-shift p90, feedback ingest <= 2% on the
    served p50.

Usage: python3 scripts/check_bench_json.py [repo-root]
"""

import json
import os
import sys

QUERYLOG_OVERHEAD_BOUND_PCT = 2.0
ADAPT_RECOVERY_RATIO_BOUND = 2.0
ADAPT_FEEDBACK_OVERHEAD_BOUND_PCT = 2.0


def fail(msg):
    print(f"check_bench_json: FATAL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(obj, path, keys):
    for key in keys:
        if key not in obj:
            fail(f"{path}: missing required key '{key}'")


def check_inference(root):
    path = os.path.join(root, "BENCH_inference.json")
    with open(path) as f:
        data = json.load(f)
    require(data, path, ["table7", "thread_scaling", "pooled_sampler",
                         "querylog_overhead", "iam_metrics"])

    table7 = data["table7"]
    require(table7, f"{path}:table7", ["batch_sizes", "rows"])
    for row in table7["rows"]:
        require(row, f"{path}:table7.rows", ["estimator", "ms_per_query"])
        if len(row["ms_per_query"]) != len(table7["batch_sizes"]):
            fail(f"{path}: table7 row '{row['estimator']}' has "
                 f"{len(row['ms_per_query'])} timings for "
                 f"{len(table7['batch_sizes'])} batch sizes")

    for row in data["thread_scaling"]["rows"]:
        require(row, f"{path}:thread_scaling.rows",
                ["estimator", "ms_per_query", "bit_identical"])
        if not row["bit_identical"]:
            fail(f"{path}: thread scaling for '{row['estimator']}' is not "
                 "bit-identical across thread counts")

    pooled = data["pooled_sampler"]
    require(pooled, f"{path}:pooled_sampler", ["rows"])
    modes = {row["mode"]: row for row in pooled["rows"]}
    for mode in ("legacy", "pooled", "pooled+prefix", "adaptive"):
        if mode not in modes:
            fail(f"{path}: pooled_sampler is missing mode '{mode}'")
    for mode in ("pooled", "pooled+prefix"):
        if not modes[mode]["bit_identical_to_legacy"]:
            fail(f"{path}: pooled mode '{mode}' lost bit-exactness vs legacy")

    overhead = data["querylog_overhead"]
    require(overhead, f"{path}:querylog_overhead",
            ["batch_size", "mode", "base_ms_per_query",
             "diagnosed_ms_per_query", "overhead_pct"])
    pct = overhead["overhead_pct"]
    if pct > QUERYLOG_OVERHEAD_BOUND_PCT:
        fail(f"{path}: query-log overhead {pct:.3f}% exceeds the committed "
             f"{QUERYLOG_OVERHEAD_BOUND_PCT}% bound")
    print(f"  BENCH_inference.json OK (query-log overhead {pct:.3f}%)")


def check_serve(root):
    path = os.path.join(root, "BENCH_serve.json")
    with open(path) as f:
        data = json.load(f)
    require(data, path, ["serve_sweep", "serve_batching", "serve_hot_swap",
                         "serve_pooled", "serve_shards", "serve_nodelay",
                         "serve_querylog", "serve_adapt", "iam_metrics"])

    swap = data["serve_hot_swap"]
    require(swap, f"{path}:serve_hot_swap",
            ["version_before", "version_after", "failed"])
    if swap["failed"] != 0:
        fail(f"{path}: hot-swap run lost {swap['failed']} requests")

    querylog = data["serve_querylog"]
    require(querylog, f"{path}:serve_querylog",
            ["accepted", "ring_records", "records_match", "sampler_draws",
             "ring_draws", "draws_match"])
    if not querylog["records_match"]:
        fail(f"{path}: serve_querylog ring records "
             f"({querylog['ring_records']}) != accepted requests "
             f"({querylog['accepted']})")
    if not querylog["draws_match"]:
        fail(f"{path}: serve_querylog ring draws ({querylog['ring_draws']}) "
             f"!= iam_sampler_samples_total delta "
             f"({querylog['sampler_draws']})")
    adapt = data["serve_adapt"]
    require(adapt, f"{path}:serve_adapt",
            ["qerror_p90_preshift", "qerror_p90_shift",
             "qerror_p90_corrected", "qerror_p90_retrained",
             "recovery_ratio", "retrains", "failed",
             "feedback_overhead_pct"])
    if adapt["failed"] != 0:
        fail(f"{path}: adaptation run lost {adapt['failed']} requests")
    if adapt["retrains"] < 1:
        fail(f"{path}: serve_adapt drift trigger never retrained")
    ratio = adapt["recovery_ratio"]
    if ratio > ADAPT_RECOVERY_RATIO_BOUND:
        fail(f"{path}: post-retrain p90 q-error is {ratio:.3f}x the "
             f"pre-shift p90, above the committed "
             f"{ADAPT_RECOVERY_RATIO_BOUND}x recovery bound")
    fb_pct = adapt["feedback_overhead_pct"]
    if fb_pct > ADAPT_FEEDBACK_OVERHEAD_BOUND_PCT:
        fail(f"{path}: feedback ingest costs {fb_pct:.3f}% on the served "
             f"p50, above the committed "
             f"{ADAPT_FEEDBACK_OVERHEAD_BOUND_PCT}% bound")
    print(f"  BENCH_serve.json OK (querylog reconciled: "
          f"{querylog['ring_records']} records, "
          f"{querylog['ring_draws']} draws; adapt recovery "
          f"{ratio:.3f}x, feedback overhead {fb_pct:.3f}%)")


def check_kernels(root):
    path = os.path.join(root, "BENCH_kernels.json")
    with open(path) as f:
        data = json.load(f)
    require(data, path, ["benchmarks", "context"])
    if not data["benchmarks"]:
        fail(f"{path}: benchmarks list is empty")
    print(f"  BENCH_kernels.json OK ({len(data['benchmarks'])} benchmarks)")


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else \
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    check_inference(root)
    check_serve(root)
    check_kernels(root)
    print("check_bench_json: OK")


if __name__ == "__main__":
    main()
