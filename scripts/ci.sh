#!/usr/bin/env bash
# CI entry point (DESIGN.md §11). Stages, in order:
#
#   1. lint        scripts/lint.sh — format + clang-tidy (when clang tooling
#                  is installed) + the always-on repo-specific grep bans.
#   2. default     portable build, full ctest.
#   3. native      IAM_NATIVE=ON (-march=native kernels), full ctest. The
#                  default/native pair is the bit-compatibility contract of
#                  DESIGN.md §10 — exact equality in the first, tolerance-
#                  based in the second — so both must stay green.
#   4. ubsan       IAM_SANITIZE=undefined, quick gate (ctest -LE slow).
#   5. werror      clang-only: -Wthread-safety -Werror build (IAM_WERROR=ON),
#                  no test run — this is the lock-discipline gate; breaking
#                  an annotation fails the build itself.
#   6. tsan-obs    TSan quick gate over the concurrency-sensitive tests
#                  (obs_test, race_test, threadpool_test) — the sharded
#                  metrics and per-thread trace buffers must stay race-free.
#   7. obs smoke   model_cli demo --metrics=FILE: asserts the Prometheus
#                  export is non-empty and has no duplicate metric names.
#   8. sanitize    optional, IAM_CI_SANITIZE=thread|address: quick gate under
#                  that sanitizer on top of the above.
#
# Sanitizer configs run `ctest -LE slow` (the `slow` label marks the
# multi-second training/VBGMM cases) so a full CI round stays bounded; the
# default and native configs always run everything.
#
# clang is optional: stages 1 and 5 degrade to a skip on a gcc-only host.
# Set IAM_CI_REQUIRE_CLANG=1 (the clang CI lane does) to turn a missing
# clang/clang-tidy/clang-format into a hard failure.
#
# Usage: scripts/ci.sh [build-dir-prefix]
#   scripts/ci.sh                          # build-ci-* build trees
#   IAM_CI_SANITIZE=thread scripts/ci.sh   # adds a TSan quick-gate config
#   IAM_CI_REQUIRE_CLANG=1 scripts/ci.sh   # clang lane: lint + werror enforced
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-ci}"
jobs="$(nproc 2>/dev/null || echo 2)"
require_clang="${IAM_CI_REQUIRE_CLANG:-0}"

# run_config <dir> <ctest-args...> -- <cmake-args...>
run_config() {
  local dir="$1"
  shift
  local ctest_args=()
  while [[ "$1" != "--" ]]; do
    ctest_args+=("$1")
    shift
  done
  shift
  echo "=== configure ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "=== build ${dir} ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== ctest ${dir} ${ctest_args[*]} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}" "${ctest_args[@]}"
}

# --- Stage 1: lint. --------------------------------------------------------
# Needs a compile_commands.json for clang-tidy; the default config below
# writes one, so configure it first and lint against it.
echo "=== configure ${prefix}-default (for compile_commands.json) ==="
cmake -B "${prefix}-default" -S . >/dev/null
scripts/lint.sh "${prefix}-default"

# --- Stages 2-3: portable + native, full suite. ----------------------------
run_config "${prefix}-default" --
run_config "${prefix}-native" -- -DIAM_NATIVE=ON

# --- Stage 4: UBSan quick gate. --------------------------------------------
run_config "${prefix}-ubsan" -LE slow -- -DIAM_SANITIZE=undefined

# --- Stage 5: thread-safety -Werror build (clang only). --------------------
if command -v clang++ >/dev/null 2>&1; then
  echo "=== configure ${prefix}-werror (clang, -Wthread-safety -Werror) ==="
  cmake -B "${prefix}-werror" -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DIAM_WERROR=ON >/dev/null
  echo "=== build ${prefix}-werror ==="
  cmake --build "${prefix}-werror" -j "${jobs}"
elif [[ "${require_clang}" == "1" ]]; then
  echo "ci: FATAL: clang++ not found and IAM_CI_REQUIRE_CLANG=1" >&2
  exit 1
else
  echo "ci: clang++ not found; -Wthread-safety gate skipped" \
       "(IAM_CI_REQUIRE_CLANG=1 enforces)"
fi

# --- Stage 6: TSan gate on the observability + concurrency tests. ----------
# The sharded metric registry and per-thread trace buffers are written from
# every pool worker; this gate proves them race-free under load.
run_config "${prefix}-tsan-obs" -LE slow -R \
  '^(CounterTest|RegistryTest|HistogramTest|ExportTest|TraceTest|ObsDeterminismTest|RaceTest|ThreadPoolTest)\.' \
  -- -DIAM_SANITIZE=thread

# --- Stage 7: metrics-export smoke test. -----------------------------------
# Runs the end-to-end demo with --metrics and asserts the Prometheus text
# parses: non-empty, and every metric family is declared exactly once.
echo "=== obs smoke: model_cli demo --metrics ==="
metrics_file="$(mktemp)"
trap 'rm -f "${metrics_file}"' EXIT
"${prefix}-default/examples/model_cli" demo "--metrics=${metrics_file}" \
  >/dev/null
if [[ ! -s "${metrics_file}" ]]; then
  echo "ci: FATAL: --metrics produced an empty Prometheus export" >&2
  exit 1
fi
dup_families="$(grep '^# TYPE ' "${metrics_file}" | awk '{print $3}' \
                  | sort | uniq -d)"
if [[ -n "${dup_families}" ]]; then
  echo "ci: FATAL: duplicate metric families in Prometheus export:" >&2
  echo "${dup_families}" >&2
  exit 1
fi
echo "obs smoke OK ($(grep -c '^# TYPE ' "${metrics_file}") metric families)"

# --- Stage 8: optional sanitizer quick gate. -------------------------------
# IAM_CI_SANITIZE=thread or address; slow cases excluded to bound runtime.
if [[ -n "${IAM_CI_SANITIZE:-}" ]]; then
  run_config "${prefix}-${IAM_CI_SANITIZE}" -LE slow -- \
    "-DIAM_SANITIZE=${IAM_CI_SANITIZE}"
fi

echo "CI OK"
