#!/usr/bin/env bash
# CI entry point (DESIGN.md §11). Stages, in order:
#
#   1. lint        scripts/lint.sh --all — format + full clang-tidy sweep
#                  (when clang tooling is installed, including the iam-*
#                  plugin checks) + the always-on repo-specific grep bans.
#   2. default     portable build, full ctest.
#   3. native      IAM_NATIVE=ON (-march=native kernels), full ctest. The
#                  default/native pair is the bit-compatibility contract of
#                  DESIGN.md §10 — exact equality in the first, tolerance-
#                  based in the second — so both must stay green.
#   4. ubsan       IAM_SANITIZE=undefined, quick gate (ctest -LE 'slow|net').
#   5. werror      clang-only: -Wthread-safety -Werror build (IAM_WERROR=ON),
#                  no test run — this is the lock-discipline gate; breaking
#                  an annotation fails the build itself.
#   6. tsan-obs    TSan quick gate over the concurrency-sensitive tests
#                  (obs_test, query_log_test, race_test, threadpool_test,
#                  plus the serve micro-batcher and hot-swap suites) —
#                  sharded metrics, trace buffers, the seqlock query-log
#                  ring and the serving lock dance must stay race-free.
#   7. obs smoke   model_cli demo --metrics=FILE: asserts the Prometheus
#                  export is non-empty and has no duplicate metric names.
#   8. serve smoke boots the estimator service (serve_cli serve --demo) on
#                  loopback with two batcher shards, runs client round trips,
#                  a pipelined burst with a hot-swap racing it, and a metrics
#                  scrape (global + per-shard series), pulls the query log
#                  over the kQueryLog frame (record count must equal the
#                  accepted count, filters must narrow it) and the --slow-ms
#                  stderr log, and asserts a clean drain shutdown.
#   8a. adapt smoke second server boot with --adapt: kAppendData rows, seq
#                  and inline kFeedback, then asserts the drift trigger
#                  fires exactly one background retrain-and-swap and the
#                  adapt counters reconcile with the traffic (DESIGN.md §18).
#   8b. bench json python3 (if present): scripts/check_bench_json.py
#                  schema-checks the committed BENCH_*.json files.
#   9. asan-net    ASan+UBSan over the `net`-labeled loopback serving tests —
#                  the untrusted-input surface (frame decode, envelope load)
#                  exercised over real sockets under memory checking.
#  10. fuzz-smoke  clang only: IAM_FUZZ=ON + ASan build of the libFuzzer
#                  harnesses (fuzz/), a bounded -runs= round per target
#                  seeded from the committed corpus, then the corpus-replay
#                  ctest entries. Findings are minimized into fuzz/corpus/
#                  and become permanent regressions (DESIGN.md §16).
#  11. sanitize    optional, IAM_CI_SANITIZE=thread|address: quick gate under
#                  that sanitizer on top of the above.
#
# Sanitizer configs run `ctest -LE 'slow|net'` (`slow` marks the multi-second
# training/VBGMM cases, `net` the loopback-socket serving tests) so a full CI
# round stays bounded; the default and native configs always run everything.
#
# clang is optional: stages 1 and 5 degrade to a skip on a gcc-only host.
# Set IAM_CI_REQUIRE_CLANG=1 (the clang CI lane does) to turn a missing
# clang/clang-tidy/clang-format into a hard failure.
#
# Usage: scripts/ci.sh [build-dir-prefix]
#   scripts/ci.sh                          # build-ci-* build trees
#   IAM_CI_SANITIZE=thread scripts/ci.sh   # adds a TSan quick-gate config
#   IAM_CI_REQUIRE_CLANG=1 scripts/ci.sh   # clang lane: lint + werror enforced
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-ci}"
jobs="$(nproc 2>/dev/null || echo 2)"
require_clang="${IAM_CI_REQUIRE_CLANG:-0}"

# run_config <dir> <ctest-args...> -- <cmake-args...>
run_config() {
  local dir="$1"
  shift
  local ctest_args=()
  while [[ "$1" != "--" ]]; do
    ctest_args+=("$1")
    shift
  done
  shift
  echo "=== configure ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "=== build ${dir} ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== ctest ${dir} ${ctest_args[*]} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}" "${ctest_args[@]}"
}

# --- Stage 1: lint. --------------------------------------------------------
# Needs a compile_commands.json for clang-tidy; the default config below
# writes one, so configure it first and lint against it.
echo "=== configure ${prefix}-default (for compile_commands.json) ==="
cmake -B "${prefix}-default" -S . >/dev/null
scripts/lint.sh --all "${prefix}-default"

# --- Stages 2-3: portable + native, full suite. ----------------------------
run_config "${prefix}-default" --
run_config "${prefix}-native" -- -DIAM_NATIVE=ON

# --- Stage 4: UBSan quick gate. --------------------------------------------
# The "net" label (loopback-socket serving tests) joins "slow" in the quick
# exclusion; the default/native configs above run both.
run_config "${prefix}-ubsan" -LE 'slow|net' -- -DIAM_SANITIZE=undefined

# --- Stage 5: thread-safety -Werror build (clang only). --------------------
if command -v clang++ >/dev/null 2>&1; then
  echo "=== configure ${prefix}-werror (clang, -Wthread-safety -Werror) ==="
  cmake -B "${prefix}-werror" -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DIAM_WERROR=ON >/dev/null
  echo "=== build ${prefix}-werror ==="
  cmake --build "${prefix}-werror" -j "${jobs}"
elif [[ "${require_clang}" == "1" ]]; then
  echo "ci: FATAL: clang++ not found and IAM_CI_REQUIRE_CLANG=1" >&2
  exit 1
else
  echo "ci: clang++ not found; -Wthread-safety gate skipped" \
       "(IAM_CI_REQUIRE_CLANG=1 enforces)"
fi

# --- Stage 6: TSan gate on the observability + concurrency tests. ----------
# The sharded metric registry and per-thread trace buffers are written from
# every pool worker, and the serving layer's micro-batcher and hot-swap path
# are lock dances by construction; this gate proves them race-free under
# load. QueryLogTest covers the seqlock diagnostics ring — concurrent
# writers lapping a reader must stay TSan-clean with no torn records.
# (MicroBatcherTest/ShardedBatcherTest/ServeShardTest/ServeSwapTest
# are the serve concurrency suites — shard spill, the event loop's completion
# queue, and the swap-under-load tests must stay TSan-clean;
# ServePipelineTest exercises the loop's partial-read/partial-write paths.
# ServeAdaptTest/AdaptControllerTest cover the adaptation loop: concurrent
# feedback + load racing a retrain-and-swap, DESIGN.md §18.)
# IAM_SANITIZE=thread also arms the lock-rank checker (src/util/lock_rank.h),
# so every ranked acquisition in these suites is order-checked and the
# LockRank suites prove the checker itself catches inversions.
run_config "${prefix}-tsan-obs" -LE slow -R \
  '^(CounterTest|RegistryTest|HistogramTest|ExportTest|TraceTest|ObsDeterminismTest|QueryLogTest|RaceTest|ThreadPoolTest|MicroBatcherTest|ShardedBatcherTest|ServeShardTest|ServeSwapTest|ServePipelineTest|ServeAdaptTest|AdaptControllerTest|PooledSamplerTest|LockRankTest|LockRankDeathTest)\.' \
  -- -DIAM_SANITIZE=thread

# --- Stage 6b: pooled-sampler gate. ----------------------------------------
# The pooled cross-query sampler must stay bit-identical to the legacy
# per-query oracle at a fixed budget (DESIGN.md §14) — the megabatch,
# prefix-sharing, fallback-isolation, and adaptive-determinism suites run on
# the default (portable, exact-equality) build. The same suite rides the
# TSan gate above for race coverage of the shared pooled scratch.
echo "=== pooled-sampler gate: legacy-vs-pooled bit-exactness ==="
ctest --test-dir "${prefix}-default" --output-on-failure -j "${jobs}" \
  -R '^PooledSamplerTest\.'

# --- Stage 7: metrics-export smoke test. -----------------------------------
# Runs the end-to-end demo with --metrics and asserts the Prometheus text
# parses: non-empty, and every metric family is declared exactly once.
echo "=== obs smoke: model_cli demo --metrics ==="
metrics_file="$(mktemp)"
trap 'rm -f "${metrics_file}"' EXIT
"${prefix}-default/examples/model_cli" demo "--metrics=${metrics_file}" \
  >/dev/null
if [[ ! -s "${metrics_file}" ]]; then
  echo "ci: FATAL: --metrics produced an empty Prometheus export" >&2
  exit 1
fi
dup_families="$(grep '^# TYPE ' "${metrics_file}" | awk '{print $3}' \
                  | sort | uniq -d)"
if [[ -n "${dup_families}" ]]; then
  echo "ci: FATAL: duplicate metric families in Prometheus export:" >&2
  echo "${dup_families}" >&2
  exit 1
fi
echo "obs smoke OK ($(grep -c '^# TYPE ' "${metrics_file}") metric families)"

# --- Stage 8: serve smoke test. --------------------------------------------
# Boots the estimator service on loopback with the demo model and TWO batcher
# shards, fires fixed-seed client round trips plus a metrics scrape through
# serve_cli's client commands, then races a pipelined burst against a
# hot-swap control frame (swap under load must lose nothing), re-scrapes the
# per-shard metric series, and asserts a clean drain shutdown (exit 0 after
# the shutdown frame) and that the Prometheus export parses.
echo "=== serve smoke: serve_cli demo server + client burst ==="
serve_log="$(mktemp)"
serve_err="$(mktemp)"
serve_metrics="$(mktemp)"
serve_model="$(mktemp)"
burst_log="$(mktemp)"
querylog_json="$(mktemp)"
trap 'rm -f "${metrics_file}" "${serve_log}" "${serve_err}" \
            "${serve_metrics}" "${serve_model}" "${burst_log}" \
            "${querylog_json}"' EXIT
# --slow-ms 0.001 makes effectively every request trip the slow-query stderr
# log, so the smoke test can assert the diagnostic line fires.
"${prefix}-default/examples/serve_cli" serve --demo --port 0 \
  --max-delay-us 500 --shards 2 --slow-ms 0.001 \
  --model-out "${serve_model}" \
  >"${serve_log}" 2>"${serve_err}" &
serve_pid=$!
serve_port=""
for _ in $(seq 1 600); do
  serve_port="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
                  "${serve_log}")"
  [[ -n "${serve_port}" ]] && break
  if ! kill -0 "${serve_pid}" 2>/dev/null; then
    echo "ci: FATAL: serve_cli exited before listening" >&2
    cat "${serve_log}" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "${serve_port}" ]]; then
  echo "ci: FATAL: serve_cli never reported its port" >&2
  kill "${serve_pid}" 2>/dev/null || true
  exit 1
fi
for i in 30 35 40 45; do
  "${prefix}-default/examples/serve_cli" estimate "${serve_port}" \
    "latitude >= ${i} AND longitude <= -90" >/dev/null
done
"${prefix}-default/examples/serve_cli" metrics "${serve_port}" \
  >"${serve_metrics}"
if ! grep -q '^iam_serve_accepted_total 4$' "${serve_metrics}"; then
  echo "ci: FATAL: serve metrics missing/unexpected accepted counter:" >&2
  grep 'iam_serve' "${serve_metrics}" >&2 || true
  exit 1
fi
dup_serve_families="$(grep '^# TYPE ' "${serve_metrics}" | awk '{print $3}' \
                        | sort | uniq -d)"
if [[ -n "${dup_serve_families}" ]]; then
  echo "ci: FATAL: duplicate metric families in serve export:" >&2
  echo "${dup_serve_families}" >&2
  exit 1
fi
# Hot-swap under load: a pipelined 64-deep burst on one connection races a
# kSwap control frame. The burst must come back whole — 64 ok, 0 overloaded,
# 0 dropped — with every response in submission order (serve_cli burst
# verifies the pairing; a lost or reordered frame fails the receive loop).
"${prefix}-default/examples/serve_cli" burst "${serve_port}" \
  "latitude >= 30 AND longitude <= -90" 64 >"${burst_log}" &
burst_pid=$!
if ! "${prefix}-default/examples/serve_cli" swap "${serve_port}" \
       "${serve_model}" >/dev/null; then
  echo "ci: FATAL: hot-swap control frame failed" >&2
  kill "${burst_pid}" 2>/dev/null || true
  exit 1
fi
if ! wait "${burst_pid}"; then
  echo "ci: FATAL: pipelined burst failed during hot-swap" >&2
  cat "${burst_log}" >&2
  exit 1
fi
if ! grep -q '^burst done: 64 ok, 0 overloaded of 64 pipelined$' \
       "${burst_log}"; then
  echo "ci: FATAL: hot-swap under load lost or rejected requests:" >&2
  cat "${burst_log}" >&2
  exit 1
fi
# Per-shard series: both shards registered their labeled queue gauge, and the
# burst traffic landed on a shard's labeled accepted counter (global
# iam_serve_accepted_total stays the unlabeled sum — checked above).
"${prefix}-default/examples/serve_cli" metrics "${serve_port}" \
  >"${serve_metrics}"
for series in 'iam_serve_queue_depth{shard="0"}' \
              'iam_serve_queue_depth{shard="1"}' \
              'iam_serve_shard_accepted_total{shard="0"}' \
              'iam_serve_shard_accepted_total{shard="1"}'; do
  if ! grep -qF "${series}" "${serve_metrics}"; then
    echo "ci: FATAL: serve export missing per-shard series ${series}:" >&2
    grep 'iam_serve' "${serve_metrics}" >&2 || true
    exit 1
  fi
done
if ! grep -q '^iam_serve_model_swaps_total 1$' "${serve_metrics}"; then
  echo "ci: FATAL: hot-swap not reflected in iam_serve_model_swaps_total" >&2
  grep 'iam_serve_model' "${serve_metrics}" >&2 || true
  exit 1
fi
# Query-log wire pull (DESIGN.md §17): every accepted request (4 round trips
# + the 64-deep burst) left exactly one record in the ring, retrievable over
# the kQueryLog frame, and the filter grammar narrows the pull.
"${prefix}-default/examples/serve_cli" querylog "${serve_port}" \
  >"${querylog_json}"
querylog_records="$(grep -o '"seq":' "${querylog_json}" | wc -l)"
if [[ "${querylog_records}" -ne 68 ]]; then
  echo "ci: FATAL: kQueryLog returned ${querylog_records} records," \
       "expected 68 (= accepted requests)" >&2
  head -c 2000 "${querylog_json}" >&2 || true
  exit 1
fi
if ! grep -q '"appended":68' "${querylog_json}"; then
  echo "ci: FATAL: kQueryLog appended total disagrees with accepted count" >&2
  head -c 2000 "${querylog_json}" >&2 || true
  exit 1
fi
"${prefix}-default/examples/serve_cli" querylog "${serve_port}" "last=5" \
  >"${querylog_json}"
if [[ "$(grep -o '"seq":' "${querylog_json}" | wc -l)" -ne 5 ]]; then
  echo "ci: FATAL: kQueryLog last=5 filter did not return 5 records" >&2
  head -c 2000 "${querylog_json}" >&2 || true
  exit 1
fi
if ! grep -q 'iam_serve slow query: seq=' "${serve_err}"; then
  echo "ci: FATAL: --slow-ms produced no slow-query lines on stderr" >&2
  head -20 "${serve_err}" >&2 || true
  exit 1
fi
"${prefix}-default/examples/serve_cli" shutdown "${serve_port}" >/dev/null
if ! wait "${serve_pid}"; then
  echo "ci: FATAL: serve_cli did not drain cleanly" >&2
  cat "${serve_log}" >&2
  exit 1
fi
if ! grep -q '^shutdown complete$' "${serve_log}"; then
  echo "ci: FATAL: serve_cli exited without completing its drain" >&2
  cat "${serve_log}" >&2
  exit 1
fi
echo "serve smoke OK (port ${serve_port})"

# --- Stage 8a: adaptation smoke test (DESIGN.md §18). ----------------------
# A second server boot with the adaptation loop armed: appends shifted rows
# over kAppendData, sends one seq-form and a burst of biased inline feedback
# records, and asserts the closed loop end to end — the intake counters
# match the traffic exactly, the drift trigger fires exactly one
# retrain-and-swap (the biased feedback keeps the windowed p90 above the
# trigger; the back-off then holds further retrains), and the corrector
# generation gauge tracks the swapped-in model version.
echo "=== adapt smoke: serve_cli --adapt feedback/append/retrain ==="
adapt_log="$(mktemp)"
adapt_metrics="$(mktemp)"
adapt_csv="$(mktemp)"
trap 'rm -f "${metrics_file}" "${serve_log}" "${serve_err}" \
            "${serve_metrics}" "${serve_model}" "${burst_log}" \
            "${querylog_json}" "${adapt_log}" "${adapt_metrics}" \
            "${adapt_csv}"' EXIT
# 512 synthetic rows in the demo schema (latitude, longitude), spread over
# the demo value range by a small Lehmer LCG — awk stays in exact-double
# territory, so the CSV is deterministic.
awk 'BEGIN {
  s = 12345
  for (i = 0; i < 512; i++) {
    s = (s * 48271) % 2147483647; a = s / 2147483647
    s = (s * 48271) % 2147483647; b = s / 2147483647
    printf "%.6f,%.6f\n", 26.5 + 24 * a, -122.5 + 57 * b
  }
}' >"${adapt_csv}"
"${prefix}-default/examples/serve_cli" serve --demo --port 0 --shards 2 \
  --adapt --adapt-trigger 1.5 --adapt-window 16 --adapt-min-rows 256 \
  --adapt-min-feedback 8 --adapt-epochs 1 >"${adapt_log}" 2>/dev/null &
adapt_pid=$!
adapt_port=""
for _ in $(seq 1 600); do
  adapt_port="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
                  "${adapt_log}")"
  [[ -n "${adapt_port}" ]] && break
  if ! kill -0 "${adapt_pid}" 2>/dev/null; then
    echo "ci: FATAL: serve_cli --adapt exited before listening" >&2
    cat "${adapt_log}" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "${adapt_port}" ]]; then
  echo "ci: FATAL: serve_cli --adapt never reported its port" >&2
  kill "${adapt_pid}" 2>/dev/null || true
  exit 1
fi
if ! "${prefix}-default/examples/serve_cli" append "${adapt_port}" \
       "${adapt_csv}" >/dev/null; then
  echo "ci: FATAL: kAppendData upload failed" >&2
  exit 1
fi
"${prefix}-default/examples/serve_cli" estimate "${adapt_port}" \
  "latitude >= 30 AND longitude <= -90" >/dev/null
# Seq-form feedback against the query-log record the estimate just left.
if ! "${prefix}-default/examples/serve_cli" feedback "${adapt_port}" \
       "seq=1 actual=0.9" >/dev/null; then
  echo "ci: FATAL: seq-form feedback rejected" >&2
  exit 1
fi
# Oscillating inline feedback: alternating extreme actuals on one predicate
# keep every feedback's q-error huge no matter how the corrector chases, so
# the windowed p90 stays far above the 1.5 trigger deterministically.
for i in $(seq 1 12); do
  if (( i % 2 )); then adapt_actual=0.9; else adapt_actual=0.001; fi
  "${prefix}-default/examples/serve_cli" feedback "${adapt_port}" \
    "actual=${adapt_actual} where latitude >= 45 AND longitude <= -90" \
    >/dev/null
done
# The retrain runs on the background adaptation thread; poll the metrics
# export until the swap lands.
adapt_retrained=""
for _ in $(seq 1 600); do
  "${prefix}-default/examples/serve_cli" metrics "${adapt_port}" \
    >"${adapt_metrics}"
  if grep -q '^iam_adapt_retrains_total 1$' "${adapt_metrics}"; then
    adapt_retrained=1
    break
  fi
  sleep 0.1
done
if [[ -z "${adapt_retrained}" ]]; then
  echo "ci: FATAL: drift trigger never fired a retrain" >&2
  grep 'iam_adapt' "${adapt_metrics}" >&2 || true
  exit 1
fi
for series in '^iam_adapt_feedback_total 13$' \
              '^iam_adapt_append_rows_total 512$' \
              '^iam_adapt_feedback_rejected_total 0$' \
              '^iam_adapt_feedback_dropped_total 0$' \
              '^iam_adapt_retrain_failed_total 0$' \
              '^iam_serve_model_swaps_total 1$' \
              '^iam_adapt_corrector_generation 2$'; do
  if ! grep -q "${series}" "${adapt_metrics}"; then
    echo "ci: FATAL: adapt metrics missing/unexpected series ${series}:" >&2
    grep 'iam_adapt\|iam_serve_model' "${adapt_metrics}" >&2 || true
    exit 1
  fi
done
"${prefix}-default/examples/serve_cli" shutdown "${adapt_port}" >/dev/null
if ! wait "${adapt_pid}"; then
  echo "ci: FATAL: serve_cli --adapt did not drain cleanly" >&2
  cat "${adapt_log}" >&2
  exit 1
fi
echo "adapt smoke OK (port ${adapt_port})"

# --- Stage 8b: committed bench JSON schema check. --------------------------
# The BENCH_*.json files at the repo root are commitments (overhead bounds,
# reconciliation flags); the checker fails CI when a section disappears or a
# committed bound regresses. python3 is optional on minimal hosts.
if command -v python3 >/dev/null 2>&1; then
  echo "=== bench json: scripts/check_bench_json.py ==="
  python3 scripts/check_bench_json.py
else
  echo "ci: python3 not found; bench JSON schema check skipped"
fi

# --- Stage 9: ASan over the loopback serving tests. ------------------------
# The `net` label marks the tests that push adversarial and well-formed
# frames through real sockets — the serving layer's untrusted-input surface.
# Running exactly that label under ASan+UBSan memory-checks the frame
# decoder, the envelope loader behind kSwap, and the connection buffers.
run_config "${prefix}-asan-net" -L net -- -DIAM_SANITIZE=address

# --- Stage 10: bounded fuzz smoke (clang only). ----------------------------
# Builds the libFuzzer harnesses under ASan+UBSan, runs a bounded round per
# target seeded from the committed corpus (new inputs land in a scratch dir;
# a crash fails CI and its input is committed under fuzz/corpus/ as a
# permanent replay regression), then replays the committed corpus in the
# same instrumented build.
if command -v clang++ >/dev/null 2>&1; then
  fuzz_dir="${prefix}-fuzz"
  echo "=== configure ${fuzz_dir} (clang, IAM_FUZZ=ON, ASan) ==="
  cmake -B "${fuzz_dir}" -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DIAM_FUZZ=ON -DIAM_SANITIZE=address >/dev/null
  echo "=== build ${fuzz_dir} ==="
  cmake --build "${fuzz_dir}" -j "${jobs}"
  fuzz_runs="${IAM_CI_FUZZ_RUNS:-20000}"
  for target in frame_decoder envelope query_parser; do
    echo "=== fuzz smoke: ${target} (-runs=${fuzz_runs}) ==="
    fuzz_scratch="$(mktemp -d)"
    if ! "${fuzz_dir}/fuzz/iam_fuzz_${target}" "-runs=${fuzz_runs}" \
           -print_final_stats=0 "${fuzz_scratch}" "fuzz/corpus/${target}"; then
      echo "ci: FATAL: fuzzer found a crash in ${target}; minimize the" \
           "input into fuzz/corpus/${target}/ and fix" >&2
      rm -rf "${fuzz_scratch}"
      exit 1
    fi
    rm -rf "${fuzz_scratch}"
  done
  ctest --test-dir "${fuzz_dir}" --output-on-failure -j "${jobs}" \
    -R '^FuzzReplay\.'
elif [[ "${require_clang}" == "1" ]]; then
  echo "ci: FATAL: clang++ not found and IAM_CI_REQUIRE_CLANG=1" >&2
  exit 1
else
  echo "ci: clang++ not found; fuzz-smoke stage skipped" \
       "(IAM_CI_REQUIRE_CLANG=1 enforces)"
fi

# --- Stage 11: optional sanitizer quick gate. ------------------------------
# IAM_CI_SANITIZE=thread or address; slow and net cases excluded to bound
# runtime.
if [[ -n "${IAM_CI_SANITIZE:-}" ]]; then
  run_config "${prefix}-${IAM_CI_SANITIZE}" -LE 'slow|net' -- \
    "-DIAM_SANITIZE=${IAM_CI_SANITIZE}"
fi

echo "CI OK"
