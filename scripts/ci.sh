#!/usr/bin/env bash
# CI entry point: configure, build, and run the test suite in the portable
# configuration and again with IAM_NATIVE=ON (-march=native kernels). The
# two configs are the bit-compatibility contract of DESIGN.md §10 — the
# kernel fuzz tests assert exact equality in the first and tolerance-based
# equality in the second, so both must stay green.
#
# Usage: scripts/ci.sh [build-dir-prefix]
#   scripts/ci.sh            # builds into build-ci-default/ and build-ci-native/
#   IAM_CI_SANITIZE=thread scripts/ci.sh   # adds a TSan config on top
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-ci}"
jobs="$(nproc 2>/dev/null || echo 2)"

run_config() {
  local dir="$1"
  shift
  echo "=== configure ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "=== build ${dir} ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== ctest ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_config "${prefix}-default"
run_config "${prefix}-native" -DIAM_NATIVE=ON

# Optional sanitizer pass (slow): IAM_CI_SANITIZE=thread or address.
if [[ -n "${IAM_CI_SANITIZE:-}" ]]; then
  run_config "${prefix}-${IAM_CI_SANITIZE}" "-DIAM_SANITIZE=${IAM_CI_SANITIZE}"
fi

echo "CI OK"
