// Extension bench (the paper's future work): approximate COUNT / SUM / AVG
// through the unbiased progressive sampler, against exact answers, on the
// TWI and HIGGS workloads.

#include <cmath>
#include <cstdio>
#include <string>

#include "bench/bench_common.h"

namespace iam::bench {
namespace {

void Run(const std::string& dataset, int target_col) {
  const data::Table table = MakeDataset(dataset);
  Rng rng(kDataSeed + 1203);
  query::WorkloadOptions wopts;
  wopts.num_queries = 60;
  const auto test = query::GenerateEvaluatedWorkload(table, wopts, rng);

  core::ArEstimatorOptions opts = BenchIamOptions();
  core::ArDensityEstimator iam(table, opts);
  iam.Train();

  // Relative-error quantiles for AVG and the q-error for COUNT.
  std::vector<double> avg_rel, count_q;
  size_t usable = 0;
  for (size_t i = 0; i < test.queries.size(); ++i) {
    // Exact aggregate by scan.
    double exact_sum = 0.0;
    size_t exact_count = 0;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      bool match = true;
      for (const query::Predicate& p : test.queries[i].predicates) {
        if (!p.Matches(table.value(r, p.column))) {
          match = false;
          break;
        }
      }
      if (match) {
        exact_sum += table.value(r, target_col);
        ++exact_count;
      }
    }
    if (exact_count < 50) continue;  // AVG undefined-ish on tiny groups
    ++usable;
    const double exact_avg = exact_sum / static_cast<double>(exact_count);

    const auto agg = iam.EstimateAggregate(test.queries[i], target_col);
    avg_rel.push_back(std::abs(agg.avg - exact_avg) /
                      std::max(std::abs(exact_avg), 1e-9));
    count_q.push_back(query::QError(
        static_cast<double>(exact_count) / table.num_rows(),
        agg.selectivity, table.num_rows()));
  }

  const ErrorReport avg_report = MakeErrorReport(avg_rel);
  const ErrorReport count_report = MakeErrorReport(count_q);
  std::printf(
      "\n### Future-work extension: AQP aggregates on %s (target '%s', %zu "
      "queries)\n",
      dataset.c_str(), table.column(target_col).name.c_str(), usable);
  std::printf("AVG relative error: median=%.3g p95=%.3g max=%.3g\n",
              avg_report.median, avg_report.p95, avg_report.max);
  std::printf("COUNT q-error:      median=%.3g p95=%.3g max=%.3g\n",
              count_report.median, count_report.p95, count_report.max);
}

}  // namespace
}  // namespace iam::bench

int main(int argc, char** argv) {
  const std::string only = argc > 1 ? argv[1] : "";
  if (only.empty() || only == "twi") iam::bench::Run("twi", 1);
  if (only.empty() || only == "higgs") iam::bench::Run("higgs", 0);
  return 0;
}
