// Reproduces Table 6: trained model sizes (MB) of MSCN, Neurocard and IAM on
// every dataset. (DeepDB is not implemented; the paper's qualitative finding
// — IAM smaller than NeuroCard thanks to domain reduction — is the target.)

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "join/star_schema.h"

namespace iam::bench {
namespace {

double Mb(size_t bytes) { return static_cast<double>(bytes) / (1024.0 * 1024.0); }

void Run() {
  std::printf("\n### Table 6: model sizes (MB)\n");
  std::printf("%-10s %10s %10s %10s %10s\n", "estimator", "wisdm", "twi",
              "higgs", "imdb");

  const std::vector<std::string> names = {"mscn", "neurocard", "iam"};
  std::vector<std::vector<double>> sizes(names.size());

  const std::vector<std::string> datasets = {"wisdm", "twi", "higgs",
                                              "imdb"};
  for (const std::string& dataset : datasets) {
    data::Table table;
    if (dataset == "imdb") {
      const ImdbBundle imdb = MakeImdb();
      Rng rng(kDataSeed + 5);
      const join::ExactWeightSampler sampler(imdb.schema);
      table = sampler.Sample(20000, rng);
    } else {
      table = MakeDataset(dataset);
    }
    Rng rng(kDataSeed + 277);
    query::WorkloadOptions wopts;
    wopts.num_queries = 300;
    const auto train = query::GenerateEvaluatedWorkload(table, wopts, rng);
    for (size_t i = 0; i < names.size(); ++i) {
      // Model sizes do not depend on training convergence, so train briefly.
      if (names[i] == "mscn") {
        const auto est = MakeTrainedEstimator("mscn", table, train, 0);
        sizes[i].push_back(Mb(est->SizeBytes()));
      } else {
        core::ArEstimatorOptions opts = names[i] == "iam"
                                            ? BenchIamOptions()
                                            : BenchNeurocardOptions();
        opts.epochs = 0;
        core::ArDensityEstimator est(table, opts);
        sizes[i].push_back(Mb(est.SizeBytes()));
      }
    }
  }
  for (size_t i = 0; i < names.size(); ++i) {
    std::printf("%-10s %10.3f %10.3f %10.3f %10.3f\n", names[i].c_str(),
                sizes[i][0], sizes[i][1], sizes[i][2], sizes[i][3]);
  }
}

}  // namespace
}  // namespace iam::bench

int main() {
  iam::bench::Run();
  return 0;
}
