// Reproduces Figure 5: end-to-end query execution time on the IMDB star
// schema when the mini cost-based optimizer (the stand-in for the paper's
// modified Postgres) takes its sub-plan selectivities from each estimator.
// Also reports plan-choice agreement with the oracle.

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>

#include "bench/bench_common.h"
#include "optimizer/mini_optimizer.h"
#include "util/stopwatch.h"

namespace iam::bench {
namespace {

void Run() {
  std::printf("\n### Figure 5: end-to-end time on IMDB (mini optimizer)\n");
  // A larger star than the accuracy runs and lighter filters: execution must
  // be dominated by join work for plan quality to show up in wall time.
  ImdbBundle imdb;
  imdb.schema = join::MakeSynImdb(4 * kImdbTitles, kDataSeed + 3);
  Rng rng(kDataSeed + 404);
  const join::ExactWeightSampler sampler(imdb.schema);
  const data::Table join_sample = sampler.Sample(20000, rng);

  query::WorkloadOptions wopts;
  wopts.num_queries = 500;
  const auto train = query::GenerateEvaluatedWorkload(join_sample, wopts, rng);

  const auto workload = optimizer::GenerateJoinWorkload(
      imdb.schema, 40, rng, /*predicate_prob=*/0.25);
  optimizer::Catalog catalog(imdb.schema);
  optimizer::OracleProvider oracle(imdb.schema);

  // Precompute oracle plans for agreement reporting.
  std::vector<optimizer::Plan> oracle_plans;
  for (const auto& jq : workload) {
    oracle_plans.push_back(optimizer::ChoosePlan(catalog, oracle, jq));
  }

  std::printf("%-10s %16s %16s %14s\n", "estimator", "exec total (ms)",
              "ms per query", "plan=oracle");

  auto run_provider = [&](const std::string& name,
                          optimizer::SelectivityProvider& provider) {
    // Optimize all queries first (plan choice), then measure pure execution.
    std::vector<optimizer::Plan> plans;
    for (const auto& jq : workload) {
      plans.push_back(optimizer::ChoosePlan(catalog, provider, jq));
    }
    int agree = 0;
    for (size_t i = 0; i < plans.size(); ++i) {
      agree += plans[i].order == oracle_plans[i].order ? 1 : 0;
    }
    // Warm-up pass (page/cache effects), then the timed pass.
    for (size_t i = 0; i < workload.size(); ++i) {
      optimizer::ExecutePlan(imdb.schema, workload[i], plans[i].order);
    }
    Stopwatch watch;
    for (size_t i = 0; i < workload.size(); ++i) {
      optimizer::ExecutePlan(imdb.schema, workload[i], plans[i].order);
    }
    const double total = watch.ElapsedMillis();
    std::printf("%-10s %16.1f %16.2f %13.0f%%\n", name.c_str(), total,
                total / static_cast<double>(workload.size()),
                100.0 * agree / static_cast<double>(workload.size()));
    std::fflush(stdout);
  };

  run_provider("oracle", oracle);
  for (const std::string& name : JoinEstimators()) {
    auto est = MakeTrainedEstimator(name, join_sample, train, 0);
    optimizer::JoinEstimatorProvider provider(imdb.schema, est.get());
    run_provider(name, provider);
  }

  // Worst-case reference: always pick the reverse of the oracle's plan.
  {
    Stopwatch watch;
    for (size_t i = 0; i < workload.size(); ++i) {
      std::vector<int> order = oracle_plans[i].order;
      std::reverse(order.begin(), order.end());
      optimizer::ExecutePlan(imdb.schema, workload[i], order);
    }
    const double total = watch.ElapsedMillis();
    std::printf("%-10s %16.1f %16.2f %14s\n", "anti-plan", total,
                total / static_cast<double>(workload.size()), "-");
  }

  // Optimization-time view: batched selectivity throughput of the IAM model
  // at 1/2/4/8 threads. Plan search issues its sub-plan probes in batches, so
  // this is the component of end-to-end latency the thread pool attacks.
  std::printf(
      "\n### IAM batched selectivity throughput by threads (queries/s)\n");
  query::WorkloadOptions sel_opts;
  sel_opts.num_queries = 256;
  const auto sel_queries =
      query::GenerateEvaluatedWorkload(join_sample, sel_opts, rng);
  auto iam_est = MakeTrainedEstimator("iam", join_sample, train, 0);
  std::printf("%-10s %12s %12s %10s\n", "threads", "ms/query", "queries/s",
              "speedup");
  double serial_ms = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    iam_est->set_num_threads(threads);
    iam_est->EstimateBatch(sel_queries.queries);  // warm-up: pool + buffers
    Stopwatch watch;
    iam_est->EstimateBatch(sel_queries.queries);
    const double ms =
        watch.ElapsedMillis() / static_cast<double>(sel_queries.queries.size());
    if (threads == 1) serial_ms = ms;
    std::printf("%-10d %12.3f %12.0f %9.2fx\n", threads, ms, 1000.0 / ms,
                serial_ms / ms);
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace iam::bench

int main() {
  iam::bench::Run();
  return 0;
}
