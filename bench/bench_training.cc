// Reproduces Figure 6 (max q-error versus training epoch) and Table 8
// (training time of the learned estimators on IMDB).

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "util/stopwatch.h"

namespace iam::bench {
namespace {

void TrainingCurve(const std::string& dataset) {
  data::Table table;
  if (dataset == "imdb") {
    const ImdbBundle imdb = MakeImdb();
    Rng rng(kDataSeed + 6);
    const join::ExactWeightSampler sampler(imdb.schema);
    table = sampler.Sample(20000, rng);
  } else {
    table = MakeDataset(dataset);
  }
  Rng rng(kDataSeed + 505);
  query::WorkloadOptions wopts;
  wopts.num_queries = 30;
  const auto test = query::GenerateEvaluatedWorkload(table, wopts, rng);

  core::ArEstimatorOptions opts = BenchIamOptions();
  core::ArDensityEstimator iam(table, opts);
  std::printf("\n### Figure 6: IAM max q-error vs epoch on %s\n",
              dataset.c_str());
  std::printf("%-6s %12s %12s %12s\n", "epoch", "epoch s", "ar loss",
              "max qerror");
  for (int epoch = 1; epoch <= opts.epochs; ++epoch) {
    Stopwatch watch;
    const double loss = iam.TrainEpoch();
    const double secs = watch.ElapsedSeconds();
    const ErrorReport report = EvaluateErrors(iam, test, table.num_rows());
    std::printf("%-6d %12.2f %12.4f %12.3g\n", epoch, secs, loss, report.max);
    std::fflush(stdout);
  }
}

void TrainingTime() {
  std::printf("\n### Table 8: training time on IMDB (seconds)\n");
  const ImdbBundle imdb = MakeImdb();
  Rng rng(kDataSeed + 606);
  const join::ExactWeightSampler sampler(imdb.schema);
  const data::Table join_sample = sampler.Sample(20000, rng);
  query::WorkloadOptions wopts;
  wopts.num_queries = kTrainQueries;
  Stopwatch workload_watch;
  const auto train = query::GenerateEvaluatedWorkload(join_sample, wopts, rng);
  const double workload_secs = workload_watch.ElapsedSeconds();

  const std::vector<std::string> names = {"mscn", "neurocard", "iam"};
  for (const std::string& name : names) {
    Stopwatch watch;
    auto est = MakeTrainedEstimator(name, join_sample, train, 0);
    double secs = watch.ElapsedSeconds();
    if (name == "mscn") {
      // Query-driven training also pays for executing the training workload.
      secs += workload_secs;
    }
    std::printf("%-10s %10.1f s\n", name.c_str(), secs);
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace iam::bench

int main(int argc, char** argv) {
  const std::string only = argc > 1 ? argv[1] : "";
  for (const char* dataset : {"wisdm", "twi", "higgs", "imdb"}) {
    if (only.empty() || only == dataset) iam::bench::TrainingCurve(dataset);
  }
  if (only.empty() || only == "table8") iam::bench::TrainingTime();
  return 0;
}
