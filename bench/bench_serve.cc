// Serving-path benchmark (DESIGN.md §13): an in-process EstimatorServer with
// an open-loop loadgen over real loopback sockets.
//
//   bench_serve [--json BENCH_serve.json] [--quick]
//
// Three experiments:
//   1. QPS sweep at the default batcher config — accepted/rejected counts and
//      client-observed latency percentiles per offered rate. Offered load
//      beyond capacity shows admission control holding the accepted-request
//      p99 down while the reject rate absorbs the excess.
//   2. Batching ablation: the same offered load against max_batch=1 vs the
//      default — dynamic micro-batching must win on achieved throughput and
//      show a mean batch size > 1.
//   3. Hot-swap under load: swaps mid-burst; every accepted request succeeds
//      and answers with one of the two model versions.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "obs/metrics.h"
#include "serve/batcher.h"
#include "serve/client.h"
#include "serve/demo.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "util/quantiles.h"
#include "util/stopwatch.h"

namespace iam::bench {
namespace {

struct LoadResult {
  int accepted = 0;
  int rejected = 0;
  int failed = 0;
  double wall_seconds = 0.0;
  ErrorReport latency_ms;        // accepted requests only
  double achieved_qps = 0.0;     // accepted / wall
  double mean_batch_size = 0.0;  // from serve metrics deltas
};

struct MetricsSnapshot {
  double accepted = 0.0;
  double batches = 0.0;
};

MetricsSnapshot TakeSnapshot() {
  const serve::ServeMetrics& m = serve::ServeMetrics::Get();
  return {static_cast<double>(m.accepted.Total()),
          static_cast<double>(m.batches.Total())};
}

// Open-loop(ish) load: `threads` workers share one global schedule — request
// i is due at i/qps seconds — each worker owning the requests congruent to
// its index. Workers sleep until a request is due, so offered load tracks
// `qps` until the server saturates and the workers themselves fall behind.
LoadResult RunLoad(int port, const std::vector<std::string>& predicates,
                   int total_requests, double qps, int threads) {
  std::vector<std::vector<double>> latencies(threads);
  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  std::atomic<int> failed{0};

  const MetricsSnapshot before = TakeSnapshot();
  Stopwatch wall;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      serve::Client client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        failed.fetch_add((total_requests - w + threads - 1) / threads);
        return;
      }
      for (int i = w; i < total_requests; i += threads) {
        const double due = static_cast<double>(i) / qps;
        for (;;) {
          // Sleep the full remaining time (re-checking after each wake)
          // instead of polling: dozens of pacing threads spinning on short
          // sleeps would steal the CPU the server needs.
          const double remaining = due - wall.ElapsedSeconds();
          if (remaining <= 0.0) break;
          std::this_thread::sleep_for(
              std::chrono::duration<double>(remaining));
        }
        Stopwatch rtt;
        const auto reply = client.Estimate(
            predicates[static_cast<size_t>(i) % predicates.size()]);
        if (!reply.ok()) {
          failed.fetch_add(1);
          continue;
        }
        if (reply->overloaded) {
          rejected.fetch_add(1);
          continue;
        }
        accepted.fetch_add(1);
        latencies[static_cast<size_t>(w)].push_back(rtt.ElapsedMillis());
      }
    });
  }
  for (std::thread& t : workers) t.join();

  LoadResult result;
  result.wall_seconds = wall.ElapsedSeconds();
  result.accepted = accepted.load();
  result.rejected = rejected.load();
  result.failed = failed.load();
  std::vector<double> all;
  for (const auto& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  result.latency_ms = MakeErrorReport(all);
  result.achieved_qps =
      result.wall_seconds > 0 ? result.accepted / result.wall_seconds : 0.0;
  const MetricsSnapshot after = TakeSnapshot();
  const double batches = after.batches - before.batches;
  result.mean_batch_size =
      batches > 0 ? (after.accepted - before.accepted) / batches : 0.0;
  return result;
}

std::string LoadResultJson(const LoadResult& r, double offered_qps) {
  std::ostringstream out;
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"offered_qps\": %.6g, \"accepted\": %d, \"rejected\": %d, "
      "\"failed\": %d, \"achieved_qps\": %.6g, \"mean_batch_size\": %.6g, "
      "\"latency_ms\": {\"mean\": %.6g, \"median\": %.6g, \"p95\": %.6g, "
      "\"p99\": %.6g, \"max\": %.6g}}",
      offered_qps, r.accepted, r.rejected, r.failed, r.achieved_qps,
      r.mean_batch_size, r.latency_ms.mean, r.latency_ms.median,
      r.latency_ms.p95, r.latency_ms.p99, r.latency_ms.max);
  out << buf;
  return out.str();
}

void PrintLoadRow(const char* label, double offered_qps,
                  const LoadResult& r) {
  std::printf(
      "%-18s %8.0f %9d %9d %8.1f %8.2f %8.2f %8.2f %8.2f\n", label,
      offered_qps, r.accepted, r.rejected, r.achieved_qps, r.mean_batch_size,
      r.latency_ms.median, r.latency_ms.p95, r.latency_ms.p99);
}

}  // namespace
}  // namespace iam::bench

int main(int argc, char** argv) {
  using namespace iam;
  const std::string json_path = bench::JsonOutPath(&argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  std::printf("training demo model...\n");
  std::unique_ptr<core::ArDensityEstimator> model =
      serve::TrainDemoEstimator();
  // Micro-batching's throughput win comes from fanning one EstimateBatch out
  // across the model's worker pool — a solo request can only ever use one
  // worker — so the served model gets several threads even when the bench
  // default (IAM_BENCH_THREADS) is the paper's serial setting.
  const int model_threads = std::max(bench::BenchThreads(), 4);
  serve::ModelRegistry registry(std::move(model), "", model_threads);
  const std::vector<std::string> predicates = serve::DemoPredicates(256, 99);
  // More loadgen connections than queue slots, so offered load beyond
  // capacity actually overflows the queue instead of parking in the clients.
  const int kLoadThreads = 64;
  const int sweep_requests = quick ? 600 : 3000;

  // --- 1. QPS sweep, default batching. --------------------------------------
  serve::ServerOptions options;
  options.batcher.queue_capacity = 16;
  std::vector<std::string> sweep_rows;
  {
    serve::EstimatorServer server(registry, options);
    const Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    std::printf(
        "\n### Serving QPS sweep (max_batch=%d, max_delay=%.0fus, "
        "queue=%d)\n",
        options.batcher.max_batch, options.batcher.max_delay_s * 1e6,
        options.batcher.queue_capacity);
    std::printf("%-18s %8s %9s %9s %8s %8s %8s %8s %8s\n", "config",
                "offered", "accepted", "rejected", "qps", "batch", "p50ms",
                "p95ms", "p99ms");
    for (const double qps : {200.0, 1000.0, 5000.0, 20000.0}) {
      const bench::LoadResult r = bench::RunLoad(
          server.port(), predicates, sweep_requests, qps, kLoadThreads);
      bench::PrintLoadRow("sweep", qps, r);
      sweep_rows.push_back(bench::LoadResultJson(r, qps));
    }
    server.Shutdown();
  }

  // --- 2. Batching ablation: max_batch=1 vs default, same offered load. -----
  std::string ablation_json;
  {
    const double qps = 20000.0;
    serve::ServerOptions unbatched = options;
    unbatched.batcher.max_batch = 1;
    bench::LoadResult base, batched;
    {
      serve::EstimatorServer server(registry, unbatched);
      if (!server.Start().ok()) return 1;
      base = bench::RunLoad(server.port(), predicates, sweep_requests, qps,
                            kLoadThreads);
      server.Shutdown();
    }
    {
      serve::EstimatorServer server(registry, options);
      if (!server.Start().ok()) return 1;
      batched = bench::RunLoad(server.port(), predicates, sweep_requests, qps,
                               kLoadThreads);
      server.Shutdown();
    }
    std::printf("\n### Micro-batching ablation (offered %.0f qps)\n", qps);
    std::printf("%-18s %8s %9s %9s %8s %8s %8s %8s %8s\n", "config",
                "offered", "accepted", "rejected", "qps", "batch", "p50ms",
                "p95ms", "p99ms");
    bench::PrintLoadRow("max_batch=1", qps, base);
    bench::PrintLoadRow("dynamic", qps, batched);
    std::printf("micro-batching speedup: %.2fx throughput, mean batch %.2f\n",
                base.achieved_qps > 0
                    ? batched.achieved_qps / base.achieved_qps
                    : 0.0,
                batched.mean_batch_size);
    ablation_json = "{\"offered_qps\": 20000, \"max_batch_1\": " +
                    bench::LoadResultJson(base, qps) +
                    ", \"dynamic\": " + bench::LoadResultJson(batched, qps) +
                    "}";
  }

  // --- 3. Hot-swap under load. ----------------------------------------------
  std::string swap_json;
  {
    serve::EstimatorServer server(registry, options);
    if (!server.Start().ok()) return 1;
    const uint64_t version_before = registry.Current()->version;
    std::atomic<bool> done{false};
    std::thread swapper([&] {
      // Re-install a freshly trained generation mid-burst.
      std::unique_ptr<core::ArDensityEstimator> next =
          serve::TrainDemoEstimator(2000, 7);
      registry.Swap(std::move(next), "bench-swap");
      done.store(true);
    });
    const bench::LoadResult under_swap = bench::RunLoad(
        server.port(), predicates, sweep_requests, 1000.0, kLoadThreads);
    swapper.join();
    const uint64_t version_after = registry.Current()->version;
    server.Shutdown();
    std::printf("\n### Hot-swap under load\n");
    std::printf(
        "version %llu -> %llu; accepted %d, rejected %d, failed %d\n",
        static_cast<unsigned long long>(version_before),
        static_cast<unsigned long long>(version_after), under_swap.accepted,
        under_swap.rejected, under_swap.failed);
    if (under_swap.failed != 0) {
      std::fprintf(stderr, "FAIL: accepted requests were lost in the swap\n");
      return 1;
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"version_before\": %llu, \"version_after\": %llu, "
                  "\"accepted\": %d, \"rejected\": %d, \"failed\": %d}",
                  static_cast<unsigned long long>(version_before),
                  static_cast<unsigned long long>(version_after),
                  under_swap.accepted, under_swap.rejected, under_swap.failed);
    swap_json = buf;
  }

  // --- 4. Pooled sampler under serving load. --------------------------------
  // Same offered load, three sampler modes of the served model: the legacy
  // per-query oracle, the pooled megabatch at a fixed budget (bit-exact
  // default), and pooled with prefix sharing + adaptive CI early stopping.
  // The coalesced micro-batches are exactly the megabatches the pooled
  // sampler amortizes, so batching and pooling compound here.
  std::string pooled_json;
  {
    // Flip the served estimator's sampler mode between runs; the server is
    // idle in between, and set_sampler_mode takes the estimator's batch
    // mutex, so even a straggling batch would serialize cleanly.
    const std::shared_ptr<serve::LoadedModel> current = registry.Current();
    core::ArDensityEstimator* raw = current->estimator.get();
    const double qps = 5000.0;
    struct ServeMode {
      const char* label;
      const char* key;
      bool pooled;
      bool prefix;
      int adaptive;
    };
    constexpr ServeMode kServeModes[] = {
        {"legacy", "legacy", false, false, 0},
        {"pooled", "pooled", true, true, 0},
        {"pooled+adaptive", "pooled_adaptive", true, true, 32}};
    std::printf("\n### Pooled sampler under serving load (offered %.0f qps)\n",
                qps);
    std::printf("%-18s %8s %9s %9s %8s %8s %8s %8s %8s\n", "config",
                "offered", "accepted", "rejected", "qps", "batch", "p50ms",
                "p95ms", "p99ms");
    pooled_json = "{\"offered_qps\": 5000";
    for (const ServeMode& mode : kServeModes) {
      raw->set_sampler_mode(mode.pooled, mode.prefix, mode.adaptive);
      serve::EstimatorServer server(registry, options);
      if (!server.Start().ok()) return 1;
      const bench::LoadResult r = bench::RunLoad(
          server.port(), predicates, sweep_requests, qps, kLoadThreads);
      server.Shutdown();
      bench::PrintLoadRow(mode.label, qps, r);
      pooled_json += std::string(", \"") + mode.key +
                     "\": " + bench::LoadResultJson(r, qps);
    }
    pooled_json += "}";
    raw->set_sampler_mode(true, true, 0);  // restore the defaults
  }

  if (!json_path.empty()) {
    std::string sweep = "[";
    for (size_t i = 0; i < sweep_rows.size(); ++i) {
      if (i > 0) sweep += ", ";
      sweep += sweep_rows[i];
    }
    sweep += "]";
    bool ok = bench::MergeJsonSection(json_path, "serve_sweep", sweep);
    ok = bench::MergeJsonSection(json_path, "serve_batching", ablation_json) &&
         ok;
    ok = bench::MergeJsonSection(json_path, "serve_hot_swap", swap_json) && ok;
    ok = bench::MergeJsonSection(json_path, "serve_pooled", pooled_json) && ok;
    ok = bench::MergeMetricsIntoJson(json_path) && ok;
    if (!ok) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nresults written to %s\n", json_path.c_str());
  }
  return 0;
}
