// Serving-path benchmark (DESIGN.md §13/§15): an in-process EstimatorServer
// with open-loop loadgens over real loopback sockets.
//
//   bench_serve [--json BENCH_serve.json] [--quick]
//               [--connections N] [--pipeline D]
//
// Experiments:
//   1. QPS sweep at the default batcher config — accepted/rejected counts and
//      client-observed latency percentiles per offered rate. Offered load
//      beyond capacity shows admission control holding the accepted-request
//      p99 down while the reject rate absorbs the excess.
//   2. Batching ablation: the same offered load against max_batch=1 vs the
//      default — dynamic micro-batching must win on achieved throughput and
//      show a mean batch size > 1.
//   3. Hot-swap under load: swaps mid-burst; every accepted request succeeds
//      and answers with one of the two model versions.
//   4. Pooled sampler modes under serving load (applied to every replica).
//   5. Shard scaling: the pipelined loadgen sweeps offered load up to 100k
//      QPS against 1/2/4/8 batcher shards. Explicit reject rate per point;
//      achieved QPS must hold flat past saturation (graceful degradation,
//      not a cliff).
//   6. TCP_NODELAY ablation: pipelined responses with Nagle re-enabled on
//      the server sockets stall on the client's delayed ACKs; the p50 delta
//      is the measured effect.
//   8. Online adaptation (DESIGN.md §18): the demo distribution shifts under
//      a served model; query feedback drives the per-region corrector, the
//      append reservoir fills with shifted rows, and the drift trigger
//      retrains and hot-swaps. Committed bounds: zero failed requests,
//      post-retrain p90 q-error within 2x the pre-shift p90, and feedback
//      ingest under 2% on the served p50.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "adapt/controller.h"
#include "adapt/feedback.h"
#include "bench/bench_common.h"
#include "data/table.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "query/parser.h"
#include "query/query.h"
#include "serve/batcher.h"
#include "serve/client.h"
#include "serve/demo.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "util/quantiles.h"
#include "util/stopwatch.h"

namespace iam::bench {
namespace {

struct LoadResult {
  int accepted = 0;
  int rejected = 0;
  int failed = 0;
  double wall_seconds = 0.0;
  ErrorReport latency_ms;        // accepted requests only
  double achieved_qps = 0.0;     // accepted / wall
  double reject_rate = 0.0;      // rejected / issued
  double mean_batch_size = 0.0;  // from serve metrics deltas
};

struct MetricsSnapshot {
  double accepted = 0.0;
  double batches = 0.0;
};

MetricsSnapshot TakeSnapshot() {
  const serve::ServeMetrics& m = serve::ServeMetrics::Get();
  return {static_cast<double>(m.accepted.Total()),
          static_cast<double>(m.batches.Total())};
}

LoadResult FinishLoad(const std::vector<std::vector<double>>& latencies,
                      int accepted, int rejected, int failed,
                      double wall_seconds, const MetricsSnapshot& before) {
  LoadResult result;
  result.wall_seconds = wall_seconds;
  result.accepted = accepted;
  result.rejected = rejected;
  result.failed = failed;
  std::vector<double> all;
  for (const auto& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  result.latency_ms = MakeErrorReport(all);
  result.achieved_qps =
      result.wall_seconds > 0 ? result.accepted / result.wall_seconds : 0.0;
  const int issued = accepted + rejected + failed;
  result.reject_rate =
      issued > 0 ? static_cast<double>(rejected) / issued : 0.0;
  const MetricsSnapshot after = TakeSnapshot();
  const double batches = after.batches - before.batches;
  result.mean_batch_size =
      batches > 0 ? (after.accepted - before.accepted) / batches : 0.0;
  return result;
}

// Open-loop(ish) load: `threads` workers share one global schedule — request
// i is due at i/qps seconds — each worker owning the requests congruent to
// its index. Workers sleep until a request is due, so offered load tracks
// `qps` until the server saturates and the workers themselves fall behind.
LoadResult RunLoad(int port, const std::vector<std::string>& predicates,
                   int total_requests, double qps, int threads) {
  std::vector<std::vector<double>> latencies(threads);
  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  std::atomic<int> failed{0};

  const MetricsSnapshot before = TakeSnapshot();
  Stopwatch wall;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      serve::Client client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        failed.fetch_add((total_requests - w + threads - 1) / threads);
        return;
      }
      for (int i = w; i < total_requests; i += threads) {
        const double due = static_cast<double>(i) / qps;
        for (;;) {
          // Sleep the full remaining time (re-checking after each wake)
          // instead of polling: dozens of pacing threads spinning on short
          // sleeps would steal the CPU the server needs.
          const double remaining = due - wall.ElapsedSeconds();
          if (remaining <= 0.0) break;
          std::this_thread::sleep_for(
              std::chrono::duration<double>(remaining));
        }
        Stopwatch rtt;
        const auto reply = client.Estimate(
            predicates[static_cast<size_t>(i) % predicates.size()]);
        if (!reply.ok()) {
          failed.fetch_add(1);
          continue;
        }
        if (reply->overloaded) {
          rejected.fetch_add(1);
          continue;
        }
        accepted.fetch_add(1);
        latencies[static_cast<size_t>(w)].push_back(rtt.ElapsedMillis());
      }
    });
  }
  for (std::thread& t : workers) t.join();

  return FinishLoad(latencies, accepted.load(), rejected.load(),
                    failed.load(), wall.ElapsedSeconds(), before);
}

// Pipelined open-loop load: `connections` workers each keep up to `depth`
// estimate frames in flight on one connection (the SendEstimate /
// ReceiveEstimate split), sharing the same global schedule as RunLoad.
// Sends stay paced until the window fills; a full window blocks on a receive
// (the honest saturation behavior: the client cannot push more frames), and
// replies that arrive while a send is not yet due are drained opportunistically
// so the window keeps moving.
LoadResult RunPipelinedLoad(int port,
                            const std::vector<std::string>& predicates,
                            int total_requests, double qps, int connections,
                            int depth) {
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(connections));
  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  std::atomic<int> failed{0};

  const MetricsSnapshot before = TakeSnapshot();
  Stopwatch wall;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(connections));
  for (int w = 0; w < connections; ++w) {
    workers.emplace_back([&, w] {
      serve::Client client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        failed.fetch_add((total_requests - w + connections - 1) / connections);
        return;
      }
      std::deque<Stopwatch> inflight;  // send time of each outstanding frame
      bool dead = false;
      auto receive_one = [&] {
        const auto reply = client.ReceiveEstimate();
        const double ms = inflight.front().ElapsedMillis();
        inflight.pop_front();
        if (!reply.ok()) {
          failed.fetch_add(1);
          dead = true;
          return;
        }
        if (reply->overloaded) {
          rejected.fetch_add(1);
          return;
        }
        accepted.fetch_add(1);
        latencies[static_cast<size_t>(w)].push_back(ms);
      };
      for (int i = w; i < total_requests && !dead; i += connections) {
        const double due = static_cast<double>(i) / qps;
        while (!dead) {
          const double remaining = due - wall.ElapsedSeconds();
          if (remaining <= 0.0) break;
          if (inflight.empty()) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(remaining));
            continue;
          }
          // Wait for the next due time, but surface replies as they land.
          const int poll_ms = std::max(
              1, static_cast<int>(std::min(remaining * 1e3, 10.0)));
          const auto ready = client.ReplyReady(poll_ms);
          if (!ready.ok()) {
            dead = true;
          } else if (*ready) {
            receive_one();
          }
        }
        while (!dead && static_cast<int>(inflight.size()) >= depth) {
          receive_one();
        }
        if (dead) break;
        inflight.emplace_back();
        if (!client.SendEstimate(
                     predicates[static_cast<size_t>(i) % predicates.size()])
                 .ok()) {
          inflight.pop_back();
          failed.fetch_add(1);
          dead = true;
        }
      }
      while (!dead && !inflight.empty()) receive_one();
    });
  }
  for (std::thread& t : workers) t.join();
  return FinishLoad(latencies, accepted.load(), rejected.load(),
                    failed.load(), wall.ElapsedSeconds(), before);
}

std::string LoadResultJson(const LoadResult& r, double offered_qps) {
  std::ostringstream out;
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"offered_qps\": %.6g, \"accepted\": %d, \"rejected\": %d, "
      "\"failed\": %d, \"achieved_qps\": %.6g, \"reject_rate\": %.6g, "
      "\"mean_batch_size\": %.6g, "
      "\"latency_ms\": {\"mean\": %.6g, \"median\": %.6g, \"p95\": %.6g, "
      "\"p99\": %.6g, \"max\": %.6g}}",
      offered_qps, r.accepted, r.rejected, r.failed, r.achieved_qps,
      r.reject_rate, r.mean_batch_size, r.latency_ms.mean,
      r.latency_ms.median, r.latency_ms.p95, r.latency_ms.p99,
      r.latency_ms.max);
  out << buf;
  return out.str();
}

void PrintLoadRow(const char* label, double offered_qps,
                  const LoadResult& r) {
  std::printf(
      "%-18s %8.0f %9d %9d %8.1f %8.2f %8.2f %8.2f %8.2f\n", label,
      offered_qps, r.accepted, r.rejected, r.achieved_qps, r.mean_batch_size,
      r.latency_ms.median, r.latency_ms.p95, r.latency_ms.p99);
}

}  // namespace
}  // namespace iam::bench

int main(int argc, char** argv) {
  using namespace iam;
  const std::string json_path = bench::JsonOutPath(&argc, argv);
  bool quick = false;
  int connections = 16;   // pipelined loadgen: concurrent connections
  int pipeline_depth = 32;  // in-flight frames per connection
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--connections") == 0 && i + 1 < argc) {
      connections = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--pipeline") == 0 && i + 1 < argc) {
      pipeline_depth = std::atoi(argv[++i]);
    }
  }
  connections = std::max(connections, 1);
  pipeline_depth = std::max(pipeline_depth, 1);

  std::printf("training demo model...\n");
  std::unique_ptr<core::ArDensityEstimator> model =
      serve::TrainDemoEstimator();
  // Micro-batching's throughput win comes from fanning one EstimateBatch out
  // across the model's worker pool — a solo request can only ever use one
  // worker — so the served model gets several threads even when the bench
  // default (IAM_BENCH_THREADS) is the paper's serial setting.
  const int model_threads = std::max(bench::BenchThreads(), 4);
  // Enough replicas for the widest shard sweep below: every shard worker
  // flushes against its own estimator instance.
  constexpr int kMaxShards = 8;
  serve::ModelRegistry registry(std::move(model), "", model_threads,
                                kMaxShards);
  const std::vector<std::string> predicates = serve::DemoPredicates(256, 99);
  // More loadgen connections than queue slots, so offered load beyond
  // capacity actually overflows the queue instead of parking in the clients.
  const int kLoadThreads = 64;
  const int sweep_requests = quick ? 600 : 3000;

  // --- 1. QPS sweep, default batching. --------------------------------------
  serve::ServerOptions options;
  options.batcher.queue_capacity = 16;
  std::vector<std::string> sweep_rows;
  {
    serve::EstimatorServer server(registry, options);
    const Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    std::printf(
        "\n### Serving QPS sweep (max_batch=%d, max_delay=%.0fus, "
        "queue=%d)\n",
        options.batcher.max_batch, options.batcher.max_delay_s * 1e6,
        options.batcher.queue_capacity);
    std::printf("%-18s %8s %9s %9s %8s %8s %8s %8s %8s\n", "config",
                "offered", "accepted", "rejected", "qps", "batch", "p50ms",
                "p95ms", "p99ms");
    for (const double qps : {200.0, 1000.0, 5000.0, 20000.0}) {
      const bench::LoadResult r = bench::RunLoad(
          server.port(), predicates, sweep_requests, qps, kLoadThreads);
      bench::PrintLoadRow("sweep", qps, r);
      sweep_rows.push_back(bench::LoadResultJson(r, qps));
    }
    server.Shutdown();
  }

  // --- 2. Batching ablation: max_batch=1 vs default, same offered load. -----
  std::string ablation_json;
  {
    const double qps = 20000.0;
    serve::ServerOptions unbatched = options;
    unbatched.batcher.max_batch = 1;
    bench::LoadResult base, batched;
    {
      serve::EstimatorServer server(registry, unbatched);
      if (!server.Start().ok()) return 1;
      base = bench::RunLoad(server.port(), predicates, sweep_requests, qps,
                            kLoadThreads);
      server.Shutdown();
    }
    {
      serve::EstimatorServer server(registry, options);
      if (!server.Start().ok()) return 1;
      batched = bench::RunLoad(server.port(), predicates, sweep_requests, qps,
                               kLoadThreads);
      server.Shutdown();
    }
    std::printf("\n### Micro-batching ablation (offered %.0f qps)\n", qps);
    std::printf("%-18s %8s %9s %9s %8s %8s %8s %8s %8s\n", "config",
                "offered", "accepted", "rejected", "qps", "batch", "p50ms",
                "p95ms", "p99ms");
    bench::PrintLoadRow("max_batch=1", qps, base);
    bench::PrintLoadRow("dynamic", qps, batched);
    std::printf("micro-batching speedup: %.2fx throughput, mean batch %.2f\n",
                base.achieved_qps > 0
                    ? batched.achieved_qps / base.achieved_qps
                    : 0.0,
                batched.mean_batch_size);
    ablation_json = "{\"offered_qps\": 20000, \"max_batch_1\": " +
                    bench::LoadResultJson(base, qps) +
                    ", \"dynamic\": " + bench::LoadResultJson(batched, qps) +
                    "}";
  }

  // --- 3. Hot-swap under load. ----------------------------------------------
  std::string swap_json;
  {
    serve::EstimatorServer server(registry, options);
    if (!server.Start().ok()) return 1;
    const uint64_t version_before = registry.Current()->version;
    std::atomic<bool> done{false};
    std::thread swapper([&] {
      // Re-install a freshly trained generation mid-burst.
      std::unique_ptr<core::ArDensityEstimator> next =
          serve::TrainDemoEstimator(2000, 7);
      registry.Swap(std::move(next), "bench-swap");
      done.store(true);
    });
    const bench::LoadResult under_swap = bench::RunLoad(
        server.port(), predicates, sweep_requests, 1000.0, kLoadThreads);
    swapper.join();
    const uint64_t version_after = registry.Current()->version;
    server.Shutdown();
    std::printf("\n### Hot-swap under load\n");
    std::printf(
        "version %llu -> %llu; accepted %d, rejected %d, failed %d\n",
        static_cast<unsigned long long>(version_before),
        static_cast<unsigned long long>(version_after), under_swap.accepted,
        under_swap.rejected, under_swap.failed);
    if (under_swap.failed != 0) {
      std::fprintf(stderr, "FAIL: accepted requests were lost in the swap\n");
      return 1;
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"version_before\": %llu, \"version_after\": %llu, "
                  "\"accepted\": %d, \"rejected\": %d, \"failed\": %d}",
                  static_cast<unsigned long long>(version_before),
                  static_cast<unsigned long long>(version_after),
                  under_swap.accepted, under_swap.rejected, under_swap.failed);
    swap_json = buf;
  }

  // --- 4. Pooled sampler under serving load. --------------------------------
  // Same offered load, three sampler modes of the served model: the legacy
  // per-query oracle, the pooled megabatch at a fixed budget (bit-exact
  // default), and pooled with prefix sharing + adaptive CI early stopping.
  // The coalesced micro-batches are exactly the megabatches the pooled
  // sampler amortizes, so batching and pooling compound here.
  std::string pooled_json;
  {
    // Flip the sampler mode of EVERY replica between runs — a sharded server
    // snapshots one replica per shard, so a mode set only on replica 0 would
    // silently benchmark a mixed-mode generation. The server is idle in
    // between, and set_sampler_mode takes each estimator's batch mutex, so
    // even a straggling batch would serialize cleanly.
    const auto set_sampler_mode_all = [&registry](bool pooled, bool prefix,
                                                  int adaptive) {
      for (int i = 0; i < registry.replicas(); ++i) {
        registry.Current(i)->estimator->set_sampler_mode(pooled, prefix,
                                                         adaptive);
      }
    };
    const double qps = 5000.0;
    struct ServeMode {
      const char* label;
      const char* key;
      bool pooled;
      bool prefix;
      int adaptive;
    };
    constexpr ServeMode kServeModes[] = {
        {"legacy", "legacy", false, false, 0},
        {"pooled", "pooled", true, true, 0},
        {"pooled+adaptive", "pooled_adaptive", true, true, 32}};
    std::printf("\n### Pooled sampler under serving load (offered %.0f qps)\n",
                qps);
    std::printf("%-18s %8s %9s %9s %8s %8s %8s %8s %8s\n", "config",
                "offered", "accepted", "rejected", "qps", "batch", "p50ms",
                "p95ms", "p99ms");
    pooled_json = "{\"offered_qps\": 5000";
    for (const ServeMode& mode : kServeModes) {
      set_sampler_mode_all(mode.pooled, mode.prefix, mode.adaptive);
      serve::EstimatorServer server(registry, options);
      if (!server.Start().ok()) return 1;
      const bench::LoadResult r = bench::RunLoad(
          server.port(), predicates, sweep_requests, qps, kLoadThreads);
      server.Shutdown();
      bench::PrintLoadRow(mode.label, qps, r);
      pooled_json += std::string(", \"") + mode.key +
                     "\": " + bench::LoadResultJson(r, qps);
    }
    pooled_json += "}";
    set_sampler_mode_all(true, true, 0);  // restore the defaults
  }

  // --- 5. Shard scaling: pipelined loadgen, offered up to 100k QPS. ---------
  // Each shard adds its own queue, worker thread and model replica. On a
  // multi-core host the workers flush in parallel; on a single-core host the
  // residual gain comes from N× aggregate admission capacity. Either way the
  // acceptance bar is graceful degradation: achieved QPS must hold flat from
  // saturation through 100k offered, with the excess absorbed as explicit
  // fast-rejects.
  std::string shards_json = "[";
  {
    const int shard_requests = quick ? 4000 : 20000;
    std::printf(
        "\n### Shard scaling, pipelined loadgen (%d connections x depth %d)\n",
        connections, pipeline_depth);
    std::printf("%-18s %8s %9s %9s %8s %8s %8s %8s %8s\n", "config",
                "offered", "accepted", "rejected", "qps", "batch", "p50ms",
                "p95ms", "p99ms");
    bool first_entry = true;
    for (const int shards : {1, 2, 4, 8}) {
      serve::ServerOptions sharded = options;
      sharded.num_shards = shards;
      serve::EstimatorServer server(registry, sharded);
      if (!server.Start().ok()) return 1;
      std::string points = "[";
      double saturated_qps = 0.0;
      double top_qps = 0.0;
      bool first_point = true;
      for (const double qps : {20000.0, 50000.0, 100000.0}) {
        const bench::LoadResult r =
            bench::RunPipelinedLoad(server.port(), predicates, shard_requests,
                                    qps, connections, pipeline_depth);
        char label[32];
        std::snprintf(label, sizeof(label), "shards=%d", shards);
        bench::PrintLoadRow(label, qps, r);
        if (!first_point) points += ", ";
        first_point = false;
        points += bench::LoadResultJson(r, qps);
        saturated_qps = std::max(saturated_qps, r.achieved_qps);
        top_qps = r.achieved_qps;
      }
      points += "]";
      if (saturated_qps > 0.0 && top_qps < 0.8 * saturated_qps) {
        std::fprintf(stderr,
                     "WARN: shards=%d achieved QPS dropped past saturation "
                     "(%.0f -> %.0f at 100k offered)\n",
                     shards, saturated_qps, top_qps);
      }
      if (!first_entry) shards_json += ", ";
      first_entry = false;
      shards_json += "{\"shards\": " + std::to_string(shards) +
                     ", \"connections\": " + std::to_string(connections) +
                     ", \"pipeline_depth\": " +
                     std::to_string(pipeline_depth) + ", \"points\": " +
                     points + "}";
      server.Shutdown();
    }
  }
  shards_json += "]";

  // --- 6. TCP_NODELAY ablation. ---------------------------------------------
  // Pipelined responses are where Nagle hurts: with several responses in
  // flight, a Nagled server socket holds the next small response until the
  // client's delayed ACK.
  std::string nodelay_json;
  {
    const double qps = 2000.0;
    const int ablation_requests = quick ? 1000 : 4000;
    bench::LoadResult nagled, nodelay;
    {
      serve::ServerOptions no_nodelay = options;
      no_nodelay.tcp_nodelay = false;
      serve::EstimatorServer server(registry, no_nodelay);
      if (!server.Start().ok()) return 1;
      nagled = bench::RunPipelinedLoad(server.port(), predicates,
                                       ablation_requests, qps, 4, 8);
      server.Shutdown();
    }
    {
      serve::EstimatorServer server(registry, options);
      if (!server.Start().ok()) return 1;
      nodelay = bench::RunPipelinedLoad(server.port(), predicates,
                                        ablation_requests, qps, 4, 8);
      server.Shutdown();
    }
    std::printf("\n### TCP_NODELAY ablation (pipelined, offered %.0f qps)\n",
                qps);
    std::printf("%-18s %8s %9s %9s %8s %8s %8s %8s %8s\n", "config",
                "offered", "accepted", "rejected", "qps", "batch", "p50ms",
                "p95ms", "p99ms");
    bench::PrintLoadRow("nagle", qps, nagled);
    bench::PrintLoadRow("nodelay", qps, nodelay);
    std::printf("nodelay p50 effect: %.2fms -> %.2fms\n",
                nagled.latency_ms.median, nodelay.latency_ms.median);
    nodelay_json = "{\"offered_qps\": 2000, \"nagle\": " +
                   bench::LoadResultJson(nagled, qps) + ", \"nodelay\": " +
                   bench::LoadResultJson(nodelay, qps) + "}";
  }

  // --- 7. Query-log reconciliation (DESIGN.md §17). -------------------------
  // The diagnostics ring is a second, per-query view of the same work the
  // aggregate counters sum: one record per accepted request, and the ring's
  // draw total must equal the iam_sampler_samples_total delta exactly. A
  // mismatch means lost records or misattributed draws, and fails the bench.
  std::string querylog_json;
  {
    obs::QueryLog& log = obs::QueryLog::Global();
    obs::Counter& sampler_total =
        obs::MetricRegistry::Global().GetCounter("iam_sampler_samples_total");
    const uint64_t accepted_before = serve::ServeMetrics::Get().accepted.Total();
    const uint64_t appended_before = log.Appended();
    const uint64_t ring_draws_before = log.TotalDraws();
    const uint64_t sampler_before = sampler_total.Total();

    serve::EstimatorServer server(registry, options);
    if (!server.Start().ok()) return 1;
    const bench::LoadResult r = bench::RunLoad(
        server.port(), predicates, sweep_requests, 2000.0, kLoadThreads);
    server.Shutdown();

    const uint64_t accepted =
        serve::ServeMetrics::Get().accepted.Total() - accepted_before;
    const uint64_t records = log.Appended() - appended_before;
    const uint64_t ring_draws = log.TotalDraws() - ring_draws_before;
    const uint64_t sampler_draws = sampler_total.Total() - sampler_before;
    const bool records_match = records == accepted;
    const bool draws_match = ring_draws == sampler_draws;
    std::printf("\n### Query-log reconciliation (offered 2000 qps)\n");
    std::printf(
        "accepted %llu, ring records %llu (%s); sampler draws %llu, "
        "ring draws %llu (%s)\n",
        static_cast<unsigned long long>(accepted),
        static_cast<unsigned long long>(records),
        records_match ? "match" : "MISMATCH",
        static_cast<unsigned long long>(sampler_draws),
        static_cast<unsigned long long>(ring_draws),
        draws_match ? "match" : "MISMATCH");
    if (!records_match || !draws_match || r.failed != 0) {
      std::fprintf(stderr,
                   "FAIL: query-log diagnostics do not reconcile with the "
                   "sampler counters\n");
      return 1;
    }
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\"offered_qps\": 2000, \"accepted\": %llu, "
                  "\"ring_records\": %llu, \"records_match\": %s, "
                  "\"sampler_draws\": %llu, \"ring_draws\": %llu, "
                  "\"draws_match\": %s}",
                  static_cast<unsigned long long>(accepted),
                  static_cast<unsigned long long>(records),
                  records_match ? "true" : "false",
                  static_cast<unsigned long long>(sampler_draws),
                  static_cast<unsigned long long>(ring_draws),
                  draws_match ? "true" : "false");
    querylog_json = buf;
  }

  // --- 8. Online adaptation: shift -> feedback -> corrector -> retrain. -----
  // A fresh registry serves the demo model while the demo distribution
  // shifts under it (ground truth moves to ShiftedDemoTable, +1.5 on every
  // column). Inline feedback teaches the per-region corrector the shifted
  // ratios; appended shifted rows fill the reservoir; the windowed-p90 drift
  // trigger retrains from the reservoir and swaps the new generation in.
  std::string adapt_json;
  {
    serve::ModelRegistry adapt_registry(serve::TrainDemoEstimator(), "",
                                        model_threads, 2);
    adapt::AdaptOptions aopts;
    aopts.trigger_p90_qerror = 1.5;
    aopts.window = 64;
    aopts.min_window_fill = 16;
    // One feedback pass is 64 records, so a single pass cannot fire twice.
    aopts.min_feedback_between_retrains = 64;
    aopts.min_retrain_rows = 2048;
    aopts.retrain_epochs = 1;
    adapt::AdaptController controller(adapt_registry, aopts);
    serve::ServerOptions adapt_options = options;
    adapt_options.num_shards = 2;
    adapt_options.adapt = &controller;
    serve::EstimatorServer server(adapt_registry, adapt_options);
    if (!server.Start().ok()) return 1;

    // Ground truth before and after the shift, by full scan over a large
    // sample of each distribution. Seed 5 is the demo model's training seed:
    // MakeSynTwi's seed draws the cluster centers, so a different seed would
    // be a different distribution, not a bigger sample of this one.
    const data::Table base_table = serve::DemoTable(20000, 5);
    const data::Table shifted_table = serve::ShiftedDemoTable(20000, 5, 1.5);
    const size_t kFloorRows = base_table.num_rows();
    std::vector<std::string> adapt_preds;
    std::vector<double> truth_base, truth_shift;
    for (const std::string& text : serve::DemoPredicates(64, 7)) {
      const Result<query::Query> parsed =
          query::ParsePredicates(base_table, text);
      if (!parsed.ok()) continue;
      adapt_preds.push_back(text);
      truth_base.push_back(query::TrueSelectivity(base_table, *parsed));
      truth_shift.push_back(query::TrueSelectivity(shifted_table, *parsed));
    }

    int adapt_failed = 0;
    serve::Client probe;
    if (!probe.Connect("127.0.0.1", server.port()).ok()) return 1;
    const auto qerror_stage = [&](const std::vector<double>& truth) {
      std::vector<double> qs;
      for (size_t i = 0; i < adapt_preds.size(); ++i) {
        const auto reply = probe.Estimate(adapt_preds[i]);
        if (!reply.ok() || reply->overloaded) {
          ++adapt_failed;
          continue;
        }
        qs.push_back(query::QError(truth[i], reply->selectivity, kFloorRows));
      }
      return QuantileSummary(std::move(qs));
    };
    const auto feedback_pass = [&] {
      for (size_t i = 0; i < adapt_preds.size(); ++i) {
        adapt::FeedbackPayload fb;
        fb.actual = truth_shift[i];
        fb.predicates = adapt_preds[i];
        if (!probe.Feedback(adapt::EncodeFeedbackPayload(fb)).ok()) {
          ++adapt_failed;
        }
      }
      controller.Flush();
    };

    const QuantileSummary pre = qerror_stage(truth_base);
    const QuantileSummary at_shift = qerror_stage(truth_shift);

    // One feedback pass teaches the corrector the shifted ratios.
    feedback_pass();
    const QuantileSummary corrected = qerror_stage(truth_shift);

    // Stream shifted rows into the reservoir, then keep the feedback loop
    // running until the drift trigger retrains and swaps.
    const data::Table append_rows = serve::ShiftedDemoTable(8192, 5, 1.5);
    adapt::AppendPayload payload;
    payload.cols = append_rows.num_columns();
    payload.values.reserve(append_rows.num_rows() *
                           static_cast<size_t>(append_rows.num_columns()));
    for (size_t r = 0; r < append_rows.num_rows(); ++r) {
      for (int c = 0; c < append_rows.num_columns(); ++c) {
        payload.values.push_back(append_rows.column(c).values[r]);
      }
    }
    if (!probe.AppendData(adapt::EncodeAppendPayload(payload)).ok()) {
      ++adapt_failed;
    }
    controller.Flush();
    int passes = 0;
    while (controller.Retrains() == 0 && passes < 10) {
      feedback_pass();
      ++passes;
    }
    const uint64_t version_after = adapt_registry.Current()->version;
    server.Shutdown();
    if (controller.Retrains() == 0) {
      std::fprintf(stderr, "FAIL: drift trigger never fired a retrain\n");
      return 1;
    }
    const QuantileSummary retrained = [&] {
      // Fresh server on the swapped generation for the recovery read.
      serve::EstimatorServer after(adapt_registry, adapt_options);
      if (!after.Start().ok()) std::exit(1);
      serve::Client reader;
      if (!reader.Connect("127.0.0.1", after.port()).ok()) std::exit(1);
      std::vector<double> qs;
      for (size_t i = 0; i < adapt_preds.size(); ++i) {
        const auto reply = reader.Estimate(adapt_preds[i]);
        if (!reply.ok() || reply->overloaded) {
          ++adapt_failed;
          continue;
        }
        qs.push_back(
            query::QError(truth_shift[i], reply->selectivity, kFloorRows));
      }
      after.Shutdown();
      return QuantileSummary(std::move(qs));
    }();
    const double recovery_ratio =
        pre.Quantile(0.9) > 0 ? retrained.Quantile(0.9) / pre.Quantile(0.9)
                              : 0.0;

    // Feedback-ingest overhead on the served p50: the same offered load with
    // and without a concurrent seq-form feedback stream (~100 records/s, a
    // 10% feedback:query ratio), on a trigger-disabled controller so no
    // retrain perturbs the measurement. Offered load sits at half the
    // sweep's saturation point: at the knee, any added frame amplifies
    // through queueing and the number reads as congestion, not ingest cost.
    // Ingest shifts the whole latency curve, so the min p50 across
    // alternating reps reads that shift under the scheduler noise that
    // dominates any single rep.
    double base_p50 = 0.0, with_p50 = 0.0;
    {
      adapt::AdaptOptions ingest_opts;
      ingest_opts.trigger_p90_qerror = 0.0;
      adapt::AdaptController ingest(adapt_registry, ingest_opts);
      serve::ServerOptions ingest_server_opts = options;
      ingest_server_opts.adapt = &ingest;
      serve::EstimatorServer ingest_server(adapt_registry, ingest_server_opts);
      if (!ingest_server.Start().ok()) return 1;
      const double qps = 1000.0;
      std::vector<double> base_p50s, with_p50s;
      // Paired arms: BOTH run the identical feeder thread, connection and
      // wake cadence; only the with-arm actually sends the frames. The
      // extra runnable thread alone shifts p50 on an oversubscribed host,
      // so it must be present in both arms for the delta to read the
      // ingest path and nothing else.
      const auto run_arm = [&](bool send_feedback) {
        std::atomic<bool> stop_feedback{false};
        std::thread feeder([&] {
          serve::Client fc;
          if (!fc.Connect("127.0.0.1", ingest_server.port()).ok()) return;
          while (!stop_feedback.load(std::memory_order_relaxed)) {
            // Feed back against the most recent query-log record — the
            // cheap ingest path (seq lookup, no inline estimate).
            const uint64_t seq = obs::QueryLog::Global().Appended();
            if (send_feedback && seq > 0) {
              adapt::FeedbackPayload fb;
              fb.seq = seq;
              fb.actual = 0.5;
              (void)fc.Feedback(adapt::EncodeFeedbackPayload(fb));
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
          }
        });
        const bench::LoadResult r = bench::RunLoad(
            ingest_server.port(), predicates, sweep_requests, qps,
            kLoadThreads);
        stop_feedback.store(true, std::memory_order_relaxed);
        feeder.join();
        return r;
      };
      // Alternate which mode runs first so slow machine-wide drift (thermal,
      // background load) cancels instead of biasing one mode.
      for (int rep = 0; rep < 4; ++rep) {
        bench::LoadResult base, with;
        if (rep % 2 == 0) {
          base = run_arm(/*send_feedback=*/false);
          with = run_arm(/*send_feedback=*/true);
        } else {
          with = run_arm(/*send_feedback=*/true);
          base = run_arm(/*send_feedback=*/false);
        }
        adapt_failed += base.failed + with.failed;
        base_p50s.push_back(base.latency_ms.median);
        with_p50s.push_back(with.latency_ms.median);
      }
      ingest_server.Shutdown();
      base_p50 = *std::min_element(base_p50s.begin(), base_p50s.end());
      with_p50 = *std::min_element(with_p50s.begin(), with_p50s.end());
    }
    const double overhead_pct =
        base_p50 > 0 ? (with_p50 - base_p50) / base_p50 * 100.0 : 0.0;

    std::printf("\n### Online adaptation (shift +1.5, %zu queries)\n",
                adapt_preds.size());
    std::printf(
        "q-error p50/p90: pre-shift %.3f/%.3f, at shift %.3f/%.3f, "
        "corrected %.3f/%.3f, retrained %.3f/%.3f\n",
        pre.Median(), pre.Quantile(0.9), at_shift.Median(),
        at_shift.Quantile(0.9), corrected.Median(), corrected.Quantile(0.9),
        retrained.Median(), retrained.Quantile(0.9));
    std::printf(
        "retrains %llu (model v%llu), recovery ratio %.3f, failed %d, "
        "feedback-ingest p50 %.3fms -> %.3fms (%.2f%%)\n",
        static_cast<unsigned long long>(controller.Retrains()),
        static_cast<unsigned long long>(version_after), recovery_ratio,
        adapt_failed, base_p50, with_p50, overhead_pct);
    if (adapt_failed != 0) {
      std::fprintf(stderr, "FAIL: requests failed during adaptation\n");
      return 1;
    }
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "{\"queries\": %zu, \"shift\": 1.5, "
        "\"qerror_p50_preshift\": %.6g, \"qerror_p90_preshift\": %.6g, "
        "\"qerror_p50_shift\": %.6g, \"qerror_p90_shift\": %.6g, "
        "\"qerror_p50_corrected\": %.6g, \"qerror_p90_corrected\": %.6g, "
        "\"qerror_p50_retrained\": %.6g, \"qerror_p90_retrained\": %.6g, "
        "\"recovery_ratio\": %.6g, \"retrains\": %llu, "
        "\"model_version_after\": %llu, \"failed\": %d, "
        "\"ingest_base_p50_ms\": %.6g, \"ingest_feedback_p50_ms\": %.6g, "
        "\"feedback_overhead_pct\": %.6g}",
        adapt_preds.size(), pre.Median(), pre.Quantile(0.9),
        at_shift.Median(), at_shift.Quantile(0.9), corrected.Median(),
        corrected.Quantile(0.9), retrained.Median(), retrained.Quantile(0.9),
        recovery_ratio,
        static_cast<unsigned long long>(controller.Retrains()),
        static_cast<unsigned long long>(version_after), adapt_failed,
        base_p50, with_p50, overhead_pct);
    adapt_json = buf;
  }

  if (!json_path.empty()) {
    std::string sweep = "[";
    for (size_t i = 0; i < sweep_rows.size(); ++i) {
      if (i > 0) sweep += ", ";
      sweep += sweep_rows[i];
    }
    sweep += "]";
    bool ok = bench::MergeJsonSection(json_path, "serve_sweep", sweep);
    ok = bench::MergeJsonSection(json_path, "serve_batching", ablation_json) &&
         ok;
    ok = bench::MergeJsonSection(json_path, "serve_hot_swap", swap_json) && ok;
    ok = bench::MergeJsonSection(json_path, "serve_pooled", pooled_json) && ok;
    ok = bench::MergeJsonSection(json_path, "serve_shards", shards_json) && ok;
    ok = bench::MergeJsonSection(json_path, "serve_nodelay", nodelay_json) &&
         ok;
    ok = bench::MergeJsonSection(json_path, "serve_querylog", querylog_json) &&
         ok;
    ok = bench::MergeJsonSection(json_path, "serve_adapt", adapt_json) && ok;
    ok = bench::MergeMetricsIntoJson(json_path) && ok;
    if (!ok) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nresults written to %s\n", json_path.c_str());
  }
  return 0;
}
