// Reproduces Tables 9-11: IAM's GMM(30) against the alternative domain
// reducers — equi-depth histogram, spline histogram, UMM — at 30 / 100 / 1000
// components, on WISDM, TWI and HIGGS (median / 95th / max q-error and
// estimation time).

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "util/stopwatch.h"

namespace iam::bench {
namespace {

struct Variant {
  std::string label;
  core::ReducerKind kind;
  int components;
};

void Run(const std::string& dataset, const char* table_id) {
  std::printf("\n### Table %s: domain reducing methods on %s\n", table_id,
              dataset.c_str());
  const data::Table table = MakeDataset(dataset);
  Rng rng(kDataSeed + 707);
  query::WorkloadOptions wopts;
  wopts.num_queries = 40;
  const auto test = query::GenerateEvaluatedWorkload(table, wopts, rng);

  const std::vector<Variant> variants = {
      {"GMM (30)", core::ReducerKind::kGmm, 30},
      {"Laplace (30)", core::ReducerKind::kLaplace, 30},
      {"Hist (30)", core::ReducerKind::kEquiDepth, 30},
      {"Hist (100)", core::ReducerKind::kEquiDepth, 100},
      {"Hist (1000)", core::ReducerKind::kEquiDepth, 1000},
      {"Spline (30)", core::ReducerKind::kSpline, 30},
      {"Spline (100)", core::ReducerKind::kSpline, 100},
      {"Spline (1000)", core::ReducerKind::kSpline, 1000},
      {"UMM (30)", core::ReducerKind::kUmm, 30},
      {"UMM (100)", core::ReducerKind::kUmm, 100},
      {"UMM (1000)", core::ReducerKind::kUmm, 1000},
  };

  std::printf("%-14s %10s %10s %10s %12s\n", "method", "median", "95th",
              "max", "est ms");
  for (const Variant& v : variants) {
    core::ArEstimatorOptions opts = BenchIamOptions();
    opts.epochs = 4;  // sweep budget
    opts.max_train_rows = 12000;
    opts.reducer_kind = v.kind;
    opts.reducer_components = v.components;
    core::ArDensityEstimator est(table, opts);
    est.Train();

    std::vector<double> errors;
    Stopwatch watch;
    for (size_t i = 0; i < test.queries.size(); ++i) {
      const double estimate = est.Estimate(test.queries[i]);
      errors.push_back(query::QError(test.true_selectivities[i], estimate,
                                     table.num_rows()));
    }
    const double ms =
        watch.ElapsedMillis() / static_cast<double>(test.queries.size());
    const ErrorReport report = MakeErrorReport(errors);
    std::printf("%-14s %10.3g %10.3g %10.3g %12.2f\n", v.label.c_str(),
                report.median, report.p95, report.max, ms);
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace iam::bench

int main(int argc, char** argv) {
  const std::string only = argc > 1 ? argv[1] : "";
  if (only.empty() || only == "wisdm") iam::bench::Run("wisdm", "9");
  if (only.empty() || only == "twi") iam::bench::Run("twi", "10");
  if (only.empty() || only == "higgs") iam::bench::Run("higgs", "11");
  return 0;
}
