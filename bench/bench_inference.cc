// Reproduces Figure 4: single-query inference latency of every estimator on
// each dataset (ms/query, averaged over the test workload).

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "util/stopwatch.h"

namespace iam::bench {
namespace {

void Run(const std::string& dataset) {
  const data::Table table = MakeDataset(dataset);
  Rng rng(kDataSeed + 177);
  query::WorkloadOptions wopts;
  wopts.num_queries = 20;
  const auto test = query::GenerateEvaluatedWorkload(table, wopts, rng);
  wopts.num_queries = 400;  // enough for mscn/kde fitting
  const auto train = query::GenerateEvaluatedWorkload(table, wopts, rng);

  auto iam = MakeTrainedEstimator("iam", table, train, 0);
  const size_t iam_bytes = iam->SizeBytes();

  std::printf("\n### Figure 4: inference time on %s (ms per query)\n",
              dataset.c_str());
  for (const std::string& name : SingleTableEstimators()) {
    std::unique_ptr<estimator::Estimator> est;
    estimator::Estimator* target = name == "iam" ? iam.get() : nullptr;
    if (target == nullptr) {
      est = MakeTrainedEstimator(name, table, train, iam_bytes);
      target = est.get();
    }
    // Warm up, then time.
    target->Estimate(test.queries[0]);
    Stopwatch watch;
    for (const auto& q : test.queries) target->Estimate(q);
    const double ms = watch.ElapsedMillis() /
                      static_cast<double>(test.queries.size());
    std::printf("%-10s %10.3f ms/query\n", name.c_str(), ms);
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace iam::bench

int main(int argc, char** argv) {
  const std::string only = argc > 1 ? argv[1] : "";
  for (const char* dataset : {"wisdm", "twi", "higgs"}) {
    if (only.empty() || only == dataset) iam::bench::Run(dataset);
  }
  return 0;
}
