// Reproduces Tables 2-5 of the paper: q-error quantiles of every estimator on
// the WISDM / TWI / HIGGS single-table workloads and the IMDB join workload.
// Pass a dataset name (wisdm|twi|higgs|imdb) to run a single table.

#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_common.h"
#include "util/stopwatch.h"

namespace iam::bench {
namespace {

void RunSingleTable(const std::string& dataset, const char* table_id) {
  std::printf("\n### Table %s: estimation errors on %s (synthetic)\n",
              table_id, dataset.c_str());
  const data::Table table = MakeDataset(dataset);

  Rng rng(kDataSeed + 77);
  query::WorkloadOptions wopts;
  wopts.num_queries = kTestQueries;
  const auto test = query::GenerateEvaluatedWorkload(table, wopts, rng);
  wopts.num_queries = kTrainQueries;
  const auto train = query::GenerateEvaluatedWorkload(table, wopts, rng);

  // IAM first: its size also calibrates the Sampling baseline (the paper
  // matches Sampling's space budget to IAM's).
  auto iam = MakeTrainedEstimator("iam", table, train, 0);
  const size_t iam_bytes = iam->SizeBytes();

  PrintErrorHeader();
  for (const std::string& name : SingleTableEstimators()) {
    Stopwatch watch;
    std::unique_ptr<estimator::Estimator> est;
    estimator::Estimator* target = nullptr;
    if (name == "iam") {
      target = iam.get();
    } else {
      est = MakeTrainedEstimator(name, table, train, iam_bytes);
      target = est.get();
    }
    const double build_s = watch.ElapsedSeconds();
    watch.Restart();
    const ErrorReport report = EvaluateErrors(*target, test,
                                              table.num_rows());
    PrintErrorRow(name, report);
    std::fprintf(stderr, "  [%s: build %.1fs, eval %.1fs]\n", name.c_str(),
                 build_s, watch.ElapsedSeconds());
  }
}

void RunImdb() {
  std::printf("\n### Table 5: estimation errors on IMDB (synthetic joins)\n");
  const ImdbBundle imdb = MakeImdb();

  // Workload over the join distribution; ground truth on the materialized
  // join. AR estimators train on exact-weight join samples (NeuroCard's
  // recipe), everything else trains on the same sample table.
  Rng rng(kDataSeed + 99);
  const join::ExactWeightSampler sampler(imdb.schema);
  const data::Table join_sample = sampler.Sample(20000, rng);

  query::WorkloadOptions wopts;
  wopts.num_queries = kTestQueries;
  wopts.column_prob = 0.45;
  const auto test =
      query::GenerateEvaluatedWorkload(imdb.joined, wopts, rng);
  wopts.num_queries = kTrainQueries;
  auto train = query::GenerateEvaluatedWorkload(join_sample, wopts, rng);

  auto iam = MakeTrainedEstimator("iam", join_sample, train, 0);
  const size_t iam_bytes = iam->SizeBytes();

  PrintErrorHeader();
  for (const std::string& name : JoinEstimators()) {
    std::unique_ptr<estimator::Estimator> est;
    estimator::Estimator* target = nullptr;
    if (name == "iam") {
      target = iam.get();
    } else {
      est = MakeTrainedEstimator(name, join_sample, train, iam_bytes);
      target = est.get();
    }
    const ErrorReport report =
        EvaluateErrors(*target, test, imdb.joined.num_rows());
    PrintErrorRow(name, report);
  }
}

}  // namespace
}  // namespace iam::bench

int main(int argc, char** argv) {
  const std::string only = argc > 1 ? argv[1] : "";
  if (only.empty() || only == "wisdm") iam::bench::RunSingleTable("wisdm", "2");
  if (only.empty() || only == "twi") iam::bench::RunSingleTable("twi", "3");
  if (only.empty() || only == "higgs") iam::bench::RunSingleTable("higgs", "4");
  if (only.empty() || only == "imdb") iam::bench::RunImdb();
  return 0;
}
