#ifndef IAM_BENCH_BENCH_COMMON_H_
#define IAM_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "core/ar_density_estimator.h"
#include "core/presets.h"
#include "data/table.h"
#include "estimator/estimator.h"
#include "join/star_schema.h"
#include "query/workload.h"
#include "util/quantiles.h"

namespace iam::bench {

// Row counts scaled ~100x down from the paper's datasets so every experiment
// runs on a single CPU core; see DESIGN.md §4 and EXPERIMENTS.md.
inline constexpr size_t kWisdmRows = 48000;   // paper: 4.8e6
inline constexpr size_t kTwiRows = 50000;     // paper: 1.9e7
inline constexpr size_t kHiggsRows = 40000;   // paper: 1.1e7
inline constexpr size_t kImdbTitles = 1200;   // join of ~1e5 rows
inline constexpr uint64_t kDataSeed = 20220329;  // EDBT 2022 :-)

// Workload sizes (paper: 2K test + 10K training queries).
inline constexpr int kTestQueries = 150;
inline constexpr int kTrainQueries = 800;

// Worker threads handed to every estimator built by MakeTrainedEstimator
// (build-time fitting and EstimateBatch). Reads the IAM_BENCH_THREADS
// environment variable; defaults to 1 (fully serial, the paper's setting).
int BenchThreads();

// Extracts `--json <path>` (or `--json=<path>`) from the argument list,
// compacting argv in place, and returns the path ("" when absent). Bench
// mains pass the remaining args to their framework and mirror results into
// the machine-readable file, e.g. BENCH_kernels.json at the repo root.
std::string JsonOutPath(int* argc, char** argv);

// Inserts or replaces one top-level section of a JSON results file
// (util::UpsertTopLevelKey), so several sections — or several binaries
// appending to one BENCH_*.json — compose without clobbering each other and
// re-runs replace their own section instead of duplicating the key. Creates
// the file holding just that section when absent or malformed. Returns false
// on I/O failure.
bool MergeJsonSection(const std::string& path, const std::string& key,
                      const std::string& value_json);

// Splices the current global metrics snapshot (obs::MetricsToJson) into an
// existing JSON results file — e.g. one google-benchmark just wrote — as the
// top-level "iam_metrics" section (MergeJsonSection semantics: replaced on
// re-run, never duplicated). Returns false on I/O failure.
bool MergeMetricsIntoJson(const std::string& path);

// Builds one of the single-table datasets: "wisdm", "twi", "higgs".
data::Table MakeDataset(const std::string& name);

// The IMDB-like star schema plus its materialized join (ground truth).
struct ImdbBundle {
  join::StarSchema schema;
  data::Table joined;
};
ImdbBundle MakeImdb();

// Paper-faithful estimator configurations at bench scale.
core::ArEstimatorOptions BenchIamOptions();
core::ArEstimatorOptions BenchNeurocardOptions();

// Builds and trains one estimator by name: sampling, postgres, mhist,
// bayesnet, kde, mscn, neurocard, iam. `train` supplies the query-driven
// training pairs (mscn, kde tuning); pass an empty workload to skip them.
// `iam_size_bytes` sizes the Sampling baseline to IAM's space budget as the
// paper does; pass 0 to default to 0.5%.
std::unique_ptr<estimator::Estimator> MakeTrainedEstimator(
    const std::string& name, const data::Table& table,
    const query::EvaluatedWorkload& train, size_t iam_size_bytes);

// Estimator sets used by the paper's tables.
std::vector<std::string> SingleTableEstimators();
std::vector<std::string> JoinEstimators();

// Prints one table row: name + five-number q-error summary.
void PrintErrorRow(const std::string& name, const ErrorReport& report);
void PrintErrorHeader();

// Runs the workload through the estimator and reports q-errors.
ErrorReport EvaluateErrors(estimator::Estimator& est,
                           const query::EvaluatedWorkload& workload,
                           size_t num_rows);

}  // namespace iam::bench

#endif  // IAM_BENCH_BENCH_COMMON_H_
