// Microbenchmarks (google-benchmark) of the numeric kernels everything else
// is built on: dense linear forward/backward, ResMADE conditionals, GMM
// assignment and range masses. Useful when tuning the substrate.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "ar/resmade.h"
#include "bench/bench_common.h"
#include "gmm/gmm1d.h"
#include "nn/kernels.h"
#include "nn/matrix.h"
#include "util/random.h"

namespace iam {
namespace {

// Reports the dense-GEMM arithmetic rate alongside items/s: flops is the
// per-iteration floating-point work (2*B*I*O for a forward pass).
void SetGflops(benchmark::State& state, int64_t flops) {
  state.counters["gflops"] = benchmark::Counter(
      static_cast<double>(flops) * state.iterations(),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

void BM_LinearForward(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const int in = 256, out = 256;
  Rng rng(1);
  nn::Matrix x(batch, in), w(out, in), y, wt_scratch;
  for (size_t i = 0; i < x.size(); ++i) x.data()[i] = (float)rng.Gaussian();
  for (size_t i = 0; i < w.size(); ++i) w.data()[i] = (float)rng.Gaussian();
  std::vector<float> bias(out, 0.1f);
  for (auto _ : state) {
    nn::LinearForward(x, w, bias, y, wt_scratch);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * batch * in * out);
  SetGflops(state, 2LL * batch * in * out);
}
BENCHMARK(BM_LinearForward)->Arg(64)->Arg(256);

// The retained naive kernel, benchmarked for the fast/reference speedup
// ratio (the fuzz tests prove they compute identical results).
void BM_LinearForwardRef(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const int in = 256, out = 256;
  Rng rng(1);
  nn::Matrix x(batch, in), w(out, in), y;
  for (size_t i = 0; i < x.size(); ++i) x.data()[i] = (float)rng.Gaussian();
  for (size_t i = 0; i < w.size(); ++i) w.data()[i] = (float)rng.Gaussian();
  std::vector<float> bias(out, 0.1f);
  for (auto _ : state) {
    nn::LinearForwardRef(x, w, bias, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * batch * in * out);
  SetGflops(state, 2LL * batch * in * out);
}
BENCHMARK(BM_LinearForwardRef)->Arg(256);

void BM_LinearReluForward(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const int in = 256, out = 256;
  Rng rng(1);
  nn::Matrix x(batch, in), w(out, in), y, wt_scratch;
  for (size_t i = 0; i < x.size(); ++i) x.data()[i] = (float)rng.Gaussian();
  for (size_t i = 0; i < w.size(); ++i) w.data()[i] = (float)rng.Gaussian();
  std::vector<float> bias(out, 0.1f);
  for (auto _ : state) {
    nn::LinearReluForward(x, w, bias, y, wt_scratch);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * batch * in * out);
  SetGflops(state, 2LL * batch * in * out);
}
BENCHMARK(BM_LinearReluForward)->Arg(64)->Arg(256);

// Pre-transposed weights — the eval-path steady state, where the per-call
// transpose has been hoisted into the workspace cache.
void BM_LinearForwardT(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const int in = 256, out = 256;
  Rng rng(1);
  nn::Matrix x(batch, in), w(out, in), wt, y;
  for (size_t i = 0; i < x.size(); ++i) x.data()[i] = (float)rng.Gaussian();
  for (size_t i = 0; i < w.size(); ++i) w.data()[i] = (float)rng.Gaussian();
  nn::TransposeInto(w, wt);
  std::vector<float> bias(out, 0.1f);
  for (auto _ : state) {
    nn::LinearForwardT(x, wt, bias, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * batch * in * out);
  SetGflops(state, 2LL * batch * in * out);
}
BENCHMARK(BM_LinearForwardT)->Arg(64)->Arg(256);

// First-layer shape: a wide one-hot encoding (~1.5% density) feeding the
// first hidden layer. items/s counts batch rows; gflops counts only the
// useful (nonzero) flops, so it is not comparable to the dense kernels.
void BM_SparseLinearForward(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const int in = 1024, out = 256, nnz_per_row = 16;
  Rng rng(1);
  nn::Matrix w(out, in), wt, y;
  for (size_t i = 0; i < w.size(); ++i) w.data()[i] = (float)rng.Gaussian();
  nn::TransposeInto(w, wt);
  std::vector<float> bias(out, 0.1f);
  nn::SparseRows sx;
  sx.Reset(in);
  for (int r = 0; r < batch; ++r) {
    // Strides in [1, 60] from a start below 60 keep the 16 lane indices
    // strictly increasing and below `in` (60 + 15 * 60 < 1024).
    int lane = static_cast<int>(rng.UniformInt(60));
    for (int k = 0; k < nnz_per_row; ++k) {
      sx.Push(lane, 1.0f);
      lane += 1 + static_cast<int>(rng.UniformInt(60));
    }
    sx.EndRow();
  }
  for (auto _ : state) {
    nn::SparseLinearForward(sx, wt, bias, y, /*fuse_relu=*/true);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  SetGflops(state, 2LL * batch * nnz_per_row * out);
}
BENCHMARK(BM_SparseLinearForward)->Arg(64)->Arg(256);

void BM_LinearBackward(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const int in = 256, out = 256;
  Rng rng(2);
  nn::Matrix x(batch, in), w(out, in), dy(batch, out), dx, dw(out, in);
  for (size_t i = 0; i < x.size(); ++i) x.data()[i] = (float)rng.Gaussian();
  for (size_t i = 0; i < w.size(); ++i) w.data()[i] = (float)rng.Gaussian();
  for (size_t i = 0; i < dy.size(); ++i) dy.data()[i] = (float)rng.Gaussian();
  std::vector<float> dbias(out, 0.0f);
  for (auto _ : state) {
    dw.Zero();
    nn::LinearBackward(x, w, dy, dx, dw, dbias);
    benchmark::DoNotOptimize(dw.data());
  }
  state.SetItemsProcessed(state.iterations() * 4LL * batch * in * out);
  SetGflops(state, 4LL * batch * in * out);
}
BENCHMARK(BM_LinearBackward)->Arg(64)->Arg(256);

void BM_ResMadeConditional(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  ar::ResMadeConfig config;
  ar::ResMade made({30, 18, 30, 30, 51}, config, 3);
  std::vector<std::vector<int>> inputs(batch, {5, 7, 2, 0, 0});
  nn::Matrix probs;
  ar::ResMade::Context ctx;  // reused across iterations, as estimators do
  for (auto _ : state) {
    made.ConditionalDistribution(inputs, 3, probs, ctx);
    benchmark::DoNotOptimize(probs.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ResMadeConditional)->Arg(64)->Arg(256);

void BM_GmmAssign(benchmark::State& state) {
  gmm::Gmm1D gmm(30);
  Rng rng(4);
  std::vector<double> data(10000);
  for (double& x : data) x = rng.Gaussian(0.0, 5.0);
  gmm.InitFromData(data, rng);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gmm.Assign(data[i++ % data.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GmmAssign);

void BM_RangeMassMonteCarlo(benchmark::State& state) {
  gmm::Gmm1D gmm(30);
  Rng rng(5);
  std::vector<double> data(10000);
  for (double& x : data) x = rng.Gaussian(0.0, 5.0);
  gmm.InitFromData(data, rng);
  gmm::ComponentSampleIndex index(gmm, 10000, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.RangeMass(-2.0, 3.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RangeMassMonteCarlo);

void BM_GmmSgdStep(benchmark::State& state) {
  gmm::Gmm1D gmm(30);
  Rng rng(6);
  std::vector<double> data(512);
  for (double& x : data) x = rng.Gaussian(0.0, 5.0);
  gmm.InitFromData(data, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gmm.SgdStep(data));
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_GmmSgdStep);

}  // namespace
}  // namespace iam

// BENCHMARK_MAIN plus a `--json <path>` flag: mirrors the results into a
// machine-readable file (google-benchmark's JSON format) for tracking the
// kernel datapoints over time, e.g. BENCH_kernels.json at the repo root.
int main(int argc, char** argv) {
  const std::string json_path = iam::bench::JsonOutPath(&argc, argv);
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag, format_flag = "--benchmark_out_format=json";
  if (!json_path.empty()) {
    out_flag = "--benchmark_out=" + json_path;
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // The kernels above run through the instrumented paths (pool, AR model,
  // GMM); fold their metric totals into the same results file.
  if (!json_path.empty() && !iam::bench::MergeMetricsIntoJson(json_path)) {
    std::fprintf(stderr, "failed to merge metrics into %s\n",
                 json_path.c_str());
    return 1;
  }
  return 0;
}
