// Microbenchmarks (google-benchmark) of the numeric kernels everything else
// is built on: dense linear forward/backward, ResMADE conditionals, GMM
// assignment and range masses. Useful when tuning the substrate.

#include <benchmark/benchmark.h>

#include "ar/resmade.h"
#include "gmm/gmm1d.h"
#include "nn/matrix.h"
#include "util/random.h"

namespace iam {
namespace {

void BM_LinearForward(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const int in = 256, out = 256;
  Rng rng(1);
  nn::Matrix x(batch, in), w(out, in), y;
  for (size_t i = 0; i < x.size(); ++i) x.data()[i] = (float)rng.Gaussian();
  for (size_t i = 0; i < w.size(); ++i) w.data()[i] = (float)rng.Gaussian();
  std::vector<float> bias(out, 0.1f);
  for (auto _ : state) {
    nn::LinearForward(x, w, bias, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * batch * in * out);
}
BENCHMARK(BM_LinearForward)->Arg(64)->Arg(256);

void BM_LinearBackward(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const int in = 256, out = 256;
  Rng rng(2);
  nn::Matrix x(batch, in), w(out, in), dy(batch, out), dx, dw(out, in);
  for (size_t i = 0; i < x.size(); ++i) x.data()[i] = (float)rng.Gaussian();
  for (size_t i = 0; i < w.size(); ++i) w.data()[i] = (float)rng.Gaussian();
  for (size_t i = 0; i < dy.size(); ++i) dy.data()[i] = (float)rng.Gaussian();
  std::vector<float> dbias(out, 0.0f);
  for (auto _ : state) {
    dw.Zero();
    nn::LinearBackward(x, w, dy, dx, dw, dbias);
    benchmark::DoNotOptimize(dw.data());
  }
  state.SetItemsProcessed(state.iterations() * 4LL * batch * in * out);
}
BENCHMARK(BM_LinearBackward)->Arg(64)->Arg(256);

void BM_ResMadeConditional(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  ar::ResMadeConfig config;
  ar::ResMade made({30, 18, 30, 30, 51}, config, 3);
  std::vector<std::vector<int>> inputs(batch, {5, 7, 2, 0, 0});
  nn::Matrix probs;
  ar::ResMade::Context ctx;  // reused across iterations, as estimators do
  for (auto _ : state) {
    made.ConditionalDistribution(inputs, 3, probs, ctx);
    benchmark::DoNotOptimize(probs.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ResMadeConditional)->Arg(64)->Arg(256);

void BM_GmmAssign(benchmark::State& state) {
  gmm::Gmm1D gmm(30);
  Rng rng(4);
  std::vector<double> data(10000);
  for (double& x : data) x = rng.Gaussian(0.0, 5.0);
  gmm.InitFromData(data, rng);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gmm.Assign(data[i++ % data.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GmmAssign);

void BM_RangeMassMonteCarlo(benchmark::State& state) {
  gmm::Gmm1D gmm(30);
  Rng rng(5);
  std::vector<double> data(10000);
  for (double& x : data) x = rng.Gaussian(0.0, 5.0);
  gmm.InitFromData(data, rng);
  gmm::ComponentSampleIndex index(gmm, 10000, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.RangeMass(-2.0, 3.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RangeMassMonteCarlo);

void BM_GmmSgdStep(benchmark::State& state) {
  gmm::Gmm1D gmm(30);
  Rng rng(6);
  std::vector<double> data(512);
  for (double& x : data) x = rng.Gaussian(0.0, 5.0);
  gmm.InitFromData(data, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gmm.SgdStep(data));
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_GmmSgdStep);

}  // namespace
}  // namespace iam

BENCHMARK_MAIN();
