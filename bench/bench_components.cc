// Reproduces Figure 7 (accuracy versus number of GMM components) and
// Table 12 (IAM model size versus number of components).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace iam::bench {
namespace {

void Run(const std::string& dataset) {
  const data::Table table = MakeDataset(dataset);
  Rng rng(kDataSeed + 808);
  query::WorkloadOptions wopts;
  wopts.num_queries = 60;
  const auto test = query::GenerateEvaluatedWorkload(table, wopts, rng);

  std::printf(
      "\n### Figure 7 / Table 12: varying GMM components on %s\n"
      "%-6s %10s %10s %10s %12s\n",
      dataset.c_str(), "K", "median", "95th", "max", "size MB");
  for (int k : {1, 30, 70}) {
    core::ArEstimatorOptions opts = BenchIamOptions();
    opts.epochs = 4;  // sweep budget
    opts.max_train_rows = 12000;
    opts.reducer_components = k;
    core::ArDensityEstimator est(table, opts);
    est.Train();
    const ErrorReport report = EvaluateErrors(est, test, table.num_rows());
    std::printf("%-6d %10.3g %10.3g %10.3g %12.3f\n", k, report.median,
                report.p95, report.max,
                static_cast<double>(est.SizeBytes()) / (1024.0 * 1024.0));
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace iam::bench

int main(int argc, char** argv) {
  const std::string only = argc > 1 ? argv[1] : "";
  for (const char* dataset : {"wisdm", "twi", "higgs"}) {
    if (only.empty() || only == dataset) iam::bench::Run(dataset);
  }
  return 0;
}
