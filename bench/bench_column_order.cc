// Ablation for the paper's Section 4.3 "Column Order" remark: the
// left-to-right order versus the reversed and a shuffled order, on the
// mixed-type WISDM table.

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench/bench_common.h"

namespace iam::bench {
namespace {

void Run(const std::string& dataset) {
  const data::Table table = MakeDataset(dataset);
  Rng rng(kDataSeed + 1102);
  query::WorkloadOptions wopts;
  wopts.num_queries = 60;
  const auto test = query::GenerateEvaluatedWorkload(table, wopts, rng);

  std::vector<int> natural(table.num_columns());
  std::iota(natural.begin(), natural.end(), 0);
  std::vector<int> reversed(natural.rbegin(), natural.rend());
  std::vector<int> shuffled = natural;
  rng.Shuffle(shuffled);

  std::printf(
      "\n### Section 4.3 ablation: AR column order on %s\n"
      "%-10s %10s %10s %10s\n",
      dataset.c_str(), "order", "median", "95th", "max");
  const std::vector<std::pair<std::string, std::vector<int>>> orders = {
      {"natural", natural}, {"reversed", reversed}, {"shuffled", shuffled}};
  for (const auto& [label, order] : orders) {
    core::ArEstimatorOptions opts = BenchIamOptions();
    opts.epochs = 6;
    opts.column_order = order;
    core::ArDensityEstimator est(table, opts);
    est.Train();
    const ErrorReport report = EvaluateErrors(est, test, table.num_rows());
    std::printf("%-10s %10.3g %10.3g %10.3g\n", label.c_str(), report.median,
                report.p95, report.max);
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace iam::bench

int main(int argc, char** argv) {
  const std::string only = argc > 1 ? argv[1] : "";
  if (only.empty() || only == "wisdm") iam::bench::Run("wisdm");
  return 0;
}
