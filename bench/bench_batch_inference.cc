// Reproduces Table 7: inference time with batch query processing on IMDB
// (ms per query at batch sizes 1 / 64 / 128) for MSCN, Neurocard and IAM.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "util/stopwatch.h"

namespace iam::bench {
namespace {

void Run() {
  std::printf("\n### Table 7: batch inference on IMDB (ms per query)\n");
  const ImdbBundle imdb = MakeImdb();
  Rng rng(kDataSeed + 305);
  const join::ExactWeightSampler sampler(imdb.schema);
  const data::Table join_sample = sampler.Sample(20000, rng);

  query::WorkloadOptions wopts;
  wopts.num_queries = 128;
  wopts.column_prob = 0.45;
  const auto test = query::GenerateEvaluatedWorkload(join_sample, wopts, rng);
  wopts.num_queries = 300;
  const auto train = query::GenerateEvaluatedWorkload(join_sample, wopts, rng);

  const std::vector<int> batch_sizes = {1, 64, 128};
  std::printf("%-10s %12s %12s %12s\n", "estimator", "batch=1", "batch=64",
              "batch=128");

  const std::vector<std::string> names = {"mscn", "neurocard", "iam"};
  for (const std::string& name : names) {
    auto est = MakeTrainedEstimator(name, join_sample, train, 0);
    std::printf("%-10s", name.c_str());
    for (int batch : batch_sizes) {
      Stopwatch watch;
      size_t processed = 0;
      for (size_t begin = 0; begin + batch <= test.queries.size();
           begin += batch) {
        est->EstimateBatch(
            {test.queries.data() + begin, static_cast<size_t>(batch)});
        processed += batch;
      }
      const double ms = watch.ElapsedMillis() / static_cast<double>(processed);
      std::printf(" %12.3f", ms);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace iam::bench

int main() {
  iam::bench::Run();
  return 0;
}
