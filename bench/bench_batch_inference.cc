// Reproduces Table 7: inference time with batch query processing on IMDB
// (ms per query at batch sizes 1 / 64 / 128) for MSCN, Neurocard and IAM.
//
// `--json <path>` mirrors both sections into a machine-readable file
// (BENCH_inference.json at the repo root) with the process metrics snapshot
// merged in, mirroring bench_kernels' BENCH_kernels.json.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/query_log.h"
#include "query/query.h"
#include "util/quantiles.h"
#include "util/stopwatch.h"

namespace iam::bench {
namespace {

struct Table7Row {
  std::string estimator;
  std::vector<double> ms_per_query;  // one per batch size
};

struct ScalingRow {
  std::string estimator;
  std::vector<double> ms_per_query;  // one per thread count
  bool bit_identical = true;         // vs the 1-thread estimates
};

struct PooledRow {
  std::string mode;
  double ms_per_query = 0.0;
  bool bit_identical = true;  // vs the legacy per-query oracle
  ErrorReport qerror;
};

struct QueryLogOverhead {
  double base_ms_per_query = 0.0;       // EstimateBatch, diagnostics discarded
  double diagnosed_ms_per_query = 0.0;  // EstimateBatchDiagnosed + ring append
  double overhead_pct = 0.0;
};

struct Results {
  std::vector<int> batch_sizes;
  std::vector<Table7Row> table7;
  std::vector<int> thread_counts;
  std::vector<ScalingRow> scaling;
  std::vector<PooledRow> pooled;
  QueryLogOverhead querylog;
};

Results Run() {
  Results results;
  std::printf("\n### Table 7: batch inference on IMDB (ms per query)\n");
  const ImdbBundle imdb = MakeImdb();
  Rng rng(kDataSeed + 305);
  const join::ExactWeightSampler sampler(imdb.schema);
  const data::Table join_sample = sampler.Sample(20000, rng);

  query::WorkloadOptions wopts;
  wopts.num_queries = 128;
  wopts.column_prob = 0.45;
  const auto test = query::GenerateEvaluatedWorkload(join_sample, wopts, rng);
  wopts.num_queries = 300;
  const auto train = query::GenerateEvaluatedWorkload(join_sample, wopts, rng);

  results.batch_sizes = {1, 64, 128};
  std::printf("%-10s %12s %12s %12s\n", "estimator", "batch=1", "batch=64",
              "batch=128");

  const std::vector<std::string> names = {"mscn", "neurocard", "iam"};
  for (const std::string& name : names) {
    auto est = MakeTrainedEstimator(name, join_sample, train, 0);
    Table7Row row{name, {}};
    std::printf("%-10s", name.c_str());
    for (int batch : results.batch_sizes) {
      Stopwatch watch;
      size_t processed = 0;
      for (size_t begin = 0; begin + batch <= test.queries.size();
           begin += batch) {
        est->EstimateBatch(
            {test.queries.data() + begin, static_cast<size_t>(batch)});
        processed += batch;
      }
      const double ms = watch.ElapsedMillis() / static_cast<double>(processed);
      row.ms_per_query.push_back(ms);
      std::printf(" %12.3f", ms);
      std::fflush(stdout);
    }
    results.table7.push_back(std::move(row));
    std::printf("\n");
  }

  // Thread scaling of the parallel EstimateBatch (batch = 128). The same
  // trained model is reused across thread counts via set_num_threads, and the
  // estimates are checked bit-identical to the 1-thread run — the contract
  // the per-query RNG seeding guarantees.
  std::printf("\n### Batch inference thread scaling (batch=128, ms/query)\n");
  std::printf("%-10s %10s %10s %10s %10s %10s\n", "estimator", "1 thr",
              "2 thr", "4 thr", "8 thr", "speedup@4");
  results.thread_counts = {1, 2, 4, 8};
  for (const std::string& name : names) {
    auto est = MakeTrainedEstimator(name, join_sample, train, 0);
    ScalingRow row{name, {}, true};
    std::printf("%-10s", name.c_str());
    std::vector<double> serial_estimates;
    for (int threads : results.thread_counts) {
      est->set_num_threads(threads);
      Stopwatch watch;
      std::vector<double> estimates = est->EstimateBatch(test.queries);
      row.ms_per_query.push_back(watch.ElapsedMillis() /
                                 static_cast<double>(test.queries.size()));
      std::printf(" %10.3f", row.ms_per_query.back());
      std::fflush(stdout);
      if (threads == 1) {
        serial_estimates = std::move(estimates);
      } else if (estimates != serial_estimates) {
        row.bit_identical = false;
        std::printf(" [MISMATCH vs 1-thread!]");
      }
    }
    std::printf(" %9.2fx\n", row.ms_per_query[0] / row.ms_per_query[2]);
    results.scaling.push_back(std::move(row));
  }

  // Pooled cross-query sampler ablation (IAM, batch = 128, DESIGN.md §14):
  // the legacy per-query oracle vs the pooled megabatch at a fixed budget
  // (bit-identical by contract), then prefix sharing and adaptive CI early
  // stopping stacked on top. Adaptive reorders the RNG draw stream so it is
  // approximate — the q-error column shows it stays within the paper table's
  // accuracy band.
  std::printf("\n### Pooled sampler ablation (IAM, batch=128, ms/query)\n");
  std::printf("%-16s %10s %10s  %s\n", "mode", "ms/query", "bit-equal",
              "q-error");
  core::ArDensityEstimator iam(join_sample, BenchIamOptions());
  iam.Train();
  iam.set_num_threads(BenchThreads());
  struct Mode {
    const char* name;
    bool pooled;
    bool prefix;
    int adaptive;
  };
  constexpr Mode kModes[] = {{"legacy", false, false, 0},
                             {"pooled", true, false, 0},
                             {"pooled+prefix", true, true, 0},
                             {"adaptive", true, true, 32}};
  constexpr int kReps = 3;
  std::vector<double> legacy_estimates;
  for (const Mode& mode : kModes) {
    iam.set_sampler_mode(mode.pooled, mode.prefix, mode.adaptive);
    std::vector<double> estimates = iam.EstimateBatch(test.queries);  // warm
    Stopwatch watch;
    for (int rep = 0; rep < kReps; ++rep) iam.EstimateBatch(test.queries);
    PooledRow row;
    row.mode = mode.name;
    row.ms_per_query =
        watch.ElapsedMillis() /
        static_cast<double>(kReps * test.queries.size());
    if (mode.name == std::string("legacy")) legacy_estimates = estimates;
    row.bit_identical = estimates == legacy_estimates;
    std::vector<double> errors;
    errors.reserve(estimates.size());
    for (size_t i = 0; i < estimates.size(); ++i) {
      errors.push_back(query::QError(test.true_selectivities[i], estimates[i],
                                     join_sample.num_rows()));
    }
    row.qerror = MakeErrorReport(errors);
    std::printf("%-16s %10.3f %10s  %s\n", mode.name, row.ms_per_query,
                row.bit_identical ? "yes" : "no",
                FormatErrorReport(row.qerror).c_str());
    results.pooled.push_back(std::move(row));
  }
  std::printf("adaptive speedup vs legacy: %.2fx\n",
              results.pooled.front().ms_per_query /
                  results.pooled.back().ms_per_query);

  // Always-on query-log overhead (DESIGN.md §17, acceptance bound <= 2%):
  // what serving adds on top of the pooled batch-128 estimate — the
  // per-query diagnostics copy-out plus one seqlock ring append per query.
  // The sampler-side accumulation itself runs in both arms (EstimateBatch
  // delegates to the diagnosed path), so this isolates the serving delta.
  // Min-of-reps per arm keeps scheduler noise out of the committed number.
  std::printf("\n### Query-log overhead (pooled adaptive, batch=128)\n");
  iam.set_sampler_mode(true, true, 32);
  constexpr int kOverheadReps = 5;
  const double n_queries = static_cast<double>(test.queries.size());
  iam.EstimateBatch(test.queries);  // warm
  double base_ms = 0.0;
  for (int rep = 0; rep < kOverheadReps; ++rep) {
    Stopwatch watch;
    iam.EstimateBatch(test.queries);
    const double ms = watch.ElapsedMillis() / n_queries;
    if (rep == 0 || ms < base_ms) base_ms = ms;
  }
  std::vector<estimator::QueryDiagnostics> diags(test.queries.size());
  obs::QueryLog ring;  // private ring, same capacity as the serving global
  double diag_ms = 0.0;
  for (int rep = 0; rep < kOverheadReps; ++rep) {
    Stopwatch watch;
    const std::vector<double> estimates =
        iam.EstimateBatchDiagnosed(test.queries, diags);
    for (size_t i = 0; i < estimates.size(); ++i) {
      const estimator::QueryDiagnostics& d = diags[i];
      obs::QueryRecord rec;
      rec.model_version = 1;
      rec.sampler_draws = d.sampler_draws;
      rec.batch_size = static_cast<int32_t>(test.queries.size());
      rec.sample_rows = d.sample_rows;
      rec.rounds = d.rounds;
      rec.early_stop_round = d.early_stop_round;
      rec.prefix_hits = d.prefix_hits;
      rec.fallbacks = d.fallbacks;
      rec.fallback_column = d.fallback_column;
      rec.dead = d.dead ? 1 : 0;
      rec.ci_half_width = d.ci_half_width;
      rec.selectivity = estimates[i];
      rec.exec_s = 0.0;
      rec.total_s = 0.0;
      ring.Append(rec);
    }
    const double ms = watch.ElapsedMillis() / n_queries;
    if (rep == 0 || ms < diag_ms) diag_ms = ms;
  }
  results.querylog.base_ms_per_query = base_ms;
  results.querylog.diagnosed_ms_per_query = diag_ms;
  results.querylog.overhead_pct = (diag_ms - base_ms) / base_ms * 100.0;
  std::printf("%-16s %10.3f ms/query\n", "base", base_ms);
  std::printf("%-16s %10.3f ms/query\n", "diagnosed+ring", diag_ms);
  std::printf("overhead: %.3f%% (bound: 2%%)\n",
              results.querylog.overhead_pct);
  return results;
}

void AppendMsArray(std::string& out, const std::vector<double>& ms) {
  out += "[";
  for (size_t i = 0; i < ms.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", ms[i]);
    if (i > 0) out += ",";
    out += buf;
  }
  out += "]";
}

void AppendIntArray(std::string& out, const std::vector<int>& xs) {
  out += "[";
  for (size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(xs[i]);
  }
  out += "]";
}

bool WriteJson(const Results& results, const std::string& path) {
  std::string out = "{\n  \"table7\": {\"batch_sizes\": ";
  AppendIntArray(out, results.batch_sizes);
  out += ", \"rows\": [";
  for (size_t i = 0; i < results.table7.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\n    {\"estimator\": \"" + results.table7[i].estimator +
           "\", \"ms_per_query\": ";
    AppendMsArray(out, results.table7[i].ms_per_query);
    out += "}";
  }
  out += "\n  ]},\n  \"thread_scaling\": {\"batch_size\": 128, \"threads\": ";
  AppendIntArray(out, results.thread_counts);
  out += ", \"rows\": [";
  for (size_t i = 0; i < results.scaling.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\n    {\"estimator\": \"" + results.scaling[i].estimator +
           "\", \"ms_per_query\": ";
    AppendMsArray(out, results.scaling[i].ms_per_query);
    out += ", \"bit_identical\": ";
    out += results.scaling[i].bit_identical ? "true" : "false";
    out += "}";
  }
  out += "\n  ]},\n  \"pooled_sampler\": {\"estimator\": \"iam\", "
         "\"batch_size\": 128, \"rows\": [";
  for (size_t i = 0; i < results.pooled.size(); ++i) {
    const PooledRow& row = results.pooled[i];
    if (i > 0) out += ", ";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\n    {\"mode\": \"%s\", \"ms_per_query\": %.6g, "
                  "\"bit_identical_to_legacy\": %s, \"qerror\": "
                  "{\"mean\": %.6g, \"median\": %.6g, \"p95\": %.6g, "
                  "\"p99\": %.6g, \"max\": %.6g}}",
                  row.mode.c_str(), row.ms_per_query,
                  row.bit_identical ? "true" : "false", row.qerror.mean,
                  row.qerror.median, row.qerror.p95, row.qerror.p99,
                  row.qerror.max);
    out += buf;
  }
  if (!results.pooled.empty()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  "\n  ], \"adaptive_speedup_vs_legacy\": %.6g},\n",
                  results.pooled.front().ms_per_query /
                      results.pooled.back().ms_per_query);
    out += buf;
  } else {
    out += "\n  ]},\n";
  }
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"querylog_overhead\": {\"batch_size\": 128, "
                  "\"mode\": \"adaptive\", \"base_ms_per_query\": %.6g, "
                  "\"diagnosed_ms_per_query\": %.6g, "
                  "\"overhead_pct\": %.6g}\n}\n",
                  results.querylog.base_ms_per_query,
                  results.querylog.diagnosed_ms_per_query,
                  results.querylog.overhead_pct);
    out += buf;
  }
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file << out;
  return file.good();
}

}  // namespace
}  // namespace iam::bench

int main(int argc, char** argv) {
  const std::string json_path = iam::bench::JsonOutPath(&argc, argv);
  const iam::bench::Results results = iam::bench::Run();
  if (!json_path.empty()) {
    if (!iam::bench::WriteJson(results, json_path) ||
        !iam::bench::MergeMetricsIntoJson(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nresults written to %s\n", json_path.c_str());
  }
  return 0;
}
