// Reproduces Table 7: inference time with batch query processing on IMDB
// (ms per query at batch sizes 1 / 64 / 128) for MSCN, Neurocard and IAM.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "util/stopwatch.h"

namespace iam::bench {
namespace {

void Run() {
  std::printf("\n### Table 7: batch inference on IMDB (ms per query)\n");
  const ImdbBundle imdb = MakeImdb();
  Rng rng(kDataSeed + 305);
  const join::ExactWeightSampler sampler(imdb.schema);
  const data::Table join_sample = sampler.Sample(20000, rng);

  query::WorkloadOptions wopts;
  wopts.num_queries = 128;
  wopts.column_prob = 0.45;
  const auto test = query::GenerateEvaluatedWorkload(join_sample, wopts, rng);
  wopts.num_queries = 300;
  const auto train = query::GenerateEvaluatedWorkload(join_sample, wopts, rng);

  const std::vector<int> batch_sizes = {1, 64, 128};
  std::printf("%-10s %12s %12s %12s\n", "estimator", "batch=1", "batch=64",
              "batch=128");

  const std::vector<std::string> names = {"mscn", "neurocard", "iam"};
  for (const std::string& name : names) {
    auto est = MakeTrainedEstimator(name, join_sample, train, 0);
    std::printf("%-10s", name.c_str());
    for (int batch : batch_sizes) {
      Stopwatch watch;
      size_t processed = 0;
      for (size_t begin = 0; begin + batch <= test.queries.size();
           begin += batch) {
        est->EstimateBatch(
            {test.queries.data() + begin, static_cast<size_t>(batch)});
        processed += batch;
      }
      const double ms = watch.ElapsedMillis() / static_cast<double>(processed);
      std::printf(" %12.3f", ms);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  // Thread scaling of the parallel EstimateBatch (batch = 128). The same
  // trained model is reused across thread counts via set_num_threads, and the
  // estimates are checked bit-identical to the 1-thread run — the contract
  // the per-query RNG seeding guarantees.
  std::printf("\n### Batch inference thread scaling (batch=128, ms/query)\n");
  std::printf("%-10s %10s %10s %10s %10s %10s\n", "estimator", "1 thr",
              "2 thr", "4 thr", "8 thr", "speedup@4");
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  for (const std::string& name : names) {
    auto est = MakeTrainedEstimator(name, join_sample, train, 0);
    std::printf("%-10s", name.c_str());
    std::vector<double> per_thread_ms;
    std::vector<double> serial_estimates;
    for (int threads : thread_counts) {
      est->set_num_threads(threads);
      Stopwatch watch;
      std::vector<double> estimates = est->EstimateBatch(test.queries);
      per_thread_ms.push_back(watch.ElapsedMillis() /
                              static_cast<double>(test.queries.size()));
      std::printf(" %10.3f", per_thread_ms.back());
      std::fflush(stdout);
      if (threads == 1) {
        serial_estimates = std::move(estimates);
      } else if (estimates != serial_estimates) {
        std::printf(" [MISMATCH vs 1-thread!]");
      }
    }
    std::printf(" %9.2fx\n", per_thread_ms[0] / per_thread_ms[2]);
  }
}

}  // namespace
}  // namespace iam::bench

int main() {
  iam::bench::Run();
  return 0;
}
