// Technical-report ablations: (a) the impact of the per-component
// Monte-Carlo sample count S on accuracy and estimation time, including the
// exact-CDF limit; (b) the unbiased bias-corrected sampler against vanilla
// (biased) progressive sampling on reduced columns.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "gmm/gmm2d.h"
#include "util/stopwatch.h"

namespace iam::bench {
namespace {

void SampleCountSweep(const std::string& dataset) {
  const data::Table table = MakeDataset(dataset);
  Rng rng(kDataSeed + 909);
  query::WorkloadOptions wopts;
  wopts.num_queries = 60;
  const auto test = query::GenerateEvaluatedWorkload(table, wopts, rng);

  std::printf(
      "\n### Tech report: impact of GMM sample count S on %s\n"
      "%-10s %10s %10s %10s %12s\n",
      dataset.c_str(), "S", "median", "95th", "max", "est ms");
  auto run = [&](const char* label, int samples, bool exact) {
    core::ArEstimatorOptions opts = BenchIamOptions();
    opts.epochs = 4;  // sweep budget
    opts.max_train_rows = 12000;
    opts.gmm_samples_per_component = samples;
    opts.exact_range_mass = exact;
    core::ArDensityEstimator est(table, opts);
    est.Train();
    std::vector<double> errors;
    Stopwatch watch;
    for (size_t i = 0; i < test.queries.size(); ++i) {
      errors.push_back(query::QError(test.true_selectivities[i],
                                     est.Estimate(test.queries[i]),
                                     table.num_rows()));
    }
    const double ms =
        watch.ElapsedMillis() / static_cast<double>(test.queries.size());
    const ErrorReport report = MakeErrorReport(errors);
    std::printf("%-10s %10.3g %10.3g %10.3g %12.2f\n", label, report.median,
                report.p95, report.max, ms);
    std::fflush(stdout);
  };
  run("10", 10, false);
  run("100", 100, false);
  run("1000", 1000, false);
  run("10000", 10000, false);
  run("exact", 0, true);
}

void BiasAblation(const std::string& dataset) {
  const data::Table table = MakeDataset(dataset);
  Rng rng(kDataSeed + 1001);
  query::WorkloadOptions wopts;
  wopts.num_queries = 60;
  const auto test = query::GenerateEvaluatedWorkload(table, wopts, rng);

  std::printf(
      "\n### Tech report: unbiased vs vanilla progressive sampling on %s\n"
      "%-10s %10s %10s %10s %10s %10s\n",
      dataset.c_str(), "sampler", "mean", "median", "95th", "99th", "max");
  for (const bool biased : {false, true}) {
    core::ArEstimatorOptions opts = BenchIamOptions();
    opts.epochs = 4;  // sweep budget
    opts.max_train_rows = 12000;
    opts.biased_sampling = biased;
    core::ArDensityEstimator est(table, opts);
    est.Train();
    const ErrorReport report = EvaluateErrors(est, test, table.num_rows());
    std::printf("%-10s %10.3g %10.3g %10.3g %10.3g %10.3g\n",
                biased ? "vanilla" : "unbiased", report.mean, report.median,
                report.p95, report.p99, report.max);
    std::fflush(stdout);
  }
}

// Section 4.2 design discussion: one GMM per attribute (paper's choice) vs
// one joint full-covariance GMM over both TWI attributes. Reports storage
// and the mean absolute error of rectangle masses against ground truth.
void JointVsPerAttribute() {
  const data::Table table = MakeDataset("twi");
  const auto& lat = table.column(0).values;
  const auto& lon = table.column(1).values;
  Rng rng(kDataSeed + 1404);

  gmm::Gmm2D joint(30);
  joint.InitFromData(lat, lon, rng);
  for (int it = 0; it < 25; ++it) joint.EmStep(lat, lon);

  gmm::Gmm1D per_lat(30), per_lon(30);
  per_lat.InitFromData(lat, rng);
  per_lon.InitFromData(lon, rng);
  for (int it = 0; it < 25; ++it) {
    per_lat.EmStep(lat);
    per_lon.EmStep(lon);
  }

  const auto [lat_lo, lat_hi] = table.ColumnRange(0);
  const auto [lon_lo, lon_hi] = table.ColumnRange(1);
  double joint_mae = 0.0, product_mae = 0.0;
  const int kRects = 40;
  for (int q = 0; q < kRects; ++q) {
    double a = rng.Uniform(lat_lo, lat_hi), b = rng.Uniform(lat_lo, lat_hi);
    double c = rng.Uniform(lon_lo, lon_hi), d = rng.Uniform(lon_lo, lon_hi);
    if (a > b) std::swap(a, b);
    if (c > d) std::swap(c, d);
    size_t hits = 0;
    for (size_t i = 0; i < lat.size(); ++i) {
      if (lat[i] >= a && lat[i] <= b && lon[i] >= c && lon[i] <= d) ++hits;
    }
    const double truth = static_cast<double>(hits) / lat.size();

    double joint_mass = 0.0;
    for (int k = 0; k < joint.num_components(); ++k) {
      joint_mass += joint.component(k).weight *
                    joint.RectangleMass(k, a, b, c, d, 2000, rng);
    }
    double plat = 0.0, plon = 0.0;
    for (int k = 0; k < 30; ++k) {
      plat += per_lat.weight(k) * per_lat.ComponentIntervalMass(k, a, b);
      plon += per_lon.weight(k) * per_lon.ComponentIntervalMass(k, c, d);
    }
    joint_mae += std::abs(joint_mass - truth);
    product_mae += std::abs(plat * plon - truth);
  }
  std::printf(
      "\n### Section 4.2 ablation: joint 2-D GMM vs per-attribute GMMs "
      "(TWI, 30 comps)\n"
      "%-22s %14s %16s\n"
      "%-22s %14zu %16.4f\n"
      "%-22s %14zu %16.4f\n"
      "(the per-attribute product alone ignores correlation; inside IAM the "
      "AR model supplies it)\n",
      "model", "bytes", "rect mass MAE", "joint 2-D GMM",
      joint.SizeBytes(), joint_mae / kRects, "2 x 1-D GMMs",
      per_lat.SizeBytes() + per_lon.SizeBytes(), product_mae / kRects);
}

}  // namespace
}  // namespace iam::bench

int main(int argc, char** argv) {
  const std::string only = argc > 1 ? argv[1] : "";
  if (only.empty() || only == "samples") iam::bench::SampleCountSweep("twi");
  if (only.empty() || only == "bias") iam::bench::BiasAblation("twi");
  if (only.empty() || only == "joint") iam::bench::JointVsPerAttribute();
  return 0;
}
