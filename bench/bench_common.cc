#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>

#include "data/synthetic.h"
#include "obs/metrics.h"
#include "util/json.h"
#include "estimator/bayesnet.h"
#include "estimator/kde.h"
#include "estimator/mhist.h"
#include "estimator/mscn.h"
#include "estimator/postgres1d.h"
#include "estimator/spn.h"
#include "estimator/sampling.h"
#include "util/macros.h"

namespace iam::bench {

std::string JsonOutPath(int* argc, char** argv) {
  std::string path;
  int w = 0;
  for (int r = 0; r < *argc; ++r) {
    const std::string arg = argv[r];
    if (arg == "--json" && r + 1 < *argc) {
      path = argv[++r];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
    } else {
      argv[w++] = argv[r];
    }
  }
  *argc = w;
  return path;
}

bool MergeJsonSection(const std::string& path, const std::string& key,
                      const std::string& value_json) {
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) contents.assign(std::istreambuf_iterator<char>(in), {});
  }
  contents = util::UpsertTopLevelKey(contents, key, value_json);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << contents;
  return out.good();
}

bool MergeMetricsIntoJson(const std::string& path) {
  return MergeJsonSection(
      path, "iam_metrics",
      obs::MetricsToJson(obs::MetricRegistry::Global().Snapshot()));
}

int BenchThreads() {
  static const int threads = [] {
    const char* env = std::getenv("IAM_BENCH_THREADS");
    if (env == nullptr) return 1;
    const int parsed = std::atoi(env);
    return parsed > 0 ? parsed : 1;
  }();
  return threads;
}

data::Table MakeDataset(const std::string& name) {
  if (name == "wisdm") return data::MakeSynWisdm(kWisdmRows, kDataSeed);
  if (name == "twi") return data::MakeSynTwi(kTwiRows, kDataSeed + 1);
  if (name == "higgs") return data::MakeSynHiggs(kHiggsRows, kDataSeed + 2);
  IAM_CHECK_MSG(false, "unknown dataset");
  return data::Table();
}

ImdbBundle MakeImdb() {
  ImdbBundle bundle{join::MakeSynImdb(kImdbTitles, kDataSeed + 3), {}};
  bundle.joined = join::MaterializeJoin(bundle.schema);
  return bundle;
}

core::ArEstimatorOptions BenchIamOptions() {
  core::ArEstimatorOptions opts = core::IamDefaults(30);
  opts.epochs = 6;
  opts.batch_size = 512;
  opts.max_train_rows = 20000;  // paper samples 1e6 of up to 1.9e7 rows
  opts.progressive_samples = 256;  // paper: 8000 on a V100
  opts.gmm_samples_per_component = 10000;
  opts.num_threads = BenchThreads();
  return opts;
}

core::ArEstimatorOptions BenchNeurocardOptions() {
  core::ArEstimatorOptions opts = core::NeurocardDefaults();
  opts.epochs = 6;
  opts.batch_size = 512;
  opts.max_train_rows = 20000;
  opts.progressive_samples = 256;
  // The paper's 2^11 sub-columns target ~1e6-value domains; our datasets are
  // scaled ~100x down, so the balanced split for a ~5e4 domain is ~2^8
  // (sub-column size tracks the square root of the domain).
  opts.factor_bits = 8;
  opts.num_threads = BenchThreads();
  return opts;
}

namespace {

std::unique_ptr<estimator::Estimator> MakeTrainedEstimatorImpl(
    const std::string& name, const data::Table& table,
    const query::EvaluatedWorkload& train, size_t iam_size_bytes) {
  if (name == "sampling") {
    const double table_bytes =
        static_cast<double>(table.num_rows()) * table.num_columns() *
        sizeof(double);
    double fraction = iam_size_bytes > 0
                          ? static_cast<double>(iam_size_bytes) / table_bytes
                          : 0.005;
    // The paper sizes the sample to IAM's space budget, which lands at
    // 0.02%-0.63% of its multi-million-row tables. At our ~100x smaller
    // scale the raw ratio would hand Sampling most of the table, so clamp to
    // the paper's regime of "a fraction of a percent".
    if (fraction > 0.01) fraction = 0.01;
    if (fraction < 1e-4) fraction = 1e-4;
    return std::make_unique<estimator::SamplingEstimator>(table, fraction, 1);
  }
  if (name == "postgres") {
    return std::make_unique<estimator::Postgres1DEstimator>(
        table, estimator::Postgres1DEstimator::Options{});
  }
  if (name == "mhist") {
    estimator::MhistEstimator::Options options;
    options.num_buckets = 1000;
    options.max_build_rows = 30000;
    return std::make_unique<estimator::MhistEstimator>(table, options);
  }
  if (name == "bayesnet") {
    return std::make_unique<estimator::BayesNetEstimator>(
        table, estimator::BayesNetEstimator::Options{});
  }
  if (name == "kde") {
    auto kde = std::make_unique<estimator::KdeEstimator>(
        table, estimator::KdeEstimator::Options{});
    if (!train.queries.empty()) {
      kde->TuneBandwidth(train.queries, train.true_selectivities,
                         table.num_rows());
    }
    return kde;
  }
  if (name == "deepdb") {
    return std::make_unique<estimator::SpnEstimator>(
        table, estimator::SpnEstimator::Options{});
  }
  if (name == "mscn") {
    auto mscn = std::make_unique<estimator::MscnEstimator>(
        table, estimator::MscnEstimator::Options{});
    IAM_CHECK_MSG(!train.queries.empty(), "mscn needs training queries");
    mscn->Train(train.queries, train.true_selectivities);
    return mscn;
  }
  if (name == "neurocard") {
    auto est = std::make_unique<core::ArDensityEstimator>(
        table, BenchNeurocardOptions());
    est->Train();
    return est;
  }
  if (name == "iam") {
    auto est =
        std::make_unique<core::ArDensityEstimator>(table, BenchIamOptions());
    est->Train();
    return est;
  }
  IAM_CHECK_MSG(false, "unknown estimator");
  return nullptr;
}

}  // namespace

std::unique_ptr<estimator::Estimator> MakeTrainedEstimator(
    const std::string& name, const data::Table& table,
    const query::EvaluatedWorkload& train, size_t iam_size_bytes) {
  auto est = MakeTrainedEstimatorImpl(name, table, train, iam_size_bytes);
  est->set_num_threads(BenchThreads());
  return est;
}

std::vector<std::string> SingleTableEstimators() {
  return {"sampling", "postgres", "mhist",      "bayesnet", "kde",
          "deepdb",   "mscn",     "neurocard", "iam"};
}

std::vector<std::string> JoinEstimators() {
  return {"postgres", "deepdb", "mscn", "neurocard", "iam"};
}

void PrintErrorHeader() {
  std::printf("%-10s %10s %10s %10s %10s %10s\n", "estimator", "mean",
              "median", "95th", "99th", "max");
}

void PrintErrorRow(const std::string& name, const ErrorReport& report) {
  std::printf("%-10s %10.3g %10.3g %10.3g %10.3g %10.3g\n", name.c_str(),
              report.mean, report.median, report.p95, report.p99, report.max);
  std::fflush(stdout);
}

ErrorReport EvaluateErrors(estimator::Estimator& est,
                           const query::EvaluatedWorkload& workload,
                           size_t num_rows) {
  std::vector<double> errors;
  errors.reserve(workload.queries.size());
  for (size_t i = 0; i < workload.queries.size(); ++i) {
    const double estimate = est.Estimate(workload.queries[i]);
    errors.push_back(
        query::QError(workload.true_selectivities[i], estimate, num_rows));
  }
  return MakeErrorReport(errors);
}

}  // namespace iam::bench
