// Quickstart: train IAM on a spatial table and estimate a few range queries.
//
//   build/examples/quickstart
//
// Walks through the full public API surface: make (or load) a table, pick
// the IAM configuration, train, and ask for selectivities.

#include <cstdio>

#include "core/ar_density_estimator.h"
#include "core/presets.h"
#include "data/synthetic.h"
#include "query/query.h"

int main() {
  using namespace iam;

  // 1. A relation. Any data::Table works — data::ReadCsv loads your own; here
  //    we use the bundled synthetic geo-tagged tweet generator (DESIGN.md §4).
  const data::Table tweets = data::MakeSynTwi(30000, /*seed=*/7);
  std::printf("table '%s': %zu rows, %d columns\n", tweets.name().c_str(),
              tweets.num_rows(), tweets.num_columns());

  // 2. Configure IAM. IamDefaults(30) is the paper's setting: one 30-component
  //    GMM per large-domain continuous attribute feeding a ResMADE AR model.
  core::ArEstimatorOptions options = core::IamDefaults(/*components=*/30);
  options.epochs = 6;  // quick demo; benches use the full budget

  // 3. Train (joint GMM + autoregressive-model SGD, Section 4.3 of the paper).
  core::ArDensityEstimator iam(tweets, options);
  iam.Train();
  std::printf("trained: %d model columns, %.2f KB model\n",
              iam.num_model_columns(), iam.SizeBytes() / 1024.0);
  for (int c = 0; c < tweets.num_columns(); ++c) {
    if (iam.IsReduced(c)) {
      std::printf("  column '%s' reduced to %d GMM components\n",
                  tweets.column(c).name.c_str(), iam.ReducedDomainSize(c));
    }
  }

  // 4. Estimate selectivities of range queries (unbiased progressive
  //    sampling, Section 5). Compare against the exact answer by scan.
  const query::Query queries[] = {
      // latitude <= 40
      {{{.column = 0, .lo = -1e30, .hi = 40.0}}},
      // 35 <= latitude <= 45 AND longitude <= -100
      {{{.column = 0, .lo = 35.0, .hi = 45.0},
        {.column = 1, .lo = -1e30, .hi = -100.0}}},
      // a needle: tight box
      {{{.column = 0, .lo = 40.0, .hi = 40.5},
        {.column = 1, .lo = -90.0, .hi = -89.0}}},
  };
  for (const query::Query& q : queries) {
    const double est = iam.Estimate(q);
    const double truth = query::TrueSelectivity(tweets, q);
    std::printf("%-55s est=%.5f true=%.5f qerror=%.2f\n",
                q.DebugString(tweets).c_str(), est, truth,
                query::QError(truth, est, tweets.num_rows()));
  }
  return 0;
}
