// The estimator service binary (DESIGN.md §13) and its companion client
// commands:
//
//   serve_cli serve --model <model.iam> [--port N] [--max-batch N]
//                   [--max-delay-us N] [--queue-capacity N] [--threads N]
//                   [--shards N] [--listen-backlog N] [--max-pipeline N]
//                   [--slow-ms X]
//   serve_cli serve --demo [--model-out <model.iam>] [...same flags]
//       Runs the service until SIGINT/SIGTERM or a kShutdown frame, then
//       drains gracefully. Prints "listening on <addr>:<port>" once ready.
//       SIGHUP hot-swaps the model by re-loading the file it was started
//       from (or --model-out for --demo) — in-flight batches finish on the
//       old generation. --shards N runs N batcher shards, each with its own
//       queue, worker and model replica. --slow-ms X logs every query whose
//       end-to-end latency reaches X ms to stderr with its sampler
//       diagnostics and query-log sequence id.
//
//       --adapt enables the online-adaptation subsystem (DESIGN.md §18):
//       kFeedback frames drive the per-region corrector and the drift
//       window, kAppendData frames feed the retraining reservoir, and a
//       windowed p90 q-error above --adapt-trigger retrains off-thread and
//       hot-swaps the result. --adapt-trigger X, --adapt-window N,
//       --adapt-min-rows N, --adapt-epochs N, --adapt-queue N tune it.
//
//   serve_cli estimate <port> "<predicates>"     one estimate round trip
//   serve_cli burst    <port> "<predicates>" <n> n pipelined estimates on
//                                                one connection
//   serve_cli swap     <port> <model.iam>        hot-swap via control frame
//   serve_cli metrics  <port>                    Prometheus export
//   serve_cli querylog <port> ["last=N min_ms=X"]  per-query diagnostics as
//                                                JSON (DESIGN.md §17)
//   serve_cli feedback <port> "seq=<N> actual=<sel>"
//   serve_cli feedback <port> "actual=<sel> where <predicates>"
//       Reports an observed true selectivity to the adaptation loop —
//       either against a query-log record by sequence number, or inline.
//   serve_cli append   <port> <rows.csv>         stream rows into the
//                                                retraining reservoir
//   serve_cli shutdown <port>                    ask the server to drain
//
// Client commands connect to 127.0.0.1. Predicates use the SQL-style grammar
// of query::ParsePredicates, e.g.
//   serve_cli estimate 7421 "latitude BETWEEN 35 AND 45 AND longitude <= -100"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "adapt/controller.h"
#include "core/ar_density_estimator.h"
#include "serve/client.h"
#include "serve/demo.h"
#include "serve/model_registry.h"
#include "serve/server.h"

namespace {

volatile std::sig_atomic_t g_stop_signal = 0;
volatile std::sig_atomic_t g_hup_signal = 0;

void OnStopSignal(int) { g_stop_signal = 1; }
void OnHupSignal(int) { g_hup_signal = 1; }

bool FlagValue(int argc, char** argv, int* i, const char* name,
               std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strcmp(argv[*i], name) == 0) {
    if (*i + 1 >= argc) return false;
    *out = argv[++*i];
    return true;
  }
  if (std::strncmp(argv[*i], name, len) == 0 && argv[*i][len] == '=') {
    *out = argv[*i] + len + 1;
    return true;
  }
  return false;
}

int Serve(int argc, char** argv) {
  std::string model_path;
  std::string model_out;
  bool demo = false;
  bool adapt = false;
  iam::adapt::AdaptOptions adapt_options;
  iam::serve::ServerOptions options;
  int threads = 1;
  for (int i = 2; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(argv[i], "--adapt") == 0) {
      adapt = true;
    } else if (FlagValue(argc, argv, &i, "--adapt-trigger", &value)) {
      adapt = true;
      adapt_options.trigger_p90_qerror = std::atof(value.c_str());
    } else if (FlagValue(argc, argv, &i, "--adapt-window", &value)) {
      adapt = true;
      adapt_options.window = std::atoi(value.c_str());
      adapt_options.min_window_fill =
          std::max(1, adapt_options.window / 4);
    } else if (FlagValue(argc, argv, &i, "--adapt-min-rows", &value)) {
      adapt = true;
      adapt_options.min_retrain_rows =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (FlagValue(argc, argv, &i, "--adapt-epochs", &value)) {
      adapt = true;
      adapt_options.retrain_epochs = std::atoi(value.c_str());
    } else if (FlagValue(argc, argv, &i, "--adapt-queue", &value)) {
      adapt = true;
      adapt_options.queue_capacity =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (FlagValue(argc, argv, &i, "--adapt-min-feedback", &value)) {
      adapt = true;
      adapt_options.min_feedback_between_retrains =
          static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (FlagValue(argc, argv, &i, "--model", &model_path)) {
    } else if (FlagValue(argc, argv, &i, "--model-out", &model_out)) {
    } else if (FlagValue(argc, argv, &i, "--port", &value)) {
      options.port = std::atoi(value.c_str());
    } else if (FlagValue(argc, argv, &i, "--max-batch", &value)) {
      options.batcher.max_batch = std::atoi(value.c_str());
    } else if (FlagValue(argc, argv, &i, "--max-delay-us", &value)) {
      options.batcher.max_delay_s = std::atof(value.c_str()) * 1e-6;
    } else if (FlagValue(argc, argv, &i, "--queue-capacity", &value)) {
      options.batcher.queue_capacity = std::atoi(value.c_str());
    } else if (FlagValue(argc, argv, &i, "--threads", &value)) {
      threads = std::atoi(value.c_str());
    } else if (FlagValue(argc, argv, &i, "--shards", &value)) {
      options.num_shards = std::atoi(value.c_str());
    } else if (FlagValue(argc, argv, &i, "--listen-backlog", &value)) {
      options.listen_backlog = std::atoi(value.c_str());
    } else if (FlagValue(argc, argv, &i, "--max-pipeline", &value)) {
      options.max_pipeline = std::atoi(value.c_str());
    } else if (FlagValue(argc, argv, &i, "--slow-ms", &value)) {
      options.batcher.slow_query_log_s = std::atof(value.c_str()) * 1e-3;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (!demo && model_path.empty()) {
    std::fprintf(stderr, "serve needs --model <path> or --demo\n");
    return 2;
  }

  std::unique_ptr<iam::core::ArDensityEstimator> model;
  std::string source = model_path;
  if (demo) {
    std::fprintf(stderr, "training demo model...\n");
    model = iam::serve::TrainDemoEstimator();
    if (!model_out.empty()) {
      const iam::Status saved = model->Save(model_out);
      if (!saved.ok()) {
        std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
        return 1;
      }
      source = model_out;  // SIGHUP reloads from here
    }
  } else {
    auto loaded = iam::core::ArDensityEstimator::Load(model_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    model = std::move(loaded.value());
  }

  // One model replica per shard so shard workers flush batches in parallel
  // instead of serializing on one estimator's batch mutex.
  iam::serve::ModelRegistry registry(std::move(model), source, threads,
                                     options.num_shards);
  // Declared before the server (destroyed after it): ServerOptions::adapt is
  // a non-owning pointer the event loop calls into.
  std::unique_ptr<iam::adapt::AdaptController> controller;
  if (adapt) {
    controller = std::make_unique<iam::adapt::AdaptController>(registry,
                                                               adapt_options);
    options.adapt = controller.get();
    std::fprintf(stderr,
                 "adaptation on: trigger p90 q-error %.3g, window %d, "
                 "min retrain rows %zu\n",
                 adapt_options.trigger_p90_qerror, adapt_options.window,
                 adapt_options.min_retrain_rows);
  }
  iam::serve::EstimatorServer server(registry, options);
  const iam::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::signal(SIGINT, OnStopSignal);
  std::signal(SIGTERM, OnStopSignal);
  std::signal(SIGHUP, OnHupSignal);
  std::printf("listening on %s:%d\n", options.bind_address.c_str(),
              server.port());
  std::fflush(stdout);

  while (g_stop_signal == 0 && !server.shutdown_requested()) {
    if (g_hup_signal != 0) {
      g_hup_signal = 0;
      const std::string path = registry.Current()->source;
      if (path.empty()) {
        std::fprintf(stderr, "SIGHUP ignored: no model file to reload\n");
      } else {
        const auto swapped = registry.SwapFromFile(path);
        if (swapped.ok()) {
          std::fprintf(stderr, "hot-swapped %s -> version %llu\n",
                       path.c_str(),
                       static_cast<unsigned long long>(*swapped));
        } else {
          std::fprintf(stderr, "hot-swap failed (still serving): %s\n",
                       swapped.status().ToString().c_str());
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::printf("draining...\n");
  std::fflush(stdout);
  server.Shutdown();
  // The server no longer references the hooks; stop the adaptation thread
  // before the registry (whose install hook captures the controller) dies.
  controller.reset();
  std::printf("shutdown complete\n");
  return 0;
}

int WithClient(int port,
               int (*body)(iam::serve::Client&, const std::string&),
               const std::string& arg) {
  iam::serve::Client client;
  const iam::Status connected = client.Connect("127.0.0.1", port);
  if (!connected.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 connected.ToString().c_str());
    return 1;
  }
  return body(client, arg);
}

int Usage() {
  std::fprintf(stderr,
               "usage: serve_cli serve --model <model.iam> | --demo [flags]\n"
               "       serve_cli estimate <port> \"<predicates>\"\n"
               "       serve_cli burst <port> \"<predicates>\" <count>\n"
               "       serve_cli swap <port> <model.iam>\n"
               "       serve_cli metrics <port>\n"
               "       serve_cli querylog <port> [\"last=N min_ms=X\"]\n"
               "       serve_cli feedback <port> \"seq=<N> actual=<sel>\"\n"
               "       serve_cli feedback <port> \"actual=<sel> where "
               "<predicates>\"\n"
               "       serve_cli append <port> <rows.csv>\n"
               "       serve_cli shutdown <port>\n");
  return 2;
}

// Streams a CSV file into the server's retraining reservoir, chunked so
// every kAppendData frame stays well under the protocol's payload cap. A
// file may lead with its own "cols=<n>" header; otherwise the column count
// is derived from the first data row.
int Append(iam::serve::Client& client, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::string header;
  std::string line;
  std::string chunk;
  int chunk_rows = 0;
  size_t total_rows = 0;
  constexpr int kRowsPerFrame = 2048;
  const auto flush = [&]() -> int {
    if (chunk_rows == 0) return 0;
    const auto ack = client.AppendData(header + "\n" + chunk);
    if (!ack.ok()) {
      std::fprintf(stderr, "%s\n", ack.status().ToString().c_str());
      return 1;
    }
    total_rows += static_cast<size_t>(chunk_rows);
    chunk.clear();
    chunk_rows = 0;
    return 0;
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (header.empty()) {
      if (line.rfind("cols=", 0) == 0) {
        header = line;
        continue;
      }
      // Derive the width from the first data row: fields = commas + 1.
      const long commas = std::count(line.begin(), line.end(), ',');
      header = "cols=" + std::to_string(commas + 1);
    }
    chunk += line;
    chunk += '\n';
    if (++chunk_rows >= kRowsPerFrame && flush() != 0) return 1;
  }
  if (flush() != 0) return 1;
  std::printf("appended %zu rows\n", total_rows);
  return 0;
}

// Pipelined burst: write all requests before reading any reply, exercising
// the server's in-flight frame slots and submission-order response path.
int Burst(iam::serve::Client& client, const std::string& predicates,
          int count) {
  for (int i = 0; i < count; ++i) {
    const iam::Status sent = client.SendEstimate(predicates);
    if (!sent.ok()) {
      std::fprintf(stderr, "send %d failed: %s\n", i,
                   sent.ToString().c_str());
      return 1;
    }
  }
  int ok = 0;
  int overloaded = 0;
  for (int i = 0; i < count; ++i) {
    const auto reply = client.ReceiveEstimate();
    if (!reply.ok()) {
      std::fprintf(stderr, "receive %d failed: %s\n", i,
                   reply.status().ToString().c_str());
      return 1;
    }
    if (reply->overloaded) {
      ++overloaded;
    } else {
      ++ok;
      if (i + 1 == count) {
        std::printf("selectivity %.10g (model version %llu)\n",
                    reply->selectivity,
                    static_cast<unsigned long long>(reply->model_version));
      }
    }
  }
  std::printf("burst done: %d ok, %d overloaded of %d pipelined\n", ok,
              overloaded, count);
  return overloaded == count ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "serve") return Serve(argc, argv);
  if (argc < 3) return Usage();
  const int port = std::atoi(argv[2]);

  if (command == "estimate") {
    if (argc < 4) return Usage();
    return WithClient(port,
                      [](iam::serve::Client& client, const std::string& q) {
                        const auto reply = client.Estimate(q);
                        if (!reply.ok()) {
                          std::fprintf(stderr, "%s\n",
                                       reply.status().ToString().c_str());
                          return 1;
                        }
                        if (reply->overloaded) {
                          std::printf("overloaded\n");
                          return 3;
                        }
                        std::printf("selectivity %.10g (model version %llu)\n",
                                    reply->selectivity,
                                    static_cast<unsigned long long>(
                                        reply->model_version));
                        return 0;
                      },
                      argv[3]);
  }
  if (command == "burst") {
    if (argc < 5) return Usage();
    const int count = std::atoi(argv[4]);
    if (count <= 0) return Usage();
    iam::serve::Client client;
    const iam::Status connected = client.Connect("127.0.0.1", port);
    if (!connected.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   connected.ToString().c_str());
      return 1;
    }
    return Burst(client, argv[3], count);
  }
  if (command == "swap") {
    if (argc < 4) return Usage();
    return WithClient(port,
                      [](iam::serve::Client& client, const std::string& path) {
                        const auto version = client.Swap(path);
                        if (!version.ok()) {
                          std::fprintf(stderr, "%s\n",
                                       version.status().ToString().c_str());
                          return 1;
                        }
                        std::printf("model version %llu\n",
                                    static_cast<unsigned long long>(*version));
                        return 0;
                      },
                      argv[3]);
  }
  if (command == "metrics") {
    return WithClient(port,
                      [](iam::serve::Client& client, const std::string&) {
                        const auto text = client.Metrics();
                        if (!text.ok()) {
                          std::fprintf(stderr, "%s\n",
                                       text.status().ToString().c_str());
                          return 1;
                        }
                        std::fputs(text->c_str(), stdout);
                        return 0;
                      },
                      "");
  }
  if (command == "querylog") {
    return WithClient(port,
                      [](iam::serve::Client& client,
                         const std::string& filters) {
                        const auto json = client.QueryLog(filters);
                        if (!json.ok()) {
                          std::fprintf(stderr, "%s\n",
                                       json.status().ToString().c_str());
                          return 1;
                        }
                        std::fputs(json->c_str(), stdout);
                        std::fputs("\n", stdout);
                        return 0;
                      },
                      argc >= 4 ? argv[3] : "");
  }
  if (command == "feedback") {
    if (argc < 4) return Usage();
    return WithClient(port,
                      [](iam::serve::Client& client,
                         const std::string& payload) {
                        const auto ack = client.Feedback(payload);
                        if (!ack.ok()) {
                          std::fprintf(stderr, "%s\n",
                                       ack.status().ToString().c_str());
                          return 1;
                        }
                        std::printf("%s\n", ack->c_str());
                        return 0;
                      },
                      argv[3]);
  }
  if (command == "append") {
    if (argc < 4) return Usage();
    return WithClient(port, Append, argv[3]);
  }
  if (command == "shutdown") {
    return WithClient(port,
                      [](iam::serve::Client& client, const std::string&) {
                        const iam::Status status = client.RequestShutdown();
                        if (!status.ok()) {
                          std::fprintf(stderr, "%s\n",
                                       status.ToString().c_str());
                          return 1;
                        }
                        std::printf("server draining\n");
                        return 0;
                      },
                      "");
  }
  return Usage();
}
