// Sensor-analytics scenario (the paper's WISDM motivation): a table mixing
// categorical identity columns with large-domain accelerometer readings.
// Shows (a) how IAM decides which columns to reduce, (b) a side-by-side with
// the NeuroCard-style baseline on correlated needle queries, and (c) the
// disjunction support via inclusion-exclusion.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/ar_density_estimator.h"
#include "core/presets.h"
#include "data/synthetic.h"
#include "estimator/estimator.h"
#include "query/query.h"
#include "query/workload.h"

int main() {
  using namespace iam;

  const data::Table sensors = data::MakeSynWisdm(30000, /*seed=*/13);
  std::printf("sensor table: %zu rows, %d cols "
              "(subject_id, activity_code, x, y, z)\n\n",
              sensors.num_rows(), sensors.num_columns());

  core::ArEstimatorOptions iam_opts = core::IamDefaults(30);
  iam_opts.epochs = 6;
  core::ArDensityEstimator iam(sensors, iam_opts);
  iam.Train();

  core::ArEstimatorOptions nc_opts = core::NeurocardDefaults();
  nc_opts.epochs = 6;
  nc_opts.factor_bits = 8;
  core::ArDensityEstimator neurocard(sensors, nc_opts);
  neurocard.Train();

  std::printf("column treatment:\n");
  for (int c = 0; c < sensors.num_columns(); ++c) {
    std::printf("  %-14s IAM:%s\n", sensors.column(c).name.c_str(),
                iam.IsReduced(c)
                    ? " GMM-reduced"
                    : " raw (small categorical domain)");
  }
  std::printf("model sizes: iam=%.1f KB, neurocard=%.1f KB\n\n",
              iam.SizeBytes() / 1024.0, neurocard.SizeBytes() / 1024.0);

  // Correlated needle queries: subject 0 doing activity 0, with the x-range
  // where that pair actually lives.
  std::vector<double> xs;
  for (size_t r = 0; r < sensors.num_rows(); ++r) {
    if (sensors.value(r, 0) == 0.0 && sensors.value(r, 1) == 0.0) {
      xs.push_back(sensors.value(r, 2));
    }
  }
  std::sort(xs.begin(), xs.end());
  std::printf("needle: subject=0 AND activity=0 AND x in the pair's IQR\n");
  const query::Query needle{{{.column = 0, .lo = 0.0, .hi = 0.0},
                             {.column = 1, .lo = 0.0, .hi = 0.0},
                             {.column = 2, .lo = xs[xs.size() / 4],
                              .hi = xs[3 * xs.size() / 4]}}};
  const double truth = query::TrueSelectivity(sensors, needle);
  for (auto* est : {static_cast<estimator::Estimator*>(&iam),
                    static_cast<estimator::Estimator*>(&neurocard)}) {
    const double v = est->Estimate(needle);
    std::printf("  %-10s est=%.6f true=%.6f qerror=%.2f\n",
                est->name().c_str(), v, truth,
                query::QError(truth, v, sensors.num_rows()));
  }

  // Disjunctions via inclusion-exclusion (Section 2.1 of the paper).
  const query::Query walking{{{.column = 1, .lo = 0.0, .hi = 0.0}}};
  const query::Query jogging{{{.column = 1, .lo = 1.0, .hi = 1.0}}};
  const double either = estimator::EstimateDisjunction(iam, walking, jogging);
  query::Query union_truth_a = walking, union_truth_b = jogging;
  const double exact =
      query::TrueSelectivity(sensors, union_truth_a) +
      query::TrueSelectivity(sensors, union_truth_b);
  std::printf("\ndisjunction activity IN (0, 1): est=%.4f true=%.4f\n",
              either, exact);
  return 0;
}
