// Command-line workflow around persisted models:
//
//   model_cli train <data.csv> <model.iam> [categorical_col,...]
//   model_cli estimate <model.iam> "<predicates>"
//   model_cli demo                       # self-contained end-to-end demo
//
// Observability flags (any command):
//   --metrics          dump the Prometheus text exposition to stdout on exit
//   --metrics=FILE     ... to FILE instead
//   --trace=FILE       record TraceSpans; write chrome://tracing JSON to FILE
//                      and print the per-phase summary table
//
// Predicates use the SQL-style grammar of query::ParsePredicates, e.g.
//   model_cli estimate twi.iam "latitude BETWEEN 35 AND 45 AND longitude <= -100"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/ar_density_estimator.h"
#include "core/presets.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/parser.h"

namespace {

int Train(const std::string& csv_path, const std::string& model_path,
          const std::string& categorical_csv) {
  std::vector<std::string> categorical;
  std::stringstream ss(categorical_csv);
  std::string name;
  while (std::getline(ss, name, ',')) {
    if (!name.empty()) categorical.push_back(name);
  }
  auto table = iam::data::ReadCsv(csv_path, categorical);
  if (!table.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu rows x %d cols\n", table->num_rows(),
              table->num_columns());
  iam::core::ArDensityEstimator model(*table, iam::core::IamDefaults(30));
  model.Train();
  const iam::Status saved = model.Save(model_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("model written to %s (%.1f KB)\n", model_path.c_str(),
              model.SizeBytes() / 1024.0);
  return 0;
}

int Estimate(const std::string& model_path, const std::string& predicate) {
  auto model = iam::core::ArDensityEstimator::Load(model_path);
  if (!model.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  const iam::data::Table schema = (*model)->SchemaTable();
  auto query = iam::query::ParsePredicates(schema, predicate);
  if (!query.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  std::printf("selectivity = %.6g\n", (*model)->Estimate(*query));
  return 0;
}

int Demo() {
  namespace fs = std::filesystem;
  const std::string csv = (fs::temp_directory_path() / "cli_twi.csv").string();
  const std::string model =
      (fs::temp_directory_path() / "cli_twi.iam").string();
  const iam::data::Table twi = iam::data::MakeSynTwi(20000, 99);
  if (!iam::data::WriteCsv(twi, csv).ok()) return 1;
  std::printf("== train ==\n");
  if (Train(csv, model, "") != 0) return 1;
  std::printf("== estimate ==\n");
  const int rc = Estimate(
      model, "latitude BETWEEN 35 AND 45 AND longitude <= -100");
  std::remove(csv.c_str());
  std::remove(model.c_str());
  return rc;
}

// Observability flags, extracted from argv before command dispatch.
struct ObsFlags {
  bool metrics = false;
  std::string metrics_path;  // empty -> stdout
  std::string trace_path;    // empty -> tracing stays off
};

ObsFlags ExtractObsFlags(int* argc, char** argv) {
  ObsFlags flags;
  int w = 0;
  for (int r = 0; r < *argc; ++r) {
    const std::string arg = argv[r];
    if (arg == "--metrics") {
      flags.metrics = true;
    } else if (arg.rfind("--metrics=", 0) == 0) {
      flags.metrics = true;
      flags.metrics_path = arg.substr(10);
    } else if (arg.rfind("--trace=", 0) == 0) {
      flags.trace_path = arg.substr(8);
    } else {
      argv[w++] = argv[r];
    }
  }
  *argc = w;
  return flags;
}

int DumpObservability(const ObsFlags& flags) {
  if (!flags.trace_path.empty()) {
    iam::obs::TraceRecorder& recorder = iam::obs::TraceRecorder::Global();
    if (!recorder.WriteChromeTracingJson(flags.trace_path)) {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   flags.trace_path.c_str());
      return 1;
    }
    std::printf("\n%s", recorder.PhaseTable().c_str());
    std::printf("trace written to %s (load via chrome://tracing)\n",
                flags.trace_path.c_str());
  }
  if (flags.metrics) {
    const std::string text = iam::obs::MetricsToPrometheus(
        iam::obs::MetricRegistry::Global().Snapshot());
    if (flags.metrics_path.empty()) {
      std::printf("\n%s", text.c_str());
    } else {
      std::ofstream out(flags.metrics_path,
                        std::ios::binary | std::ios::trunc);
      out << text;
      if (!out.good()) {
        std::fprintf(stderr, "failed to write metrics to %s\n",
                     flags.metrics_path.c_str());
        return 1;
      }
      std::printf("metrics written to %s\n", flags.metrics_path.c_str());
    }
  }
  return 0;
}

int Dispatch(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "demo") == 0) return Demo();
  if (argc >= 4 && std::strcmp(argv[1], "train") == 0) {
    return Train(argv[2], argv[3], argc >= 5 ? argv[4] : "");
  }
  if (argc >= 4 && std::strcmp(argv[1], "estimate") == 0) {
    return Estimate(argv[2], argv[3]);
  }
  if (argc == 1) return Demo();  // default: run the demo end to end
  std::fprintf(stderr,
               "usage:\n"
               "  %s train <data.csv> <model.iam> [cat_col,...]\n"
               "  %s estimate <model.iam> \"<predicates>\"\n"
               "  %s demo\n"
               "flags: --metrics[=FILE] --trace=FILE\n",
               argv[0], argv[0], argv[0]);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const ObsFlags flags = ExtractObsFlags(&argc, argv);
  if (!flags.trace_path.empty()) {
    iam::obs::TraceRecorder::Global().SetEnabled(true);
  }
  const int rc = Dispatch(argc, argv);
  const int obs_rc = DumpObservability(flags);
  return rc != 0 ? rc : obs_rc;
}
