// Command-line workflow around persisted models:
//
//   model_cli train <data.csv> <model.iam> [categorical_col,...]
//   model_cli estimate <model.iam> "<predicates>"
//   model_cli demo                       # self-contained end-to-end demo
//
// Predicates use the SQL-style grammar of query::ParsePredicates, e.g.
//   model_cli estimate twi.iam "latitude BETWEEN 35 AND 45 AND longitude <= -100"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "core/ar_density_estimator.h"
#include "core/presets.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "query/parser.h"

namespace {

int Train(const std::string& csv_path, const std::string& model_path,
          const std::string& categorical_csv) {
  std::vector<std::string> categorical;
  std::stringstream ss(categorical_csv);
  std::string name;
  while (std::getline(ss, name, ',')) {
    if (!name.empty()) categorical.push_back(name);
  }
  auto table = iam::data::ReadCsv(csv_path, categorical);
  if (!table.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu rows x %d cols\n", table->num_rows(),
              table->num_columns());
  iam::core::ArDensityEstimator model(*table, iam::core::IamDefaults(30));
  model.Train();
  const iam::Status saved = model.Save(model_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("model written to %s (%.1f KB)\n", model_path.c_str(),
              model.SizeBytes() / 1024.0);
  return 0;
}

int Estimate(const std::string& model_path, const std::string& predicate) {
  auto model = iam::core::ArDensityEstimator::Load(model_path);
  if (!model.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  const iam::data::Table schema = (*model)->SchemaTable();
  auto query = iam::query::ParsePredicates(schema, predicate);
  if (!query.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  std::printf("selectivity = %.6g\n", (*model)->Estimate(*query));
  return 0;
}

int Demo() {
  namespace fs = std::filesystem;
  const std::string csv = (fs::temp_directory_path() / "cli_twi.csv").string();
  const std::string model =
      (fs::temp_directory_path() / "cli_twi.iam").string();
  const iam::data::Table twi = iam::data::MakeSynTwi(20000, 99);
  if (!iam::data::WriteCsv(twi, csv).ok()) return 1;
  std::printf("== train ==\n");
  if (Train(csv, model, "") != 0) return 1;
  std::printf("== estimate ==\n");
  const int rc = Estimate(
      model, "latitude BETWEEN 35 AND 45 AND longitude <= -100");
  std::remove(csv.c_str());
  std::remove(model.c_str());
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "demo") == 0) return Demo();
  if (argc >= 4 && std::strcmp(argv[1], "train") == 0) {
    return Train(argv[2], argv[3], argc >= 5 ? argv[4] : "");
  }
  if (argc >= 4 && std::strcmp(argv[1], "estimate") == 0) {
    return Estimate(argv[2], argv[3]);
  }
  if (argc == 1) return Demo();  // default: run the demo end to end
  std::fprintf(stderr,
               "usage:\n"
               "  %s train <data.csv> <model.iam> [cat_col,...]\n"
               "  %s estimate <model.iam> \"<predicates>\"\n"
               "  %s demo\n",
               argv[0], argv[0], argv[0]);
  return 2;
}
