// Query-optimizer scenario (the paper's Figure 5 mechanism): the mini
// cost-based optimizer plans star joins with selectivities supplied by IAM,
// by a Postgres-style AVI estimator, and by the exact oracle; the demo shows
// the chosen join orders and the real intermediate-result sizes each plan
// materializes.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/ar_density_estimator.h"
#include "estimator/postgres1d.h"
#include "join/star_schema.h"
#include "optimizer/mini_optimizer.h"

int main() {
  using namespace iam;

  // A small IMDB-like star: title ⋈ movie_info ⋈ cast_info.
  const join::StarSchema schema = join::MakeSynImdb(800, /*seed=*/3);
  std::printf("star schema: title=%zu rows, movie_info=%zu, cast_info=%zu, "
              "|join|=%.0f\n\n",
              schema.dim.num_rows(), schema.facts[0].num_rows(),
              schema.facts[1].num_rows(), join::JoinCardinality(schema));

  // Train IAM on exact-weight join samples (NeuroCard's recipe, Section 3).
  Rng rng(17);
  const join::ExactWeightSampler sampler(schema);
  const data::Table join_sample = sampler.Sample(15000, rng);
  core::ArEstimatorOptions opts = core::IamDefaults(30);
  opts.epochs = 6;
  core::ArDensityEstimator iam(join_sample, opts);
  iam.Train();

  estimator::Postgres1DEstimator postgres(
      join_sample, estimator::Postgres1DEstimator::Options{});

  optimizer::Catalog catalog(schema);
  optimizer::OracleProvider oracle(schema);
  optimizer::JoinEstimatorProvider iam_provider(schema, &iam);
  optimizer::JoinEstimatorProvider pg_provider(schema, &postgres);

  const auto workload = optimizer::GenerateJoinWorkload(schema, 5, rng);
  const char* table_names[] = {"title", "movie_info", "cast_info"};

  for (size_t i = 0; i < workload.size(); ++i) {
    std::printf("query %zu:\n", i + 1);
    for (auto* provider :
         {static_cast<optimizer::SelectivityProvider*>(&oracle),
          static_cast<optimizer::SelectivityProvider*>(&iam_provider),
          static_cast<optimizer::SelectivityProvider*>(&pg_provider)}) {
      const optimizer::Plan plan =
          optimizer::ChoosePlan(catalog, *provider, workload[i]);
      const optimizer::ExecutionResult result =
          optimizer::ExecutePlan(schema, workload[i], plan.order);
      std::printf("  %-9s order = %s ⋈ %s ⋈ %s | intermediate rows = %.0f, "
                  "output rows = %.0f\n",
                  provider->name().c_str(), table_names[plan.order[0]],
                  table_names[plan.order[1]], table_names[plan.order[2]],
                  result.intermediate_rows, result.output_rows);
    }
  }
  std::printf("\nbetter selectivities -> smaller intermediates -> faster "
              "execution (the paper's Figure 5 effect).\n");
  return 0;
}
