// End-to-end CSV workflow: export a table, reload it, train IAM on the
// loaded copy, and sweep estimates across the trained model and the
// alternative domain reducers. Mirrors how a user would plug their own data
// in: WriteCsv is only used here to fabricate the input file.

#include <cstdio>
#include <filesystem>

#include "core/ar_density_estimator.h"
#include "core/presets.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "query/workload.h"
#include "util/quantiles.h"

int main() {
  using namespace iam;

  const std::string path =
      (std::filesystem::temp_directory_path() / "iam_example.csv").string();

  // Fabricate "user data" on disk.
  {
    const data::Table table = data::MakeSynHiggs(20000, /*seed=*/5);
    const Status st = data::WriteCsv(table, path);
    if (!st.ok()) {
      std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Load it back; no categorical columns in this file.
  auto loaded = data::ReadCsv(path, /*categorical_columns=*/{});
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu rows x %d cols from %s\n", loaded->num_rows(),
              loaded->num_columns(), path.c_str());

  Rng rng(23);
  query::WorkloadOptions wopts;
  wopts.num_queries = 60;
  const auto workload = query::GenerateEvaluatedWorkload(*loaded, wopts, rng);

  // Train IAM and each Section 6.6 alternative on the same data and compare.
  for (const auto kind :
       {core::ReducerKind::kGmm, core::ReducerKind::kEquiDepth,
        core::ReducerKind::kSpline, core::ReducerKind::kUmm}) {
    core::ArEstimatorOptions opts = core::IamDefaults(30);
    opts.reducer_kind = kind;
    opts.epochs = 5;
    core::ArDensityEstimator est(*loaded, opts);
    est.Train();
    std::vector<double> errors;
    for (size_t i = 0; i < workload.queries.size(); ++i) {
      errors.push_back(query::QError(workload.true_selectivities[i],
                                     est.Estimate(workload.queries[i]),
                                     loaded->num_rows()));
    }
    const char* names[] = {"gmm", "equidepth", "spline", "umm"};
    std::printf("reducer=%-10s %s\n", names[static_cast<int>(kind)],
                FormatErrorReport(MakeErrorReport(errors)).c_str());
  }
  std::remove(path.c_str());
  return 0;
}
