// Repo-specific clang-tidy checks, built as a loadable plugin:
//
//   clang-tidy --load=<build>/tools/tidy/libiam_tidy_checks.so \
//              --checks='iam-*' ...
//
// scripts/lint.sh passes --load automatically when the plugin has been
// built; tools/tidy/selftest.sh asserts each check flags its bad TU and
// passes its good TU. See DESIGN.md §16 for the invariants behind each
// check.

#include <string>

#include "clang-tidy/ClangTidyCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/ASTMatchers/ASTMatchers.h"

namespace clang::tidy::iam_checks {
namespace {

// NOLINTNEXTLINE(google-build-using-namespace): matcher DSL idiom
using namespace clang::ast_matchers;

// iam-unordered-container-iteration
//
// Range-for over std::unordered_{map,set,multimap,multiset} inside a
// function whose name matches FunctionNameRegex (estimate/serialize-style
// entry points). Hash-table iteration order is unspecified and varies across
// libstdc++/libc++ and across runs with hardened hashing, so any output
// assembled by such a loop is nondeterministic — it breaks bit-reproducible
// estimates, golden-file serialization tests, and digest-stable envelopes.
class UnorderedContainerIterationCheck : public ClangTidyCheck {
 public:
  UnorderedContainerIterationCheck(StringRef Name, ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context),
        FunctionNameRegex(std::string(Options.get(
            "FunctionNameRegex",
            "^(Estimate|Serialize|Save|Export|ToString|DebugString)"))) {}

  void storeOptions(ClangTidyOptions::OptionMap& Opts) override {
    Options.store(Opts, "FunctionNameRegex", FunctionNameRegex);
  }

  void registerMatchers(ast_matchers::MatchFinder* Finder) override {
    const auto UnorderedDecl = classTemplateSpecializationDecl(
        hasAnyName("::std::unordered_map", "::std::unordered_set",
                   "::std::unordered_multimap", "::std::unordered_multiset"));
    const auto UnorderedType = qualType(
        hasUnqualifiedDesugaredType(recordType(hasDeclaration(UnorderedDecl))));
    Finder->addMatcher(
        cxxForRangeStmt(
            hasRangeInit(expr(anyOf(
                hasType(UnorderedType),
                hasType(qualType(references(UnorderedType)))))),
            forFunction(
                functionDecl(matchesName(FunctionNameRegex)).bind("func")))
            .bind("loop"),
        this);
  }

  void check(const ast_matchers::MatchFinder::MatchResult& Result) override {
    const auto* Loop = Result.Nodes.getNodeAs<CXXForRangeStmt>("loop");
    const auto* Func = Result.Nodes.getNodeAs<FunctionDecl>("func");
    diag(Loop->getBeginLoc(),
         "range-for over an unordered container in %0: iteration order is "
         "unspecified, so the produced estimate/serialized output is "
         "nondeterministic; iterate a sorted copy or an ordered container")
        << Func;
  }

 private:
  const std::string FunctionNameRegex;
};

// iam-guarded-mutable
//
// A `mutable` member of a class that owns a util::Mutex is, in this
// codebase, almost always shared state written under that mutex from const
// methods (caches, counters). Without IAM_GUARDED_BY the thread-safety
// analysis cannot see the association, so unlocked writes compile silently.
class GuardedMutableCheck : public ClangTidyCheck {
 public:
  using ClangTidyCheck::ClangTidyCheck;

  void registerMatchers(ast_matchers::MatchFinder* Finder) override {
    const auto MutexField =
        fieldDecl(hasType(cxxRecordDecl(hasName("::iam::util::Mutex"))));
    Finder->addMatcher(
        fieldDecl(hasParent(cxxRecordDecl(has(MutexField)))).bind("field"),
        this);
  }

  void check(const ast_matchers::MatchFinder::MatchResult& Result) override {
    const auto* Field = Result.Nodes.getNodeAs<FieldDecl>("field");
    if (!Field->isMutable()) return;
    if (Field->hasAttr<GuardedByAttr>()) return;
    // The mutex members themselves are capabilities, not guarded data.
    if (const CXXRecordDecl* Record = Field->getType()->getAsCXXRecordDecl()) {
      if (Record->getQualifiedNameAsString() == "iam::util::Mutex") return;
    }
    diag(Field->getLocation(),
         "mutable member %0 of a Mutex-owning class has no IAM_GUARDED_BY "
         "annotation; name the protecting mutex (or move the member out of "
         "the lock's class)")
        << Field;
  }
};

// iam-nondeterministic-rng
//
// Every random stream in the repo must be seeded explicitly so runs are
// reproducible (DESIGN.md §10). Flags: standard engines constructed with
// their default seed, engines seeded from wall-clock time, and any use of
// std::random_device.
class NondeterministicRngCheck : public ClangTidyCheck {
 public:
  using ClangTidyCheck::ClangTidyCheck;

  void registerMatchers(ast_matchers::MatchFinder* Finder) override {
    const auto EngineDecl = classTemplateSpecializationDecl(
        hasAnyName("::std::mersenne_twister_engine",
                   "::std::linear_congruential_engine",
                   "::std::subtract_with_carry_engine"));
    const auto EngineConstruct = cxxConstructExpr(
        hasDeclaration(cxxConstructorDecl(ofClass(EngineDecl))));
    const auto TimeCall = callExpr(callee(functionDecl(
        hasAnyName("::time", "::std::time", "::clock", "::std::clock"))));
    Finder->addMatcher(
        cxxConstructExpr(EngineConstruct,
                         anyOf(argumentCountIs(0),
                               hasArgument(0, cxxDefaultArgExpr())))
            .bind("default_seed"),
        this);
    Finder->addMatcher(
        cxxConstructExpr(EngineConstruct,
                         hasArgument(0, expr(anyOf(TimeCall,
                                                   hasDescendant(TimeCall)))))
            .bind("time_seed"),
        this);
    Finder->addMatcher(
        varDecl(hasType(cxxRecordDecl(hasName("::std::random_device"))))
            .bind("random_device"),
        this);
  }

  void check(const ast_matchers::MatchFinder::MatchResult& Result) override {
    if (const auto* E = Result.Nodes.getNodeAs<CXXConstructExpr>(
            "default_seed")) {
      diag(E->getBeginLoc(),
           "random engine constructed with its default seed; pass an "
           "explicit deterministic seed (see util/random.h)");
      return;
    }
    if (const auto* E = Result.Nodes.getNodeAs<CXXConstructExpr>(
            "time_seed")) {
      diag(E->getBeginLoc(),
           "random engine seeded from wall-clock time; runs become "
           "irreproducible — derive the seed from configuration instead");
      return;
    }
    if (const auto* V = Result.Nodes.getNodeAs<VarDecl>("random_device")) {
      diag(V->getLocation(),
           "std::random_device is nondeterministic across runs; derive "
           "seeds from configuration so results are reproducible");
    }
  }
};

class IamModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories& CheckFactories) override {
    CheckFactories.registerCheck<UnorderedContainerIterationCheck>(
        "iam-unordered-container-iteration");
    CheckFactories.registerCheck<GuardedMutableCheck>("iam-guarded-mutable");
    CheckFactories.registerCheck<NondeterministicRngCheck>(
        "iam-nondeterministic-rng");
  }
};

}  // namespace

// Static registration runs when clang-tidy dlopens the plugin.
static ClangTidyModuleRegistry::Add<IamModule> IamModuleRegistration(
    "iam-module", "IAM repo-specific checks (DESIGN.md §16).");

}  // namespace clang::tidy::iam_checks
