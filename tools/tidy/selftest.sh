#!/usr/bin/env bash
# Self-test for the iam-* clang-tidy plugin: every check must flag its
# violating TU and stay silent on its clean TU. Usage:
#
#   tools/tidy/selftest.sh [path/to/libiam_tidy_checks.so]
#
# Without an argument the newest plugin under build*/tools/tidy/ is used.
# Hosts without clang-tidy (or without a built plugin) skip with a message
# unless IAM_CI_REQUIRE_CLANG=1, matching scripts/ci.sh's clang gating.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/../.." && pwd)"
cd "${repo_root}"

skip_or_die() {
  if [[ "${IAM_CI_REQUIRE_CLANG:-0}" == "1" ]]; then
    echo "selftest: $1 (IAM_CI_REQUIRE_CLANG=1)" >&2
    exit 1
  fi
  echo "selftest: $1 — skipping"
  exit 0
}

command -v clang-tidy >/dev/null 2>&1 || skip_or_die "clang-tidy not found"

plugin="${1:-}"
if [[ -z "${plugin}" ]]; then
  plugin="$(ls -t build*/tools/tidy/libiam_tidy_checks.so 2>/dev/null |
            head -n 1 || true)"
fi
[[ -n "${plugin}" && -f "${plugin}" ]] ||
  skip_or_die "libiam_tidy_checks.so not built"

run_tidy() {  # <check> <file>
  clang-tidy --load="${plugin}" --checks="-*,$1" --warnings-as-errors='' \
    "$2" -- -std=c++20 -I"${repo_root}/src" 2>/dev/null || true
}

failures=0

expect_flag() {  # <check> <file>
  local out
  out="$(run_tidy "$1" "$2")"
  if ! grep -q "\[$1\]" <<<"${out}"; then
    echo "FAIL: $1 did not flag $2" >&2
    echo "${out}" >&2
    failures=$((failures + 1))
  else
    echo "ok: $1 flags $(basename "$2")"
  fi
}

expect_clean() {  # <check> <file>
  local out
  out="$(run_tidy "$1" "$2")"
  if grep -q "\[$1\]" <<<"${out}"; then
    echo "FAIL: $1 falsely flagged $2" >&2
    echo "${out}" >&2
    failures=$((failures + 1))
  else
    echo "ok: $1 passes $(basename "$2")"
  fi
}

t="tools/tidy/test"
expect_flag iam-unordered-container-iteration "${t}/unordered_iteration_bad.cc"
expect_clean iam-unordered-container-iteration \
  "${t}/unordered_iteration_good.cc"
expect_flag iam-guarded-mutable "${t}/guarded_mutable_bad.cc"
expect_clean iam-guarded-mutable "${t}/guarded_mutable_good.cc"
expect_flag iam-nondeterministic-rng "${t}/rng_bad.cc"
expect_clean iam-nondeterministic-rng "${t}/rng_good.cc"

if [[ "${failures}" -ne 0 ]]; then
  echo "selftest: ${failures} failure(s)" >&2
  exit 1
fi
echo "selftest: all iam-* checks behave"
