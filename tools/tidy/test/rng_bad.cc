// Violating TU for iam-nondeterministic-rng: default-seeded engine,
// time-seeded engine, and std::random_device. selftest.sh asserts the check
// fires.

#include <ctime>
#include <random>

unsigned DrawNondeterministic() {
  std::mt19937 default_seeded;
  std::mt19937_64 time_seeded(
      static_cast<unsigned long long>(std::time(nullptr)));
  std::random_device device;
  return default_seeded() + static_cast<unsigned>(time_seeded()) + device();
}
