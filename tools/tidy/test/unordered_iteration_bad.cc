// Violating TU for iam-unordered-container-iteration: range-for over a hash
// map inside an Estimate* function. selftest.sh asserts the check fires.

#include <string>
#include <unordered_map>

double EstimateTotalWeight(
    const std::unordered_map<std::string, double>& weights) {
  double total = 0.0;
  for (const auto& entry : weights) {
    total += entry.second;
  }
  return total;
}
