// Clean TU for iam-unordered-container-iteration: unordered iteration is
// fine outside estimate/serialize-style functions, and those functions may
// iterate ordered containers freely. selftest.sh asserts no diagnostic.

#include <map>
#include <string>
#include <unordered_map>

double AccumulateWeights(
    const std::unordered_map<std::string, double>& weights) {
  double total = 0.0;
  for (const auto& entry : weights) {
    total += entry.second;
  }
  return total;
}

double EstimateTotalWeight(const std::map<std::string, double>& weights) {
  double total = 0.0;
  for (const auto& entry : weights) {
    total += entry.second;
  }
  return total;
}
