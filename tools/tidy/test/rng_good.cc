// Clean TU for iam-nondeterministic-rng: every engine gets an explicit
// deterministic seed. selftest.sh asserts no diagnostic.

#include <random>

unsigned DrawDeterministic(unsigned long long seed) {
  std::mt19937_64 engine(seed);
  std::mt19937 engine32(static_cast<unsigned>(seed));
  return static_cast<unsigned>(engine()) + engine32();
}
