// Clean TU for iam-guarded-mutable: the mutable member names its protecting
// mutex with IAM_GUARDED_BY. selftest.sh asserts no diagnostic.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class HitCache {
 public:
  int Get() const {
    iam::util::MutexLock lock(mu_);
    return ++hits_;
  }

 private:
  mutable iam::util::Mutex mu_;
  mutable int hits_ IAM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int Probe() { return HitCache().Get(); }
