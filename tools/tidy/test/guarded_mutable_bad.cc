// Violating TU for iam-guarded-mutable: a mutable member of a Mutex-owning
// class without IAM_GUARDED_BY. selftest.sh compiles with -I<repo>/src and
// asserts the check fires.

#include "util/mutex.h"

namespace {

class HitCache {
 public:
  int Get() const {
    iam::util::MutexLock lock(mu_);
    return ++hits_;
  }

 private:
  mutable iam::util::Mutex mu_;
  mutable int hits_ = 0;
};

}  // namespace

int Probe() { return HitCache().Get(); }
