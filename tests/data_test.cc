#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/dictionary.h"
#include "data/statistics.h"
#include "data/synthetic.h"
#include "data/table.h"
#include "util/math_util.h"
#include "util/random.h"

namespace iam::data {
namespace {

TEST(DictionaryTest, OrderPreservingCodes) {
  const std::vector<double> values = {3.0, 1.0, 2.0, 3.0, 1.0};
  const ValueDictionary dict = ValueDictionary::Build(values);
  EXPECT_EQ(dict.size(), 3);
  EXPECT_EQ(dict.Encode(1.0), 0);
  EXPECT_EQ(dict.Encode(2.0), 1);
  EXPECT_EQ(dict.Encode(3.0), 2);
  EXPECT_EQ(dict.Encode(9.0), -1);
  EXPECT_DOUBLE_EQ(dict.Decode(1), 2.0);
}

TEST(DictionaryTest, EncodeRangeInclusive) {
  const std::vector<double> values = {10.0, 20.0, 30.0, 40.0};
  const ValueDictionary dict = ValueDictionary::Build(values);
  auto r = dict.EncodeRange(15.0, 35.0);
  EXPECT_EQ(r.first, 1);
  EXPECT_EQ(r.last, 2);
  r = dict.EncodeRange(20.0, 20.0);
  EXPECT_EQ(r.first, 1);
  EXPECT_EQ(r.last, 1);
  r = dict.EncodeRange(21.0, 29.0);
  EXPECT_TRUE(r.empty());
  const double inf = std::numeric_limits<double>::infinity();
  r = dict.EncodeRange(-inf, inf);
  EXPECT_EQ(r.first, 0);
  EXPECT_EQ(r.last, 3);
}

TEST(TableTest, ValidateCatchesMismatchedLengths) {
  Table t("t");
  t.AddColumn({"a", ColumnType::kContinuous, {1.0, 2.0}});
  t.AddColumn({"b", ColumnType::kContinuous, {1.0}});
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TableTest, ValidateCatchesNonIntegralCategorical) {
  Table t("t");
  t.AddColumn({"a", ColumnType::kCategorical, {1.5}});
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TableTest, BasicAccessors) {
  Table t("t");
  t.AddColumn({"a", ColumnType::kCategorical, {0.0, 1.0, 1.0}});
  t.AddColumn({"b", ColumnType::kContinuous, {5.0, -1.0, 2.0}});
  ASSERT_TRUE(t.Validate().ok());
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.ColumnIndex("b"), 1);
  EXPECT_EQ(t.ColumnIndex("zzz"), -1);
  EXPECT_EQ(t.DistinctCount(0), 2u);
  const auto [lo, hi] = t.ColumnRange(1);
  EXPECT_DOUBLE_EQ(lo, -1.0);
  EXPECT_DOUBLE_EQ(hi, 5.0);
}

TEST(CsvTest, RoundTrip) {
  Table t("t");
  t.AddColumn({"cat", ColumnType::kCategorical, {0.0, 3.0, 1.0}});
  t.AddColumn({"x", ColumnType::kContinuous, {1.25, -2.5, 3.75}});
  const std::string path = std::filesystem::temp_directory_path() /
                           "iam_csv_test.csv";
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto loaded = ReadCsv(path, {"cat"});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_rows(), 3u);
  EXPECT_EQ(loaded->column(0).type, ColumnType::kCategorical);
  EXPECT_EQ(loaded->column(1).type, ColumnType::kContinuous);
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(loaded->value(r, 0), t.value(r, 0));
    EXPECT_DOUBLE_EQ(loaded->value(r, 1), t.value(r, 1));
  }
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIoError) {
  const auto result = ReadCsv("/nonexistent/path.csv", {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(SynWisdmTest, SchemaMatchesPaper) {
  const Table t = MakeSynWisdm(5000, 1);
  ASSERT_TRUE(t.Validate().ok());
  EXPECT_EQ(t.num_columns(), 5);
  EXPECT_EQ(t.num_rows(), 5000u);
  EXPECT_EQ(t.column(0).type, ColumnType::kCategorical);
  EXPECT_EQ(t.column(1).type, ColumnType::kCategorical);
  EXPECT_LE(t.DistinctCount(0), 51u);
  EXPECT_LE(t.DistinctCount(1), 18u);
  // Continuous domains are large (order of the row count).
  EXPECT_GT(t.DistinctCount(2), 4000u);
}

TEST(SynWisdmTest, CategoricalDrivesContinuous) {
  // Correlation regime: the (subject, activity) pair determines the sensor
  // signature, so conditioning on it shrinks variance substantially.
  const Table t = MakeSynWisdm(20000, 2);
  const auto& subj = t.column(0).values;
  const auto& x = t.column(2).values;
  const MeanVar overall = ComputeMeanVar(x);
  // Variance within (subject=0) group.
  std::vector<double> group;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (subj[r] == 0.0 && t.value(r, 1) == 0.0) group.push_back(x[r]);
  }
  ASSERT_GT(group.size(), 10u);
  const MeanVar within = ComputeMeanVar(group);
  EXPECT_LT(within.variance, overall.variance * 0.6);
}

TEST(SynTwiTest, SpatialClustersAndBounds) {
  const Table t = MakeSynTwi(20000, 3);
  ASSERT_TRUE(t.Validate().ok());
  EXPECT_EQ(t.num_columns(), 2);
  const auto [lat_lo, lat_hi] = t.ColumnRange(0);
  EXPECT_GT(lat_lo, 15.0);
  EXPECT_LT(lat_hi, 60.0);
  const auto [lon_lo, lon_hi] = t.ColumnRange(1);
  EXPECT_GT(lon_lo, -135.0);
  EXPECT_LT(lon_hi, -55.0);
}

TEST(SynTwiTest, DeterministicForSeed) {
  const Table a = MakeSynTwi(100, 42);
  const Table b = MakeSynTwi(100, 42);
  for (size_t r = 0; r < 100; ++r) {
    EXPECT_DOUBLE_EQ(a.value(r, 0), b.value(r, 0));
  }
  const Table c = MakeSynTwi(100, 43);
  bool all_equal = true;
  for (size_t r = 0; r < 100; ++r) {
    if (a.value(r, 0) != c.value(r, 0)) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

TEST(SynHiggsTest, HeavySkew) {
  const Table t = MakeSynHiggs(30000, 4);
  ASSERT_TRUE(t.Validate().ok());
  EXPECT_EQ(t.num_columns(), 7);
  // The paper reports extreme skew for HIGGS; ours must be strongly
  // right-skewed on every feature.
  for (int c = 0; c < 7; ++c) {
    EXPECT_GT(Skewness(t.column(c).values), 2.0) << "column " << c;
  }
}

TEST(NonlinearCorrelationTest, DetectsMonotoneAndNonlinearRelations) {
  Rng rng(6);
  std::vector<double> x(8000), linear(8000), parabola(8000), noise(8000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Gaussian();
    linear[i] = 2.0 * x[i];
    parabola[i] = x[i] * x[i];  // Pearson-invisible, NCC-visible
    noise[i] = rng.Gaussian();
  }
  EXPECT_GT(NonlinearCorrelation(x, linear), 0.8);
  EXPECT_GT(NonlinearCorrelation(x, parabola), 0.3);
  EXPECT_LT(NonlinearCorrelation(x, noise), 0.1);
  // Pearson misses the parabola entirely.
  EXPECT_LT(std::abs(PearsonCorrelation(x, parabola)), 0.1);
}

TEST(DatasetStatsTest, OrdersDatasetsLikeThePaper) {
  // Paper (Section 6.1.1): WISDM and TWI have stronger correlation (smaller
  // NCIE) than HIGGS, and HIGGS has the strongest skew.
  Rng rng(7);
  const DatasetStats twi = ComputeDatasetStats(MakeSynTwi(15000, 1), rng);
  const DatasetStats higgs =
      ComputeDatasetStats(MakeSynHiggs(15000, 2), rng);
  EXPECT_LT(twi.ncie, higgs.ncie);
  EXPECT_GT(higgs.mean_abs_skewness, twi.mean_abs_skewness);
  EXPECT_GE(twi.ncie, 0.0);
  EXPECT_LE(higgs.ncie, 1.0 + 1e-9);
}

TEST(SynHiggsTest, WeakCorrelation) {
  const Table t = MakeSynHiggs(30000, 5);
  const double corr =
      PearsonCorrelation(t.column(0).values, t.column(1).values);
  EXPECT_LT(std::abs(corr), 0.4);
}

}  // namespace
}  // namespace iam::data
