#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ar/resmade.h"
#include "nn/matrix.h"

namespace iam::util {
namespace {

TEST(ThreadPoolTest, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  pool.ParallelFor(n, [&](size_t i, int) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, WorkerIdsAreInRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> seen(3);
  pool.ParallelFor(1000, [&](size_t, int worker) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, 3);
    seen[worker].fetch_add(1);
  });
  // Worker 0 is the calling thread; its chunk is never empty for n >= t.
  EXPECT_GT(seen[0].load(), 0);
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](size_t, int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, FewerItemsThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(3);
  pool.ParallelFor(3, [&](size_t i, int) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<size_t> order;
  pool.ParallelFor(100, [&](size_t i, int worker) {
    EXPECT_EQ(worker, 0);
    order.push_back(i);  // safe: inline execution, no concurrency
  });
  std::vector<size_t> expected(100);
  std::iota(expected.begin(), expected.end(), size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(97, [&](size_t i, int) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 97u * 96u / 2);
  }
}

TEST(ThreadPoolTest, ZeroOrNegativeRequestClampsToOne) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

TEST(ThreadPoolTest, ChunksAreContiguousAndOrderedWithinWorker) {
  ThreadPool pool(4);
  const size_t n = 1000;
  // Each worker's indices must arrive in increasing order (the static
  // contiguous partition the determinism contract relies on).
  std::vector<std::vector<size_t>> per_worker(4);
  pool.ParallelFor(n, [&](size_t i, int worker) {
    per_worker[worker].push_back(i);  // safe: one vector per worker
  });
  size_t total = 0;
  for (const auto& indices : per_worker) {
    total += indices.size();
    for (size_t k = 1; k < indices.size(); ++k) {
      ASSERT_EQ(indices[k], indices[k - 1] + 1);
    }
  }
  EXPECT_EQ(total, n);
}

// The reentrancy contract of the refactored ResMade: one shared const model,
// one Context per thread, concurrent ConditionalDistribution calls must be
// bit-identical to the serial result.
TEST(ThreadPoolTest, ResMadeConditionalDistributionIsReentrant) {
  ar::ResMadeConfig config;
  config.hidden_sizes = {32, 32};
  const ar::ResMade made({12, 9, 15}, config, /*seed=*/7);

  std::vector<std::vector<int>> inputs;
  for (int v = 0; v < 12; ++v) inputs.push_back({v, 9, 15});

  nn::Matrix serial;
  ar::ResMade::Context serial_ctx;
  made.ConditionalDistribution(inputs, /*col=*/1, serial, serial_ctx);

  constexpr int kThreads = 4;
  constexpr int kRepeats = 25;
  std::vector<nn::Matrix> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ar::ResMade::Context ctx;  // per-thread evaluation workspace
      for (int r = 0; r < kRepeats; ++r) {
        made.ConditionalDistribution(inputs, 1, results[t], ctx);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(results[t].rows(), serial.rows());
    ASSERT_EQ(results[t].cols(), serial.cols());
    for (size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(results[t].data()[i], serial.data()[i])
          << "thread " << t << " element " << i;
    }
  }
}

}  // namespace
}  // namespace iam::util
