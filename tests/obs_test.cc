// Tests for the observability subsystem (DESIGN.md §12): metric registry
// semantics, histogram quantiles and merge algebra, the Prometheus / JSON
// writers, chrome://tracing export structure, and the acceptance contract
// that concurrent EstimateBatch produces identical semantic counter totals
// at any thread count.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/ar_density_estimator.h"
#include "core/presets.h"
#include "data/synthetic.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/query.h"
#include "util/stopwatch.h"

namespace iam::obs {
namespace {

TEST(CounterTest, AccumulatesAcrossThreads) {
  Counter c;
  constexpr int kThreads = 8, kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Total(), uint64_t{kThreads} * kPerThread);
  c.Reset();
  EXPECT_EQ(c.Total(), 0u);
}

TEST(RegistryTest, SameNameSameHandle) {
  MetricRegistry reg;
  Counter& a = reg.GetCounter("iam_test_total");
  Counter& b = reg.GetCounter("iam_test_total");
  EXPECT_EQ(&a, &b);
  Counter& labeled = reg.GetCounter("iam_test_total", "column", "lat");
  EXPECT_NE(&a, &labeled);
  EXPECT_EQ(&labeled, &reg.GetCounter("iam_test_total", "column", "lat"));
  Gauge& g = reg.GetGauge("iam_test_gauge");
  EXPECT_EQ(&g, &reg.GetGauge("iam_test_gauge"));
  const std::vector<double> bounds = {1.0, 2.0};
  Histogram& h = reg.GetHistogram("iam_test_hist", bounds);
  EXPECT_EQ(&h, &reg.GetHistogram("iam_test_hist", bounds));
}

TEST(RegistryTest, SnapshotSortedAndResettable) {
  MetricRegistry reg;
  reg.GetCounter("iam_b_total").Add(2);
  reg.GetCounter("iam_a_total").Add(1);
  reg.GetGauge("iam_g").Set(3.5);
  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "iam_a_total");
  EXPECT_EQ(snap.counters[0].second, 1u);
  EXPECT_EQ(snap.counters[1].first, "iam_b_total");
  EXPECT_EQ(snap.counters[1].second, 2u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 3.5);

  reg.ResetAll();
  snap = reg.Snapshot();
  EXPECT_EQ(snap.counters[0].second, 0u);
  EXPECT_EQ(snap.counters[1].second, 0u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 0.0);
}

TEST(RegistryTest, ResetAllClearsLabeledSeries) {
  MetricRegistry reg;
  reg.GetCounter("iam_r_total", "column", "lat").Add(5);
  reg.GetCounter("iam_r_total", "column", "lon").Add(7);
  const std::vector<double> bounds = {1.0};
  Histogram& h = reg.GetHistogram("iam_r_seconds", "shard", "0", bounds);
  h.Record(0.5, 42);  // stamp an exemplar so Reset must clear it too

  reg.ResetAll();
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].second, 0u);
  EXPECT_EQ(snap.counters[1].second, 0u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 0u);
  EXPECT_TRUE(snap.histograms[0].exemplar_seq.empty());

  // Handles stay valid after the reset and keep accumulating.
  reg.GetCounter("iam_r_total", "column", "lat").Add(1);
  EXPECT_EQ(reg.GetCounter("iam_r_total", "column", "lat").Total(), 1u);
}

TEST(HistogramTest, BucketsAndQuantiles) {
  const std::vector<double> bounds = {10.0, 20.0, 30.0};
  Histogram h(bounds);
  // 100 values in (0, 10], none elsewhere: the median interpolates to the
  // middle of the first bucket (whose lower edge resolves to 0).
  for (int i = 0; i < 100; ++i) h.Record(5.0);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.sum, 500.0);
  ASSERT_EQ(snap.bucket_counts.size(), 4u);
  EXPECT_EQ(snap.bucket_counts[0], 100u);
  EXPECT_NEAR(snap.Quantile(0.5), 5.0, 1e-9);
  EXPECT_NEAR(snap.Mean(), 5.0, 1e-9);

  // Add 100 values in (20, 30]: p75 lands in the third bucket.
  for (int i = 0; i < 100; ++i) h.Record(25.0);
  snap = h.Snapshot();
  EXPECT_EQ(snap.count, 200u);
  const double p75 = snap.Quantile(0.75);
  EXPECT_GE(p75, 20.0);
  EXPECT_LE(p75, 30.0);
  // Overflow mass resolves to the last finite boundary.
  h.Record(1e9);
  EXPECT_DOUBLE_EQ(h.Snapshot().Quantile(1.0), 30.0);
}

HistogramSnapshot MakeSnap(const std::vector<uint64_t>& buckets, double sum) {
  HistogramSnapshot s;
  s.bounds = {1.0, 2.0, 3.0};
  s.bucket_counts = buckets;
  for (uint64_t b : buckets) s.count += b;
  s.sum = sum;
  return s;
}

TEST(HistogramTest, ExemplarLinksBucketsToNewestSeq) {
  const std::vector<double> bounds = {1.0, 10.0};
  Histogram h(bounds);
  // Plain Record never stamps an exemplar; the snapshot omits the vector.
  h.Record(0.5);
  EXPECT_TRUE(h.Snapshot().exemplar_seq.empty());

  h.Record(0.5, 7);   // bucket 0
  h.Record(5.0, 9);   // bucket 1
  h.Record(0.6, 11);  // bucket 0 again: newest seq wins
  HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.exemplar_seq.size(), 3u);
  EXPECT_EQ(snap.exemplar_seq[0], 11u);
  EXPECT_EQ(snap.exemplar_seq[1], 9u);
  EXPECT_EQ(snap.exemplar_seq[2], 0u);  // overflow bucket untouched
  EXPECT_EQ(snap.count, 4u);

  // Reset clears exemplars along with the counts.
  h.Reset();
  snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_TRUE(snap.exemplar_seq.empty());
}

TEST(HistogramTest, MergeTakesBucketWiseNewestExemplar) {
  HistogramSnapshot a = MakeSnap({1, 0, 0, 0}, 1.0);
  HistogramSnapshot b = MakeSnap({0, 1, 0, 0}, 2.0);
  a.exemplar_seq = {4, 9, 0, 0};
  b.exemplar_seq = {6, 2, 0, 0};
  a.Merge(b);
  ASSERT_EQ(a.exemplar_seq.size(), 4u);
  EXPECT_EQ(a.exemplar_seq[0], 6u);
  EXPECT_EQ(a.exemplar_seq[1], 9u);

  // An exemplar-free snapshot merges as all-zeros in either direction.
  HistogramSnapshot plain = MakeSnap({0, 0, 1, 0}, 3.0);
  a.Merge(plain);
  EXPECT_EQ(a.exemplar_seq[0], 6u);
  HistogramSnapshot plain2 = MakeSnap({0, 0, 1, 0}, 3.0);
  plain2.Merge(a);
  ASSERT_EQ(plain2.exemplar_seq.size(), 4u);
  EXPECT_EQ(plain2.exemplar_seq[1], 9u);
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  // Exact small integers: bucket-wise adds and integer-valued sums are exact
  // in double, so associativity can be checked with operator== semantics.
  const HistogramSnapshot a = MakeSnap({1, 2, 3, 4}, 10.0);
  const HistogramSnapshot b = MakeSnap({5, 0, 7, 1}, 20.0);
  const HistogramSnapshot c = MakeSnap({2, 2, 2, 2}, 8.0);

  HistogramSnapshot ab_c = a;
  ab_c.Merge(b);
  ab_c.Merge(c);

  HistogramSnapshot bc = b;
  bc.Merge(c);
  HistogramSnapshot a_bc = a;
  a_bc.Merge(bc);

  HistogramSnapshot ba = b;
  ba.Merge(a);
  ba.Merge(c);

  for (const HistogramSnapshot* other : {&a_bc, &ba}) {
    EXPECT_EQ(ab_c.bucket_counts, other->bucket_counts);
    EXPECT_EQ(ab_c.count, other->count);
    EXPECT_DOUBLE_EQ(ab_c.sum, other->sum);
  }
  EXPECT_EQ(ab_c.count, a.count + b.count + c.count);
}

TEST(ExportTest, PrometheusFormat) {
  MetricRegistry reg;
  reg.GetCounter("iam_x_total").Add(7);
  reg.GetCounter("iam_y_total", "column", "lat").Add(1);
  reg.GetCounter("iam_y_total", "column", "lon").Add(2);
  reg.GetGauge("iam_loss").Set(0.25);
  const std::vector<double> bounds = {1.0, 10.0};
  Histogram& h = reg.GetHistogram("iam_lat_seconds", bounds);
  h.Record(0.5);
  h.Record(5.0);
  h.Record(100.0);

  const std::string text = MetricsToPrometheus(reg.Snapshot());
  EXPECT_NE(text.find("# TYPE iam_x_total counter\niam_x_total 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("iam_y_total{column=\"lat\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("iam_y_total{column=\"lon\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE iam_loss gauge\niam_loss 0.25\n"),
            std::string::npos);
  // Cumulative buckets plus +Inf / _sum / _count expansions.
  EXPECT_NE(text.find("iam_lat_seconds_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("iam_lat_seconds_bucket{le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("iam_lat_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("iam_lat_seconds_count 3\n"), std::string::npos);
  // One # TYPE line per family: the labeled family is declared once.
  size_t type_y = 0;
  for (size_t pos = text.find("# TYPE iam_y_total"); pos != std::string::npos;
       pos = text.find("# TYPE iam_y_total", pos + 1)) {
    ++type_y;
  }
  EXPECT_EQ(type_y, 1u);
}

TEST(ExportTest, PrometheusLabeledHistograms) {
  MetricRegistry reg;
  const std::vector<double> bounds = {1.0, 10.0};
  reg.GetHistogram("iam_wait_seconds", "shard", "0", bounds).Record(0.5);
  Histogram& s1 = reg.GetHistogram("iam_wait_seconds", "shard", "1", bounds);
  s1.Record(5.0);
  s1.Record(100.0);

  const std::string text = MetricsToPrometheus(reg.Snapshot());
  // The `le` bucket label merges into the series' own label block; _sum and
  // _count keep the plain label block after the expanded family name.
  EXPECT_NE(text.find("iam_wait_seconds_bucket{shard=\"0\",le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("iam_wait_seconds_bucket{shard=\"0\",le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("iam_wait_seconds_bucket{shard=\"1\",le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("iam_wait_seconds_bucket{shard=\"1\",le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("iam_wait_seconds_sum{shard=\"0\"} 0.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("iam_wait_seconds_count{shard=\"1\"} 2\n"),
            std::string::npos);
  // One # TYPE header covers both shards, and no malformed name (a label
  // block before _bucket) leaks into the exposition.
  size_t type_lines = 0;
  for (size_t pos = text.find("# TYPE iam_wait_seconds histogram");
       pos != std::string::npos;
       pos = text.find("# TYPE iam_wait_seconds histogram", pos + 1)) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
  EXPECT_EQ(text.find("}_bucket"), std::string::npos);
}

TEST(ExportTest, PrometheusEscapesLabelValues) {
  MetricRegistry reg;
  // A label value containing both `"` and `\` must render with the
  // exposition-format escapes, not leak raw into the series name.
  reg.GetCounter("iam_esc_total", "column", R"(a"b\c)").Add(1);
  const std::string text = MetricsToPrometheus(reg.Snapshot());
  EXPECT_NE(text.find(std::string(R"(iam_esc_total{column="a\"b\\c"} 1)") +
                      "\n"),
            std::string::npos)
      << text;

  // The escaped series name round-trips through the JSON key escaping too.
  const std::string json = MetricsToJson(reg.Snapshot());
  EXPECT_NE(json.find(R"("iam_esc_total{column=\"a\\\"b\\\\c\"}":1)"),
            std::string::npos)
      << json;
}

TEST(ExportTest, JsonEmitsExemplarSeqWhenPresent) {
  MetricRegistry reg;
  const std::vector<double> bounds = {1.0, 10.0};
  Histogram& h = reg.GetHistogram("iam_e_seconds", bounds);
  h.Record(0.5);
  // Exemplar-free histograms keep the legacy JSON shape.
  EXPECT_EQ(MetricsToJson(reg.Snapshot()).find("exemplar_seq"),
            std::string::npos);

  h.Record(5.0, 17);
  const std::string json = MetricsToJson(reg.Snapshot());
  EXPECT_NE(json.find("\"exemplar_seq\":[0,17,0]"), std::string::npos) << json;
}

TEST(ExportTest, JsonShape) {
  MetricRegistry reg;
  reg.GetCounter("iam_x_total").Add(3);
  reg.GetCounter("iam_y_total", "column", "lat").Add(1);
  reg.GetGauge("iam_loss").Set(1.5);
  const std::vector<double> bounds = {1.0};
  reg.GetHistogram("iam_h", bounds).Record(0.5);
  const std::string json = MetricsToJson(reg.Snapshot());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"iam_x_total\":3"), std::string::npos);
  // The quotes inside a labeled sample name are escaped in the JSON key.
  EXPECT_NE(json.find("\"iam_y_total{column=\\\"lat\\\"}\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"iam_loss\":1.5}"), std::string::npos);
  EXPECT_NE(json.find("\"iam_h\":{\"count\":1"), std::string::npos);
}

TEST(TraceTest, SpansRecordAndPhaseTableAggregates) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  rec.SetEnabled(true);
  {
    TraceSpan outer("obs_test.outer");
    { TraceSpan inner("obs_test.inner"); }
    { TraceSpan inner("obs_test.inner"); }
  }
  rec.SetEnabled(false);
  const std::vector<TraceEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 3u);
  int inner = 0, outer = 0;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "obs_test.inner") ++inner;
    if (std::string(e.name) == "obs_test.outer") ++outer;
    EXPECT_GE(e.dur_us, 0.0);
  }
  EXPECT_EQ(inner, 2);
  EXPECT_EQ(outer, 1);

  const std::vector<PhaseStats> phases = rec.Phases();
  ASSERT_EQ(phases.size(), 2u);
  for (const PhaseStats& p : phases) {
    if (p.name == "obs_test.inner") EXPECT_EQ(p.count, 2u);
    if (p.name == "obs_test.outer") EXPECT_EQ(p.count, 1u);
  }
  const std::string table = rec.PhaseTable();
  EXPECT_NE(table.find("obs_test.inner"), std::string::npos);
  rec.Clear();
}

TEST(TraceTest, DisabledSpansRecordNothing) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  rec.SetEnabled(false);
  { TraceSpan span("obs_test.disabled"); }
  EXPECT_TRUE(rec.Events().empty());
}

TEST(TraceTest, SpanPauseExcludesBlockedTime) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  rec.SetEnabled(true);
  {
    TraceSpan span("obs_test.paused");
    span.Pause();
    // Busy-wait ~1ms of wall time while the span is paused.
    Stopwatch wall;
    while (wall.ElapsedMillis() < 1.0) {
    }
    span.Resume();
  }
  rec.SetEnabled(false);
  const std::vector<TraceEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 1u);
  // The paused millisecond must not show up in the duration.
  EXPECT_LT(events[0].dur_us, 900.0);
  rec.Clear();
}

// Acceptance check: the exported file is structurally valid chrome://tracing
// JSON — the top-level keys, one object per span, and the required fields on
// every event.
TEST(TraceTest, ChromeTracingExportStructure) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  rec.SetEnabled(true);
  { TraceSpan a("obs_test.export_a"); }
  { TraceSpan b("obs_test.export_b"); }
  rec.SetEnabled(false);

  const std::string path =
      (std::filesystem::temp_directory_path() / "obs_trace_test.json")
          .string();
  ASSERT_TRUE(rec.WriteChromeTracingJson(path));
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  rec.Clear();

  // Top-level structure.
  EXPECT_EQ(contents.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  EXPECT_EQ(contents.find('['), contents.rfind('['));
  ASSERT_GE(contents.size(), 2u);
  EXPECT_EQ(contents.substr(contents.size() - 2), "]}");

  // Balanced braces.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < contents.size(); ++i) {
    const char ch = contents[i];
    if (ch == '"' && (i == 0 || contents[i - 1] != '\\')) {
      in_string = !in_string;
    }
    if (in_string) continue;
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);

  // One complete event object per span, each with the required fields.
  size_t events = 0;
  for (size_t pos = contents.find("{\"name\":"); pos != std::string::npos;
       pos = contents.find("{\"name\":", pos + 1)) {
    const size_t end = contents.find('}', pos);
    ASSERT_NE(end, std::string::npos);
    const std::string event = contents.substr(pos, end - pos + 1);
    for (const char* key :
         {"\"cat\":", "\"ph\":\"X\"", "\"ts\":", "\"dur\":", "\"pid\":",
          "\"tid\":"}) {
      EXPECT_NE(event.find(key), std::string::npos) << event;
    }
    ++events;
  }
  EXPECT_EQ(events, 2u);
}

// --- Cross-thread-count determinism of the semantic counters. --------------

core::ArEstimatorOptions ObsModelOptions() {
  core::ArEstimatorOptions opts = core::IamDefaults(8);
  opts.made.hidden_sizes = {32, 32};
  opts.epochs = 1;
  opts.batch_size = 128;
  opts.progressive_samples = 64;
  opts.gmm_samples_per_component = 1000;
  opts.large_domain_threshold = 200;
  opts.num_threads = 1;
  return opts;
}

// The subset of counters whose totals are functions of (model, queries, seed)
// alone. Topology counters — pool chunks, per-context wt-cache misses, and
// every *_seconds histogram's timings — legitimately vary with the thread
// count and are excluded by construction.
std::map<std::string, uint64_t> SemanticCounterTotals() {
  const MetricsSnapshot snap = MetricRegistry::Global().Snapshot();
  const std::vector<std::string> prefixes = {
      "iam_sampler_", "iam_estimator_queries_total",
      "iam_estimator_batches_total", "iam_gmm_range_mass_evals_total",
      "iam_pool_jobs_total", "iam_pool_indices_total"};
  std::map<std::string, uint64_t> out;
  for (const auto& [name, total] : snap.counters) {
    for (const std::string& prefix : prefixes) {
      if (name.rfind(prefix, 0) == 0) {
        out[name] = total;
        break;
      }
    }
  }
  // Per-query latency observations: one Record per query at any thread count.
  for (const HistogramSnapshot& h : snap.histograms) {
    if (h.name == "iam_estimator_query_seconds") {
      out["query_seconds.count"] = h.count;
    }
  }
  return out;
}

TEST(ObsDeterminismTest, ConcurrentEstimateBatchCountersThreadInvariant) {
  const data::Table table = data::MakeSynWisdm(3000, 77);
  core::ArDensityEstimator est(table, ObsModelOptions());
  est.TrainEpoch();

  std::vector<query::Query> qs;
  for (int i = 0; i < 12; ++i) {
    qs.push_back(query::Query{
        {{.column = 0, .lo = 25.0 + i, .hi = 40.0 + 2.0 * i}}});
  }
  // One always-empty query exercises the dead-query counter.
  qs.push_back(query::Query{{{.column = 0, .lo = 10.0, .hi = 5.0}}});

  std::map<std::string, uint64_t> baseline;
  std::vector<double> baseline_estimates;
  for (const int threads : {1, 2, 4}) {
    est.set_num_threads(threads);
    MetricRegistry::Global().ResetAll();

    // race_test-style: two concurrent callers of the same estimator; the
    // batch mutex serializes them, the registry sums their work.
    std::vector<double> r1, r2;
    std::thread other([&] { r2 = est.EstimateBatch(qs); });
    r1 = est.EstimateBatch(qs);
    other.join();

    const std::map<std::string, uint64_t> totals = SemanticCounterTotals();
    EXPECT_EQ(totals.at("iam_estimator_queries_total"), 2 * qs.size());
    EXPECT_EQ(totals.at("iam_sampler_dead_queries_total"), 2u);
    EXPECT_EQ(totals.at("query_seconds.count"), 2 * qs.size());
    EXPECT_EQ(r1, r2);
    if (threads == 1) {
      baseline = totals;
      baseline_estimates = r1;
    } else {
      EXPECT_EQ(totals, baseline) << "thread count " << threads;
      EXPECT_EQ(r1, baseline_estimates) << "thread count " << threads;
    }
  }
}

}  // namespace
}  // namespace iam::obs
