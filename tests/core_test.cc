#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "core/ar_density_estimator.h"
#include "core/presets.h"
#include "core/sampling_utils.h"
#include "data/synthetic.h"
#include "query/parser.h"
#include "query/workload.h"
#include "util/quantiles.h"

namespace iam::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Small, fast configurations for tests.
ArEstimatorOptions FastIam() {
  ArEstimatorOptions opts = IamDefaults(8);
  opts.made.hidden_sizes = {48, 48};
  opts.epochs = 6;
  opts.batch_size = 256;
  opts.progressive_samples = 128;
  opts.gmm_samples_per_component = 2000;
  opts.large_domain_threshold = 200;
  return opts;
}

ArEstimatorOptions FastNeurocard() {
  ArEstimatorOptions opts = NeurocardDefaults();
  opts.made.hidden_sizes = {48, 48};
  opts.epochs = 6;
  opts.batch_size = 256;
  opts.progressive_samples = 128;
  opts.large_domain_threshold = 200;
  opts.factor_bits = 6;  // exercise factorization on small test domains
  return opts;
}

const data::Table& Twi() {
  static const data::Table* table =
      new data::Table(data::MakeSynTwi(8000, 101));
  return *table;
}

const data::Table& Wisdm() {
  static const data::Table* table =
      new data::Table(data::MakeSynWisdm(8000, 102));
  return *table;
}

TEST(IamModelTest, ReducesContinuousDomains) {
  ArDensityEstimator iam(Twi(), FastIam());
  EXPECT_TRUE(iam.IsReduced(0));
  EXPECT_TRUE(iam.IsReduced(1));
  EXPECT_EQ(iam.ReducedDomainSize(0), 8);
  EXPECT_EQ(iam.num_model_columns(), 2);
}

TEST(IamModelTest, MixedSchemaKeepsCategoricalRaw) {
  ArDensityEstimator iam(Wisdm(), FastIam());
  EXPECT_FALSE(iam.IsReduced(0));
  EXPECT_FALSE(iam.IsReduced(1));
  EXPECT_TRUE(iam.IsReduced(2));
  EXPECT_EQ(iam.num_model_columns(), 5);
}

TEST(NeurocardTest, FactorizesLargeDomains) {
  ArDensityEstimator nc(Twi(), FastNeurocard());
  EXPECT_FALSE(nc.IsReduced(0));
  // 8000 distinct values with 2^6 sub-domain -> two model columns per col.
  EXPECT_EQ(nc.num_model_columns(), 4);
}

TEST(IamModelTest, TrainingReducesArLoss) {
  ArDensityEstimator iam(Twi(), FastIam());
  const double first = iam.TrainEpoch();
  double last = first;
  for (int e = 0; e < 5; ++e) last = iam.TrainEpoch();
  EXPECT_LT(last, first + 0.05);
}

TEST(IamModelTest, GmmNllAvailableForReducedColumns) {
  ArDensityEstimator iam(Twi(), FastIam());
  iam.TrainEpoch();
  ASSERT_TRUE(iam.GmmNll(0).has_value());
  EXPECT_TRUE(std::isfinite(*iam.GmmNll(0)));
}

TEST(IamModelTest, UnconstrainedColumnEstimatesNearOne) {
  ArDensityEstimator iam(Twi(), FastIam());
  iam.Train();
  query::Query q{{{.column = 0, .lo = -kInf, .hi = kInf}}};
  EXPECT_GT(iam.Estimate(q), 0.85);
}

TEST(IamModelTest, ImpossibleRangeIsZero) {
  ArDensityEstimator iam(Twi(), FastIam());
  iam.Train();
  query::Query q{{{.column = 0, .lo = 500.0, .hi = 600.0}}};
  EXPECT_DOUBLE_EQ(iam.Estimate(q), 0.0);
  query::Query inverted{{{.column = 0, .lo = 40.0, .hi = 30.0}}};
  EXPECT_DOUBLE_EQ(iam.Estimate(inverted), 0.0);
}

TEST(IamModelTest, AccuracyOnSpatialWorkload) {
  ArDensityEstimator iam(Twi(), FastIam());
  iam.Train();
  Rng rng(7);
  query::WorkloadOptions options;
  options.num_queries = 40;
  const auto w = query::GenerateEvaluatedWorkload(Twi(), options, rng);
  std::vector<double> errors;
  for (size_t i = 0; i < w.queries.size(); ++i) {
    errors.push_back(query::QError(w.true_selectivities[i],
                                   iam.Estimate(w.queries[i]),
                                   Twi().num_rows()));
  }
  const ErrorReport report = MakeErrorReport(errors);
  EXPECT_LT(report.median, 3.0) << FormatErrorReport(report);
  EXPECT_LT(report.max, 200.0) << FormatErrorReport(report);
}

TEST(NeurocardTest, AccuracyOnSpatialWorkload) {
  ArDensityEstimator nc(Twi(), FastNeurocard());
  nc.Train();
  Rng rng(8);
  query::WorkloadOptions options;
  options.num_queries = 30;
  const auto w = query::GenerateEvaluatedWorkload(Twi(), options, rng);
  std::vector<double> errors;
  for (size_t i = 0; i < w.queries.size(); ++i) {
    errors.push_back(query::QError(w.true_selectivities[i],
                                   nc.Estimate(w.queries[i]),
                                   Twi().num_rows()));
  }
  const ErrorReport report = MakeErrorReport(errors);
  EXPECT_LT(report.median, 5.0) << FormatErrorReport(report);
}

// Theorem 5.1 (unbiasedness): with the model frozen, the progressive-sampling
// estimate must converge to the exhaustive enumeration of the model's own
// joint distribution restricted by the bias-correction masses.
TEST(IamModelTest, ProgressiveSamplingMatchesExhaustiveEnumeration) {
  ArEstimatorOptions opts = FastIam();
  opts.progressive_samples = 4096;  // tight Monte-Carlo error
  opts.exact_range_mass = true;     // remove the MC mass noise
  ArDensityEstimator iam(Twi(), opts);
  iam.Train();

  query::Query q{{{.column = 0, .lo = 38.0, .hi = 44.0},
                  {.column = 1, .lo = -110.0, .hi = -80.0}}};

  // Exhaustive: sum over all (k1, k2) of
  //   P(k1) mass1[k1] P(k2 | k1) mass2[k2].
  const auto mass0 = iam.reducer(0)->RangeMass(38.0, 44.0);
  const auto mass1 = iam.reducer(1)->RangeMass(-110.0, -80.0);
  const int k0 = iam.ReducedDomainSize(0);
  const int k1 = iam.ReducedDomainSize(1);
  ar::ResMade& made = iam.made();

  nn::Matrix marginal;
  const int wc0 = made.wildcard_token(0);
  const int wc1 = made.wildcard_token(1);
  made.ConditionalDistribution({{wc0, wc1}}, 0, marginal);
  double exhaustive = 0.0;
  std::vector<std::vector<int>> inputs;
  for (int a = 0; a < k0; ++a) inputs.push_back({a, wc1});
  nn::Matrix cond;
  made.ConditionalDistribution(inputs, 1, cond);
  for (int a = 0; a < k0; ++a) {
    double inner = 0.0;
    for (int b = 0; b < k1; ++b) {
      inner += cond.at(a, b) * mass1[b];
    }
    exhaustive += marginal.at(0, a) * mass0[a] * inner;
  }

  const double sampled = iam.Estimate(q);
  EXPECT_NEAR(sampled, exhaustive, 0.05 * std::max(exhaustive, 0.01));
}

TEST(IamModelTest, BatchMatchesSingleQueryEstimates) {
  ArDensityEstimator iam(Twi(), FastIam());
  iam.Train();
  Rng rng(9);
  query::WorkloadOptions options;
  options.num_queries = 12;
  const auto w = query::GenerateEvaluatedWorkload(Twi(), options, rng);
  const auto batch = iam.EstimateBatch(w.queries);
  for (size_t i = 0; i < w.queries.size(); ++i) {
    const double single = iam.Estimate(w.queries[i]);
    // Different RNG draws; estimates agree within Monte-Carlo noise.
    const double floor = 1.0 / Twi().num_rows();
    const double ratio = std::max(batch[i], floor) /
                         std::max(single, floor);
    EXPECT_LT(std::max(ratio, 1.0 / ratio), 4.0) << "query " << i;
  }
}

TEST(IamModelTest, ParallelBatchIsBitIdenticalToSerial) {
  // The threading contract: each query draws from its own RNG stream seeded
  // by (options.seed ^ query index), so EstimateBatch must return the exact
  // same doubles no matter how many threads the pool runs.
  ArEstimatorOptions opts = FastIam();
  opts.num_threads = 1;
  ArDensityEstimator iam(Twi(), opts);
  iam.Train();
  Rng rng(31);
  query::WorkloadOptions woptions;
  woptions.num_queries = 24;
  const auto w = query::GenerateEvaluatedWorkload(Twi(), woptions, rng);

  const auto serial = iam.EstimateBatch(w.queries);
  iam.set_num_threads(4);
  const auto parallel = iam.EstimateBatch(w.queries);
  iam.set_num_threads(1);
  const auto serial_again = iam.EstimateBatch(w.queries);

  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i], parallel[i]) << "query " << i;
    // Repeated calls are also deterministic (no shared RNG advanced).
    EXPECT_DOUBLE_EQ(serial[i], serial_again[i]) << "query " << i;
  }
}

TEST(IamModelTest, ParallelBuildMatchesSerialBuild) {
  // Per-column reducer fitting is parallelized at build time with per-column
  // seeds, so a 4-thread build must produce the same model as a serial one.
  ArEstimatorOptions serial_opts = FastIam();
  serial_opts.num_threads = 1;
  ArDensityEstimator serial(Twi(), serial_opts);
  serial.Train();

  ArEstimatorOptions parallel_opts = FastIam();
  parallel_opts.num_threads = 4;
  ArDensityEstimator parallel(Twi(), parallel_opts);
  parallel.Train();

  Rng rng(32);
  query::WorkloadOptions woptions;
  woptions.num_queries = 12;
  const auto w = query::GenerateEvaluatedWorkload(Twi(), woptions, rng);
  serial.set_num_threads(1);
  parallel.set_num_threads(1);
  const auto from_serial = serial.EstimateBatch(w.queries);
  const auto from_parallel = parallel.EstimateBatch(w.queries);
  for (size_t i = 0; i < w.queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(from_serial[i], from_parallel[i]) << "query " << i;
  }
}

TEST(IamModelTest, AlternativeReducersPlugIn) {
  for (ReducerKind kind :
       {ReducerKind::kEquiDepth, ReducerKind::kSpline, ReducerKind::kUmm}) {
    ArEstimatorOptions opts = FastIam();
    opts.reducer_kind = kind;
    opts.epochs = 3;
    ArDensityEstimator est(Twi(), opts);
    est.Train();
    query::Query q{{{.column = 0, .lo = 35.0, .hi = 45.0}}};
    const double s = est.Estimate(q);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(IamModelTest, AutoComponentSelectionViaVbgm) {
  ArEstimatorOptions opts = FastIam();
  opts.reducer_components = 0;  // VBGM decides
  ArDensityEstimator iam(Twi(), opts);
  EXPECT_GE(iam.ReducedDomainSize(0), 1);
  EXPECT_LE(iam.ReducedDomainSize(0), 50);
}

TEST(IamModelTest, SmallerThanNeurocard) {
  ArDensityEstimator iam(Twi(), FastIam());
  ArDensityEstimator nc(Twi(), FastNeurocard());
  // The paper's Table 6 regime: domain reduction shrinks the model.
  EXPECT_LT(iam.SizeBytes(), nc.SizeBytes());
}

TEST(IamModelTest, CustomColumnOrderStillAccurate) {
  ArEstimatorOptions opts = FastIam();
  opts.column_order = {1, 0};  // reverse order on the 2-column TWI table
  ArDensityEstimator iam(Twi(), opts);
  iam.Train();
  query::Query q{{{.column = 0, .lo = 35.0, .hi = 45.0}}};
  const double truth = query::TrueSelectivity(Twi(), q);
  EXPECT_LT(query::QError(truth, iam.Estimate(q), Twi().num_rows()), 3.0);
}

TEST(IamModelTest, InvalidColumnOrderRejected) {
  ArEstimatorOptions opts = FastIam();
  opts.column_order = {0, 0};  // not a permutation
  EXPECT_DEATH({ ArDensityEstimator iam(Twi(), opts); }, "IAM_CHECK");
}

TEST(AggregateTest, CountMatchesSelectivity) {
  ArDensityEstimator iam(Twi(), FastIam());
  iam.Train();
  query::Query q{{{.column = 0, .lo = 35.0, .hi = 45.0}}};
  const auto agg = iam.EstimateAggregate(q, 1);
  const double sel = agg.selectivity;
  EXPECT_NEAR(agg.count, sel * Twi().num_rows(), 1e-6);
  // Aggregate-path selectivity should be consistent with Estimate().
  const double direct = iam.Estimate(q);
  const double ratio = std::max(sel, 1e-4) / std::max(direct, 1e-4);
  EXPECT_LT(std::max(ratio, 1.0 / ratio), 2.0);
}

TEST(AggregateTest, AvgAndSumTrackExactAnswers) {
  ArEstimatorOptions opts = FastIam();
  opts.progressive_samples = 1024;
  ArDensityEstimator iam(Twi(), opts);
  iam.Train();

  // AVG(longitude) and SUM(longitude) over latitude <= 40.
  query::Query q{{{.column = 0, .lo = -1e30, .hi = 40.0}}};
  double exact_sum = 0.0;
  size_t exact_count = 0;
  for (size_t r = 0; r < Twi().num_rows(); ++r) {
    if (Twi().value(r, 0) <= 40.0) {
      exact_sum += Twi().value(r, 1);
      ++exact_count;
    }
  }
  const double exact_avg = exact_sum / static_cast<double>(exact_count);

  const auto agg = iam.EstimateAggregate(q, 1);
  // Longitudes are ~[-124, -67]: demand the AVG within a few degrees.
  EXPECT_NEAR(agg.avg, exact_avg, 4.0);
  EXPECT_NEAR(agg.sum / exact_sum, 1.0, 0.25);
  EXPECT_NEAR(agg.count / static_cast<double>(exact_count), 1.0, 0.25);
}

TEST(AggregateTest, TargetWithPredicateUsesRestrictedMean) {
  ArEstimatorOptions opts = FastIam();
  opts.progressive_samples = 1024;
  ArDensityEstimator iam(Twi(), opts);
  iam.Train();
  // AVG(latitude) with the predicate on latitude itself: the representative
  // values must come from inside the queried interval.
  query::Query q{{{.column = 0, .lo = 30.0, .hi = 40.0}}};
  const auto agg = iam.EstimateAggregate(q, 0);
  EXPECT_GE(agg.avg, 30.0);
  EXPECT_LE(agg.avg, 40.0);
}

TEST(AggregateTest, FactorizedTargetDecodesValues) {
  // Neurocard-style model: the target column is factorized into two
  // sub-columns; the aggregate path must recombine and decode them.
  ArEstimatorOptions opts = FastNeurocard();
  opts.progressive_samples = 1024;
  ArDensityEstimator nc(Twi(), opts);
  nc.Train();
  query::Query q{{{.column = 0, .lo = -1e30, .hi = 40.0}}};
  double exact_sum = 0.0;
  size_t exact_count = 0;
  for (size_t r = 0; r < Twi().num_rows(); ++r) {
    if (Twi().value(r, 0) <= 40.0) {
      exact_sum += Twi().value(r, 1);
      ++exact_count;
    }
  }
  const auto agg = nc.EstimateAggregate(q, 1);
  EXPECT_NEAR(agg.avg, exact_sum / static_cast<double>(exact_count), 5.0);
  // Values must be real longitudes, not sub-column codes.
  EXPECT_LT(agg.avg, -60.0);
  EXPECT_GT(agg.avg, -130.0);
}

TEST(AggregateTest, ImpossibleQueryYieldsZeros) {
  ArDensityEstimator iam(Twi(), FastIam());
  iam.Train();
  query::Query q{{{.column = 0, .lo = 500.0, .hi = 600.0}}};
  const auto agg = iam.EstimateAggregate(q, 1);
  EXPECT_DOUBLE_EQ(agg.selectivity, 0.0);
  EXPECT_DOUBLE_EQ(agg.sum, 0.0);
}

TEST(PersistenceTest, SaveLoadRoundTrip) {
  ArEstimatorOptions opts = FastIam();
  opts.exact_range_mass = true;  // removes Monte-Carlo mass noise
  ArDensityEstimator iam(Twi(), opts);
  iam.Train();

  const std::string path =
      (std::filesystem::temp_directory_path() / "iam_model_test.bin").string();
  ASSERT_TRUE(iam.Save(path).ok());
  auto loaded = ArDensityEstimator::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ((*loaded)->name(), iam.name());
  EXPECT_EQ((*loaded)->num_model_columns(), iam.num_model_columns());
  EXPECT_EQ((*loaded)->ReducedDomainSize(0), iam.ReducedDomainSize(0));
  EXPECT_EQ((*loaded)->SizeBytes(), iam.SizeBytes());

  // Deterministic check: identical AR weights -> identical log-probs.
  for (const std::vector<int>& tuple :
       {std::vector<int>{0, 0}, {3, 5}, {7, 2}}) {
    EXPECT_DOUBLE_EQ((*loaded)->made().LogProb(tuple), iam.made().LogProb(tuple));
  }

  // Stochastic check: estimates agree within Monte-Carlo noise.
  query::Query q{{{.column = 0, .lo = 35.0, .hi = 45.0}}};
  const double a = iam.Estimate(q);
  const double b = (*loaded)->Estimate(q);
  const double ratio =
      std::max(a, 1e-4) / std::max(b, 1e-4);
  EXPECT_LT(std::max(ratio, 1.0 / ratio), 1.5);
  std::remove(path.c_str());
}

TEST(PersistenceTest, RoundTripEveryReducerKind) {
  for (ReducerKind kind :
       {ReducerKind::kGmm, ReducerKind::kEquiDepth, ReducerKind::kSpline,
        ReducerKind::kUmm}) {
    ArEstimatorOptions opts = FastIam();
    opts.reducer_kind = kind;
    opts.epochs = 2;
    ArDensityEstimator est(Twi(), opts);
    est.Train();
    const std::string path =
        (std::filesystem::temp_directory_path() / "iam_model_kind.bin")
            .string();
    ASSERT_TRUE(est.Save(path).ok());
    auto loaded = ArDensityEstimator::Load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    // Reducer geometry must survive: identical bucket count and assignment.
    EXPECT_EQ((*loaded)->ReducedDomainSize(0), est.ReducedDomainSize(0));
    for (double x : {30.0, 40.0, 48.0}) {
      EXPECT_EQ((*loaded)->reducer(0)->Assign(x), est.reducer(0)->Assign(x));
    }
    std::remove(path.c_str());
  }
}

TEST(PersistenceTest, SchemaSurvivesRoundTrip) {
  ArEstimatorOptions opts = FastIam();
  opts.epochs = 1;
  ArDensityEstimator iam(Wisdm(), opts);
  iam.Train();
  const std::string path =
      (std::filesystem::temp_directory_path() / "iam_model_schema.bin")
          .string();
  ASSERT_TRUE(iam.Save(path).ok());
  auto loaded = ArDensityEstimator::Load(path);
  ASSERT_TRUE(loaded.ok());
  const data::Table schema = (*loaded)->SchemaTable();
  ASSERT_EQ(schema.num_columns(), 5);
  EXPECT_EQ(schema.column(0).name, "subject_id");
  EXPECT_EQ(schema.column(0).type, data::ColumnType::kCategorical);
  EXPECT_EQ(schema.column(2).name, "x");
  EXPECT_EQ(schema.column(2).type, data::ColumnType::kContinuous);
  // The schema is enough to parse predicates against the loaded model.
  auto q = query::ParsePredicates(schema, "subject_id = 0 AND x <= 1.5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const double est = (*loaded)->Estimate(*q);
  EXPECT_GE(est, 0.0);
  EXPECT_LE(est, 1.0);
  std::remove(path.c_str());
}

TEST(PersistenceTest, LoadRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "iam_model_bad.bin").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a model";
  }
  const auto loaded = ArDensityEstimator::Load(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(PersistenceTest, LoadRejectsTruncated) {
  ArEstimatorOptions opts = FastIam();
  opts.epochs = 1;
  ArDensityEstimator iam(Twi(), opts);
  iam.Train();
  const std::string path =
      (std::filesystem::temp_directory_path() / "iam_model_trunc.bin")
          .string();
  ASSERT_TRUE(iam.Save(path).ok());
  // Truncate to half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  const auto loaded = ArDensityEstimator::Load(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(IamModelTest, NamesFollowPresets) {
  ArDensityEstimator iam(Twi(), FastIam());
  ArDensityEstimator nc(Twi(), FastNeurocard());
  EXPECT_EQ(iam.name(), "iam");
  EXPECT_EQ(nc.name(), "neurocard");
}

// The biased (vanilla) sampler must still run and produce probabilities, and
// on a range that clips components asymmetrically it should deviate from the
// exhaustive enumeration more than the unbiased sampler does.
TEST(IamModelTest, BiasedSamplerAblation) {
  ArEstimatorOptions unbiased_opts = FastIam();
  unbiased_opts.progressive_samples = 2048;
  unbiased_opts.exact_range_mass = true;
  ArEstimatorOptions biased_opts = unbiased_opts;
  biased_opts.biased_sampling = true;

  ArDensityEstimator unbiased(Twi(), unbiased_opts);
  unbiased.Train();
  ArDensityEstimator biased(Twi(), biased_opts);
  biased.Train();

  query::Query q{{{.column = 0, .lo = 30.0, .hi = 38.0},
                  {.column = 1, .lo = -100.0, .hi = -70.0}}};
  const double truth = query::TrueSelectivity(Twi(), q);
  const double floor = 1.0 / Twi().num_rows();
  const double u = query::QError(truth, unbiased.Estimate(q), Twi().num_rows());
  const double b = query::QError(truth, biased.Estimate(q), Twi().num_rows());
  EXPECT_GE(unbiased.Estimate(q), 0.0);
  EXPECT_LE(biased.Estimate(q), 1.0);
  // Not a strict inequality theorem per query, but the unbiased sampler
  // should not be dramatically worse than the biased one.
  EXPECT_LT(u, std::max(4.0, 3.0 * b)) << "unbiased " << u << " biased " << b
                                       << " floor " << floor;
}

TEST(IamModelTest, PointPredicateOnCategoricalColumn) {
  ArDensityEstimator iam(Wisdm(), FastIam());
  iam.Train();
  query::Query q{{{.column = 0, .lo = 0.0, .hi = 0.0}}};
  const double truth = query::TrueSelectivity(Wisdm(), q);
  const double est = iam.Estimate(q);
  // Tiny test model (2x48 hidden, 6 epochs) — just require the right order
  // of magnitude; the accuracy benches exercise the full configuration.
  EXPECT_LT(query::QError(truth, est, Wisdm().num_rows()), 10.0);
}

// The progressive sampler's inner draw. The -1 flag and the clamp-to-last-
// positive behavior are load-bearing: both call sites kill a sample row on
// -1, and an out-of-range return would index past the conditional's domain.
TEST(SamplingUtilsTest, SampleInRangeFlagsZeroMassRange) {
  using sampling::RangeSum;
  using sampling::SampleInRange;

  const float zeros[5] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  EXPECT_EQ(RangeSum(zeros, 0, 4), 0.0);
  // All-zero range: flagged, for any u, even with a (stale) positive sum.
  EXPECT_EQ(SampleInRange(zeros, 0, 4, 0.0, 0.5), -1);
  EXPECT_EQ(SampleInRange(zeros, 0, 4, 1.0, 0.0), -1);
  EXPECT_EQ(SampleInRange(zeros, 1, 3, 0.0, 0.999), -1);

  // Negative or zero sum is flagged before any scan.
  const float some[3] = {0.5f, 0.25f, 0.25f};
  EXPECT_EQ(SampleInRange(some, 0, 2, -1.0, 0.5), -1);
  EXPECT_EQ(SampleInRange(some, 0, 2, 0.0, 0.5), -1);
}

TEST(SamplingUtilsTest, SampleInRangeSkipsZeroEntriesAndClamps) {
  using sampling::RangeSum;
  using sampling::SampleInRange;

  // Zero entries are never returned, whatever u targets.
  const float gaps[6] = {0.0f, 0.3f, 0.0f, 0.0f, 0.7f, 0.0f};
  const double sum = RangeSum(gaps, 0, 5);
  EXPECT_DOUBLE_EQ(sum, 0.3f + static_cast<double>(0.7f));
  for (double u : {0.0, 0.1, 0.29, 0.31, 0.6, 0.999}) {
    const int j = SampleInRange(gaps, 0, 5, sum, u);
    EXPECT_TRUE(j == 1 || j == 4) << "u=" << u << " returned " << j;
  }
  // u below the first positive mass picks it; u past it picks the second.
  EXPECT_EQ(SampleInRange(gaps, 0, 5, sum, 0.0), 1);
  EXPECT_EQ(SampleInRange(gaps, 0, 5, sum, 0.999), 4);

  // Rounding overshoot: a sum slightly above the true mass makes the target
  // unreachable; the draw must clamp to the last positive index, not -1.
  EXPECT_EQ(SampleInRange(gaps, 0, 5, sum * 1.01, 0.9999), 4);
  // And a sub-range excluding the tail clamps within the range.
  EXPECT_EQ(SampleInRange(gaps, 0, 3, RangeSum(gaps, 0, 3) * 1.01, 0.9999),
            1);
}

}  // namespace
}  // namespace iam::core
