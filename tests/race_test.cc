// Deterministic concurrent regression test for the serving-side threading
// contract (DESIGN.md §8/§11):
//
//  - Concurrent EstimateBatch calls on ONE ArDensityEstimator are safe and
//    bit-identical to a serial call: the batch entry points serialize on the
//    estimator's batch mutex, and every query's progressive-sampling pass is
//    seeded from (options.seed ^ query index) alone, so the interleaving of
//    callers is unobservable in the results.
//
//  - A model cloned via Serialize/Deserialize may train concurrently with
//    inference on the original: weight versions are drawn from one
//    process-global atomic counter, and a reused evaluation context must miss
//    its version-keyed transposed-weight cache after every TrainStep (the
//    invalidation contract behind the per-workspace caches).
//
// Run under IAM_SANITIZE=thread, this is the machine check that the locking
// added for the static-analysis layer actually covers the shared state.
#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ar/resmade.h"
#include "core/ar_density_estimator.h"
#include "core/presets.h"
#include "data/synthetic.h"
#include "nn/adam.h"
#include "query/query.h"
#include "util/random.h"

namespace iam::core {
namespace {

ArEstimatorOptions RaceOptions() {
  ArEstimatorOptions opts = IamDefaults(8);
  opts.made.hidden_sizes = {32, 32};
  opts.epochs = 1;
  opts.batch_size = 128;
  opts.progressive_samples = 64;
  opts.gmm_samples_per_component = 1000;
  opts.large_domain_threshold = 200;
  opts.num_threads = 2;
  return opts;
}

TEST(RaceTest, ConcurrentEstimateBatchWithTrainingOnClonedModel) {
  const data::Table table = data::MakeSynWisdm(3000, 77);
  ArDensityEstimator est(table, RaceOptions());
  est.TrainEpoch();

  std::vector<query::Query> qs;
  for (int i = 0; i < 12; ++i) {
    qs.push_back(query::Query{
        {{.column = 0, .lo = 25.0 + i, .hi = 40.0 + 2.0 * i}}});
  }
  const std::vector<double> baseline = est.EstimateBatch(qs);

  // Clone the AR model the way Load() does, so the clone shares nothing with
  // the original except the process-global weight-version counter.
  std::stringstream buf;
  est.made().Serialize(buf);
  auto clone_or = ar::ResMade::Deserialize(buf);
  ASSERT_TRUE(clone_or.ok()) << clone_or.status().ToString();
  std::unique_ptr<ar::ResMade> clone = std::move(clone_or).value();

  nn::Adam adam;
  clone->RegisterParameters(adam);
  std::vector<std::vector<int>> train_batch(
      32, std::vector<int>(clone->num_columns(), 0));

  constexpr int kRounds = 4;
  std::vector<std::vector<double>> got_a(kRounds), got_b(kRounds);
  std::atomic<bool> cache_invalidated{true};
  std::atomic<bool> weights_moved{true};

  std::thread reader_a([&] {
    for (int r = 0; r < kRounds; ++r) got_a[r] = est.EstimateBatch(qs);
  });
  std::thread reader_b([&] {
    for (int r = 0; r < kRounds; ++r) got_b[r] = est.EstimateBatch(qs);
  });
  std::thread trainer([&] {
    ar::ResMade::Context ctx;  // reused across rounds: caches must invalidate
    Rng rng(123);
    const std::vector<int> tuple(clone->num_columns(), 0);
    double prev_lp = clone->LogProb(tuple, ctx);
    uint64_t prev_version = ctx.ws.wt_version;
    for (int r = 0; r < kRounds; ++r) {
      clone->TrainStep(train_batch, adam, rng);
      const double lp = clone->LogProb(tuple, ctx);
      // The TrainStep bumped the clone's weight version, so the reused
      // context must have rebuilt its transposed-weight cache...
      if (ctx.ws.wt_version == prev_version) cache_invalidated = false;
      // ...against the post-step weights (an Adam step moves every weight,
      // so a stale cache would reproduce the previous log-prob exactly).
      if (lp == prev_lp) weights_moved = false;
      prev_version = ctx.ws.wt_version;
      prev_lp = lp;
    }
  });
  reader_a.join();
  reader_b.join();
  trainer.join();

  EXPECT_TRUE(cache_invalidated.load())
      << "reused eval context kept a stale transposed-weight cache";
  EXPECT_TRUE(weights_moved.load())
      << "LogProb unchanged after TrainStep: stale weights served";
  for (int r = 0; r < kRounds; ++r) {
    // Bitwise equality: concurrent batches must be indistinguishable from
    // the serial baseline, not merely close.
    EXPECT_EQ(got_a[r], baseline) << "reader A, round " << r;
    EXPECT_EQ(got_b[r], baseline) << "reader B, round " << r;
  }
}

// The same serialization guarantee at the base-class level: concurrent
// set_num_threads + EstimateBatch must not race on the lazily built pool.
TEST(RaceTest, PoolRebuildDoesNotRaceWithBatches) {
  const data::Table table = data::MakeSynWisdm(2000, 78);
  ArEstimatorOptions opts = RaceOptions();
  opts.progressive_samples = 32;
  ArDensityEstimator est(table, opts);
  est.TrainEpoch();

  std::vector<query::Query> qs;
  for (int i = 0; i < 6; ++i) {
    qs.push_back(query::Query{{{.column = 0, .lo = 30.0, .hi = 40.0 + i}}});
  }
  const std::vector<double> baseline = est.EstimateBatch(qs);

  std::thread resizer([&] {
    for (int r = 0; r < 6; ++r) est.set_num_threads(1 + r % 3);
  });
  std::vector<std::vector<double>> got(6);
  std::thread reader([&] {
    for (int r = 0; r < 6; ++r) got[r] = est.EstimateBatch(qs);
  });
  resizer.join();
  reader.join();

  // Thread-count independence: whatever pool size each batch saw, the
  // estimates are bit-identical.
  for (int r = 0; r < 6; ++r) EXPECT_EQ(got[r], baseline) << "round " << r;
}

}  // namespace
}  // namespace iam::core
