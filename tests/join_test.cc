#include <cmath>

#include <gtest/gtest.h>

#include "join/star_schema.h"
#include "query/query.h"
#include "util/random.h"

namespace iam::join {
namespace {

// title(id, kind) with movie_info(title_id, score): a 3-title schema with
// fanouts 2, 1, 0 — covers matching, single and dangling keys.
StarSchema TinySchema() {
  StarSchema schema;
  schema.dim = data::Table("title");
  schema.dim.AddColumn({"id", data::ColumnType::kCategorical, {0, 1, 2}});
  schema.dim.AddColumn({"kind", data::ColumnType::kCategorical, {5, 6, 7}});
  schema.dim_key_col = 0;

  data::Table mi("movie_info");
  mi.AddColumn({"title_id", data::ColumnType::kCategorical, {0, 0, 1, 9}});
  mi.AddColumn({"score", data::ColumnType::kContinuous,
                {1.0, 2.0, 3.0, 4.0}});
  schema.facts.push_back(std::move(mi));
  schema.fact_key_cols.push_back(0);
  return schema;
}

TEST(MaterializeJoinTest, InnerJoinSemantics) {
  const StarSchema schema = TinySchema();
  const data::Table joined = MaterializeJoin(schema);
  // title 0 matches 2 rows, title 1 matches 1 row, title 2 none; the fact
  // row with dangling FK 9 drops.
  EXPECT_EQ(joined.num_rows(), 3u);
  EXPECT_EQ(joined.num_columns(), 2);  // kind, score (keys dropped)
  EXPECT_EQ(joined.column(0).name, "title.kind");
  EXPECT_EQ(joined.column(1).name, "movie_info.score");

  // kind=5 appears with scores {1, 2}; kind=6 with {3}.
  int kind5 = 0, kind6 = 0;
  for (size_t r = 0; r < joined.num_rows(); ++r) {
    if (joined.value(r, 0) == 5.0) ++kind5;
    if (joined.value(r, 0) == 6.0) ++kind6;
  }
  EXPECT_EQ(kind5, 2);
  EXPECT_EQ(kind6, 1);
}

TEST(JoinCardinalityTest, MatchesMaterialization) {
  const StarSchema schema = TinySchema();
  EXPECT_DOUBLE_EQ(JoinCardinality(schema),
                   static_cast<double>(MaterializeJoin(schema).num_rows()));
}

TEST(JoinCardinalityTest, SynImdbConsistent) {
  const StarSchema schema = MakeSynImdb(300, 1);
  const data::Table joined = MaterializeJoin(schema);
  EXPECT_DOUBLE_EQ(JoinCardinality(schema),
                   static_cast<double>(joined.num_rows()));
  EXPECT_GT(joined.num_rows(), 300u);
}

TEST(JoinColumnsTest, LayoutMatchesMaterializedTable) {
  const StarSchema schema = MakeSynImdb(100, 2);
  const data::Table joined = MaterializeJoin(schema);
  const auto sources = JoinColumns(schema);
  ASSERT_EQ(static_cast<int>(sources.size()), joined.num_columns());
  for (size_t j = 0; j < sources.size(); ++j) {
    const data::Table& src =
        sources[j].table < 0 ? schema.dim : schema.facts[sources[j].table];
    EXPECT_EQ(joined.column(static_cast<int>(j)).type,
              src.column(sources[j].column).type);
    EXPECT_NE(joined.column(static_cast<int>(j))
                  .name.find(src.column(sources[j].column).name),
              std::string::npos);
  }
}

TEST(ExactWeightSamplerTest, TotalWeightIsJoinSize) {
  const StarSchema schema = MakeSynImdb(200, 3);
  const ExactWeightSampler sampler(schema);
  EXPECT_DOUBLE_EQ(sampler.total_weight(), JoinCardinality(schema));
}

TEST(ExactWeightSamplerTest, SampleSchemaMatchesJoin) {
  const StarSchema schema = MakeSynImdb(150, 4);
  const ExactWeightSampler sampler(schema);
  Rng rng(5);
  const data::Table sample = sampler.Sample(500, rng);
  const data::Table joined = MaterializeJoin(schema);
  ASSERT_EQ(sample.num_columns(), joined.num_columns());
  EXPECT_EQ(sample.num_rows(), 500u);
  for (int c = 0; c < sample.num_columns(); ++c) {
    EXPECT_EQ(sample.column(c).name, joined.column(c).name);
    EXPECT_EQ(sample.column(c).type, joined.column(c).type);
  }
}

TEST(ExactWeightSamplerTest, UnbiasedOverJoinDistribution) {
  // The fraction of sampled tuples satisfying a predicate must match the
  // fraction in the materialized join (binomial tolerance).
  const StarSchema schema = MakeSynImdb(250, 6);
  const data::Table joined = MaterializeJoin(schema);
  const ExactWeightSampler sampler(schema);
  Rng rng(7);
  const data::Table sample = sampler.Sample(20000, rng);

  // Predicate: kind <= 2 (dimension attribute; its join frequency is fanout
  // weighted, so a uniform-over-titles sampler would get this wrong).
  const int kind_col = joined.ColumnIndex("title.kind");
  ASSERT_GE(kind_col, 0);
  query::Query q{{{.column = kind_col, .lo = 0.0, .hi = 2.0}}};
  const double truth = query::TrueSelectivity(joined, q);
  const double sampled = query::TrueSelectivity(sample, q);
  EXPECT_NEAR(sampled, truth, 4.0 * std::sqrt(truth * (1 - truth) / 20000) +
                                  0.005);

  // And a fact-side continuous predicate.
  const int x_col = joined.ColumnIndex("movie_info.x");
  ASSERT_GE(x_col, 0);
  query::Query q2{{{.column = x_col, .lo = -1e18, .hi = 0.0}}};
  const double truth2 = query::TrueSelectivity(joined, q2);
  const double sampled2 = query::TrueSelectivity(sample, q2);
  EXPECT_NEAR(sampled2, truth2, 0.02);
}

TEST(SynImdbTest, SchemaShape) {
  const StarSchema schema = MakeSynImdb(500, 8);
  EXPECT_EQ(schema.num_fact_tables(), 2);
  EXPECT_EQ(schema.dim.num_rows(), 500u);
  EXPECT_EQ(schema.dim.num_columns(), 5);
  // Fanout-driven fact sizes exceed the title count.
  EXPECT_GT(schema.facts[0].num_rows(), 500u);
  EXPECT_GT(schema.facts[1].num_rows(), 500u);
}

TEST(SynImdbTest, FanoutCorrelatesWithKind) {
  const StarSchema schema = MakeSynImdb(800, 9);
  // Average movie_info fanout should grow with kind (the generator biases
  // fanout by kind).
  std::vector<double> count_by_kind(6, 0.0), titles_by_kind(6, 0.0);
  std::vector<int> title_kind(schema.dim.num_rows());
  for (size_t r = 0; r < schema.dim.num_rows(); ++r) {
    title_kind[static_cast<size_t>(schema.dim.value(r, 0))] =
        static_cast<int>(schema.dim.value(r, 1));
    titles_by_kind[static_cast<size_t>(schema.dim.value(r, 1))] += 1.0;
  }
  for (size_t r = 0; r < schema.facts[0].num_rows(); ++r) {
    const auto title = static_cast<size_t>(schema.facts[0].value(r, 0));
    count_by_kind[title_kind[title]] += 1.0;
  }
  const double low = count_by_kind[0] / std::max(1.0, titles_by_kind[0]);
  const double high = count_by_kind[5] / std::max(1.0, titles_by_kind[5]);
  EXPECT_GT(high, low * 1.5);
}

}  // namespace
}  // namespace iam::join
