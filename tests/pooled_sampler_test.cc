// Tests for the pooled cross-query progressive sampler (DESIGN.md §14):
// bit-exactness against the legacy per-query oracle at a fixed budget (with
// and without prefix sharing, on both the IAM bias-corrected path and the
// NeuroCard factorized path), zero-mass fallback isolation inside a
// megabatch, adaptive early-stop determinism across thread counts, and
// serialization of concurrent pooled callers.

#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/ar_density_estimator.h"
#include "core/presets.h"
#include "data/synthetic.h"
#include "obs/metrics.h"
#include "query/query.h"

namespace iam::core {
namespace {

// Small-but-real model: same shape the obs determinism suite uses, fast to
// train, with reduced (x/y/z) and raw (subject/activity) columns.
ArEstimatorOptions FastIamOptions() {
  ArEstimatorOptions opts = IamDefaults(8);
  opts.made.hidden_sizes = {32, 32};
  opts.epochs = 1;
  opts.batch_size = 128;
  opts.progressive_samples = 64;
  opts.gmm_samples_per_component = 1000;
  opts.large_domain_threshold = 200;
  opts.num_threads = 1;
  return opts;
}

// Factorized baseline: small factor base so the low sub-column's
// high-dependent code bounds (the trickiest draw path) get real coverage.
ArEstimatorOptions FastNeurocardOptions() {
  ArEstimatorOptions opts = NeurocardDefaults();
  opts.made.hidden_sizes = {32, 32};
  opts.epochs = 1;
  opts.batch_size = 128;
  opts.progressive_samples = 64;
  opts.large_domain_threshold = 200;
  opts.factor_bits = 6;
  opts.num_threads = 1;
  return opts;
}

std::vector<query::Query> MixedWorkload() {
  std::vector<query::Query> qs;
  // Range queries over the continuous columns (reduced under IAM,
  // factorized under the baseline).
  for (int i = 0; i < 6; ++i) {
    qs.push_back(query::Query{
        {{.column = 2, .lo = -2.0 - i, .hi = 3.0 + 2.0 * i}}});
  }
  // Multi-predicate queries: categorical range and a continuous range.
  for (int i = 0; i < 4; ++i) {
    qs.push_back(query::Query{{{.column = 0, .lo = 10.0, .hi = 30.0 + i},
                               {.column = 3, .lo = -1.0, .hi = 4.0 + i}}});
  }
  // An unsatisfiable predicate exercises the dead-query path.
  qs.push_back(query::Query{{{.column = 1, .lo = 9.0, .hi = 3.0}}});
  return qs;
}

uint64_t CounterTotal(const std::string& prefix) {
  uint64_t total = 0;
  const obs::MetricsSnapshot snap = obs::MetricRegistry::Global().Snapshot();
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind(prefix, 0) == 0) total += value;
  }
  return total;
}

TEST(PooledSamplerTest, PooledMatchesLegacyBitExactOnIam) {
  const data::Table table = data::MakeSynWisdm(3000, 77);
  ArDensityEstimator est(table, FastIamOptions());
  est.TrainEpoch();
  const std::vector<query::Query> qs = MixedWorkload();

  est.set_sampler_mode(/*pooled=*/false, /*prefix_sharing=*/false,
                       /*adaptive_min_samples=*/0);
  const std::vector<double> legacy = est.EstimateBatch(qs);

  est.set_sampler_mode(true, /*prefix_sharing=*/false, 0);
  const std::vector<double> pooled = est.EstimateBatch(qs);

  obs::MetricRegistry::Global().ResetAll();
  est.set_sampler_mode(true, /*prefix_sharing=*/true, 0);
  const std::vector<double> shared = est.EstimateBatch(qs);

  // At a fixed budget the pooled sampler reproduces the per-query oracle
  // bitwise, prefix sharing included (equal prefixes share one bitwise-equal
  // conditional).
  EXPECT_EQ(legacy, pooled);
  EXPECT_EQ(legacy, shared);
  // The dead query really died, live queries produced probabilities.
  EXPECT_EQ(legacy.back(), 0.0);
  EXPECT_GT(legacy.front(), 0.0);
  // Prefix sharing actually deduplicated (column 0 alone collapses every
  // live row to one evaluation), so the pooled GEMMs saw fewer rows than
  // the sampler drew.
  EXPECT_GT(CounterTotal("iam_sampler_prefix_hits_total"), 0u);
  EXPECT_LT(CounterTotal("iam_sampler_gemm_rows_total"),
            CounterTotal("iam_sampler_samples_total"));
}

TEST(PooledSamplerTest, PooledMatchesLegacyBitExactOnNeurocard) {
  const data::Table table = data::MakeSynWisdm(3000, 78);
  ArDensityEstimator est(table, FastNeurocardOptions());
  est.TrainEpoch();
  const std::vector<query::Query> qs = MixedWorkload();

  est.set_sampler_mode(false, false, 0);
  const std::vector<double> legacy = est.EstimateBatch(qs);
  est.set_sampler_mode(true, true, 0);
  const std::vector<double> pooled = est.EstimateBatch(qs);

  EXPECT_EQ(legacy, pooled);
  EXPECT_GT(legacy.front(), 0.0);
}

TEST(PooledSamplerTest, SoloEstimateMatchesBatchOfOne) {
  const data::Table table = data::MakeSynWisdm(2000, 79);
  ArDensityEstimator est(table, FastIamOptions());
  est.TrainEpoch();
  const query::Query q{{{.column = 2, .lo = -1.0, .hi = 5.0}}};

  const double solo = est.Estimate(q);
  const std::vector<double> batch = est.EstimateBatch({&q, 1});
  // Solo estimates ride the pooled path's cached scratch; repeated calls
  // must not drift as buffers are reused.
  EXPECT_DOUBLE_EQ(solo, batch[0]);
  EXPECT_DOUBLE_EQ(solo, est.Estimate(q));
  est.set_sampler_mode(false, false, 0);
  EXPECT_DOUBLE_EQ(solo, est.Estimate(q));
}

TEST(PooledSamplerTest, ZeroMassFallbackDoesNotPerturbSiblings) {
  ArEstimatorOptions opts = FastIamOptions();
  // Probability floor: any coordinate whose admissible conditionals all sit
  // at or below 0.1 hits the zero-mass wildcard fallback deterministically.
  opts.min_conditional_prob = 0.1;
  const data::Table table = data::MakeSynWisdm(3000, 80);
  ArDensityEstimator est(table, opts);
  est.TrainEpoch();

  // Two guaranteed-alive siblings first: x is reduced to 8 buckets, so some
  // bucket always carries conditional probability >= 1/8 > 0.1, and a wide
  // range keeps every bucket's range mass positive.
  std::vector<query::Query> qs;
  qs.push_back(query::Query{{{.column = 2, .lo = -1e6, .hi = 1e6}}});
  qs.push_back(query::Query{{{.column = 3, .lo = -1e6, .hi = 1e6}}});
  // Eleven single-subject equality queries: 51 subjects share probability
  // mass 1, so at most ten can exceed the 0.1 floor — at least one of these
  // must die through the fallback, poisoning the megabatch.
  for (int v = 0; v < 11; ++v) {
    qs.push_back(query::Query{
        {{.column = 0, .lo = static_cast<double>(v),
          .hi = static_cast<double>(v)}}});
  }

  obs::MetricRegistry::Global().ResetAll();
  const std::vector<double> pooled = est.EstimateBatch(qs);
  EXPECT_GT(CounterTotal("iam_sampler_zero_mass_fallbacks_total"), 0u);
  EXPECT_GT(pooled[0], 0.0);
  EXPECT_GT(pooled[1], 0.0);

  // Sibling isolation: the siblings keep bit-identical estimates whether or
  // not the fallback-poisoned queries ride in the same megabatch...
  const std::vector<double> siblings_only =
      est.EstimateBatch(std::span<const query::Query>(qs.data(), 2));
  EXPECT_DOUBLE_EQ(pooled[0], siblings_only[0]);
  EXPECT_DOUBLE_EQ(pooled[1], siblings_only[1]);

  // ...and the whole megabatch, fallbacks included, matches the legacy
  // per-query path bitwise.
  est.set_sampler_mode(false, false, 0);
  const std::vector<double> legacy = est.EstimateBatch(qs);
  EXPECT_EQ(legacy, pooled);
}

TEST(PooledSamplerTest, AdaptiveEarlyStopDeterministicAcrossThreads) {
  ArEstimatorOptions opts = FastIamOptions();
  const data::Table table = data::MakeSynWisdm(3000, 81);
  ArDensityEstimator est(table, opts);
  est.TrainEpoch();

  std::vector<query::Query> qs = MixedWorkload();
  qs.push_back(query::Query{{{.column = 2, .lo = -1e6, .hi = 1e6}}});

  // Fixed-budget reference for the sampling volume.
  obs::MetricRegistry::Global().ResetAll();
  est.EstimateBatch(qs);
  const uint64_t fixed_samples = CounterTotal("iam_sampler_samples_total");

  // Adaptive budgets: start at 8 rows, double per wave, stop on CI
  // convergence. The wide full-range query converges immediately (its
  // weights are nearly constant), so early stops must fire.
  est.set_sampler_mode(true, true, /*adaptive_min_samples=*/8);

  std::vector<double> baseline_estimates;
  uint64_t baseline_samples = 0;
  for (const int threads : {1, 2, 8}) {
    est.set_num_threads(threads);
    obs::MetricRegistry::Global().ResetAll();
    const std::vector<double> estimates = est.EstimateBatch(qs);
    const uint64_t samples = CounterTotal("iam_sampler_samples_total");
    if (threads == 1) {
      baseline_estimates = estimates;
      baseline_samples = samples;
      EXPECT_GT(CounterTotal("iam_sampler_early_stops_total"), 0u);
      // Early stopping actually trimmed the sampling volume.
      EXPECT_LT(samples, fixed_samples);
    } else {
      EXPECT_EQ(estimates, baseline_estimates) << "threads " << threads;
      EXPECT_EQ(samples, baseline_samples) << "threads " << threads;
    }
  }
}

TEST(PooledSamplerTest, ConcurrentPooledCallersSerializeCleanly) {
  const data::Table table = data::MakeSynWisdm(2000, 82);
  ArEstimatorOptions opts = FastIamOptions();
  opts.num_threads = 2;
  ArDensityEstimator est(table, opts);
  est.TrainEpoch();
  const std::vector<query::Query> qs = MixedWorkload();

  std::vector<double> r1, r2;
  std::thread other([&] { r2 = est.EstimateBatch(qs); });
  r1 = est.EstimateBatch(qs);
  other.join();
  // The batch mutex serializes the two pooled megabatches over the shared
  // scratch; determinism makes the interleaving unobservable.
  EXPECT_EQ(r1, r2);
}

}  // namespace
}  // namespace iam::core
