// Tests for the debug lock-ordering checker (src/util/lock_rank.h,
// DESIGN.md §16). The inversion cases are death tests: the checker's entire
// contract is "abort at the inversion, before the deadlock", so the test
// provokes a deliberately inverted acquisition and asserts the process dies
// with the rank-inversion report. When the checker is compiled out (default
// build — it arms under IAM_LOCK_RANK=1 / the TSan CI lane), the death
// cases skip and only the pass-through behaviour is checked.

#include <gtest/gtest.h>

#include "util/lock_rank.h"
#include "util/mutex.h"

namespace iam::util {
namespace {

TEST(LockRankTest, DescendingAcquisitionIsClean) {
  Mutex outer(LockRank::kBatcherQueue);
  Mutex inner(LockRank::kRegistry);
  MutexLock outer_lock(outer);
  MutexLock inner_lock(inner);  // 500 under 700: strictly descending, legal
  SUCCEED();
}

TEST(LockRankTest, FullChainDescends) {
  // The longest real chain in the repo: Shutdown joins the whole stack.
  Mutex shutdown(LockRank::kShutdown);
  Mutex swap(LockRank::kSwap);
  Mutex queue(LockRank::kBatcherQueue);
  Mutex registry(LockRank::kRegistry);
  Mutex batch(LockRank::kEstimatorBatch);
  Mutex pool(LockRank::kThreadPool);
  Mutex metrics(LockRank::kMetricsRegistry);
  MutexLock l1(shutdown);
  MutexLock l2(swap);
  MutexLock l3(queue);
  MutexLock l4(registry);
  MutexLock l5(batch);
  MutexLock l6(pool);
  MutexLock l7(metrics);
  SUCCEED();
}

TEST(LockRankTest, SequentialReacquisitionIsClean) {
  // Releasing must pop the per-thread stack: lock low, release, lock high.
  Mutex low(LockRank::kMetricsRegistry);
  Mutex high(LockRank::kShutdown);
  { MutexLock lock(low); }
  MutexLock lock(high);  // legal: nothing is held any more
  SUCCEED();
}

TEST(LockRankTest, UnrankedLocksAreExempt) {
  Mutex unranked;  // default-constructed: kUnranked, not tracked
  Mutex ranked(LockRank::kLeaf);
  MutexLock inner(ranked);
  MutexLock outer(unranked);  // would invert if unranked participated
  SUCCEED();
}

TEST(LockRankTest, RawLockUnlockTracksLikeMutexLock) {
  Mutex outer(LockRank::kBatcherQueue);
  Mutex inner(LockRank::kRegistry);
  outer.Lock();
  inner.Lock();
  inner.Unlock();
  outer.Unlock();
  SUCCEED();
}

TEST(LockRankDeathTest, InversionAborts) {
  if (!lock_rank::Enabled()) {
    GTEST_SKIP() << "lock-rank checker compiled out (IAM_LOCK_RANK=0)";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The canonical deadlock shape: this thread takes registry -> batcher
  // queue while the serving path takes batcher queue -> registry.
  EXPECT_DEATH(
      {
        Mutex registry(LockRank::kRegistry);
        Mutex queue(LockRank::kBatcherQueue);
        MutexLock registry_lock(registry);
        MutexLock queue_lock(queue);  // rank 700 under rank 500: inversion
      },
      "lock rank inversion");
}

TEST(LockRankDeathTest, EqualRankNestingAborts) {
  if (!lock_rank::Enabled()) {
    GTEST_SKIP() << "lock-rank checker compiled out (IAM_LOCK_RANK=0)";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex a(LockRank::kLeaf);
        Mutex b(LockRank::kLeaf);
        MutexLock a_lock(a);
        MutexLock b_lock(b);  // two leaves have no mutual order
      },
      "lock rank inversion");
}

TEST(LockRankDeathTest, ReportNamesBothRanks) {
  if (!lock_rank::Enabled()) {
    GTEST_SKIP() << "lock-rank checker compiled out (IAM_LOCK_RANK=0)";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex held(LockRank::kEstimatorBatch);
        Mutex incoming(LockRank::kShutdown);
        MutexLock held_lock(held);
        MutexLock incoming_lock(incoming);
      },
      "acquiring a rank-900 lock while holding a rank-400 lock");
}

}  // namespace
}  // namespace iam::util
