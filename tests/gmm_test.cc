#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "gmm/gmm1d.h"
#include "gmm/vbgm.h"
#include "util/math_util.h"
#include "util/random.h"

namespace iam::gmm {
namespace {

// Two well separated modes.
std::vector<double> TwoModeData(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) {
    x = rng.Uniform() < 0.3 ? rng.Gaussian(-5.0, 0.5) : rng.Gaussian(4.0, 1.0);
  }
  return xs;
}

TEST(Gmm1DTest, EmRecoversTwoModes) {
  const auto data = TwoModeData(20000, 1);
  Rng rng(2);
  Gmm1D gmm(2);
  gmm.InitFromData(data, rng);
  for (int it = 0; it < 50; ++it) gmm.EmStep(data);

  std::vector<std::pair<double, double>> comps;  // (mean, weight)
  for (int k = 0; k < 2; ++k) comps.emplace_back(gmm.mean(k), gmm.weight(k));
  std::sort(comps.begin(), comps.end());
  EXPECT_NEAR(comps[0].first, -5.0, 0.2);
  EXPECT_NEAR(comps[1].first, 4.0, 0.2);
  EXPECT_NEAR(comps[0].second, 0.3, 0.05);
  EXPECT_NEAR(comps[1].second, 0.7, 0.05);
}

TEST(Gmm1DTest, SgdReducesNll) {
  const auto data = TwoModeData(8000, 3);
  Rng rng(4);
  Gmm1D gmm(2);
  gmm.InitFromData(data, rng);
  const double before = gmm.MeanNegLogLikelihood(data);
  for (int epoch = 0; epoch < 8; ++epoch) {
    for (size_t begin = 0; begin < data.size(); begin += 256) {
      const size_t end = std::min(data.size(), begin + 256);
      gmm.SgdStep({data.data() + begin, end - begin});
    }
  }
  const double after = gmm.MeanNegLogLikelihood(data);
  EXPECT_LT(after, before);
}

TEST(Gmm1DTest, SgdApproachesEmQuality) {
  const auto data = TwoModeData(20000, 5);
  Rng rng(6);
  Gmm1D em_gmm(2);
  em_gmm.InitFromData(data, rng);
  for (int it = 0; it < 60; ++it) em_gmm.EmStep(data);
  const double em_nll = em_gmm.MeanNegLogLikelihood(data);

  Rng rng2(6);
  Gmm1D sgd_gmm(2);
  sgd_gmm.InitFromData(data, rng2);
  for (int epoch = 0; epoch < 40; ++epoch) {
    for (size_t begin = 0; begin < data.size(); begin += 256) {
      const size_t end = std::min(data.size(), begin + 256);
      sgd_gmm.SgdStep({data.data() + begin, end - begin});
    }
  }
  EXPECT_NEAR(sgd_gmm.MeanNegLogLikelihood(data), em_nll, 0.15);
}

TEST(Gmm1DTest, AssignPicksNearestMode) {
  Gmm1D gmm(2);
  gmm.SetComponent(0, std::log(0.5), -5.0, 1.0);
  gmm.SetComponent(1, std::log(0.5), 5.0, 1.0);
  EXPECT_EQ(gmm.Assign(-4.0), 0);
  EXPECT_EQ(gmm.Assign(6.0), 1);
}

TEST(Gmm1DTest, AssignRespectsWeights) {
  // At the midpoint, the heavier component wins.
  Gmm1D gmm(2);
  gmm.SetComponent(0, std::log(0.99), -1.0, 1.0);
  gmm.SetComponent(1, std::log(0.01), 1.0, 1.0);
  EXPECT_EQ(gmm.Assign(0.0), 0);
}

TEST(Gmm1DTest, ResponsibilitiesSumToOne) {
  Gmm1D gmm(3);
  gmm.SetComponent(0, 0.0, -1.0, 0.5);
  gmm.SetComponent(1, 0.3, 0.0, 1.0);
  gmm.SetComponent(2, -0.2, 2.0, 2.0);
  const auto r = gmm.Responsibilities(0.7);
  EXPECT_NEAR(r[0] + r[1] + r[2], 1.0, 1e-12);
  for (double v : r) EXPECT_GE(v, 0.0);
}

TEST(Gmm1DTest, ComponentIntervalMassMatchesCdf) {
  Gmm1D gmm(1);
  gmm.SetComponent(0, 0.0, 2.0, 3.0);
  EXPECT_NEAR(gmm.ComponentIntervalMass(0, -1.0, 5.0),
              NormalCdf(5.0, 2.0, 3.0) - NormalCdf(-1.0, 2.0, 3.0), 1e-12);
  EXPECT_EQ(gmm.ComponentIntervalMass(0, 3.0, 1.0), 0.0);
}

TEST(ComponentSampleIndexTest, MonteCarloMatchesExact) {
  Gmm1D gmm(3);
  gmm.SetComponent(0, 0.0, -3.0, 1.0);
  gmm.SetComponent(1, 0.0, 0.0, 0.5);
  gmm.SetComponent(2, 0.0, 4.0, 2.0);
  Rng rng(7);
  ComponentSampleIndex index(gmm, 20000, rng);
  const auto mc = index.RangeMass(-1.0, 2.0);
  const auto exact = ExactRangeMass(gmm, -1.0, 2.0);
  ASSERT_EQ(mc.size(), exact.size());
  for (size_t k = 0; k < mc.size(); ++k) {
    EXPECT_NEAR(mc[k], exact[k], 0.02) << "component " << k;
  }
}

TEST(ComponentSampleIndexTest, InfiniteBoundsCoverEverything) {
  Gmm1D gmm(2);
  gmm.SetComponent(0, 0.0, 0.0, 1.0);
  gmm.SetComponent(1, 0.0, 10.0, 1.0);
  Rng rng(8);
  ComponentSampleIndex index(gmm, 1000, rng);
  const double inf = std::numeric_limits<double>::infinity();
  const auto mass = index.RangeMass(-inf, inf);
  EXPECT_DOUBLE_EQ(mass[0], 1.0);
  EXPECT_DOUBLE_EQ(mass[1], 1.0);
  const auto none = index.RangeMass(100.0, 200.0);
  EXPECT_DOUBLE_EQ(none[0], 0.0);
}

TEST(ComponentSampleIndexTest, EmptyRangeWhenBoundsInverted) {
  Gmm1D gmm(1);
  gmm.SetComponent(0, 0.0, 0.0, 1.0);
  Rng rng(9);
  ComponentSampleIndex index(gmm, 100, rng);
  EXPECT_DOUBLE_EQ(index.Mass(0, 1.0, -1.0), 0.0);
}

TEST(VbgmTest, SelectsApproximatelyTwoComponents) {
  const auto data = TwoModeData(10000, 10);
  VbgmOptions options;
  options.max_components = 20;
  Rng rng(11);
  const VbgmResult result = FitVbgm(data, options, rng);
  EXPECT_GE(result.selected_k, 2);
  EXPECT_LE(result.selected_k, 6);

  // Both modes should be represented among the surviving means.
  bool has_low = false, has_high = false;
  for (int k = 0; k < result.gmm.num_components(); ++k) {
    if (std::abs(result.gmm.mean(k) + 5.0) < 1.0) has_low = true;
    if (std::abs(result.gmm.mean(k) - 4.0) < 1.5) has_high = true;
  }
  EXPECT_TRUE(has_low);
  EXPECT_TRUE(has_high);
}

TEST(VbgmTest, SingleModeCollapsesToFewComponents) {
  Rng data_rng(12);
  std::vector<double> data(8000);
  for (double& x : data) x = data_rng.Gaussian(1.0, 2.0);
  VbgmOptions options;
  options.max_components = 15;
  Rng rng(13);
  const VbgmResult result = FitVbgm(data, options, rng);
  EXPECT_LE(result.selected_k, 5);
}

TEST(Gmm1DTest, SampleFollowsMixture) {
  Gmm1D gmm(2);
  gmm.SetComponent(0, std::log(0.25), -10.0, 0.5);
  gmm.SetComponent(1, std::log(0.75), 10.0, 0.5);
  Rng rng(14);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (gmm.Sample(rng) < 0.0) ++low;
  }
  EXPECT_NEAR(low / double(n), 0.25, 0.02);
}

TEST(Gmm1DTest, TruncatedMeanProperties) {
  Gmm1D gmm(1);
  gmm.SetComponent(0, 0.0, 2.0, 1.5);
  // Symmetric interval around the mean: truncated mean = mean.
  EXPECT_NEAR(gmm.ComponentTruncatedMean(0, 0.0, 4.0), 2.0, 1e-9);
  // One-sided interval pulls the mean inside it.
  const double right = gmm.ComponentTruncatedMean(
      0, 3.0, std::numeric_limits<double>::infinity());
  EXPECT_GT(right, 3.0);
  // Full line: unconditional mean.
  EXPECT_NEAR(gmm.ComponentTruncatedMean(
                  0, -std::numeric_limits<double>::infinity(),
                  std::numeric_limits<double>::infinity()),
              2.0, 1e-9);
  // Far-away interval with ~zero mass: clamped mean (no NaN).
  const double far = gmm.ComponentTruncatedMean(0, 100.0, 101.0);
  EXPECT_GE(far, 100.0);
  EXPECT_LE(far, 101.0);
}

TEST(Gmm1DTest, TruncatedMeanMatchesMonteCarlo) {
  Gmm1D gmm(1);
  gmm.SetComponent(0, 0.0, -1.0, 2.0);
  Rng rng(40);
  double sum = 0.0;
  size_t count = 0;
  for (int i = 0; i < 200000; ++i) {
    const double x = gmm.SampleComponent(0, rng);
    if (x >= 0.0 && x <= 3.0) {
      sum += x;
      ++count;
    }
  }
  ASSERT_GT(count, 1000u);
  EXPECT_NEAR(gmm.ComponentTruncatedMean(0, 0.0, 3.0),
              sum / static_cast<double>(count), 0.02);
}

TEST(Gmm1DTest, SizeBytesCountsThreeDoublesPerComponent) {
  Gmm1D gmm(30);
  EXPECT_EQ(gmm.SizeBytes(), 30u * 3u * sizeof(double));
}

// Property sweep over component counts: EM monotonically improves the NLL,
// assignments are valid, and the per-component masses integrate correctly.
class GmmComponentSweep : public ::testing::TestWithParam<int> {};

TEST_P(GmmComponentSweep, EmImprovesNllMonotonically) {
  const int k = GetParam();
  const auto data = TwoModeData(6000, 100 + k);
  Rng rng(200 + k);
  Gmm1D gmm(k);
  gmm.InitFromData(data, rng);
  double prev = gmm.MeanNegLogLikelihood(data);
  for (int it = 0; it < 10; ++it) {
    gmm.EmStep(data);
    const double now = gmm.MeanNegLogLikelihood(data);
    EXPECT_LE(now, prev + 1e-6) << "EM step " << it << " (k=" << k << ")";
    prev = now;
  }
}

TEST_P(GmmComponentSweep, AssignmentsPartitionTheData) {
  const int k = GetParam();
  const auto data = TwoModeData(3000, 300 + k);
  Rng rng(400 + k);
  Gmm1D gmm(k);
  gmm.InitFromData(data, rng);
  for (int it = 0; it < 10; ++it) gmm.EmStep(data);
  std::vector<int> counts(k, 0);
  for (double x : data) {
    const int a = gmm.Assign(x);
    ASSERT_GE(a, 0);
    ASSERT_LT(a, k);
    ++counts[a];
  }
  int nonempty = 0;
  for (int c : counts) nonempty += c > 0 ? 1 : 0;
  EXPECT_GE(nonempty, std::min(k, 2));
}

TEST_P(GmmComponentSweep, RangeMassesAreAdditive) {
  const int k = GetParam();
  const auto data = TwoModeData(3000, 500 + k);
  Rng rng(600 + k);
  Gmm1D gmm(k);
  gmm.InitFromData(data, rng);
  for (int it = 0; it < 5; ++it) gmm.EmStep(data);
  // Mass of [a,b] + mass of [b,c] == mass of [a,c] per component (exact CDF).
  const auto left = ExactRangeMass(gmm, -10.0, 0.0);
  const auto right = ExactRangeMass(gmm, 0.0, 10.0);
  const auto both = ExactRangeMass(gmm, -10.0, 10.0);
  for (int j = 0; j < k; ++j) {
    EXPECT_NEAR(left[j] + right[j], both[j], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(ComponentCounts, GmmComponentSweep,
                         ::testing::Values(1, 2, 5, 10, 30));

}  // namespace
}  // namespace iam::gmm
