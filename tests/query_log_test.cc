// Tests for the request-scoped diagnostics ring (DESIGN.md §17): field
// round-trips, wrap-around semantics, snapshot filters, the JSON payload
// shape, and the acceptance contract that concurrent writers plus a reader
// never produce a torn record (run under TSan by scripts/ci.sh).

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/query_log.h"

namespace iam::obs {
namespace {

QueryRecord MakeRecord(uint64_t v) {
  // Every field is a function of `v`, so a reader can verify any record is
  // internally consistent without knowing which writer produced it.
  QueryRecord rec;
  rec.model_version = v + 1;
  rec.sampler_draws = v * 3;
  rec.shard = static_cast<int32_t>(v % 7);
  rec.batch_size = static_cast<int32_t>(v % 129);
  rec.sample_rows = static_cast<int32_t>(v % 257);
  rec.rounds = static_cast<int32_t>(v % 5);
  rec.early_stop_round = static_cast<int32_t>(v % 3) - 1;
  rec.prefix_hits = static_cast<int32_t>(v % 11);
  rec.fallbacks = static_cast<int32_t>(v % 2);
  rec.fallback_column = static_cast<int32_t>(v % 4) - 1;
  rec.dead = static_cast<int32_t>(v % 2);
  rec.ci_half_width = static_cast<double>(v) * 0.25;
  rec.selectivity = static_cast<double>(v % 100) / 100.0;
  rec.queue_wait_s = static_cast<double>(v) * 1e-6;
  rec.exec_s = static_cast<double>(v) * 2e-6;
  rec.total_s = static_cast<double>(v) * 3e-6;
  return rec;
}

bool ConsistentWith(const QueryRecord& rec, uint64_t v) {
  const QueryRecord want = MakeRecord(v);
  return rec.model_version == want.model_version &&
         rec.sampler_draws == want.sampler_draws &&
         rec.shard == want.shard && rec.batch_size == want.batch_size &&
         rec.sample_rows == want.sample_rows && rec.rounds == want.rounds &&
         rec.early_stop_round == want.early_stop_round &&
         rec.prefix_hits == want.prefix_hits &&
         rec.fallbacks == want.fallbacks &&
         rec.fallback_column == want.fallback_column &&
         rec.dead == want.dead &&
         rec.ci_half_width == want.ci_half_width &&
         rec.selectivity == want.selectivity &&
         rec.queue_wait_s == want.queue_wait_s &&
         rec.exec_s == want.exec_s && rec.total_s == want.total_s;
}

TEST(QueryLogTest, AppendAssignsSequenceAndRoundTripsEveryField) {
  QueryLog log(16);
  EXPECT_EQ(log.capacity(), 16u);
  EXPECT_EQ(log.Appended(), 0u);
  EXPECT_TRUE(log.Snapshot().empty());

  const uint64_t seq = log.Append(MakeRecord(42));
  EXPECT_EQ(seq, 1u);
  EXPECT_EQ(log.Appended(), 1u);
  EXPECT_EQ(log.TotalDraws(), 42u * 3);

  const std::vector<QueryRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_TRUE(ConsistentWith(records[0], 42));
}

TEST(QueryLogTest, WrapAroundKeepsTheNewestCapacityRecords) {
  QueryLog log(8);
  for (uint64_t v = 1; v <= 20; ++v) log.Append(MakeRecord(v));
  EXPECT_EQ(log.Appended(), 20u);

  const std::vector<QueryRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 8u);
  // Ascending by seq, and only the newest 8 survive the wrap.
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, 13 + i);
    EXPECT_TRUE(ConsistentWith(records[i], 13 + i));
  }
}

TEST(QueryLogTest, SnapshotFiltersByLastNAndMinLatency) {
  QueryLog log(32);
  for (uint64_t v = 1; v <= 10; ++v) log.Append(MakeRecord(v));

  QueryLogFilter last3;
  last3.last_n = 3;
  const std::vector<QueryRecord> newest = log.Snapshot(last3);
  ASSERT_EQ(newest.size(), 3u);
  EXPECT_EQ(newest[0].seq, 8u);
  EXPECT_EQ(newest[2].seq, 10u);

  // MakeRecord(v).total_s = 3v microseconds; keep v >= 7.
  QueryLogFilter slow;
  slow.min_total_s = 20e-6;
  const std::vector<QueryRecord> slow_records = log.Snapshot(slow);
  ASSERT_EQ(slow_records.size(), 4u);
  EXPECT_EQ(slow_records[0].seq, 7u);

  QueryLogFilter both = slow;
  both.last_n = 2;
  const std::vector<QueryRecord> tail = log.Snapshot(both);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq, 9u);
  EXPECT_EQ(tail[1].seq, 10u);
}

TEST(QueryLogTest, ParseFilterReadsTokensAndIgnoresJunk) {
  const QueryLogFilter empty = ParseQueryLogFilter("");
  EXPECT_EQ(empty.last_n, 0u);
  EXPECT_DOUBLE_EQ(empty.min_total_s, 0.0);

  const QueryLogFilter parsed = ParseQueryLogFilter("last=16 min_ms=2.5");
  EXPECT_EQ(parsed.last_n, 16u);
  EXPECT_DOUBLE_EQ(parsed.min_total_s, 2.5e-3);

  // Unknown keys, malformed values and stray spaces are ignored, not fatal:
  // the wire filter must stay forward-compatible.
  const QueryLogFilter junk =
      ParseQueryLogFilter("  bogus=1 last=abc min_ms=-4 last=5  frob ");
  EXPECT_EQ(junk.last_n, 5u);
  EXPECT_DOUBLE_EQ(junk.min_total_s, 0.0);
}

TEST(QueryLogTest, JsonPayloadShape) {
  QueryLog log(8);
  log.Append(MakeRecord(3));
  const std::string json =
      QueryLogToJson(log.Snapshot(), log.Appended(), log.capacity());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"records\":[{\"seq\":1"), std::string::npos);
  for (const char* key :
       {"\"shard\":", "\"batch_size\":", "\"model_version\":",
        "\"sampler_draws\":", "\"sample_rows\":", "\"rounds\":",
        "\"early_stop_round\":", "\"ci_half_width\":", "\"prefix_hits\":",
        "\"fallbacks\":", "\"fallback_column\":", "\"dead\":",
        "\"selectivity\":", "\"queue_wait_s\":", "\"exec_s\":",
        "\"total_s\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"appended\":1"), std::string::npos);
  EXPECT_NE(json.find("\"capacity\":8"), std::string::npos);
}

// Acceptance contract (ci.sh TSan gate): concurrent writers and a reader,
// no data race, and every snapshotted record is internally consistent —
// the stamp protocol may *skip* a slot being overwritten but never returns
// a torn mix of two records.
TEST(QueryLogTest, ConcurrentWritersNeverTearRecords) {
  QueryLog log(256);  // small enough that writers lap the ring constantly
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 20000;

  std::atomic<bool> start{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&log, &start, w] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        log.Append(MakeRecord(static_cast<uint64_t>(w) * kPerWriter + i));
      }
    });
  }

  uint64_t snapshots = 0;
  uint64_t records_seen = 0;
  std::thread reader([&] {
    // do-while: under heavy machine load the reader can be scheduled after
    // every writer has finished; it must still validate at least one
    // snapshot (then quiescent, which is fine — the assertions still hold).
    do {
      const std::vector<QueryRecord> records = log.Snapshot();
      ++snapshots;
      records_seen += records.size();
      uint64_t last_seq = 0;
      for (const QueryRecord& rec : records) {
        // Strictly ascending, valid seq range, and the payload matches the
        // self-describing MakeRecord relations for *some* v — i.e. the
        // record equals exactly what one writer wrote, never a blend.
        EXPECT_GT(rec.seq, last_seq);
        last_seq = rec.seq;
        EXPECT_LE(rec.seq, kWriters * kPerWriter);
        // Recover v from fields: model_version = v + 1.
        ASSERT_GE(rec.model_version, 1u);
        EXPECT_TRUE(ConsistentWith(rec, rec.model_version - 1))
            << "torn record at seq " << rec.seq;
      }
    } while (log.Appended() < kWriters * kPerWriter);
  });

  start.store(true, std::memory_order_release);
  for (std::thread& t : writers) t.join();
  reader.join();

  EXPECT_EQ(log.Appended(), kWriters * kPerWriter);
  EXPECT_GT(snapshots, 0u);

  // Quiescent: a final snapshot returns a full, consistent ring.
  const std::vector<QueryRecord> final_records = log.Snapshot();
  EXPECT_EQ(final_records.size(), log.capacity());
  uint64_t draws = 0;
  for (uint64_t v = 0; v < kWriters * kPerWriter; ++v) draws += v * 3;
  EXPECT_EQ(log.TotalDraws(), draws);
}

}  // namespace
}  // namespace iam::obs
