// Tests of the online-adaptation subsystem (DESIGN.md §18): the kFeedback /
// kAppendData payload codecs, the per-region corrector's EMA/decay/bounded-
// memory semantics, the corrector-off bit-exactness guarantee on a real
// estimator, and the AdaptController's closed loop — feedback to corrector
// update, drift trigger to retrain-and-swap, failure and skip paths. The
// wire-level pieces (frames, acks, races across shards) live in
// serve_net_test.cc.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "adapt/controller.h"
#include "adapt/corrector.h"
#include "adapt/feedback.h"
#include "core/ar_density_estimator.h"
#include "query/parser.h"
#include "query/query.h"
#include "serve/demo.h"
#include "serve/model_registry.h"

namespace iam {
namespace {

// --- Payload codecs. ---------------------------------------------------------

TEST(FeedbackPayloadTest, SeqFormRoundTrips) {
  const auto parsed = adapt::ParseFeedbackPayload("seq=42 actual=0.125");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->seq, 42u);
  EXPECT_DOUBLE_EQ(parsed->actual, 0.125);
  EXPECT_TRUE(parsed->predicates.empty());

  const std::string encoded = adapt::EncodeFeedbackPayload(*parsed);
  const auto reparsed = adapt::ParseFeedbackPayload(encoded);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->seq, parsed->seq);
  EXPECT_EQ(reparsed->actual, parsed->actual);
}

TEST(FeedbackPayloadTest, InlineFormRoundTrips) {
  const auto parsed = adapt::ParseFeedbackPayload(
      "actual=0.25 where latitude BETWEEN 35 AND 45");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->seq, 0u);
  EXPECT_DOUBLE_EQ(parsed->actual, 0.25);
  EXPECT_EQ(parsed->predicates, "latitude BETWEEN 35 AND 45");

  const std::string encoded = adapt::EncodeFeedbackPayload(*parsed);
  const auto reparsed = adapt::ParseFeedbackPayload(encoded);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->predicates, parsed->predicates);
  EXPECT_EQ(reparsed->actual, parsed->actual);
}

TEST(FeedbackPayloadTest, ActualSurvivesBitExactly) {
  adapt::FeedbackPayload feedback;
  feedback.seq = 7;
  feedback.actual = 0.1 + 0.2;  // not exactly representable as 0.3
  const auto reparsed =
      adapt::ParseFeedbackPayload(adapt::EncodeFeedbackPayload(feedback));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->actual, feedback.actual);  // %.17g round trip
}

TEST(FeedbackPayloadTest, RejectsMalformedPayloads) {
  const char* bad[] = {
      "",
      "actual=0.5",                 // inline form without predicates
      "seq=0 actual=0.5",           // seq is 1-based
      "seq=-3 actual=0.5",          // negative seq
      "seq=7 actual=1.5",           // selectivity above 1
      "seq=7 actual=-0.1",          // below 0
      "seq=7 actual=nan",           // non-finite
      "seq=7 actual=0.5 trailing",  // trailing garbage
      "actual=0.5 wherelatitude >= 1",  // "where" must be a whole token
      "seq=x actual=0.5",
  };
  for (const char* payload : bad) {
    EXPECT_FALSE(adapt::ParseFeedbackPayload(payload).ok())
        << "accepted: " << payload;
  }
  // Embedded NUL must not silently truncate the scan.
  EXPECT_FALSE(
      adapt::ParseFeedbackPayload(std::string_view("seq=7 actual=0.5\0x", 18))
          .ok());
}

TEST(AppendPayloadTest, RoundTrips) {
  adapt::AppendPayload append;
  append.cols = 2;
  append.values = {1.5, -2.25, 3.0, 4.125};
  const std::string encoded = adapt::EncodeAppendPayload(append);
  const auto parsed = adapt::ParseAppendPayload(encoded);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->cols, 2);
  EXPECT_EQ(parsed->rows(), 2u);
  EXPECT_EQ(parsed->values, append.values);
}

TEST(AppendPayloadTest, RejectsMalformedPayloads) {
  const char* bad[] = {
      "",
      "1,2\n",             // missing cols= header
      "cols=0\n",          // zero columns
      "cols=2\n1\n",       // short row
      "cols=2\n1,2,3\n",   // long row
      "cols=2\n1,inf\n",   // non-finite value
      "cols=2\n1,two\n",   // non-numeric field
      "cols=9999999\n1\n", // absurd width
  };
  for (const char* payload : bad) {
    EXPECT_FALSE(adapt::ParseAppendPayload(payload).ok())
        << "accepted: " << payload;
  }
}

// --- RegionCorrector. --------------------------------------------------------

TEST(RegionCorrectorTest, UnknownRegionIsIdentity) {
  adapt::RegionCorrector corrector;
  EXPECT_DOUBLE_EQ(corrector.MultiplierForRegion(123), 1.0);
  EXPECT_EQ(corrector.NumRegions(), 0u);
}

TEST(RegionCorrectorTest, EmaConvergesTowardObservedRatio) {
  adapt::CorrectorOptions options;
  options.decay_per_feedback = 1.0;  // isolate the EMA
  adapt::RegionCorrector corrector(options);
  // The served estimate is 4x too low; repeated feedback should converge the
  // region multiplier to ~4.
  for (int i = 0; i < 64; ++i) corrector.Observe(9, 0.05, 0.2);
  EXPECT_NEAR(corrector.MultiplierForRegion(9), 4.0, 0.05);
  EXPECT_EQ(corrector.Updates(), 64u);
  EXPECT_EQ(corrector.NumRegions(), 1u);
}

TEST(RegionCorrectorTest, SingleObservationIsClampedToMaxLog) {
  adapt::CorrectorOptions options;
  options.ema_alpha = 1.0;
  options.decay_per_feedback = 1.0;
  adapt::RegionCorrector corrector(options);
  // A 10^6x feedback ratio clamps at exp(max_abs_log) = 16.
  corrector.Observe(1, 1e-8, 1e-2);
  EXPECT_NEAR(corrector.MultiplierForRegion(1), 16.0, 1e-9);
  corrector.Observe(2, 1e-2, 1e-8);
  EXPECT_NEAR(corrector.MultiplierForRegion(2), 1.0 / 16.0, 1e-9);
}

TEST(RegionCorrectorTest, StaleRegionsDecayTowardIdentity) {
  adapt::CorrectorOptions options;
  options.ema_alpha = 1.0;
  options.decay_per_feedback = 0.5;
  adapt::RegionCorrector corrector(options);
  corrector.Observe(7, 0.1, 0.4);  // region 7: multiplier 4
  // No observations have passed since the update: no decay yet.
  EXPECT_NEAR(corrector.MultiplierForRegion(7), 4.0, 1e-9);
  // Ten observations of other regions later, region 7's correction has
  // washed out by 0.5^10.
  for (int i = 0; i < 10; ++i) corrector.Observe(100 + i, 0.1, 0.1);
  EXPECT_NEAR(corrector.MultiplierForRegion(7),
              std::exp(std::log(4.0) * std::pow(0.5, 10)), 1e-6);
}

TEST(RegionCorrectorTest, RegionCapDropsNewRegionsDeterministically) {
  adapt::CorrectorOptions options;
  options.max_regions = 2;
  adapt::RegionCorrector corrector(options);
  corrector.Observe(1, 0.1, 0.2);
  corrector.Observe(2, 0.1, 0.2);
  corrector.Observe(3, 0.1, 0.2);  // dropped, not evicting
  EXPECT_EQ(corrector.NumRegions(), 2u);
  EXPECT_EQ(corrector.DroppedRegions(), 1u);
  EXPECT_DOUBLE_EQ(corrector.MultiplierForRegion(3), 1.0);
  EXPECT_GT(corrector.MultiplierForRegion(1), 1.0);
  // Known regions still update at the cap; Updates() counts only applied
  // observations (3: two inserts + this one), not the dropped region.
  corrector.Observe(1, 0.1, 0.2);
  EXPECT_EQ(corrector.Updates(), 3u);
  EXPECT_EQ(corrector.DroppedRegions(), 1u);
}

TEST(RegionCorrectorTest, ResetClearsStateAndTagsGeneration) {
  adapt::RegionCorrector corrector;
  corrector.Observe(5, 0.1, 0.4);
  ASSERT_GT(corrector.MultiplierForRegion(5), 1.0);
  corrector.Reset(17);
  EXPECT_EQ(corrector.generation(), 17u);
  EXPECT_EQ(corrector.NumRegions(), 0u);
  EXPECT_DOUBLE_EQ(corrector.MultiplierForRegion(5), 1.0);
}

TEST(RegionCorrectorTest, StateDigestIsDeterministic) {
  adapt::RegionCorrector a;
  adapt::RegionCorrector b;
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
  const uint64_t keys[] = {3, 1, 4, 1, 5, 9, 2, 6};
  for (const uint64_t key : keys) {
    a.Observe(key, 0.01 * static_cast<double>(key + 1), 0.05);
    b.Observe(key, 0.01 * static_cast<double>(key + 1), 0.05);
  }
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
  a.Observe(42, 0.1, 0.2);
  EXPECT_NE(a.StateDigest(), b.StateDigest());
}

// --- Corrector hook on a real estimator. ------------------------------------

class CorrectorEstimatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = serve::TrainDemoEstimator(800, 5).release();
    predicates_ = new std::vector<std::string>(serve::DemoPredicates(16, 29));
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
    delete predicates_;
    predicates_ = nullptr;
  }

  std::vector<query::Query> ParseAll() {
    const data::Table schema = model_->SchemaTable();
    std::vector<query::Query> queries;
    for (const std::string& text : *predicates_) {
      auto parsed = query::ParsePredicates(schema, text);
      EXPECT_TRUE(parsed.ok()) << text;
      if (parsed.ok()) queries.push_back(std::move(*parsed));
    }
    return queries;
  }

  static core::ArDensityEstimator* model_;
  static std::vector<std::string>* predicates_;
};

core::ArDensityEstimator* CorrectorEstimatorTest::model_ = nullptr;
std::vector<std::string>* CorrectorEstimatorTest::predicates_ = nullptr;

TEST_F(CorrectorEstimatorTest, DisabledCorrectorIsBitExact) {
  const std::vector<query::Query> queries = ParseAll();
  const std::vector<double> baseline = model_->EstimateBatch(queries);

  // Installed but disabled: the correction loop must not run at all.
  auto corrector = std::make_shared<adapt::RegionCorrector>();
  for (const query::Query& q : queries) {
    corrector->Observe(model_->CorrectorRegionKey(q), 0.01, 0.9);
  }
  model_->set_corrector(corrector, /*enable=*/false);
  const std::vector<double> disabled = model_->EstimateBatch(queries);
  for (size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(disabled[i], baseline[i]) << "query " << i;  // bit-exact
  }

  // Null corrector with enable requested: enable_corrector stays off.
  model_->set_corrector(nullptr, /*enable=*/true);
  EXPECT_FALSE(model_->options().enable_corrector);
  const std::vector<double> null_corrector = model_->EstimateBatch(queries);
  for (size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(null_corrector[i], baseline[i]) << "query " << i;
  }
}

TEST_F(CorrectorEstimatorTest, EnabledCorrectorScalesEstimates) {
  const std::vector<query::Query> queries = ParseAll();
  model_->set_corrector(nullptr, false);
  const std::vector<double> baseline = model_->EstimateBatch(queries);

  adapt::CorrectorOptions options;
  options.ema_alpha = 1.0;
  options.decay_per_feedback = 1.0;
  auto corrector = std::make_shared<adapt::RegionCorrector>(options);
  // Teach the corrector that query 0's region is 2x underestimated.
  const uint64_t key0 = model_->CorrectorRegionKey(queries[0]);
  corrector->Observe(key0, 0.1, 0.2);
  model_->set_corrector(corrector, /*enable=*/true);
  std::vector<estimator::QueryDiagnostics> diags(queries.size());
  const std::vector<double> corrected =
      model_->EstimateBatchDiagnosed(queries, diags);
  model_->set_corrector(nullptr, false);

  EXPECT_NEAR(corrected[0], std::min(1.0, baseline[0] * 2.0), 1e-12);
  EXPECT_EQ(diags[0].region_key, key0);
  EXPECT_NEAR(diags[0].corrector_multiplier, 2.0, 1e-9);
  for (size_t i = 1; i < queries.size(); ++i) {
    if (model_->CorrectorRegionKey(queries[i]) == key0) continue;
    EXPECT_EQ(corrected[i], baseline[i]) << "query " << i;
    EXPECT_DOUBLE_EQ(diags[i].corrector_multiplier, 1.0);
  }
}

TEST_F(CorrectorEstimatorTest, RegionKeyIsAPureFunctionOfTheQuery) {
  const std::vector<query::Query> queries = ParseAll();
  for (const query::Query& q : queries) {
    EXPECT_EQ(model_->CorrectorRegionKey(q), model_->CorrectorRegionKey(q));
  }
  // Distinct predicates should (overwhelmingly) land in distinct regions.
  EXPECT_NE(model_->CorrectorRegionKey(queries[0]),
            model_->CorrectorRegionKey(queries[1]));
}

// --- AdaptController. --------------------------------------------------------

class AdaptControllerTest : public ::testing::Test {
 protected:
  static std::unique_ptr<serve::ModelRegistry> MakeRegistry() {
    return std::make_unique<serve::ModelRegistry>(
        serve::TrainDemoEstimator(800, 5), "demo", /*num_threads=*/1,
        /*replicas=*/1);
  }

  static std::string AppendPayloadFromTable(const data::Table& table) {
    adapt::AppendPayload append;
    append.cols = table.num_columns();
    for (size_t r = 0; r < table.num_rows(); ++r) {
      for (int c = 0; c < table.num_columns(); ++c) {
        append.values.push_back(table.value(r, c));
      }
    }
    return adapt::EncodeAppendPayload(append);
  }
};

TEST_F(AdaptControllerTest, FeedbackUpdatesCorrectorAndWindow) {
  auto registry = MakeRegistry();
  adapt::AdaptOptions options;
  options.trigger_p90_qerror = 0.0;  // no retraining in this test
  options.min_window_fill = 4;
  adapt::AdaptController controller(*registry, options);
  EXPECT_EQ(controller.corrector().generation(), 1u);

  const std::vector<std::string> predicates = serve::DemoPredicates(8, 31);
  for (const std::string& text : predicates) {
    adapt::FeedbackPayload feedback;
    feedback.actual = 0.25;
    feedback.predicates = text;
    const auto ack =
        controller.OnFeedback(adapt::EncodeFeedbackPayload(feedback));
    EXPECT_TRUE(ack.accepted) << ack.message;
  }
  controller.Flush();
  EXPECT_EQ(controller.FeedbackProcessed(), predicates.size());
  EXPECT_GE(controller.corrector().Updates(), predicates.size());
  EXPECT_GT(controller.corrector().NumRegions(), 0u);
  EXPECT_GT(controller.WindowP90(), 0.0);
  EXPECT_EQ(controller.Retrains(), 0u);
}

TEST_F(AdaptControllerTest, MalformedAndUnresolvableFeedbackIsRejected) {
  auto registry = MakeRegistry();
  adapt::AdaptOptions options;
  options.trigger_p90_qerror = 0.0;
  adapt::AdaptController controller(*registry, options);

  // Malformed: rejected synchronously at intake.
  const auto bad = controller.OnFeedback("actual=banana");
  EXPECT_FALSE(bad.accepted);
  EXPECT_FALSE(bad.overloaded);
  EXPECT_FALSE(bad.message.empty());

  // Well-formed but unresolvable (no such query-log record): accepted, then
  // discarded by the adaptation thread without touching the corrector.
  const auto miss = controller.OnFeedback("seq=987654321 actual=0.5");
  EXPECT_TRUE(miss.accepted);
  controller.Flush();
  EXPECT_EQ(controller.FeedbackProcessed(), 0u);
  EXPECT_EQ(controller.corrector().Updates(), 0u);

  // Append with the wrong arity is rejected at intake (schema has 2 cols).
  const auto widths = controller.OnAppendData("cols=3\n1,2,3\n");
  EXPECT_FALSE(widths.accepted);
}

TEST_F(AdaptControllerTest, QueueOverflowAcksOverloaded) {
  auto registry = MakeRegistry();
  adapt::AdaptOptions options;
  options.trigger_p90_qerror = 0.0;
  options.queue_capacity = 1;
  adapt::AdaptController controller(*registry, options);

  // Burst faster than the adaptation thread can drain: at least one of a
  // rapid burst must be accepted and, with capacity 1, overflow is expected
  // quickly. (The worker may drain between sends, so assert on the ack
  // protocol rather than an exact count.)
  int overloaded = 0;
  for (int i = 0; i < 64; ++i) {
    const auto ack = controller.OnFeedback("seq=987654321 actual=0.5");
    if (ack.overloaded) ++overloaded;
  }
  controller.Flush();
  EXPECT_GT(overloaded, 0);
}

TEST_F(AdaptControllerTest, DriftTriggersExactlyOneRetrainAndSwap) {
  auto registry = MakeRegistry();
  ASSERT_EQ(registry->current_version(), 1u);

  adapt::AdaptOptions options;
  options.trigger_p90_qerror = 1.5;  // fires on consistently bad q-errors
  options.window = 16;
  options.min_window_fill = 8;
  options.min_feedback_between_retrains = 8;
  options.min_retrain_rows = 256;
  options.retrain_epochs = 1;
  adapt::AdaptController controller(*registry, options);

  // Fill the reservoir with shifted rows — the "new" distribution.
  const data::Table shifted = serve::ShiftedDemoTable(512, 11, 1.5);
  const auto appended =
      controller.OnAppendData(AppendPayloadFromTable(shifted));
  ASSERT_TRUE(appended.accepted) << appended.message;
  controller.Flush();
  EXPECT_EQ(controller.ReservoirRows(), 512u);

  // Systematically wrong estimates (actual far from served) breach the p90
  // trigger once the window fills; the controller must retrain exactly once
  // and swap the registry to version 2.
  const std::vector<std::string> predicates = serve::DemoPredicates(12, 33);
  for (const std::string& text : predicates) {
    adapt::FeedbackPayload feedback;
    feedback.actual = 0.9;  // the demo model estimates these far lower
    feedback.predicates = text;
    const auto ack =
        controller.OnFeedback(adapt::EncodeFeedbackPayload(feedback));
    ASSERT_TRUE(ack.accepted);
  }
  controller.Flush();

  EXPECT_EQ(controller.Retrains(), 1u);
  EXPECT_EQ(controller.RetrainFailures(), 0u);
  EXPECT_EQ(registry->current_version(), 2u);
  EXPECT_EQ(registry->Current()->source, "adapt-retrain");
  // The install hook reset the corrector at the generation boundary; any
  // regions alive now came from post-swap feedback against generation 2
  // (the tail of the feedback burst), never from generation 1.
  EXPECT_EQ(controller.corrector().generation(), 2u);
  EXPECT_LT(controller.corrector().NumRegions(), predicates.size());
}

TEST_F(AdaptControllerTest, InsufficientReservoirSkipsRetrain) {
  auto registry = MakeRegistry();
  adapt::AdaptOptions options;
  options.trigger_p90_qerror = 1.5;
  options.window = 16;
  options.min_window_fill = 4;
  options.min_feedback_between_retrains = 4;
  options.min_retrain_rows = 100000;  // unreachable
  adapt::AdaptController controller(*registry, options);

  const std::vector<std::string> predicates = serve::DemoPredicates(8, 37);
  for (const std::string& text : predicates) {
    adapt::FeedbackPayload feedback;
    feedback.actual = 0.9;
    feedback.predicates = text;
    ASSERT_TRUE(
        controller.OnFeedback(adapt::EncodeFeedbackPayload(feedback))
            .accepted);
  }
  controller.Flush();

  EXPECT_EQ(controller.Retrains(), 0u);
  EXPECT_EQ(controller.RetrainFailures(), 0u);
  EXPECT_EQ(registry->current_version(), 1u);  // old model kept serving
}

}  // namespace
}  // namespace iam
