#include <algorithm>

#include <gtest/gtest.h>

#include "estimator/sampling.h"
#include "join/star_schema.h"
#include "optimizer/mini_optimizer.h"
#include "query/query.h"

namespace iam::optimizer {
namespace {

const join::StarSchema& Schema() {
  static const join::StarSchema* schema =
      new join::StarSchema(join::MakeSynImdb(400, 11));
  return *schema;
}

const data::Table& Joined() {
  static const data::Table* joined =
      new data::Table(join::MaterializeJoin(Schema()));
  return *joined;
}

// Maps a JoinQuery to the equivalent query over the materialized join.
query::Query MapToJoined(const JoinQuery& jq) {
  const auto sources = join::JoinColumns(Schema());
  query::Query out;
  for (size_t t = 0; t < jq.filters.size(); ++t) {
    const int source_table = static_cast<int>(t) - 1;
    for (const query::Predicate& p : jq.filters[t].predicates) {
      for (size_t j = 0; j < sources.size(); ++j) {
        if (sources[j].table == source_table && sources[j].column == p.column) {
          query::Predicate mp = p;
          mp.column = static_cast<int>(j);
          out.predicates.push_back(mp);
          break;
        }
      }
    }
  }
  return out;
}

TEST(GenerateJoinWorkloadTest, ValidShape) {
  Rng rng(1);
  const auto workload = GenerateJoinWorkload(Schema(), 25, rng);
  EXPECT_EQ(workload.size(), 25u);
  for (const JoinQuery& jq : workload) {
    ASSERT_EQ(jq.filters.size(), 3u);
    size_t total = 0;
    for (size_t t = 0; t < jq.filters.size(); ++t) {
      const data::Table& table =
          t == 0 ? Schema().dim : Schema().facts[t - 1];
      const int key_col =
          t == 0 ? Schema().dim_key_col : Schema().fact_key_cols[t - 1];
      for (const query::Predicate& p : jq.filters[t].predicates) {
        EXPECT_NE(p.column, key_col) << "predicate on a join key";
        EXPECT_LT(p.column, table.num_columns());
        ++total;
      }
    }
    EXPECT_GE(total, 1u);
  }
}

TEST(OracleProviderTest, FullSetMatchesMaterializedTruth) {
  OracleProvider oracle(Schema());
  Rng rng(2);
  const auto workload = GenerateJoinWorkload(Schema(), 15, rng);
  for (const JoinQuery& jq : workload) {
    const double truth = query::TrueSelectivity(Joined(), MapToJoined(jq));
    EXPECT_NEAR(oracle.Selectivity(jq, {0, 1, 2}), truth, 1e-9);
  }
}

TEST(OracleProviderTest, SingleTableSelectivity) {
  OracleProvider oracle(Schema());
  JoinQuery jq;
  jq.filters.resize(3);
  jq.filters[0].predicates.push_back({.column = 1, .lo = 0.0, .hi = 2.0});
  const double expected = query::TrueSelectivity(Schema().dim, jq.filters[0]);
  EXPECT_NEAR(oracle.Selectivity(jq, {0}), expected, 1e-12);
}

TEST(CatalogTest, SubJoinSizes) {
  Catalog catalog(Schema());
  EXPECT_DOUBLE_EQ(catalog.table_rows(0),
                   static_cast<double>(Schema().dim.num_rows()));
  EXPECT_DOUBLE_EQ(catalog.SubJoinRows({0, 1, 2}),
                   join::JoinCardinality(Schema()));
  // dim ⋈ fact0 = number of fact rows with live keys (all keys live here).
  EXPECT_DOUBLE_EQ(catalog.SubJoinRows({0, 1}),
                   static_cast<double>(Schema().facts[0].num_rows()));
}

TEST(ExecutePlanTest, OutputMatchesTruthForAnyOrder) {
  Rng rng(3);
  const auto workload = GenerateJoinWorkload(Schema(), 8, rng);
  for (const JoinQuery& jq : workload) {
    const double truth = query::TrueSelectivity(Joined(), MapToJoined(jq)) *
                         static_cast<double>(Joined().num_rows());
    for (const std::vector<int>& order :
         {std::vector<int>{0, 1, 2}, {1, 0, 2}, {2, 1, 0}}) {
      const ExecutionResult result = ExecutePlan(Schema(), jq, order);
      EXPECT_NEAR(result.output_rows, truth, 1e-9)
          << "order " << order[0] << order[1] << order[2];
    }
  }
}

TEST(ChoosePlanTest, OracleMinimizesIntermediateRows) {
  OracleProvider oracle(Schema());
  Catalog catalog(Schema());
  Rng rng(4);
  const auto workload = GenerateJoinWorkload(Schema(), 10, rng);
  for (const JoinQuery& jq : workload) {
    const Plan plan = ChoosePlan(catalog, oracle, jq);
    ASSERT_EQ(plan.order.size(), 3u);
    const double chosen = ExecutePlan(Schema(), jq, plan.order).intermediate_rows;

    // Compare against every permutation: the oracle-chosen plan must be
    // within a whisker of the best (cost model weighs base-table reads too,
    // so allow slack rather than demand the exact argmin).
    double best = chosen;
    std::vector<int> order = {0, 1, 2};
    do {
      best = std::min(best,
                      ExecutePlan(Schema(), jq, order).intermediate_rows);
    } while (std::next_permutation(order.begin(), order.end()));
    EXPECT_LE(chosen, best * 2.0 + Schema().dim.num_rows());
  }
}

// The Figure 5 mechanism in miniature: an adversarial provider (inverted
// selectivities) must produce plans that materialize at least as many
// intermediate rows as the oracle's, across a workload.
class InvertedProvider : public SelectivityProvider {
 public:
  explicit InvertedProvider(const join::StarSchema& schema)
      : oracle_(schema) {}
  std::string name() const override { return "inverted"; }
  double Selectivity(const JoinQuery& q,
                     const std::vector<int>& tables) override {
    return 1.0 - oracle_.Selectivity(q, tables);
  }

 private:
  OracleProvider oracle_;
};

TEST(ChoosePlanTest, BetterEstimatesNeverLoseToAdversarial) {
  OracleProvider oracle(Schema());
  InvertedProvider inverted(Schema());
  Catalog catalog(Schema());
  Rng rng(14);
  const auto workload = GenerateJoinWorkload(Schema(), 12, rng);
  double oracle_rows = 0.0, inverted_rows = 0.0;
  for (const JoinQuery& jq : workload) {
    const Plan good = ChoosePlan(catalog, oracle, jq);
    const Plan bad = ChoosePlan(catalog, inverted, jq);
    oracle_rows += ExecutePlan(Schema(), jq, good.order).intermediate_rows;
    inverted_rows += ExecutePlan(Schema(), jq, bad.order).intermediate_rows;
  }
  EXPECT_LE(oracle_rows, inverted_rows * 1.02);
}

TEST(JoinEstimatorProviderTest, ExactEstimatorReproducesJoinTruth) {
  // A full-sample SamplingEstimator over the materialized join is exact, so
  // the adapter must reproduce materialized-join selectivities for the full
  // table set.
  estimator::SamplingEstimator exact(Joined(), 1.0, 5);
  JoinEstimatorProvider provider(Schema(), &exact);
  EXPECT_EQ(provider.name(), "sampling");
  Rng rng(6);
  const auto workload = GenerateJoinWorkload(Schema(), 10, rng);
  for (const JoinQuery& jq : workload) {
    const double truth = query::TrueSelectivity(Joined(), MapToJoined(jq));
    EXPECT_NEAR(provider.Selectivity(jq, {0, 1, 2}), truth, 1e-12);
  }
}

TEST(JoinEstimatorProviderTest, SubsetIgnoresOtherTablesPredicates) {
  estimator::SamplingEstimator exact(Joined(), 1.0, 7);
  JoinEstimatorProvider provider(Schema(), &exact);
  JoinQuery jq;
  jq.filters.resize(3);
  // Impossible predicate on fact 1; subset {0} must ignore it.
  jq.filters[2].predicates.push_back({.column = 1, .lo = 1e9, .hi = 2e9});
  EXPECT_DOUBLE_EQ(provider.Selectivity(jq, {0}), 1.0);
  EXPECT_LT(provider.Selectivity(jq, {0, 1, 2}), 1e-9);
}

}  // namespace
}  // namespace iam::optimizer
