#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "core/ar_density_estimator.h"
#include "core/presets.h"
#include "data/synthetic.h"
#include "util/serialize.h"

namespace iam {
namespace {

TEST(SerializeHelpersTest, PodRoundTrip) {
  std::stringstream stream;
  WritePod<int32_t>(stream, -42);
  WritePod<double>(stream, 3.5);
  WritePod<uint8_t>(stream, 7);
  int32_t i = 0;
  double d = 0;
  uint8_t b = 0;
  ASSERT_TRUE(ReadPod(stream, &i).ok());
  ASSERT_TRUE(ReadPod(stream, &d).ok());
  ASSERT_TRUE(ReadPod(stream, &b).ok());
  EXPECT_EQ(i, -42);
  EXPECT_DOUBLE_EQ(d, 3.5);
  EXPECT_EQ(b, 7);
  // Stream exhausted: further reads fail cleanly.
  EXPECT_FALSE(ReadPod(stream, &i).ok());
}

TEST(SerializeHelpersTest, VectorRoundTrip) {
  std::stringstream stream;
  const std::vector<double> values = {1.0, -2.5, 1e300};
  WriteVector(stream, values);
  WriteVector(stream, std::vector<int>{});
  std::vector<double> loaded;
  std::vector<int> empty;
  ASSERT_TRUE(ReadVector(stream, &loaded).ok());
  ASSERT_TRUE(ReadVector(stream, &empty).ok());
  EXPECT_EQ(loaded, values);
  EXPECT_TRUE(empty.empty());
}

TEST(SerializeHelpersTest, StringRoundTripAndGuards) {
  std::stringstream stream;
  WriteString(stream, "hello");
  WriteString(stream, "");
  std::string a, b;
  ASSERT_TRUE(ReadString(stream, &a).ok());
  ASSERT_TRUE(ReadString(stream, &b).ok());
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");

  // Implausible length prefix is rejected rather than allocated.
  std::stringstream bad;
  WritePod<uint64_t>(bad, 1ULL << 40);
  std::string s;
  EXPECT_FALSE(ReadString(bad, &s).ok());
}

TEST(EnvelopeTest, RoundTripPreservesPayloadAndVersion) {
  std::stringstream stream;
  const std::string payload("binary\0payload\xff with every byte", 31);
  WriteEnvelope(stream, "TESTMAG8", 3, payload);
  uint32_t version = 0;
  const Result<std::string> read =
      ReadEnvelope(stream, "TESTMAG8", /*max_supported_version=*/5, &version);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, payload);
  EXPECT_EQ(version, 3u);
}

TEST(EnvelopeTest, WrongMagicRejected) {
  std::stringstream stream;
  WriteEnvelope(stream, "TESTMAG8", 1, "payload");
  const Result<std::string> read = ReadEnvelope(stream, "OTHERMAG", 1);
  EXPECT_FALSE(read.ok());
}

TEST(EnvelopeTest, FutureVersionRejected) {
  std::stringstream stream;
  WriteEnvelope(stream, "TESTMAG8", 7, "payload");
  const Result<std::string> read =
      ReadEnvelope(stream, "TESTMAG8", /*max_supported_version=*/6);
  EXPECT_FALSE(read.ok());
  EXPECT_NE(read.status().ToString().find("version"), std::string::npos);
}

TEST(EnvelopeTest, EveryBitFlipIsDetected) {
  std::stringstream stream;
  WriteEnvelope(stream, "TESTMAG8", 1, "a modest payload");
  const std::string blob = stream.str();
  for (size_t byte = 0; byte < blob.size(); ++byte) {
    std::string corrupted = blob;
    corrupted[byte] = static_cast<char>(corrupted[byte] ^ 0x10);
    std::istringstream in(corrupted);
    const Result<std::string> read = ReadEnvelope(in, "TESTMAG8", 1);
    // A flip in the size field may also surface as a short read; any clean
    // failure is acceptable, silent success is not.
    EXPECT_FALSE(read.ok()) << "bit flip in byte " << byte << " undetected";
  }
}

TEST(EnvelopeTest, Fnv1a64KnownVectors) {
  // Reference values of the standard 64-bit FNV-1a test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

// One trained-and-saved model shared by the corruption tests below (training
// dominates their runtime; every test only needs the serialized bytes).
const std::string& SavedModelBlob() {
  static const std::string blob = [] {
    const data::Table twi = data::MakeSynTwi(4000, 5);
    core::ArEstimatorOptions opts = core::IamDefaults(6);
    opts.made.hidden_sizes = {32, 32};
    opts.epochs = 1;
    opts.large_domain_threshold = 200;
    opts.gmm_samples_per_component = 500;
    core::ArDensityEstimator model(twi, opts);
    model.Train();
    namespace fs = std::filesystem;
    const std::string path =
        (fs::temp_directory_path() / "iam_fuzz_full.bin").string();
    EXPECT_TRUE(model.Save(path).ok());
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::remove(path.c_str());
    return buffer.str();
  }();
  return blob;
}

void WriteBlob(const std::string& path, const std::string& blob) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
}

// Property: a saved model truncated at *any* prefix length must fail to load
// with a clean Status — never crash, never succeed.
TEST(ModelTruncationFuzzTest, EveryPrefixFailsCleanly) {
  namespace fs = std::filesystem;
  const std::string full =
      (fs::temp_directory_path() / "iam_fuzz_whole.bin").string();
  const std::string cut =
      (fs::temp_directory_path() / "iam_fuzz_cut.bin").string();
  const std::string& blob = SavedModelBlob();
  ASSERT_GT(blob.size(), 1000u);
  WriteBlob(full, blob);

  // Sweep prefix lengths across the whole file (stride keeps runtime sane).
  const size_t stride = std::max<size_t>(1, blob.size() / 211);
  for (size_t len = 0; len < blob.size(); len += stride) {
    {
      std::ofstream out(cut, std::ios::binary | std::ios::trunc);
      out.write(blob.data(), static_cast<std::streamsize>(len));
    }
    const auto loaded = core::ArDensityEstimator::Load(cut);
    EXPECT_FALSE(loaded.ok()) << "prefix of " << len << " bytes loaded";
  }

  // And the untruncated blob still loads.
  const auto loaded = core::ArDensityEstimator::Load(full);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(full.c_str());
  std::remove(cut.c_str());
}

// A flipped bit anywhere in a saved model must be caught — in the header by
// the magic/version checks, in the payload by the FNV-1a digest.
TEST(ModelCorruptionTest, BitFlipsFailToLoad) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "iam_fuzz_flip.bin").string();
  const std::string& blob = SavedModelBlob();

  // Every header byte, then payload positions spread across the file.
  std::vector<size_t> positions;
  for (size_t i = 0; i < 28 && i < blob.size(); ++i) positions.push_back(i);
  for (size_t i = 28; i < blob.size(); i += blob.size() / 37) {
    positions.push_back(i);
  }
  for (const size_t pos : positions) {
    std::string corrupted = blob;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x04);
    WriteBlob(path, corrupted);
    const auto loaded = core::ArDensityEstimator::Load(path);
    EXPECT_FALSE(loaded.ok()) << "bit flip at byte " << pos << " loaded";
  }
  std::remove(path.c_str());
}

TEST(ModelCorruptionTest, FutureFormatVersionRejected) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "iam_fuzz_version.bin").string();
  const std::string& blob = SavedModelBlob();

  // The envelope header is [8-byte magic][u32 version LE]: craft a file
  // claiming a future format version. The checksum is valid, so this
  // exercises the version gate specifically.
  std::string future = blob;
  future[8] = static_cast<char>(99);
  WriteBlob(path, future);
  const auto loaded = core::ArDensityEstimator::Load(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("version"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(ModelCorruptionTest, LegacyUnversionedFormatRejected) {
  // Pre-envelope files began with a length-prefixed "IAMMODEL1" string, not
  // the bare 8-byte magic; they must fail the magic check cleanly.
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "iam_fuzz_legacy.bin").string();
  std::string legacy;
  const uint64_t len = 9;
  legacy.append(reinterpret_cast<const char*>(&len), 8);
  legacy.append("IAMMODEL1");
  legacy.append(200, '\0');
  WriteBlob(path, legacy);
  const auto loaded = core::ArDensityEstimator::Load(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

// Regressions promoted from the fuzz/ harnesses (DESIGN.md §16): readers
// that honour stream-declared lengths must fail truncated or adversarial
// inputs with a clean Status, allocating only for bytes that actually
// arrive. The original finding: ReadEnvelope allocated the full declared
// payload (up to 16 GiB from a 28-byte header) before reading a single
// payload byte, and ReadVector resized to the declared element count the
// same way. The mirror corpus inputs live in fuzz/corpus/envelope/.

TEST(AdversarialInputRegressionTest, HugeDeclaredEnvelopeFailsCleanly) {
  // Valid magic and version, a digest of zero, and a declared 8 GiB payload
  // the stream does not contain. Must be a fast, clean failure — the
  // chunked reader touches at most 1 MiB before hitting EOF.
  std::stringstream stream;
  stream.write("TESTMAG8", 8);
  WritePod<uint32_t>(stream, 1);
  WritePod<uint64_t>(stream, 8ULL << 30);
  WritePod<uint64_t>(stream, 0);
  const Result<std::string> read = ReadEnvelope(stream, "TESTMAG8", 1);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST(AdversarialInputRegressionTest, HugeDeclaredVectorFailsCleanly) {
  // Element count just under the plausibility cap with an empty body: the
  // pre-fix reader resized to count*sizeof(double) = 16 GiB up front.
  std::stringstream stream;
  WritePod<uint64_t>(stream, (1ULL << 31));
  std::vector<double> values{1.0, 2.0};  // must be left empty on failure
  const Status read = ReadVector(stream, &values);
  EXPECT_EQ(read.code(), StatusCode::kIoError);
  EXPECT_TRUE(values.empty() || values.size() <= (1ULL << 20));
}

TEST(AdversarialInputRegressionTest, VectorTruncatedMidChunkFailsCleanly) {
  // Declared length spans multiple 1 MiB read chunks but the stream ends
  // inside the second chunk — the multi-chunk path must also fail cleanly.
  constexpr uint64_t kDeclared = 300000;  // doubles: ~2.3 MiB
  std::stringstream stream;
  WritePod<uint64_t>(stream, kDeclared);
  const std::vector<double> partial(200000, 1.5);
  stream.write(reinterpret_cast<const char*>(partial.data()),
               static_cast<std::streamsize>(partial.size() * sizeof(double)));
  std::vector<double> values;
  const Status read = ReadVector(stream, &values);
  EXPECT_EQ(read.code(), StatusCode::kIoError);
}

TEST(AdversarialInputRegressionTest, ChunkedVectorRoundTripIntact) {
  // The chunked reader must stay byte-compatible with the writer across the
  // chunk boundary (> 1 MiB of payload).
  std::vector<double> original(180000);
  for (size_t i = 0; i < original.size(); ++i) {
    original[i] = static_cast<double>(i) * 0.5;
  }
  std::stringstream stream;
  WriteVector(stream, original);
  std::vector<double> reread;
  ASSERT_TRUE(ReadVector(stream, &reread).ok());
  EXPECT_EQ(reread, original);
}

TEST(AdversarialInputRegressionTest, HugeDeclaredStringFailsCleanly) {
  std::stringstream stream;
  WritePod<uint64_t>(stream, (1ULL << 24) - 1);  // just under the cap
  stream << "only a few actual bytes";
  std::string value;
  const Status read = ReadString(stream, &value);
  EXPECT_EQ(read.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace iam
