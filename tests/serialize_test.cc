#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/ar_density_estimator.h"
#include "core/presets.h"
#include "data/synthetic.h"
#include "util/serialize.h"

namespace iam {
namespace {

TEST(SerializeHelpersTest, PodRoundTrip) {
  std::stringstream stream;
  WritePod<int32_t>(stream, -42);
  WritePod<double>(stream, 3.5);
  WritePod<uint8_t>(stream, 7);
  int32_t i = 0;
  double d = 0;
  uint8_t b = 0;
  ASSERT_TRUE(ReadPod(stream, &i).ok());
  ASSERT_TRUE(ReadPod(stream, &d).ok());
  ASSERT_TRUE(ReadPod(stream, &b).ok());
  EXPECT_EQ(i, -42);
  EXPECT_DOUBLE_EQ(d, 3.5);
  EXPECT_EQ(b, 7);
  // Stream exhausted: further reads fail cleanly.
  EXPECT_FALSE(ReadPod(stream, &i).ok());
}

TEST(SerializeHelpersTest, VectorRoundTrip) {
  std::stringstream stream;
  const std::vector<double> values = {1.0, -2.5, 1e300};
  WriteVector(stream, values);
  WriteVector(stream, std::vector<int>{});
  std::vector<double> loaded;
  std::vector<int> empty;
  ASSERT_TRUE(ReadVector(stream, &loaded).ok());
  ASSERT_TRUE(ReadVector(stream, &empty).ok());
  EXPECT_EQ(loaded, values);
  EXPECT_TRUE(empty.empty());
}

TEST(SerializeHelpersTest, StringRoundTripAndGuards) {
  std::stringstream stream;
  WriteString(stream, "hello");
  WriteString(stream, "");
  std::string a, b;
  ASSERT_TRUE(ReadString(stream, &a).ok());
  ASSERT_TRUE(ReadString(stream, &b).ok());
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");

  // Implausible length prefix is rejected rather than allocated.
  std::stringstream bad;
  WritePod<uint64_t>(bad, 1ULL << 40);
  std::string s;
  EXPECT_FALSE(ReadString(bad, &s).ok());
}

// Property: a saved model truncated at *any* prefix length must fail to load
// with a clean Status — never crash, never succeed.
TEST(ModelTruncationFuzzTest, EveryPrefixFailsCleanly) {
  const data::Table twi = data::MakeSynTwi(4000, 5);
  core::ArEstimatorOptions opts = core::IamDefaults(6);
  opts.made.hidden_sizes = {32, 32};
  opts.epochs = 1;
  opts.large_domain_threshold = 200;
  opts.gmm_samples_per_component = 500;
  core::ArDensityEstimator model(twi, opts);
  model.Train();

  namespace fs = std::filesystem;
  const std::string full =
      (fs::temp_directory_path() / "iam_fuzz_full.bin").string();
  const std::string cut =
      (fs::temp_directory_path() / "iam_fuzz_cut.bin").string();
  ASSERT_TRUE(model.Save(full).ok());

  std::string blob;
  {
    std::ifstream in(full, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    blob = buffer.str();
  }
  ASSERT_GT(blob.size(), 1000u);

  // Sweep prefix lengths across the whole file (stride keeps runtime sane).
  const size_t stride = std::max<size_t>(1, blob.size() / 211);
  for (size_t len = 0; len < blob.size(); len += stride) {
    {
      std::ofstream out(cut, std::ios::binary | std::ios::trunc);
      out.write(blob.data(), static_cast<std::streamsize>(len));
    }
    const auto loaded = core::ArDensityEstimator::Load(cut);
    EXPECT_FALSE(loaded.ok()) << "prefix of " << len << " bytes loaded";
  }

  // And the untruncated blob still loads.
  const auto loaded = core::ArDensityEstimator::Load(full);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(full.c_str());
  std::remove(cut.c_str());
}

}  // namespace
}  // namespace iam
