#include <atomic>
#include <condition_variable>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/query_log.h"
#include "query/parser.h"
#include "serve/batcher.h"
#include "serve/demo.h"
#include "serve/model_registry.h"
#include "serve/protocol.h"
#include "serve/shards.h"
#include "util/mutex.h"

namespace iam::serve {
namespace {

// One small trained model shared by every batcher test in this binary
// (training dominates the suite's runtime; the tests only need *a* model).
ModelRegistry& SharedRegistry() {
  static ModelRegistry registry(TrainDemoEstimator(1200, 11), "");
  return registry;
}

query::Query DemoQuery() {
  const auto parsed =
      query::ParsePredicates(SharedRegistry().Current()->schema,
                             "latitude >= 35 AND longitude <= -100");
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return *parsed;
}

// --- Wire protocol. ---------------------------------------------------------

TEST(ProtocolTest, FrameRoundTrip) {
  const std::string binary{"\x00\x01\xff payload", 11};
  for (const Frame frame : {Frame{FrameType::kEstimate, "latitude >= 35"},
                            Frame{FrameType::kMetrics, ""},
                            Frame{FrameType::kEstimateOk, binary}}) {
    const std::string encoded = EncodeFrame(frame);
    Frame decoded;
    const Result<size_t> consumed = DecodeFrame(encoded, &decoded);
    ASSERT_TRUE(consumed.ok()) << consumed.status().ToString();
    EXPECT_EQ(*consumed, encoded.size());
    EXPECT_EQ(decoded.type, frame.type);
    EXPECT_EQ(decoded.payload, frame.payload);
  }
}

TEST(ProtocolTest, BackToBackFramesDecodeInOrder) {
  const std::string stream = EncodeFrame({FrameType::kEstimate, "a"}) +
                             EncodeFrame({FrameType::kShutdown, ""});
  Frame first;
  const Result<size_t> used = DecodeFrame(stream, &first);
  ASSERT_TRUE(used.ok());
  EXPECT_EQ(first.type, FrameType::kEstimate);
  Frame second;
  const Result<size_t> rest =
      DecodeFrame(std::string_view(stream).substr(*used), &second);
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(second.type, FrameType::kShutdown);
  EXPECT_EQ(*used + *rest, stream.size());
}

TEST(ProtocolTest, IncompleteBufferAsksForMore) {
  const std::string encoded =
      EncodeFrame({FrameType::kEstimate, "latitude >= 35"});
  for (size_t len = 0; len < encoded.size(); ++len) {
    Frame frame;
    const Result<size_t> consumed =
        DecodeFrame(std::string_view(encoded).substr(0, len), &frame);
    ASSERT_TRUE(consumed.ok()) << "prefix " << len;
    EXPECT_EQ(*consumed, 0u) << "prefix " << len;
  }
}

TEST(ProtocolTest, MalformedHeadersRejected) {
  // Length 0 cannot even hold the type byte.
  const std::string zero{"\x00\x00\x00\x00", 4};
  Frame frame;
  EXPECT_FALSE(DecodeFrame(zero, &frame).ok());

  // A length announcing more than kMaxPayloadBytes is a desynchronized or
  // hostile stream, not a frame to wait for.
  uint32_t huge = kMaxPayloadBytes + 2;
  std::string oversized(4, '\0');
  std::memcpy(oversized.data(), &huge, 4);
  EXPECT_FALSE(DecodeFrame(oversized, &frame).ok());
}

TEST(ProtocolTest, EstimatePayloadRoundTrip) {
  const double selectivities[] = {0.0, 1.0, 1e-17, 0.123456789012345678};
  for (const double s : selectivities) {
    const std::string payload = EncodeEstimatePayload(s, 42);
    double sel = -1.0;
    uint64_t version = 0;
    ASSERT_TRUE(DecodeEstimatePayload(payload, &sel, &version).ok());
    EXPECT_EQ(sel, s);  // bit-exact
    EXPECT_EQ(version, 42u);
  }
  double sel = 0.0;
  uint64_t version = 0;
  EXPECT_FALSE(DecodeEstimatePayload("short", &sel, &version).ok());
}

// --- Model registry. --------------------------------------------------------

TEST(ModelRegistryTest, SwapBumpsVersionAndKeepsOldSnapshotAlive) {
  ModelRegistry registry(TrainDemoEstimator(1200, 11), "first");
  const std::shared_ptr<LoadedModel> first = registry.Current();
  EXPECT_EQ(first->version, 1u);
  EXPECT_EQ(first->source, "first");

  const uint64_t v2 = registry.Swap(TrainDemoEstimator(1200, 12), "second");
  EXPECT_EQ(v2, 2u);
  EXPECT_EQ(registry.Current()->version, 2u);

  // The snapshot taken before the swap is still the old generation and still
  // answers queries — this is what lets in-flight batches drain.
  EXPECT_EQ(first->version, 1u);
  const auto q = query::ParsePredicates(first->schema, "latitude >= 40");
  ASSERT_TRUE(q.ok());
  const double estimate = first->estimator->Estimate(*q);
  EXPECT_GE(estimate, 0.0);
  EXPECT_LE(estimate, 1.0);
}

TEST(ModelRegistryTest, FailedSwapFromFileKeepsServing) {
  ModelRegistry& registry = SharedRegistry();
  const uint64_t version = registry.Current()->version;
  const auto swapped = registry.SwapFromFile("/nonexistent/model.iam");
  EXPECT_FALSE(swapped.ok());
  EXPECT_EQ(registry.Current()->version, version);
}

// --- Micro-batcher. ---------------------------------------------------------

TEST(MicroBatcherTest, SoloRequestMatchesDirectEstimate) {
  const query::Query q = DemoQuery();
  // A batch of one is seeded exactly like Estimate(); the serving path must
  // be bit-identical to the library path for a lone request.
  const double direct = SharedRegistry().Current()->estimator->Estimate(q);

  MicroBatcher batcher(SharedRegistry(), BatcherOptions{});
  const MicroBatcher::Response response = batcher.Estimate(q);
  batcher.DrainAndStop();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_FALSE(response.overloaded);
  EXPECT_EQ(response.selectivity, direct);
  EXPECT_EQ(response.model_version, SharedRegistry().Current()->version);
}

// Acceptance check (ISSUE 9): a served query's QueryLog record reconciles
// exactly with the iam_sampler_samples_total delta it caused — the ring's
// per-query attribution and the aggregate counter are two views of the same
// draws, and a batch of one pins the delta to a single record.
TEST(MicroBatcherTest, SoloRequestQueryLogReconcilesWithSamplerCounters) {
  const query::Query q = DemoQuery();
  obs::QueryLog& log = obs::QueryLog::Global();
  obs::Counter& sampler_total =
      obs::MetricRegistry::Global().GetCounter("iam_sampler_samples_total");
  const uint64_t appended_before = log.Appended();
  const uint64_t log_draws_before = log.TotalDraws();
  const uint64_t sampler_before = sampler_total.Total();

  MicroBatcher batcher(SharedRegistry(), BatcherOptions{});
  const MicroBatcher::Response response = batcher.Estimate(q);
  batcher.DrainAndStop();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  ASSERT_FALSE(response.overloaded);

  ASSERT_EQ(log.Appended(), appended_before + 1);
  obs::QueryLogFilter last1;
  last1.last_n = 1;
  const std::vector<obs::QueryRecord> records = log.Snapshot(last1);
  ASSERT_EQ(records.size(), 1u);
  const obs::QueryRecord& rec = records[0];
  EXPECT_EQ(rec.seq, log.Appended());
  EXPECT_EQ(rec.shard, 0);
  EXPECT_EQ(rec.batch_size, 1);
  EXPECT_EQ(rec.model_version, SharedRegistry().Current()->version);
  EXPECT_EQ(rec.dead, 0);
  EXPECT_EQ(rec.selectivity, response.selectivity);
  EXPECT_GE(rec.rounds, 1);
  EXPECT_GE(rec.queue_wait_s, 0.0);
  EXPECT_GT(rec.exec_s, 0.0);
  EXPECT_DOUBLE_EQ(rec.total_s, rec.queue_wait_s + rec.exec_s);

  // Exact reconciliation: record == counter delta == ring aggregate delta.
  const uint64_t sampler_delta = sampler_total.Total() - sampler_before;
  EXPECT_GT(rec.sampler_draws, 0u);
  EXPECT_EQ(rec.sampler_draws, sampler_delta);
  EXPECT_EQ(log.TotalDraws() - log_draws_before, sampler_delta);
}

TEST(MicroBatcherTest, CoalescesConcurrentRequests) {
  constexpr int kClients = 8;
  BatcherOptions options;
  options.max_batch = kClients;
  options.max_delay_s = 0.2;  // long enough for all clients to queue up
  MicroBatcher batcher(SharedRegistry(), options);

  const query::Query q = DemoQuery();
  const uint64_t batches_before = ServeMetrics::Get().batches.Total();
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      const MicroBatcher::Response r = batcher.Estimate(q);
      if (!r.status.ok() || r.overloaded) failures.fetch_add(1);
    });
  }
  for (std::thread& t : clients) t.join();
  batcher.DrainAndStop();

  EXPECT_EQ(failures.load(), 0);
  // All kClients answered in fewer than kClients flushes — i.e. they shared
  // micro-batches. (Exactly one flush in the common case; the bound stays
  // robust on a loaded machine.)
  const uint64_t batches = ServeMetrics::Get().batches.Total() - batches_before;
  EXPECT_GE(batches, 1u);
  EXPECT_LT(batches, static_cast<uint64_t>(kClients));
}

TEST(MicroBatcherTest, ZeroCapacityFastRejectsEverything) {
  BatcherOptions options;
  options.queue_capacity = 0;
  MicroBatcher batcher(SharedRegistry(), options);
  const MicroBatcher::Response response = batcher.Estimate(DemoQuery());
  EXPECT_TRUE(response.status.ok());
  EXPECT_TRUE(response.overloaded);
  batcher.DrainAndStop();
}

TEST(MicroBatcherTest, DrainStopsAdmissionAndIsIdempotent) {
  MicroBatcher batcher(SharedRegistry(), BatcherOptions{});
  batcher.DrainAndStop();
  batcher.DrainAndStop();  // second drain is a no-op
  const MicroBatcher::Response response = batcher.Estimate(DemoQuery());
  EXPECT_FALSE(response.status.ok());
}

// --- Shard set. -------------------------------------------------------------

// Collects async completions from ShardSet::Submit.
struct CallbackSink {
  util::Mutex mu;
  std::condition_variable cv;
  int ok = 0;
  int overloaded = 0;
  int failed = 0;

  MicroBatcher::Callback Make() {
    return [this](const MicroBatcher::Response& r) {
      util::MutexLock lock(mu);
      if (!r.status.ok()) {
        ++failed;
      } else if (r.overloaded) {
        ++overloaded;
      } else {
        ++ok;
      }
      cv.notify_all();
    };
  }

  void WaitForTotal(int n) {
    util::MutexLock lock(mu);
    while (ok + overloaded + failed < n) lock.Wait(cv);
  }
};

TEST(ShardedBatcherTest, AsyncCallbackMatchesDirectEstimate) {
  const query::Query q = DemoQuery();
  const double direct = SharedRegistry().Current()->estimator->Estimate(q);

  BatcherOptions options;
  options.max_delay_s = 1e-4;
  ShardSet set(SharedRegistry(), options, 2);
  util::Mutex mu;
  std::condition_variable cv;
  bool done = false;
  MicroBatcher::Response response;
  set.Submit(1, query::Query(q), [&](const MicroBatcher::Response& r) {
    util::MutexLock lock(mu);
    response = r;
    done = true;
    cv.notify_one();
  });
  {
    util::MutexLock lock(mu);
    while (!done) lock.Wait(cv);
  }
  set.DrainAndStop();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_FALSE(response.overloaded);
  // A lone request is a batch of one on whichever shard admitted it, so the
  // sharded path stays bit-identical to the library's Estimate().
  EXPECT_EQ(response.selectivity, direct);
}

TEST(ShardedBatcherTest, SpillsToSiblingThenRejectsWhenAllFull) {
  // Coalescing holds admitted requests in the shard queue (max_batch and
  // max_delay both out of reach), so admission fills deterministically.
  BatcherOptions options;
  options.max_batch = 64;
  options.max_delay_s = 30.0;
  options.queue_capacity = 2;
  ShardSet set(SharedRegistry(), options, 2);
  EXPECT_FALSE(set.saturated());

  const uint64_t spilled_before = ServeMetrics::Get().spilled.Total();
  CallbackSink sink;
  // All four name shard 0 as home: two land there, two spill to shard 1.
  for (int i = 0; i < 4; ++i) set.Submit(0, DemoQuery(), sink.Make());
  EXPECT_EQ(set.shard(0).ApproxQueueDepth(), 2);
  EXPECT_EQ(set.shard(1).ApproxQueueDepth(), 2);
  EXPECT_EQ(ServeMetrics::Get().spilled.Total() - spilled_before, 2u);

  // Every queue is at capacity: the shared overload signal trips and the
  // fifth submission rejects inline.
  EXPECT_TRUE(set.saturated());
  set.Submit(0, DemoQuery(), sink.Make());
  {
    util::MutexLock lock(sink.mu);
    EXPECT_EQ(sink.overloaded, 1);
  }

  // Drain flushes both shards; every admitted callback fires exactly once.
  set.DrainAndStop();
  sink.WaitForTotal(5);
  util::MutexLock lock(sink.mu);
  EXPECT_EQ(sink.ok, 4);
  EXPECT_EQ(sink.overloaded, 1);
  EXPECT_EQ(sink.failed, 0);
}

TEST(ShardedBatcherTest, StoppedSetFailsSubmissionsInline) {
  ShardSet set(SharedRegistry(), BatcherOptions{}, 2);
  set.DrainAndStop();
  CallbackSink sink;
  set.Submit(0, DemoQuery(), sink.Make());
  sink.WaitForTotal(1);
  util::MutexLock lock(sink.mu);
  EXPECT_EQ(sink.failed, 1);
}

TEST(ModelRegistryTest, ReplicasAreIndependentBitExactClones) {
  ModelRegistry registry(TrainDemoEstimator(1200, 11), "", 1, 3);
  EXPECT_EQ(registry.replicas(), 3);
  // Distinct instances (shard workers must not share a batch mutex)...
  EXPECT_NE(registry.Current(0).get(), registry.Current(1).get());
  EXPECT_NE(registry.Current(1).get(), registry.Current(2).get());
  // ...wrapping one generation: same version, shard index wraps.
  EXPECT_EQ(registry.Current(1)->version, registry.Current(0)->version);
  EXPECT_EQ(registry.Current(3).get(), registry.Current(0).get());

  // Every replica loads from the same serialized bytes (the in-memory donor
  // is discarded — a round trip rounds parameters), so a solo request
  // answers identically no matter which replica serves it.
  const auto q = query::ParsePredicates(registry.Current()->schema,
                                        "latitude >= 35 AND longitude <= -100");
  ASSERT_TRUE(q.ok());
  const double first = registry.Current(0)->estimator->Estimate(*q);
  EXPECT_EQ(registry.Current(1)->estimator->Estimate(*q), first);
  EXPECT_EQ(registry.Current(2)->estimator->Estimate(*q), first);
}

}  // namespace
}  // namespace iam::serve
