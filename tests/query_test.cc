#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "data/table.h"
#include "query/parser.h"
#include "query/query.h"
#include "query/workload.h"

namespace iam::query {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

data::Table TinyTable() {
  data::Table t("tiny");
  t.AddColumn({"a", data::ColumnType::kCategorical, {0, 0, 1, 1, 2}});
  t.AddColumn({"x", data::ColumnType::kContinuous, {1.0, 2.0, 3.0, 4.0, 5.0}});
  return t;
}

TEST(PredicateTest, IntervalSemantics) {
  Predicate p{.column = 0, .lo = 1.0, .hi = 3.0};
  EXPECT_TRUE(p.Matches(1.0));
  EXPECT_TRUE(p.Matches(3.0));
  EXPECT_FALSE(p.Matches(0.999));
  EXPECT_FALSE(p.Matches(3.001));
}

TEST(TrueSelectivityTest, PointAndRange) {
  const data::Table t = TinyTable();
  Query q1{{{.column = 0, .lo = 1.0, .hi = 1.0}}};
  EXPECT_DOUBLE_EQ(TrueSelectivity(t, q1), 0.4);
  Query q2{{{.column = 1, .lo = -kInf, .hi = 3.0}}};
  EXPECT_DOUBLE_EQ(TrueSelectivity(t, q2), 0.6);
  Query q3{{{.column = 0, .lo = 1.0, .hi = 1.0},
            {.column = 1, .lo = 3.5, .hi = kInf}}};
  EXPECT_DOUBLE_EQ(TrueSelectivity(t, q3), 0.2);
}

TEST(TrueSelectivityTest, EmptyQueryMatchesAll) {
  const data::Table t = TinyTable();
  EXPECT_DOUBLE_EQ(TrueSelectivity(t, Query{}), 1.0);
}

TEST(QErrorTest, SymmetricAndFloored) {
  EXPECT_DOUBLE_EQ(QError(0.1, 0.2, 1000), 2.0);
  EXPECT_DOUBLE_EQ(QError(0.2, 0.1, 1000), 2.0);
  EXPECT_DOUBLE_EQ(QError(0.5, 0.5, 1000), 1.0);
  // Zero estimate hits the 1/|T| floor instead of dividing by zero.
  EXPECT_DOUBLE_EQ(QError(0.1, 0.0, 1000), 0.1 * 1000);
  EXPECT_DOUBLE_EQ(QError(0.0, 0.0, 1000), 1.0);
}

TEST(WorkloadTest, GeneratesRequestedCount) {
  const data::Table t = data::MakeSynWisdm(2000, 1);
  Rng rng(2);
  WorkloadOptions options;
  options.num_queries = 50;
  const auto queries = GenerateWorkload(t, options, rng);
  EXPECT_EQ(queries.size(), 50u);
  for (const Query& q : queries) {
    EXPECT_FALSE(q.predicates.empty());
    for (const Predicate& p : q.predicates) {
      EXPECT_GE(p.column, 0);
      EXPECT_LT(p.column, t.num_columns());
    }
  }
}

TEST(WorkloadTest, CategoricalPredicatesUseDomainValues) {
  const data::Table t = TinyTable();
  Rng rng(3);
  WorkloadOptions options;
  options.num_queries = 200;
  options.column_prob = 1.0;
  const auto queries = GenerateWorkload(t, options, rng);
  for (const Query& q : queries) {
    for (const Predicate& p : q.predicates) {
      if (p.column != 0) continue;
      // Every finite bound is a real domain value.
      if (std::isfinite(p.lo)) {
        EXPECT_TRUE(p.lo == 0.0 || p.lo == 1.0 || p.lo == 2.0);
      }
      if (std::isfinite(p.hi)) {
        EXPECT_TRUE(p.hi == 0.0 || p.hi == 1.0 || p.hi == 2.0);
      }
    }
  }
}

TEST(WorkloadTest, ContinuousPredicatesAreOneSided) {
  const data::Table t = TinyTable();
  Rng rng(4);
  WorkloadOptions options;
  options.num_queries = 100;
  options.column_prob = 1.0;
  const auto queries = GenerateWorkload(t, options, rng);
  for (const Query& q : queries) {
    for (const Predicate& p : q.predicates) {
      if (p.column != 1) continue;
      EXPECT_TRUE(p.lo == -kInf || p.hi == kInf);
      EXPECT_FALSE(p.lo == -kInf && p.hi == kInf);
    }
  }
}

TEST(WorkloadTest, EvaluatedWorkloadTruthsMatchScan) {
  const data::Table t = data::MakeSynTwi(3000, 5);
  Rng rng(6);
  WorkloadOptions options;
  options.num_queries = 20;
  const EvaluatedWorkload w = GenerateEvaluatedWorkload(t, options, rng);
  ASSERT_EQ(w.queries.size(), w.true_selectivities.size());
  for (size_t i = 0; i < w.queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(w.true_selectivities[i],
                     TrueSelectivity(t, w.queries[i]));
  }
}

TEST(ParserTest, ParsesConjunctions) {
  const data::Table t = TinyTable();
  auto q = ParsePredicates(t, "a = 1 AND x >= 2.5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->predicates.size(), 2u);
  EXPECT_DOUBLE_EQ(TrueSelectivity(t, *q), 0.4);  // rows (1,3.0) and (1,4.0)
}

TEST(ParserTest, BetweenAndStrictBounds) {
  const data::Table t = TinyTable();
  auto q = ParsePredicates(t, "x BETWEEN 2 AND 4");
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(TrueSelectivity(t, *q), 0.6);

  // Strict < on a continuous column excludes the boundary value.
  auto strict = ParsePredicates(t, "x < 4");
  ASSERT_TRUE(strict.ok());
  EXPECT_DOUBLE_EQ(TrueSelectivity(t, *strict), 0.6);

  // Strict > on a categorical column steps a whole code.
  auto cat = ParsePredicates(t, "a > 0");
  ASSERT_TRUE(cat.ok());
  EXPECT_DOUBLE_EQ(TrueSelectivity(t, *cat), 0.6);
}

TEST(ParserTest, IntersectsRepeatedColumns) {
  const data::Table t = TinyTable();
  auto q = ParsePredicates(t, "x >= 2 AND x <= 3");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->predicates.size(), 1u);
  EXPECT_DOUBLE_EQ(q->predicates[0].lo, 2.0);
  EXPECT_DOUBLE_EQ(q->predicates[0].hi, 3.0);
}

TEST(ParserTest, RejectsMalformedInput) {
  const data::Table t = TinyTable();
  EXPECT_FALSE(ParsePredicates(t, "nosuchcol = 1").ok());
  EXPECT_FALSE(ParsePredicates(t, "x >=").ok());
  EXPECT_FALSE(ParsePredicates(t, "x == 2").ok());  // '=' then dangling '='
  EXPECT_FALSE(ParsePredicates(t, "x >= 1 AND").ok());
  EXPECT_FALSE(ParsePredicates(t, "x BETWEEN 1").ok());
  EXPECT_FALSE(ParsePredicates(t, "").ok());
  EXPECT_FALSE(ParsePredicates(t, "x ! 3").ok());
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  const data::Table t = TinyTable();
  EXPECT_TRUE(ParsePredicates(t, "x >= 1 and a = 0").ok());
  EXPECT_TRUE(ParsePredicates(t, "x between 1 AND 2").ok());
}

TEST(QueryTest, DebugStringNamesColumns) {
  const data::Table t = TinyTable();
  Query q{{{.column = 0, .lo = 1.0, .hi = 1.0}}};
  EXPECT_NE(q.DebugString(t).find("a"), std::string::npos);
}

TEST(ToStringTest, RendersEveryOperatorShape) {
  const data::Table t = TinyTable();
  EXPECT_EQ(ToString(t, Query{{{.column = 0, .lo = 1.0, .hi = 1.0}}}),
            "a = 1");
  EXPECT_EQ(ToString(t, Query{{{.column = 1, .lo = 2.0, .hi = 4.0}}}),
            "x BETWEEN 2 AND 4");
  EXPECT_EQ(ToString(t, Query{{{.column = 1, .lo = -kInf, .hi = 4.0}}}),
            "x <= 4");
  EXPECT_EQ(ToString(t, Query{{{.column = 1, .lo = 2.0, .hi = kInf}}}),
            "x >= 2");
  EXPECT_EQ(ToString(t, Query{{{.column = 0, .lo = 0.0, .hi = 0.0},
                               {.column = 1, .lo = 1.5, .hi = kInf}}}),
            "a = 0 AND x >= 1.5");
  // A predicate with both bounds infinite constrains nothing and is omitted;
  // an all-omitted query prints empty, which the parser rejects (the wire
  // protocol never produces it).
  EXPECT_EQ(ToString(t, Query{{{.column = 1, .lo = -kInf, .hi = kInf}}}), "");
}

TEST(ToStringTest, StrictBoundsSurviveTheRoundTrip) {
  const data::Table t = TinyTable();
  // "x < 4" maps hi to nextafter(4, -inf): 17 significant digits must bring
  // that exact double back through the printer and strtod.
  const auto strict = ParsePredicates(t, "x < 4");
  ASSERT_TRUE(strict.ok());
  const auto round = ParsePredicates(t, ToString(t, *strict));
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(round->predicates.size(), 1u);
  EXPECT_EQ(round->predicates[0].hi, strict->predicates[0].hi);  // bit-exact
  EXPECT_LT(round->predicates[0].hi, 4.0);
}

// Property: over generated workloads on all three synthetic schemas,
// ParsePredicates(t, ToString(t, q)) reproduces q exactly. This is the
// serving layer's wire-format contract.
TEST(ToStringTest, ParsePrintRoundTripIsIdentity) {
  Rng rng(2022);
  WorkloadOptions options;
  options.num_queries = 120;
  const data::Table tables[] = {data::MakeSynTwi(400, 3),
                                data::MakeSynWisdm(400, 4),
                                data::MakeSynHiggs(400, 5)};
  for (const data::Table& t : tables) {
    const std::vector<Query> workload = GenerateWorkload(t, options, rng);
    for (const Query& q : workload) {
      const std::string text = ToString(t, q);
      const auto round = ParsePredicates(t, text);
      ASSERT_TRUE(round.ok())
          << "\"" << text << "\": " << round.status().ToString();
      ASSERT_EQ(round->predicates.size(), q.predicates.size()) << text;
      for (size_t i = 0; i < q.predicates.size(); ++i) {
        EXPECT_EQ(round->predicates[i].column, q.predicates[i].column);
        EXPECT_EQ(round->predicates[i].lo, q.predicates[i].lo) << text;
        EXPECT_EQ(round->predicates[i].hi, q.predicates[i].hi) << text;
      }
    }
  }
}

}  // namespace
}  // namespace iam::query
