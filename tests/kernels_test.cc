#include "nn/kernels.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "nn/matrix.h"
#include "util/random.h"

namespace iam::nn {
namespace {

// In the portable build the tiled kernels accumulate in the same index order
// as the reference, so results must match bitwise. The IAM_NATIVE build may
// contract mul+add chains into FMA differently between the two loop shapes,
// so there we allow a small relative tolerance instead. See DESIGN.md §10.
void ExpectSameMatrix(const Matrix& got, const Matrix& want) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (int r = 0; r < want.rows(); ++r) {
    for (int c = 0; c < want.cols(); ++c) {
#ifdef IAM_NATIVE
      EXPECT_NEAR(got.at(r, c), want.at(r, c),
                  1e-4f * (1.0f + std::fabs(want.at(r, c))))
          << "at (" << r << ", " << c << ")";
#else
      EXPECT_EQ(got.at(r, c), want.at(r, c))
          << "at (" << r << ", " << c << ")";
#endif
    }
  }
}

void ExpectSameSpan(std::span<const float> got, std::span<const float> want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
#ifdef IAM_NATIVE
    EXPECT_NEAR(got[i], want[i], 1e-4f * (1.0f + std::fabs(want[i])))
        << "at " << i;
#else
    EXPECT_EQ(got[i], want[i]) << "at " << i;
#endif
  }
}

void FillRandom(Matrix& m, Rng& rng) {
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) {
      m.at(r, c) = static_cast<float>(rng.Uniform(-1.0, 1.0));
    }
  }
}

std::vector<float> RandomBias(int out, Rng& rng) {
  std::vector<float> bias(out);
  for (float& b : bias) b = static_cast<float>(rng.Uniform(-0.5, 0.5));
  return bias;
}

// Shapes chosen to exercise every remainder path of the tiled kernels: the
// 16-wide strips, the 4-wide strips, the scalar strided remainder, the
// small-batch tile (batch < 8 skips the transpose), and degenerate widths.
const int kBatches[] = {1, 2, 3, 5, 8, 17, 64};
const int kWidths[] = {1, 2, 3, 5, 7, 16, 17, 33, 64, 100};

TEST(KernelsTest, MatrixStorageIsCacheLineAligned) {
  for (int n : {1, 3, 64, 1000}) {
    Matrix m(n, n);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.data()) % Matrix::kAlignment, 0u);
    m.ResizeUninitialized(2 * n, n + 1);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.data()) % Matrix::kAlignment, 0u);
  }
}

TEST(KernelsTest, LinearForwardMatchesReferenceAcrossShapes) {
  Rng rng(0x5eed1);
  for (int batch : kBatches) {
    for (int in : kWidths) {
      for (int out : kWidths) {
        Matrix x(batch, in), w(out, in);
        FillRandom(x, rng);
        FillRandom(w, rng);
        const std::vector<float> bias = RandomBias(out, rng);

        Matrix want, got, wt_scratch;
        LinearForwardRef(x, w, bias, want);
        LinearForward(x, w, bias, got, wt_scratch);
        ExpectSameMatrix(got, want);

        // Empty bias path.
        LinearForwardRef(x, w, {}, want);
        LinearForward(x, w, {}, got, wt_scratch);
        ExpectSameMatrix(got, want);
      }
    }
  }
}

TEST(KernelsTest, FusedReluMatchesReferenceThenRelu) {
  Rng rng(0x5eed2);
  for (int batch : {1, 3, 17}) {
    for (int in : kWidths) {
      for (int out : kWidths) {
        Matrix x(batch, in), w(out, in);
        FillRandom(x, rng);
        FillRandom(w, rng);
        const std::vector<float> bias = RandomBias(out, rng);

        Matrix want;
        LinearForwardRef(x, w, bias, want);
        for (int r = 0; r < want.rows(); ++r) {
          for (int c = 0; c < want.cols(); ++c) {
            // Matches ReluForward semantics: non-positive (and NaN) -> 0.
            if (!(want.at(r, c) > 0.0f)) want.at(r, c) = 0.0f;
          }
        }
        Matrix got, wt_scratch;
        LinearReluForward(x, w, bias, got, wt_scratch);
        ExpectSameMatrix(got, want);
      }
    }
  }
}

TEST(KernelsTest, TransposedKernelsMatchReference) {
  Rng rng(0x5eed3);
  for (int batch : {1, 5, 32}) {
    for (int in : {1, 7, 33, 100}) {
      for (int out : {1, 7, 33, 100}) {
        Matrix x(batch, in), w(out, in), wt;
        FillRandom(x, rng);
        FillRandom(w, rng);
        TransposeInto(w, wt);
        ASSERT_EQ(wt.rows(), in);
        ASSERT_EQ(wt.cols(), out);
        const std::vector<float> bias = RandomBias(out, rng);

        Matrix want, got;
        LinearForwardRef(x, w, bias, want);
        LinearForwardT(x, wt, bias, got);
        ExpectSameMatrix(got, want);

        for (int r = 0; r < want.rows(); ++r) {
          for (int c = 0; c < want.cols(); ++c) {
            if (!(want.at(r, c) > 0.0f)) want.at(r, c) = 0.0f;
          }
        }
        LinearReluForwardT(x, wt, bias, got);
        ExpectSameMatrix(got, want);
      }
    }
  }
}

TEST(KernelsTest, ForwardTSliceMatchesColumnWindowOfFullProduct) {
  Rng rng(0x5eed4);
  const int batch = 9, in = 37, out = 71;
  Matrix x(batch, in), w(out, in), wt;
  FillRandom(x, rng);
  FillRandom(w, rng);
  TransposeInto(w, wt);
  const std::vector<float> bias = RandomBias(out, rng);

  Matrix full;
  LinearForwardRef(x, w, bias, full);

  for (const auto& [col0, width] : {std::pair{0, 1},
                                   std::pair{0, out},
                                   std::pair{13, 5},
                                   std::pair{out - 1, 1},
                                   std::pair{out - 17, 17}}) {
    Matrix got;
    LinearForwardTSlice(x, wt.data() + col0, wt.cols(), in, width,
                        std::span<const float>(bias).subspan(col0, width),
                        got);
    ASSERT_EQ(got.rows(), batch);
    ASSERT_EQ(got.cols(), width);
    for (int r = 0; r < batch; ++r) {
      for (int c = 0; c < width; ++c) {
#ifdef IAM_NATIVE
        EXPECT_NEAR(got.at(r, c), full.at(r, col0 + c),
                    1e-4f * (1.0f + std::fabs(full.at(r, col0 + c))));
#else
        EXPECT_EQ(got.at(r, c), full.at(r, col0 + c));
#endif
      }
    }
  }
}

TEST(KernelsTest, SparseForwardMatchesDenseOnSparseInput) {
  Rng rng(0x5eed5);
  for (int batch : {1, 4, 19}) {
    for (int in : {8, 37, 120}) {
      for (int out : {1, 30, 65}) {
        // Build a sparse batch (~10% density, strictly increasing indices)
        // and its dense expansion.
        SparseRows sx;
        sx.Reset(in);
        Matrix x(batch, in);
        x.Zero();
        for (int r = 0; r < batch; ++r) {
          for (int i = 0; i < in; ++i) {
            if (rng.Uniform() < 0.1) {
              const float v =
                  rng.Uniform() < 0.7
                      ? 1.0f  // one-hot lanes dominate the real encoding
                      : static_cast<float>(rng.Uniform(-1.0, 1.0));
              sx.Push(i, v);
              x.at(r, i) = v;
            }
          }
          sx.EndRow();
        }

        Matrix w(out, in), wt;
        FillRandom(w, rng);
        TransposeInto(w, wt);
        const std::vector<float> bias = RandomBias(out, rng);

        Matrix want, got;
        LinearForwardRef(x, w, bias, want);
        SparseLinearForward(sx, wt, bias, got, /*fuse_relu=*/false);
        ExpectSameMatrix(got, want);

        for (int r = 0; r < want.rows(); ++r) {
          for (int c = 0; c < want.cols(); ++c) {
            if (!(want.at(r, c) > 0.0f)) want.at(r, c) = 0.0f;
          }
        }
        SparseLinearForward(sx, wt, bias, got, /*fuse_relu=*/true);
        ExpectSameMatrix(got, want);
      }
    }
  }
}

TEST(KernelsTest, SparseForwardHandlesAllEmptyRows) {
  SparseRows sx;
  sx.Reset(16);
  for (int r = 0; r < 3; ++r) sx.EndRow();
  Matrix wt(16, 5);
  std::vector<float> bias = {1.0f, -2.0f, 0.5f, 0.0f, 3.0f};
  Matrix y;
  SparseLinearForward(sx, wt, bias, y, /*fuse_relu=*/false);
  ASSERT_EQ(y.rows(), 3);
  ASSERT_EQ(y.cols(), 5);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 5; ++c) EXPECT_EQ(y.at(r, c), bias[c]);
  }
}

TEST(KernelsTest, LinearBackwardMatchesReferenceWithZeroRows) {
  Rng rng(0x5eed6);
  for (int batch : kBatches) {
    for (int in : {1, 5, 33, 64}) {
      for (int out : {1, 5, 33, 64}) {
        Matrix x(batch, in), w(out, in), dy(batch, out);
        FillRandom(x, rng);
        FillRandom(w, rng);
        FillRandom(dy, rng);
        // ~half the gradient entries are exact zeros (the masked-ReLU
        // pattern the dy == 0 skip is tuned for), including full zero rows.
        for (int r = 0; r < batch; ++r) {
          const bool whole_row = rng.Uniform() < 0.25;
          for (int c = 0; c < out; ++c) {
            if (whole_row || rng.Uniform() < 0.5) dy.at(r, c) = 0.0f;
          }
        }

        Matrix dx_want, dw_want(out, in), dx_got, dw_got(out, in);
        FillRandom(dw_want, rng);  // both sides accumulate on identical
        dw_got = dw_want;          // nonzero starting gradients
        std::vector<float> dbias_want = RandomBias(out, rng);
        std::vector<float> dbias_got = dbias_want;

        LinearBackwardRef(x, w, dy, dx_want, dw_want, dbias_want);
        LinearBackward(x, w, dy, dx_got, dw_got, dbias_got);
        ExpectSameMatrix(dx_got, dx_want);
        ExpectSameMatrix(dw_got, dw_want);
        ExpectSameSpan(dbias_got, dbias_want);
      }
    }
  }
}

}  // namespace
}  // namespace iam::nn
