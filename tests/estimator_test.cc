#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "estimator/bayesnet.h"
#include "estimator/estimator.h"
#include "estimator/kde.h"
#include "estimator/mhist.h"
#include "estimator/mscn.h"
#include "estimator/postgres1d.h"
#include "estimator/sampling.h"
#include "estimator/spn.h"
#include "query/workload.h"
#include "util/quantiles.h"

namespace iam::estimator {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

const data::Table& Wisdm() {
  static const data::Table* table =
      new data::Table(data::MakeSynWisdm(20000, 77));
  return *table;
}

std::unique_ptr<Estimator> MakeByName(const std::string& name) {
  const data::Table& t = Wisdm();
  if (name == "sampling") {
    return std::make_unique<SamplingEstimator>(t, 0.02, 1);
  }
  if (name == "postgres") {
    return std::make_unique<Postgres1DEstimator>(
        t, Postgres1DEstimator::Options{});
  }
  if (name == "mhist") {
    MhistEstimator::Options options;
    options.num_buckets = 300;
    return std::make_unique<MhistEstimator>(t, options);
  }
  if (name == "bayesnet") {
    return std::make_unique<BayesNetEstimator>(t,
                                               BayesNetEstimator::Options{});
  }
  if (name == "kde") {
    return std::make_unique<KdeEstimator>(t, KdeEstimator::Options{});
  }
  if (name == "deepdb") {
    return std::make_unique<SpnEstimator>(t, SpnEstimator::Options{});
  }
  return nullptr;
}

class BaselineContractTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineContractTest, UnconstrainedQueryNearOne) {
  auto est = MakeByName(GetParam());
  ASSERT_NE(est, nullptr);
  query::Query q{{{.column = 2, .lo = -kInf, .hi = kInf}}};
  EXPECT_GT(est->Estimate(q), 0.9);
}

TEST_P(BaselineContractTest, ImpossiblePredicateNearZero) {
  auto est = MakeByName(GetParam());
  query::Query q{{{.column = 2, .lo = 1e9, .hi = 2e9}}};
  EXPECT_LT(est->Estimate(q), 0.01);
}

TEST_P(BaselineContractTest, EstimatesAreProbabilities) {
  auto est = MakeByName(GetParam());
  Rng rng(5);
  query::WorkloadOptions options;
  options.num_queries = 30;
  const auto queries = query::GenerateWorkload(Wisdm(), options, rng);
  for (const auto& q : queries) {
    const double s = est->Estimate(q);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_P(BaselineContractTest, ReasonableMedianAccuracy) {
  auto est = MakeByName(GetParam());
  Rng rng(6);
  query::WorkloadOptions options;
  options.num_queries = 60;
  const auto w = query::GenerateEvaluatedWorkload(Wisdm(), options, rng);
  std::vector<double> errors;
  for (size_t i = 0; i < w.queries.size(); ++i) {
    errors.push_back(query::QError(w.true_selectivities[i],
                                   est->Estimate(w.queries[i]),
                                   Wisdm().num_rows()));
  }
  const ErrorReport report = MakeErrorReport(errors);
  // Generous bound: every baseline should be within ~20x at the median on
  // this easy workload; the interesting separation shows up at the tail in
  // the benchmarks.
  EXPECT_LT(report.median, 20.0) << FormatErrorReport(report);
}

TEST_P(BaselineContractTest, PositiveModelSize) {
  auto est = MakeByName(GetParam());
  EXPECT_GT(est->SizeBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Baselines, BaselineContractTest,
                         ::testing::Values("sampling", "postgres", "mhist",
                                           "bayesnet", "kde", "deepdb"),
                         [](const auto& info) { return info.param; });

TEST(SamplingTest, FractionControlsSampleSize) {
  SamplingEstimator est(Wisdm(), 0.01, 2);
  EXPECT_NEAR(est.sample_rows(), 200u, 2u);
}

TEST(SamplingTest, ExactOnFullSample) {
  SamplingEstimator est(Wisdm(), 1.0, 3);
  query::Query q{{{.column = 0, .lo = 0.0, .hi = 0.0}}};
  EXPECT_DOUBLE_EQ(est.Estimate(q), query::TrueSelectivity(Wisdm(), q));
}

TEST(PostgresTest, IndependenceAssumptionUnderestimatesCorrelated) {
  // subject and x are strongly dependent in SynWisdm; a conjunctive query
  // hitting one subject's typical x-range shows the independence error.
  Postgres1DEstimator est(Wisdm(), Postgres1DEstimator::Options{});
  // Find subject 0's x range.
  double lo = kInf, hi = -kInf;
  for (size_t r = 0; r < Wisdm().num_rows(); ++r) {
    if (Wisdm().value(r, 0) == 0.0) {
      lo = std::min(lo, Wisdm().value(r, 2));
      hi = std::max(hi, Wisdm().value(r, 2));
    }
  }
  query::Query q{{{.column = 0, .lo = 0.0, .hi = 0.0},
                  {.column = 2, .lo = lo, .hi = hi}}};
  const double truth = query::TrueSelectivity(Wisdm(), q);
  const double estimate = est.Estimate(q);
  // The AVI estimate must multiply the two marginals.
  EXPECT_LT(estimate, truth * 1.5);
}

TEST(MhistTest, BuildsRequestedBuckets) {
  MhistEstimator::Options options;
  options.num_buckets = 64;
  MhistEstimator est(Wisdm(), options);
  EXPECT_LE(est.num_buckets(), 64);
  EXPECT_GE(est.num_buckets(), 32);
}

TEST(BayesNetTest, TreeStructureIsValid) {
  BayesNetEstimator est(Wisdm(), BayesNetEstimator::Options{});
  const auto& parents = est.parents();
  ASSERT_EQ(parents.size(), 5u);
  int roots = 0;
  for (size_t c = 0; c < parents.size(); ++c) {
    if (parents[c] < 0) {
      ++roots;
    } else {
      EXPECT_LT(parents[c], 5);
      EXPECT_NE(parents[c], static_cast<int>(c));
    }
  }
  EXPECT_EQ(roots, 1);
}

TEST(BayesNetTest, CapturesCorrelationBetterThanIndependence) {
  // Queries engineered to stress the subject→sensor correlation: a subject
  // equality conjoined with that subject's own x-range. AVI multiplies the
  // marginals and misses the dependence; the Chow-Liu tree should not.
  BayesNetEstimator bn(Wisdm(), BayesNetEstimator::Options{});
  Postgres1DEstimator pg(Wisdm(), Postgres1DEstimator::Options{});
  double bn_err = 0.0, pg_err = 0.0;
  int used = 0;
  for (double subject = 0.0; subject < 6.0 && used < 8; ++subject) {
    for (double activity = 0.0; activity < 3.0; ++activity) {
      // The (subject, activity) pair pins the sensor signature; its x
      // inter-quartile range is a thin slice of the global x distribution,
      // which is where the independence assumption breaks hardest.
      std::vector<double> xs;
      for (size_t r = 0; r < Wisdm().num_rows(); ++r) {
        if (Wisdm().value(r, 0) == subject &&
            Wisdm().value(r, 1) == activity) {
          xs.push_back(Wisdm().value(r, 2));
        }
      }
      if (xs.size() < 80) continue;
      std::sort(xs.begin(), xs.end());
      const double q25 = xs[xs.size() / 4];
      const double q75 = xs[3 * xs.size() / 4];
      query::Query q{{{.column = 0, .lo = subject, .hi = subject},
                      {.column = 1, .lo = activity, .hi = activity},
                      {.column = 2, .lo = q25, .hi = q75}}};
      const double truth = query::TrueSelectivity(Wisdm(), q);
      bn_err += query::QError(truth, bn.Estimate(q), Wisdm().num_rows());
      pg_err += query::QError(truth, pg.Estimate(q), Wisdm().num_rows());
      ++used;
    }
  }
  ASSERT_GE(used, 4);
  EXPECT_LT(bn_err, pg_err * 1.05);
}

TEST(KdeTest, BandwidthTuningDoesNotHurt) {
  KdeEstimator est(Wisdm(), KdeEstimator::Options{});
  Rng rng(10);
  query::WorkloadOptions options;
  options.num_queries = 40;
  const auto w = query::GenerateEvaluatedWorkload(Wisdm(), options, rng);
  auto total_error = [&] {
    double err = 0.0;
    for (size_t i = 0; i < w.queries.size(); ++i) {
      err += query::QError(w.true_selectivities[i], est.Estimate(w.queries[i]),
                           Wisdm().num_rows());
    }
    return err;
  };
  const double before = total_error();
  est.TuneBandwidth(w.queries, w.true_selectivities, Wisdm().num_rows());
  EXPECT_LE(total_error(), before + 1e-9);
}

TEST(SpnTest, BuildsMixedNodeStructure) {
  SpnEstimator est(Wisdm(), SpnEstimator::Options{});
  // SynWisdm has strong correlations, so the learner must produce at least
  // one sum node (row clustering) and leaves for all 5 columns somewhere.
  EXPECT_GE(est.num_sum_nodes(), 1);
  EXPECT_GE(est.num_leaves(), 5);
  EXPECT_GE(est.num_product_nodes(), 1);
}

TEST(SpnTest, UnconstrainedAndImpossible) {
  SpnEstimator est(Wisdm(), SpnEstimator::Options{});
  query::Query all{{{.column = 2, .lo = -kInf, .hi = kInf}}};
  EXPECT_GT(est.Estimate(all), 0.95);
  query::Query none{{{.column = 2, .lo = 1e9, .hi = 2e9}}};
  EXPECT_LT(est.Estimate(none), 1e-6);
}

TEST(SpnTest, ReasonableAccuracyOnWorkload) {
  SpnEstimator est(Wisdm(), SpnEstimator::Options{});
  Rng rng(31);
  query::WorkloadOptions wopts;
  wopts.num_queries = 60;
  const auto w = query::GenerateEvaluatedWorkload(Wisdm(), wopts, rng);
  std::vector<double> errors;
  for (size_t i = 0; i < w.queries.size(); ++i) {
    errors.push_back(query::QError(w.true_selectivities[i],
                                   est.Estimate(w.queries[i]),
                                   Wisdm().num_rows()));
  }
  const ErrorReport report = MakeErrorReport(errors);
  EXPECT_LT(report.median, 3.0) << FormatErrorReport(report);
}

TEST(SpnTest, IndependentColumnsCollapseToProductRoot) {
  // Two independent uniform columns: the learner should immediately split
  // columns (no sum nodes needed at the root for accuracy).
  Rng rng(32);
  data::Table t("ind");
  data::Column a{"a", data::ColumnType::kContinuous, {}};
  data::Column b{"b", data::ColumnType::kContinuous, {}};
  for (int i = 0; i < 8000; ++i) {
    a.values.push_back(rng.Uniform());
    b.values.push_back(rng.Uniform());
  }
  t.AddColumn(std::move(a));
  t.AddColumn(std::move(b));
  SpnEstimator est(t, SpnEstimator::Options{});
  EXPECT_EQ(est.num_sum_nodes(), 0);
  EXPECT_EQ(est.num_product_nodes(), 1);
  // Product of marginals is exact here.
  query::Query q{{{.column = 0, .lo = 0.0, .hi = 0.5},
                  {.column = 1, .lo = 0.0, .hi = 0.25}}};
  EXPECT_NEAR(est.Estimate(q), 0.125, 0.02);
}

TEST(MscnTest, LearnsWorkloadDistribution) {
  MscnEstimator::Options options;
  options.epochs = 40;
  MscnEstimator est(Wisdm(), options);
  Rng rng(21);
  query::WorkloadOptions wopts;
  wopts.num_queries = 600;
  const auto train = query::GenerateEvaluatedWorkload(Wisdm(), wopts, rng);
  est.Train(train.queries, train.true_selectivities);

  wopts.num_queries = 60;
  const auto test = query::GenerateEvaluatedWorkload(Wisdm(), wopts, rng);
  std::vector<double> errors;
  for (size_t i = 0; i < test.queries.size(); ++i) {
    errors.push_back(query::QError(test.true_selectivities[i],
                                   est.Estimate(test.queries[i]),
                                   Wisdm().num_rows()));
  }
  const ErrorReport report = MakeErrorReport(errors);
  EXPECT_LT(report.median, 4.0) << FormatErrorReport(report);
}

TEST(MscnTest, EstimatesAreProbabilities) {
  MscnEstimator::Options options;
  options.epochs = 5;
  MscnEstimator est(Wisdm(), options);
  Rng rng(22);
  query::WorkloadOptions wopts;
  wopts.num_queries = 100;
  const auto train = query::GenerateEvaluatedWorkload(Wisdm(), wopts, rng);
  est.Train(train.queries, train.true_selectivities);
  for (const auto& q : train.queries) {
    const double s = est.Estimate(q);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(MscnTest, BatchMatchesSingle) {
  MscnEstimator::Options options;
  options.epochs = 3;
  MscnEstimator est(Wisdm(), options);
  Rng rng(23);
  query::WorkloadOptions wopts;
  wopts.num_queries = 50;
  const auto train = query::GenerateEvaluatedWorkload(Wisdm(), wopts, rng);
  est.Train(train.queries, train.true_selectivities);
  const auto batch = est.EstimateBatch(train.queries);
  // The linear kernels dispatch on batch size; in the portable build every
  // path is bit-compatible, but under IAM_NATIVE FMA contraction can differ
  // between the batch-1 and batched paths by ULPs (DESIGN.md §10).
#ifdef IAM_NATIVE
  constexpr double kTol = 1e-6;
#else
  constexpr double kTol = 1e-9;
#endif
  for (size_t i = 0; i < train.queries.size(); ++i) {
    EXPECT_NEAR(batch[i], est.Estimate(train.queries[i]), kTol);
  }
}

TEST(DisjunctionTest, InclusionExclusion) {
  SamplingEstimator est(Wisdm(), 1.0, 4);  // full sample = exact
  query::Query a{{{.column = 0, .lo = 0.0, .hi = 0.0}}};
  query::Query b{{{.column = 0, .lo = 1.0, .hi = 1.0}}};
  const double expected = query::TrueSelectivity(Wisdm(), a) +
                          query::TrueSelectivity(Wisdm(), b);
  EXPECT_NEAR(EstimateDisjunction(est, a, b), expected, 1e-12);
}

}  // namespace
}  // namespace iam::estimator
