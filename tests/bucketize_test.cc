#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "bucketize/domain_reducer.h"
#include "bucketize/gmm_reducer.h"
#include "bucketize/laplace_reducer.h"
#include "util/random.h"

namespace iam::bucketize {
namespace {

std::vector<double> SkewedData(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = std::exp(rng.Gaussian(0.0, 1.2));
  return xs;
}

// Shared invariants for every reducer kind, run as a parameterized suite.
enum class Kind { kEquiDepth, kSpline, kUmm, kGmm, kLaplace };

std::unique_ptr<DomainReducer> MakeReducer(Kind kind,
                                           std::span<const double> data,
                                           int buckets) {
  Rng rng(99);
  switch (kind) {
    case Kind::kEquiDepth:
      return MakeEquiDepthReducer(data, buckets);
    case Kind::kSpline:
      return MakeSplineReducer(data, buckets);
    case Kind::kUmm:
      return MakeUmmReducer(data, buckets, rng);
    case Kind::kGmm: {
      gmm::Gmm1D g(buckets);
      g.InitFromData(data, rng);
      for (int it = 0; it < 20; ++it) g.EmStep(data);
      return std::make_unique<GmmReducer>(std::move(g), 5000, /*exact=*/false,
                                          123);
    }
    case Kind::kLaplace: {
      gmm::LaplaceMixture1D mix(buckets);
      mix.InitFromData(data, rng);
      for (int epoch = 0; epoch < 5; ++epoch) {
        for (size_t begin = 0; begin < data.size(); begin += 256) {
          const size_t end = std::min(data.size(), begin + 256);
          mix.SgdStep(data.subspan(begin, end - begin));
        }
      }
      return std::make_unique<LaplaceReducer>(std::move(mix));
    }
  }
  return nullptr;
}

class ReducerInvariantTest : public ::testing::TestWithParam<Kind> {};

TEST_P(ReducerInvariantTest, AssignInBucketRange) {
  const auto data = SkewedData(5000, 1);
  const auto reducer = MakeReducer(GetParam(), data, 16);
  ASSERT_NE(reducer, nullptr);
  EXPECT_GE(reducer->num_buckets(), 1);
  EXPECT_LE(reducer->num_buckets(), 16);
  for (size_t i = 0; i < data.size(); i += 37) {
    const int b = reducer->Assign(data[i]);
    EXPECT_GE(b, 0);
    EXPECT_LT(b, reducer->num_buckets());
  }
}

TEST_P(ReducerInvariantTest, RangeMassBoundsAndMonotonicity) {
  const auto data = SkewedData(5000, 2);
  const auto reducer = MakeReducer(GetParam(), data, 16);
  const auto narrow = reducer->RangeMass(1.0, 2.0);
  const auto wide = reducer->RangeMass(0.5, 4.0);
  ASSERT_EQ(static_cast<int>(narrow.size()), reducer->num_buckets());
  for (int k = 0; k < reducer->num_buckets(); ++k) {
    EXPECT_GE(narrow[k], 0.0);
    EXPECT_LE(narrow[k], 1.0);
    // Nesting: [1,2] ⊂ [0.5,4], so per-bucket mass cannot shrink. Allow
    // Monte-Carlo slack for the GMM reducer.
    EXPECT_LE(narrow[k], wide[k] + 0.02);
  }
}

TEST_P(ReducerInvariantTest, FullRangeHasFullMassWhereDataLives) {
  const auto data = SkewedData(5000, 3);
  const auto reducer = MakeReducer(GetParam(), data, 8);
  const double inf = std::numeric_limits<double>::infinity();
  const auto mass = reducer->RangeMass(-inf, inf);
  for (int k = 0; k < reducer->num_buckets(); ++k) {
    EXPECT_NEAR(mass[k], 1.0, 1e-9);
  }
}

TEST_P(ReducerInvariantTest, EmptyRangeHasZeroMass) {
  const auto data = SkewedData(5000, 4);
  const auto reducer = MakeReducer(GetParam(), data, 8);
  const auto mass = reducer->RangeMass(3.0, 2.0);  // inverted
  for (double m : mass) EXPECT_DOUBLE_EQ(m, 0.0);
}

TEST_P(ReducerInvariantTest, SizeBytesPositive) {
  const auto data = SkewedData(1000, 5);
  const auto reducer = MakeReducer(GetParam(), data, 8);
  EXPECT_GT(reducer->SizeBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllReducers, ReducerInvariantTest,
                         ::testing::Values(Kind::kEquiDepth, Kind::kSpline,
                                           Kind::kUmm, Kind::kGmm,
                                           Kind::kLaplace),
                         [](const auto& info) {
                           switch (info.param) {
                             case Kind::kEquiDepth: return "EquiDepth";
                             case Kind::kSpline: return "Spline";
                             case Kind::kUmm: return "Umm";
                             case Kind::kGmm: return "Gmm";
                             case Kind::kLaplace: return "Laplace";
                           }
                           return "Unknown";
                         });

// Representative values must land inside (or at the boundary of) the queried
// interval whenever the bucket intersects it.
TEST_P(ReducerInvariantTest, RepresentativeValueInsideInterval) {
  const auto data = SkewedData(4000, 11);
  const auto reducer = MakeReducer(GetParam(), data, 8);
  const double lo = 0.8, hi = 2.5;
  const auto mass = reducer->RangeMass(lo, hi);
  for (int k = 0; k < reducer->num_buckets(); ++k) {
    if (mass[k] <= 1e-6) continue;
    const double rep = reducer->RepresentativeValue(k, lo, hi);
    EXPECT_GE(rep, lo - 1e-9) << "bucket " << k;
    EXPECT_LE(rep, hi + 1e-9) << "bucket " << k;
  }
}

TEST(EquiDepthTest, BucketsHoldEqualShares) {
  std::vector<double> data(10000);
  Rng rng(6);
  for (double& x : data) x = rng.Uniform();
  const auto reducer = MakeEquiDepthReducer(data, 10);
  ASSERT_EQ(reducer->num_buckets(), 10);
  // Count assignments per bucket.
  std::vector<int> counts(10, 0);
  for (double x : data) ++counts[reducer->Assign(x)];
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(EquiDepthTest, HeavyHitterCollapsesGracefully) {
  // 90% of the data is the single value 5.0.
  std::vector<double> data;
  Rng rng(7);
  for (int i = 0; i < 9000; ++i) data.push_back(5.0);
  for (int i = 0; i < 1000; ++i) data.push_back(rng.Uniform(0.0, 10.0));
  const auto reducer = MakeEquiDepthReducer(data, 10);
  EXPECT_GE(reducer->num_buckets(), 1);
  const int b = reducer->Assign(5.0);
  EXPECT_GE(b, 0);
}

TEST(SplineTest, PlacesMoreKnotsWhereCdfBends) {
  // Data with a sharp mode at 0 and a long flat tail: a spline reducer
  // should isolate the mode into narrow buckets. We verify that the mass of
  // the mode's neighborhood is spread over at least 2 buckets.
  std::vector<double> data;
  Rng rng(8);
  for (int i = 0; i < 9000; ++i) data.push_back(rng.Gaussian(0.0, 0.05));
  for (int i = 0; i < 1000; ++i) data.push_back(rng.Uniform(1.0, 100.0));
  const auto reducer = MakeSplineReducer(data, 12);
  const auto mass = reducer->RangeMass(-0.2, 0.2);
  int covering = 0;
  for (double m : mass) covering += m > 0.0 ? 1 : 0;
  EXPECT_GE(covering, 2);
}

TEST(UmmTest, ClustersSeparatedModes) {
  std::vector<double> data;
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) data.push_back(rng.Gaussian(-10.0, 0.3));
  for (int i = 0; i < 5000; ++i) data.push_back(rng.Gaussian(10.0, 0.3));
  Rng umm_rng(10);
  const auto reducer = MakeUmmReducer(data, 4, umm_rng);
  // The two modes must land in different buckets.
  EXPECT_NE(reducer->Assign(-10.0), reducer->Assign(10.0));
  // A range covering only the left mode has (near) zero mass on the right
  // mode's bucket.
  const auto mass = reducer->RangeMass(-11.0, -9.0);
  EXPECT_NEAR(mass[reducer->Assign(10.0)], 0.0, 1e-9);
  EXPECT_GT(mass[reducer->Assign(-10.0)], 0.5);
}

TEST(GmmReducerTest, ExactModeMatchesErf) {
  gmm::Gmm1D g(2);
  g.SetComponent(0, 0.0, -2.0, 1.0);
  g.SetComponent(1, 0.0, 3.0, 0.5);
  GmmReducer exact(std::move(g), 10, /*exact=*/true, 1);
  const auto mass = exact.RangeMass(-3.0, 0.0);
  EXPECT_NEAR(mass[0],
              gmm::ExactRangeMass(exact.gmm(), -3.0, 0.0)[0], 1e-12);
}

TEST(GmmReducerTest, RefreshSamplesTracksUpdatedGmm) {
  gmm::Gmm1D g(1);
  g.SetComponent(0, 0.0, 0.0, 1.0);
  GmmReducer reducer(std::move(g), 20000, /*exact=*/false, 2);
  EXPECT_NEAR(reducer.RangeMass(-1.0, 1.0)[0], 0.6827, 0.02);
  // Move the component and refresh; the mass must follow.
  reducer.mutable_gmm().SetComponent(0, 0.0, 100.0, 1.0);
  reducer.RefreshSamples(3);
  EXPECT_NEAR(reducer.RangeMass(-1.0, 1.0)[0], 0.0, 0.01);
  EXPECT_NEAR(reducer.RangeMass(99.0, 101.0)[0], 0.6827, 0.02);
}

}  // namespace
}  // namespace iam::bucketize
