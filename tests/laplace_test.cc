#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "bucketize/laplace_reducer.h"
#include "core/ar_density_estimator.h"
#include "core/presets.h"
#include "data/synthetic.h"
#include "gmm/laplace.h"
#include "query/query.h"
#include "util/random.h"

namespace iam {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<double> TwoModeLaplaceData(size_t n, uint64_t seed) {
  Rng rng(seed);
  gmm::LaplaceMixture1D truth(2);
  truth.SetComponent(0, std::log(0.4), -6.0, 0.7);
  truth.SetComponent(1, std::log(0.6), 5.0, 1.2);
  std::vector<double> xs(n);
  for (double& x : xs) {
    const int k = rng.Uniform() < 0.4 ? 0 : 1;
    x = truth.SampleComponent(k, rng);
  }
  return xs;
}

TEST(LaplaceMixtureTest, SgdRecoversModes) {
  const auto data = TwoModeLaplaceData(20000, 1);
  Rng rng(2);
  gmm::LaplaceMixture1D mix(2);
  mix.InitFromData(data, rng);
  const double before = mix.MeanNegLogLikelihood(data);
  for (int epoch = 0; epoch < 30; ++epoch) {
    for (size_t begin = 0; begin < data.size(); begin += 256) {
      const size_t end = std::min(data.size(), begin + 256);
      mix.SgdStep({data.data() + begin, end - begin});
    }
  }
  EXPECT_LT(mix.MeanNegLogLikelihood(data), before);
  // Locations near the true modes (in some order).
  const double lo = std::min(mix.location(0), mix.location(1));
  const double hi = std::max(mix.location(0), mix.location(1));
  EXPECT_NEAR(lo, -6.0, 1.0);
  EXPECT_NEAR(hi, 5.0, 1.0);
}

TEST(LaplaceMixtureTest, CdfMassProperties) {
  gmm::LaplaceMixture1D mix(1);
  mix.SetComponent(0, 0.0, 2.0, 1.0);
  EXPECT_NEAR(mix.ComponentIntervalMass(0, -kInf, kInf), 1.0, 1e-12);
  EXPECT_NEAR(mix.ComponentIntervalMass(0, -kInf, 2.0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(mix.ComponentIntervalMass(0, 3.0, 1.0), 0.0);
  // Laplace(2, 1): P(|X-2| <= 1) = 1 - e^{-1}.
  EXPECT_NEAR(mix.ComponentIntervalMass(0, 1.0, 3.0), 1.0 - std::exp(-1.0),
              1e-12);
}

TEST(LaplaceMixtureTest, TruncatedMeanMatchesMonteCarlo) {
  gmm::LaplaceMixture1D mix(1);
  mix.SetComponent(0, 0.0, -1.0, 1.5);
  EXPECT_NEAR(mix.ComponentTruncatedMean(0, -kInf, kInf), -1.0, 1e-9);
  Rng rng(3);
  double sum = 0.0;
  size_t count = 0;
  for (int i = 0; i < 300000; ++i) {
    const double x = mix.SampleComponent(0, rng);
    if (x >= 0.0 && x <= 4.0) {
      sum += x;
      ++count;
    }
  }
  ASSERT_GT(count, 1000u);
  EXPECT_NEAR(mix.ComponentTruncatedMean(0, 0.0, 4.0),
              sum / static_cast<double>(count), 0.02);
}

TEST(LaplaceMixtureTest, AssignPicksNearestMode) {
  gmm::LaplaceMixture1D mix(2);
  mix.SetComponent(0, 0.0, -5.0, 1.0);
  mix.SetComponent(1, 0.0, 5.0, 1.0);
  EXPECT_EQ(mix.Assign(-4.0), 0);
  EXPECT_EQ(mix.Assign(4.0), 1);
}

TEST(LaplaceReducerTest, ReducerContract) {
  const auto data = TwoModeLaplaceData(5000, 4);
  gmm::LaplaceMixture1D mix(4);
  Rng rng(5);
  mix.InitFromData(data, rng);
  for (int epoch = 0; epoch < 10; ++epoch) {
    for (size_t begin = 0; begin < data.size(); begin += 256) {
      const size_t end = std::min(data.size(), begin + 256);
      mix.SgdStep({data.data() + begin, end - begin});
    }
  }
  bucketize::LaplaceReducer reducer(std::move(mix));
  EXPECT_TRUE(reducer.trainable());
  EXPECT_EQ(reducer.num_buckets(), 4);
  const auto full = reducer.RangeMass(-kInf, kInf);
  for (double m : full) EXPECT_NEAR(m, 1.0, 1e-12);
  for (size_t i = 0; i < data.size(); i += 97) {
    const int b = reducer.Assign(data[i]);
    EXPECT_GE(b, 0);
    EXPECT_LT(b, 4);
  }
}

TEST(LaplaceReducerTest, IamWithLaplaceMixtureWorksEndToEnd) {
  const data::Table twi = data::MakeSynTwi(8000, 6);
  core::ArEstimatorOptions opts = core::IamDefaults(8);
  opts.reducer_kind = core::ReducerKind::kLaplace;
  opts.made.hidden_sizes = {48, 48};
  opts.epochs = 6;
  opts.progressive_samples = 128;
  opts.large_domain_threshold = 200;
  core::ArDensityEstimator iam(twi, opts);
  iam.Train();
  query::Query q{{{.column = 0, .lo = 35.0, .hi = 45.0}}};
  const double truth = query::TrueSelectivity(twi, q);
  EXPECT_LT(query::QError(truth, iam.Estimate(q), twi.num_rows()), 3.0);
}

TEST(LaplaceReducerTest, SerializationRoundTrip) {
  gmm::LaplaceMixture1D mix(3);
  mix.SetComponent(0, std::log(0.2), -1.0, 0.5);
  mix.SetComponent(1, std::log(0.3), 0.0, 1.0);
  mix.SetComponent(2, std::log(0.5), 4.0, 2.0);
  bucketize::LaplaceReducer reducer(std::move(mix));

  std::stringstream stream;
  reducer.Serialize(stream);
  auto loaded = bucketize::DomainReducer::Deserialize(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->num_buckets(), 3);
  for (double x : {-1.5, 0.2, 3.0, 10.0}) {
    EXPECT_EQ((*loaded)->Assign(x), reducer.Assign(x)) << x;
  }
  const auto a = reducer.RangeMass(-1.0, 3.0);
  const auto b = (*loaded)->RangeMass(-1.0, 3.0);
  for (size_t k = 0; k < a.size(); ++k) EXPECT_NEAR(a[k], b[k], 1e-12);
}

}  // namespace
}  // namespace iam
