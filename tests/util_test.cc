#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/json.h"
#include "util/math_util.h"
#include "util/quantiles.h"
#include "util/random.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace iam {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("x");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntUnbiasedish) {
  Rng rng(2);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, 5 * std::sqrt(n * 0.1 * 0.9));
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(3);
  std::vector<double> xs(200000);
  for (double& x : xs) x = rng.Gaussian();
  const MeanVar mv = ComputeMeanVar(xs);
  EXPECT_NEAR(mv.mean, 0.0, 0.02);
  EXPECT_NEAR(mv.variance, 1.0, 0.03);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(4);
  const std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / double(n), 0.6, 0.01);
}

TEST(RngTest, CategoricalSkipsZeroWeightEntries) {
  Rng rng(5);
  const std::vector<double> w = {0.0, 1.0, 0.0, 2.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    const size_t k = rng.Categorical(w);
    EXPECT_TRUE(k == 1 || k == 3);
  }
}

TEST(RngTest, SampleWithoutReplacementDistinctSorted) {
  Rng rng(6);
  const auto sample = rng.SampleWithoutReplacement(1000, 100);
  EXPECT_EQ(sample.size(), 100u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  EXPECT_TRUE(std::adjacent_find(sample.begin(), sample.end()) ==
              sample.end());
  for (size_t s : sample) EXPECT_LT(s, 1000u);
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(7);
  const auto sample = rng.SampleWithoutReplacement(5, 5);
  EXPECT_EQ(sample, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(MathTest, LogSumExpMatchesDirect) {
  const std::vector<double> xs = {-1.0, 0.5, 2.0};
  double direct = 0.0;
  for (double x : xs) direct += std::exp(x);
  EXPECT_NEAR(LogSumExp(xs), std::log(direct), 1e-12);
}

TEST(MathTest, LogSumExpHandlesLargeValues) {
  const std::vector<double> xs = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(xs), 1000.0 + std::log(2.0), 1e-9);
}

TEST(MathTest, LogSumExpEmptyIsNegInf) {
  EXPECT_EQ(LogSumExp({}), kNegInf);
}

TEST(MathTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.959963985), 0.025, 1e-6);
}

TEST(MathTest, NormalIntervalMassSymmetric) {
  EXPECT_NEAR(NormalIntervalMass(-1.0, 1.0, 0.0, 1.0), 0.6826894921, 1e-8);
  EXPECT_NEAR(NormalIntervalMass(4.0, 6.0, 5.0, 1.0), 0.6826894921, 1e-8);
}

TEST(MathTest, SoftmaxNormalizes) {
  std::vector<double> xs = {1.0, 2.0, 3.0};
  SoftmaxInPlace(xs);
  EXPECT_NEAR(xs[0] + xs[1] + xs[2], 1.0, 1e-12);
  EXPECT_LT(xs[0], xs[1]);
  EXPECT_LT(xs[1], xs[2]);
}

TEST(MathTest, SkewnessSigns) {
  // Right-skewed sample (lognormal-ish).
  Rng rng(8);
  std::vector<double> right(20000), sym(20000);
  for (size_t i = 0; i < right.size(); ++i) {
    right[i] = std::exp(rng.Gaussian());
    sym[i] = rng.Gaussian();
  }
  EXPECT_GT(Skewness(right), 1.0);
  EXPECT_NEAR(Skewness(sym), 0.0, 0.15);
}

TEST(MathTest, PearsonCorrelation) {
  Rng rng(9);
  std::vector<double> x(10000), y(10000), z(10000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Gaussian();
    y[i] = 2.0 * x[i] + 0.1 * rng.Gaussian();
    z[i] = rng.Gaussian();
  }
  EXPECT_GT(PearsonCorrelation(x, y), 0.95);
  EXPECT_NEAR(PearsonCorrelation(x, z), 0.0, 0.05);
}

TEST(QuantilesTest, ExactQuantiles) {
  QuantileSummary s({4.0, 1.0, 3.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(s.Median(), 3.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.25), 2.0);
}

TEST(QuantilesTest, InterpolatesBetweenRanks) {
  QuantileSummary s({0.0, 1.0});
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.5);
  EXPECT_DOUBLE_EQ(s.Quantile(0.75), 0.75);
}

TEST(QuantilesTest, ErrorReportFields) {
  std::vector<double> errs(100);
  for (int i = 0; i < 100; ++i) errs[i] = i + 1.0;
  const ErrorReport r = MakeErrorReport(errs);
  EXPECT_DOUBLE_EQ(r.max, 100.0);
  EXPECT_NEAR(r.median, 50.5, 1e-9);
  EXPECT_NEAR(r.mean, 50.5, 1e-9);
  EXPECT_NEAR(r.p95, 95.05, 0.5);
  EXPECT_EQ(r.count, 100u);
}

TEST(StopwatchTest, RunsAtConstruction) {
  Stopwatch w;
  EXPECT_TRUE(w.running());
  // Monotone while running.
  const double a = w.ElapsedSeconds();
  const double b = w.ElapsedSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(StopwatchTest, PauseFreezesElapsed) {
  Stopwatch w;
  w.Pause();
  EXPECT_FALSE(w.running());
  const double frozen = w.ElapsedSeconds();
  // Burn some wall time; the paused watch must not see it. Exact equality is
  // intended: a paused watch reads only its accumulated total.
  Stopwatch wall;
  while (wall.ElapsedMillis() < 2.0) {
  }
  EXPECT_EQ(w.ElapsedSeconds(), frozen);
  // Pause is idempotent.
  w.Pause();
  EXPECT_EQ(w.ElapsedSeconds(), frozen);
}

TEST(StopwatchTest, ResumeAccumulatesAcrossSegments) {
  Stopwatch w;
  Stopwatch wall;
  while (wall.ElapsedMillis() < 1.0) {
  }
  w.Pause();
  const double first_segment = w.ElapsedSeconds();
  EXPECT_GE(first_segment, 1e-3);
  w.Resume();
  EXPECT_TRUE(w.running());
  // Resume is idempotent: a second Resume must not reset the live segment.
  w.Resume();
  wall.Restart();
  while (wall.ElapsedMillis() < 1.0) {
  }
  w.Pause();
  // Both segments accumulate.
  EXPECT_GE(w.ElapsedSeconds(), first_segment + 1e-3);
}

TEST(StopwatchTest, RestartZeroesAccumulation) {
  Stopwatch w;
  Stopwatch wall;
  while (wall.ElapsedMillis() < 2.0) {
  }
  w.Pause();
  EXPECT_GE(w.ElapsedMillis(), 2.0);
  w.Restart();
  EXPECT_TRUE(w.running());
  EXPECT_LT(w.ElapsedMillis(), 2.0);
}

TEST(StopwatchTest, UnitConversions) {
  Stopwatch w;
  w.Pause();
  const double s = w.ElapsedSeconds();
  EXPECT_DOUBLE_EQ(w.ElapsedMillis(), s * 1e3);
  EXPECT_DOUBLE_EQ(w.ElapsedMicros(), s * 1e6);
}

TEST(JsonUpsertTest, CreatesObjectFromNothing) {
  EXPECT_EQ(util::UpsertTopLevelKey("", "a", "1"), "{\"a\":1}\n");
  EXPECT_EQ(util::UpsertTopLevelKey("not json at all", "a", "[1, 2]"),
            "{\"a\":[1, 2]}\n");
}

TEST(JsonUpsertTest, AppendsNewKeyKeepingExistingBytes) {
  const std::string doc = "{\n  \"benchmarks\": [{\"name\": \"x\"}]\n}\n";
  const std::string merged = util::UpsertTopLevelKey(doc, "iam_metrics", "{}");
  EXPECT_NE(merged.find("\"benchmarks\": [{\"name\": \"x\"}]"),
            std::string::npos);
  EXPECT_NE(merged.find("\"iam_metrics\":{}"), std::string::npos);
}

TEST(JsonUpsertTest, ReplacesExistingKeyOnly) {
  const std::string doc =
      "{\"keep\": {\"nested\": \"}\"}, \"swap\": [1, {\"deep\": 2}]}";
  const std::string merged = util::UpsertTopLevelKey(doc, "swap", "\"new\"");
  // The tricky bytes — a brace inside a string, nested containers — survive.
  EXPECT_NE(merged.find("\"keep\": {\"nested\": \"}\"}"), std::string::npos);
  EXPECT_NE(merged.find("\"swap\": \"new\""), std::string::npos);
  EXPECT_EQ(merged.find("\"deep\""), std::string::npos);
  // Upserting twice never duplicates the key.
  const std::string again = util::UpsertTopLevelKey(merged, "swap", "2");
  EXPECT_EQ(again.find("\"new\""), std::string::npos);
  size_t count = 0;
  for (size_t pos = 0; (pos = again.find("\"swap\"", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(JsonUpsertTest, KeyNameInsideStringValueIsNotAKey) {
  const std::string doc = "{\"note\": \"contains \\\"target\\\" in text\"}";
  const std::string merged = util::UpsertTopLevelKey(doc, "target", "7");
  // The quoted mention must not be mistaken for the key: a real entry is
  // appended instead.
  EXPECT_NE(merged.find("\"target\":7"), std::string::npos);
  EXPECT_NE(merged.find("contains \\\"target\\\" in text"), std::string::npos);
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(util::JsonEscape("plain"), "plain");
  EXPECT_EQ(util::JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(util::JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
}

}  // namespace
}  // namespace iam
