#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "gmm/gmm1d.h"
#include "gmm/gmm2d.h"
#include "util/random.h"

namespace iam::gmm {
namespace {

// Correlated 2-D Gaussian sample.
void MakeCorrelated(size_t n, double rho, uint64_t seed,
                    std::vector<double>* xs, std::vector<double>* ys) {
  Rng rng(seed);
  xs->resize(n);
  ys->resize(n);
  for (size_t i = 0; i < n; ++i) {
    const double u = rng.Gaussian();
    const double v = rng.Gaussian();
    (*xs)[i] = u;
    (*ys)[i] = rho * u + std::sqrt(1 - rho * rho) * v;
  }
}

TEST(Gmm2DTest, SingleComponentRecoversCovariance) {
  std::vector<double> xs, ys;
  MakeCorrelated(30000, 0.8, 1, &xs, &ys);
  Gmm2D gmm(1);
  Rng rng(2);
  gmm.InitFromData(xs, ys, rng);
  for (int it = 0; it < 20; ++it) gmm.EmStep(xs, ys);
  const auto& c = gmm.component(0);
  EXPECT_NEAR(c.mean[0], 0.0, 0.05);
  EXPECT_NEAR(c.mean[1], 0.0, 0.05);
  EXPECT_NEAR(c.cov[0], 1.0, 0.05);
  EXPECT_NEAR(c.cov[2], 1.0, 0.05);
  EXPECT_NEAR(c.cov[1], 0.8, 0.05);  // the cross term 1-D GMMs cannot hold
}

TEST(Gmm2DTest, EmImprovesLikelihood) {
  std::vector<double> xs, ys;
  MakeCorrelated(8000, -0.5, 3, &xs, &ys);
  Gmm2D gmm(4);
  Rng rng(4);
  gmm.InitFromData(xs, ys, rng);
  double prev = gmm.EmStep(xs, ys);
  for (int it = 0; it < 8; ++it) {
    const double now = gmm.EmStep(xs, ys);
    EXPECT_LE(now, prev + 1e-6);
    prev = now;
  }
}

TEST(Gmm2DTest, RectangleMassMatchesEmpirical) {
  std::vector<double> xs, ys;
  MakeCorrelated(40000, 0.7, 5, &xs, &ys);
  Gmm2D gmm(1);
  Rng rng(6);
  gmm.InitFromData(xs, ys, rng);
  for (int it = 0; it < 15; ++it) gmm.EmStep(xs, ys);

  const double xlo = -0.5, xhi = 1.0, ylo = -0.3, yhi = 1.2;
  size_t hits = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] >= xlo && xs[i] <= xhi && ys[i] >= ylo && ys[i] <= yhi) ++hits;
  }
  const double empirical = static_cast<double>(hits) / xs.size();
  const double mc = gmm.RectangleMass(0, xlo, xhi, ylo, yhi, 50000, rng);
  EXPECT_NEAR(mc, empirical, 0.02);
}

TEST(Gmm2DTest, AssignIsValidAndUsesBothDims) {
  const data::Table twi = data::MakeSynTwi(6000, 7);
  const auto& lat = twi.column(0).values;
  const auto& lon = twi.column(1).values;
  Gmm2D gmm(8);
  Rng rng(8);
  gmm.InitFromData(lat, lon, rng);
  for (int it = 0; it < 15; ++it) gmm.EmStep(lat, lon);
  std::vector<int> counts(8, 0);
  for (size_t i = 0; i < lat.size(); ++i) {
    const int k = gmm.Assign(lat[i], lon[i]);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, 8);
    ++counts[k];
  }
  int populated = 0;
  for (int c : counts) populated += c > 0 ? 1 : 0;
  EXPECT_GE(populated, 3);
}

// The Section 4.2 trade-off in miniature: on correlated data a joint 2-D GMM
// fits rectangles about as well as two independent 1-D GMMs whose product
// ignores correlation — but it pays the O(d^2) covariance storage the paper
// avoids (per component: 6 doubles vs 2 x 3 doubles, and the gap widens with
// d). The paper keeps 1-D GMMs and lets the AR model carry the correlation.
TEST(Gmm2DTest, JointVsPerAttributeStorage) {
  Gmm2D joint(30);
  Gmm1D per_x(30), per_y(30);
  // Joint: 6 doubles/component. Two per-attribute models: 3 doubles each.
  EXPECT_EQ(joint.SizeBytes(), 30u * 6u * sizeof(double));
  EXPECT_EQ(per_x.SizeBytes() + per_y.SizeBytes(),
            30u * 6u * sizeof(double));
  // At d = 2 storage ties; the quadratic term is (d^2+d)/2 + d vs 2d per
  // attribute — for d = 8 the joint needs 44 doubles/component vs 16.
  const int d = 8;
  EXPECT_GT((d * d + d) / 2 + d, 2 * d);
}

TEST(Gmm2DTest, ProductOfMarginalsMissesCorrelation) {
  // Strongly correlated data: the joint 2-D model's mass of an off-diagonal
  // rectangle is far smaller than the independent product predicts.
  std::vector<double> xs, ys;
  MakeCorrelated(30000, 0.95, 9, &xs, &ys);

  Gmm2D joint(1);
  Rng rng(10);
  joint.InitFromData(xs, ys, rng);
  for (int it = 0; it < 15; ++it) joint.EmStep(xs, ys);

  Gmm1D mx(1), my(1);
  mx.InitFromData(xs, rng);
  my.InitFromData(ys, rng);
  for (int it = 0; it < 15; ++it) {
    mx.EmStep(xs);
    my.EmStep(ys);
  }

  // Rectangle in the anti-correlated quadrant: x > 1, y < -1.
  const double joint_mass =
      joint.RectangleMass(0, 1.0, 10.0, -10.0, -1.0, 50000, rng);
  const double product = mx.ComponentIntervalMass(0, 1.0, 10.0) *
                         my.ComponentIntervalMass(0, -10.0, -1.0);
  size_t hits = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] > 1.0 && ys[i] < -1.0) ++hits;
  }
  const double truth = static_cast<double>(hits) / xs.size();
  // The joint model tracks the (tiny) truth; the product overestimates badly.
  EXPECT_LT(joint_mass, product * 0.5);
  EXPECT_NEAR(joint_mass, truth, 0.01);
}

}  // namespace
}  // namespace iam::gmm
