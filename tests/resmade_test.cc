#include <cmath>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "ar/resmade.h"
#include "nn/adam.h"
#include "util/random.h"

namespace iam::ar {
namespace {

ResMadeConfig TinyConfig() {
  ResMadeConfig config;
  config.hidden_sizes = {32, 32};
  config.wildcard_prob = 0.2;
  return config;
}

TEST(ResMadeTest, WildcardTokenIsDomainSize) {
  ResMade made({3, 4}, TinyConfig(), 1);
  EXPECT_EQ(made.wildcard_token(0), 3);
  EXPECT_EQ(made.wildcard_token(1), 4);
}

// The autoregressive property: P(A_i | ...) must not depend on the values of
// columns >= i.
TEST(ResMadeTest, AutoregressiveMasking) {
  ResMade made({3, 4, 5}, TinyConfig(), 2);
  nn::Matrix p1, p2;
  // Column 1's conditional given column 0 = 2; columns 1, 2 vary wildly.
  made.ConditionalDistribution({{2, 0, 0}}, 1, p1);
  made.ConditionalDistribution({{2, 3, 4}}, 1, p2);
  ASSERT_EQ(p1.cols(), 4);
  for (int j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(p1.at(0, j), p2.at(0, j)) << "col 1 leaked later columns";
  }
  // Column 0's marginal must ignore everything.
  made.ConditionalDistribution({{0, 0, 0}}, 0, p1);
  made.ConditionalDistribution({{2, 3, 4}}, 0, p2);
  for (int j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(p1.at(0, j), p2.at(0, j));
}

TEST(ResMadeTest, ConditionalsAreDistributions) {
  ResMade made({3, 4, 5}, TinyConfig(), 3);
  nn::Matrix p;
  made.ConditionalDistribution({{1, 2, 0}, {0, 0, 0}}, 2, p);
  ASSERT_EQ(p.rows(), 2);
  ASSERT_EQ(p.cols(), 5);
  for (int r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (int j = 0; j < 5; ++j) {
      EXPECT_GE(p.at(r, j), 0.0f);
      sum += p.at(r, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(ResMadeTest, FullJointSumsToOne) {
  ResMade made({2, 3}, TinyConfig(), 4);
  double total = 0.0;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 3; ++b) {
      total += std::exp(made.LogProb({a, b}));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-5);
}

// Train on a strongly correlated two-column distribution and check the model
// recovers the dependence (this is the cross-entropy training loop test).
TEST(ResMadeTest, LearnsCorrelatedDistribution) {
  Rng rng(11);
  // P(a) uniform over {0,1,2}; b = a with prob 0.9, else uniform other.
  std::vector<std::vector<int>> data;
  for (int i = 0; i < 4000; ++i) {
    const int a = static_cast<int>(rng.UniformInt(3));
    int b = a;
    if (rng.Uniform() > 0.9) b = static_cast<int>(rng.UniformInt(3));
    data.push_back({a, b});
  }

  ResMadeConfig config = TinyConfig();
  config.wildcard_prob = 0.0;  // pure density estimation for this test
  ResMade made({3, 3}, config, 5);
  nn::Adam adam;
  made.RegisterParameters(adam);

  Rng train_rng(12);
  double loss = 0.0;
  for (int epoch = 0; epoch < 30; ++epoch) {
    for (size_t begin = 0; begin < data.size(); begin += 256) {
      const size_t end = std::min(data.size(), begin + 256);
      std::vector<std::vector<int>> batch(data.begin() + begin,
                                          data.begin() + end);
      loss = made.TrainStep(batch, adam, train_rng);
    }
  }
  // Entropy of the true distribution ~ log 3 + H(0.9-ish noise) ≈ 1.6 nats.
  EXPECT_LT(loss, 1.9);

  nn::Matrix p;
  made.ConditionalDistribution({{2, 0}}, 1, p);
  // Given a=2, b=2 should dominate.
  EXPECT_GT(p.at(0, 2), 0.7f);
  EXPECT_LT(p.at(0, 0), 0.2f);
}

TEST(ResMadeTest, WildcardInputMarginalizes) {
  Rng rng(21);
  // a uniform {0,1}; b = a (deterministic). Train with wildcard masking, then
  // P(b | a=wildcard) should be near the marginal {0.5, 0.5}.
  std::vector<std::vector<int>> data;
  for (int i = 0; i < 3000; ++i) {
    const int a = static_cast<int>(rng.UniformInt(2));
    data.push_back({a, a});
  }
  ResMadeConfig config = TinyConfig();
  config.wildcard_prob = 0.3;
  ResMade made({2, 2}, config, 6);
  nn::Adam adam;
  made.RegisterParameters(adam);
  Rng train_rng(22);
  for (int epoch = 0; epoch < 25; ++epoch) {
    for (size_t begin = 0; begin < data.size(); begin += 256) {
      const size_t end = std::min(data.size(), begin + 256);
      std::vector<std::vector<int>> batch(data.begin() + begin,
                                          data.begin() + end);
      made.TrainStep(batch, adam, train_rng);
    }
  }
  nn::Matrix p;
  made.ConditionalDistribution({{made.wildcard_token(0), 0}}, 1, p);
  EXPECT_NEAR(p.at(0, 0), 0.5, 0.1);
  // And conditioning still works.
  made.ConditionalDistribution({{1, 0}}, 1, p);
  EXPECT_GT(p.at(0, 1), 0.85f);
}

TEST(ResMadeTest, EmbeddingPathForLargeDomains) {
  ResMadeConfig config = TinyConfig();
  config.one_hot_max_domain = 8;  // force the embedding path
  config.embedding_dim = 4;
  ResMade made({100, 5}, config, 7);
  nn::Matrix p;
  made.ConditionalDistribution({{57, 0}}, 1, p);
  ASSERT_EQ(p.cols(), 5);
  double sum = 0.0;
  for (int j = 0; j < 5; ++j) sum += p.at(0, j);
  EXPECT_NEAR(sum, 1.0, 1e-5);

  // Parameter count includes the embedding table (101 x 4).
  EXPECT_GT(made.ParameterCount(), 101u * 4u);
}

TEST(ResMadeTest, ResidualConfigStillAutoregressive) {
  ResMadeConfig config;
  config.hidden_sizes = {64, 32, 32, 64};  // residual between the 32s
  config.residual = true;
  ResMade made({4, 4, 4, 4}, config, 8);
  nn::Matrix p1, p2;
  made.ConditionalDistribution({{1, 2, 0, 0}}, 2, p1);
  made.ConditionalDistribution({{1, 2, 3, 3}}, 2, p2);
  for (int j = 0; j < 4; ++j) EXPECT_FLOAT_EQ(p1.at(0, j), p2.at(0, j));
}

TEST(ResMadeTest, SerializeRoundTripPreservesDistribution) {
  Rng rng(41);
  ResMadeConfig config = TinyConfig();
  config.one_hot_max_domain = 8;  // exercise the embedding path too
  config.embedding_dim = 4;
  ResMade made({20, 3, 5}, config, 10);
  nn::Adam adam;
  made.RegisterParameters(adam);
  Rng train_rng(42);
  std::vector<std::vector<int>> batch;
  for (int i = 0; i < 256; ++i) {
    batch.push_back({static_cast<int>(rng.UniformInt(20)),
                     static_cast<int>(rng.UniformInt(3)),
                     static_cast<int>(rng.UniformInt(5))});
  }
  for (int step = 0; step < 20; ++step) made.TrainStep(batch, adam, train_rng);

  std::stringstream stream;
  made.Serialize(stream);
  auto loaded = ResMade::Deserialize(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->num_columns(), 3);
  EXPECT_EQ((*loaded)->ParameterCount(), made.ParameterCount());
  for (const std::vector<int>& tuple :
       {std::vector<int>{0, 0, 0}, {19, 2, 4}, {7, 1, 3}}) {
    EXPECT_DOUBLE_EQ((*loaded)->LogProb(tuple), made.LogProb(tuple));
  }
}

// A Context carries a per-workspace transposed-weight cache keyed by the
// model's weight version. Reusing a context across a TrainStep must pick up
// the new weights, not the stale transposed copies.
TEST(ResMadeTest, ReusedContextSeesRetrainedWeights) {
  Rng rng(51);
  ResMade made({5, 6}, TinyConfig(), 12);
  nn::Adam adam;
  made.RegisterParameters(adam);

  ResMade::Context reused;
  nn::Matrix before;
  made.ConditionalDistribution({{2, 0}}, 1, before, reused);  // warm cache

  std::vector<std::vector<int>> batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back({static_cast<int>(rng.UniformInt(5)),
                     static_cast<int>(rng.UniformInt(6))});
  }
  Rng train_rng(52);
  for (int step = 0; step < 5; ++step) made.TrainStep(batch, adam, train_rng);

  nn::Matrix stale_or_fresh, fresh;
  made.ConditionalDistribution({{2, 0}}, 1, stale_or_fresh, reused);
  ResMade::Context clean;
  made.ConditionalDistribution({{2, 0}}, 1, fresh, clean);
  ASSERT_EQ(stale_or_fresh.cols(), 6);
  bool moved = false;
  for (int j = 0; j < 6; ++j) {
    EXPECT_EQ(stale_or_fresh.at(0, j), fresh.at(0, j))
        << "reused context served stale transposed weights";
    moved = moved || stale_or_fresh.at(0, j) != before.at(0, j);
  }
  EXPECT_TRUE(moved) << "training did not change the conditional; the "
                        "invalidation check would be vacuous";
}

// Weight versions come from a process-global counter, so a context warmed on
// one model instance must also be detected as stale when reused on a
// different instance (here: a deserialized clone that then trains).
TEST(ResMadeTest, ReusedContextAcrossDeserializeIsInvalidated) {
  Rng rng(53);
  ResMade made({5, 6}, TinyConfig(), 13);

  ResMade::Context reused;
  nn::Matrix p;
  made.ConditionalDistribution({{3, 0}}, 1, p, reused);  // warm on `made`

  std::stringstream stream;
  made.Serialize(stream);
  auto loaded = ResMade::Deserialize(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Same weights, different instance: must still agree with a fresh context.
  nn::Matrix via_reused, via_clean;
  (*loaded)->ConditionalDistribution({{3, 0}}, 1, via_reused, reused);
  ResMade::Context clean;
  (*loaded)->ConditionalDistribution({{3, 0}}, 1, via_clean, clean);
  for (int j = 0; j < 6; ++j) {
    EXPECT_EQ(via_reused.at(0, j), via_clean.at(0, j));
  }

  // Now train the clone; the context warmed on its weights must refresh.
  nn::Adam adam;
  (*loaded)->RegisterParameters(adam);
  std::vector<std::vector<int>> batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back({static_cast<int>(rng.UniformInt(5)),
                     static_cast<int>(rng.UniformInt(6))});
  }
  Rng train_rng(54);
  for (int step = 0; step < 5; ++step) {
    (*loaded)->TrainStep(batch, adam, train_rng);
  }
  (*loaded)->ConditionalDistribution({{3, 0}}, 1, via_reused, reused);
  (*loaded)->ConditionalDistribution({{3, 0}}, 1, via_clean, clean);
  for (int j = 0; j < 6; ++j) {
    EXPECT_EQ(via_reused.at(0, j), via_clean.at(0, j))
        << "context survived Deserialize with stale weights";
  }
}

TEST(ResMadeTest, DeserializeRejectsGarbage) {
  std::stringstream stream;
  stream << "junk";
  EXPECT_FALSE(ResMade::Deserialize(stream).ok());
}

TEST(ResMadeTest, TrainingReducesLoss) {
  Rng rng(31);
  std::vector<std::vector<int>> data;
  for (int i = 0; i < 2000; ++i) {
    const int a = rng.Uniform() < 0.8 ? 0 : 1;
    const int b = a == 0 ? static_cast<int>(rng.UniformInt(2))
                         : 2 + static_cast<int>(rng.UniformInt(2));
    data.push_back({a, b});
  }
  ResMade made({2, 4}, TinyConfig(), 9);
  nn::Adam adam;
  made.RegisterParameters(adam);
  Rng train_rng(32);
  const double first = made.TrainStep(data, adam, train_rng);
  double last = first;
  for (int step = 0; step < 60; ++step) {
    last = made.TrainStep(data, adam, train_rng);
  }
  EXPECT_LT(last, first);
}

// Property sweep: the autoregressive invariants must hold across
// architectures — varying depth, width, residual wiring, and the one-hot vs
// embedding input encoding.
struct ArchCase {
  std::vector<int> hidden;
  bool residual;
  int one_hot_max;
  const char* label;
};

class ResMadeArchTest : public ::testing::TestWithParam<ArchCase> {};

TEST_P(ResMadeArchTest, AutoregressiveAndNormalizedEverywhere) {
  const ArchCase& arch = GetParam();
  ResMadeConfig config;
  config.hidden_sizes = arch.hidden;
  config.residual = arch.residual;
  config.one_hot_max_domain = arch.one_hot_max;
  config.embedding_dim = 8;
  ResMade made({6, 40, 4, 9}, config, 77);

  Rng rng(78);
  nn::Matrix p1, p2;
  for (int col = 0; col < 4; ++col) {
    // Two inputs agreeing on columns < col and differing after.
    std::vector<int> a = {1, 17, 2, 3};
    std::vector<int> b = a;
    for (int c = col; c < 4; ++c) {
      b[c] = static_cast<int>(rng.UniformInt(made.domain_size(c)));
    }
    made.ConditionalDistribution({a}, col, p1);
    made.ConditionalDistribution({b}, col, p2);
    double sum = 0.0;
    for (int j = 0; j < made.domain_size(col); ++j) {
      EXPECT_FLOAT_EQ(p1.at(0, j), p2.at(0, j))
          << arch.label << " col " << col << " leaked a later column";
      EXPECT_GE(p1.at(0, j), 0.0f);
      sum += p1.at(0, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5) << arch.label;
  }
}

TEST_P(ResMadeArchTest, OneTrainStepRuns) {
  const ArchCase& arch = GetParam();
  ResMadeConfig config;
  config.hidden_sizes = arch.hidden;
  config.residual = arch.residual;
  config.one_hot_max_domain = arch.one_hot_max;
  config.embedding_dim = 8;
  ResMade made({6, 40, 4, 9}, config, 79);
  nn::Adam adam;
  made.RegisterParameters(adam);
  Rng rng(80);
  std::vector<std::vector<int>> batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back({static_cast<int>(rng.UniformInt(6)),
                     static_cast<int>(rng.UniformInt(40)),
                     static_cast<int>(rng.UniformInt(4)),
                     static_cast<int>(rng.UniformInt(9))});
  }
  const double loss = made.TrainStep(batch, adam, rng);
  EXPECT_TRUE(std::isfinite(loss)) << arch.label;
  EXPECT_GT(loss, 0.0) << arch.label;
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, ResMadeArchTest,
    ::testing::Values(
        ArchCase{{32}, false, 96, "single_layer"},
        ArchCase{{64, 64}, true, 96, "residual_pair"},
        ArchCase{{256, 128, 128, 256}, true, 96, "paper_arch"},
        ArchCase{{32, 32}, true, 8, "embedded_inputs"},
        ArchCase{{48, 24, 48}, false, 16, "mixed_width_no_residual"}),
    [](const auto& info) { return info.param.label; });

}  // namespace
}  // namespace iam::ar
