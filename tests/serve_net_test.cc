// End-to-end tests of the estimator service over real loopback sockets.
// Everything here carries the ctest label "net" (see tests/CMakeLists.txt):
// the quick sanitizer gates exclude it, the default configs and the TSan
// serve gate run it.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "adapt/controller.h"
#include "adapt/corrector.h"
#include "adapt/feedback.h"
#include "core/ar_density_estimator.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "query/parser.h"
#include "serve/client.h"
#include "serve/demo.h"
#include "serve/model_registry.h"
#include "serve/server.h"

namespace iam::serve {
namespace {

constexpr char kPredicate[] = "latitude >= 35 AND longitude <= -100";

ModelRegistry& SharedRegistry() {
  static ModelRegistry registry(TrainDemoEstimator(1200, 11), "");
  return registry;
}

Client ConnectedClient(const EstimatorServer& server) {
  Client client;
  const Status connected = client.Connect("127.0.0.1", server.port());
  EXPECT_TRUE(connected.ok()) << connected.ToString();
  return client;
}

// Raw client socket for the wire-level tests (arbitrary byte chunking, frames
// the Client class would never send). rcvbuf_bytes > 0 shrinks SO_RCVBUF
// before connecting, which pins the advertised window small — the lever that
// forces the server into short writes.
int RawConnect(int port, int rcvbuf_bytes = 0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  if (rcvbuf_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                 sizeof(rcvbuf_bytes));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  return fd;
}

void SendAll(int fd, const char* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    ASSERT_GT(w, 0);
    sent += static_cast<size_t>(w);
  }
}

uint64_t GlobalCounterValue(const std::string& name) {
  for (const auto& [counter_name, value] :
       obs::MetricRegistry::Global().Snapshot().counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

TEST(ServeEndToEndTest, EstimateMatchesDirectCall) {
  EstimatorServer server(SharedRegistry(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client = ConnectedClient(server);

  const auto parsed =
      query::ParsePredicates(SharedRegistry().Current()->schema, kPredicate);
  ASSERT_TRUE(parsed.ok());
  const double direct =
      SharedRegistry().Current()->estimator->Estimate(*parsed);

  const auto reply = client.Estimate(kPredicate);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply->overloaded);
  // A lone request forms a batch of one, which is seeded exactly like the
  // library's Estimate(): the wire adds no numeric drift.
  EXPECT_EQ(reply->selectivity, direct);
  EXPECT_EQ(reply->model_version, SharedRegistry().Current()->version);
  server.Shutdown();
}

TEST(ServeEndToEndTest, ParseErrorReturnsTypedError) {
  EstimatorServer server(SharedRegistry(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client = ConnectedClient(server);

  const auto reply = client.Estimate("no_such_column = 1");
  EXPECT_FALSE(reply.ok());
  // The connection survives a bad request.
  const auto ok_reply = client.Estimate(kPredicate);
  EXPECT_TRUE(ok_reply.ok()) << ok_reply.status().ToString();
  server.Shutdown();
}

TEST(ServeEndToEndTest, MetricsFrameExportsPrometheus) {
  EstimatorServer server(SharedRegistry(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client = ConnectedClient(server);
  ASSERT_TRUE(client.Estimate(kPredicate).ok());

  const auto text = client.Metrics();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("# TYPE iam_serve_accepted_total counter"),
            std::string::npos);
  EXPECT_NE(text->find("iam_serve_batch_size"), std::string::npos);
  server.Shutdown();
}

// --- kQueryLog wire surface (DESIGN.md §17). --------------------------------

TEST(ServeQueryLogTest, WireFrameReturnsRecordsAndHonorsFilters) {
  EstimatorServer server(SharedRegistry(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client = ConnectedClient(server);

  obs::QueryLog& log = obs::QueryLog::Global();
  const uint64_t appended_before = log.Appended();
  constexpr int kQueries = 3;
  for (int i = 0; i < kQueries; ++i) {
    const auto reply = client.Estimate(kPredicate);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_FALSE(reply->overloaded);
  }
  const uint64_t appended = appended_before + kQueries;
  ASSERT_EQ(log.Appended(), appended);

  // Unfiltered pull: every buffered record, plus the ring totals.
  const auto json = client.QueryLog();
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_EQ(json->front(), '{');
  EXPECT_NE(json->find("\"records\":[{\"seq\":"), std::string::npos);
  EXPECT_NE(json->find("\"appended\":" + std::to_string(appended)),
            std::string::npos);
  EXPECT_NE(json->find("\"capacity\":"), std::string::npos);
  size_t record_count = 0;
  for (size_t pos = json->find("\"seq\":"); pos != std::string::npos;
       pos = json->find("\"seq\":", pos + 1)) {
    ++record_count;
  }
  EXPECT_EQ(record_count, std::min<uint64_t>(appended, log.capacity()));

  // last=1 returns exactly the newest record.
  const auto last1 = client.QueryLog("last=1");
  ASSERT_TRUE(last1.ok()) << last1.status().ToString();
  EXPECT_NE(last1->find("\"records\":[{\"seq\":" + std::to_string(appended)),
            std::string::npos)
      << *last1;
  EXPECT_EQ(last1->find("\"seq\":", last1->find("\"seq\":") + 1),
            std::string::npos);

  // An impossible latency floor filters everything out but keeps the shape.
  const auto none = client.QueryLog("min_ms=1e9");
  ASSERT_TRUE(none.ok()) << none.status().ToString();
  EXPECT_NE(none->find("\"records\":[]"), std::string::npos) << *none;
  server.Shutdown();
}

// Satellite S1: the kMetrics scrape publishes the event-loop and ring gauges
// refreshed in the same handler as the snapshot, so one scrape is one
// consistent view.
TEST(ServeQueryLogTest, MetricsScrapeIncludesLoopAndRingGauges) {
  EstimatorServer server(SharedRegistry(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client = ConnectedClient(server);
  ASSERT_TRUE(client.Estimate(kPredicate).ok());

  const auto text = client.Metrics();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  // The scraping connection itself is open while the handler runs.
  EXPECT_NE(text->find("iam_serve_open_connections 1\n"), std::string::npos);
  EXPECT_NE(text->find("iam_serve_queue_depth{shard=\"0\"} "),
            std::string::npos);
  EXPECT_NE(text->find("iam_querylog_appended "), std::string::npos);
  EXPECT_NE(text->find("iam_querylog_buffered "), std::string::npos);
  EXPECT_NE(text->find("iam_querylog_capacity 4096\n"), std::string::npos);
  EXPECT_NE(text->find("iam_serve_query_total_seconds_bucket{shard=\"0\","),
            std::string::npos);
  server.Shutdown();
}

TEST(ServeEndToEndTest, OverloadedServerFastRejects) {
  ServerOptions options;
  options.batcher.queue_capacity = 0;  // every request is one too many
  EstimatorServer server(SharedRegistry(), options);
  ASSERT_TRUE(server.Start().ok());
  Client client = ConnectedClient(server);
  const auto reply = client.Estimate(kPredicate);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->overloaded);
  server.Shutdown();
}

TEST(ServeEndToEndTest, SwapViaControlFrame) {
  // A private registry: this test moves the served version forward.
  ModelRegistry registry(TrainDemoEstimator(1200, 11), "");
  EstimatorServer server(registry, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client = ConnectedClient(server);

  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "iam_serve_swap_model.iam").string();
  ASSERT_TRUE(registry.Current()->estimator->Save(path).ok());

  const auto version = client.Swap(path);
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  EXPECT_EQ(*version, 2u);

  const auto bad = client.Swap("/nonexistent/model.iam");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(registry.Current()->version, 2u);  // failed swap kept serving

  const auto reply = client.Estimate(kPredicate);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->model_version, 2u);
  server.Shutdown();
  std::remove(path.c_str());
}

TEST(ServeEndToEndTest, ShutdownFrameRequestsDrain) {
  EstimatorServer server(SharedRegistry(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.shutdown_requested());
  Client client = ConnectedClient(server);
  ASSERT_TRUE(client.RequestShutdown().ok());
  EXPECT_TRUE(server.shutdown_requested());
  server.Shutdown();
  // Drained: the listener is gone and queued work was answered before the
  // batcher stopped.
  Client late;
  EXPECT_FALSE(late.Connect("127.0.0.1", server.port()).ok());
}

// The concurrency test the TSan serve gate runs: clients hammer the server
// while the model is hot-swapped mid-burst. No accepted request may be lost,
// and every response must come from exactly one of the two generations.
TEST(ServeSwapTest, HotSwapUnderLoadLosesNothing) {
  ModelRegistry registry(TrainDemoEstimator(1200, 11), "");
  ServerOptions options;
  options.batcher.max_delay_s = 1e-4;  // many small batches -> many snapshots
  EstimatorServer server(registry, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 40;
  std::unique_ptr<core::ArDensityEstimator> next =
      TrainDemoEstimator(1200, 12);

  std::atomic<int> failures{0};
  std::atomic<int> started{0};
  std::atomic<bool> bad_version{false};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      Client client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        failures.fetch_add(kRequestsPerClient);
        return;
      }
      started.fetch_add(1);
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const auto reply = client.Estimate(kPredicate);
        if (!reply.ok() || reply->overloaded) {
          failures.fetch_add(1);
          continue;
        }
        if (reply->model_version != 1 && reply->model_version != 2) {
          bad_version.store(true);
        }
      }
    });
  }
  // Swap once the burst is in full flight.
  while (started.load() < kClients) std::this_thread::yield();
  const uint64_t v2 = registry.Swap(std::move(next), "swapped");
  EXPECT_EQ(v2, 2u);

  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_FALSE(bad_version.load());

  // After the swap every new request answers from the new generation.
  Client client = ConnectedClient(server);
  const auto reply = client.Estimate(kPredicate);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->model_version, 2u);
  server.Shutdown();
}

// --- Wire-level event-loop behavior. ----------------------------------------

// The incremental decoder must reassemble a frame arriving in any two chunks.
// Splitting one request at every byte boundary (with a pause so the loop
// observes the partial frame) covers header/payload splits exhaustively; the
// final dribble sends a frame one byte per send().
TEST(ServePipelineTest, FramesSurviveEveryByteBoundarySplit) {
  EstimatorServer server(SharedRegistry(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  const auto parsed =
      query::ParsePredicates(SharedRegistry().Current()->schema, kPredicate);
  ASSERT_TRUE(parsed.ok());
  const double direct =
      SharedRegistry().Current()->estimator->Estimate(*parsed);

  const std::string wire = EncodeFrame({FrameType::kEstimate, kPredicate});
  const int fd = RawConnect(server.port());
  for (size_t split = 1; split < wire.size(); ++split) {
    SendAll(fd, wire.data(), split);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    SendAll(fd, wire.data() + split, wire.size() - split);
    Frame response;
    ASSERT_TRUE(ReadFrame(fd, &response).ok()) << "split " << split;
    ASSERT_EQ(response.type, FrameType::kEstimateOk) << response.payload;
    double selectivity = -1.0;
    uint64_t version = 0;
    ASSERT_TRUE(
        DecodeEstimatePayload(response.payload, &selectivity, &version).ok());
    EXPECT_EQ(selectivity, direct) << "split " << split;
  }
  for (const char byte : wire) SendAll(fd, &byte, 1);
  Frame response;
  ASSERT_TRUE(ReadFrame(fd, &response).ok());
  EXPECT_EQ(response.type, FrameType::kEstimateOk);
  ::close(fd);
  server.Shutdown();
}

// Pipelining ordering contract: responses come back in submission order even
// when request kinds complete through different paths (shard worker, inline
// error, inline metrics). The unknown-type frames echo their type number, so
// each response is attributable to its request.
TEST(ServePipelineTest, InterleavedResponsesArriveInSubmissionOrder) {
  EstimatorServer server(SharedRegistry(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  const int fd = RawConnect(server.port());

  std::string wire;
  AppendFrame(&wire, {FrameType::kEstimate, kPredicate});
  AppendFrame(&wire, {static_cast<FrameType>(42), ""});
  AppendFrame(&wire, {FrameType::kMetrics, ""});
  AppendFrame(&wire, {static_cast<FrameType>(43), ""});
  AppendFrame(&wire, {FrameType::kEstimate, kPredicate});
  SendAll(fd, wire.data(), wire.size());

  Frame responses[5];
  for (Frame& response : responses) {
    ASSERT_TRUE(ReadFrame(fd, &response).ok());
  }
  EXPECT_EQ(responses[0].type, FrameType::kEstimateOk);
  EXPECT_EQ(responses[1].type, FrameType::kError);
  EXPECT_NE(responses[1].payload.find("unknown frame type 42"),
            std::string::npos);
  EXPECT_EQ(responses[2].type, FrameType::kOk);
  EXPECT_NE(responses[2].payload.find("# TYPE"), std::string::npos);
  EXPECT_EQ(responses[3].type, FrameType::kError);
  EXPECT_NE(responses[3].payload.find("unknown frame type 43"),
            std::string::npos);
  EXPECT_EQ(responses[4].type, FrameType::kEstimateOk);
  ::close(fd);
  server.Shutdown();
}

// Short-write recovery: a client with a tiny receive buffer pipelines many
// kMetrics requests (multi-KB responses) without reading. The server's
// non-blocking sends hit EAGAIN, park on EPOLLOUT, and must resume cleanly —
// every response intact and in order once the client finally reads.
TEST(ServePipelineTest, ShortWritesOnResponsePathRecover) {
  EstimatorServer server(SharedRegistry(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  const int fd = RawConnect(server.port(), /*rcvbuf_bytes=*/2048);

  constexpr int kRequests = 256;
  std::string wire;
  for (int i = 0; i < kRequests; ++i) {
    AppendFrame(&wire, {FrameType::kMetrics, ""});
  }
  SendAll(fd, wire.data(), wire.size());
  // Give the server time to answer into the stalled socket.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  for (int i = 0; i < kRequests; ++i) {
    Frame response;
    ASSERT_TRUE(ReadFrame(fd, &response).ok()) << "response " << i;
    ASSERT_EQ(response.type, FrameType::kOk) << "response " << i;
    EXPECT_NE(response.payload.find("# TYPE"), std::string::npos);
  }
  // The stalled window forced at least one partial write.
  EXPECT_GT(GlobalCounterValue("iam_serve_partial_writes_total"), 0u);
  ::close(fd);
  server.Shutdown();
}

// --- Sharded serving. -------------------------------------------------------

TEST(ServeShardTest, SoloRequestsBitExactAcrossShards) {
  // One replica per shard: every shard worker owns a clone, and clones are
  // bit-faithful (serialize round trip), so a solo request answers
  // identically no matter which shard's connection carried it.
  ModelRegistry registry(TrainDemoEstimator(1200, 11), "", 1, 4);
  ServerOptions options;
  options.num_shards = 4;
  EstimatorServer server(registry, options);
  ASSERT_TRUE(server.Start().ok());

  const auto parsed =
      query::ParsePredicates(registry.Current()->schema, kPredicate);
  ASSERT_TRUE(parsed.ok());
  const double direct = registry.Current()->estimator->Estimate(*parsed);

  // Connections take home shards round-robin: eight connections cover every
  // shard twice.
  for (int c = 0; c < 8; ++c) {
    Client client = ConnectedClient(server);
    const auto reply = client.Estimate(kPredicate);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_FALSE(reply->overloaded);
    EXPECT_EQ(reply->selectivity, direct) << "connection " << c;
  }
  server.Shutdown();
}

// The multi-shard variant of the TSan-gated swap test: concurrent clients
// spread over two shards (two model replicas) while the generation swaps
// mid-burst. Zero lost requests, every answer from generation 1 or 2.
TEST(ServeSwapTest, HotSwapUnderLoadAcrossShardsLosesNothing) {
  ModelRegistry registry(TrainDemoEstimator(1200, 11), "", 1, 2);
  ServerOptions options;
  options.num_shards = 2;
  options.batcher.max_delay_s = 1e-4;
  EstimatorServer server(registry, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 40;
  std::unique_ptr<core::ArDensityEstimator> next =
      TrainDemoEstimator(1200, 12);

  std::atomic<int> failures{0};
  std::atomic<int> started{0};
  std::atomic<bool> bad_version{false};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      Client client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        failures.fetch_add(kRequestsPerClient);
        return;
      }
      started.fetch_add(1);
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const auto reply = client.Estimate(kPredicate);
        if (!reply.ok() || reply->overloaded) {
          failures.fetch_add(1);
          continue;
        }
        if (reply->model_version != 1 && reply->model_version != 2) {
          bad_version.store(true);
        }
      }
    });
  }
  while (started.load() < kClients) std::this_thread::yield();
  const uint64_t v2 = registry.Swap(std::move(next), "swapped");
  EXPECT_EQ(v2, 2u);

  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_FALSE(bad_version.load());
  server.Shutdown();
}

// Regressions promoted from fuzz/fuzz_frame_decoder.cc (DESIGN.md §16):
// malformed framing from a raw socket must close exactly that connection —
// cleanly, with no allocation driven by the adversarial header — while the
// server keeps serving everyone else. The mirror corpus inputs live in
// fuzz/corpus/frame_decoder/.

// Reads until the peer closes; returns the number of bytes drained.
size_t DrainUntilEof(int fd) {
  size_t drained = 0;
  char buffer[256];
  ssize_t r;
  while ((r = ::read(fd, buffer, sizeof(buffer))) > 0) {
    drained += static_cast<size_t>(r);
  }
  EXPECT_EQ(r, 0) << "expected orderly close, got error";
  return drained;
}

void ExpectStillServing(const EstimatorServer& server) {
  Client client = ConnectedClient(server);
  const auto reply = client.Estimate(kPredicate);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_GE(reply->selectivity, 0.0);
}

TEST(AdversarialFrameRegressionTest, OversizedHeaderClosesConnection) {
  EstimatorServer server(SharedRegistry(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  const int fd = RawConnect(server.port());
  // 0xffffffff declared frame length: the decoder must reject the header
  // outright rather than buffer toward 4 GiB.
  const std::string header(4, '\xff');
  SendAll(fd, header.data(), header.size());
  DrainUntilEof(fd);
  ::close(fd);
  ExpectStillServing(server);
  server.Shutdown();
}

TEST(AdversarialFrameRegressionTest, ZeroLengthFrameClosesConnection) {
  EstimatorServer server(SharedRegistry(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  const int fd = RawConnect(server.port());
  const std::string header(4, '\0');
  SendAll(fd, header.data(), header.size());
  DrainUntilEof(fd);
  ::close(fd);
  ExpectStillServing(server);
  server.Shutdown();
}

TEST(AdversarialFrameRegressionTest, TruncatedFrameHangupLeavesServerUp) {
  EstimatorServer server(SharedRegistry(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  const int fd = RawConnect(server.port());
  // A complete header promising 100 bytes, then only 10, then hangup: the
  // half-frame must be discarded with the connection, poisoning nothing.
  const std::string wire =
      EncodeFrame({FrameType::kEstimate, std::string(99, 'x')});
  SendAll(fd, wire.data(), 14);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ::close(fd);
  ExpectStillServing(server);
  server.Shutdown();
}

TEST(AdversarialFrameRegressionTest, GarbageAfterValidFrameKillsConnection) {
  EstimatorServer server(SharedRegistry(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  const int fd = RawConnect(server.port());
  // A valid request followed by a malformed header in one burst. Malformed
  // framing is a protocol violation that kills the connection immediately —
  // buffered requests on it are dropped, not answered — but the rest of the
  // server must be untouched.
  std::string burst = EncodeFrame({FrameType::kEstimate, kPredicate});
  burst.append(4, '\xff');
  SendAll(fd, burst.data(), burst.size());
  DrainUntilEof(fd);
  ::close(fd);
  ExpectStillServing(server);
  server.Shutdown();
}

// --- Online adaptation over the wire (DESIGN.md §18). ------------------------

TEST(ServeAdaptTest, FeedbackWithoutAdaptationAnswersTypedError) {
  EstimatorServer server(SharedRegistry(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client = ConnectedClient(server);
  const auto ack = client.Feedback("seq=1 actual=0.5");
  EXPECT_FALSE(ack.ok());
  EXPECT_EQ(ack.status().code(), StatusCode::kInternal);
  // The connection survives; so does the append path's rejection.
  EXPECT_FALSE(client.AppendData("cols=2\n1,2\n").ok());
  EXPECT_TRUE(client.Estimate(kPredicate).ok());
  server.Shutdown();
}

TEST(ServeAdaptTest, FeedbackRoundTripUpdatesCorrector) {
  ModelRegistry registry(TrainDemoEstimator(800, 5), "");
  adapt::AdaptOptions adapt_options;
  adapt_options.trigger_p90_qerror = 0.0;  // corrector only
  adapt::AdaptController controller(registry, adapt_options);
  ServerOptions options;
  options.adapt = &controller;
  EstimatorServer server(registry, options);
  ASSERT_TRUE(server.Start().ok());
  Client client = ConnectedClient(server);

  // Serve one estimate, resolve its query-log record by sequence number,
  // then feed back a truth 4x the served value.
  const auto reply = client.Estimate(kPredicate);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  const uint64_t seq = obs::QueryLog::Global().Appended();
  const auto rec = obs::QueryLog::Global().Find(seq);
  ASSERT_TRUE(rec.has_value());
  ASSERT_EQ(rec->selectivity, reply->selectivity);

  const double actual = std::min(1.0, reply->selectivity * 4.0);
  const auto ack = client.Feedback("seq=" + std::to_string(seq) + " actual=" +
                                   std::to_string(actual));
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(*ack, "queued");
  controller.Flush();
  EXPECT_EQ(controller.FeedbackProcessed(), 1u);
  EXPECT_GT(controller.corrector().MultiplierForRegion(rec->region_key), 1.0);

  // The corrected region now answers higher than the raw model did.
  const auto corrected = client.Estimate(kPredicate);
  ASSERT_TRUE(corrected.ok());
  EXPECT_GT(corrected->selectivity, reply->selectivity);

  // Inline feedback (no query-log reference) works on the same connection,
  // and the metrics scrape exports the adapt family in one snapshot.
  const auto inline_ack =
      client.Feedback("actual=0.5 where " + std::string(kPredicate));
  ASSERT_TRUE(inline_ack.ok()) << inline_ack.status().ToString();
  controller.Flush();
  EXPECT_EQ(controller.FeedbackProcessed(), 2u);
  const auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("iam_adapt_feedback_total"), std::string::npos);
  EXPECT_NE(metrics->find("iam_adapt_corrector_generation"),
            std::string::npos);
  server.Shutdown();
}

TEST(AdversarialFrameRegressionTest, TruncatedFeedbackFrameLeavesServerUp) {
  ModelRegistry registry(TrainDemoEstimator(800, 5), "");
  adapt::AdaptOptions adapt_options;
  adapt_options.trigger_p90_qerror = 0.0;
  adapt::AdaptController controller(registry, adapt_options);
  ServerOptions options;
  options.adapt = &controller;
  EstimatorServer server(registry, options);
  ASSERT_TRUE(server.Start().ok());

  // A kFeedback frame promising 60 payload bytes, truncated mid-payload.
  const int fd = RawConnect(server.port());
  const std::string wire =
      EncodeFrame({FrameType::kFeedback, std::string(59, 'a')});
  SendAll(fd, wire.data(), 12);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ::close(fd);
  ExpectStillServing(server);

  // A malformed-but-complete feedback payload answers kError and keeps the
  // connection; an oversized header on the same socket then kills it.
  const int fd2 = RawConnect(server.port());
  const std::string bad =
      EncodeFrame({FrameType::kFeedback, "actual=banana"});
  SendAll(fd2, bad.data(), bad.size());
  Frame response;
  ASSERT_TRUE(ReadFrame(fd2, &response).ok());
  EXPECT_EQ(response.type, FrameType::kError);
  const std::string oversized(4, '\xff');
  SendAll(fd2, oversized.data(), oversized.size());
  DrainUntilEof(fd2);
  ::close(fd2);
  ExpectStillServing(server);
  server.Shutdown();
}

TEST(ServeAdaptTest, CorrectorStateIsDeterministicAcrossShardCounts) {
  // Identical feedback sequences against identical models must produce
  // identical corrector state whatever the serving parallelism: corrector
  // updates are applied by one adaptation thread in arrival order, and
  // inline feedback estimates on replica 0, which every shard count loads
  // from the same serialized bytes.
  namespace fs = std::filesystem;
  const fs::path path =
      fs::temp_directory_path() / "iam_adapt_determinism_model.iam";
  ASSERT_TRUE(TrainDemoEstimator(800, 5)->Save(path.string()).ok());

  const std::vector<std::string> predicates = DemoPredicates(12, 41);
  std::vector<uint64_t> digests;
  for (const int shards : {1, 2, 8}) {
    auto loaded = core::ArDensityEstimator::Load(path.string());
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ModelRegistry registry(std::move(loaded.value()), path.string(), 1,
                           shards);
    adapt::AdaptOptions adapt_options;
    adapt_options.trigger_p90_qerror = 0.0;
    adapt::AdaptController controller(registry, adapt_options);
    ServerOptions options;
    options.adapt = &controller;
    options.num_shards = shards;
    EstimatorServer server(registry, options);
    ASSERT_TRUE(server.Start().ok());
    Client client = ConnectedClient(server);
    for (size_t i = 0; i < predicates.size(); ++i) {
      adapt::FeedbackPayload feedback;
      feedback.actual = 0.05 + 0.07 * static_cast<double>(i % 8);
      feedback.predicates = predicates[i];
      const auto ack =
          client.Feedback(adapt::EncodeFeedbackPayload(feedback));
      ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    }
    controller.Flush();
    EXPECT_EQ(controller.FeedbackProcessed(), predicates.size());
    digests.push_back(controller.corrector().StateDigest());
    server.Shutdown();
  }
  std::error_code ec;
  fs::remove(path, ec);
  ASSERT_EQ(digests.size(), 3u);
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]);
}

// The adaptation analogue of HotSwapUnderLoadAcrossShardsLosesNothing, and
// the TSan serve gate's closed-loop race: pipelined estimate load across two
// shards while concurrent feedback drives the corrector and a deliberately
// low drift trigger forces a background retrain-and-swap mid-burst. Zero
// lost requests, and the corrector generation must land coherent with the
// registry version.
TEST(ServeAdaptTest, FeedbackRetrainSwapUnderLoadLosesNothing) {
  ModelRegistry registry(TrainDemoEstimator(800, 5), "", 1, 2);
  adapt::AdaptOptions adapt_options;
  adapt_options.trigger_p90_qerror = 1.5;
  adapt_options.window = 16;
  adapt_options.min_window_fill = 8;
  adapt_options.min_feedback_between_retrains = 8;
  adapt_options.min_retrain_rows = 256;
  adapt_options.retrain_epochs = 1;
  adapt::AdaptController controller(registry, adapt_options);
  ServerOptions options;
  options.adapt = &controller;
  options.num_shards = 2;
  options.batcher.max_delay_s = 1e-4;
  EstimatorServer server(registry, options);
  ASSERT_TRUE(server.Start().ok());

  // Seed the retrain reservoir over the wire.
  {
    Client client = ConnectedClient(server);
    const data::Table shifted = ShiftedDemoTable(512, 11, 1.5);
    adapt::AppendPayload append;
    append.cols = shifted.num_columns();
    for (size_t r = 0; r < shifted.num_rows(); ++r) {
      for (int c = 0; c < shifted.num_columns(); ++c) {
        append.values.push_back(shifted.value(r, c));
      }
    }
    const auto ack = client.AppendData(adapt::EncodeAppendPayload(append));
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  }

  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> load;
  load.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    load.emplace_back([&] {
      Client client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        failures.fetch_add(kRequestsPerClient);
        return;
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const auto reply = client.Estimate(kPredicate);
        if (!reply.ok() || reply->overloaded) failures.fetch_add(1);
      }
    });
  }
  // Feedback runs concurrently with the load: systematically wrong
  // estimates trip the drift trigger while estimates are in flight.
  std::thread feedback([&] {
    Client client;
    if (!client.Connect("127.0.0.1", server.port()).ok()) {
      failures.fetch_add(1);
      return;
    }
    const std::vector<std::string> predicates = DemoPredicates(24, 43);
    for (const std::string& text : predicates) {
      adapt::FeedbackPayload payload;
      payload.actual = 0.9;
      payload.predicates = text;
      const auto ack =
          client.Feedback(adapt::EncodeFeedbackPayload(payload));
      if (!ack.ok()) failures.fetch_add(1);
    }
  });
  for (std::thread& t : load) t.join();
  feedback.join();
  controller.Flush();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(controller.Retrains(), 1u);
  EXPECT_EQ(controller.RetrainFailures(), 0u);
  // Generation coherence across the swap: the corrector is tagged with the
  // generation currently serving.
  EXPECT_EQ(controller.corrector().generation(), registry.current_version());
  EXPECT_EQ(registry.Current()->source, "adapt-retrain");
  // And the post-swap server still answers.
  ExpectStillServing(server);
  server.Shutdown();
}

}  // namespace
}  // namespace iam::serve
