// End-to-end tests of the estimator service over real loopback sockets.
// Everything here carries the ctest label "net" (see tests/CMakeLists.txt):
// the quick sanitizer gates exclude it, the default configs and the TSan
// serve gate run it.

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/ar_density_estimator.h"
#include "query/parser.h"
#include "serve/client.h"
#include "serve/demo.h"
#include "serve/model_registry.h"
#include "serve/server.h"

namespace iam::serve {
namespace {

constexpr char kPredicate[] = "latitude >= 35 AND longitude <= -100";

ModelRegistry& SharedRegistry() {
  static ModelRegistry registry(TrainDemoEstimator(1200, 11), "");
  return registry;
}

Client ConnectedClient(const EstimatorServer& server) {
  Client client;
  const Status connected = client.Connect("127.0.0.1", server.port());
  EXPECT_TRUE(connected.ok()) << connected.ToString();
  return client;
}

TEST(ServeEndToEndTest, EstimateMatchesDirectCall) {
  EstimatorServer server(SharedRegistry(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client = ConnectedClient(server);

  const auto parsed =
      query::ParsePredicates(SharedRegistry().Current()->schema, kPredicate);
  ASSERT_TRUE(parsed.ok());
  const double direct =
      SharedRegistry().Current()->estimator->Estimate(*parsed);

  const auto reply = client.Estimate(kPredicate);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply->overloaded);
  // A lone request forms a batch of one, which is seeded exactly like the
  // library's Estimate(): the wire adds no numeric drift.
  EXPECT_EQ(reply->selectivity, direct);
  EXPECT_EQ(reply->model_version, SharedRegistry().Current()->version);
  server.Shutdown();
}

TEST(ServeEndToEndTest, ParseErrorReturnsTypedError) {
  EstimatorServer server(SharedRegistry(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client = ConnectedClient(server);

  const auto reply = client.Estimate("no_such_column = 1");
  EXPECT_FALSE(reply.ok());
  // The connection survives a bad request.
  const auto ok_reply = client.Estimate(kPredicate);
  EXPECT_TRUE(ok_reply.ok()) << ok_reply.status().ToString();
  server.Shutdown();
}

TEST(ServeEndToEndTest, MetricsFrameExportsPrometheus) {
  EstimatorServer server(SharedRegistry(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client = ConnectedClient(server);
  ASSERT_TRUE(client.Estimate(kPredicate).ok());

  const auto text = client.Metrics();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("# TYPE iam_serve_accepted_total counter"),
            std::string::npos);
  EXPECT_NE(text->find("iam_serve_batch_size"), std::string::npos);
  server.Shutdown();
}

TEST(ServeEndToEndTest, OverloadedServerFastRejects) {
  ServerOptions options;
  options.batcher.queue_capacity = 0;  // every request is one too many
  EstimatorServer server(SharedRegistry(), options);
  ASSERT_TRUE(server.Start().ok());
  Client client = ConnectedClient(server);
  const auto reply = client.Estimate(kPredicate);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->overloaded);
  server.Shutdown();
}

TEST(ServeEndToEndTest, SwapViaControlFrame) {
  // A private registry: this test moves the served version forward.
  ModelRegistry registry(TrainDemoEstimator(1200, 11), "");
  EstimatorServer server(registry, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client = ConnectedClient(server);

  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "iam_serve_swap_model.iam").string();
  ASSERT_TRUE(registry.Current()->estimator->Save(path).ok());

  const auto version = client.Swap(path);
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  EXPECT_EQ(*version, 2u);

  const auto bad = client.Swap("/nonexistent/model.iam");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(registry.Current()->version, 2u);  // failed swap kept serving

  const auto reply = client.Estimate(kPredicate);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->model_version, 2u);
  server.Shutdown();
  std::remove(path.c_str());
}

TEST(ServeEndToEndTest, ShutdownFrameRequestsDrain) {
  EstimatorServer server(SharedRegistry(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.shutdown_requested());
  Client client = ConnectedClient(server);
  ASSERT_TRUE(client.RequestShutdown().ok());
  EXPECT_TRUE(server.shutdown_requested());
  server.Shutdown();
  // Drained: the listener is gone and queued work was answered before the
  // batcher stopped.
  Client late;
  EXPECT_FALSE(late.Connect("127.0.0.1", server.port()).ok());
}

// The concurrency test the TSan serve gate runs: clients hammer the server
// while the model is hot-swapped mid-burst. No accepted request may be lost,
// and every response must come from exactly one of the two generations.
TEST(ServeSwapTest, HotSwapUnderLoadLosesNothing) {
  ModelRegistry registry(TrainDemoEstimator(1200, 11), "");
  ServerOptions options;
  options.batcher.max_delay_s = 1e-4;  // many small batches -> many snapshots
  EstimatorServer server(registry, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 40;
  std::unique_ptr<core::ArDensityEstimator> next =
      TrainDemoEstimator(1200, 12);

  std::atomic<int> failures{0};
  std::atomic<int> started{0};
  std::atomic<bool> bad_version{false};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      Client client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        failures.fetch_add(kRequestsPerClient);
        return;
      }
      started.fetch_add(1);
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const auto reply = client.Estimate(kPredicate);
        if (!reply.ok() || reply->overloaded) {
          failures.fetch_add(1);
          continue;
        }
        if (reply->model_version != 1 && reply->model_version != 2) {
          bad_version.store(true);
        }
      }
    });
  }
  // Swap once the burst is in full flight.
  while (started.load() < kClients) std::this_thread::yield();
  const uint64_t v2 = registry.Swap(std::move(next), "swapped");
  EXPECT_EQ(v2, 2u);

  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_FALSE(bad_version.load());

  // After the swap every new request answers from the new generation.
  Client client = ConnectedClient(server);
  const auto reply = client.Estimate(kPredicate);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->model_version, 2u);
  server.Shutdown();
}

}  // namespace
}  // namespace iam::serve
