#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "nn/adam.h"
#include "nn/layers.h"
#include "nn/matrix.h"
#include "util/random.h"

namespace iam::nn {
namespace {

TEST(MatrixTest, ShapeAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  m.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(m.row(1)[2], 5.0f);
  m.Zero();
  EXPECT_FLOAT_EQ(m.at(1, 2), 0.0f);
}

TEST(MatrixTest, LinearForwardMatchesManual) {
  // y = x W^T + b with tiny known values.
  Matrix x(1, 2);
  x.at(0, 0) = 1.0f;
  x.at(0, 1) = 2.0f;
  Matrix w(3, 2);
  float val = 0.5f;
  for (int o = 0; o < 3; ++o)
    for (int i = 0; i < 2; ++i) w.at(o, i) = val += 0.5f;
  std::vector<float> bias = {0.1f, 0.2f, 0.3f};
  Matrix y, wt_scratch;
  LinearForward(x, w, bias, y, wt_scratch);
  ASSERT_EQ(y.rows(), 1);
  ASSERT_EQ(y.cols(), 3);
  for (int o = 0; o < 3; ++o) {
    const float expect = x.at(0, 0) * w.at(o, 0) + x.at(0, 1) * w.at(o, 1) +
                         bias[o];
    EXPECT_FLOAT_EQ(y.at(0, o), expect);
  }
}

// Finite-difference gradient check of LinearBackward.
TEST(MatrixTest, LinearBackwardGradCheck) {
  Rng rng(42);
  const int batch = 3, in = 4, out = 2;
  Matrix x(batch, in), w(out, in);
  for (int r = 0; r < batch; ++r)
    for (int c = 0; c < in; ++c) x.at(r, c) = (float)rng.Gaussian();
  for (int o = 0; o < out; ++o)
    for (int c = 0; c < in; ++c) w.at(o, c) = (float)rng.Gaussian();
  std::vector<float> bias(out, 0.0f);

  // Loss = sum of squares of outputs; dL/dy = 2y.
  auto loss = [&](const Matrix& weights) {
    Matrix y, wt_scratch;
    LinearForward(x, weights, bias, y, wt_scratch);
    double total = 0.0;
    for (size_t i = 0; i < y.size(); ++i) total += y.data()[i] * y.data()[i];
    return total;
  };

  Matrix y, wt_scratch;
  LinearForward(x, w, bias, y, wt_scratch);
  Matrix dy(batch, out);
  for (size_t i = 0; i < y.size(); ++i) dy.data()[i] = 2.0f * y.data()[i];
  Matrix dx, dw(out, in);
  std::vector<float> dbias(out, 0.0f);
  LinearBackward(x, w, dy, dx, dw, dbias);

  const float eps = 1e-2f;
  for (int o = 0; o < out; ++o) {
    for (int c = 0; c < in; ++c) {
      Matrix wp = w;
      wp.at(o, c) += eps;
      Matrix wm = w;
      wm.at(o, c) -= eps;
      const double numeric = (loss(wp) - loss(wm)) / (2.0 * eps);
      EXPECT_NEAR(dw.at(o, c), numeric, 1e-2 * std::max(1.0, std::abs(numeric)));
    }
  }
}

TEST(LayersTest, ReluForwardBackward) {
  Matrix x(1, 4);
  x.at(0, 0) = -1.0f;
  x.at(0, 1) = 0.0f;
  x.at(0, 2) = 2.0f;
  x.at(0, 3) = -3.0f;
  Matrix y;
  ReluForward(x, y);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 2.0f);

  Matrix dy(1, 4);
  for (int i = 0; i < 4; ++i) dy.at(0, i) = 1.0f;
  Matrix dx;
  ReluBackward(x, dy, dx);
  EXPECT_FLOAT_EQ(dx.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(dx.at(0, 2), 1.0f);
}

TEST(LayersTest, MaskedWeightsStayZeroThroughTraining) {
  Rng rng(1);
  MaskedLinear layer(3, 2, rng);
  Matrix mask(2, 3);
  // Only allow (0,0) and (1,2).
  mask.at(0, 0) = 1.0f;
  mask.at(1, 2) = 1.0f;
  layer.SetMask(std::move(mask));

  Adam adam;
  adam.Register(&layer.weight());
  adam.Register(&layer.bias());

  Matrix x(4, 3), y, dy(4, 2), dx;
  for (int step = 0; step < 20; ++step) {
    for (size_t i = 0; i < x.size(); ++i) x.data()[i] = (float)rng.Gaussian();
    adam.ZeroGrad();
    layer.Forward(x, y);
    for (size_t i = 0; i < dy.size(); ++i) dy.data()[i] = (float)rng.Gaussian();
    layer.Backward(x, dy, dx);
    adam.Step();
  }
  EXPECT_FLOAT_EQ(layer.weight().value.at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(layer.weight().value.at(0, 2), 0.0f);
  EXPECT_FLOAT_EQ(layer.weight().value.at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(layer.weight().value.at(1, 1), 0.0f);
  EXPECT_NE(layer.weight().value.at(0, 0), 0.0f);
}

TEST(LayersTest, ParameterCountIsMaskAware) {
  Rng rng(2);
  MaskedLinear dense(4, 3, rng);
  EXPECT_EQ(dense.ParameterCount(), 4u * 3u + 3u);

  MaskedLinear masked(4, 3, rng);
  Matrix mask(3, 4);
  mask.at(0, 0) = 1.0f;
  mask.at(2, 3) = 1.0f;
  masked.SetMask(std::move(mask));
  EXPECT_EQ(masked.ParameterCount(), 2u + 3u);
}

TEST(AdamTest, MinimizesQuadratic) {
  // Minimize (w - 3)^2 elementwise.
  Parameter p(1, 4);
  Adam::Options opts;
  opts.learning_rate = 0.1;
  Adam adam(opts);
  adam.Register(&p);
  for (int step = 0; step < 500; ++step) {
    adam.ZeroGrad();
    for (int i = 0; i < 4; ++i) {
      p.grad.at(0, i) = 2.0f * (p.value.at(0, i) - 3.0f);
    }
    adam.Step();
  }
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(p.value.at(0, i), 3.0f, 1e-3);
}

TEST(AdamTest, ZeroGradientLeavesValueUntouched) {
  Parameter p(1, 1);
  p.value.at(0, 0) = 1.5f;
  Adam adam;
  adam.Register(&p);
  adam.ZeroGrad();
  adam.Step();
  EXPECT_FLOAT_EQ(p.value.at(0, 0), 1.5f);
}

// A two-layer net with ReLU should fit XOR — validates the full
// forward/backward plumbing end to end.
TEST(NnIntegrationTest, LearnsXor) {
  // ReLU nets can hit dead-unit local minima on XOR from an unlucky init, so
  // allow a few restarts; what matters is that the plumbing can fit it.
  double best_loss = 1.0;
  for (uint64_t seed = 7; seed < 12 && best_loss > 1e-3; ++seed) {
    Rng rng(seed);
    MaskedLinear l1(2, 16, rng);
    MaskedLinear l2(16, 1, rng);
    Adam::Options opts;
    opts.learning_rate = 0.05;
    Adam adam(opts);
    adam.Register(&l1.weight());
    adam.Register(&l1.bias());
    adam.Register(&l2.weight());
    adam.Register(&l2.bias());

    const float inputs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
    const float targets[4] = {0, 1, 1, 0};
    Matrix x(4, 2);
    for (int r = 0; r < 4; ++r)
      for (int c = 0; c < 2; ++c) x.at(r, c) = inputs[r][c];

    Matrix z1, a1, out, dout(4, 1), da1, dz1, dx;
    double loss = 1.0;
    for (int step = 0; step < 3000 && loss > 1e-3; ++step) {
      adam.ZeroGrad();
      l1.Forward(x, z1);
      ReluForward(z1, a1);
      l2.Forward(a1, out);
      loss = 0.0;
      for (int r = 0; r < 4; ++r) {
        const float diff = out.at(r, 0) - targets[r];
        loss += diff * diff;
        dout.at(r, 0) = 2.0f * diff / 4.0f;
      }
      loss /= 4.0;
      l2.Backward(a1, dout, da1);
      ReluBackward(z1, da1, dz1);
      l1.Backward(x, dz1, dx);
      adam.Step();
    }
    best_loss = std::min(best_loss, loss);
  }
  EXPECT_LT(best_loss, 1e-3);
}

}  // namespace
}  // namespace iam::nn
