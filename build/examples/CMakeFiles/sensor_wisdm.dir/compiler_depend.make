# Empty compiler generated dependencies file for sensor_wisdm.
# This may be replaced when dependencies are built.
