file(REMOVE_RECURSE
  "CMakeFiles/sensor_wisdm.dir/sensor_wisdm.cc.o"
  "CMakeFiles/sensor_wisdm.dir/sensor_wisdm.cc.o.d"
  "sensor_wisdm"
  "sensor_wisdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_wisdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
