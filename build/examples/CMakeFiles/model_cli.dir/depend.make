# Empty dependencies file for model_cli.
# This may be replaced when dependencies are built.
