file(REMOVE_RECURSE
  "CMakeFiles/bench_column_order.dir/bench_column_order.cc.o"
  "CMakeFiles/bench_column_order.dir/bench_column_order.cc.o.d"
  "bench_column_order"
  "bench_column_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_column_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
