# Empty compiler generated dependencies file for bench_column_order.
# This may be replaced when dependencies are built.
