# Empty compiler generated dependencies file for bench_domain_reducers.
# This may be replaced when dependencies are built.
