file(REMOVE_RECURSE
  "CMakeFiles/bench_domain_reducers.dir/bench_domain_reducers.cc.o"
  "CMakeFiles/bench_domain_reducers.dir/bench_domain_reducers.cc.o.d"
  "bench_domain_reducers"
  "bench_domain_reducers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_domain_reducers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
