# Empty dependencies file for iam_bench_common.
# This may be replaced when dependencies are built.
