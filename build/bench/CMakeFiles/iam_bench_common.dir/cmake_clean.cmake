file(REMOVE_RECURSE
  "CMakeFiles/iam_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/iam_bench_common.dir/bench_common.cc.o.d"
  "libiam_bench_common.a"
  "libiam_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iam_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
