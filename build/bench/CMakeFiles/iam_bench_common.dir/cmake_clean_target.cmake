file(REMOVE_RECURSE
  "libiam_bench_common.a"
)
