file(REMOVE_RECURSE
  "CMakeFiles/bench_gmm_samples.dir/bench_gmm_samples.cc.o"
  "CMakeFiles/bench_gmm_samples.dir/bench_gmm_samples.cc.o.d"
  "bench_gmm_samples"
  "bench_gmm_samples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gmm_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
