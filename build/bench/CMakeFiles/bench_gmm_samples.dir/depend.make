# Empty dependencies file for bench_gmm_samples.
# This may be replaced when dependencies are built.
