# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/resmade_test[1]_include.cmake")
include("/root/repo/build/tests/gmm_test[1]_include.cmake")
include("/root/repo/build/tests/bucketize_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/estimator_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/laplace_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/gmm2d_test[1]_include.cmake")
include("/root/repo/build/tests/join_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
