# Empty dependencies file for gmm2d_test.
# This may be replaced when dependencies are built.
