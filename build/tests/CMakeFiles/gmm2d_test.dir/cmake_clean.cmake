file(REMOVE_RECURSE
  "CMakeFiles/gmm2d_test.dir/gmm2d_test.cc.o"
  "CMakeFiles/gmm2d_test.dir/gmm2d_test.cc.o.d"
  "gmm2d_test"
  "gmm2d_test.pdb"
  "gmm2d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmm2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
