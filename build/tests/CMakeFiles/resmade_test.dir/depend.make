# Empty dependencies file for resmade_test.
# This may be replaced when dependencies are built.
