file(REMOVE_RECURSE
  "CMakeFiles/resmade_test.dir/resmade_test.cc.o"
  "CMakeFiles/resmade_test.dir/resmade_test.cc.o.d"
  "resmade_test"
  "resmade_test.pdb"
  "resmade_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resmade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
