
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/optimizer_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/iam_core.dir/DependInfo.cmake"
  "/root/repo/build/src/estimator/CMakeFiles/iam_estimator.dir/DependInfo.cmake"
  "/root/repo/build/src/ar/CMakeFiles/iam_ar.dir/DependInfo.cmake"
  "/root/repo/build/src/bucketize/CMakeFiles/iam_bucketize.dir/DependInfo.cmake"
  "/root/repo/build/src/gmm/CMakeFiles/iam_gmm.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/iam_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/iam_query.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/iam_data.dir/DependInfo.cmake"
  "/root/repo/build/src/join/CMakeFiles/iam_join.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/iam_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iam_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
