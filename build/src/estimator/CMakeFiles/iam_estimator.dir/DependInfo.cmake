
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/estimator/bayesnet.cc" "src/estimator/CMakeFiles/iam_estimator.dir/bayesnet.cc.o" "gcc" "src/estimator/CMakeFiles/iam_estimator.dir/bayesnet.cc.o.d"
  "/root/repo/src/estimator/estimator.cc" "src/estimator/CMakeFiles/iam_estimator.dir/estimator.cc.o" "gcc" "src/estimator/CMakeFiles/iam_estimator.dir/estimator.cc.o.d"
  "/root/repo/src/estimator/kde.cc" "src/estimator/CMakeFiles/iam_estimator.dir/kde.cc.o" "gcc" "src/estimator/CMakeFiles/iam_estimator.dir/kde.cc.o.d"
  "/root/repo/src/estimator/mhist.cc" "src/estimator/CMakeFiles/iam_estimator.dir/mhist.cc.o" "gcc" "src/estimator/CMakeFiles/iam_estimator.dir/mhist.cc.o.d"
  "/root/repo/src/estimator/mscn.cc" "src/estimator/CMakeFiles/iam_estimator.dir/mscn.cc.o" "gcc" "src/estimator/CMakeFiles/iam_estimator.dir/mscn.cc.o.d"
  "/root/repo/src/estimator/postgres1d.cc" "src/estimator/CMakeFiles/iam_estimator.dir/postgres1d.cc.o" "gcc" "src/estimator/CMakeFiles/iam_estimator.dir/postgres1d.cc.o.d"
  "/root/repo/src/estimator/sampling.cc" "src/estimator/CMakeFiles/iam_estimator.dir/sampling.cc.o" "gcc" "src/estimator/CMakeFiles/iam_estimator.dir/sampling.cc.o.d"
  "/root/repo/src/estimator/spn.cc" "src/estimator/CMakeFiles/iam_estimator.dir/spn.cc.o" "gcc" "src/estimator/CMakeFiles/iam_estimator.dir/spn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/iam_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/iam_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/iam_query.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iam_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
