# Empty compiler generated dependencies file for iam_estimator.
# This may be replaced when dependencies are built.
