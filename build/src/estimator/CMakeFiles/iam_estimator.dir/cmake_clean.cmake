file(REMOVE_RECURSE
  "CMakeFiles/iam_estimator.dir/bayesnet.cc.o"
  "CMakeFiles/iam_estimator.dir/bayesnet.cc.o.d"
  "CMakeFiles/iam_estimator.dir/estimator.cc.o"
  "CMakeFiles/iam_estimator.dir/estimator.cc.o.d"
  "CMakeFiles/iam_estimator.dir/kde.cc.o"
  "CMakeFiles/iam_estimator.dir/kde.cc.o.d"
  "CMakeFiles/iam_estimator.dir/mhist.cc.o"
  "CMakeFiles/iam_estimator.dir/mhist.cc.o.d"
  "CMakeFiles/iam_estimator.dir/mscn.cc.o"
  "CMakeFiles/iam_estimator.dir/mscn.cc.o.d"
  "CMakeFiles/iam_estimator.dir/postgres1d.cc.o"
  "CMakeFiles/iam_estimator.dir/postgres1d.cc.o.d"
  "CMakeFiles/iam_estimator.dir/sampling.cc.o"
  "CMakeFiles/iam_estimator.dir/sampling.cc.o.d"
  "CMakeFiles/iam_estimator.dir/spn.cc.o"
  "CMakeFiles/iam_estimator.dir/spn.cc.o.d"
  "libiam_estimator.a"
  "libiam_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iam_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
