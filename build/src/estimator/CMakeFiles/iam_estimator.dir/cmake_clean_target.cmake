file(REMOVE_RECURSE
  "libiam_estimator.a"
)
