file(REMOVE_RECURSE
  "libiam_util.a"
)
