# Empty compiler generated dependencies file for iam_util.
# This may be replaced when dependencies are built.
