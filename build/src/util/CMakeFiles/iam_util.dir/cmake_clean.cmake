file(REMOVE_RECURSE
  "CMakeFiles/iam_util.dir/math_util.cc.o"
  "CMakeFiles/iam_util.dir/math_util.cc.o.d"
  "CMakeFiles/iam_util.dir/quantiles.cc.o"
  "CMakeFiles/iam_util.dir/quantiles.cc.o.d"
  "CMakeFiles/iam_util.dir/random.cc.o"
  "CMakeFiles/iam_util.dir/random.cc.o.d"
  "CMakeFiles/iam_util.dir/status.cc.o"
  "CMakeFiles/iam_util.dir/status.cc.o.d"
  "libiam_util.a"
  "libiam_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iam_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
