# Empty compiler generated dependencies file for iam_nn.
# This may be replaced when dependencies are built.
