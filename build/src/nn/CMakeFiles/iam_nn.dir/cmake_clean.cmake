file(REMOVE_RECURSE
  "CMakeFiles/iam_nn.dir/adam.cc.o"
  "CMakeFiles/iam_nn.dir/adam.cc.o.d"
  "CMakeFiles/iam_nn.dir/layers.cc.o"
  "CMakeFiles/iam_nn.dir/layers.cc.o.d"
  "CMakeFiles/iam_nn.dir/matrix.cc.o"
  "CMakeFiles/iam_nn.dir/matrix.cc.o.d"
  "libiam_nn.a"
  "libiam_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iam_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
