file(REMOVE_RECURSE
  "libiam_nn.a"
)
