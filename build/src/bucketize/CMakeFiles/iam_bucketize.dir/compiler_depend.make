# Empty compiler generated dependencies file for iam_bucketize.
# This may be replaced when dependencies are built.
