file(REMOVE_RECURSE
  "libiam_bucketize.a"
)
