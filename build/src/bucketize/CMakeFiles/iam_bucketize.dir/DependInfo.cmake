
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bucketize/domain_reducer.cc" "src/bucketize/CMakeFiles/iam_bucketize.dir/domain_reducer.cc.o" "gcc" "src/bucketize/CMakeFiles/iam_bucketize.dir/domain_reducer.cc.o.d"
  "/root/repo/src/bucketize/gmm_reducer.cc" "src/bucketize/CMakeFiles/iam_bucketize.dir/gmm_reducer.cc.o" "gcc" "src/bucketize/CMakeFiles/iam_bucketize.dir/gmm_reducer.cc.o.d"
  "/root/repo/src/bucketize/laplace_reducer.cc" "src/bucketize/CMakeFiles/iam_bucketize.dir/laplace_reducer.cc.o" "gcc" "src/bucketize/CMakeFiles/iam_bucketize.dir/laplace_reducer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/iam_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gmm/CMakeFiles/iam_gmm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
