file(REMOVE_RECURSE
  "CMakeFiles/iam_bucketize.dir/domain_reducer.cc.o"
  "CMakeFiles/iam_bucketize.dir/domain_reducer.cc.o.d"
  "CMakeFiles/iam_bucketize.dir/gmm_reducer.cc.o"
  "CMakeFiles/iam_bucketize.dir/gmm_reducer.cc.o.d"
  "CMakeFiles/iam_bucketize.dir/laplace_reducer.cc.o"
  "CMakeFiles/iam_bucketize.dir/laplace_reducer.cc.o.d"
  "libiam_bucketize.a"
  "libiam_bucketize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iam_bucketize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
