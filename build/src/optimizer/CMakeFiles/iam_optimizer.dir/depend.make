# Empty dependencies file for iam_optimizer.
# This may be replaced when dependencies are built.
