file(REMOVE_RECURSE
  "CMakeFiles/iam_optimizer.dir/mini_optimizer.cc.o"
  "CMakeFiles/iam_optimizer.dir/mini_optimizer.cc.o.d"
  "libiam_optimizer.a"
  "libiam_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iam_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
