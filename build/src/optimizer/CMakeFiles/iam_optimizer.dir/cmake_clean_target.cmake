file(REMOVE_RECURSE
  "libiam_optimizer.a"
)
