# Empty dependencies file for iam_join.
# This may be replaced when dependencies are built.
