file(REMOVE_RECURSE
  "libiam_join.a"
)
