file(REMOVE_RECURSE
  "CMakeFiles/iam_join.dir/star_schema.cc.o"
  "CMakeFiles/iam_join.dir/star_schema.cc.o.d"
  "libiam_join.a"
  "libiam_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iam_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
