
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gmm/gmm1d.cc" "src/gmm/CMakeFiles/iam_gmm.dir/gmm1d.cc.o" "gcc" "src/gmm/CMakeFiles/iam_gmm.dir/gmm1d.cc.o.d"
  "/root/repo/src/gmm/gmm2d.cc" "src/gmm/CMakeFiles/iam_gmm.dir/gmm2d.cc.o" "gcc" "src/gmm/CMakeFiles/iam_gmm.dir/gmm2d.cc.o.d"
  "/root/repo/src/gmm/laplace.cc" "src/gmm/CMakeFiles/iam_gmm.dir/laplace.cc.o" "gcc" "src/gmm/CMakeFiles/iam_gmm.dir/laplace.cc.o.d"
  "/root/repo/src/gmm/vbgm.cc" "src/gmm/CMakeFiles/iam_gmm.dir/vbgm.cc.o" "gcc" "src/gmm/CMakeFiles/iam_gmm.dir/vbgm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/iam_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
