file(REMOVE_RECURSE
  "CMakeFiles/iam_gmm.dir/gmm1d.cc.o"
  "CMakeFiles/iam_gmm.dir/gmm1d.cc.o.d"
  "CMakeFiles/iam_gmm.dir/gmm2d.cc.o"
  "CMakeFiles/iam_gmm.dir/gmm2d.cc.o.d"
  "CMakeFiles/iam_gmm.dir/laplace.cc.o"
  "CMakeFiles/iam_gmm.dir/laplace.cc.o.d"
  "CMakeFiles/iam_gmm.dir/vbgm.cc.o"
  "CMakeFiles/iam_gmm.dir/vbgm.cc.o.d"
  "libiam_gmm.a"
  "libiam_gmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iam_gmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
