file(REMOVE_RECURSE
  "libiam_gmm.a"
)
