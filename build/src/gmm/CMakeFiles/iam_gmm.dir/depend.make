# Empty dependencies file for iam_gmm.
# This may be replaced when dependencies are built.
