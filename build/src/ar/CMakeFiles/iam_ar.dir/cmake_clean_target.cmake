file(REMOVE_RECURSE
  "libiam_ar.a"
)
