file(REMOVE_RECURSE
  "CMakeFiles/iam_ar.dir/resmade.cc.o"
  "CMakeFiles/iam_ar.dir/resmade.cc.o.d"
  "libiam_ar.a"
  "libiam_ar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iam_ar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
