# Empty compiler generated dependencies file for iam_ar.
# This may be replaced when dependencies are built.
