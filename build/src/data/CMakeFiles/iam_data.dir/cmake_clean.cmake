file(REMOVE_RECURSE
  "CMakeFiles/iam_data.dir/csv.cc.o"
  "CMakeFiles/iam_data.dir/csv.cc.o.d"
  "CMakeFiles/iam_data.dir/dictionary.cc.o"
  "CMakeFiles/iam_data.dir/dictionary.cc.o.d"
  "CMakeFiles/iam_data.dir/statistics.cc.o"
  "CMakeFiles/iam_data.dir/statistics.cc.o.d"
  "CMakeFiles/iam_data.dir/synthetic.cc.o"
  "CMakeFiles/iam_data.dir/synthetic.cc.o.d"
  "CMakeFiles/iam_data.dir/table.cc.o"
  "CMakeFiles/iam_data.dir/table.cc.o.d"
  "libiam_data.a"
  "libiam_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iam_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
