file(REMOVE_RECURSE
  "libiam_data.a"
)
