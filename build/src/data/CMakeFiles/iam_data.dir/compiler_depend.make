# Empty compiler generated dependencies file for iam_data.
# This may be replaced when dependencies are built.
