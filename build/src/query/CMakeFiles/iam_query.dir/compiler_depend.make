# Empty compiler generated dependencies file for iam_query.
# This may be replaced when dependencies are built.
