file(REMOVE_RECURSE
  "CMakeFiles/iam_query.dir/parser.cc.o"
  "CMakeFiles/iam_query.dir/parser.cc.o.d"
  "CMakeFiles/iam_query.dir/query.cc.o"
  "CMakeFiles/iam_query.dir/query.cc.o.d"
  "CMakeFiles/iam_query.dir/workload.cc.o"
  "CMakeFiles/iam_query.dir/workload.cc.o.d"
  "libiam_query.a"
  "libiam_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iam_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
