file(REMOVE_RECURSE
  "libiam_query.a"
)
