file(REMOVE_RECURSE
  "CMakeFiles/iam_core.dir/ar_density_estimator.cc.o"
  "CMakeFiles/iam_core.dir/ar_density_estimator.cc.o.d"
  "libiam_core.a"
  "libiam_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iam_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
