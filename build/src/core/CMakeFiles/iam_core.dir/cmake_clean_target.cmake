file(REMOVE_RECURSE
  "libiam_core.a"
)
