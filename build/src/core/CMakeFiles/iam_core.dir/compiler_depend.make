# Empty compiler generated dependencies file for iam_core.
# This may be replaced when dependencies are built.
