# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("nn")
subdirs("gmm")
subdirs("bucketize")
subdirs("data")
subdirs("query")
subdirs("ar")
subdirs("estimator")
subdirs("core")
subdirs("join")
subdirs("optimizer")
