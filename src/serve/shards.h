#ifndef IAM_SERVE_SHARDS_H_
#define IAM_SERVE_SHARDS_H_

#include <memory>
#include <vector>

#include "query/query.h"
#include "serve/batcher.h"
#include "serve/model_registry.h"

namespace iam::serve {

// N independent MicroBatcher shards behind one admission policy. Each shard
// owns its own bounded queue, its own worker thread, and its own model
// snapshot (replica shard % registry.replicas()); connections get a home
// shard round-robin at accept time so a connection's estimates normally
// coalesce on one queue.
//
// Admission degrades gracefully instead of cliff-shaping:
//   1. the home shard admits if its queue has room;
//   2. a full home shard *spills* to the least-loaded sibling (one relaxed
//      atomic load per shard) — transient imbalance moves work instead of
//      rejecting it;
//   3. only when every shard is at capacity does the request fast-reject
//      with kOverloaded.
// saturated() exposes step 3's condition as the shared overload signal: the
// event loop checks it before even parsing a request, so the per-request
// cost under global overload is one queue-depth scan plus one response
// frame — offered load beyond capacity cannot drag achieved throughput
// down.
class ShardSet {
 public:
  ShardSet(ModelRegistry& registry, const BatcherOptions& options,
           int num_shards);

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  // Admits `query` per the policy above. The callback fires exactly once:
  // from the admitting shard's worker after its batch flushed, or inline
  // (before Submit returns) with overloaded=true on a global reject or a
  // non-OK status when the set is draining.
  void Submit(int home_shard, query::Query query, MicroBatcher::Callback done);

  // True while every shard's queue is at capacity — the shared overload
  // signal. One relaxed load per shard; approximate by construction (a slot
  // may free up mid-scan), which only costs one request a cheap reject.
  bool saturated() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  MicroBatcher& shard(int i) { return *shards_[static_cast<size_t>(i)]; }

  // Drains every shard (all pending callbacks fire) and joins the workers.
  // Idempotent.
  void DrainAndStop();

 private:
  std::vector<std::unique_ptr<MicroBatcher>> shards_;
};

}  // namespace iam::serve

#endif  // IAM_SERVE_SHARDS_H_
