#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "query/parser.h"

namespace iam::serve {

EstimatorServer::EstimatorServer(ModelRegistry& registry,
                                 ServerOptions options)
    : registry_(registry),
      options_(std::move(options)),
      batcher_(registry, options_.batcher) {}

EstimatorServer::~EstimatorServer() { Shutdown(); }

Status EstimatorServer::Start() {
  if (listen_fd_ >= 0) return Status::FailedPrecondition("already started");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address " +
                                   options_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status failed =
        Status::IoError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return failed;
  }
  if (::listen(fd, options_.listen_backlog) != 0) {
    const Status failed =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return failed;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status failed =
        Status::IoError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return failed;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void EstimatorServer::AcceptLoop() {
  obs::Counter& connections = obs::MetricRegistry::Global().GetCounter(
      "iam_serve_connections_total");
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Shutdown() shut the listener down; every other failure also ends
      // the accept loop (the server keeps serving open connections).
      return;
    }
    connections.Add();
    util::MutexLock lock(conn_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

Frame EstimatorServer::HandleFrame(const Frame& request) {
  switch (request.type) {
    case FrameType::kEstimate: {
      // Parse against the current generation's schema. A swap between parse
      // and flush executes the query on the next generation — same-schema by
      // the registry contract, so column indices stay valid.
      const std::shared_ptr<LoadedModel> model = registry_.Current();
      Result<query::Query> parsed =
          query::ParsePredicates(model->schema, request.payload);
      if (!parsed.ok()) {
        obs::MetricRegistry::Global()
            .GetCounter("iam_serve_parse_errors_total")
            .Add();
        return {FrameType::kError, parsed.status().ToString()};
      }
      const MicroBatcher::Response response = batcher_.Estimate(*parsed);
      if (!response.status.ok()) {
        return {FrameType::kError, response.status.ToString()};
      }
      if (response.overloaded) return {FrameType::kOverloaded, ""};
      return {FrameType::kEstimateOk,
              EncodeEstimatePayload(response.selectivity,
                                    response.model_version)};
    }
    case FrameType::kSwap: {
      const Result<uint64_t> swapped = registry_.SwapFromFile(request.payload);
      if (!swapped.ok()) return {FrameType::kError, swapped.status().ToString()};
      return {FrameType::kOk, "version " + std::to_string(*swapped)};
    }
    case FrameType::kMetrics:
      return {FrameType::kOk, obs::MetricsToPrometheus(
                                  obs::MetricRegistry::Global().Snapshot())};
    case FrameType::kShutdown:
      shutdown_requested_.store(true, std::memory_order_release);
      return {FrameType::kOk, "draining"};
    default:
      return {FrameType::kError,
              "unknown frame type " +
                  std::to_string(static_cast<int>(request.type))};
  }
}

void EstimatorServer::ServeConnection(int fd) {
  Frame request;
  for (;;) {
    const Status read = ReadFrame(fd, &request);
    if (!read.ok()) break;  // orderly hangup, truncation, or drain unblock
    const Frame response = HandleFrame(request);
    if (!WriteFrame(fd, response).ok()) break;
  }
  ::close(fd);
  util::MutexLock lock(conn_mu_);
  conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                  conn_fds_.end());
}

void EstimatorServer::Shutdown() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    // A second caller (destructor after an explicit Shutdown) still waits
    // for the batcher, which is idempotent.
    batcher_.DrainAndStop();
    return;
  }
  if (listen_fd_ >= 0) {
    // shutdown() reliably unblocks a blocking accept(); close() alone does
    // not on Linux.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Unblock connections parked in ReadFrame: SHUT_RD makes their pending
  // read return EOF while responses already being written still flush.
  std::vector<std::thread> workers;
  {
    util::MutexLock lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
    workers.swap(conn_threads_);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
  batcher_.DrainAndStop();
}

}  // namespace iam::serve
