#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "obs/query_log.h"
#include "query/parser.h"
#include "util/stopwatch.h"

namespace iam::serve {
namespace {

// epoll user-data ids of the two non-connection fds.
constexpr uint64_t kListenerId = 0;
constexpr uint64_t kWakeId = 1;

// Read at most this much per EPOLLIN event so one firehose connection cannot
// starve the rest of the loop; level-triggered epoll re-fires for the rest.
constexpr size_t kMaxReadPerEvent = 256 * 1024;

// Compact read/write buffers once the consumed prefix passes this.
constexpr size_t kCompactThreshold = 64 * 1024;

struct LoopMetrics {
  obs::Counter& connections;
  obs::Counter& partial_writes;
  obs::Counter& parse_errors;
  obs::Gauge& open_connections;

  static LoopMetrics& Get() {
    static LoopMetrics metrics = [] {
      obs::MetricRegistry& reg = obs::MetricRegistry::Global();
      return LoopMetrics{
          reg.GetCounter("iam_serve_connections_total"),
          reg.GetCounter("iam_serve_partial_writes_total"),
          reg.GetCounter("iam_serve_parse_errors_total"),
          reg.GetGauge("iam_serve_open_connections"),
      };
    }();
    return metrics;
  }
};

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::IoError(std::string("fcntl: ") + std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace

EstimatorServer::EstimatorServer(ModelRegistry& registry,
                                 ServerOptions options)
    : registry_(registry),
      options_(std::move(options)),
      shards_(registry, options_.batcher, options_.num_shards) {}

EstimatorServer::~EstimatorServer() { Shutdown(); }

Status EstimatorServer::Start() {
  if (listen_fd_ >= 0) return Status::FailedPrecondition("already started");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address " +
                                   options_.bind_address);
  }
  if (::bind(fd, AsSockaddr(addr), sizeof(addr)) != 0) {
    const Status failed =
        Status::IoError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return failed;
  }
  if (::listen(fd, std::max(options_.listen_backlog, 1)) != 0) {
    const Status failed =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return failed;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, AsMutableSockaddr(bound), &len) != 0) {
    const Status failed =
        Status::IoError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return failed;
  }
  Status nonblocking = SetNonBlocking(fd);
  if (!nonblocking.ok()) {
    ::close(fd);
    return nonblocking;
  }

  const int epfd = ::epoll_create1(0);
  if (epfd < 0) {
    ::close(fd);
    return Status::IoError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  const int wakefd = ::eventfd(0, EFD_NONBLOCK);
  if (wakefd < 0) {
    ::close(fd);
    ::close(epfd);
    return Status::IoError(std::string("eventfd: ") + std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerId;
  ::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev);
  ev.data.u64 = kWakeId;
  ::epoll_ctl(epfd, EPOLL_CTL_ADD, wakefd, &ev);

  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  epoll_fd_ = epfd;
  wake_fd_ = wakefd;
  parse_model_ = registry_.Current();
  loop_thread_ = std::thread([this] { LoopThread(); });
  return Status::Ok();
}

void EstimatorServer::LoopThread() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  bool draining = false;
  Stopwatch drain_clock;
  for (;;) {
    if (stopping_.load(std::memory_order_acquire) && !draining) {
      // Drain transition: stop accepting, stop reading new frames, keep
      // running until every in-flight response is flushed.
      draining = true;
      drain_clock.Restart();
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      // Collect ids first: PumpConnection may close (and erase) entries.
      std::vector<uint64_t> ids;
      ids.reserve(conns_.size());
      for (auto& [id, conn] : conns_) {
        conn->read_shut = true;
        ids.push_back(id);
      }
      for (const uint64_t id : ids) {
        auto it = conns_.find(id);
        if (it != conns_.end()) PumpConnection(id, *it->second);
      }
    }
    if (draining) {
      if (conns_.empty()) return;
      if (drain_clock.ElapsedSeconds() > options_.drain_timeout_s) {
        // Peers that never read their responses do not get to hold the
        // process open forever.
        std::vector<uint64_t> ids;
        ids.reserve(conns_.size());
        for (auto& [id, conn] : conns_) ids.push_back(id);
        for (const uint64_t id : ids) CloseConnection(id);
        return;
      }
    }

    const int n =
        ::epoll_wait(epoll_fd_, events, kMaxEvents, draining ? 50 : -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll fd destroyed under us — only happens on teardown bugs
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == kListenerId) {
        if (!draining) HandleAccept();
        continue;
      }
      if (id == kWakeId) {
        uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      Connection& conn = *it->second;
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        CloseConnection(id);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) HandleReadable(id, conn);
      auto again = conns_.find(id);
      if (again != conns_.end() &&
          (events[i].events & EPOLLOUT) != 0) {
        PumpConnection(id, *again->second);
      }
    }
    DrainCompletions();
  }
}

void EstimatorServer::HandleAccept() {
  LoopMetrics& metrics = LoopMetrics::Get();
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      // EAGAIN: queue drained. Anything else: transient (ECONNABORTED,
      // EMFILE) — keep the loop alive either way.
      return;
    }
    if (options_.tcp_nodelay) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->home_shard = static_cast<int>(
        accept_round_robin_++ %
        static_cast<uint64_t>(shards_.num_shards()));
    conn->epoll_events = EPOLLIN;
    const uint64_t id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(id, std::move(conn));
    metrics.connections.Add();
    metrics.open_connections.Set(static_cast<double>(conns_.size()));
  }
}

void EstimatorServer::HandleReadable(uint64_t id, Connection& conn) {
  size_t total = 0;
  char buf[16 * 1024];
  while (!conn.read_shut && total < kMaxReadPerEvent &&
         static_cast<int>(conn.pending.size()) < options_.max_pipeline) {
    const ssize_t r = ::read(conn.fd, buf, sizeof(buf));
    if (r > 0) {
      conn.in.append(buf, static_cast<size_t>(r));
      total += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) {
      // Orderly (half-)close: answer everything already received, then
      // close once the responses are flushed.
      conn.read_shut = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(id);
    return;
  }
  PumpConnection(id, conn);
}

bool EstimatorServer::DispatchBuffered(uint64_t id, Connection& conn) {
  while (static_cast<int>(conn.pending.size()) < options_.max_pipeline) {
    Frame frame;
    const Result<size_t> consumed = DecodeFrame(
        std::string_view(conn.in).substr(conn.in_off), &frame);
    if (!consumed.ok()) return false;  // malformed framing: close
    if (*consumed == 0) break;         // incomplete frame: wait for bytes
    conn.in_off += *consumed;
    DispatchFrame(id, conn, std::move(frame));
  }
  if (conn.in_off == conn.in.size()) {
    conn.in.clear();
    conn.in_off = 0;
  } else if (conn.in_off > kCompactThreshold) {
    conn.in.erase(0, conn.in_off);
    conn.in_off = 0;
  }
  return true;
}

void EstimatorServer::DispatchFrame(uint64_t id, Connection& conn,
                                    Frame frame) {
  // Every request frame claims the next response slot; responses flush
  // strictly in slot order, which is the pipelining ordering contract —
  // regardless of which shard, side thread, or inline handler finishes
  // first.
  const uint64_t seq = conn.head_seq + conn.pending.size();
  conn.pending.emplace_back();
  switch (frame.type) {
    case FrameType::kEstimate: {
      if (shards_.saturated()) {
        // Shared overload signal: reject before parsing — under global
        // overload the per-request cost is one depth scan and one frame,
        // so achieved throughput stays flat instead of cliff-shaping.
        ServeMetrics::Get().rejected.Add();
        CompleteSlot(id, seq, Frame{FrameType::kOverloaded, ""});
        return;
      }
      // Parse against the current generation's schema (refreshed on the
      // version atomic). A swap between parse and flush executes the query
      // on the next generation — same-schema by the registry contract, so
      // column indices stay valid.
      if (parse_model_->version != registry_.current_version()) {
        parse_model_ = registry_.Current();
      }
      Result<query::Query> parsed =
          query::ParsePredicates(parse_model_->schema, frame.payload);
      if (!parsed.ok()) {
        LoopMetrics::Get().parse_errors.Add();
        CompleteSlot(id, seq,
                     Frame{FrameType::kError, parsed.status().ToString()});
        return;
      }
      shards_.Submit(
          conn.home_shard, std::move(*parsed),
          [this, id, seq](const MicroBatcher::Response& r) {
            Frame response;
            if (!r.status.ok()) {
              response = {FrameType::kError, r.status.ToString()};
            } else if (r.overloaded) {
              response = {FrameType::kOverloaded, ""};
            } else {
              response = {FrameType::kEstimateOk,
                          EncodeEstimatePayload(r.selectivity,
                                                r.model_version)};
            }
            PostCompletion({id, seq, std::move(response)});
          });
      return;
    }
    case FrameType::kSwap: {
      // Loading a model is disk + deserialize work — a side thread keeps the
      // event loop responsive; the slot keeps the response ordered.
      std::thread swapper([this, id, seq, path = std::move(frame.payload)] {
        const Result<uint64_t> swapped = registry_.SwapFromFile(path);
        Frame response =
            swapped.ok()
                ? Frame{FrameType::kOk,
                        "version " + std::to_string(*swapped)}
                : Frame{FrameType::kError, swapped.status().ToString()};
        PostCompletion({id, seq, std::move(response)});
      });
      util::MutexLock lock(swap_mu_);
      swap_threads_.push_back(std::move(swapper));
      return;
    }
    case FrameType::kMetrics:
      CompleteSlot(id, seq, Frame{FrameType::kOk, ScrapeMetrics()});
      return;
    case FrameType::kQueryLog: {
      // Inline like kMetrics: a snapshot of the lock-free ring never blocks
      // on the shard workers, so the loop thread can serve it directly.
      const obs::QueryLogFilter filter =
          obs::ParseQueryLogFilter(frame.payload);
      obs::QueryLog& log = obs::QueryLog::Global();
      CompleteSlot(id, seq,
                   Frame{FrameType::kOk,
                         obs::QueryLogToJson(log.Snapshot(filter),
                                             log.Appended(),
                                             log.capacity())});
      return;
    }
    case FrameType::kFeedback:
    case FrameType::kAppendData: {
      // Inline like kMetrics: the hooks parse and enqueue (bounded by
      // kMaxPayloadBytes) — the adaptation thread does the heavy work.
      if (options_.adapt == nullptr) {
        CompleteSlot(id, seq,
                     Frame{FrameType::kError,
                           "adaptation is not enabled on this server"});
        return;
      }
      const AdaptationHooks::Ack ack =
          frame.type == FrameType::kFeedback
              ? options_.adapt->OnFeedback(frame.payload)
              : options_.adapt->OnAppendData(frame.payload);
      if (ack.accepted) {
        CompleteSlot(id, seq, Frame{FrameType::kOk, ack.message});
      } else if (ack.overloaded) {
        CompleteSlot(id, seq, Frame{FrameType::kOverloaded, ""});
      } else {
        CompleteSlot(id, seq, Frame{FrameType::kError, ack.message});
      }
      return;
    }
    case FrameType::kShutdown:
      shutdown_requested_.store(true, std::memory_order_release);
      CompleteSlot(id, seq, Frame{FrameType::kOk, "draining"});
      return;
    default:
      CompleteSlot(id, seq,
                   Frame{FrameType::kError,
                         "unknown frame type " +
                             std::to_string(static_cast<int>(frame.type))});
      return;
  }
}

void EstimatorServer::CompleteSlot(uint64_t id, uint64_t seq, Frame response) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;  // connection died before its answer
  Connection& conn = *it->second;
  if (seq < conn.head_seq) return;
  const uint64_t index = seq - conn.head_seq;
  if (index >= conn.pending.size()) return;
  conn.pending[index].done = true;
  conn.pending[index].response = std::move(response);
}

std::string EstimatorServer::ScrapeMetrics() {
  // Refresh every gauge that is a projection of live state *before* the one
  // registry snapshot: the previous per-family reads could tear — a gauge
  // updated between families showed a mix of two scrapes. The handler runs
  // inline on the loop thread, so conns_ needs no locking, and the shard
  // depth gauges come from the same relaxed atomics admission uses.
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  LoopMetrics::Get().open_connections.Set(
      static_cast<double>(conns_.size()));
  for (int s = 0; s < shards_.num_shards(); ++s) {
    reg.GetGauge("iam_serve_queue_depth", "shard", std::to_string(s))
        .Set(static_cast<double>(shards_.shard(s).ApproxQueueDepth()));
  }
  const obs::QueryLog& log = obs::QueryLog::Global();
  reg.GetGauge("iam_querylog_appended")
      .Set(static_cast<double>(log.Appended()));
  reg.GetGauge("iam_querylog_buffered")
      .Set(static_cast<double>(
          std::min<uint64_t>(log.Appended(), log.capacity())));
  reg.GetGauge("iam_querylog_capacity")
      .Set(static_cast<double>(log.capacity()));
  // Adapt gauges join the same single-snapshot discipline: refreshed here,
  // before the one Snapshot(), never between families.
  if (options_.adapt != nullptr) options_.adapt->RefreshGauges();
  return obs::MetricsToPrometheus(reg.Snapshot());
}

void EstimatorServer::PumpConnection(uint64_t id, Connection& conn) {
  LoopMetrics& metrics = LoopMetrics::Get();
  for (;;) {
    // 1. Decode + dispatch whatever is buffered (below the pipeline cap).
    if (!conn.read_shut && !DispatchBuffered(id, conn)) {
      CloseConnection(id);
      return;
    }
    // 2. Encode completed head slots — submission order, by construction.
    while (!conn.pending.empty() && conn.pending.front().done) {
      AppendFrame(&conn.out, conn.pending.front().response);
      conn.pending.pop_front();
      ++conn.head_seq;
    }
    // 3. Write what the socket accepts; EAGAIN parks the rest on EPOLLOUT.
    bool wrote = false;
    while (conn.out_off < conn.out.size()) {
      const ssize_t w =
          ::send(conn.fd, conn.out.data() + conn.out_off,
                 conn.out.size() - conn.out_off, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          metrics.partial_writes.Add();
          break;
        }
        CloseConnection(id);
        return;
      }
      conn.out_off += static_cast<size_t>(w);
      wrote = true;
    }
    if (conn.out_off == conn.out.size()) {
      conn.out.clear();
      conn.out_off = 0;
    } else if (conn.out_off > kCompactThreshold) {
      conn.out.erase(0, conn.out_off);
      conn.out_off = 0;
    }
    // 4. Writing may have freed pipeline slots; go decode more if there are
    // complete frames already buffered. Otherwise the pump is done.
    const bool more_to_dispatch =
        !conn.read_shut && conn.in_off < conn.in.size() &&
        static_cast<int>(conn.pending.size()) < options_.max_pipeline;
    if (!(wrote && more_to_dispatch)) break;
  }
  if (conn.read_shut && conn.pending.empty() &&
      conn.out_off == conn.out.size()) {
    // Nothing left to answer and nothing left to flush.
    CloseConnection(id);
    return;
  }
  UpdateInterest(id, conn);
}

void EstimatorServer::UpdateInterest(uint64_t id, Connection& conn) {
  uint32_t want = 0;
  if (!conn.read_shut &&
      static_cast<int>(conn.pending.size()) < options_.max_pipeline) {
    want |= EPOLLIN;
  }
  if (conn.out_off < conn.out.size()) want |= EPOLLOUT;
  if (want == conn.epoll_events) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0) {
    conn.epoll_events = want;
  }
}

void EstimatorServer::CloseConnection(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  conns_.erase(it);
  LoopMetrics::Get().open_connections.Set(
      static_cast<double>(conns_.size()));
}

void EstimatorServer::PostCompletion(Completion completion) {
  {
    util::MutexLock lock(completions_mu_);
    completions_.push_back(std::move(completion));
  }
  const uint64_t one = 1;
  // A full eventfd counter (impossible here) would drop the wake; the loop's
  // drain-timeout pass is the backstop either way.
  [[maybe_unused]] const ssize_t w =
      ::write(wake_fd_, &one, sizeof(one));
}

void EstimatorServer::DrainCompletions() {
  std::vector<Completion> batch;
  {
    util::MutexLock lock(completions_mu_);
    batch.swap(completions_);
  }
  if (batch.empty()) return;
  // Fill every slot first, then pump each touched connection once — a
  // pipelined burst completes with one write per connection, not one per
  // response.
  std::vector<uint64_t> touched;
  touched.reserve(batch.size());
  for (Completion& completion : batch) {
    CompleteSlot(completion.conn_id, completion.seq,
                 std::move(completion.response));
    touched.push_back(completion.conn_id);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const uint64_t id : touched) {
    auto it = conns_.find(id);
    if (it != conns_.end()) PumpConnection(id, *it->second);
  }
}

bool EstimatorServer::DrainComplete() { return conns_.empty(); }

void EstimatorServer::Shutdown() {
  util::MutexLock lock(shutdown_mu_);
  if (listen_fd_ < 0) return;  // never started, or already shut down
  stopping_.store(true, std::memory_order_release);
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t w = ::write(wake_fd_, &one, sizeof(one));
  // Shard drain answers everything already queued; the callbacks post
  // completions the still-running loop flushes to the sockets.
  shards_.DrainAndStop();
  {
    util::MutexLock swap_lock(swap_mu_);
    for (std::thread& t : swap_threads_) {
      if (t.joinable()) t.join();
    }
    swap_threads_.clear();
  }
  if (loop_thread_.joinable()) loop_thread_.join();
  ::close(listen_fd_);
  ::close(epoll_fd_);
  ::close(wake_fd_);
  listen_fd_ = -1;
  epoll_fd_ = -1;
  wake_fd_ = -1;
}

}  // namespace iam::serve
