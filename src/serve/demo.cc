#include "serve/demo.h"

#include <utility>

#include "core/presets.h"
#include "data/synthetic.h"
#include "query/parser.h"
#include "query/workload.h"
#include "util/random.h"

namespace iam::serve {

std::unique_ptr<core::ArDensityEstimator> TrainDemoEstimator(size_t rows,
                                                             uint64_t seed) {
  const data::Table twi = data::MakeSynTwi(rows, seed);
  core::ArEstimatorOptions opts = core::IamDefaults(6);
  opts.made.hidden_sizes = {32, 32};
  opts.epochs = 1;
  opts.large_domain_threshold = 200;
  opts.gmm_samples_per_component = 500;
  opts.progressive_samples = 64;
  auto model = std::make_unique<core::ArDensityEstimator>(twi, opts);
  model->Train();
  return model;
}

data::Table DemoTable(size_t rows, uint64_t seed) {
  return data::MakeSynTwi(rows, seed);
}

data::Table ShiftedDemoTable(size_t rows, uint64_t seed, double shift) {
  data::Table table = data::MakeSynTwi(rows, seed);
  for (int c = 0; c < table.num_columns(); ++c) {
    for (double& v : table.mutable_column(c).values) v += shift;
  }
  return table;
}

std::vector<std::string> DemoPredicates(int count, uint64_t seed) {
  // A small table with the demo schema is enough for the generator; the
  // bounds it draws stay inside the demo model's value range.
  const data::Table twi = data::MakeSynTwi(512, 17);
  query::WorkloadOptions options;
  options.num_queries = count;
  Rng rng(seed);
  const std::vector<query::Query> queries =
      query::GenerateWorkload(twi, options, rng);
  std::vector<std::string> rendered;
  rendered.reserve(queries.size());
  for (const query::Query& q : queries) {
    rendered.push_back(query::ToString(twi, q));
  }
  return rendered;
}

}  // namespace iam::serve
