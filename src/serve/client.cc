#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace iam::serve {

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status Client::Connect(const std::string& host, int port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address " + host);
  }
  if (::connect(fd, AsSockaddr(addr), sizeof(addr)) != 0) {
    const Status failed =
        Status::IoError(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return failed;
  }
  // Without this, Nagle holds each small request frame until the server's
  // delayed ACK (~40 ms) on an un-pipelined connection.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::Ok();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Frame> Client::RoundTrip(FrameType type, const std::string& payload) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  Status status = WriteFrame(fd_, {type, payload});
  if (!status.ok()) return status;
  Frame response;
  status = ReadFrame(fd_, &response);
  if (!status.ok()) return status;
  return response;
}

namespace {

Result<Client::EstimateReply> DecodeEstimateResponse(const Frame& response) {
  switch (response.type) {
    case FrameType::kEstimateOk: {
      Client::EstimateReply reply;
      const Status decoded = DecodeEstimatePayload(
          response.payload, &reply.selectivity, &reply.model_version);
      if (!decoded.ok()) return decoded;
      return reply;
    }
    case FrameType::kOverloaded: {
      Client::EstimateReply reply;
      reply.overloaded = true;
      return reply;
    }
    case FrameType::kError:
      return Status::Internal("server error: " + response.payload);
    default:
      return Status::Internal("unexpected response frame type " +
                              std::to_string(static_cast<int>(response.type)));
  }
}

}  // namespace

Result<Client::EstimateReply> Client::Estimate(const std::string& predicates) {
  Result<Frame> response = RoundTrip(FrameType::kEstimate, predicates);
  if (!response.ok()) return response.status();
  return DecodeEstimateResponse(*response);
}

Status Client::SendEstimate(const std::string& predicates) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  return WriteFrame(fd_, {FrameType::kEstimate, predicates});
}

Result<Client::EstimateReply> Client::ReceiveEstimate() {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  Frame response;
  const Status read = ReadFrame(fd_, &response);
  if (!read.ok()) return read;
  return DecodeEstimateResponse(response);
}

Result<bool> Client::ReplyReady(int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  pollfd pfd{fd_, POLLIN, 0};
  const int n = ::poll(&pfd, 1, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return false;
    return Status::IoError(std::string("poll: ") + std::strerror(errno));
  }
  return n > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

Result<uint64_t> Client::Swap(const std::string& model_path) {
  Result<Frame> response = RoundTrip(FrameType::kSwap, model_path);
  if (!response.ok()) return response.status();
  if (response->type == FrameType::kError) {
    return Status::Internal("server error: " + response->payload);
  }
  if (response->type != FrameType::kOk) {
    return Status::Internal("unexpected response frame type " +
                            std::to_string(static_cast<int>(response->type)));
  }
  // The acknowledgement reads "version N".
  constexpr std::string_view kPrefix = "version ";
  if (response->payload.rfind(kPrefix, 0) != 0) {
    return Status::Internal("malformed swap acknowledgement: " +
                            response->payload);
  }
  return static_cast<uint64_t>(
      std::strtoull(response->payload.c_str() + kPrefix.size(), nullptr, 10));
}

Result<std::string> Client::Metrics() {
  Result<Frame> response = RoundTrip(FrameType::kMetrics, "");
  if (!response.ok()) return response.status();
  if (response->type != FrameType::kOk) {
    return Status::Internal("server error: " + response->payload);
  }
  return response->payload;
}

Result<std::string> Client::QueryLog(const std::string& filters) {
  Result<Frame> response = RoundTrip(FrameType::kQueryLog, filters);
  if (!response.ok()) return response.status();
  if (response->type != FrameType::kOk) {
    return Status::Internal("server error: " + response->payload);
  }
  return response->payload;
}

namespace {

// Shared kOk/kOverloaded/kError mapping of the adaptation acknowledgements.
Result<std::string> DecodeAdaptAck(const Frame& response) {
  switch (response.type) {
    case FrameType::kOk:
      return response.payload;
    case FrameType::kOverloaded:
      return Status::FailedPrecondition("adaptation queue is full");
    case FrameType::kError:
      return Status::Internal("server error: " + response.payload);
    default:
      return Status::Internal("unexpected response frame type " +
                              std::to_string(static_cast<int>(response.type)));
  }
}

}  // namespace

Result<std::string> Client::Feedback(const std::string& payload) {
  Result<Frame> response = RoundTrip(FrameType::kFeedback, payload);
  if (!response.ok()) return response.status();
  return DecodeAdaptAck(*response);
}

Result<std::string> Client::AppendData(const std::string& payload) {
  Result<Frame> response = RoundTrip(FrameType::kAppendData, payload);
  if (!response.ok()) return response.status();
  return DecodeAdaptAck(*response);
}

Status Client::RequestShutdown() {
  Result<Frame> response = RoundTrip(FrameType::kShutdown, "");
  if (!response.ok()) return response.status();
  if (response->type != FrameType::kOk) {
    return Status::Internal("server error: " + response->payload);
  }
  return Status::Ok();
}

}  // namespace iam::serve
