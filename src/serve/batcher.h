#ifndef IAM_SERVE_BATCHER_H_
#define IAM_SERVE_BATCHER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>

#include "query/query.h"
#include "serve/model_registry.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"

namespace iam::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace iam::obs

namespace iam::serve {

struct BatcherOptions {
  // Flush when this many requests have coalesced...
  int max_batch = 32;
  // ...or when the oldest queued request has waited this long, whichever
  // comes first. The classic dynamic micro-batching trade: larger batches
  // amortize the model's per-batch cost (thread-pool fan-out, shared
  // scratch), the deadline bounds the latency a lonely request can pay.
  double max_delay_s = 2e-3;
  // Admission watermark per shard: a request arriving while this many are
  // already queued is fast-rejected (kOverloaded) — or spilled to a less
  // loaded sibling shard by ShardSet — instead of queued, which keeps the
  // latency of *accepted* requests bounded when offered load exceeds
  // capacity.
  int queue_capacity = 512;
  // > 0 logs every query whose end-to-end latency (queue wait + amortized
  // execution) meets the threshold to stderr, one line per query with its
  // query-log sequence id and sampler diagnostics (serve_cli --slow-ms).
  double slow_query_log_s = 0.0;
};

// Process-wide serving totals, resolved once from the global registry
// (DESIGN.md §12 idiom). Per-shard series live in ShardMetrics.
struct ServeMetrics {
  obs::Counter& accepted;
  obs::Counter& rejected;
  obs::Counter& spilled;  // admitted on a sibling after the home shard filled
  obs::Counter& batches;

  static ServeMetrics& Get();
};

// The per-shard instrumentation: the queue-depth gauge and the batching
// histograms carry a `shard` label so an operator can see one hot shard
// behind a flat total. Series of one family share the Prometheus # TYPE
// header and merge deterministically in snapshots (name-sorted; see
// DESIGN.md §12).
struct ShardMetrics {
  obs::Counter& accepted;
  obs::Gauge& queue_depth;
  obs::Histogram& batch_size;
  obs::Histogram& queue_wait_seconds;
  obs::Histogram& batch_exec_seconds;
  // Batch execution time amortized per query — the number the pooled
  // cross-query sampler moves: coalescing now compounds with sampling
  // instead of only saving queueing overhead.
  obs::Histogram& query_exec_seconds;
  // End-to-end per-query latency (queue wait + amortized execution), the
  // distribution the query-log records reconstruct exactly; carries
  // query-log exemplars so a tail bucket links to concrete records.
  obs::Histogram& query_total_seconds;

  static ShardMetrics Get(int shard);
};

// One dynamic micro-batching shard: callers submit queries with a completion
// callback, a single worker thread coalesces up to max_batch (or until the
// oldest request hits max_delay) and flushes one Estimator::EstimateBatch
// per micro-batch against the shard's cached model snapshot. The snapshot
// refreshes only when ModelRegistry::current_version() moved (one relaxed
// load per flush), so a hot-swap takes effect at the next flush — never
// mid-batch — and shard workers never contend on the registry mutex in
// steady state.
//
// Note on determinism: EstimateBatch seeds each query's sampler from its
// index within the batch, so an estimate under dynamic batching depends on
// the batch composition — i.e. on arrival timing. Every such estimate equals
// some fixed-batch estimate of the same model; a solo request (batch of one)
// reproduces Estimator::Estimate bit-exactly.
class MicroBatcher {
 public:
  MicroBatcher(ModelRegistry& registry, BatcherOptions options,
               int shard_index = 0);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  struct Response {
    Status status;  // non-OK only when the batcher is already stopped
    bool overloaded = false;
    double selectivity = 0.0;
    uint64_t model_version = 0;
  };

  // Invoked exactly once per admitted request, from the worker thread, after
  // the request's batch flushed (or inline from DrainAndStop's final drain).
  using Callback = std::function<void(const Response&)>;

  // Non-blocking admission: queues the query and returns true — the callback
  // fires exactly once, later, from the worker thread. Returns false when
  // the queue is at capacity or the batcher is draining; in that case the
  // callback is never invoked AND the arguments are left untouched (rvalue
  // refs are only moved from on admission), so the caller can re-route the
  // same query to a sibling shard or reject it.
  bool TryQueue(query::Query&& query, Callback&& done) IAM_EXCLUDES(mu_);

  // Blocking convenience wrapper over TryQueue (library callers and tests):
  // coalesces the query into the next micro-batch and waits for its flush,
  // or fast-rejects with overloaded=true when the queue is at capacity.
  Response Estimate(const query::Query& q) IAM_EXCLUDES(mu_);

  // Stops admission, flushes everything already queued (in max_batch-sized
  // batches, callbacks included), and joins the worker. Idempotent; called
  // by the destructor.
  void DrainAndStop() IAM_EXCLUDES(mu_);

  // Queue depth as one relaxed atomic load — cheap enough for sibling shards
  // and the event loop to poll on every admission decision.
  int ApproxQueueDepth() const {
    return depth_.load(std::memory_order_relaxed);
  }

  bool stopped() const { return stop_flag_.load(std::memory_order_acquire); }

  int shard_index() const { return shard_index_; }
  const BatcherOptions& options() const { return options_; }

 private:
  struct Request {
    query::Query query;
    Callback done;
    Stopwatch queued;  // running since enqueue; read at dequeue
  };

  void WorkerLoop() IAM_EXCLUDES(mu_);

  ModelRegistry& registry_;
  const BatcherOptions options_;
  const int shard_index_;
  ServeMetrics& totals_;
  ShardMetrics metrics_;

  mutable util::Mutex mu_{util::LockRank::kBatcherQueue};
  std::condition_variable work_cv_;  // worker: arrivals / stop
  std::deque<Request> queue_ IAM_GUARDED_BY(mu_);
  bool stop_ IAM_GUARDED_BY(mu_) = false;
  std::atomic<int> depth_{0};
  std::atomic<bool> stop_flag_{false};

  // Serializes the DrainAndStop join.
  util::Mutex join_mu_{util::LockRank::kBatcherJoin};
  std::thread worker_;   // started last, joined by DrainAndStop
};

}  // namespace iam::serve

#endif  // IAM_SERVE_BATCHER_H_
