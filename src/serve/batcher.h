#ifndef IAM_SERVE_BATCHER_H_
#define IAM_SERVE_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <thread>

#include "query/query.h"
#include "serve/model_registry.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"

namespace iam::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace iam::obs

namespace iam::serve {

struct BatcherOptions {
  // Flush when this many requests have coalesced...
  int max_batch = 32;
  // ...or when the oldest queued request has waited this long, whichever
  // comes first. The classic dynamic micro-batching trade: larger batches
  // amortize the model's per-batch cost (thread-pool fan-out, shared
  // scratch), the deadline bounds the latency a lonely request can pay.
  double max_delay_s = 2e-3;
  // Admission watermark: a request arriving while this many are already
  // queued is fast-rejected (kOverloaded) instead of queued, which keeps the
  // latency of *accepted* requests bounded when offered load exceeds
  // capacity.
  int queue_capacity = 512;
};

// Instrumentation handles of the serving layer, resolved once from the
// global registry (DESIGN.md §12 idiom).
struct ServeMetrics {
  obs::Counter& accepted;
  obs::Counter& rejected;
  obs::Counter& batches;
  obs::Gauge& queue_depth;
  obs::Histogram& batch_size;
  obs::Histogram& queue_wait_seconds;
  obs::Histogram& batch_exec_seconds;
  // Batch execution time amortized per query — the number the pooled
  // cross-query sampler moves: coalescing now compounds with sampling
  // instead of only saving queueing overhead.
  obs::Histogram& query_exec_seconds;

  static ServeMetrics& Get();
};

// The dynamic micro-batching queue: concurrent callers (one connection
// thread each) block in Estimate() while their queries coalesce; a single
// worker thread flushes the queue into one Estimator::EstimateBatch call per
// micro-batch, against the registry's current model snapshot. Requests never
// straddle batches, and a model swap takes effect at the next flush — never
// mid-batch.
//
// Note on determinism: EstimateBatch seeds each query's sampler from its
// index within the batch, so an estimate under dynamic batching depends on
// the batch composition — i.e. on arrival timing. Every such estimate equals
// some fixed-batch estimate of the same model; a solo request (batch of one)
// reproduces Estimator::Estimate bit-exactly.
class MicroBatcher {
 public:
  MicroBatcher(ModelRegistry& registry, BatcherOptions options);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  struct Response {
    Status status;  // non-OK only when the batcher is already stopped
    bool overloaded = false;
    double selectivity = 0.0;
    uint64_t model_version = 0;
  };

  // Blocking: coalesces the query into the next micro-batch and waits for
  // its flush, or fast-rejects when the queue is at capacity.
  Response Estimate(const query::Query& q) IAM_EXCLUDES(mu_);

  // Stops admission, flushes everything already queued (in max_batch-sized
  // batches), and joins the worker. Idempotent; called by the destructor.
  void DrainAndStop() IAM_EXCLUDES(mu_);

  // Requests queued right now (tests poll this to stage overload scenarios).
  int queue_depth() const IAM_EXCLUDES(mu_);

  const BatcherOptions& options() const { return options_; }

 private:
  struct Waiter {
    const query::Query* query = nullptr;
    Stopwatch queued;  // running since enqueue; read at dequeue
    bool done = false;
    double selectivity = 0.0;
    uint64_t model_version = 0;
  };

  void WorkerLoop() IAM_EXCLUDES(mu_);

  ModelRegistry& registry_;
  const BatcherOptions options_;
  ServeMetrics& metrics_;

  mutable util::Mutex mu_;
  std::condition_variable work_cv_;  // worker: arrivals / stop
  std::condition_variable done_cv_;  // waiters: batch completed
  std::deque<Waiter*> queue_ IAM_GUARDED_BY(mu_);
  bool stop_ IAM_GUARDED_BY(mu_) = false;

  util::Mutex join_mu_;  // serializes the DrainAndStop join
  std::thread worker_;   // started last, joined by DrainAndStop
};

}  // namespace iam::serve

#endif  // IAM_SERVE_BATCHER_H_
