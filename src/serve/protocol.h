#ifndef IAM_SERVE_PROTOCOL_H_
#define IAM_SERVE_PROTOCOL_H_

#include <netinet/in.h>

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace iam::serve {

// Wire protocol of the estimator service (DESIGN.md §13). Every message is a
// length-prefixed frame:
//
//   uint32 LE frame length (type byte + payload) | uint8 type | payload
//
// Request payloads are text (predicates in the query::ParsePredicates
// grammar, filesystem paths); the estimate response payload is binary
// (selectivity + model version), everything else is text. The protocol is
// strictly request/response per frame, but frames from one connection may be
// pipelined — the server answers in submission order.

// Upper bound on a frame payload; a header announcing more is malformed and
// closes the connection (a desynchronized byte stream can otherwise demand
// gigabytes).
inline constexpr uint32_t kMaxPayloadBytes = 1u << 20;

enum class FrameType : uint8_t {
  // Requests.
  kEstimate = 1,  // payload: predicate text
  kSwap = 2,      // payload: path of the model snapshot to hot-swap in
  kMetrics = 3,   // payload: empty; response carries the Prometheus export
  kShutdown = 4,  // payload: empty; server drains and exits
  kQueryLog = 5,  // payload: optional filter text "last=N min_ms=X";
                  // response: kOk with the query-log records as JSON
  kFeedback = 6,  // payload: observed-truth text, "seq=<N> actual=<sel>" or
                  // "actual=<sel> where <predicates>" (adapt/feedback.h);
                  // response: kOk once queued, kOverloaded when the
                  // feedback queue is full, kError when adaptation is off
  kAppendData = 7,  // payload: "cols=<n>\n" + CSV rows for the retraining
                    // reservoir (adapt/feedback.h); responses as kFeedback

  // Responses.
  kEstimateOk = 65,  // payload: f64 selectivity | u64 model version (LE)
  kOk = 66,          // payload: informational text (swap: "version <N>")
  kError = 67,       // payload: human-readable Status text
  kOverloaded = 68,  // payload: empty — admission-control fast-reject
};

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

// Serialized bytes of one frame (header + payload).
std::string EncodeFrame(const Frame& frame);

// Appends the serialized frame to `out` — the event loop's per-connection
// write buffers grow in place instead of allocating a temporary per response.
void AppendFrame(std::string* out, const Frame& frame);

// Parses one frame from the front of `buffer`. Returns the number of bytes
// consumed, 0 when the buffer does not yet hold a complete frame, or an
// error for a malformed header (zero-length or oversized frame).
Result<size_t> DecodeFrame(std::string_view buffer, Frame* frame);

// Blocking fd transport. EOF on a frame boundary surfaces as kNotFound
// ("connection closed") so callers can tell an orderly hangup from a
// mid-frame truncation (kIoError).
Status ReadFrame(int fd, Frame* frame);
Status WriteFrame(int fd, const Frame& frame);

// kEstimateOk payload codec.
std::string EncodeEstimatePayload(double selectivity, uint64_t model_version);
Status DecodeEstimatePayload(std::string_view payload, double* selectivity,
                             uint64_t* model_version);

// sockaddr_in -> sockaddr aliasing as the sockets ABI requires. Kept here so
// the reinterpret_cast lives in the audited protocol codec — scripts/lint.sh
// bans type punning elsewhere in src/ (DESIGN.md §16).
const sockaddr* AsSockaddr(const sockaddr_in& addr);
sockaddr* AsMutableSockaddr(sockaddr_in& addr);

}  // namespace iam::serve

#endif  // IAM_SERVE_PROTOCOL_H_
