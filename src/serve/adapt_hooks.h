#ifndef IAM_SERVE_ADAPT_HOOKS_H_
#define IAM_SERVE_ADAPT_HOOKS_H_

#include <string>
#include <string_view>

namespace iam::serve {

// Event-loop-side surface of the adaptation subsystem (DESIGN.md §18). The
// server owns the sockets and the frame decoder; the adaptation controller
// (adapt::AdaptController) owns the feedback queue, corrector, and retrain
// thread. This interface keeps the dependency one-way: src/adapt links
// against iam_serve, never the reverse.
//
// All three methods are called inline on the event-loop thread, so they must
// be cheap and never block: intake does bounded parsing + a bounded-queue
// enqueue, gauge refresh copies relaxed atomics. The hooks object must
// outlive the server.
class AdaptationHooks {
 public:
  virtual ~AdaptationHooks() = default;

  // Intake verdict for one frame. accepted -> kOk carrying `message`;
  // !accepted && overloaded -> kOverloaded (queue full, retry later);
  // !accepted && !overloaded -> kError carrying `message`.
  struct Ack {
    bool accepted = false;
    bool overloaded = false;
    std::string message;
  };

  // One kFeedback payload (adapt::ParseFeedbackPayload grammar).
  virtual Ack OnFeedback(std::string_view payload) = 0;
  // One kAppendData payload (adapt::ParseAppendPayload grammar).
  virtual Ack OnAppendData(std::string_view payload) = 0;

  // Refreshes the adapt gauges (queue depth, window p90, corrector regions)
  // from the controller's atomics. Called by EstimatorServer::ScrapeMetrics
  // before its single registry snapshot, preserving the one-snapshot-per-
  // scrape discipline for the adapt family too.
  virtual void RefreshGauges() = 0;
};

}  // namespace iam::serve

#endif  // IAM_SERVE_ADAPT_HOOKS_H_
