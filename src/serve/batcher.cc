#include "serve/batcher.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "estimator/estimator.h"
#include "obs/metrics.h"
#include "obs/query_log.h"

namespace iam::serve {

ServeMetrics& ServeMetrics::Get() {
  static ServeMetrics metrics = [] {
    obs::MetricRegistry& reg = obs::MetricRegistry::Global();
    return ServeMetrics{
        reg.GetCounter("iam_serve_accepted_total"),
        reg.GetCounter("iam_serve_rejected_total"),
        reg.GetCounter("iam_serve_spilled_total"),
        reg.GetCounter("iam_serve_batches_total"),
    };
  }();
  return metrics;
}

ShardMetrics ShardMetrics::Get(int shard) {
  static constexpr double kBatchBounds[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  const std::string s = std::to_string(shard);
  return ShardMetrics{
      reg.GetCounter("iam_serve_shard_accepted_total", "shard", s),
      reg.GetGauge("iam_serve_queue_depth", "shard", s),
      reg.GetHistogram("iam_serve_batch_size", "shard", s, kBatchBounds),
      reg.GetHistogram("iam_serve_queue_wait_seconds", "shard", s,
                       obs::LatencyBounds()),
      reg.GetHistogram("iam_serve_batch_exec_seconds", "shard", s,
                       obs::LatencyBounds()),
      reg.GetHistogram("iam_serve_query_exec_seconds", "shard", s,
                       obs::LatencyBounds()),
      reg.GetHistogram("iam_serve_query_total_seconds", "shard", s,
                       obs::LatencyBounds()),
  };
}

MicroBatcher::MicroBatcher(ModelRegistry& registry, BatcherOptions options,
                           int shard_index)
    : registry_(registry),
      options_([&options] {
        options.max_batch = std::max(options.max_batch, 1);
        options.queue_capacity = std::max(options.queue_capacity, 0);
        options.max_delay_s = std::max(options.max_delay_s, 0.0);
        return options;
      }()),
      shard_index_(shard_index),
      totals_(ServeMetrics::Get()),
      metrics_(ShardMetrics::Get(shard_index)),
      worker_([this] { WorkerLoop(); }) {}

MicroBatcher::~MicroBatcher() { DrainAndStop(); }

bool MicroBatcher::TryQueue(query::Query&& query, Callback&& done) {
  util::MutexLock lock(mu_);
  if (stop_ || static_cast<int>(queue_.size()) >= options_.queue_capacity) {
    return false;
  }
  queue_.push_back(Request{std::move(query), std::move(done), Stopwatch{}});
  const int depth = static_cast<int>(queue_.size());
  depth_.store(depth, std::memory_order_relaxed);
  totals_.accepted.Add();
  metrics_.accepted.Add();
  metrics_.queue_depth.Set(static_cast<double>(depth));
  work_cv_.notify_one();
  return true;
}

MicroBatcher::Response MicroBatcher::Estimate(const query::Query& q) {
  struct Waiter {
    util::Mutex mu{util::LockRank::kLeaf};
    std::condition_variable cv;
    bool done = false;
    Response response;
  } waiter;
  const bool queued = TryQueue(query::Query(q), [&waiter](const Response& r) {
    util::MutexLock lock(waiter.mu);
    waiter.response = r;
    waiter.done = true;
    waiter.cv.notify_one();
  });
  if (!queued) {
    if (stopped()) {
      return {Status::FailedPrecondition("batcher is draining"), false, 0.0,
              0};
    }
    totals_.rejected.Add();
    return {Status::Ok(), /*overloaded=*/true, 0.0, 0};
  }
  util::MutexLock lock(waiter.mu);
  while (!waiter.done) lock.Wait(waiter.cv);
  return waiter.response;
}

void MicroBatcher::WorkerLoop() {
  std::vector<Request> batch;
  std::vector<query::Query> queries;
  std::vector<double> waits;
  std::vector<estimator::QueryDiagnostics> diags;
  // The worker's generation snapshot: taken once, refreshed only when the
  // registry's version atomic moved — a flush in steady state costs one
  // relaxed load instead of a mutex acquisition.
  std::shared_ptr<LoadedModel> model = registry_.Current(shard_index_);
  for (;;) {
    batch.clear();
    queries.clear();
    {
      util::MutexLock lock(mu_);
      while (queue_.empty() && !stop_) lock.Wait(work_cv_);
      if (queue_.empty()) return;  // stopped and fully drained
      // Coalesce: hold the flush until the batch fills or the head of the
      // queue hits its delay budget. During a drain, flush immediately.
      while (static_cast<int>(queue_.size()) < options_.max_batch && !stop_) {
        const double remaining =
            options_.max_delay_s - queue_.front().queued.ElapsedSeconds();
        if (remaining <= 0.0) break;
        lock.WaitFor(work_cv_, remaining);
      }
      const size_t take = std::min(queue_.size(),
                                   static_cast<size_t>(options_.max_batch));
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      const int depth = static_cast<int>(queue_.size());
      depth_.store(depth, std::memory_order_relaxed);
      metrics_.queue_depth.Set(static_cast<double>(depth));
    }

    if (model->version != registry_.current_version()) {
      model = registry_.Current(shard_index_);
    }
    queries.reserve(batch.size());
    waits.clear();
    for (Request& request : batch) {
      // Queue wait is read at dequeue; the histogram Record happens below so
      // it can carry the query-log sequence id as its exemplar.
      waits.push_back(request.queued.ElapsedSeconds());
      queries.push_back(std::move(request.query));
    }
    metrics_.batch_size.Record(static_cast<double>(batch.size()));
    diags.assign(batch.size(), estimator::QueryDiagnostics{});
    Stopwatch exec;
    const std::vector<double> selectivities =
        model->estimator->EstimateBatchDiagnosed(queries, diags);
    const double exec_seconds = exec.ElapsedSeconds();
    const double per_query_exec =
        exec_seconds / static_cast<double>(batch.size());
    metrics_.batch_exec_seconds.Record(exec_seconds);
    metrics_.query_exec_seconds.Record(per_query_exec);
    totals_.batches.Add();

    // One QueryRecord per request (DESIGN.md §17): the sampler diagnostics
    // joined with the serving context. The latency histograms record with
    // the assigned sequence id so tail buckets link back to these records.
    obs::QueryLog& query_log = obs::QueryLog::Global();
    for (size_t i = 0; i < batch.size(); ++i) {
      const estimator::QueryDiagnostics& d = diags[i];
      obs::QueryRecord rec;
      rec.model_version = model->version;
      rec.sampler_draws = d.sampler_draws;
      rec.shard = shard_index_;
      rec.batch_size = static_cast<int32_t>(batch.size());
      rec.sample_rows = d.sample_rows;
      rec.rounds = d.rounds;
      rec.early_stop_round = d.early_stop_round;
      rec.prefix_hits = d.prefix_hits;
      rec.fallbacks = d.fallbacks;
      rec.fallback_column = d.fallback_column;
      rec.dead = d.dead ? 1 : 0;
      rec.ci_half_width = d.ci_half_width;
      rec.selectivity = selectivities[i];
      rec.region_key = d.region_key;
      rec.corrector_mult = d.corrector_multiplier;
      rec.queue_wait_s = waits[i];
      rec.exec_s = per_query_exec;
      rec.total_s = waits[i] + per_query_exec;
      const uint64_t seq = query_log.Append(rec);
      metrics_.queue_wait_seconds.Record(waits[i], seq);
      metrics_.query_total_seconds.Record(rec.total_s, seq);
      if (options_.slow_query_log_s > 0.0 &&
          rec.total_s >= options_.slow_query_log_s) {
        std::fprintf(
            stderr,
            "iam_serve slow query: seq=%llu shard=%d batch=%d "
            "total_ms=%.3f wait_ms=%.3f exec_ms=%.3f draws=%llu rounds=%d "
            "early_stop=%d prefix_hits=%d fallbacks=%d sel=%.6g\n",
            static_cast<unsigned long long>(seq), shard_index_,
            rec.batch_size, rec.total_s * 1e3, rec.queue_wait_s * 1e3,
            rec.exec_s * 1e3,
            static_cast<unsigned long long>(rec.sampler_draws), rec.rounds,
            rec.early_stop_round, rec.prefix_hits, rec.fallbacks,
            rec.selectivity);
      }
    }

    // Callbacks run on the worker thread, outside every lock: they post
    // completions to the event loop (or wake a blocking Estimate waiter) and
    // must be free to take their own locks.
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].done(
          Response{Status::Ok(), false, selectivities[i], model->version});
    }
  }
}

void MicroBatcher::DrainAndStop() {
  stop_flag_.store(true, std::memory_order_release);
  {
    util::MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  // join_mu_ makes the drain idempotent and safe to race (Shutdown and the
  // destructor can both land here): exactly one caller joins.
  util::MutexLock join(join_mu_);
  if (worker_.joinable()) worker_.join();
}

}  // namespace iam::serve
