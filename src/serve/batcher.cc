#include "serve/batcher.h"

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "obs/metrics.h"

namespace iam::serve {

ServeMetrics& ServeMetrics::Get() {
  static constexpr double kBatchBounds[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  static ServeMetrics metrics = [] {
    obs::MetricRegistry& reg = obs::MetricRegistry::Global();
    return ServeMetrics{
        reg.GetCounter("iam_serve_accepted_total"),
        reg.GetCounter("iam_serve_rejected_total"),
        reg.GetCounter("iam_serve_batches_total"),
        reg.GetGauge("iam_serve_queue_depth"),
        reg.GetHistogram("iam_serve_batch_size", kBatchBounds),
        reg.GetHistogram("iam_serve_queue_wait_seconds", obs::LatencyBounds()),
        reg.GetHistogram("iam_serve_batch_exec_seconds", obs::LatencyBounds()),
        reg.GetHistogram("iam_serve_query_exec_seconds", obs::LatencyBounds()),
    };
  }();
  return metrics;
}

MicroBatcher::MicroBatcher(ModelRegistry& registry, BatcherOptions options)
    : registry_(registry),
      options_([&options] {
        options.max_batch = std::max(options.max_batch, 1);
        options.queue_capacity = std::max(options.queue_capacity, 0);
        options.max_delay_s = std::max(options.max_delay_s, 0.0);
        return options;
      }()),
      metrics_(ServeMetrics::Get()),
      worker_([this] { WorkerLoop(); }) {}

MicroBatcher::~MicroBatcher() { DrainAndStop(); }

MicroBatcher::Response MicroBatcher::Estimate(const query::Query& q) {
  Waiter waiter;
  waiter.query = &q;
  {
    util::MutexLock lock(mu_);
    if (stop_) {
      return {Status::FailedPrecondition("batcher is draining"), false, 0.0,
              0};
    }
    if (static_cast<int>(queue_.size()) >= options_.queue_capacity) {
      metrics_.rejected.Add();
      return {Status::Ok(), /*overloaded=*/true, 0.0, 0};
    }
    queue_.push_back(&waiter);
    metrics_.accepted.Add();
    metrics_.queue_depth.Set(static_cast<double>(queue_.size()));
    work_cv_.notify_one();
    while (!waiter.done) lock.Wait(done_cv_);
  }
  return {Status::Ok(), false, waiter.selectivity, waiter.model_version};
}

void MicroBatcher::WorkerLoop() {
  std::vector<Waiter*> batch;
  std::vector<query::Query> queries;
  for (;;) {
    batch.clear();
    queries.clear();
    {
      util::MutexLock lock(mu_);
      while (queue_.empty() && !stop_) lock.Wait(work_cv_);
      if (queue_.empty()) return;  // stopped and fully drained
      // Coalesce: hold the flush until the batch fills or the head of the
      // queue hits its delay budget. During a drain, flush immediately.
      while (static_cast<int>(queue_.size()) < options_.max_batch && !stop_) {
        const double remaining =
            options_.max_delay_s - queue_.front()->queued.ElapsedSeconds();
        if (remaining <= 0.0) break;
        lock.WaitFor(work_cv_, remaining);
      }
      const size_t take = std::min(queue_.size(),
                                   static_cast<size_t>(options_.max_batch));
      batch.assign(queue_.begin(),
                   queue_.begin() + static_cast<ptrdiff_t>(take));
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<ptrdiff_t>(take));
      metrics_.queue_depth.Set(static_cast<double>(queue_.size()));
    }

    // Snapshot the model once per batch: a concurrent hot-swap replaces the
    // registry's pointer but this batch drains on the generation it started
    // with; the old model dies here (not under any lock) when the last
    // snapshot drops.
    const std::shared_ptr<LoadedModel> model = registry_.Current();
    queries.reserve(batch.size());
    for (Waiter* waiter : batch) {
      metrics_.queue_wait_seconds.Record(waiter->queued.ElapsedSeconds());
      queries.push_back(*waiter->query);
    }
    metrics_.batch_size.Record(static_cast<double>(batch.size()));
    Stopwatch exec;
    const std::vector<double> selectivities =
        model->estimator->EstimateBatch(queries);
    const double exec_seconds = exec.ElapsedSeconds();
    metrics_.batch_exec_seconds.Record(exec_seconds);
    metrics_.query_exec_seconds.Record(exec_seconds /
                                       static_cast<double>(batch.size()));
    metrics_.batches.Add();

    {
      util::MutexLock lock(mu_);
      for (size_t i = 0; i < batch.size(); ++i) {
        batch[i]->selectivity = selectivities[i];
        batch[i]->model_version = model->version;
        batch[i]->done = true;
      }
    }
    done_cv_.notify_all();
  }
}

void MicroBatcher::DrainAndStop() {
  {
    util::MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  // join_mu_ makes the drain idempotent and safe to race (Shutdown and the
  // destructor can both land here): exactly one caller joins.
  util::MutexLock join(join_mu_);
  if (worker_.joinable()) worker_.join();
}

int MicroBatcher::queue_depth() const {
  util::MutexLock lock(mu_);
  return static_cast<int>(queue_.size());
}

}  // namespace iam::serve
