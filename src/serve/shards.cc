#include "serve/shards.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace iam::serve {

ShardSet::ShardSet(ModelRegistry& registry, const BatcherOptions& options,
                   int num_shards) {
  const int n = std::max(num_shards, 1);
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<MicroBatcher>(registry, options, i));
  }
}

void ShardSet::Submit(int home_shard, query::Query query,
                      MicroBatcher::Callback done) {
  const size_t n = shards_.size();
  const size_t home = static_cast<size_t>(home_shard < 0 ? 0 : home_shard) % n;
  // TryQueue leaves query/done untouched when it returns false, so the slow
  // path below can still spill the same objects to a sibling.
  if (shards_[home]->TryQueue(std::move(query), std::move(done))) return;
  if (shards_[home]->stopped()) {
    done(MicroBatcher::Response{
        Status::FailedPrecondition("batcher is draining"), false, 0.0, 0});
    return;
  }
  // Spill: cheapest sibling by approximate depth. Depths move under us —
  // a failed TryQueue on the chosen sibling is a plain reject, not a retry
  // loop (bounded admission cost beats perfect placement under overload).
  size_t best = home;
  int best_depth = shards_[home]->ApproxQueueDepth();
  for (size_t i = 0; i < n; ++i) {
    if (i == home) continue;
    const int depth = shards_[i]->ApproxQueueDepth();
    if (depth < best_depth) {
      best = i;
      best_depth = depth;
    }
  }
  if (best != home &&
      shards_[best]->TryQueue(std::move(query), std::move(done))) {
    ServeMetrics::Get().spilled.Add();
    return;
  }
  ServeMetrics::Get().rejected.Add();
  done(MicroBatcher::Response{Status::Ok(), /*overloaded=*/true, 0.0, 0});
}

bool ShardSet::saturated() const {
  for (const auto& shard : shards_) {
    if (shard->ApproxQueueDepth() < shard->options().queue_capacity &&
        !shard->stopped()) {
      return false;
    }
  }
  return true;
}

void ShardSet::DrainAndStop() {
  for (auto& shard : shards_) shard->DrainAndStop();
}

}  // namespace iam::serve
