#ifndef IAM_SERVE_MODEL_REGISTRY_H_
#define IAM_SERVE_MODEL_REGISTRY_H_

#include <memory>
#include <string>

#include "core/ar_density_estimator.h"
#include "data/table.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace iam::obs {
class Counter;
}  // namespace iam::obs

namespace iam::serve {

// One installed model generation: the estimator, its schema (for parsing
// predicate text without the training data), and a monotone version number
// that responses echo so clients — and the hot-swap tests — can tell which
// generation answered.
struct LoadedModel {
  std::unique_ptr<core::ArDensityEstimator> estimator;
  data::Table schema;
  uint64_t version = 0;
  std::string source;  // path it came from, or a caller-supplied tag
};

// Holds the current model behind a shared_ptr and swaps it atomically. The
// batcher takes a snapshot per micro-batch, so a swap never interrupts an
// in-flight batch: the old generation finishes its batch on the old model
// and is destroyed when the last snapshot drops (on the batcher thread, not
// under the registry lock).
//
// Swaps assume same-schema models (a reload/retrain of the same table) —
// queries parsed against generation N's schema may execute on generation
// N+1 if a swap lands between parse and flush.
class ModelRegistry {
 public:
  // Installs the initial model as version 1. `num_threads` is applied to
  // this and every later model (Estimator::set_num_threads) so micro-batches
  // fan out across the pool.
  ModelRegistry(std::unique_ptr<core::ArDensityEstimator> model,
                std::string source, int num_threads = 1);

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  // The current generation. Never null.
  std::shared_ptr<LoadedModel> Current() const IAM_EXCLUDES(mu_);

  // Loads a model snapshot from disk and installs it; a corrupt or
  // unreadable file leaves the current model serving and returns the load
  // error. On success returns the new version.
  Result<uint64_t> SwapFromFile(const std::string& path) IAM_EXCLUDES(mu_);

  // Installs an already-built model; returns its version.
  uint64_t Swap(std::unique_ptr<core::ArDensityEstimator> model,
                std::string source) IAM_EXCLUDES(mu_);

 private:
  const int num_threads_;
  obs::Counter& swaps_;
  mutable util::Mutex mu_;
  std::shared_ptr<LoadedModel> current_ IAM_GUARDED_BY(mu_);
  uint64_t versions_issued_ IAM_GUARDED_BY(mu_) = 0;
};

}  // namespace iam::serve

#endif  // IAM_SERVE_MODEL_REGISTRY_H_
