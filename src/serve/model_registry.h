#ifndef IAM_SERVE_MODEL_REGISTRY_H_
#define IAM_SERVE_MODEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/ar_density_estimator.h"
#include "data/table.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace iam::obs {
class Counter;
}  // namespace iam::obs

namespace iam::serve {

// One installed model generation: the estimator, its schema (for parsing
// predicate text without the training data), and a monotone version number
// that responses echo so clients — and the hot-swap tests — can tell which
// generation answered.
struct LoadedModel {
  std::unique_ptr<core::ArDensityEstimator> estimator;
  data::Table schema;
  uint64_t version = 0;
  std::string source;  // path it came from, or a caller-supplied tag
};

// Holds the current model generation and swaps it atomically. A generation is
// a set of `replicas` independent estimator instances sharing one version
// number: batcher shard i snapshots replica i % replicas, so shard workers
// never serialize on one estimator's batch mutex (Estimator::EstimateBatch is
// serialized per *instance*, DESIGN.md §8/§11). With replicas == 1 every
// shard shares the single instance — correct, just serialized.
//
// Shard workers take a snapshot per flush and refresh it only when
// current_version() (one relaxed atomic load, no lock) moved, so a swap never
// interrupts an in-flight batch: the old generation finishes its batch on the
// old replicas and dies when the last snapshot drops (on a worker thread, not
// under the registry lock).
//
// Swaps assume same-schema models (a reload/retrain of the same table) —
// queries parsed against generation N's schema may execute on generation
// N+1 if a swap lands between parse and flush.
class ModelRegistry {
 public:
  // Installs the initial model as version 1. `num_threads` is applied to
  // every replica of this and every later generation
  // (Estimator::set_num_threads) so micro-batches fan out across a pool.
  // `replicas` > 1 builds the generation from a serialize/deserialize round
  // trip: every replica — including replica 0 — loads from the same
  // serialized bytes, so all replicas answer identically (a round trip
  // rounds parameters, so the in-memory donor is discarded rather than mixed
  // in). A model that cannot be cloned (no Save support for its config)
  // falls back to sharing the one instance.
  ModelRegistry(std::unique_ptr<core::ArDensityEstimator> model,
                std::string source, int num_threads = 1, int replicas = 1);

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  // The current generation's replica for `shard` (shard % replicas). Never
  // null.
  std::shared_ptr<LoadedModel> Current(int shard) const IAM_EXCLUDES(mu_);
  // Replica 0 — the parse-schema / single-shard snapshot.
  std::shared_ptr<LoadedModel> Current() const { return Current(0); }

  // Version of the current generation: one relaxed load, no lock. Shard
  // workers poll this per flush and only touch the mutex when it moved.
  uint64_t current_version() const {
    return current_version_.load(std::memory_order_acquire);
  }

  int replicas() const { return replicas_; }

  // Loads a model snapshot from disk (`replicas` independent instances) and
  // installs it; a corrupt or unreadable file leaves the current generation
  // serving and returns the load error. On success returns the new version.
  Result<uint64_t> SwapFromFile(const std::string& path) IAM_EXCLUDES(mu_);

  // Installs an already-built model; returns its version. Extra replicas are
  // cloned through a temp-file serialize/deserialize round trip; if cloning
  // fails the generation serves the single shared instance.
  uint64_t Swap(std::unique_ptr<core::ArDensityEstimator> model,
                std::string source) IAM_EXCLUDES(mu_);

  // Per-replica install hook (the adaptation subsystem's attachment point,
  // DESIGN.md §18). Runs under the registry mutex on every replica of each
  // installed generation *before* the generation's version is published, and
  // immediately on the current replicas when registered — so no generation is
  // ever visible to shard workers without the hook applied. The hook must be
  // cheap and must only take locks ranked below kRegistry (it runs with mu_
  // held). Pass an empty function to unregister; callers whose hook captures
  // `this` must unregister before destruction.
  void SetInstallHook(std::function<void(LoadedModel&)> hook)
      IAM_EXCLUDES(mu_);

 private:
  uint64_t Install(
      std::vector<std::unique_ptr<core::ArDensityEstimator>> models,
      std::string source) IAM_EXCLUDES(mu_);

  const int num_threads_;
  const int replicas_;
  obs::Counter& swaps_;
  std::atomic<uint64_t> current_version_{0};
  mutable util::Mutex mu_{util::LockRank::kRegistry};
  // One LoadedModel per replica, all carrying the generation's version.
  std::vector<std::shared_ptr<LoadedModel>> current_ IAM_GUARDED_BY(mu_);
  uint64_t versions_issued_ IAM_GUARDED_BY(mu_) = 0;
  std::function<void(LoadedModel&)> install_hook_ IAM_GUARDED_BY(mu_);
};

}  // namespace iam::serve

#endif  // IAM_SERVE_MODEL_REGISTRY_H_
