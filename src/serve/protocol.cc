#include "serve/protocol.h"

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace iam::serve {
namespace {

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(std::string_view in) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(in[i])) << (8 * i);
  }
  return v;
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint64_t GetU64(std::string_view in) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(in[i])) << (8 * i);
  }
  return v;
}

// Reads exactly n bytes; kNotFound on EOF at offset 0 (orderly hangup),
// kIoError on a mid-buffer EOF or a socket error.
Status ReadExactly(int fd, char* data, size_t n) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, data + got, n - got);
    if (r == 0) {
      return got == 0 ? Status::NotFound("connection closed")
                      : Status::IoError("connection truncated mid-frame");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("read: ") + std::strerror(errno));
    }
    got += static_cast<size_t>(r);
  }
  return Status::Ok();
}

Status WriteAll(int fd, const char* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE instead of killing the
    // process with SIGPIPE.
    const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(w);
  }
  return Status::Ok();
}

}  // namespace

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  AppendFrame(&out, frame);
  return out;
}

void AppendFrame(std::string* out, const Frame& frame) {
  out->reserve(out->size() + 5 + frame.payload.size());
  PutU32(out, static_cast<uint32_t>(1 + frame.payload.size()));
  out->push_back(static_cast<char>(frame.type));
  out->append(frame.payload);
}

Result<size_t> DecodeFrame(std::string_view buffer, Frame* frame) {
  if (buffer.size() < 4) return size_t{0};
  const uint32_t length = GetU32(buffer);
  if (length == 0) return Status::IoError("zero-length frame");
  if (length > 1 + kMaxPayloadBytes) {
    return Status::IoError("oversized frame (" + std::to_string(length) +
                           " bytes)");
  }
  if (buffer.size() < 4 + static_cast<size_t>(length)) return size_t{0};
  frame->type = static_cast<FrameType>(buffer[4]);
  frame->payload.assign(buffer.substr(5, length - 1));
  return static_cast<size_t>(4 + length);
}

Status ReadFrame(int fd, Frame* frame) {
  char header[4];
  IAM_RETURN_IF_ERROR(ReadExactly(fd, header, 4));
  const uint32_t length = GetU32(std::string_view(header, 4));
  if (length == 0) return Status::IoError("zero-length frame");
  if (length > 1 + kMaxPayloadBytes) {
    return Status::IoError("oversized frame (" + std::to_string(length) +
                           " bytes)");
  }
  std::string body(length, '\0');
  const Status read = ReadExactly(fd, body.data(), length);
  if (!read.ok()) {
    // Truncation after a complete header is never an orderly hangup.
    return read.code() == StatusCode::kNotFound
               ? Status::IoError("connection truncated mid-frame")
               : read;
  }
  frame->type = static_cast<FrameType>(body[0]);
  frame->payload.assign(body, 1, length - 1);
  return Status::Ok();
}

Status WriteFrame(int fd, const Frame& frame) {
  if (frame.payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("frame payload too large");
  }
  const std::string bytes = EncodeFrame(frame);
  return WriteAll(fd, bytes.data(), bytes.size());
}

std::string EncodeEstimatePayload(double selectivity,
                                  uint64_t model_version) {
  std::string out;
  out.reserve(16);
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(selectivity));
  std::memcpy(&bits, &selectivity, sizeof(bits));
  PutU64(&out, bits);
  PutU64(&out, model_version);
  return out;
}

const sockaddr* AsSockaddr(const sockaddr_in& addr) {
  return reinterpret_cast<const sockaddr*>(&addr);
}

sockaddr* AsMutableSockaddr(sockaddr_in& addr) {
  return reinterpret_cast<sockaddr*>(&addr);
}

Status DecodeEstimatePayload(std::string_view payload, double* selectivity,
                             uint64_t* model_version) {
  if (payload.size() != 16) {
    return Status::IoError("estimate payload must be 16 bytes, got " +
                           std::to_string(payload.size()));
  }
  const uint64_t bits = GetU64(payload);
  std::memcpy(selectivity, &bits, sizeof(*selectivity));
  *model_version = GetU64(payload.substr(8));
  return Status::Ok();
}

}  // namespace iam::serve
