#ifndef IAM_SERVE_DEMO_H_
#define IAM_SERVE_DEMO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/ar_density_estimator.h"

namespace iam::serve {

// Shared fixture for serve_cli --demo, bench_serve, the serve tests and the
// CI smoke stage: a small IAM estimator trained on synthetic TWI. Fixed seed;
// fast enough to train in a few seconds.
std::unique_ptr<core::ArDensityEstimator> TrainDemoEstimator(
    size_t rows = 3000, uint64_t seed = 5);

// Deterministic predicate strings against the demo schema, rendered through
// query::ToString so every consumer also exercises the printer->parser round
// trip on the wire.
std::vector<std::string> DemoPredicates(int count, uint64_t seed);

}  // namespace iam::serve

#endif  // IAM_SERVE_DEMO_H_
