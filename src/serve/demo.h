#ifndef IAM_SERVE_DEMO_H_
#define IAM_SERVE_DEMO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/ar_density_estimator.h"
#include "data/table.h"

namespace iam::serve {

// Shared fixture for serve_cli --demo, bench_serve, the serve tests and the
// CI smoke stage: a small IAM estimator trained on synthetic TWI. Fixed seed;
// fast enough to train in a few seconds.
std::unique_ptr<core::ArDensityEstimator> TrainDemoEstimator(
    size_t rows = 3000, uint64_t seed = 5);

// Deterministic predicate strings against the demo schema, rendered through
// query::ToString so every consumer also exercises the printer->parser round
// trip on the wire.
std::vector<std::string> DemoPredicates(int count, uint64_t seed);

// The table TrainDemoEstimator trains on (same generator, same defaults) —
// ground truth for feedback in the adaptation tests and bench.
data::Table DemoTable(size_t rows = 3000, uint64_t seed = 5);

// A drifted variant of the demo table: every value translated by `shift`
// native units (degrees for the TWI analogue — every city cluster moves
// north-east). A shift of 1-2 degrees changes the true selectivity of most
// DemoPredicates queries materially, which is the workload-drift scenario
// the adaptation subsystem exists for (DESIGN.md §18).
data::Table ShiftedDemoTable(size_t rows, uint64_t seed, double shift);

}  // namespace iam::serve

#endif  // IAM_SERVE_DEMO_H_
