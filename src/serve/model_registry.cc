#include "serve/model_registry.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "obs/metrics.h"

namespace iam::serve {
namespace {

// Clones an estimator through a temp-file serialize/deserialize round trip
// (Save/Load are the only clone path the estimator exposes). Every copy
// loads from the same serialized bytes, so the copies are estimate-identical
// to each other — though not necessarily to the in-memory donor, because
// serialization rounds parameters. Returns empty when the model cannot be
// serialized or re-loaded — callers degrade to sharing the original.
std::vector<std::unique_ptr<core::ArDensityEstimator>> CloneViaTempFile(
    const core::ArDensityEstimator& model, int copies) {
  std::vector<std::unique_ptr<core::ArDensityEstimator>> clones;
  if (copies <= 0) return clones;
  std::error_code ec;
  const std::filesystem::path dir = std::filesystem::temp_directory_path(ec);
  if (ec) return clones;
  // Process-unique temp name: pid + a monotone counter (two registries — or
  // two swaps racing in one — never collide on the clone file).
  static std::atomic<uint64_t> clone_counter{0};
  const uint64_t clone_id = clone_counter.fetch_add(1);
  const std::filesystem::path path =
      dir / ("iam_registry_clone_" + std::to_string(::getpid()) + "_" +
             std::to_string(clone_id) + ".iam");
  if (!model.Save(path.string()).ok()) return clones;
  for (int i = 0; i < copies; ++i) {
    auto loaded = core::ArDensityEstimator::Load(path.string());
    if (!loaded.ok()) {
      clones.clear();
      break;
    }
    clones.push_back(std::move(loaded.value()));
  }
  std::filesystem::remove(path, ec);
  return clones;
}

}  // namespace

ModelRegistry::ModelRegistry(std::unique_ptr<core::ArDensityEstimator> model,
                             std::string source, int num_threads,
                             int replicas)
    : num_threads_(num_threads < 1 ? 1 : num_threads),
      replicas_(replicas < 1 ? 1 : replicas),
      swaps_(obs::MetricRegistry::Global().GetCounter(
          "iam_serve_model_swaps_total")) {
  Swap(std::move(model), std::move(source));
}

std::shared_ptr<LoadedModel> ModelRegistry::Current(int shard) const {
  util::MutexLock lock(mu_);
  return current_[static_cast<size_t>(shard < 0 ? 0 : shard) %
                  current_.size()];
}

Result<uint64_t> ModelRegistry::SwapFromFile(const std::string& path) {
  // Load every replica before touching the installed generation, so a file
  // that corrupts mid-read (or disappears between loads) cannot install a
  // partial generation.
  std::vector<std::unique_ptr<core::ArDensityEstimator>> models;
  models.reserve(static_cast<size_t>(replicas_));
  for (int i = 0; i < replicas_; ++i) {
    Result<std::unique_ptr<core::ArDensityEstimator>> loaded =
        core::ArDensityEstimator::Load(path);
    if (!loaded.ok()) return loaded.status();
    models.push_back(std::move(loaded.value()));
  }
  return Install(std::move(models), path);
}

uint64_t ModelRegistry::Swap(std::unique_ptr<core::ArDensityEstimator> model,
                             std::string source) {
  std::vector<std::unique_ptr<core::ArDensityEstimator>> models;
  if (replicas_ > 1) {
    // All replicas — including replica 0 — load from the same serialized
    // bytes, discarding the donor: a round trip rounds parameters, so mixing
    // the in-memory donor with loaded clones would make a solo request's
    // answer depend on which shard's connection carried it.
    models = CloneViaTempFile(*model, replicas_);  // empty on failure
  }
  if (models.empty()) models.push_back(std::move(model));
  return Install(std::move(models), std::move(source));
}

void ModelRegistry::SetInstallHook(std::function<void(LoadedModel&)> hook) {
  util::MutexLock lock(mu_);
  install_hook_ = std::move(hook);
  if (!install_hook_) return;
  // Retroactive application: the already-installed generation must match
  // what a just-installed one would look like, or the hook's owner would
  // start with an unhooked current model.
  for (auto& replica : current_) install_hook_(*replica);
}

uint64_t ModelRegistry::Install(
    std::vector<std::unique_ptr<core::ArDensityEstimator>> models,
    std::string source) {
  std::vector<std::shared_ptr<LoadedModel>> generation;
  generation.reserve(models.size());
  for (auto& model : models) {
    model->set_num_threads(num_threads_);
    auto installed = std::make_shared<LoadedModel>();
    installed->schema = model->SchemaTable();
    installed->estimator = std::move(model);
    installed->source = source;
    generation.push_back(std::move(installed));
  }
  std::vector<std::shared_ptr<LoadedModel>> replaced;
  uint64_t version = 0;
  {
    util::MutexLock lock(mu_);
    version = ++versions_issued_;
    for (auto& replica : generation) {
      replica->version = version;
      // Hook before publish: a shard snapshotting the new version can never
      // observe a replica the hook has not prepared (DESIGN.md §18).
      if (install_hook_) install_hook_(*replica);
    }
    // Keep the old generation alive past the lock: its destructor may tear
    // down a thread pool, which must not run under mu_.
    replaced = std::move(current_);
    current_ = std::move(generation);
    current_version_.store(version, std::memory_order_release);
  }
  if (!replaced.empty()) swaps_.Add();  // initial install is not a swap
  return version;
}

}  // namespace iam::serve
