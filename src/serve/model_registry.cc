#include "serve/model_registry.h"

#include <utility>

#include "obs/metrics.h"

namespace iam::serve {

ModelRegistry::ModelRegistry(std::unique_ptr<core::ArDensityEstimator> model,
                             std::string source, int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads),
      swaps_(obs::MetricRegistry::Global().GetCounter(
          "iam_serve_model_swaps_total")) {
  Swap(std::move(model), std::move(source));
}

std::shared_ptr<LoadedModel> ModelRegistry::Current() const {
  util::MutexLock lock(mu_);
  return current_;
}

Result<uint64_t> ModelRegistry::SwapFromFile(const std::string& path) {
  Result<std::unique_ptr<core::ArDensityEstimator>> loaded =
      core::ArDensityEstimator::Load(path);
  if (!loaded.ok()) return loaded.status();
  return Swap(std::move(loaded.value()), path);
}

uint64_t ModelRegistry::Swap(std::unique_ptr<core::ArDensityEstimator> model,
                             std::string source) {
  model->set_num_threads(num_threads_);
  auto installed = std::make_shared<LoadedModel>();
  installed->schema = model->SchemaTable();
  installed->estimator = std::move(model);
  installed->source = std::move(source);
  std::shared_ptr<LoadedModel> replaced;
  uint64_t version = 0;
  {
    util::MutexLock lock(mu_);
    version = ++versions_issued_;
    installed->version = version;
    // Keep the old generation alive past the lock: its destructor may tear
    // down a thread pool, which must not run under mu_.
    replaced = std::move(current_);
    current_ = std::move(installed);
  }
  if (replaced != nullptr) swaps_.Add();  // initial install is not a swap
  return version;
}

}  // namespace iam::serve
