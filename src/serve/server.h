#ifndef IAM_SERVE_SERVER_H_
#define IAM_SERVE_SERVER_H_

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.h"
#include "serve/model_registry.h"
#include "serve/protocol.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace iam::serve {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  int port = 0;  // 0: kernel-assigned ephemeral port; see port()
  int listen_backlog = 64;
  BatcherOptions batcher;
};

// The long-lived estimator service (DESIGN.md §13): a TCP listener that
// speaks the serve::protocol frames, one thread per connection, all estimate
// traffic funneled through one MicroBatcher so concurrent clients share
// micro-batches. Model hot-swap goes through the shared ModelRegistry —
// either a kSwap control frame handled here, or an out-of-band
// registry.SwapFromFile (serve_cli's SIGHUP path); in-flight batches drain on
// the generation they started with.
class EstimatorServer {
 public:
  EstimatorServer(ModelRegistry& registry, ServerOptions options);
  ~EstimatorServer();  // Shutdown() if still running

  EstimatorServer(const EstimatorServer&) = delete;
  EstimatorServer& operator=(const EstimatorServer&) = delete;

  // Binds, listens and starts the accept thread. Fails cleanly when the
  // address or port is unavailable.
  Status Start();

  // The bound port (resolves port 0 after Start()).
  int port() const { return port_; }

  // True once a client sent kShutdown. The server keeps running — the
  // owning binary observes this and calls Shutdown(), so the acknowledgement
  // can reach the requesting client first.
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  // Graceful drain: stop accepting, unblock idle connections, answer
  // everything already queued, join every thread. Idempotent.
  void Shutdown();

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  // One request frame -> one response frame.
  Frame HandleFrame(const Frame& request);

  ModelRegistry& registry_;
  const ServerOptions options_;
  MicroBatcher batcher_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::thread accept_thread_;

  util::Mutex conn_mu_;
  std::vector<std::thread> conn_threads_ IAM_GUARDED_BY(conn_mu_);
  std::vector<int> conn_fds_ IAM_GUARDED_BY(conn_mu_);
};

}  // namespace iam::serve

#endif  // IAM_SERVE_SERVER_H_
