#ifndef IAM_SERVE_SERVER_H_
#define IAM_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/adapt_hooks.h"
#include "serve/batcher.h"
#include "serve/model_registry.h"
#include "serve/protocol.h"
#include "serve/shards.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace iam::serve {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  int port = 0;  // 0: kernel-assigned ephemeral port; see port()
  int listen_backlog = 256;
  // Disable Nagle on accepted sockets. Small request/response frames with
  // the peer's delayed ACKs otherwise serialize at ~40 ms per round trip on
  // an un-pipelined connection; bench_serve's nodelay ablation measures it.
  bool tcp_nodelay = true;
  // Number of MicroBatcher shards. Connections are assigned a home shard
  // round-robin at accept; each shard owns its own queue, worker thread and
  // model replica (ModelRegistry replicas should be >= num_shards for
  // parallel flushes).
  int num_shards = 1;
  // Per-connection cap on decoded-but-unanswered frames. Past it the loop
  // stops reading that socket (natural TCP backpressure) until responses
  // drain below the cap.
  int max_pipeline = 1024;
  // Graceful-drain budget: connections whose peers never read their pending
  // responses are force-closed after this long during Shutdown.
  double drain_timeout_s = 10.0;
  BatcherOptions batcher;
  // Online-adaptation hooks (src/adapt's AdaptController, DESIGN.md §18).
  // Null: kFeedback / kAppendData frames answer kError. Non-null: the loop
  // hands those payloads to the hooks inline (they parse and enqueue,
  // bounded work) and the kMetrics scrape refreshes the adapt gauges before
  // its single snapshot. Not owned; must outlive the server.
  AdaptationHooks* adapt = nullptr;
};

// The long-lived estimator service (DESIGN.md §15): one epoll event-loop
// thread owns the listener and every connection socket (all non-blocking,
// level-triggered) with per-connection read/write buffers and the
// incremental frame decoder; estimate frames fan out to N MicroBatcher
// shards (ShardSet) whose workers post completions back through an
// eventfd-woken queue. Frames on one connection may be pipelined — many
// in-flight kEstimate frames — and responses are written strictly in
// submission order via per-connection ordered slots, with partial-write
// handling on the non-blocking response path.
//
// Model hot-swap goes through the shared ModelRegistry — either a kSwap
// control frame (loaded on a side thread so a slow disk read never stalls
// the loop), or an out-of-band registry.SwapFromFile (serve_cli's SIGHUP
// path); shard workers refresh their snapshot at the next flush.
class EstimatorServer {
 public:
  EstimatorServer(ModelRegistry& registry, ServerOptions options);
  ~EstimatorServer();  // Shutdown() if still running

  EstimatorServer(const EstimatorServer&) = delete;
  EstimatorServer& operator=(const EstimatorServer&) = delete;

  // Binds, listens and starts the event-loop thread. Fails cleanly when the
  // address or port is unavailable.
  Status Start();

  // The bound port (resolves port 0 after Start()).
  int port() const { return port_; }

  // True once a client sent kShutdown. The server keeps running — the
  // owning binary observes this and calls Shutdown(), so the acknowledgement
  // can reach the requesting client first.
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  // Graceful drain: stop accepting, stop reading new frames, answer and
  // flush everything already in flight (bounded by drain_timeout_s), drain
  // the shards, join every thread. Idempotent.
  void Shutdown();

 private:
  // One connection's event-loop state. Owned by the loop thread; completions
  // reference connections by id (never by fd — fds are reused by the kernel)
  // through the loop's id map.
  struct Connection {
    int fd = -1;
    int home_shard = 0;
    std::string in;       // unparsed request bytes
    size_t in_off = 0;    // decoded prefix of `in` (compacted lazily)
    std::string out;      // encoded responses not yet written
    size_t out_off = 0;   // written prefix of `out` (compacted lazily)
    // Pipelining: one slot per received frame, answered in submission order.
    // head_seq is the sequence number of pending.front().
    struct Slot {
      bool done = false;
      Frame response;
    };
    std::deque<Slot> pending;
    uint64_t head_seq = 0;
    bool read_shut = false;  // peer EOF or server drain: no more requests
    uint32_t epoll_events = 0;
  };

  struct Completion {
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    Frame response;
  };

  void LoopThread();
  void HandleAccept();
  void HandleReadable(uint64_t id, Connection& conn);
  // Decodes and dispatches frames buffered in conn.in (up to max_pipeline
  // in-flight); returns false when the connection must close (framing
  // error).
  bool DispatchBuffered(uint64_t id, Connection& conn);
  void DispatchFrame(uint64_t id, Connection& conn, Frame frame);
  // Fills the slot for (id, seq); PumpConnection does the flushing.
  void CompleteSlot(uint64_t id, uint64_t seq, Frame response);
  // The per-connection driver: dispatch buffered frames, encode completed
  // head slots in submission order, write what the socket accepts (partial
  // writes park the rest on EPOLLOUT), re-arm epoll interest, and close once
  // a read-shut connection has flushed its last response. May erase the
  // connection — callers must re-look-up `id` afterwards.
  void PumpConnection(uint64_t id, Connection& conn);
  // kMetrics scrape: refreshes the loop / per-shard / query-log gauges, then
  // takes exactly one registry snapshot so one scrape cannot tear across
  // metric families. Runs inline on the loop thread (conns_ is loop-owned).
  std::string ScrapeMetrics();
  void UpdateInterest(uint64_t id, Connection& conn);
  void CloseConnection(uint64_t id);
  void PostCompletion(Completion completion);
  void DrainCompletions();
  bool DrainComplete();

  ModelRegistry& registry_;
  const ServerOptions options_;
  ShardSet shards_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: completions posted / shutdown requested
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::thread loop_thread_;

  // Loop-thread state (no locking: only LoopThread touches it).
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = wake fd
  uint64_t accept_round_robin_ = 0;
  std::shared_ptr<LoadedModel> parse_model_;  // refreshed on version change

  util::Mutex completions_mu_{util::LockRank::kCompletionQueue};
  std::vector<Completion> completions_ IAM_GUARDED_BY(completions_mu_);

  // kSwap side threads, joined at Shutdown.
  util::Mutex swap_mu_{util::LockRank::kSwap};
  std::vector<std::thread> swap_threads_ IAM_GUARDED_BY(swap_mu_);

  // Serializes Shutdown / destructor.
  util::Mutex shutdown_mu_{util::LockRank::kShutdown};
};

}  // namespace iam::serve

#endif  // IAM_SERVE_SERVER_H_
