#ifndef IAM_SERVE_CLIENT_H_
#define IAM_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "serve/protocol.h"
#include "util/status.h"

namespace iam::serve {

// Blocking client for the estimator service: one TCP connection, one
// outstanding request at a time (the loadgen and the tests open many clients
// to exercise micro-batching). Not thread-safe; use one Client per thread.
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect(const std::string& host, int port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  struct EstimateReply {
    bool overloaded = false;  // admission-control fast-reject
    double selectivity = 0.0;
    uint64_t model_version = 0;
  };

  // Estimates one predicate string. A server-side kError (parse failure,
  // draining) surfaces as a non-OK Status carrying the server's message.
  Result<EstimateReply> Estimate(const std::string& predicates);

  // Hot-swaps the server onto the model snapshot at `model_path` (a path on
  // the server's filesystem); returns the new model version.
  Result<uint64_t> Swap(const std::string& model_path);

  // The server's Prometheus metrics export.
  Result<std::string> Metrics();

  // Asks the server to drain and exit (acknowledged before the drain).
  Status RequestShutdown();

 private:
  Result<Frame> RoundTrip(FrameType type, const std::string& payload);

  int fd_ = -1;
};

}  // namespace iam::serve

#endif  // IAM_SERVE_CLIENT_H_
