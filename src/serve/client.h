#ifndef IAM_SERVE_CLIENT_H_
#define IAM_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "serve/protocol.h"
#include "util/status.h"

namespace iam::serve {

// Blocking client for the estimator service: one TCP connection. The
// round-trip helpers (Estimate/Swap/Metrics/RequestShutdown) keep one
// outstanding request; the SendEstimate/ReceiveEstimate split pipelines many
// in-flight estimates on the same connection — the server answers in
// submission order, so N sends followed by N receives pair up positionally.
// Not thread-safe; use one Client per thread.
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect(const std::string& host, int port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  struct EstimateReply {
    bool overloaded = false;  // admission-control fast-reject
    double selectivity = 0.0;
    uint64_t model_version = 0;
  };

  // Estimates one predicate string. A server-side kError (parse failure,
  // draining) surfaces as a non-OK Status carrying the server's message.
  Result<EstimateReply> Estimate(const std::string& predicates);

  // Pipelining split of Estimate: SendEstimate writes the request frame and
  // returns without waiting; ReceiveEstimate blocks for the next reply.
  // Replies arrive in submission order — interleave freely, receive in the
  // order sent. Each SendEstimate must eventually be paired with exactly one
  // ReceiveEstimate.
  Status SendEstimate(const std::string& predicates);
  Result<EstimateReply> ReceiveEstimate();

  // True when at least one reply byte is readable (poll with `timeout_ms`;
  // 0 = non-blocking probe). Lets a loadgen thread top up its pipeline
  // instead of blocking in ReceiveEstimate.
  Result<bool> ReplyReady(int timeout_ms = 0);

  // Hot-swaps the server onto the model snapshot at `model_path` (a path on
  // the server's filesystem); returns the new model version.
  Result<uint64_t> Swap(const std::string& model_path);

  // The server's Prometheus metrics export.
  Result<std::string> Metrics();

  // The server's query-log records as JSON. `filters` is the kQueryLog
  // filter text, e.g. "last=16 min_ms=5"; empty returns every buffered
  // record.
  Result<std::string> QueryLog(const std::string& filters = "");

  // Reports an observed true selectivity to the server's adaptation loop
  // (kFeedback). `payload` is the feedback grammar of adapt/feedback.h:
  // "seq=<N> actual=<sel>" referencing a query-log record, or
  // "actual=<sel> where <predicates>". Returns the server's acknowledgement
  // text; kFailedPrecondition when the feedback queue was full, kInternal
  // when the server rejected the payload or has adaptation disabled.
  Result<std::string> Feedback(const std::string& payload);

  // Streams rows into the server's retraining reservoir (kAppendData).
  // `payload` is "cols=<n>\n" + CSV rows. Same response mapping as
  // Feedback().
  Result<std::string> AppendData(const std::string& payload);

  // Asks the server to drain and exit (acknowledged before the drain).
  Status RequestShutdown();

 private:
  Result<Frame> RoundTrip(FrameType type, const std::string& payload);

  int fd_ = -1;
};

}  // namespace iam::serve

#endif  // IAM_SERVE_CLIENT_H_
