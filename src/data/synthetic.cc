#include "data/synthetic.h"

#include <cmath>
#include <vector>

#include "util/random.h"

namespace iam::data {
namespace {

// Zipf-like weights w_i ∝ 1/(i+1)^s, normalized.
std::vector<double> ZipfWeights(int n, double s) {
  std::vector<double> w(n);
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
    total += w[i];
  }
  for (double& x : w) x /= total;
  return w;
}

}  // namespace

Table MakeSynWisdm(size_t rows, uint64_t seed) {
  constexpr int kSubjects = 51;
  constexpr int kActivities = 18;
  Rng rng(seed);

  // Per-(subject, activity) sensor signature, built additively from a
  // per-subject offset and a per-activity offset plus a small interaction
  // term. The additive structure gives strong *pairwise* correlation between
  // each categorical attribute and the sensor axes (as in the real WISDM),
  // while the interaction keeps the joint distribution beyond tree models.
  double subject_offset[kSubjects][3];
  double activity_offset[kActivities][3];
  double subject_scale[kSubjects];
  double activity_scale[kActivities];
  for (int s = 0; s < kSubjects; ++s) {
    for (int axis = 0; axis < 3; ++axis) {
      subject_offset[s][axis] = rng.Uniform(-7.0, 7.0);
    }
    subject_scale[s] = rng.Uniform(0.6, 1.6);
  }
  for (int a = 0; a < kActivities; ++a) {
    for (int axis = 0; axis < 3; ++axis) {
      activity_offset[a][axis] = rng.Uniform(-5.0, 5.0);
    }
    activity_scale[a] = rng.Uniform(0.5, 1.5);
  }

  struct Signature {
    double mean[2][3];
    double scale[2][3];
    double mode_weight;  // weight of mode 0
  };
  std::vector<Signature> signatures(kSubjects * kActivities);
  for (int s = 0; s < kSubjects; ++s) {
    for (int a = 0; a < kActivities; ++a) {
      Signature& sig = signatures[s * kActivities + a];
      sig.mode_weight = rng.Uniform(0.3, 0.9);
      for (int m = 0; m < 2; ++m) {
        for (int axis = 0; axis < 3; ++axis) {
          sig.mean[m][axis] = subject_offset[s][axis] +
                              activity_offset[a][axis] +
                              rng.Uniform(-1.5, 1.5) + (m == 1 ? 2.0 : 0.0);
          sig.scale[m][axis] =
              subject_scale[s] * activity_scale[a] * rng.Uniform(0.5, 1.5);
        }
      }
    }
  }

  const std::vector<double> subject_weights = ZipfWeights(kSubjects, 0.7);
  const std::vector<double> activity_weights = ZipfWeights(kActivities, 0.5);

  Column subject{"subject_id", ColumnType::kCategorical, {}};
  Column activity{"activity_code", ColumnType::kCategorical, {}};
  Column x{"x", ColumnType::kContinuous, {}};
  Column y{"y", ColumnType::kContinuous, {}};
  Column z{"z", ColumnType::kContinuous, {}};
  subject.values.reserve(rows);
  activity.values.reserve(rows);
  x.values.reserve(rows);
  y.values.reserve(rows);
  z.values.reserve(rows);

  for (size_t r = 0; r < rows; ++r) {
    const int s = static_cast<int>(rng.Categorical(subject_weights));
    const int a = static_cast<int>(rng.Categorical(activity_weights));
    const Signature& sig = signatures[s * kActivities + a];
    const int mode = rng.Uniform() < sig.mode_weight ? 0 : 1;
    // Occasional heavy-tail burst (sensor spikes) gives positive skew.
    const double burst = rng.Uniform() < 0.03 ? 5.0 : 1.0;
    double axes[3];
    for (int axis = 0; axis < 3; ++axis) {
      axes[axis] = rng.Gaussian(sig.mean[mode][axis],
                                sig.scale[mode][axis] * burst);
    }
    subject.values.push_back(s);
    activity.values.push_back(a);
    x.values.push_back(axes[0]);
    y.values.push_back(axes[1]);
    z.values.push_back(axes[2]);
  }

  Table table("synwisdm");
  table.AddColumn(std::move(subject));
  table.AddColumn(std::move(activity));
  table.AddColumn(std::move(x));
  table.AddColumn(std::move(y));
  table.AddColumn(std::move(z));
  return table;
}

Table MakeSynTwi(size_t rows, uint64_t seed) {
  constexpr int kClusters = 40;
  Rng rng(seed);

  struct City {
    double lat, lon;
    double sig_lat, sig_lon;
    double rho;  // lat-lon correlation inside the cluster
  };
  std::vector<City> cities(kClusters);
  for (auto& city : cities) {
    city.lat = rng.Uniform(25.0, 49.0);
    city.lon = rng.Uniform(-124.0, -67.0);
    city.sig_lat = rng.Uniform(0.05, 0.8);
    city.sig_lon = rng.Uniform(0.05, 1.0);
    city.rho = rng.Uniform(-0.9, 0.9);
  }
  const std::vector<double> weights = ZipfWeights(kClusters, 1.0);

  Column lat{"latitude", ColumnType::kContinuous, {}};
  Column lon{"longitude", ColumnType::kContinuous, {}};
  lat.values.reserve(rows);
  lon.values.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    const City& city = cities[rng.Categorical(weights)];
    const double u = rng.Gaussian();
    const double v = rng.Gaussian();
    lat.values.push_back(city.lat + city.sig_lat * u);
    lon.values.push_back(city.lon +
                         city.sig_lon *
                             (city.rho * u +
                              std::sqrt(1.0 - city.rho * city.rho) * v));
  }

  Table table("syntwi");
  table.AddColumn(std::move(lat));
  table.AddColumn(std::move(lon));
  return table;
}

Table MakeSynHiggs(size_t rows, uint64_t seed) {
  constexpr int kFeatures = 7;
  static const char* kNames[kFeatures] = {"m_jj",  "m_jjj",  "m_lv", "m_jlv",
                                          "m_bb",  "m_wbb",  "m_wwbb"};
  Rng rng(seed);

  // Per-feature lognormal shape; a weak shared factor induces mild
  // correlation (the real HIGGS has NCIE 0.67 — weak).
  double sigma[kFeatures];
  double mu[kFeatures];
  for (int f = 0; f < kFeatures; ++f) {
    sigma[f] = rng.Uniform(0.9, 1.6);
    mu[f] = rng.Uniform(-0.5, 0.8);
  }

  std::vector<Column> cols(kFeatures);
  for (int f = 0; f < kFeatures; ++f) {
    cols[f].name = kNames[f];
    cols[f].type = ColumnType::kContinuous;
    cols[f].values.reserve(rows);
  }
  for (size_t r = 0; r < rows; ++r) {
    const double shared = 0.25 * rng.Gaussian();
    for (int f = 0; f < kFeatures; ++f) {
      // Mixture: bulk lognormal + a rare far tail for extreme skew.
      double value;
      if (rng.Uniform() < 0.02) {
        value = std::exp(mu[f] + sigma[f] * (3.0 + std::abs(rng.Gaussian())));
      } else {
        value = std::exp(mu[f] + sigma[f] * rng.Gaussian() + shared);
      }
      cols[f].values.push_back(value);
    }
  }

  Table table("synhiggs");
  for (auto& col : cols) table.AddColumn(std::move(col));
  return table;
}

}  // namespace iam::data
