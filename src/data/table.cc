#include "data/table.h"

#include <algorithm>
#include <unordered_set>

namespace iam::data {

void Table::AddColumn(Column column) {
  columns_.push_back(std::move(column));
}

int Table::ColumnIndex(const std::string& name) const {
  for (int i = 0; i < num_columns(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return -1;
}

size_t Table::DistinctCount(int col) const {
  const auto& values = columns_[col].values;
  std::vector<double> sorted(values);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return sorted.size();
}

std::pair<double, double> Table::ColumnRange(int col) const {
  const auto& values = columns_[col].values;
  IAM_CHECK(!values.empty());
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  return {*lo, *hi};
}

Status Table::Validate() const {
  if (columns_.empty()) return Status::Ok();
  const size_t rows = columns_[0].size();
  for (const Column& c : columns_) {
    if (c.size() != rows) {
      return Status::FailedPrecondition("column '" + c.name +
                                        "' has mismatched length");
    }
    if (c.type == ColumnType::kCategorical) {
      for (double v : c.values) {
        if (v < 0 || v != static_cast<double>(static_cast<long>(v))) {
          return Status::FailedPrecondition(
              "categorical column '" + c.name + "' has non-integral code");
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace iam::data
