#include "data/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace iam::data {

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out << ',';
    out << table.column(c).name;
  }
  out << '\n';
  char buf[64];
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << ',';
      const double v = table.value(r, c);
      if (table.column(c).type == ColumnType::kCategorical) {
        std::snprintf(buf, sizeof(buf), "%ld", static_cast<long>(v));
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
      }
      out << buf;
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

Result<Table> ReadCsv(const std::string& path,
                      const std::vector<std::string>& categorical_columns) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) return Status::IoError("empty file " + path);

  Table table(path);
  std::vector<Column> columns;
  {
    std::stringstream header(line);
    std::string name;
    while (std::getline(header, name, ',')) {
      Column col;
      col.name = name;
      col.type = ColumnType::kContinuous;
      for (const std::string& cat : categorical_columns) {
        if (cat == name) col.type = ColumnType::kCategorical;
      }
      columns.push_back(std::move(col));
    }
  }
  if (columns.empty()) return Status::IoError("no header in " + path);

  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::stringstream row(line);
    std::string cell;
    size_t c = 0;
    while (std::getline(row, cell, ',')) {
      if (c >= columns.size()) {
        return Status::IoError("too many cells at line " +
                               std::to_string(line_no));
      }
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str()) {
        return Status::IoError("non-numeric cell at line " +
                               std::to_string(line_no));
      }
      columns[c].values.push_back(v);
      ++c;
    }
    if (c != columns.size()) {
      return Status::IoError("too few cells at line " +
                             std::to_string(line_no));
    }
  }
  for (Column& col : columns) table.AddColumn(std::move(col));
  IAM_RETURN_IF_ERROR(table.Validate());
  return table;
}

}  // namespace iam::data
