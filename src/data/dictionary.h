#ifndef IAM_DATA_DICTIONARY_H_
#define IAM_DATA_DICTIONARY_H_

#include <istream>
#include <ostream>
#include <span>
#include <vector>

#include "util/status.h"

namespace iam::data {

// Order-preserving ordinal encoding of a column: distinct values sorted
// ascending, value -> rank. This is the paper's encoding strategy
// (Section 3): domain values map to [0, |A_i|) keeping the original order,
// so range predicates on values become range predicates on codes.
class ValueDictionary {
 public:
  static ValueDictionary Build(std::span<const double> values);

  int size() const { return static_cast<int>(sorted_.size()); }

  // Exact code of a value present in the dictionary; -1 when absent.
  int Encode(double value) const;

  // Codes of the values within [lo, hi]: inclusive code interval
  // [first, last]; first > last means the range is empty.
  struct CodeRange {
    int first = 0;
    int last = -1;
    bool empty() const { return first > last; }
  };
  CodeRange EncodeRange(double lo, double hi) const;

  double Decode(int code) const;

  size_t SizeBytes() const { return sorted_.size() * sizeof(double); }

  void Serialize(std::ostream& out) const;
  static Result<ValueDictionary> Deserialize(std::istream& in);

 private:
  std::vector<double> sorted_;
};

}  // namespace iam::data

#endif  // IAM_DATA_DICTIONARY_H_
