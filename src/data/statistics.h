#ifndef IAM_DATA_STATISTICS_H_
#define IAM_DATA_STATISTICS_H_

#include "data/table.h"
#include "util/random.h"

namespace iam::data {

// Dataset characterization used by the paper (Section 6.1.1): the Nonlinear
// Correlation Information Entropy (Wang, Shen & Zhang 2005) to measure
// multivariate correlation — smaller means stronger correlation — and
// Fisher skewness averaged over continuous columns.
//
// NCIE here follows the IAM paper's convention: the entropy of the
// eigenvalues of the nonlinear correlation matrix R,
//   H_R = -Σ_i (λ_i / n) log_n (λ_i / n),
// where R's entries are rank-binned mutual informations NCC(a, b) in [0, 1].
// Strong correlation concentrates the spectrum, so *smaller* values indicate
// *stronger* correlation (the paper reports 0.33 for WISDM, 0.67 for HIGGS).
struct DatasetStats {
  double ncie = 0.0;  // in [0, 1]; smaller = stronger correlation
  double mean_abs_skewness = 0.0;
  size_t rows = 0;
};

DatasetStats ComputeDatasetStats(const Table& table, Rng& rng,
                                 size_t max_rows = 20000);

// Nonlinear correlation coefficient of two samples: mutual information over
// b = floor(sqrt(n)) rank bins, normalized by log b. Symmetric, in [0, 1],
// 0 for independent data, 1 for a deterministic monotone relation.
double NonlinearCorrelation(std::span<const double> xs,
                            std::span<const double> ys);

}  // namespace iam::data

#endif  // IAM_DATA_STATISTICS_H_
