#include "data/statistics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/macros.h"
#include "util/math_util.h"

namespace iam::data {
namespace {

// Rank transform: value -> bin index in [0, bins).
std::vector<int> RankBins(std::span<const double> xs, int bins) {
  const size_t n = xs.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::vector<int> bin(n);
  for (size_t rank = 0; rank < n; ++rank) {
    bin[order[rank]] = static_cast<int>(
        std::min<size_t>(bins - 1, rank * bins / n));
  }
  return bin;
}

// Jacobi eigenvalue iteration for a small dense symmetric matrix (row-major
// n x n). Returns the eigenvalues; ample precision for NCIE's entropy.
std::vector<double> SymmetricEigenvalues(std::vector<double> a, int n) {
  auto at = [&](int r, int c) -> double& { return a[r * n + c]; };
  for (int sweep = 0; sweep < 100; ++sweep) {
    double off = 0.0;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) off += at(p, q) * at(p, q);
    }
    if (off < 1e-18) break;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = at(p, q);
        if (std::abs(apq) < 1e-15) continue;
        const double theta = (at(q, q) - at(p, p)) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int k = 0; k < n; ++k) {
          const double akp = at(k, p);
          const double akq = at(k, q);
          at(k, p) = c * akp - s * akq;
          at(k, q) = s * akp + c * akq;
        }
        for (int k = 0; k < n; ++k) {
          const double apk = at(p, k);
          const double aqk = at(q, k);
          at(p, k) = c * apk - s * aqk;
          at(q, k) = s * apk + c * aqk;
        }
      }
    }
  }
  std::vector<double> eigenvalues(n);
  for (int i = 0; i < n; ++i) eigenvalues[i] = at(i, i);
  return eigenvalues;
}

}  // namespace

double NonlinearCorrelation(std::span<const double> xs,
                            std::span<const double> ys) {
  IAM_CHECK(xs.size() == ys.size());
  const size_t n = xs.size();
  if (n < 4) return 0.0;
  // Cube-root bin count keeps the MI estimator's positive bias
  // (~(bins-1)^2 / 2n) negligible at the sample sizes we use.
  const int bins = std::max(
      2, static_cast<int>(std::floor(std::cbrt(static_cast<double>(n)))));
  const std::vector<int> bx = RankBins(xs, bins);
  const std::vector<int> by = RankBins(ys, bins);

  std::vector<double> joint(static_cast<size_t>(bins) * bins, 0.0);
  std::vector<double> px(bins, 0.0), py(bins, 0.0);
  for (size_t i = 0; i < n; ++i) {
    joint[static_cast<size_t>(bx[i]) * bins + by[i]] += 1.0;
    px[bx[i]] += 1.0;
    py[by[i]] += 1.0;
  }
  double mi = 0.0;
  const double dn = static_cast<double>(n);
  for (int i = 0; i < bins; ++i) {
    for (int j = 0; j < bins; ++j) {
      const double pij = joint[static_cast<size_t>(i) * bins + j] / dn;
      if (pij <= 0.0) continue;
      mi += pij * std::log(pij / (px[i] / dn * py[j] / dn));
    }
  }
  // Normalize by log(bins); clamp against estimation noise.
  return Clamp(mi / std::log(static_cast<double>(bins)), 0.0, 1.0);
}

DatasetStats ComputeDatasetStats(const Table& table, Rng& rng,
                                 size_t max_rows) {
  DatasetStats stats;
  const int n = table.num_columns();
  IAM_CHECK(n >= 1);
  const size_t total = table.num_rows();
  std::vector<size_t> rows;
  if (total > max_rows) {
    rows = rng.SampleWithoutReplacement(total, max_rows);
  } else {
    rows.resize(total);
    std::iota(rows.begin(), rows.end(), size_t{0});
  }
  stats.rows = rows.size();

  std::vector<std::vector<double>> cols(n);
  for (int c = 0; c < n; ++c) {
    cols[c].reserve(rows.size());
    for (size_t r : rows) cols[c].push_back(table.value(r, c));
  }

  // Nonlinear correlation matrix (1 on the diagonal).
  std::vector<double> r(static_cast<size_t>(n) * n, 0.0);
  for (int a = 0; a < n; ++a) {
    r[static_cast<size_t>(a) * n + a] = 1.0;
    for (int b = a + 1; b < n; ++b) {
      const double ncc = NonlinearCorrelation(cols[a], cols[b]);
      r[static_cast<size_t>(a) * n + b] = ncc;
      r[static_cast<size_t>(b) * n + a] = ncc;
    }
  }
  const std::vector<double> eig = SymmetricEigenvalues(std::move(r), n);
  double entropy = 0.0;
  for (double lambda : eig) {
    const double p = lambda / static_cast<double>(n);
    if (p > 1e-12) entropy -= p * std::log(p) / std::log(double(n) > 1 ? n : 2);
  }
  stats.ncie = entropy;

  double skew = 0.0;
  int continuous = 0;
  for (int c = 0; c < n; ++c) {
    if (table.column(c).type != ColumnType::kContinuous) continue;
    skew += std::abs(Skewness(cols[c]));
    ++continuous;
  }
  stats.mean_abs_skewness = continuous > 0 ? skew / continuous : 0.0;
  return stats;
}

}  // namespace iam::data
