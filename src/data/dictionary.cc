#include "data/dictionary.h"

#include <algorithm>

#include "util/macros.h"
#include "util/serialize.h"

namespace iam::data {

ValueDictionary ValueDictionary::Build(std::span<const double> values) {
  ValueDictionary dict;
  dict.sorted_.assign(values.begin(), values.end());
  std::sort(dict.sorted_.begin(), dict.sorted_.end());
  dict.sorted_.erase(std::unique(dict.sorted_.begin(), dict.sorted_.end()),
                     dict.sorted_.end());
  return dict;
}

int ValueDictionary::Encode(double value) const {
  const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), value);
  if (it == sorted_.end() || *it != value) return -1;
  return static_cast<int>(it - sorted_.begin());
}

ValueDictionary::CodeRange ValueDictionary::EncodeRange(double lo,
                                                        double hi) const {
  CodeRange range;
  const auto first = std::lower_bound(sorted_.begin(), sorted_.end(), lo);
  const auto last = std::upper_bound(sorted_.begin(), sorted_.end(), hi);
  range.first = static_cast<int>(first - sorted_.begin());
  range.last = static_cast<int>(last - sorted_.begin()) - 1;
  return range;
}

void ValueDictionary::Serialize(std::ostream& out) const {
  WriteVector(out, sorted_);
}

Result<ValueDictionary> ValueDictionary::Deserialize(std::istream& in) {
  ValueDictionary dict;
  IAM_RETURN_IF_ERROR(ReadVector(in, &dict.sorted_));
  if (!std::is_sorted(dict.sorted_.begin(), dict.sorted_.end())) {
    return Status::IoError("dictionary blob not sorted");
  }
  return dict;
}

double ValueDictionary::Decode(int code) const {
  IAM_CHECK(code >= 0 && code < size());
  return sorted_[code];
}

}  // namespace iam::data
