#ifndef IAM_DATA_SYNTHETIC_H_
#define IAM_DATA_SYNTHETIC_H_

#include <cstdint>

#include "data/table.h"

namespace iam::data {

// Synthetic stand-ins for the paper's datasets (Section 6.1.1). The real
// datasets are not redistributable in this environment; each generator
// reproduces the statistical regime the paper relies on (see DESIGN.md §4):
// attribute types and counts, correlation strength, skewness, and continuous
// domains whose size is on the order of the row count.

// WISDM analogue: subject_id (categorical, 51), activity_code (categorical,
// 18), x/y/z accelerometer values (continuous). Strong cat→cont correlation
// (each subject/activity pair has its own sensor signature), moderate skew.
Table MakeSynWisdm(size_t rows, uint64_t seed);

// TWI analogue: latitude/longitude of geo-tagged posts — a mixture of ~40
// anisotropic city clusters over a US-like bounding box. Strong lat↔lon
// correlation, multi-modal.
Table MakeSynTwi(size_t rows, uint64_t seed);

// HIGGS analogue: 7 continuous heavy-tailed (lognormal-mixture) physics-like
// features; weak pairwise correlation, extreme positive skew.
Table MakeSynHiggs(size_t rows, uint64_t seed);

}  // namespace iam::data

#endif  // IAM_DATA_SYNTHETIC_H_
