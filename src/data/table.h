#ifndef IAM_DATA_TABLE_H_
#define IAM_DATA_TABLE_H_

#include <span>
#include <string>
#include <vector>

#include "util/macros.h"
#include "util/status.h"

namespace iam::data {

enum class ColumnType {
  kCategorical,  // small discrete domain; values are codes 0..domain-1
  kContinuous,   // real-valued, potentially |T| distinct values
};

// A column of an in-memory relation. Values are stored as doubles for both
// types — categorical codes are integral doubles — which keeps the predicate
// and scan machinery uniform.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kContinuous;
  std::vector<double> values;

  size_t size() const { return values.size(); }
};

// Columnar in-memory relation.
class Table {
 public:
  Table() = default;
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // All columns must end up with the same length; checked by Validate().
  void AddColumn(Column column);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }

  const Column& column(int i) const {
    IAM_DCHECK(i >= 0 && i < num_columns());
    return columns_[i];
  }
  Column& mutable_column(int i) {
    IAM_DCHECK(i >= 0 && i < num_columns());
    return columns_[i];
  }

  // Column index by name; -1 when absent.
  int ColumnIndex(const std::string& name) const;

  double value(size_t row, int col) const {
    return columns_[col].values[row];
  }

  // Number of distinct values in a column (computed fresh; cache upstream if
  // called in a loop).
  size_t DistinctCount(int col) const;

  // Min/max of a column. Requires a non-empty table.
  std::pair<double, double> ColumnRange(int col) const;

  Status Validate() const;

 private:
  std::string name_;
  std::vector<Column> columns_;
};

}  // namespace iam::data

#endif  // IAM_DATA_TABLE_H_
