#ifndef IAM_DATA_CSV_H_
#define IAM_DATA_CSV_H_

#include <string>

#include "data/table.h"
#include "util/status.h"

namespace iam::data {

// Writes the table as a header + numeric rows. Categorical codes are written
// as integers.
Status WriteCsv(const Table& table, const std::string& path);

// Loads a numeric CSV produced by WriteCsv (or any all-numeric CSV with a
// header row). Column types: a column is categorical iff its name appears in
// `categorical_columns` (comma-free names only).
Result<Table> ReadCsv(const std::string& path,
                      const std::vector<std::string>& categorical_columns);

}  // namespace iam::data

#endif  // IAM_DATA_CSV_H_
