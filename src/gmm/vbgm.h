#ifndef IAM_GMM_VBGM_H_
#define IAM_GMM_VBGM_H_

#include <span>

#include "gmm/gmm1d.h"
#include "util/random.h"

namespace iam::gmm {

// Variational Bayesian Gaussian Mixture (Watanabe & Watanabe; Bishop ch. 10)
// specialized to one dimension. The paper uses VBGM to pick the component
// count K and the initial parameters of each per-attribute GMM; the sparse
// Dirichlet prior drives superfluous components' weights to ~0, and the
// surviving components seed the SGD-trained Gmm1D.
struct VbgmOptions {
  int max_components = 50;
  int max_iterations = 60;
  // Dirichlet concentration; < 1 encourages emptying extra components.
  double weight_concentration = 1e-2;
  // A component survives if its expected weight exceeds this threshold.
  double weight_floor = 1e-3;
  // Fit on at most this many uniformly drawn points (paper: "we only use
  // uniform samples from dataset. Hence, the initialization is efficient").
  size_t max_fit_points = 20000;
};

struct VbgmResult {
  Gmm1D gmm;            // surviving components, ready for SGD refinement
  int selected_k = 0;   // number of surviving components
  int iterations = 0;   // VB iterations actually run
};

VbgmResult FitVbgm(std::span<const double> data, const VbgmOptions& options,
                   Rng& rng);

}  // namespace iam::gmm

#endif  // IAM_GMM_VBGM_H_
