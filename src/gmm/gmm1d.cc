#include "gmm/gmm1d.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "util/macros.h"
#include "util/math_util.h"
#include "util/serialize.h"

namespace iam::gmm {
namespace {

constexpr double kMinSigma = 1e-6;
constexpr double kAdamBeta1 = 0.9;
constexpr double kAdamBeta2 = 0.999;
constexpr double kAdamEps = 1e-8;

// Mixture-training instrumentation: step counters plus last-seen NLL gauges
// (the per-epoch convergence signal the benches read; see DESIGN.md §12).
struct GmmMetrics {
  obs::Counter& em_steps;
  obs::Counter& sgd_steps;
  obs::Gauge& em_nll;
  obs::Gauge& sgd_nll;

  static GmmMetrics& Get() {
    static GmmMetrics metrics = [] {
      obs::MetricRegistry& reg = obs::MetricRegistry::Global();
      return GmmMetrics{
          reg.GetCounter("iam_gmm_em_steps_total"),
          reg.GetCounter("iam_gmm_sgd_steps_total"),
          reg.GetGauge("iam_gmm_em_nll"),
          reg.GetGauge("iam_gmm_sgd_nll"),
      };
    }();
    return metrics;
  }
};

}  // namespace

Gmm1D::Gmm1D(int num_components)
    : weight_logits_(num_components, 0.0),
      means_(num_components, 0.0),
      log_sigmas_(num_components, 0.0),
      adam_m_(3 * num_components, 0.0),
      adam_v_(3 * num_components, 0.0) {
  IAM_CHECK(num_components >= 1);
}

double Gmm1D::weight(int k) const {
  double denom = 0.0;
  const double max_logit =
      *std::max_element(weight_logits_.begin(), weight_logits_.end());
  for (double w : weight_logits_) denom += std::exp(w - max_logit);
  return std::exp(weight_logits_[k] - max_logit) / denom;
}

double Gmm1D::stddev(int k) const {
  return std::max(kMinSigma, std::exp(log_sigmas_[k]));
}

void Gmm1D::SetComponent(int k, double weight_logit, double mean,
                         double stddev) {
  IAM_CHECK(k >= 0 && k < num_components());
  IAM_CHECK(stddev > 0.0);
  weight_logits_[k] = weight_logit;
  means_[k] = mean;
  log_sigmas_[k] = std::log(stddev);
}

void Gmm1D::InitFromData(std::span<const double> data, Rng& rng) {
  IAM_CHECK(!data.empty());
  const int k = num_components();
  const MeanVar mv = ComputeMeanVar(data);
  const double scale =
      std::max(kMinSigma, std::sqrt(mv.variance) / std::max(1.0, (double)k));

  // K-means++ style seeding: first mean uniform, then proportional to the
  // squared distance to the closest existing mean.
  std::vector<double> chosen;
  chosen.push_back(data[rng.UniformInt(data.size())]);
  std::vector<double> dist2(data.size());
  while (static_cast<int>(chosen.size()) < k) {
    double total = 0.0;
    for (size_t i = 0; i < data.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (double c : chosen) {
        const double d = data[i] - c;
        best = std::min(best, d * d);
      }
      dist2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // Fewer distinct values than components: jitter around the mean.
      chosen.push_back(mv.mean + rng.Gaussian(0.0, scale + kMinSigma));
      continue;
    }
    chosen.push_back(data[rng.CategoricalWithSum(dist2, total)]);
  }

  for (int j = 0; j < k; ++j) {
    weight_logits_[j] = 0.0;
    means_[j] = chosen[j];
    log_sigmas_[j] = std::log(std::max(kMinSigma, scale));
  }
  std::fill(adam_m_.begin(), adam_m_.end(), 0.0);
  std::fill(adam_v_.begin(), adam_v_.end(), 0.0);
  adam_step_ = 0;
}

std::vector<double> Gmm1D::Responsibilities(double x) const {
  const int k = num_components();
  std::vector<double> log_terms(k);
  const double max_logit =
      *std::max_element(weight_logits_.begin(), weight_logits_.end());
  double denom = 0.0;
  for (double w : weight_logits_) denom += std::exp(w - max_logit);
  const double log_denom = std::log(denom) + max_logit;
  for (int j = 0; j < k; ++j) {
    log_terms[j] = (weight_logits_[j] - log_denom) +
                   NormalLogPdf(x, means_[j], stddev(j));
  }
  const double lse = LogSumExp(log_terms);
  std::vector<double> resp(k);
  for (int j = 0; j < k; ++j) resp[j] = std::exp(log_terms[j] - lse);
  return resp;
}

double Gmm1D::NegLogLikelihood(double x) const {
  const int k = num_components();
  std::vector<double> log_terms(k);
  const double max_logit =
      *std::max_element(weight_logits_.begin(), weight_logits_.end());
  double denom = 0.0;
  for (double w : weight_logits_) denom += std::exp(w - max_logit);
  const double log_denom = std::log(denom) + max_logit;
  for (int j = 0; j < k; ++j) {
    log_terms[j] = (weight_logits_[j] - log_denom) +
                   NormalLogPdf(x, means_[j], stddev(j));
  }
  return -LogSumExp(log_terms);
}

double Gmm1D::MeanNegLogLikelihood(std::span<const double> data) const {
  IAM_CHECK(!data.empty());
  double total = 0.0;
  for (double x : data) total += NegLogLikelihood(x);
  return total / static_cast<double>(data.size());
}

int Gmm1D::Assign(double x) const {
  const int k = num_components();
  int best = 0;
  double best_score = kNegInf;
  const double max_logit =
      *std::max_element(weight_logits_.begin(), weight_logits_.end());
  for (int j = 0; j < k; ++j) {
    // argmax of phi_k * N_k: the softmax denominator is shared, so logits
    // can be compared directly (shifted by max for stability).
    const double score =
        (weight_logits_[j] - max_logit) + NormalLogPdf(x, means_[j], stddev(j));
    if (score > best_score) {
      best_score = score;
      best = j;
    }
  }
  return best;
}

double Gmm1D::SgdStep(std::span<const double> batch) {
  IAM_CHECK(!batch.empty());
  const int k = num_components();
  std::vector<double> grad(3 * k, 0.0);
  double total_nll = 0.0;

  // Softmax weights (shared across the batch).
  std::vector<double> phi(k);
  {
    const double max_logit =
        *std::max_element(weight_logits_.begin(), weight_logits_.end());
    double denom = 0.0;
    for (int j = 0; j < k; ++j) {
      phi[j] = std::exp(weight_logits_[j] - max_logit);
      denom += phi[j];
    }
    for (int j = 0; j < k; ++j) phi[j] /= denom;
  }

  std::vector<double> log_terms(k);
  const double inv_b = 1.0 / static_cast<double>(batch.size());
  for (double x : batch) {
    for (int j = 0; j < k; ++j) {
      log_terms[j] = std::log(std::max(phi[j], 1e-300)) +
                     NormalLogPdf(x, means_[j], stddev(j));
    }
    const double lse = LogSumExp(log_terms);
    total_nll += -lse;
    for (int j = 0; j < k; ++j) {
      const double r = std::exp(log_terms[j] - lse);  // responsibility
      const double sigma = stddev(j);
      const double z = (x - means_[j]) / sigma;
      // d(-log S)/d w_j   = -(r_j - phi_j)
      grad[j] += -(r - phi[j]) * inv_b;
      // d(-log S)/d mu_j  = -r_j (x - mu_j) / sigma_j^2
      grad[k + j] += -r * z / sigma * inv_b;
      // d(-log S)/d log sigma_j = -r_j (z^2 - 1)
      grad[2 * k + j] += -r * (z * z - 1.0) * inv_b;
    }
  }

  AdamUpdate(grad);
  const double mean_nll = total_nll * inv_b;
  GmmMetrics& metrics = GmmMetrics::Get();
  metrics.sgd_steps.Add();
  metrics.sgd_nll.Set(mean_nll);
  return mean_nll;
}

void Gmm1D::AdamUpdate(std::span<const double> grad) {
  const int k = num_components();
  IAM_CHECK(static_cast<int>(grad.size()) == 3 * k);
  ++adam_step_;
  const double bias1 = 1.0 - std::pow(kAdamBeta1, adam_step_);
  const double bias2 = 1.0 - std::pow(kAdamBeta2, adam_step_);
  auto update = [&](int idx, double& value) {
    adam_m_[idx] = kAdamBeta1 * adam_m_[idx] + (1.0 - kAdamBeta1) * grad[idx];
    adam_v_[idx] =
        kAdamBeta2 * adam_v_[idx] + (1.0 - kAdamBeta2) * grad[idx] * grad[idx];
    const double m_hat = adam_m_[idx] / bias1;
    const double v_hat = adam_v_[idx] / bias2;
    value -= learning_rate_ * m_hat / (std::sqrt(v_hat) + kAdamEps);
  };
  for (int j = 0; j < k; ++j) update(j, weight_logits_[j]);
  for (int j = 0; j < k; ++j) update(k + j, means_[j]);
  for (int j = 0; j < k; ++j) update(2 * k + j, log_sigmas_[j]);
}

double Gmm1D::EmStep(std::span<const double> data) {
  IAM_CHECK(!data.empty());
  const int k = num_components();
  std::vector<double> nk(k, 0.0);
  std::vector<double> sum_x(k, 0.0);
  std::vector<double> sum_x2(k, 0.0);
  std::vector<double> phi(k);
  for (int j = 0; j < k; ++j) phi[j] = weight(j);

  std::vector<double> log_terms(k);
  double total_nll = 0.0;
  for (double x : data) {
    for (int j = 0; j < k; ++j) {
      log_terms[j] = std::log(std::max(phi[j], 1e-300)) +
                     NormalLogPdf(x, means_[j], stddev(j));
    }
    const double lse = LogSumExp(log_terms);
    total_nll += -lse;
    for (int j = 0; j < k; ++j) {
      const double r = std::exp(log_terms[j] - lse);
      nk[j] += r;
      sum_x[j] += r * x;
      sum_x2[j] += r * x * x;
    }
  }

  const double n = static_cast<double>(data.size());
  for (int j = 0; j < k; ++j) {
    if (nk[j] < 1e-10) continue;  // dead component, leave untouched
    const double mu = sum_x[j] / nk[j];
    const double var = std::max(kMinSigma * kMinSigma,
                                sum_x2[j] / nk[j] - mu * mu);
    means_[j] = mu;
    log_sigmas_[j] = 0.5 * std::log(var);
    weight_logits_[j] = std::log(std::max(nk[j] / n, 1e-300));
  }
  const double mean_nll = total_nll / n;
  GmmMetrics& metrics = GmmMetrics::Get();
  metrics.em_steps.Add();
  metrics.em_nll.Set(mean_nll);
  return mean_nll;
}

double Gmm1D::ComponentIntervalMass(int k, double lo, double hi) const {
  IAM_CHECK(k >= 0 && k < num_components());
  if (lo > hi) return 0.0;
  return NormalIntervalMass(lo, hi, means_[k], stddev(k));
}

double Gmm1D::ComponentTruncatedMean(int k, double lo, double hi) const {
  IAM_CHECK(k >= 0 && k < num_components());
  const double mu = means_[k];
  const double sigma = stddev(k);
  const double a = (lo - mu) / sigma;
  const double b = (hi - mu) / sigma;
  const double mass = NormalCdf(b) - NormalCdf(a);
  if (mass < 1e-12) return Clamp(mu, lo, hi);
  // E[X | a < Z < b] = mu + sigma * (phi(a) - phi(b)) / (Phi(b) - Phi(a)).
  const double pa = std::isfinite(a) ? NormalPdf(a) : 0.0;
  const double pb = std::isfinite(b) ? NormalPdf(b) : 0.0;
  return mu + sigma * (pa - pb) / mass;
}

double Gmm1D::SampleComponent(int k, Rng& rng) const {
  IAM_CHECK(k >= 0 && k < num_components());
  return rng.Gaussian(means_[k], stddev(k));
}

double Gmm1D::Sample(Rng& rng) const {
  const int k = num_components();
  std::vector<double> weights(k);
  for (int j = 0; j < k; ++j) weights[j] = weight(j);
  return SampleComponent(static_cast<int>(rng.Categorical(weights)), rng);
}

void Gmm1D::Serialize(std::ostream& out) const {
  WriteVector(out, weight_logits_);
  WriteVector(out, means_);
  WriteVector(out, log_sigmas_);
}

Result<Gmm1D> Gmm1D::Deserialize(std::istream& in) {
  std::vector<double> logits, means, log_sigmas;
  IAM_RETURN_IF_ERROR(ReadVector(in, &logits));
  IAM_RETURN_IF_ERROR(ReadVector(in, &means));
  IAM_RETURN_IF_ERROR(ReadVector(in, &log_sigmas));
  if (logits.empty() || logits.size() != means.size() ||
      means.size() != log_sigmas.size()) {
    return Status::IoError("inconsistent GMM blob");
  }
  Gmm1D gmm(static_cast<int>(means.size()));
  gmm.weight_logits_ = std::move(logits);
  gmm.means_ = std::move(means);
  gmm.log_sigmas_ = std::move(log_sigmas);
  return gmm;
}

ComponentSampleIndex::ComponentSampleIndex(const Gmm1D& gmm,
                                           int samples_per_component,
                                           Rng& rng)
    : samples_per_component_(samples_per_component) {
  IAM_CHECK(samples_per_component >= 1);
  samples_.resize(gmm.num_components());
  for (int k = 0; k < gmm.num_components(); ++k) {
    samples_[k].resize(samples_per_component);
    for (int s = 0; s < samples_per_component; ++s) {
      samples_[k][s] = gmm.SampleComponent(k, rng);
    }
    std::sort(samples_[k].begin(), samples_[k].end());
  }
}

double ComponentSampleIndex::Mass(int k, double lo, double hi) const {
  IAM_CHECK(k >= 0 && k < num_components());
  if (lo > hi) return 0.0;
  const auto& s = samples_[k];
  const auto first = std::lower_bound(s.begin(), s.end(), lo);
  const auto last = std::upper_bound(s.begin(), s.end(), hi);
  return static_cast<double>(last - first) /
         static_cast<double>(samples_per_component_);
}

std::vector<double> ComponentSampleIndex::RangeMass(double lo,
                                                    double hi) const {
  std::vector<double> mass(num_components());
  for (int k = 0; k < num_components(); ++k) mass[k] = Mass(k, lo, hi);
  return mass;
}

std::vector<double> ExactRangeMass(const Gmm1D& gmm, double lo, double hi) {
  std::vector<double> mass(gmm.num_components());
  for (int k = 0; k < gmm.num_components(); ++k) {
    mass[k] = gmm.ComponentIntervalMass(k, lo, hi);
  }
  return mass;
}

}  // namespace iam::gmm
