#include "gmm/vbgm.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/metrics.h"
#include "util/macros.h"
#include "util/math_util.h"

namespace iam::gmm {
namespace {

// Convergence telemetry for the VB fits that size every column's mixture:
// fit/iteration counters plus the mean-shift left at the final iteration
// (relative to the 1e-6·σ tolerance — near-zero means true convergence,
// larger means the iteration cap ended the fit).
struct VbgmMetrics {
  obs::Counter& fits;
  obs::Counter& iterations;
  obs::Gauge& final_shift;

  static VbgmMetrics& Get() {
    static VbgmMetrics metrics = [] {
      obs::MetricRegistry& reg = obs::MetricRegistry::Global();
      return VbgmMetrics{
          reg.GetCounter("iam_gmm_vbgm_fits_total"),
          reg.GetCounter("iam_gmm_vbgm_iterations_total"),
          reg.GetGauge("iam_gmm_vbgm_final_shift"),
      };
    }();
    return metrics;
  }
};

// Digamma via the asymptotic expansion with argument shifting; accurate to
// ~1e-10 for x > 0, which is ample for VB updates.
double Digamma(double x) {
  IAM_CHECK(x > 0.0);
  double result = 0.0;
  while (x < 6.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0));
  return result;
}

}  // namespace

VbgmResult FitVbgm(std::span<const double> data, const VbgmOptions& options,
                   Rng& rng) {
  IAM_CHECK(!data.empty());
  IAM_CHECK(options.max_components >= 1);

  // Uniform subsample for efficiency.
  std::vector<double> xs;
  if (data.size() > options.max_fit_points) {
    xs.reserve(options.max_fit_points);
    for (size_t i = 0; i < options.max_fit_points; ++i) {
      xs.push_back(data[rng.UniformInt(data.size())]);
    }
  } else {
    xs.assign(data.begin(), data.end());
  }
  const size_t n = xs.size();
  const int k = options.max_components;

  const MeanVar mv = ComputeMeanVar(xs);
  const double data_var = std::max(mv.variance, 1e-12);

  // Priors (Normal-Gamma over mean/precision, Dirichlet over weights).
  const double alpha0 = options.weight_concentration;
  const double beta0 = 1.0;
  const double m0 = mv.mean;
  const double a0 = 1.0;
  const double b0 = data_var;

  // Posterior state per component.
  std::vector<double> alpha(k, alpha0), beta(k, beta0), m(k), a(k, a0),
      b(k, b0);
  // Spread the initial means over distinct data points (k-means++-lite).
  for (int j = 0; j < k; ++j) m[j] = xs[rng.UniformInt(n)];

  std::vector<double> log_resp(k);
  std::vector<double> nk(k), xbar(k), sk(k);
  int iter = 0;
  double last_shift = 0.0;
  for (; iter < options.max_iterations; ++iter) {
    // Expected log weights / log precision under the posterior.
    double alpha_sum = 0.0;
    for (int j = 0; j < k; ++j) alpha_sum += alpha[j];
    const double digamma_alpha_sum = Digamma(alpha_sum);

    std::fill(nk.begin(), nk.end(), 0.0);
    std::fill(xbar.begin(), xbar.end(), 0.0);
    std::fill(sk.begin(), sk.end(), 0.0);

    // E step: responsibilities r_{ij}.
    std::vector<double> sum_rx(k, 0.0), sum_rx2(k, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double x = xs[i];
      for (int j = 0; j < k; ++j) {
        const double e_log_pi = Digamma(alpha[j]) - digamma_alpha_sum;
        const double e_log_lambda = Digamma(a[j]) - std::log(b[j]);
        const double e_lambda = a[j] / b[j];
        const double d = x - m[j];
        const double e_quad = 1.0 / beta[j] + e_lambda * d * d;
        log_resp[j] = e_log_pi + 0.5 * e_log_lambda - 0.5 * e_quad;
      }
      const double lse = LogSumExp(log_resp);
      for (int j = 0; j < k; ++j) {
        const double r = std::exp(log_resp[j] - lse);
        nk[j] += r;
        sum_rx[j] += r * x;
        sum_rx2[j] += r * x * x;
      }
    }

    // M step: update posterior hyperparameters.
    double max_shift = 0.0;
    for (int j = 0; j < k; ++j) {
      const double nj = std::max(nk[j], 1e-12);
      xbar[j] = sum_rx[j] / nj;
      sk[j] = std::max(0.0, sum_rx2[j] / nj - xbar[j] * xbar[j]);

      alpha[j] = alpha0 + nk[j];
      const double new_beta = beta0 + nk[j];
      const double new_m = (beta0 * m0 + nk[j] * xbar[j]) / new_beta;
      const double new_a = a0 + 0.5 * nk[j];
      const double new_b =
          b0 + 0.5 * (nk[j] * sk[j] +
                      beta0 * nk[j] * (xbar[j] - m0) * (xbar[j] - m0) /
                          new_beta);
      max_shift = std::max(max_shift, std::abs(new_m - m[j]));
      beta[j] = new_beta;
      m[j] = new_m;
      a[j] = new_a;
      b[j] = std::max(new_b, 1e-12);
    }
    last_shift = max_shift;
    if (max_shift < 1e-6 * std::sqrt(data_var)) {
      ++iter;
      break;
    }
  }
  VbgmMetrics& metrics = VbgmMetrics::Get();
  metrics.fits.Add();
  metrics.iterations.Add(static_cast<uint64_t>(iter));
  metrics.final_shift.Set(last_shift);

  // Surviving components: expected weight above the floor.
  double alpha_sum = 0.0;
  for (int j = 0; j < k; ++j) alpha_sum += alpha[j];
  struct Surviving {
    double weight, mean, stddev;
  };
  std::vector<Surviving> kept;
  for (int j = 0; j < k; ++j) {
    const double w = alpha[j] / alpha_sum;
    if (w < options.weight_floor) continue;
    const double var = b[j] / std::max(a[j] - 0.5, 0.5);  // posterior E[1/λ]-ish
    kept.push_back({w, m[j], std::sqrt(std::max(var, 1e-12))});
  }
  if (kept.empty()) {
    kept.push_back({1.0, mv.mean, std::sqrt(data_var)});
  }

  // Component annihilation by merging (Figueiredo & Jain style): overlapping
  // fits of a unimodal region converge to near-identical parameters; the VB
  // weights alone cannot break that symmetry, so near-duplicates are merged
  // (moment matching) before reporting the selected K.
  std::sort(kept.begin(), kept.end(),
            [](const Surviving& a, const Surviving& b) {
              return a.mean < b.mean;
            });
  std::vector<Surviving> merged;
  for (const Surviving& s : kept) {
    if (!merged.empty()) {
      Surviving& prev = merged.back();
      const double scale = std::min(prev.stddev, s.stddev);
      if (std::abs(s.mean - prev.mean) < 0.5 * scale) {
        const double w = prev.weight + s.weight;
        const double mean =
            (prev.weight * prev.mean + s.weight * s.mean) / w;
        const double second =
            (prev.weight * (prev.stddev * prev.stddev +
                            prev.mean * prev.mean) +
             s.weight * (s.stddev * s.stddev + s.mean * s.mean)) /
            w;
        prev.weight = w;
        prev.mean = mean;
        prev.stddev = std::sqrt(std::max(second - mean * mean, 1e-12));
        continue;
      }
    }
    merged.push_back(s);
  }
  kept = std::move(merged);

  VbgmResult result{Gmm1D(static_cast<int>(kept.size())),
                    static_cast<int>(kept.size()), iter};
  double wsum = 0.0;
  for (const auto& s : kept) wsum += s.weight;
  for (size_t j = 0; j < kept.size(); ++j) {
    result.gmm.SetComponent(static_cast<int>(j),
                            std::log(kept[j].weight / wsum), kept[j].mean,
                            kept[j].stddev);
  }
  return result;
}

}  // namespace iam::gmm
