#include "gmm/gmm2d.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/macros.h"
#include "util/math_util.h"

namespace iam::gmm {
namespace {

constexpr double kMinVar = 1e-9;
constexpr double kLog2Pi = 1.8378770664093453;

}  // namespace

Gmm2D::Gmm2D(int num_components) : comps_(num_components) {
  IAM_CHECK(num_components >= 1);
  for (Component& c : comps_) c.weight = 1.0 / num_components;
}

void Gmm2D::InitFromData(std::span<const double> xs,
                         std::span<const double> ys, Rng& rng) {
  IAM_CHECK(xs.size() == ys.size());
  IAM_CHECK(!xs.empty());
  const size_t n = xs.size();
  const MeanVar mx = ComputeMeanVar(xs);
  const MeanVar my = ComputeMeanVar(ys);

  // k-means++ seeding in 2-D.
  std::vector<size_t> chosen = {rng.UniformInt(n)};
  std::vector<double> dist2(n);
  while (chosen.size() < comps_.size()) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (size_t c : chosen) {
        const double dx = xs[i] - xs[c];
        const double dy = ys[i] - ys[c];
        best = std::min(best, dx * dx + dy * dy);
      }
      dist2[i] = best;
      total += best;
    }
    chosen.push_back(total > 0.0 ? rng.CategoricalWithSum(dist2, total)
                                 : rng.UniformInt(n));
  }

  const double k = static_cast<double>(comps_.size());
  for (size_t j = 0; j < comps_.size(); ++j) {
    comps_[j].weight = 1.0 / k;
    comps_[j].mean[0] = xs[chosen[j]];
    comps_[j].mean[1] = ys[chosen[j]];
    comps_[j].cov[0] = std::max(mx.variance / k, kMinVar);
    comps_[j].cov[1] = 0.0;
    comps_[j].cov[2] = std::max(my.variance / k, kMinVar);
  }
}

double Gmm2D::LogPdf(int k, double x, double y) const {
  const Component& c = comps_[k];
  const double a = c.cov[0], b = c.cov[1], d = c.cov[2];
  const double det = std::max(a * d - b * b, kMinVar * kMinVar);
  const double dx = x - c.mean[0];
  const double dy = y - c.mean[1];
  // Quadratic form with the inverse of [[a, b], [b, d]].
  const double quad = (d * dx * dx - 2.0 * b * dx * dy + a * dy * dy) / det;
  return -0.5 * (quad + std::log(det)) - kLog2Pi;
}

double Gmm2D::NegLogLikelihood(double x, double y) const {
  std::vector<double> terms(comps_.size());
  for (size_t k = 0; k < comps_.size(); ++k) {
    terms[k] = std::log(std::max(comps_[k].weight, 1e-300)) +
               LogPdf(static_cast<int>(k), x, y);
  }
  return -LogSumExp(terms);
}

int Gmm2D::Assign(double x, double y) const {
  int best = 0;
  double best_score = kNegInf;
  for (int k = 0; k < num_components(); ++k) {
    const double score =
        std::log(std::max(comps_[k].weight, 1e-300)) + LogPdf(k, x, y);
    if (score > best_score) {
      best_score = score;
      best = k;
    }
  }
  return best;
}

double Gmm2D::EmStep(std::span<const double> xs, std::span<const double> ys) {
  IAM_CHECK(xs.size() == ys.size());
  const size_t n = xs.size();
  const int k = num_components();
  std::vector<double> nk(k, 0.0), sx(k, 0.0), sy(k, 0.0), sxx(k, 0.0),
      sxy(k, 0.0), syy(k, 0.0);

  std::vector<double> terms(k);
  double total_nll = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) {
      terms[j] = std::log(std::max(comps_[j].weight, 1e-300)) +
                 LogPdf(j, xs[i], ys[i]);
    }
    const double lse = LogSumExp(terms);
    total_nll += -lse;
    for (int j = 0; j < k; ++j) {
      const double r = std::exp(terms[j] - lse);
      nk[j] += r;
      sx[j] += r * xs[i];
      sy[j] += r * ys[i];
      sxx[j] += r * xs[i] * xs[i];
      sxy[j] += r * xs[i] * ys[i];
      syy[j] += r * ys[i] * ys[i];
    }
  }

  for (int j = 0; j < k; ++j) {
    if (nk[j] < 1e-9) continue;  // dead component
    Component& c = comps_[j];
    c.weight = nk[j] / static_cast<double>(n);
    c.mean[0] = sx[j] / nk[j];
    c.mean[1] = sy[j] / nk[j];
    c.cov[0] = std::max(sxx[j] / nk[j] - c.mean[0] * c.mean[0], kMinVar);
    c.cov[1] = sxy[j] / nk[j] - c.mean[0] * c.mean[1];
    c.cov[2] = std::max(syy[j] / nk[j] - c.mean[1] * c.mean[1], kMinVar);
    // Keep the covariance positive definite.
    const double limit =
        0.99 * std::sqrt(c.cov[0] * c.cov[2]);
    c.cov[1] = Clamp(c.cov[1], -limit, limit);
  }
  return total_nll / static_cast<double>(n);
}

void Gmm2D::SampleComponent(int k, Rng& rng, double* x, double* y) const {
  const Component& c = comps_[k];
  // Cholesky of [[a, b], [b, d]]: L = [[l11, 0], [l21, l22]].
  const double l11 = std::sqrt(c.cov[0]);
  const double l21 = c.cov[1] / l11;
  const double l22 = std::sqrt(std::max(c.cov[2] - l21 * l21, kMinVar));
  const double u = rng.Gaussian();
  const double v = rng.Gaussian();
  *x = c.mean[0] + l11 * u;
  *y = c.mean[1] + l21 * u + l22 * v;
}

double Gmm2D::RectangleMass(int k, double xlo, double xhi, double ylo,
                            double yhi, int samples, Rng& rng) const {
  IAM_CHECK(samples >= 1);
  if (xlo > xhi || ylo > yhi) return 0.0;
  int hits = 0;
  double x = 0.0, y = 0.0;
  for (int s = 0; s < samples; ++s) {
    SampleComponent(k, rng, &x, &y);
    if (x >= xlo && x <= xhi && y >= ylo && y <= yhi) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

}  // namespace iam::gmm
