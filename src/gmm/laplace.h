#ifndef IAM_GMM_LAPLACE_H_
#define IAM_GMM_LAPLACE_H_

#include <span>
#include <vector>

#include "util/random.h"

namespace iam::gmm {

// One-dimensional Laplace mixture — the paper's stated future work ("we plan
// to implement other mixture models in IAM"). Heavier tails than Gaussians,
// which suits spiky sensor data. Mirrors Gmm1D: trainable parameters are
// weight logits, locations, and log scales; SGD on the mixture NLL with
// analytic gradients via responsibilities, so it slots into the same joint
// training loop.
class LaplaceMixture1D {
 public:
  explicit LaplaceMixture1D(int num_components);

  int num_components() const { return static_cast<int>(locations_.size()); }
  double weight(int k) const;
  double location(int k) const { return locations_[k]; }
  double scale(int k) const;

  void SetComponent(int k, double weight_logit, double location,
                    double scale);
  void InitFromData(std::span<const double> data, Rng& rng);

  // One Adam step on a mini-batch; returns the mean NLL.
  double SgdStep(std::span<const double> batch);
  void set_learning_rate(double lr) { learning_rate_ = lr; }

  double NegLogLikelihood(double x) const;
  double MeanNegLogLikelihood(std::span<const double> data) const;

  // argmax_k phi_k Laplace(x | mu_k, b_k) — the reduced attribute value.
  int Assign(double x) const;

  // Exact mass of [lo, hi] under component k (closed-form Laplace CDF).
  double ComponentIntervalMass(int k, double lo, double hi) const;

  // Mean of component k truncated to [lo, hi] (closed form, piecewise
  // exponential integrals).
  double ComponentTruncatedMean(int k, double lo, double hi) const;

  double SampleComponent(int k, Rng& rng) const;

  size_t SizeBytes() const { return locations_.size() * 3 * sizeof(double); }

 private:
  void AdamUpdate(std::span<const double> grad);

  std::vector<double> weight_logits_;
  std::vector<double> locations_;
  std::vector<double> log_scales_;

  double learning_rate_ = 5e-3;
  long adam_step_ = 0;
  std::vector<double> adam_m_;
  std::vector<double> adam_v_;
};

}  // namespace iam::gmm

#endif  // IAM_GMM_LAPLACE_H_
