#include "gmm/laplace.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/macros.h"
#include "util/math_util.h"

namespace iam::gmm {
namespace {

constexpr double kMinScale = 1e-6;
constexpr double kAdamBeta1 = 0.9;
constexpr double kAdamBeta2 = 0.999;
constexpr double kAdamEps = 1e-8;

double LaplaceLogPdf(double x, double mu, double b) {
  return -std::abs(x - mu) / b - std::log(2.0 * b);
}

double LaplaceCdf(double x, double mu, double b) {
  if (x < mu) return 0.5 * std::exp((x - mu) / b);
  return 1.0 - 0.5 * std::exp(-(x - mu) / b);
}

}  // namespace

LaplaceMixture1D::LaplaceMixture1D(int num_components)
    : weight_logits_(num_components, 0.0),
      locations_(num_components, 0.0),
      log_scales_(num_components, 0.0),
      adam_m_(3 * num_components, 0.0),
      adam_v_(3 * num_components, 0.0) {
  IAM_CHECK(num_components >= 1);
}

double LaplaceMixture1D::weight(int k) const {
  const double max_logit =
      *std::max_element(weight_logits_.begin(), weight_logits_.end());
  double denom = 0.0;
  for (double w : weight_logits_) denom += std::exp(w - max_logit);
  return std::exp(weight_logits_[k] - max_logit) / denom;
}

double LaplaceMixture1D::scale(int k) const {
  return std::max(kMinScale, std::exp(log_scales_[k]));
}

void LaplaceMixture1D::SetComponent(int k, double weight_logit,
                                    double location, double scale) {
  IAM_CHECK(k >= 0 && k < num_components());
  IAM_CHECK(scale > 0.0);
  weight_logits_[k] = weight_logit;
  locations_[k] = location;
  log_scales_[k] = std::log(scale);
}

void LaplaceMixture1D::InitFromData(std::span<const double> data, Rng& rng) {
  IAM_CHECK(!data.empty());
  const int k = num_components();
  const MeanVar mv = ComputeMeanVar(data);
  const double spread =
      std::max(kMinScale, std::sqrt(mv.variance) / std::max(1.0, (double)k));

  // k-means++-style seeding, as in Gmm1D: spread the initial locations so
  // SGD starts with every mode covered.
  std::vector<double> chosen;
  chosen.push_back(data[rng.UniformInt(data.size())]);
  std::vector<double> dist2(data.size());
  while (static_cast<int>(chosen.size()) < k) {
    double total = 0.0;
    for (size_t i = 0; i < data.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (double c : chosen) {
        const double d = data[i] - c;
        best = std::min(best, d * d);
      }
      dist2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      chosen.push_back(mv.mean + rng.Gaussian(0.0, spread + kMinScale));
      continue;
    }
    chosen.push_back(data[rng.CategoricalWithSum(dist2, total)]);
  }

  for (int j = 0; j < k; ++j) {
    weight_logits_[j] = 0.0;
    locations_[j] = chosen[j];
    log_scales_[j] = std::log(spread);
  }
  std::fill(adam_m_.begin(), adam_m_.end(), 0.0);
  std::fill(adam_v_.begin(), adam_v_.end(), 0.0);
  adam_step_ = 0;
}

double LaplaceMixture1D::NegLogLikelihood(double x) const {
  const int k = num_components();
  std::vector<double> log_terms(k);
  for (int j = 0; j < k; ++j) {
    log_terms[j] = std::log(std::max(weight(j), 1e-300)) +
                   LaplaceLogPdf(x, locations_[j], scale(j));
  }
  return -LogSumExp(log_terms);
}

double LaplaceMixture1D::MeanNegLogLikelihood(
    std::span<const double> data) const {
  IAM_CHECK(!data.empty());
  double total = 0.0;
  for (double x : data) total += NegLogLikelihood(x);
  return total / static_cast<double>(data.size());
}

int LaplaceMixture1D::Assign(double x) const {
  int best = 0;
  double best_score = kNegInf;
  for (int j = 0; j < num_components(); ++j) {
    const double score =
        weight_logits_[j] + LaplaceLogPdf(x, locations_[j], scale(j));
    if (score > best_score) {
      best_score = score;
      best = j;
    }
  }
  return best;
}

double LaplaceMixture1D::SgdStep(std::span<const double> batch) {
  IAM_CHECK(!batch.empty());
  const int k = num_components();
  std::vector<double> grad(3 * k, 0.0);
  std::vector<double> phi(k);
  for (int j = 0; j < k; ++j) phi[j] = weight(j);

  std::vector<double> log_terms(k);
  const double inv_b = 1.0 / static_cast<double>(batch.size());
  double total_nll = 0.0;
  for (double x : batch) {
    for (int j = 0; j < k; ++j) {
      log_terms[j] = std::log(std::max(phi[j], 1e-300)) +
                     LaplaceLogPdf(x, locations_[j], scale(j));
    }
    const double lse = LogSumExp(log_terms);
    total_nll += -lse;
    for (int j = 0; j < k; ++j) {
      const double r = std::exp(log_terms[j] - lse);
      const double b = scale(j);
      const double d = x - locations_[j];
      const double sign = d > 0.0 ? 1.0 : (d < 0.0 ? -1.0 : 0.0);
      grad[j] += -(r - phi[j]) * inv_b;
      grad[k + j] += -r * sign / b * inv_b;
      grad[2 * k + j] += -r * (std::abs(d) / b - 1.0) * inv_b;
    }
  }
  AdamUpdate(grad);
  return total_nll * inv_b;
}

void LaplaceMixture1D::AdamUpdate(std::span<const double> grad) {
  const int k = num_components();
  ++adam_step_;
  const double bias1 = 1.0 - std::pow(kAdamBeta1, adam_step_);
  const double bias2 = 1.0 - std::pow(kAdamBeta2, adam_step_);
  auto update = [&](int idx, double& value) {
    adam_m_[idx] = kAdamBeta1 * adam_m_[idx] + (1.0 - kAdamBeta1) * grad[idx];
    adam_v_[idx] =
        kAdamBeta2 * adam_v_[idx] + (1.0 - kAdamBeta2) * grad[idx] * grad[idx];
    value -= learning_rate_ * (adam_m_[idx] / bias1) /
             (std::sqrt(adam_v_[idx] / bias2) + kAdamEps);
  };
  for (int j = 0; j < k; ++j) update(j, weight_logits_[j]);
  for (int j = 0; j < k; ++j) update(k + j, locations_[j]);
  for (int j = 0; j < k; ++j) update(2 * k + j, log_scales_[j]);
}

double LaplaceMixture1D::ComponentIntervalMass(int k, double lo,
                                               double hi) const {
  IAM_CHECK(k >= 0 && k < num_components());
  if (lo > hi) return 0.0;
  return LaplaceCdf(hi, locations_[k], scale(k)) -
         LaplaceCdf(lo, locations_[k], scale(k));
}

double LaplaceMixture1D::ComponentTruncatedMean(int k, double lo,
                                                double hi) const {
  IAM_CHECK(k >= 0 && k < num_components());
  const double mu = locations_[k];
  const double b = scale(k);
  const double mass = ComponentIntervalMass(k, lo, hi);
  if (mass < 1e-12) return Clamp(mu, lo, hi);

  // Piecewise antiderivatives of t * f(t):
  //   left of mu:  A_l(x) = (x - b)/2 * exp((x - mu)/b)
  //   right of mu: A_r(x) = -(x + b)/2 * exp(-(x - mu)/b)
  auto left = [&](double x) {
    if (!std::isfinite(x)) return 0.0;  // x -> -inf
    return 0.5 * (x - b) * std::exp((x - mu) / b);
  };
  auto right = [&](double x) {
    if (!std::isfinite(x)) return 0.0;  // x -> +inf
    return -0.5 * (x + b) * std::exp(-(x - mu) / b);
  };
  double integral = 0.0;
  if (hi <= mu) {
    integral = left(hi) - left(lo);
  } else if (lo >= mu) {
    integral = right(hi) - right(lo);
  } else {
    integral = (left(mu) - left(lo)) + (right(hi) - right(mu));
  }
  return integral / mass;
}

double LaplaceMixture1D::SampleComponent(int k, Rng& rng) const {
  IAM_CHECK(k >= 0 && k < num_components());
  const double u = rng.Uniform() - 0.5;
  const double sign = u >= 0.0 ? 1.0 : -1.0;
  return locations_[k] -
         scale(k) * sign * std::log(1.0 - 2.0 * std::abs(u));
}

}  // namespace iam::gmm
