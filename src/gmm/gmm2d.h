#ifndef IAM_GMM_GMM2D_H_
#define IAM_GMM_GMM2D_H_

#include <span>
#include <vector>

#include "util/random.h"

namespace iam::gmm {

// Two-dimensional Gaussian mixture with full covariance — the design
// alternative the paper rejects in Section 4.2 ("One Gaussian Mixture Model
// for One Attribute"): a joint GMM can capture cross-attribute correlation,
// but its covariance storage grows quadratically with dimensionality and the
// paper found no accuracy benefit once the AR model handles correlations.
// This class exists to reproduce that comparison (bench_gmm_samples).
class Gmm2D {
 public:
  struct Component {
    double weight = 0.0;
    double mean[2] = {0.0, 0.0};
    // Full symmetric covariance {xx, xy, yy}.
    double cov[3] = {1.0, 0.0, 1.0};
  };

  explicit Gmm2D(int num_components);

  int num_components() const { return static_cast<int>(comps_.size()); }
  const Component& component(int k) const { return comps_[k]; }

  // K-means++-style seeding from (x, y) pairs.
  void InitFromData(std::span<const double> xs, std::span<const double> ys,
                    Rng& rng);

  // One EM iteration; returns the mean NLL before the update.
  double EmStep(std::span<const double> xs, std::span<const double> ys);

  double LogPdf(int k, double x, double y) const;
  double NegLogLikelihood(double x, double y) const;
  int Assign(double x, double y) const;

  // Monte-Carlo mass of the axis-aligned rectangle [xlo,xhi]x[ylo,yhi] under
  // component k (full covariance admits no closed form; the paper's own
  // range masses are Monte-Carlo too).
  double RectangleMass(int k, double xlo, double xhi, double ylo, double yhi,
                       int samples, Rng& rng) const;

  // Draws one point from component k.
  void SampleComponent(int k, Rng& rng, double* x, double* y) const;

  // weight + 2 means + 3 covariance entries per component: the O(d^2) cost
  // the paper's Section 4.2 memory argument is about.
  size_t SizeBytes() const { return comps_.size() * 6 * sizeof(double); }

 private:
  std::vector<Component> comps_;
};

}  // namespace iam::gmm

#endif  // IAM_GMM_GMM2D_H_
