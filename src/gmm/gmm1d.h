#ifndef IAM_GMM_GMM1D_H_
#define IAM_GMM_GMM1D_H_

#include <istream>
#include <ostream>
#include <span>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace iam::gmm {

// One-dimensional Gaussian mixture model, the paper's per-attribute domain
// reducer (Section 4.2). Parameters are stored in trainable form — weight
// logits, means, log standard deviations — so the same object supports both
// classic EM and the paper's batched SGD on the negative log-likelihood
// (Equation 4), which is what lets GMMs join the AR model's mini-batch loop.
class Gmm1D {
 public:
  explicit Gmm1D(int num_components);

  int num_components() const { return static_cast<int>(means_.size()); }

  double weight(int k) const;   // softmax of the weight logits
  double mean(int k) const { return means_[k]; }
  double stddev(int k) const;

  void SetComponent(int k, double weight_logit, double mean, double stddev);

  // K-means++-style seeding from data: means at spread-out sample points,
  // stddevs at the data scale, uniform weights.
  void InitFromData(std::span<const double> data, Rng& rng);

  // One Adam step on a mini-batch; returns the mean NLL (Equation 4).
  // Gradients are analytic via component responsibilities.
  double SgdStep(std::span<const double> batch);
  void set_learning_rate(double lr) { learning_rate_ = lr; }

  // One full-data EM iteration; returns the mean NLL before the update.
  double EmStep(std::span<const double> data);

  // -log sum_k phi_k N(x | mu_k, sigma_k^2).
  double NegLogLikelihood(double x) const;
  double MeanNegLogLikelihood(std::span<const double> data) const;

  // argmax_k phi_k N(x | mu_k, sigma_k) — the reduced attribute value
  // (Equation 5).
  int Assign(double x) const;

  // Per-component responsibilities P_k(x) (normalized). Used by tests.
  std::vector<double> Responsibilities(double x) const;

  // Exact mass of [lo, hi] under component k (via the normal CDF).
  double ComponentIntervalMass(int k, double lo, double hi) const;

  // Mean of component k truncated to [lo, hi] (truncated-normal mean); used
  // by the approximate-aggregation (AVG/SUM) extension. Falls back to the
  // clamped component mean when the interval carries negligible mass.
  double ComponentTruncatedMean(int k, double lo, double hi) const;

  // Draws one point from component k.
  double SampleComponent(int k, Rng& rng) const;
  // Draws one point from the mixture.
  double Sample(Rng& rng) const;

  // Three doubles per component, as the paper counts GMM storage.
  size_t SizeBytes() const { return means_.size() * 3 * sizeof(double); }

  // Model persistence (parameters only; optimizer state is not preserved).
  void Serialize(std::ostream& out) const;
  static Result<Gmm1D> Deserialize(std::istream& in);

 private:
  // Adam state for (weight logits, means, log sigmas) flattened as 3K values.
  void AdamUpdate(std::span<const double> grad);

  std::vector<double> weight_logits_;
  std::vector<double> means_;
  std::vector<double> log_sigmas_;

  double learning_rate_ = 5e-3;
  long adam_step_ = 0;
  std::vector<double> adam_m_;
  std::vector<double> adam_v_;
};

// Precomputed per-component Monte-Carlo samples used to estimate
// \hat P_GMM^k(R) = S_k / S (Section 5.2). The paper draws S samples from
// each Gaussian once, as query-independent preprocessing; we keep them sorted
// so each range mass is two binary searches.
class ComponentSampleIndex {
 public:
  ComponentSampleIndex(const Gmm1D& gmm, int samples_per_component, Rng& rng);

  int num_components() const { return static_cast<int>(samples_.size()); }
  int samples_per_component() const { return samples_per_component_; }

  // Fraction of component k's samples falling in [lo, hi].
  double Mass(int k, double lo, double hi) const;

  // Vector \hat P_GMM(R) over all components.
  std::vector<double> RangeMass(double lo, double hi) const;

  size_t SizeBytes() const {
    return static_cast<size_t>(num_components()) * samples_per_component_ *
           sizeof(double);
  }

 private:
  std::vector<std::vector<double>> samples_;  // sorted per component
  int samples_per_component_;
};

// Exact counterpart of ComponentSampleIndex::RangeMass for verification and
// ablation: per-component CDF mass of [lo, hi].
std::vector<double> ExactRangeMass(const Gmm1D& gmm, double lo, double hi);

}  // namespace iam::gmm

#endif  // IAM_GMM_GMM1D_H_
