#ifndef IAM_ADAPT_CONTROLLER_H_
#define IAM_ADAPT_CONTROLLER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adapt/corrector.h"
#include "adapt/feedback.h"
#include "data/table.h"
#include "serve/adapt_hooks.h"
#include "serve/model_registry.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace iam::adapt {

struct AdaptOptions {
  // Apply the per-region corrector to served estimates. Off, the estimator's
  // correction loop never runs and serving stays bit-identical to a server
  // without adaptation.
  bool enable_corrector = true;
  CorrectorOptions corrector;

  // Bounded intake queue (feedback + append records). Full -> kOverloaded.
  size_t queue_capacity = 1024;

  // Drift window: the last `window` feedback q-errors, p90'd. The trigger
  // can only fire once at least `min_window_fill` q-errors accumulated.
  int window = 128;
  int min_window_fill = 32;
  // Retrain trigger: windowed p90 q-error above this fires a retrain
  // (provided enough appended rows accumulated). <= 0 disables retraining.
  double trigger_p90_qerror = 8.0;
  // 1/|T| floor used inside the q-error metric (query::QError).
  size_t qerror_floor_rows = 1 << 20;

  // Retraining. A triggered retrain builds a fresh estimator from the
  // append reservoir with the serving model's options and `retrain_epochs`
  // epochs of joint GMM+AR SGD, then ModelRegistry::Swap()s it in.
  size_t min_retrain_rows = 512;     // reservoir rows required to retrain
  size_t reservoir_capacity = 1 << 15;  // newest rows kept (ring)
  int retrain_epochs = 2;
  // Back-off: feedback records that must arrive after a retrain before the
  // trigger may fire again (the post-swap window must refill anyway).
  uint64_t min_feedback_between_retrains = 64;
};

// The closed-loop adaptation controller (DESIGN.md §18). Owns the bounded
// intake queue (rank kAdaptQueue) and the single adaptation thread that
// drains it; implements serve::AdaptationHooks so the event loop can hand it
// kFeedback / kAppendData payloads without src/serve depending on this
// library.
//
// Per feedback record, the adaptation thread resolves the served estimate
// (query-log lookup by seq, or a diagnosed estimate for the inline form),
// updates the RegionCorrector in arrival order — deterministic state for a
// fixed feedback sequence regardless of shard count — and pushes the q-error
// into the drift window. When the windowed p90 breaches the trigger and the
// append reservoir holds enough rows, it retrains inline (it *is* the
// background thread) and swaps the new generation into the ModelRegistry;
// serving never blocks, a failed retrain keeps the old model, and the
// registry install hook resets the corrector at the generation boundary.
//
// Lifetime: construct after the registry, destroy after the server that
// references it via ServerOptions::adapt (declare the controller before the
// server). The constructor registers the registry install hook; the
// destructor stops the thread and unregisters the hook.
class AdaptController : public serve::AdaptationHooks {
 public:
  AdaptController(serve::ModelRegistry& registry, AdaptOptions options);
  ~AdaptController() override;

  AdaptController(const AdaptController&) = delete;
  AdaptController& operator=(const AdaptController&) = delete;

  // serve::AdaptationHooks — called on the event-loop thread. Both parse and
  // validate the payload inline (cheap, bounded by kMaxPayloadBytes) and
  // enqueue the parsed record; a full queue yields an overloaded Ack.
  Ack OnFeedback(std::string_view payload) override;
  Ack OnAppendData(std::string_view payload) override;
  void RefreshGauges() override;

  // Blocks until every record enqueued so far has been processed (tests,
  // CI, bench phase boundaries).
  void Flush();
  // Stops the adaptation thread after draining the queue. Idempotent;
  // called by the destructor.
  void Stop();

  const RegionCorrector& corrector() const { return *corrector_; }
  // Windowed p90 q-error (0 until min_window_fill feedback arrived).
  double WindowP90() const;
  uint64_t FeedbackProcessed() const {
    return feedback_processed_.load(std::memory_order_relaxed);
  }
  uint64_t Retrains() const {
    return retrains_done_.load(std::memory_order_relaxed);
  }
  uint64_t RetrainFailures() const {
    return retrain_failures_.load(std::memory_order_relaxed);
  }
  size_t ReservoirRows() const {
    return reservoir_rows_.load(std::memory_order_relaxed);
  }

 private:
  struct Record {
    bool is_append = false;
    FeedbackPayload feedback;  // !is_append
    AppendPayload append;      // is_append
  };

  void WorkerLoop();
  void ProcessFeedback(const FeedbackPayload& feedback);
  void ProcessAppend(const AppendPayload& append);
  // Adaptation-thread helpers.
  void NoteQError(double qerror);
  void MaybeRetrain();
  data::Table BuildReservoirTable() const;

  serve::ModelRegistry& registry_;
  const AdaptOptions options_;
  const std::shared_ptr<RegionCorrector> corrector_;
  data::Table schema_;  // parse schema for inline feedback (same-schema swaps)

  util::Mutex queue_mu_{util::LockRank::kAdaptQueue};
  std::condition_variable work_cv_;
  std::condition_variable flush_cv_;
  std::deque<Record> queue_ IAM_GUARDED_BY(queue_mu_);
  uint64_t enqueued_ IAM_GUARDED_BY(queue_mu_) = 0;
  uint64_t processed_ IAM_GUARDED_BY(queue_mu_) = 0;
  bool stop_ IAM_GUARDED_BY(queue_mu_) = false;

  // Adaptation-thread-only state (no locking: one owner thread).
  std::deque<double> window_qerrors_;
  uint64_t last_generation_ = 0;
  uint64_t feedback_since_retrain_ = 0;
  std::vector<double> reservoir_;  // row-major ring, cols = schema width
  size_t reservoir_next_row_ = 0;
  size_t reservoir_filled_ = 0;

  // Gauge projections (RefreshGauges reads these without any adapt lock).
  std::atomic<int> queue_depth_{0};
  std::atomic<uint64_t> window_p90_bits_{0};
  std::atomic<size_t> reservoir_rows_{0};
  std::atomic<uint64_t> feedback_processed_{0};
  std::atomic<uint64_t> retrains_done_{0};
  std::atomic<uint64_t> retrain_failures_{0};

  std::thread worker_;
};

}  // namespace iam::adapt

#endif  // IAM_ADAPT_CONTROLLER_H_
