#ifndef IAM_ADAPT_FEEDBACK_H_
#define IAM_ADAPT_FEEDBACK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace iam::adapt {

// Payload codecs of the adaptation wire frames (DESIGN.md §18). The frame
// layer (serve/protocol.h) is payload-agnostic; these are the first parsers
// that touch kFeedback / kAppendData payload bytes from an untrusted socket,
// so they are shared between the server-side intake, the client/CLI
// encoders, and the fuzz harness (fuzz_frame_decoder re-encode oracle): any
// byte string must parse to a value or a clean Status, and an accepted
// payload must survive an encode/parse round trip unchanged.

// One kFeedback payload: the observed true selectivity of a served query,
// identified either by its query-log sequence number
//
//   seq=<N> actual=<selectivity>
//
// or inline by its predicate text (query::ParsePredicates grammar)
//
//   actual=<selectivity> where <predicates>
//
// `actual` must be a finite selectivity in [0, 1]; the seq form requires
// seq >= 1 (query-log sequence numbers are 1-based).
struct FeedbackPayload {
  uint64_t seq = 0;        // 0 = inline form
  double actual = 0.0;     // observed true selectivity
  std::string predicates;  // inline form only; verbatim predicate text
};

Result<FeedbackPayload> ParseFeedbackPayload(std::string_view payload);
std::string EncodeFeedbackPayload(const FeedbackPayload& feedback);

// One kAppendData payload: a batch of new rows for the retraining
// reservoir, as a column-count header followed by CSV rows
//
//   cols=<n>\n<v1>,...,<vn>\n...
//
// Every row must carry exactly n finite values; n must match the serving
// schema (validated by the intake hook, not the codec).
struct AppendPayload {
  int cols = 0;
  std::vector<double> values;  // row-major, values.size() % cols == 0

  size_t rows() const {
    return cols > 0 ? values.size() / static_cast<size_t>(cols) : 0;
  }
};

Result<AppendPayload> ParseAppendPayload(std::string_view payload);
std::string EncodeAppendPayload(const AppendPayload& append);

}  // namespace iam::adapt

#endif  // IAM_ADAPT_FEEDBACK_H_
