#include "adapt/corrector.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace iam::adapt {

namespace {

// FNV-1a over 8-byte words, matching the region-key hash convention.
void MixWord(uint64_t& h, uint64_t v) {
  constexpr uint64_t kFnvPrime = 1099511628211ull;
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xff;
    h *= kFnvPrime;
  }
}

}  // namespace

RegionCorrector::RegionCorrector(CorrectorOptions options)
    : options_(options) {}

double RegionCorrector::EffectiveLog(const Region& region,
                                     uint64_t now) const {
  if (options_.decay_per_feedback >= 1.0) return region.log_mult;
  const double age = static_cast<double>(now - region.last_update);
  return region.log_mult * std::pow(options_.decay_per_feedback, age);
}

double RegionCorrector::MultiplierForRegion(uint64_t region_key) const {
  util::MutexLock lock(mu_);
  const auto it = regions_.find(region_key);
  if (it == regions_.end()) return 1.0;
  return std::exp(EffectiveLog(it->second, observations_));
}

void RegionCorrector::Observe(uint64_t region_key, double raw_estimate,
                              double actual) {
  if (!std::isfinite(raw_estimate) || !std::isfinite(actual) || actual < 0.0) {
    return;
  }
  const double ratio = std::max(actual, options_.min_estimate) /
                       std::max(raw_estimate, options_.min_estimate);
  const double target = std::clamp(std::log(ratio), -options_.max_abs_log,
                                   options_.max_abs_log);
  util::MutexLock lock(mu_);
  ++observations_;
  auto it = regions_.find(region_key);
  if (it == regions_.end()) {
    if (regions_.size() >= options_.max_regions) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    it = regions_.emplace(region_key, Region{}).first;
    num_regions_.store(regions_.size(), std::memory_order_relaxed);
  }
  Region& region = it->second;
  const double current = EffectiveLog(region, observations_);
  region.log_mult = std::clamp(
      (1.0 - options_.ema_alpha) * current + options_.ema_alpha * target,
      -options_.max_abs_log, options_.max_abs_log);
  region.last_update = observations_;
  updates_.fetch_add(1, std::memory_order_relaxed);
}

void RegionCorrector::Reset(uint64_t generation) {
  util::MutexLock lock(mu_);
  regions_.clear();
  observations_ = 0;
  num_regions_.store(0, std::memory_order_relaxed);
  generation_.store(generation, std::memory_order_release);
}

uint64_t RegionCorrector::StateDigest() const {
  util::MutexLock lock(mu_);
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  entries.reserve(regions_.size());
  for (const auto& [key, region] : regions_) {
    // Quantize the effective log-multiplier onto a fixed grid so the digest
    // compares semantic state, not accumulation round-off.
    const double eff = EffectiveLog(region, observations_);
    entries.emplace_back(
        key, static_cast<uint64_t>(std::llround(eff * 1e12)) );
  }
  std::sort(entries.begin(), entries.end());
  uint64_t h = 1469598103934665603ull;
  MixWord(h, generation_.load(std::memory_order_relaxed));
  MixWord(h, observations_);
  MixWord(h, entries.size());
  for (const auto& [key, quantized] : entries) {
    MixWord(h, key);
    MixWord(h, quantized);
  }
  return h;
}

}  // namespace iam::adapt
