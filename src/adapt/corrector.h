#ifndef IAM_ADAPT_CORRECTOR_H_
#define IAM_ADAPT_CORRECTOR_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>

#include "estimator/corrector.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace iam::adapt {

struct CorrectorOptions {
  // Bounded memory: at most this many regions ever hold state. Feedback for
  // a new region past the cap is dropped (counted, deterministic — no LRU
  // eviction, so corrector state is a pure function of the feedback
  // sequence).
  size_t max_regions = 4096;
  // EMA weight of the newest log-ratio observation for a region.
  double ema_alpha = 0.4;
  // Per-feedback global decay toward 1x: a region's log-multiplier is
  // scaled by decay^(observations since its last update) when read, so
  // corrections a drifting workload stops refreshing wash out. 1.0 disables
  // decay.
  double decay_per_feedback = 0.999;
  // Clamp on |log multiplier|: ln(16) bounds any single region's correction
  // to [1/16, 16] no matter how extreme the feedback ratio is.
  double max_abs_log = 2.772588722239781;
  // Floor for the served estimate in the feedback ratio (a zero estimate
  // with non-zero truth would otherwise produce an infinite log-ratio).
  double min_estimate = 1e-12;
};

// QuickSel-style per-region multiplicative corrector (DESIGN.md §18). One
// EMA-smoothed, globally decayed log-multiplier per corrector region
// (core::ArDensityEstimator::CorrectorRegionKey). Observe() is called by the
// single adaptation thread in feedback arrival order, which makes the state
// a deterministic function of the feedback sequence — independent of shard
// count or serving concurrency. MultiplierForRegion() is called from shard
// workers under the estimator batch mutex; the internal lock ranks below it
// (kCorrector), and below the registry mutex so Reset() can run inside the
// generation install hook.
class RegionCorrector : public estimator::SelectivityCorrector {
 public:
  explicit RegionCorrector(CorrectorOptions options = {});

  // estimator::SelectivityCorrector. Returns 1.0 for unknown regions.
  double MultiplierForRegion(uint64_t region_key) const override;

  // One feedback observation: the served (raw, uncorrected) estimate and
  // the observed true selectivity for a query in `region_key`. Must be
  // called in feedback order from one thread at a time (the adaptation
  // thread) for deterministic state.
  void Observe(uint64_t region_key, double raw_estimate, double actual);

  // Swap-boundary reset (DESIGN.md §18): drops every region and tags the
  // state with the new model generation. Corrections learned against the
  // old generation's estimates do not survive onto the retrained model.
  void Reset(uint64_t generation);

  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  // Live region count / total observations applied / feedback dropped at
  // the region cap. Relaxed atomics: safe to read from the metrics path
  // without taking the corrector lock.
  size_t NumRegions() const {
    return num_regions_.load(std::memory_order_relaxed);
  }
  uint64_t Updates() const {
    return updates_.load(std::memory_order_relaxed);
  }
  uint64_t DroppedRegions() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  // Order-independent digest of the full corrector state (generation,
  // per-region keys and effective multipliers, counters). Two correctors fed
  // the same feedback sequence digest identically — the determinism tests'
  // comparison handle across separate server processes/shard counts.
  uint64_t StateDigest() const;

 private:
  struct Region {
    double log_mult = 0.0;
    uint64_t last_update = 0;  // global observation count at last write
  };

  double EffectiveLog(const Region& region, uint64_t now) const
      IAM_REQUIRES(mu_);

  const CorrectorOptions options_;
  mutable util::Mutex mu_{util::LockRank::kCorrector};
  std::unordered_map<uint64_t, Region> regions_ IAM_GUARDED_BY(mu_);
  uint64_t observations_ IAM_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> generation_{0};
  std::atomic<size_t> num_regions_{0};
  std::atomic<uint64_t> updates_{0};
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace iam::adapt

#endif  // IAM_ADAPT_CORRECTOR_H_
