#include "adapt/feedback.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace iam::adapt {

namespace {

// %.17g prints the shortest-but-exact decimal form: every finite double
// survives an encode/parse round trip bitwise, which is what the fuzz
// fixpoint oracle checks.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

}  // namespace

Result<FeedbackPayload> ParseFeedbackPayload(std::string_view payload) {
  // Embedded NULs would silently truncate the C-string scan below and let
  // trailing garbage ride along; a text payload never carries them.
  if (payload.find('\0') != std::string_view::npos) {
    return Status::InvalidArgument("feedback: embedded NUL byte");
  }
  const std::string text(payload);
  const char* p = text.c_str();
  const auto skip_ws = [&p] {
    while (IsSpace(*p)) ++p;
  };
  skip_ws();

  FeedbackPayload feedback;
  bool have_seq = false;
  if (std::strncmp(p, "seq=", 4) == 0) {
    p += 4;
    if (!std::isdigit(static_cast<unsigned char>(*p))) {
      return Status::InvalidArgument("feedback: seq wants an unsigned integer");
    }
    char* end = nullptr;
    errno = 0;
    const unsigned long long seq = std::strtoull(p, &end, 10);
    if (end == p || errno == ERANGE) {
      return Status::InvalidArgument("feedback: bad seq value");
    }
    if (seq == 0) {
      return Status::InvalidArgument("feedback: seq is 1-based");
    }
    feedback.seq = seq;
    have_seq = true;
    p = end;
    skip_ws();
  }

  if (std::strncmp(p, "actual=", 7) != 0) {
    return Status::InvalidArgument(
        "feedback: expected 'actual=<selectivity>'");
  }
  p += 7;
  char* end = nullptr;
  const double actual = std::strtod(p, &end);
  if (end == p) {
    return Status::InvalidArgument("feedback: bad actual value");
  }
  if (!std::isfinite(actual) || actual < 0.0 || actual > 1.0) {
    return Status::InvalidArgument(
        "feedback: actual must be a selectivity in [0, 1]");
  }
  feedback.actual = actual;
  p = end;
  skip_ws();

  if (have_seq) {
    if (*p != '\0') {
      return Status::InvalidArgument("feedback: trailing bytes after actual");
    }
    return feedback;
  }

  if (std::strncmp(p, "where", 5) != 0 ||
      (p[5] != '\0' && !IsSpace(p[5]))) {
    return Status::InvalidArgument(
        "feedback: inline form wants 'actual=<sel> where <predicates>'");
  }
  p += 5;
  skip_ws();
  std::string predicates(p);
  while (!predicates.empty() && IsSpace(predicates.back())) {
    predicates.pop_back();
  }
  if (predicates.empty()) {
    return Status::InvalidArgument("feedback: empty predicate text");
  }
  feedback.predicates = std::move(predicates);
  return feedback;
}

std::string EncodeFeedbackPayload(const FeedbackPayload& feedback) {
  if (feedback.seq > 0) {
    return "seq=" + std::to_string(feedback.seq) +
           " actual=" + FormatDouble(feedback.actual);
  }
  return "actual=" + FormatDouble(feedback.actual) + " where " +
         feedback.predicates;
}

Result<AppendPayload> ParseAppendPayload(std::string_view payload) {
  if (payload.find('\0') != std::string_view::npos) {
    return Status::InvalidArgument("append: embedded NUL byte");
  }
  constexpr std::string_view kHeader = "cols=";
  if (payload.substr(0, kHeader.size()) != kHeader) {
    return Status::InvalidArgument("append: expected 'cols=<n>' header");
  }
  size_t pos = kHeader.size();
  size_t line_end = payload.find('\n', pos);
  if (line_end == std::string_view::npos) {
    return Status::InvalidArgument("append: header line is not terminated");
  }
  const std::string header(payload.substr(pos, line_end - pos));
  char* end = nullptr;
  errno = 0;
  const long cols = std::strtol(header.c_str(), &end, 10);
  if (end == header.c_str() || *end != '\0' || errno == ERANGE || cols < 1 ||
      cols > 4096) {
    return Status::InvalidArgument("append: bad column count");
  }
  AppendPayload append;
  append.cols = static_cast<int>(cols);
  pos = line_end + 1;

  std::string field;
  while (pos < payload.size()) {
    line_end = payload.find('\n', pos);
    const std::string_view line = payload.substr(
        pos, line_end == std::string_view::npos ? std::string_view::npos
                                                : line_end - pos);
    pos = line_end == std::string_view::npos ? payload.size() : line_end + 1;
    if (line.empty()) {
      // A blank line is only legal as the trailing newline artifact.
      if (pos < payload.size()) {
        return Status::InvalidArgument("append: blank row");
      }
      break;
    }
    int fields = 0;
    size_t field_pos = 0;
    while (field_pos <= line.size()) {
      size_t comma = line.find(',', field_pos);
      if (comma == std::string_view::npos) comma = line.size();
      field.assign(line.substr(field_pos, comma - field_pos));
      field_pos = comma + 1;
      // Trim the field; strtod must consume it entirely.
      size_t b = 0, e = field.size();
      while (b < e && IsSpace(field[b])) ++b;
      while (e > b && IsSpace(field[e - 1])) --e;
      field = field.substr(b, e - b);
      char* field_end = nullptr;
      const double v = std::strtod(field.c_str(), &field_end);
      if (field.empty() || field_end != field.c_str() + field.size() ||
          !std::isfinite(v)) {
        return Status::InvalidArgument("append: bad value in row");
      }
      append.values.push_back(v);
      ++fields;
    }
    if (fields != append.cols) {
      return Status::InvalidArgument(
          "append: row has " + std::to_string(fields) + " values, header " +
          "declared " + std::to_string(append.cols));
    }
  }
  return append;
}

std::string EncodeAppendPayload(const AppendPayload& append) {
  std::string out = "cols=" + std::to_string(append.cols) + "\n";
  const size_t rows = append.rows();
  for (size_t r = 0; r < rows; ++r) {
    for (int c = 0; c < append.cols; ++c) {
      if (c > 0) out += ',';
      out += FormatDouble(
          append.values[r * static_cast<size_t>(append.cols) +
                        static_cast<size_t>(c)]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace iam::adapt
