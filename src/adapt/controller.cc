#include "adapt/controller.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/ar_density_estimator.h"
#include "estimator/estimator.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "query/parser.h"
#include "query/query.h"

namespace iam::adapt {

namespace {

// Registry-owned instrumentation of the adaptation loop, resolved once.
// Counters cover every way a record can leave the pipeline; the gauges are
// projections of controller atomics refreshed by RefreshGauges inside the
// server's single-snapshot scrape.
struct AdaptMetrics {
  obs::Counter& feedback_total;     // accepted into the intake queue
  obs::Counter& feedback_rejected;  // malformed payload (kError at intake)
  obs::Counter& feedback_dropped;   // queue full (kOverloaded at intake)
  obs::Counter& feedback_invalid;   // unresolvable at processing time
  obs::Counter& feedback_stale;     // feedback for a superseded generation
  obs::Counter& corrector_updates;
  obs::Counter& append_rows;
  obs::Counter& retrains;
  obs::Counter& retrain_failed;
  obs::Counter& retrain_skipped;  // trigger fired without enough data
  obs::Gauge& queue_depth;
  obs::Gauge& window_p90;
  obs::Gauge& corrector_regions;
  obs::Gauge& reservoir_rows;
  obs::Gauge& corrector_generation;

  static AdaptMetrics& Get() {
    static AdaptMetrics metrics = [] {
      obs::MetricRegistry& reg = obs::MetricRegistry::Global();
      return AdaptMetrics{
          reg.GetCounter("iam_adapt_feedback_total"),
          reg.GetCounter("iam_adapt_feedback_rejected_total"),
          reg.GetCounter("iam_adapt_feedback_dropped_total"),
          reg.GetCounter("iam_adapt_feedback_invalid_total"),
          reg.GetCounter("iam_adapt_feedback_stale_total"),
          reg.GetCounter("iam_adapt_corrector_updates_total"),
          reg.GetCounter("iam_adapt_append_rows_total"),
          reg.GetCounter("iam_adapt_retrains_total"),
          reg.GetCounter("iam_adapt_retrain_failed_total"),
          reg.GetCounter("iam_adapt_retrain_skipped_total"),
          reg.GetGauge("iam_adapt_queue_depth"),
          reg.GetGauge("iam_adapt_window_p90_qerror"),
          reg.GetGauge("iam_adapt_corrector_regions"),
          reg.GetGauge("iam_adapt_reservoir_rows"),
          reg.GetGauge("iam_adapt_corrector_generation"),
      };
    }();
    return metrics;
  }
};

}  // namespace

AdaptController::AdaptController(serve::ModelRegistry& registry,
                                 AdaptOptions options)
    : registry_(registry),
      options_(options),
      corrector_(std::make_shared<RegionCorrector>(options.corrector)),
      schema_(registry.Current()->schema) {
  // Generation coherence (DESIGN.md §18): the hook runs under the registry
  // mutex for every replica of each installed generation — and immediately
  // for the current one — so a generation is never visible to shard workers
  // with a corrector carrying another generation's corrections. Lock order
  // stays descending: registry mu_ (kRegistry) -> batch_mu_
  // (kEstimatorBatch) -> corrector mu_ (kCorrector).
  registry_.SetInstallHook([this](serve::LoadedModel& model) {
    if (corrector_->generation() != model.version) {
      corrector_->Reset(model.version);
    }
    model.estimator->set_corrector(corrector_, options_.enable_corrector);
  });
  last_generation_ = corrector_->generation();
  worker_ = std::thread([this] { WorkerLoop(); });
}

AdaptController::~AdaptController() {
  // Detach from the registry first: a swap arriving mid-destruction must
  // not call into a dying controller.
  registry_.SetInstallHook({});
  Stop();
}

serve::AdaptationHooks::Ack AdaptController::OnFeedback(
    std::string_view payload) {
  AdaptMetrics& metrics = AdaptMetrics::Get();
  Result<FeedbackPayload> parsed = ParseFeedbackPayload(payload);
  if (!parsed.ok()) {
    metrics.feedback_rejected.Add();
    return {false, false, parsed.status().ToString()};
  }
  util::MutexLock lock(queue_mu_);
  if (stop_ || queue_.size() >= options_.queue_capacity) {
    metrics.feedback_dropped.Add();
    return {false, true, ""};
  }
  Record record;
  record.feedback = std::move(*parsed);
  queue_.push_back(std::move(record));
  ++enqueued_;
  queue_depth_.store(static_cast<int>(queue_.size()),
                     std::memory_order_relaxed);
  metrics.feedback_total.Add();
  work_cv_.notify_one();
  return {true, false, "queued"};
}

serve::AdaptationHooks::Ack AdaptController::OnAppendData(
    std::string_view payload) {
  AdaptMetrics& metrics = AdaptMetrics::Get();
  Result<AppendPayload> parsed = ParseAppendPayload(payload);
  if (!parsed.ok()) {
    metrics.feedback_rejected.Add();
    return {false, false, parsed.status().ToString()};
  }
  if (parsed->cols != schema_.num_columns()) {
    metrics.feedback_rejected.Add();
    return {false, false,
            "append: " + std::to_string(parsed->cols) + " columns, schema " +
                "has " + std::to_string(schema_.num_columns())};
  }
  const size_t rows = parsed->rows();
  if (rows == 0) {
    metrics.feedback_rejected.Add();
    return {false, false, "append: no rows"};
  }
  util::MutexLock lock(queue_mu_);
  if (stop_ || queue_.size() >= options_.queue_capacity) {
    metrics.feedback_dropped.Add();
    return {false, true, ""};
  }
  Record record;
  record.is_append = true;
  record.append = std::move(*parsed);
  queue_.push_back(std::move(record));
  ++enqueued_;
  queue_depth_.store(static_cast<int>(queue_.size()),
                     std::memory_order_relaxed);
  work_cv_.notify_one();
  return {true, false, std::to_string(rows) + " rows queued"};
}

void AdaptController::RefreshGauges() {
  AdaptMetrics& metrics = AdaptMetrics::Get();
  metrics.queue_depth.Set(
      static_cast<double>(queue_depth_.load(std::memory_order_relaxed)));
  metrics.window_p90.Set(WindowP90());
  metrics.corrector_regions.Set(
      static_cast<double>(corrector_->NumRegions()));
  metrics.reservoir_rows.Set(
      static_cast<double>(reservoir_rows_.load(std::memory_order_relaxed)));
  metrics.corrector_generation.Set(
      static_cast<double>(corrector_->generation()));
}

void AdaptController::Flush() {
  util::MutexLock lock(queue_mu_);
  while (processed_ < enqueued_) lock.Wait(flush_cv_);
}

void AdaptController::Stop() {
  {
    util::MutexLock lock(queue_mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

double AdaptController::WindowP90() const {
  return std::bit_cast<double>(
      window_p90_bits_.load(std::memory_order_relaxed));
}

void AdaptController::WorkerLoop() {
  for (;;) {
    Record record;
    {
      util::MutexLock lock(queue_mu_);
      while (queue_.empty() && !stop_) lock.Wait(work_cv_);
      if (queue_.empty()) return;  // stopped and fully drained
      record = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_.store(static_cast<int>(queue_.size()),
                         std::memory_order_relaxed);
    }
    // Generation boundary: an out-of-band swap (kSwap, SIGHUP) reset the
    // corrector; the drift window measured the dead generation, so it
    // resets with it.
    const uint64_t generation = corrector_->generation();
    if (generation != last_generation_) {
      last_generation_ = generation;
      window_qerrors_.clear();
      window_p90_bits_.store(0, std::memory_order_relaxed);
      feedback_since_retrain_ = 0;
    }
    if (record.is_append) {
      ProcessAppend(record.append);
    } else {
      ProcessFeedback(record.feedback);
    }
    {
      util::MutexLock lock(queue_mu_);
      ++processed_;
    }
    flush_cv_.notify_all();
  }
}

void AdaptController::ProcessFeedback(const FeedbackPayload& feedback) {
  AdaptMetrics& metrics = AdaptMetrics::Get();
  double served = 0.0;  // the estimate the client saw (corrected)
  double raw = 0.0;     // the uncorrected estimate the corrector learns from
  uint64_t region_key = 0;
  if (feedback.seq > 0) {
    const std::optional<obs::QueryRecord> rec =
        obs::QueryLog::Global().Find(feedback.seq);
    if (!rec.has_value()) {
      metrics.feedback_invalid.Add();  // never appended or lapped
      return;
    }
    if (rec->model_version != corrector_->generation()) {
      metrics.feedback_stale.Add();
      return;
    }
    served = rec->selectivity;
    raw = rec->corrector_mult > 0.0 ? served / rec->corrector_mult : served;
    region_key = rec->region_key;
  } else {
    Result<query::Query> parsed =
        query::ParsePredicates(schema_, feedback.predicates);
    if (!parsed.ok()) {
      metrics.feedback_invalid.Add();
      return;
    }
    // Inline feedback carries no serving record; one diagnosed estimate on
    // replica 0 recovers the region key and the raw/corrected pair.
    const std::shared_ptr<serve::LoadedModel> model = registry_.Current();
    const query::Query q = std::move(*parsed);
    std::vector<estimator::QueryDiagnostics> diags(1);
    const std::vector<double> estimates =
        model->estimator->EstimateBatchDiagnosed({&q, 1}, diags);
    if (model->version != corrector_->generation()) {
      metrics.feedback_stale.Add();  // swap landed between lookup and now
      return;
    }
    served = estimates[0];
    raw = diags[0].corrector_multiplier > 0.0
              ? served / diags[0].corrector_multiplier
              : served;
    region_key = diags[0].region_key;
  }
  if (options_.enable_corrector) {
    corrector_->Observe(region_key, raw, feedback.actual);
    metrics.corrector_updates.Add();
  }
  feedback_processed_.fetch_add(1, std::memory_order_relaxed);
  NoteQError(query::QError(feedback.actual, served,
                           options_.qerror_floor_rows));
  ++feedback_since_retrain_;
  MaybeRetrain();
}

void AdaptController::ProcessAppend(const AppendPayload& append) {
  const int cols = schema_.num_columns();
  if (append.cols != cols || options_.reservoir_capacity == 0) return;
  if (reservoir_.empty()) {
    reservoir_.assign(options_.reservoir_capacity * static_cast<size_t>(cols),
                      0.0);
  }
  const size_t rows = append.rows();
  for (size_t r = 0; r < rows; ++r) {
    double* dst =
        &reservoir_[reservoir_next_row_ * static_cast<size_t>(cols)];
    const double* src = &append.values[r * static_cast<size_t>(cols)];
    std::copy(src, src + cols, dst);
    reservoir_next_row_ =
        (reservoir_next_row_ + 1) % options_.reservoir_capacity;
    reservoir_filled_ =
        std::min(reservoir_filled_ + 1, options_.reservoir_capacity);
  }
  reservoir_rows_.store(reservoir_filled_, std::memory_order_relaxed);
  AdaptMetrics::Get().append_rows.Add(rows);
}

void AdaptController::NoteQError(double qerror) {
  window_qerrors_.push_back(qerror);
  while (static_cast<int>(window_qerrors_.size()) > options_.window) {
    window_qerrors_.pop_front();
  }
  double p90 = 0.0;
  if (static_cast<int>(window_qerrors_.size()) >= options_.min_window_fill) {
    std::vector<double> sorted(window_qerrors_.begin(),
                               window_qerrors_.end());
    const size_t idx =
        std::min(sorted.size() - 1, (sorted.size() * 9) / 10);
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<ptrdiff_t>(idx),
                     sorted.end());
    p90 = sorted[idx];
  }
  window_p90_bits_.store(std::bit_cast<uint64_t>(p90),
                         std::memory_order_relaxed);
}

void AdaptController::MaybeRetrain() {
  if (options_.trigger_p90_qerror <= 0.0) return;
  if (static_cast<int>(window_qerrors_.size()) < options_.min_window_fill) {
    return;
  }
  if (WindowP90() <= options_.trigger_p90_qerror) return;
  if (feedback_since_retrain_ < options_.min_feedback_between_retrains) {
    return;
  }
  AdaptMetrics& metrics = AdaptMetrics::Get();
  if (reservoir_filled_ < options_.min_retrain_rows) {
    // Query drift without fresh data: the corrector is the only lever.
    metrics.retrain_skipped.Add();
    feedback_since_retrain_ = 0;  // back off; don't re-count every feedback
    return;
  }
  // Retrain on this (the adaptation) thread — serving keeps answering from
  // the installed generation throughout. The new model re-fits the GMM
  // reducers on the reservoir rows in its constructor and fine-tunes the AR
  // weights for retrain_epochs epochs of joint SGD.
  const data::Table table = BuildReservoirTable();
  core::ArEstimatorOptions opts = registry_.Current()->estimator->options();
  opts.epochs = options_.retrain_epochs;
  opts.enable_corrector = false;  // the install hook decides, per replica
  auto model = std::make_unique<core::ArDensityEstimator>(table, opts);
  double loss = 0.0;
  for (int epoch = 0; epoch < options_.retrain_epochs; ++epoch) {
    loss = model->TrainEpoch();
  }
  if (!std::isfinite(loss)) {
    // A diverged fit never reaches the registry: the old generation keeps
    // serving, and the back-off lets feedback accumulate before a retry.
    metrics.retrain_failed.Add();
    retrain_failures_.fetch_add(1, std::memory_order_relaxed);
    feedback_since_retrain_ = 0;
    return;
  }
  registry_.Swap(std::move(model), "adapt-retrain");
  metrics.retrains.Add();
  retrains_done_.fetch_add(1, std::memory_order_relaxed);
  feedback_since_retrain_ = 0;
  // The install hook already reset the corrector to the new generation;
  // reset the thread-local window state in step with it.
  last_generation_ = corrector_->generation();
  window_qerrors_.clear();
  window_p90_bits_.store(0, std::memory_order_relaxed);
}

data::Table AdaptController::BuildReservoirTable() const {
  const int cols = schema_.num_columns();
  const size_t rows = reservoir_filled_;
  const bool wrapped = reservoir_filled_ == options_.reservoir_capacity;
  data::Table table("adapt_reservoir");
  for (int c = 0; c < cols; ++c) {
    data::Column column;
    column.name = schema_.column(c).name;
    column.type = schema_.column(c).type;
    column.values.reserve(rows);
    for (size_t i = 0; i < rows; ++i) {
      // Oldest-first once the ring wrapped; insertion order before.
      const size_t r =
          wrapped ? (reservoir_next_row_ + i) % options_.reservoir_capacity
                  : i;
      column.values.push_back(
          reservoir_[r * static_cast<size_t>(cols) + static_cast<size_t>(c)]);
    }
    table.AddColumn(std::move(column));
  }
  return table;
}

}  // namespace iam::adapt
