#include "estimator/estimator.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/macros.h"
#include "util/math_util.h"
#include "util/stopwatch.h"

namespace iam::estimator {

BatchMetrics& BatchMetrics::Get() {
  static BatchMetrics metrics = [] {
    obs::MetricRegistry& reg = obs::MetricRegistry::Global();
    return BatchMetrics{
        reg.GetCounter("iam_estimator_queries_total"),
        reg.GetCounter("iam_estimator_batches_total"),
        reg.GetHistogram("iam_estimator_query_seconds", obs::LatencyBounds()),
        reg.GetHistogram("iam_estimator_batch_seconds", obs::LatencyBounds()),
    };
  }();
  return metrics;
}

std::vector<double> Estimator::EstimateBatch(
    std::span<const query::Query> qs) {
  std::vector<double> out;
  out.reserve(qs.size());
  for (const query::Query& q : qs) out.push_back(Estimate(q));
  return out;
}

std::vector<double> Estimator::EstimateBatchDiagnosed(
    std::span<const query::Query> qs, std::span<QueryDiagnostics> diags) {
  IAM_CHECK(diags.empty() || diags.size() == qs.size());
  // Non-sampling estimators have nothing to report beyond the defaults.
  for (QueryDiagnostics& d : diags) d = QueryDiagnostics{};
  return EstimateBatch(qs);
}

void Estimator::set_num_threads(int num_threads) {
  util::MutexLock lock(batch_mu_);
  num_threads = std::max(1, num_threads);
  if (num_threads == num_threads_) return;
  num_threads_ = num_threads;
  pool_.reset();  // rebuilt with the new size on next use
}

int Estimator::num_threads() const {
  util::MutexLock lock(batch_mu_);
  return num_threads_;
}

util::ThreadPool& Estimator::pool() {
  if (pool_ == nullptr) pool_ = std::make_unique<util::ThreadPool>(num_threads_);
  return *pool_;
}

std::vector<double> Estimator::ParallelEstimateBatch(
    std::span<const query::Query> qs,
    const std::function<double(const query::Query&)>& estimate_one) {
  obs::TraceSpan span("estimator.batch");
  BatchMetrics& metrics = BatchMetrics::Get();
  Stopwatch batch_watch;
  util::MutexLock lock(batch_mu_);
  std::vector<double> out(qs.size());
  pool().ParallelFor(qs.size(), [&](size_t i, int) {
    Stopwatch query_watch;
    out[i] = estimate_one(qs[i]);
    metrics.query_seconds.Record(query_watch.ElapsedSeconds());
  });
  metrics.queries.Add(qs.size());
  metrics.batches.Add();
  metrics.batch_seconds.Record(batch_watch.ElapsedSeconds());
  return out;
}

double EstimateDisjunction(Estimator& est, const query::Query& a,
                           const query::Query& b) {
  // Build a AND b: concatenate predicates, intersecting same-column pairs.
  query::Query both = a;
  for (const query::Predicate& pb : b.predicates) {
    bool merged = false;
    for (query::Predicate& pa : both.predicates) {
      if (pa.column == pb.column) {
        pa.lo = std::max(pa.lo, pb.lo);
        pa.hi = std::min(pa.hi, pb.hi);
        merged = true;
        break;
      }
    }
    if (!merged) both.predicates.push_back(pb);
  }
  const double sa = est.Estimate(a);
  const double sb = est.Estimate(b);
  const double sab = est.Estimate(both);
  return Clamp(sa + sb - sab, 0.0, 1.0);
}

}  // namespace iam::estimator
