#include "estimator/estimator.h"

#include <algorithm>

#include "util/math_util.h"

namespace iam::estimator {

std::vector<double> Estimator::EstimateBatch(
    std::span<const query::Query> qs) {
  std::vector<double> out;
  out.reserve(qs.size());
  for (const query::Query& q : qs) out.push_back(Estimate(q));
  return out;
}

double EstimateDisjunction(Estimator& est, const query::Query& a,
                           const query::Query& b) {
  // Build a AND b: concatenate predicates, intersecting same-column pairs.
  query::Query both = a;
  for (const query::Predicate& pb : b.predicates) {
    bool merged = false;
    for (query::Predicate& pa : both.predicates) {
      if (pa.column == pb.column) {
        pa.lo = std::max(pa.lo, pb.lo);
        pa.hi = std::min(pa.hi, pb.hi);
        merged = true;
        break;
      }
    }
    if (!merged) both.predicates.push_back(pb);
  }
  const double sa = est.Estimate(a);
  const double sb = est.Estimate(b);
  const double sab = est.Estimate(both);
  return Clamp(sa + sb - sab, 0.0, 1.0);
}

}  // namespace iam::estimator
