#ifndef IAM_ESTIMATOR_SAMPLING_H_
#define IAM_ESTIMATOR_SAMPLING_H_

#include <memory>

#include "data/table.h"
#include "estimator/estimator.h"
#include "util/random.h"

namespace iam::estimator {

// Uniform row-sample estimator: keeps `fraction` of the relation and answers
// queries by scanning the sample. The paper sizes the sample to match IAM's
// space budget per dataset (0.02%-0.63%).
class SamplingEstimator : public Estimator {
 public:
  SamplingEstimator(const data::Table& table, double fraction, uint64_t seed);

  std::string name() const override { return "sampling"; }
  double Estimate(const query::Query& q) override { return EstimateOne(q); }
  // Sample scans are independent per query: fan the batch out over the pool.
  std::vector<double> EstimateBatch(
      std::span<const query::Query> qs) override;
  size_t SizeBytes() const override;

  size_t sample_rows() const { return num_sampled_; }

 private:
  // Pure scan over the immutable sample; safe to call concurrently.
  double EstimateOne(const query::Query& q) const;

  // Row-major sample matrix.
  std::vector<double> sample_;
  size_t num_sampled_ = 0;
  int num_columns_ = 0;
};

}  // namespace iam::estimator

#endif  // IAM_ESTIMATOR_SAMPLING_H_
