#ifndef IAM_ESTIMATOR_MSCN_H_
#define IAM_ESTIMATOR_MSCN_H_

#include <memory>
#include <vector>

#include "data/table.h"
#include "estimator/estimator.h"
#include "nn/adam.h"
#include "nn/layers.h"
#include "util/random.h"

namespace iam::estimator {

// Query-driven supervised estimator in the spirit of MSCN (Kipf et al.):
// queries are featurized as per-column (active, lo, hi) triples normalized to
// the column range, plus the match fraction over a materialized row sample
// (MSCN's sample bitmap, pooled), and a two-layer MLP regresses log2 of the
// selectivity. Training pairs come from a workload with executed ground
// truth, which is exactly how the paper trains its query-driven baselines
// (Section 6.1.3: 10K training queries drawn like the test queries).
class MscnEstimator : public Estimator {
 public:
  struct Options {
    int hidden_units = 256;
    int epochs = 60;
    int batch_size = 128;
    double learning_rate = 1e-3;
    size_t sample_rows = 512;  // bitmap sample size
    uint64_t seed = 17;
  };

  MscnEstimator(const data::Table& table, const Options& options);

  // Supervised training on (query, true selectivity) pairs.
  void Train(std::span<const query::Query> queries,
             std::span<const double> selectivities);

  std::string name() const override { return "mscn"; }
  double Estimate(const query::Query& q) override;
  std::vector<double> EstimateBatch(std::span<const query::Query> qs) override;
  size_t SizeBytes() const override;

 private:
  std::vector<float> Featurize(const query::Query& q) const;

  int num_columns_;
  size_t table_rows_;
  std::vector<std::pair<double, double>> ranges_;
  // Row-major bitmap sample.
  std::vector<double> sample_;
  size_t num_sampled_;

  int feature_dim_;
  std::unique_ptr<nn::MaskedLinear> l1_;
  std::unique_ptr<nn::MaskedLinear> l2_;
  std::unique_ptr<nn::MaskedLinear> out_;
  nn::Adam adam_;
  // Transpose scratch for the layer forwards. Train and EstimateBatch both
  // serialize on the base class's batch_mu_, so concurrent batch calls on
  // one MSCN are safe (they run back to back).
  nn::Matrix wt_scratch_ IAM_GUARDED_BY(batch_mu_);
  Rng rng_;
  double log_floor_;
  int epochs_;
  size_t batch_size_;
};

}  // namespace iam::estimator

#endif  // IAM_ESTIMATOR_MSCN_H_
