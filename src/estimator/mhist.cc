#include "estimator/mhist.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/random.h"

namespace iam::estimator {
namespace {

// Working bucket during construction: owns the row indices it covers.
struct BuildBucket {
  std::vector<size_t> rows;
  // Cached best split.
  double score = -1.0;
  int split_dim = -1;
  double split_value = 0.0;
};

}  // namespace

MhistEstimator::MhistEstimator(const data::Table& table,
                               const Options& options) {
  num_columns_ = table.num_columns();
  const size_t n = table.num_rows();
  IAM_CHECK(n > 0);

  // Build sample.
  Rng rng(options.seed);
  std::vector<size_t> rows;
  if (n > options.max_build_rows) {
    rows = rng.SampleWithoutReplacement(n, options.max_build_rows);
  } else {
    rows.resize(n);
    for (size_t i = 0; i < n; ++i) rows[i] = i;
  }

  // MaxDiff score of the best split of a bucket: the largest
  // frequency-weighted gap between adjacent sorted values in any dimension.
  std::vector<double> scratch;
  auto find_best_split = [&](BuildBucket& b) {
    b.score = -1.0;
    b.split_dim = -1;
    if (b.rows.size() < 2) return;
    // Score splits on a stride sample to bound construction cost; the actual
    // partition below remains exact.
    const size_t kMaxScore = 4096;
    const size_t stride = std::max<size_t>(1, b.rows.size() / kMaxScore);
    for (int d = 0; d < num_columns_; ++d) {
      scratch.clear();
      scratch.reserve(b.rows.size() / stride + 1);
      for (size_t i = 0; i < b.rows.size(); i += stride) {
        scratch.push_back(table.value(b.rows[i], d));
      }
      std::sort(scratch.begin(), scratch.end());
      if (scratch.size() < 2) continue;
      const double span = scratch.back() - scratch.front();
      if (span <= 0.0) continue;
      for (size_t i = 0; i + 1 < scratch.size(); ++i) {
        const double gap = scratch[i + 1] - scratch[i];
        if (gap <= 0.0) continue;
        // Normalize the gap by the bucket span so dimensions with different
        // scales compete fairly; weight by population.
        const double score =
            gap / span * static_cast<double>(b.rows.size());
        if (score > b.score) {
          b.score = score;
          b.split_dim = d;
          // Split strictly between the two adjacent values.
          b.split_value = scratch[i];
        }
      }
    }
  };

  std::vector<BuildBucket> building;
  building.emplace_back();
  building[0].rows = std::move(rows);
  find_best_split(building[0]);

  while (static_cast<int>(building.size()) < options.num_buckets) {
    // Pick the bucket with the best split score.
    int best = -1;
    for (int i = 0; i < static_cast<int>(building.size()); ++i) {
      if (building[i].split_dim >= 0 &&
          (best < 0 || building[i].score > building[best].score)) {
        best = i;
      }
    }
    if (best < 0) break;  // nothing splittable

    BuildBucket& src = building[best];
    BuildBucket left, right;
    for (size_t r : src.rows) {
      if (table.value(r, src.split_dim) <= src.split_value) {
        left.rows.push_back(r);
      } else {
        right.rows.push_back(r);
      }
    }
    IAM_CHECK(!left.rows.empty() && !right.rows.empty());
    find_best_split(left);
    find_best_split(right);
    building[best] = std::move(left);
    building.push_back(std::move(right));
  }

  // Finalize buckets.
  const double total = [&] {
    size_t t = 0;
    for (const BuildBucket& b : building) t += b.rows.size();
    return static_cast<double>(t);
  }();
  buckets_.reserve(building.size());
  std::vector<double> values;
  for (const BuildBucket& b : building) {
    Bucket out;
    out.lo.resize(num_columns_);
    out.hi.resize(num_columns_);
    out.distinct.resize(num_columns_);
    out.fraction = static_cast<double>(b.rows.size()) / total;
    for (int d = 0; d < num_columns_; ++d) {
      values.clear();
      values.reserve(b.rows.size());
      for (size_t r : b.rows) values.push_back(table.value(r, d));
      std::sort(values.begin(), values.end());
      out.lo[d] = values.front();
      out.hi[d] = values.back();
      out.distinct[d] = static_cast<double>(
          std::unique(values.begin(), values.end()) - values.begin());
    }
    buckets_.push_back(std::move(out));
  }
}

double MhistEstimator::EstimateOne(const query::Query& q) const {
  double sel = 0.0;
  for (const Bucket& b : buckets_) {
    double frac = b.fraction;
    for (const query::Predicate& p : q.predicates) {
      const int d = p.column;
      const double lo = std::max(p.lo, b.lo[d]);
      const double hi = std::min(p.hi, b.hi[d]);
      if (hi < lo) {
        frac = 0.0;
        break;
      }
      const double span = b.hi[d] - b.lo[d];
      double overlap;
      if (hi == lo) {
        // Point intersection: uniform-spread over the distinct values.
        overlap = 1.0 / std::max(1.0, b.distinct[d]);
      } else if (span > 0.0) {
        overlap = std::min(1.0, (hi - lo) / span);
      } else {
        overlap = 1.0;
      }
      frac *= overlap;
      if (frac == 0.0) break;
    }
    sel += frac;
  }
  return std::min(sel, 1.0);
}

std::vector<double> MhistEstimator::EstimateBatch(
    std::span<const query::Query> qs) {
  return ParallelEstimateBatch(
      qs, [this](const query::Query& q) { return EstimateOne(q); });
}

size_t MhistEstimator::SizeBytes() const {
  // Per bucket: 3 doubles per dim + fraction.
  return buckets_.size() *
         (static_cast<size_t>(num_columns_) * 3 + 1) * sizeof(double);
}

}  // namespace iam::estimator
