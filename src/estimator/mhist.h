#ifndef IAM_ESTIMATOR_MHIST_H_
#define IAM_ESTIMATOR_MHIST_H_

#include <vector>

#include "data/table.h"
#include "estimator/estimator.h"

namespace iam::estimator {

// MHIST (Poosala & Ioannidis): multi-dimensional histogram built by greedy
// MaxDiff partitioning — repeatedly split the bucket whose critical attribute
// has the largest frequency-weighted gap between adjacent values, at that
// gap. Estimation assumes uniform spread inside each bucket, which is the
// weakness the paper's Section 6.2 highlights on skewed data.
class MhistEstimator : public Estimator {
 public:
  struct Options {
    int num_buckets = 1000;
    // Build on at most this many rows (uniformly sampled) to bound the
    // partitioning cost.
    size_t max_build_rows = 200000;
    uint64_t seed = 7;
  };

  MhistEstimator(const data::Table& table, const Options& options);

  std::string name() const override { return "mhist"; }
  double Estimate(const query::Query& q) override { return EstimateOne(q); }
  // Bucket scans are independent per query: fan the batch out over the pool.
  std::vector<double> EstimateBatch(
      std::span<const query::Query> qs) override;
  size_t SizeBytes() const override;

  int num_buckets() const { return static_cast<int>(buckets_.size()); }

 private:
  // Pure scan over the immutable buckets; safe to call concurrently.
  double EstimateOne(const query::Query& q) const;

  struct Bucket {
    std::vector<double> lo;        // per-dim lower bound (inclusive)
    std::vector<double> hi;        // per-dim upper bound (inclusive)
    std::vector<double> distinct;  // per-dim distinct-count estimate
    double fraction = 0.0;         // share of all rows
  };

  std::vector<Bucket> buckets_;
  int num_columns_ = 0;
};

}  // namespace iam::estimator

#endif  // IAM_ESTIMATOR_MHIST_H_
