#include "estimator/postgres1d.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace iam::estimator {

Postgres1DEstimator::Postgres1DEstimator(const data::Table& table,
                                         const Options& options) {
  const size_t n = table.num_rows();
  IAM_CHECK(n > 0);
  stats_.resize(table.num_columns());

  for (int c = 0; c < table.num_columns(); ++c) {
    ColumnStats& st = stats_[c];
    std::vector<double> values = table.column(c).values;
    std::sort(values.begin(), values.end());

    // Frequency of each distinct value (values are sorted).
    std::vector<std::pair<double, size_t>> freq;  // value, count
    for (size_t i = 0; i < values.size();) {
      size_t j = i;
      while (j < values.size() && values[j] == values[i]) ++j;
      freq.emplace_back(values[i], j - i);
      i = j;
    }

    // MCVs: the most frequent values, but only those occurring more than
    // once (Postgres keeps genuinely common values).
    std::vector<std::pair<double, size_t>> by_count = freq;
    std::sort(by_count.begin(), by_count.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    const int mcvs = std::min<int>(options.mcv_entries,
                                   static_cast<int>(by_count.size()));
    std::vector<double> mcv_set;
    for (int i = 0; i < mcvs; ++i) {
      if (by_count[i].second <= 1) break;
      st.mcv_values.push_back(by_count[i].first);
      st.mcv_freqs.push_back(static_cast<double>(by_count[i].second) /
                             static_cast<double>(n));
      st.mcv_total_freq += st.mcv_freqs.back();
    }
    // Sort MCVs by value for binary search.
    std::vector<size_t> order(st.mcv_values.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return st.mcv_values[a] < st.mcv_values[b];
    });
    std::vector<double> v2(order.size()), f2(order.size());
    for (size_t i = 0; i < order.size(); ++i) {
      v2[i] = st.mcv_values[order[i]];
      f2[i] = st.mcv_freqs[order[i]];
    }
    st.mcv_values = std::move(v2);
    st.mcv_freqs = std::move(f2);

    // Histogram over non-MCV values.
    std::vector<double> rest;
    rest.reserve(values.size());
    for (double v : values) {
      if (!std::binary_search(st.mcv_values.begin(), st.mcv_values.end(), v)) {
        rest.push_back(v);
      }
    }
    st.non_mcv_freq = static_cast<double>(rest.size()) / static_cast<double>(n);
    if (!rest.empty()) {
      const int bins =
          std::min<int>(options.histogram_bins,
                        std::max<int>(1, static_cast<int>(rest.size())));
      st.histogram_bounds.reserve(bins + 1);
      for (int b = 0; b <= bins; ++b) {
        const size_t idx = static_cast<size_t>(
            static_cast<double>(b) / bins *
            static_cast<double>(rest.size() - 1));
        st.histogram_bounds.push_back(rest[idx]);
      }
    }
  }
}

double Postgres1DEstimator::ColumnSelectivity(
    const ColumnStats& st, const query::Predicate& p) const {
  double sel = 0.0;

  // MCV contribution: exact.
  for (size_t i = 0; i < st.mcv_values.size(); ++i) {
    if (p.Matches(st.mcv_values[i])) sel += st.mcv_freqs[i];
  }

  // Histogram contribution: linear interpolation within the bucket
  // (Postgres's convert_to_scalar path), uniform mass per bucket.
  if (st.histogram_bounds.size() >= 2 && st.non_mcv_freq > 0.0) {
    const auto& bounds = st.histogram_bounds;
    const size_t buckets = bounds.size() - 1;
    const double per_bucket = st.non_mcv_freq / static_cast<double>(buckets);
    for (size_t b = 0; b < buckets; ++b) {
      const double bl = bounds[b];
      const double bh = bounds[b + 1];
      const double lo = std::max(p.lo, bl);
      const double hi = std::min(p.hi, bh);
      if (hi < lo) continue;
      double frac = 1.0;
      if (bh > bl) frac = (hi - lo) / (bh - bl);
      sel += per_bucket * std::min(frac, 1.0);
    }
  }
  return std::min(sel, 1.0);
}

double Postgres1DEstimator::EstimateOne(const query::Query& q) const {
  double sel = 1.0;
  for (const query::Predicate& p : q.predicates) {
    IAM_CHECK(p.column >= 0 &&
              p.column < static_cast<int>(stats_.size()));
    sel *= ColumnSelectivity(stats_[p.column], p);
  }
  return sel;
}

std::vector<double> Postgres1DEstimator::EstimateBatch(
    std::span<const query::Query> qs) {
  return ParallelEstimateBatch(
      qs, [this](const query::Query& q) { return EstimateOne(q); });
}

size_t Postgres1DEstimator::SizeBytes() const {
  size_t bytes = 0;
  for (const ColumnStats& st : stats_) {
    bytes += (st.mcv_values.size() + st.mcv_freqs.size() +
              st.histogram_bounds.size() + 2) *
             sizeof(double);
  }
  return bytes;
}

}  // namespace iam::estimator
