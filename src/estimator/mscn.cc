#include "estimator/mscn.h"

#include <algorithm>
#include <cmath>

#include "util/math_util.h"

namespace iam::estimator {

MscnEstimator::MscnEstimator(const data::Table& table, const Options& options)
    : num_columns_(table.num_columns()),
      table_rows_(table.num_rows()),
      rng_(options.seed) {
  IAM_CHECK(table.num_rows() > 0);
  ranges_.resize(num_columns_);
  for (int c = 0; c < num_columns_; ++c) ranges_[c] = table.ColumnRange(c);

  const size_t m = std::min(options.sample_rows, table.num_rows());
  const auto rows = rng_.SampleWithoutReplacement(table.num_rows(), m);
  num_sampled_ = rows.size();
  sample_.reserve(num_sampled_ * num_columns_);
  for (size_t r : rows) {
    for (int c = 0; c < num_columns_; ++c) sample_.push_back(table.value(r, c));
  }

  feature_dim_ = 3 * num_columns_ + 1;  // (active, lo, hi) per col + bitmap
  l1_ = std::make_unique<nn::MaskedLinear>(feature_dim_, options.hidden_units,
                                           rng_);
  l2_ = std::make_unique<nn::MaskedLinear>(options.hidden_units,
                                           options.hidden_units, rng_);
  out_ = std::make_unique<nn::MaskedLinear>(options.hidden_units, 1, rng_);
  nn::Adam::Options adam_opts;
  adam_opts.learning_rate = options.learning_rate;
  adam_ = nn::Adam(adam_opts);
  adam_.Register(&l1_->weight());
  adam_.Register(&l1_->bias());
  adam_.Register(&l2_->weight());
  adam_.Register(&l2_->bias());
  adam_.Register(&out_->weight());
  adam_.Register(&out_->bias());
  log_floor_ = std::log2(1.0 / static_cast<double>(table_rows_));
  epochs_ = options.epochs;
  batch_size_ = options.batch_size;
}

std::vector<float> MscnEstimator::Featurize(const query::Query& q) const {
  std::vector<float> f(feature_dim_, 0.0f);
  // Default: column inactive, full range.
  for (int c = 0; c < num_columns_; ++c) {
    f[3 * c + 1] = 0.0f;
    f[3 * c + 2] = 1.0f;
  }
  for (const query::Predicate& p : q.predicates) {
    const auto [lo, hi] = ranges_[p.column];
    const double span = hi > lo ? hi - lo : 1.0;
    const double nlo = Clamp((p.lo - lo) / span, 0.0, 1.0);
    const double nhi = Clamp((p.hi - lo) / span, 0.0, 1.0);
    f[3 * p.column] = 1.0f;
    f[3 * p.column + 1] = std::max(f[3 * p.column + 1], (float)nlo);
    f[3 * p.column + 2] = std::min(f[3 * p.column + 2], (float)nhi);
  }
  // Pooled sample bitmap: fraction of sampled rows matching the query.
  size_t hits = 0;
  for (size_t r = 0; r < num_sampled_; ++r) {
    const double* row = sample_.data() + r * num_columns_;
    bool ok = true;
    for (const query::Predicate& p : q.predicates) {
      if (!p.Matches(row[p.column])) {
        ok = false;
        break;
      }
    }
    hits += ok ? 1 : 0;
  }
  f[feature_dim_ - 1] =
      static_cast<float>(hits) / static_cast<float>(num_sampled_);
  return f;
}

void MscnEstimator::Train(std::span<const query::Query> queries,
                          std::span<const double> selectivities) {
  IAM_CHECK(queries.size() == selectivities.size());
  IAM_CHECK(!queries.empty());
  // Training is exclusive by contract; taken for the wt_scratch_ annotation.
  util::MutexLock lock(batch_mu_);

  // Precompute features and log targets.
  nn::Matrix features(static_cast<int>(queries.size()), feature_dim_);
  std::vector<float> targets(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const std::vector<float> f = Featurize(queries[i]);
    std::copy(f.begin(), f.end(), features.row(static_cast<int>(i)));
    const double sel =
        std::max(selectivities[i], 1.0 / static_cast<double>(table_rows_));
    targets[i] = static_cast<float>(std::log2(sel));
  }

  std::vector<size_t> order(queries.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  nn::Matrix x, z1, a1, z2, a2, pred, dpred(0, 0), da2, dz2, da1, dz1, dx;
  for (int epoch = 0; epoch < epochs_; ++epoch) {
    rng_.Shuffle(order);
    for (size_t begin = 0; begin < order.size(); begin += batch_size_) {
      const size_t end = std::min(order.size(), begin + batch_size_);
      const int b = static_cast<int>(end - begin);
      x.Resize(b, feature_dim_);
      for (int r = 0; r < b; ++r) {
        const float* src = features.row(static_cast<int>(order[begin + r]));
        std::copy(src, src + feature_dim_, x.row(r));
      }
      adam_.ZeroGrad();
      l1_->Forward(x, z1, wt_scratch_);
      nn::ReluForward(z1, a1);
      l2_->Forward(a1, z2, wt_scratch_);
      nn::ReluForward(z2, a2);
      out_->Forward(a2, pred, wt_scratch_);
      dpred.Resize(b, 1);
      for (int r = 0; r < b; ++r) {
        const float diff =
            pred.at(r, 0) - targets[order[begin + r]];
        dpred.at(r, 0) = 2.0f * diff / static_cast<float>(b);
      }
      out_->Backward(a2, dpred, da2);
      nn::ReluBackward(z2, da2, dz2);
      l2_->Backward(a1, dz2, da1);
      nn::ReluBackward(z1, da1, dz1);
      l1_->Backward(x, dz1, dx);
      adam_.Step();
    }
  }
}

double MscnEstimator::Estimate(const query::Query& q) {
  return EstimateBatch({&q, 1})[0];
}

std::vector<double> MscnEstimator::EstimateBatch(
    std::span<const query::Query> qs) {
  util::MutexLock lock(batch_mu_);
  nn::Matrix x(static_cast<int>(qs.size()), feature_dim_);
  for (size_t i = 0; i < qs.size(); ++i) {
    const std::vector<float> f = Featurize(qs[i]);
    std::copy(f.begin(), f.end(), x.row(static_cast<int>(i)));
  }
  nn::Matrix z1, a1, z2, a2, pred;
  l1_->Forward(x, z1, wt_scratch_);
  nn::ReluForward(z1, a1);
  l2_->Forward(a1, z2, wt_scratch_);
  nn::ReluForward(z2, a2);
  out_->Forward(a2, pred, wt_scratch_);
  std::vector<double> out(qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    const double log_sel =
        Clamp(pred.at(static_cast<int>(i), 0), log_floor_, 0.0);
    out[i] = std::exp2(log_sel);
  }
  return out;
}

size_t MscnEstimator::SizeBytes() const {
  const size_t params = l1_->ParameterCount() + l2_->ParameterCount() +
                        out_->ParameterCount();
  return params * sizeof(float) + sample_.size() * sizeof(double);
}

}  // namespace iam::estimator
