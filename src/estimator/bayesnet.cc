#include "estimator/bayesnet.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace iam::estimator {
namespace {

// Assigns x to its bin given ascending edges (size bins+1); clamps outside
// values into the first/last bin.
int BinOf(const std::vector<double>& edges, double x) {
  const auto it = std::upper_bound(edges.begin(), edges.end(), x);
  long idx = (it - edges.begin()) - 1;
  idx = std::clamp<long>(idx, 0, static_cast<long>(edges.size()) - 2);
  return static_cast<int>(idx);
}

}  // namespace

BayesNetEstimator::BayesNetEstimator(const data::Table& table,
                                     const Options& options) {
  num_columns_ = table.num_columns();
  const size_t n = table.num_rows();
  IAM_CHECK(n > 0);
  nodes_.resize(num_columns_);

  // --- Discretize: equi-depth edges per column. -----------------------------
  std::vector<std::vector<int>> binned(num_columns_);
  for (int c = 0; c < num_columns_; ++c) {
    std::vector<double> sorted = table.column(c).values;
    std::sort(sorted.begin(), sorted.end());
    std::vector<double>& edges = nodes_[c].edges;
    edges.push_back(sorted.front());
    for (int b = 1; b < options.max_bins; ++b) {
      const size_t idx = static_cast<size_t>(
          static_cast<double>(b) / options.max_bins *
          static_cast<double>(n - 1));
      edges.push_back(sorted[idx]);
    }
    edges.push_back(std::nextafter(sorted.back(),
                                   std::numeric_limits<double>::infinity()));
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    IAM_CHECK(edges.size() >= 2);

    binned[c].resize(n);
    for (size_t r = 0; r < n; ++r) {
      binned[c][r] = BinOf(edges, table.value(r, c));
    }
  }

  auto bins_of = [&](int c) {
    return static_cast<int>(nodes_[c].edges.size()) - 1;
  };

  // --- Marginals and per-bin distinct counts. --------------------------------
  for (int c = 0; c < num_columns_; ++c) {
    nodes_[c].marginal.assign(bins_of(c), 0.0);
    for (size_t r = 0; r < n; ++r) nodes_[c].marginal[binned[c][r]] += 1.0;
    for (double& p : nodes_[c].marginal) p /= static_cast<double>(n);

    nodes_[c].distinct.assign(bins_of(c), 0.0);
    std::vector<double> sorted = table.column(c).values;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    for (double v : sorted) {
      nodes_[c].distinct[BinOf(nodes_[c].edges, v)] += 1.0;
    }
  }

  // --- Pairwise mutual information. ------------------------------------------
  std::vector<std::vector<double>> mi(num_columns_,
                                      std::vector<double>(num_columns_, 0.0));
  std::vector<double> joint;
  for (int a = 0; a < num_columns_; ++a) {
    for (int b = a + 1; b < num_columns_; ++b) {
      const int ba = bins_of(a);
      const int bb = bins_of(b);
      joint.assign(static_cast<size_t>(ba) * bb, 0.0);
      for (size_t r = 0; r < n; ++r) {
        joint[static_cast<size_t>(binned[a][r]) * bb + binned[b][r]] += 1.0;
      }
      double info = 0.0;
      for (int i = 0; i < ba; ++i) {
        for (int j = 0; j < bb; ++j) {
          const double pij = joint[static_cast<size_t>(i) * bb + j] /
                             static_cast<double>(n);
          if (pij <= 0.0) continue;
          info += pij * std::log(pij / (nodes_[a].marginal[i] *
                                        nodes_[b].marginal[j]));
        }
      }
      mi[a][b] = mi[b][a] = info;
    }
  }

  // --- Maximum spanning tree (Prim), rooted at column 0. ---------------------
  parents_.assign(num_columns_, -1);
  children_.assign(num_columns_, {});
  std::vector<bool> in_tree(num_columns_, false);
  std::vector<double> best_weight(num_columns_,
                                  -std::numeric_limits<double>::infinity());
  std::vector<int> best_parent(num_columns_, -1);
  in_tree[0] = true;
  for (int c = 1; c < num_columns_; ++c) {
    best_weight[c] = mi[0][c];
    best_parent[c] = 0;
  }
  for (int added = 1; added < num_columns_; ++added) {
    int pick = -1;
    for (int c = 0; c < num_columns_; ++c) {
      if (!in_tree[c] && (pick < 0 || best_weight[c] > best_weight[pick])) {
        pick = c;
      }
    }
    IAM_CHECK(pick >= 0);
    in_tree[pick] = true;
    parents_[pick] = best_parent[pick];
    children_[best_parent[pick]].push_back(pick);
    for (int c = 0; c < num_columns_; ++c) {
      if (!in_tree[c] && mi[pick][c] > best_weight[c]) {
        best_weight[c] = mi[pick][c];
        best_parent[c] = pick;
      }
    }
  }
  root_ = 0;

  // --- CPTs. ------------------------------------------------------------------
  for (int c = 0; c < num_columns_; ++c) {
    if (parents_[c] < 0) continue;
    const int p = parents_[c];
    const int bc = bins_of(c);
    const int bp = bins_of(p);
    std::vector<double>& cpt = nodes_[c].cpt;
    cpt.assign(static_cast<size_t>(bp) * bc, options.laplace);
    for (size_t r = 0; r < n; ++r) {
      cpt[static_cast<size_t>(binned[p][r]) * bc + binned[c][r]] += 1.0;
    }
    for (int pb = 0; pb < bp; ++pb) {
      double total = 0.0;
      for (int b = 0; b < bc; ++b) total += cpt[static_cast<size_t>(pb) * bc + b];
      for (int b = 0; b < bc; ++b) cpt[static_cast<size_t>(pb) * bc + b] /= total;
    }
  }
}

std::vector<double> BayesNetEstimator::BinOverlap(
    int col, const query::Query& q) const {
  const auto& edges = nodes_[col].edges;
  const int bins = static_cast<int>(edges.size()) - 1;
  std::vector<double> overlap(bins, 1.0);
  for (const query::Predicate& p : q.predicates) {
    if (p.column != col) continue;
    for (int b = 0; b < bins; ++b) {
      const double bl = edges[b];
      const double bh = edges[b + 1];
      const double lo = std::max(p.lo, bl);
      const double hi = std::min(p.hi, bh);
      double frac = 0.0;
      if (hi >= lo) {
        if (hi == lo) {
          // Point predicate: one distinct slot out of the bin's distinct
          // values (uniform-spread over distinct values, as in MHIST).
          frac = 1.0 / std::max(1.0, nodes_[col].distinct[b]);
        } else if (bh > bl) {
          frac = std::min(1.0, (hi - lo) / (bh - bl));
        } else {
          frac = 1.0;
        }
      }
      overlap[b] *= frac;
    }
  }
  return overlap;
}

std::vector<double> BayesNetEstimator::Message(int node,
                                               const query::Query& q) const {
  const std::vector<double> alpha = BinOverlap(node, q);
  const int bins = static_cast<int>(alpha.size());

  // Product of messages from this node's children, per own bin.
  std::vector<double> sub(bins, 1.0);
  for (int child : children_[node]) {
    const std::vector<double> m = Message(child, q);
    for (int b = 0; b < bins; ++b) sub[b] *= m[b];
  }

  const int parent = parents_[node];
  if (parent < 0) {
    // Root: contract against the marginal and return a singleton.
    double total = 0.0;
    for (int b = 0; b < bins; ++b) {
      total += alpha[b] * sub[b] * nodes_[node].marginal[b];
    }
    return {total};
  }

  const int parent_bins = static_cast<int>(nodes_[parent].edges.size()) - 1;
  std::vector<double> out(parent_bins, 0.0);
  const std::vector<double>& cpt = nodes_[node].cpt;
  for (int pb = 0; pb < parent_bins; ++pb) {
    double acc = 0.0;
    for (int b = 0; b < bins; ++b) {
      acc += cpt[static_cast<size_t>(pb) * bins + b] * alpha[b] * sub[b];
    }
    out[pb] = acc;
  }
  return out;
}

double BayesNetEstimator::Estimate(const query::Query& q) {
  const std::vector<double> result = Message(root_, q);
  IAM_CHECK(result.size() == 1);
  return std::clamp(result[0], 0.0, 1.0);
}

size_t BayesNetEstimator::SizeBytes() const {
  size_t bytes = 0;
  for (const NodeStats& node : nodes_) {
    bytes += (node.edges.size() + node.marginal.size() + node.cpt.size()) *
             sizeof(double);
  }
  return bytes;
}

}  // namespace iam::estimator
