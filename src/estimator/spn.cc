#include "estimator/spn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/macros.h"
#include "util/math_util.h"

namespace iam::estimator {

struct SpnEstimator::Node {
  enum class Kind { kSum, kProduct, kLeaf } kind;

  // kSum: weighted children over the same column scope.
  std::vector<double> weights;
  // kSum / kProduct children.
  std::vector<std::unique_ptr<Node>> children;

  // kLeaf: histogram over one column.
  int column = -1;
  std::vector<double> edges;     // ascending, size bins + 1
  std::vector<double> masses;    // size bins, sums to 1
  std::vector<double> distinct;  // distinct values per bin
};

SpnEstimator::~SpnEstimator() = default;

SpnEstimator::SpnEstimator(const data::Table& table, const Options& options)
    : table_(&table), options_(options), rng_(options.seed) {
  IAM_CHECK(table.num_rows() > 0);
  std::vector<size_t> rows;
  if (table.num_rows() > options_.max_build_rows) {
    rows = rng_.SampleWithoutReplacement(table.num_rows(),
                                         options_.max_build_rows);
  } else {
    rows.resize(table.num_rows());
    for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  }
  std::vector<int> cols(table.num_columns());
  for (int c = 0; c < table.num_columns(); ++c) cols[c] = c;
  root_ = Build(rows, cols, 0);
  table_ = nullptr;
}

std::unique_ptr<SpnEstimator::Node> SpnEstimator::MakeLeaf(
    const std::vector<size_t>& rows, int col) {
  auto node = std::make_unique<Node>();
  node->kind = Node::Kind::kLeaf;
  node->column = col;
  ++num_leaf_;

  std::vector<double> values;
  values.reserve(rows.size());
  for (size_t r : rows) values.push_back(table_->value(r, col));
  std::sort(values.begin(), values.end());

  // Equi-depth edges.
  const int bins = std::min<int>(options_.leaf_bins,
                                 static_cast<int>(values.size()));
  node->edges.push_back(values.front());
  for (int b = 1; b < bins; ++b) {
    node->edges.push_back(
        values[static_cast<size_t>(static_cast<double>(b) / bins *
                                   (values.size() - 1))]);
  }
  node->edges.push_back(std::nextafter(
      values.back(), std::numeric_limits<double>::infinity()));
  node->edges.erase(std::unique(node->edges.begin(), node->edges.end()),
                    node->edges.end());
  const size_t actual_bins = node->edges.size() - 1;
  node->masses.assign(actual_bins, 0.0);
  node->distinct.assign(actual_bins, 0.0);
  double prev = std::numeric_limits<double>::quiet_NaN();
  for (double v : values) {
    const auto it =
        std::upper_bound(node->edges.begin(), node->edges.end(), v);
    long idx = (it - node->edges.begin()) - 1;
    idx = std::clamp<long>(idx, 0, static_cast<long>(actual_bins) - 1);
    node->masses[idx] += 1.0;
    if (v != prev) {
      node->distinct[idx] += 1.0;  // values are sorted: counts distincts
      prev = v;
    }
  }
  for (double& m : node->masses) m /= static_cast<double>(values.size());
  size_bytes_ += (node->edges.size() + 2 * node->masses.size()) *
                 sizeof(double);
  return node;
}

std::unique_ptr<SpnEstimator::Node> SpnEstimator::Build(
    const std::vector<size_t>& rows, const std::vector<int>& cols,
    int depth) {
  IAM_CHECK(!cols.empty());
  if (cols.size() == 1) return MakeLeaf(rows, cols[0]);

  const bool must_split_columns =
      rows.size() < options_.min_instances || depth >= options_.max_depth;

  // --- Column split: group columns by |Pearson correlation| over a sample
  // of the rows (rank-free simplification of DeepDB's RDC test).
  if (!must_split_columns) {
    const size_t probe = std::min<size_t>(rows.size(), 3000);
    std::vector<std::vector<double>> sampled(cols.size());
    for (size_t ci = 0; ci < cols.size(); ++ci) {
      sampled[ci].reserve(probe);
      for (size_t i = 0; i < probe; ++i) {
        sampled[ci].push_back(table_->value(rows[i], cols[ci]));
      }
    }
    // Union-find over correlated column pairs.
    std::vector<size_t> parent(cols.size());
    for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
    auto find = [&](size_t x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    for (size_t a = 0; a < cols.size(); ++a) {
      for (size_t b = a + 1; b < cols.size(); ++b) {
        if (std::abs(PearsonCorrelation(sampled[a], sampled[b])) >
            options_.independence_threshold) {
          parent[find(a)] = find(b);
        }
      }
    }
    std::vector<std::vector<int>> groups;
    for (size_t root = 0; root < cols.size(); ++root) {
      if (find(root) != root) continue;
      std::vector<int> group;
      for (size_t i = 0; i < cols.size(); ++i) {
        if (find(i) == root) group.push_back(cols[i]);
      }
      groups.push_back(std::move(group));
    }
    if (groups.size() >= 2) {
      auto node = std::make_unique<Node>();
      node->kind = Node::Kind::kProduct;
      ++num_product_;
      for (const auto& group : groups) {
        node->children.push_back(Build(rows, group, depth + 1));
      }
      return node;
    }
  } else {
    // Forced independence: all-singleton product (DeepDB's base case).
    auto node = std::make_unique<Node>();
    node->kind = Node::Kind::kProduct;
    ++num_product_;
    for (int col : cols) node->children.push_back(MakeLeaf(rows, col));
    return node;
  }

  // --- Row split (sum node): 1-D 2-means on the column with the largest
  // normalized variance, DeepDB's clustering step reduced to its essence.
  size_t split_ci = 0;
  double best_score = -1.0;
  for (size_t ci = 0; ci < cols.size(); ++ci) {
    const size_t probe_n = std::min<size_t>(rows.size(), 2000);
    std::vector<double> probe;
    probe.reserve(probe_n);
    for (size_t i = 0; i < probe_n; ++i) {
      probe.push_back(table_->value(rows[i], cols[ci]));
    }
    const MeanVar mv = ComputeMeanVar(probe);
    const auto [lo, hi] =
        std::minmax_element(probe.begin(), probe.end());
    const double span = *hi - *lo;
    const double score = span > 0 ? mv.variance / (span * span) : 0.0;
    if (score > best_score) {
      best_score = score;
      split_ci = ci;
    }
  }
  const int split_col = cols[split_ci];

  // Lloyd with 2 centers on that column.
  double c0 = table_->value(rows[rows.size() / 4], split_col);
  double c1 = table_->value(rows[3 * rows.size() / 4], split_col);
  if (c0 == c1) c1 = c0 + 1.0;
  for (int iter = 0; iter < 12; ++iter) {
    double s0 = 0.0, s1 = 0.0;
    size_t n0 = 0, n1 = 0;
    const double mid = 0.5 * (c0 + c1);
    for (size_t r : rows) {
      const double v = table_->value(r, split_col);
      if (v <= mid) {
        s0 += v;
        ++n0;
      } else {
        s1 += v;
        ++n1;
      }
    }
    if (n0 == 0 || n1 == 0) break;
    c0 = s0 / static_cast<double>(n0);
    c1 = s1 / static_cast<double>(n1);
  }
  const double mid = 0.5 * (c0 + c1);
  std::vector<size_t> left, right;
  for (size_t r : rows) {
    (table_->value(r, split_col) <= mid ? left : right).push_back(r);
  }
  if (left.empty() || right.empty()) {
    // Degenerate cluster: fall back to forced independence.
    auto node = std::make_unique<Node>();
    node->kind = Node::Kind::kProduct;
    ++num_product_;
    for (int col : cols) node->children.push_back(MakeLeaf(rows, col));
    return node;
  }

  auto node = std::make_unique<Node>();
  node->kind = Node::Kind::kSum;
  ++num_sum_;
  node->weights = {
      static_cast<double>(left.size()) / static_cast<double>(rows.size()),
      static_cast<double>(right.size()) / static_cast<double>(rows.size())};
  size_bytes_ += 2 * sizeof(double);
  node->children.push_back(Build(left, cols, depth + 1));
  node->children.push_back(Build(right, cols, depth + 1));
  return node;
}

double SpnEstimator::Evaluate(const Node& node, const query::Query& q) const {
  switch (node.kind) {
    case Node::Kind::kLeaf: {
      double mass = 1.0;
      for (const query::Predicate& p : q.predicates) {
        if (p.column != node.column) continue;
        double bin_mass = 0.0;
        const size_t bins = node.masses.size();
        for (size_t b = 0; b < bins; ++b) {
          const double bl = node.edges[b];
          const double bh = node.edges[b + 1];
          const double lo = std::max(p.lo, bl);
          const double hi = std::min(p.hi, bh);
          if (hi < lo) continue;
          double frac;
          if (bh > bl) {
            frac = hi > lo ? (hi - lo) / (bh - bl)
                           : 1.0 / std::max(1.0, node.distinct[b]);
          } else {
            frac = 1.0;
          }
          bin_mass += node.masses[b] * std::min(frac, 1.0);
        }
        mass *= bin_mass;
      }
      return mass;
    }
    case Node::Kind::kProduct: {
      double product = 1.0;
      for (const auto& child : node.children) {
        product *= Evaluate(*child, q);
        if (product == 0.0) break;
      }
      return product;
    }
    case Node::Kind::kSum: {
      double total = 0.0;
      for (size_t i = 0; i < node.children.size(); ++i) {
        total += node.weights[i] * Evaluate(*node.children[i], q);
      }
      return total;
    }
  }
  return 0.0;
}

double SpnEstimator::Estimate(const query::Query& q) {
  return Clamp(Evaluate(*root_, q), 0.0, 1.0);
}

size_t SpnEstimator::SizeBytes() const { return size_bytes_; }

}  // namespace iam::estimator
