#ifndef IAM_ESTIMATOR_ESTIMATOR_H_
#define IAM_ESTIMATOR_ESTIMATOR_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "query/query.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace iam::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace iam::obs

namespace iam::estimator {

// Instrumentation handles shared by every EstimateBatch implementation
// (the parallel AR sampler and the scan baselines), resolved once from
// obs::MetricRegistry::Global(): per-query and per-batch end-to-end latency
// histograms plus the query/batch event counters. See DESIGN.md §12.
struct BatchMetrics {
  obs::Counter& queries;
  obs::Counter& batches;
  obs::Histogram& query_seconds;
  obs::Histogram& batch_seconds;

  static BatchMetrics& Get();
};

// Common interface of every selectivity estimator in the evaluation
// (Section 6.1.2). Estimate() returns a selectivity in [0, 1]; callers apply
// the paper's 1/|T| floor inside the q-error metric.
class Estimator {
 public:
  virtual ~Estimator() = default;

  virtual std::string name() const = 0;

  // Estimated selectivity of a conjunctive query. Non-const because several
  // estimators draw Monte-Carlo samples from an internal RNG.
  virtual double Estimate(const query::Query& q) = 0;

  // Batched inference; the default processes queries one by one. The AR and
  // scan-based estimators override this to share forward passes (Table 7)
  // and/or to spread queries across the thread pool.
  virtual std::vector<double> EstimateBatch(std::span<const query::Query> qs);

  // Storage footprint of the trained model (Tables 6 and 12).
  virtual size_t SizeBytes() const = 0;

  // Worker threads available to parallelized EstimateBatch overrides (and,
  // for the AR estimators, build-time fitting); 1 — fully serial — by
  // default. Contract: an estimator that parallelizes must return results
  // bit-identical to its serial execution. Takes effect on the next batch.
  void set_num_threads(int num_threads) IAM_EXCLUDES(batch_mu_);
  int num_threads() const IAM_EXCLUDES(batch_mu_);

 protected:
  // Serializes every use of the pool and of per-worker inference scratch:
  // concurrent EstimateBatch calls on one estimator from distinct threads
  // are safe — they run one batch after another, each internally parallel —
  // and results stay bit-identical to serial execution (deterministic
  // per-query seeding makes them independent of arrival order). Subclass
  // batch entry points take a MutexLock on this before touching pool() or
  // any IAM_GUARDED_BY(batch_mu_) scratch.
  mutable util::Mutex batch_mu_{util::LockRank::kEstimatorBatch};

  // The lazily constructed pool with num_threads() workers.
  util::ThreadPool& pool() IAM_REQUIRES(batch_mu_);

  // Fans qs out over the pool, one query per index. `estimate_one` must be
  // safe to call concurrently — i.e. a pure scan over immutable model state.
  std::vector<double> ParallelEstimateBatch(
      std::span<const query::Query> qs,
      const std::function<double(const query::Query&)>& estimate_one)
      IAM_EXCLUDES(batch_mu_);

 private:
  int num_threads_ IAM_GUARDED_BY(batch_mu_) = 1;
  std::unique_ptr<util::ThreadPool> pool_ IAM_GUARDED_BY(batch_mu_);
};

// Estimates a two-term disjunction R_a OR R_b via inclusion-exclusion
// (Section 2.1): sel(a) + sel(b) - sel(a AND b). Predicates on the same
// column are intersected for the conjunction term.
double EstimateDisjunction(Estimator& est, const query::Query& a,
                           const query::Query& b);

}  // namespace iam::estimator

#endif  // IAM_ESTIMATOR_ESTIMATOR_H_
