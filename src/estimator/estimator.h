#ifndef IAM_ESTIMATOR_ESTIMATOR_H_
#define IAM_ESTIMATOR_ESTIMATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "query/query.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace iam::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace iam::obs

namespace iam::estimator {

// Instrumentation handles shared by every EstimateBatch implementation
// (the parallel AR sampler and the scan baselines), resolved once from
// obs::MetricRegistry::Global(): per-query and per-batch end-to-end latency
// histograms plus the query/batch event counters. See DESIGN.md §12.
struct BatchMetrics {
  obs::Counter& queries;
  obs::Counter& batches;
  obs::Histogram& query_seconds;
  obs::Histogram& batch_seconds;

  static BatchMetrics& Get();
};

// Per-query sampler diagnostics surfaced by EstimateBatchDiagnosed
// (DESIGN.md §17): what the progressive sampler actually did for one query.
// Estimators that do no sampling report the defaults (all-zero, rounds = 0).
// Filling these is observational only — an estimator must return estimates
// bit-identical to its plain EstimateBatch for the same queries.
struct QueryDiagnostics {
  uint64_t sampler_draws = 0;     // progressive-sampler rows drawn
  int32_t sample_rows = 0;        // per-wave sample rows configured
  int32_t rounds = 0;             // adaptive-budget waves executed
  int32_t early_stop_round = -1;  // wave the CI test stopped it at (-1 none)
  int32_t prefix_hits = 0;        // prefix-share cache hits
  int32_t fallbacks = 0;          // zero-mass wildcard fallbacks taken
  int32_t fallback_column = -1;   // column of the last fallback (-1 none)
  bool dead = false;              // provably empty (contradictory ranges)
  double ci_half_width = 0.0;     // CI half-width at stop (0 if never tested)
  // Post-estimate correction (DESIGN.md §18): the query's corrector region
  // key and the multiplier applied to the raw estimate. Defaults (0, 1.0)
  // when the estimator has no corrector or correction is disabled — unlike
  // the sampler fields above these describe a behavior change, so they are
  // only non-default when the returned estimate already includes them.
  uint64_t region_key = 0;
  double corrector_multiplier = 1.0;
};

// Common interface of every selectivity estimator in the evaluation
// (Section 6.1.2). Estimate() returns a selectivity in [0, 1]; callers apply
// the paper's 1/|T| floor inside the q-error metric.
class Estimator {
 public:
  virtual ~Estimator() = default;

  virtual std::string name() const = 0;

  // Estimated selectivity of a conjunctive query. Non-const because several
  // estimators draw Monte-Carlo samples from an internal RNG.
  virtual double Estimate(const query::Query& q) = 0;

  // Batched inference; the default processes queries one by one. The AR and
  // scan-based estimators override this to share forward passes (Table 7)
  // and/or to spread queries across the thread pool.
  virtual std::vector<double> EstimateBatch(std::span<const query::Query> qs);

  // Batched inference with per-query diagnostics. `diags` is either empty
  // (no collection) or exactly qs.size() entries that the estimator fills
  // in place. Estimates must be bit-identical to EstimateBatch on the same
  // queries — diagnostics are a read-only window, never a behavior change.
  // The default fills the all-zero defaults and delegates to EstimateBatch;
  // sampling estimators (ArDensityEstimator) override it. Named distinctly
  // rather than overloaded so subclasses overriding only EstimateBatch do
  // not hide it.
  virtual std::vector<double> EstimateBatchDiagnosed(
      std::span<const query::Query> qs, std::span<QueryDiagnostics> diags);

  // Storage footprint of the trained model (Tables 6 and 12).
  virtual size_t SizeBytes() const = 0;

  // Worker threads available to parallelized EstimateBatch overrides (and,
  // for the AR estimators, build-time fitting); 1 — fully serial — by
  // default. Contract: an estimator that parallelizes must return results
  // bit-identical to its serial execution. Takes effect on the next batch.
  void set_num_threads(int num_threads) IAM_EXCLUDES(batch_mu_);
  int num_threads() const IAM_EXCLUDES(batch_mu_);

 protected:
  // Serializes every use of the pool and of per-worker inference scratch:
  // concurrent EstimateBatch calls on one estimator from distinct threads
  // are safe — they run one batch after another, each internally parallel —
  // and results stay bit-identical to serial execution (deterministic
  // per-query seeding makes them independent of arrival order). Subclass
  // batch entry points take a MutexLock on this before touching pool() or
  // any IAM_GUARDED_BY(batch_mu_) scratch.
  mutable util::Mutex batch_mu_{util::LockRank::kEstimatorBatch};

  // The lazily constructed pool with num_threads() workers.
  util::ThreadPool& pool() IAM_REQUIRES(batch_mu_);

  // Fans qs out over the pool, one query per index. `estimate_one` must be
  // safe to call concurrently — i.e. a pure scan over immutable model state.
  std::vector<double> ParallelEstimateBatch(
      std::span<const query::Query> qs,
      const std::function<double(const query::Query&)>& estimate_one)
      IAM_EXCLUDES(batch_mu_);

 private:
  int num_threads_ IAM_GUARDED_BY(batch_mu_) = 1;
  std::unique_ptr<util::ThreadPool> pool_ IAM_GUARDED_BY(batch_mu_);
};

// Estimates a two-term disjunction R_a OR R_b via inclusion-exclusion
// (Section 2.1): sel(a) + sel(b) - sel(a AND b). Predicates on the same
// column are intersected for the conjunction term.
double EstimateDisjunction(Estimator& est, const query::Query& a,
                           const query::Query& b);

}  // namespace iam::estimator

#endif  // IAM_ESTIMATOR_ESTIMATOR_H_
