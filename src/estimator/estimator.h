#ifndef IAM_ESTIMATOR_ESTIMATOR_H_
#define IAM_ESTIMATOR_ESTIMATOR_H_

#include <span>
#include <string>
#include <vector>

#include "query/query.h"

namespace iam::estimator {

// Common interface of every selectivity estimator in the evaluation
// (Section 6.1.2). Estimate() returns a selectivity in [0, 1]; callers apply
// the paper's 1/|T| floor inside the q-error metric.
class Estimator {
 public:
  virtual ~Estimator() = default;

  virtual std::string name() const = 0;

  // Estimated selectivity of a conjunctive query. Non-const because several
  // estimators draw Monte-Carlo samples from an internal RNG.
  virtual double Estimate(const query::Query& q) = 0;

  // Batched inference; the default processes queries one by one. The AR
  // estimators override this to share forward passes (Table 7).
  virtual std::vector<double> EstimateBatch(std::span<const query::Query> qs);

  // Storage footprint of the trained model (Tables 6 and 12).
  virtual size_t SizeBytes() const = 0;
};

// Estimates a two-term disjunction R_a OR R_b via inclusion-exclusion
// (Section 2.1): sel(a) + sel(b) - sel(a AND b). Predicates on the same
// column are intersected for the conjunction term.
double EstimateDisjunction(Estimator& est, const query::Query& a,
                           const query::Query& b);

}  // namespace iam::estimator

#endif  // IAM_ESTIMATOR_ESTIMATOR_H_
