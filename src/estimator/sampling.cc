#include "estimator/sampling.h"

#include <algorithm>
#include <cmath>

namespace iam::estimator {

SamplingEstimator::SamplingEstimator(const data::Table& table, double fraction,
                                     uint64_t seed)
    : num_columns_(table.num_columns()) {
  IAM_CHECK(fraction > 0.0 && fraction <= 1.0);
  Rng rng(seed);
  const size_t n = table.num_rows();
  const size_t k = std::max<size_t>(
      1, static_cast<size_t>(std::llround(fraction * static_cast<double>(n))));
  const std::vector<size_t> rows =
      rng.SampleWithoutReplacement(n, std::min(k, n));
  num_sampled_ = rows.size();
  sample_.reserve(num_sampled_ * num_columns_);
  for (size_t r : rows) {
    for (int c = 0; c < num_columns_; ++c) {
      sample_.push_back(table.value(r, c));
    }
  }
}

double SamplingEstimator::EstimateOne(const query::Query& q) const {
  if (num_sampled_ == 0) return 0.0;
  size_t hits = 0;
  for (size_t r = 0; r < num_sampled_; ++r) {
    const double* row = sample_.data() + r * num_columns_;
    bool match = true;
    for (const query::Predicate& p : q.predicates) {
      if (!p.Matches(row[p.column])) {
        match = false;
        break;
      }
    }
    hits += match ? 1 : 0;
  }
  return static_cast<double>(hits) / static_cast<double>(num_sampled_);
}

std::vector<double> SamplingEstimator::EstimateBatch(
    std::span<const query::Query> qs) {
  return ParallelEstimateBatch(
      qs, [this](const query::Query& q) { return EstimateOne(q); });
}

size_t SamplingEstimator::SizeBytes() const {
  return sample_.size() * sizeof(double);
}

}  // namespace iam::estimator
