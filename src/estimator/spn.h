#ifndef IAM_ESTIMATOR_SPN_H_
#define IAM_ESTIMATOR_SPN_H_

#include <memory>
#include <vector>

#include "data/table.h"
#include "estimator/estimator.h"
#include "util/random.h"

namespace iam::estimator {

// DeepDB-style sum-product network (Hilprecht et al.), the paper's strongest
// non-autoregressive learned baseline. Structure learning follows the
// standard recursion: try to split the column set into (nearly) independent
// groups — a product node; otherwise cluster the rows — a sum node; single
// columns become histogram leaves (uniform inside each bin, DeepDB's linear
// leaf density). Range queries evaluate bottom-up in one pass.
//
// The known failure mode the paper highlights — independence assumed at
// product nodes and uniform leaves on skewed continuous data producing large
// tail errors — is inherent to this construction and is reproduced.
class SpnEstimator : public Estimator {
 public:
  struct Options {
    size_t min_instances = 800;      // stop row-splitting below this
    double independence_threshold = 0.08;  // |corr| below this = independent
    int leaf_bins = 64;
    int max_depth = 12;
    size_t max_build_rows = 100000;
    uint64_t seed = 31;
  };

  SpnEstimator(const data::Table& table, const Options& options);
  ~SpnEstimator() override;  // out-of-line: Node is private/incomplete here

  std::string name() const override { return "deepdb"; }
  double Estimate(const query::Query& q) override;
  size_t SizeBytes() const override;

  // Node counts, exposed for tests.
  int num_sum_nodes() const { return num_sum_; }
  int num_product_nodes() const { return num_product_; }
  int num_leaves() const { return num_leaf_; }

 private:
  struct Node;

  std::unique_ptr<Node> Build(const std::vector<size_t>& rows,
                              const std::vector<int>& cols, int depth);
  std::unique_ptr<Node> MakeLeaf(const std::vector<size_t>& rows, int col);
  double Evaluate(const Node& node, const query::Query& q) const;

  const data::Table* table_ = nullptr;  // only during construction
  Options options_;
  Rng rng_;
  std::unique_ptr<Node> root_;
  int num_sum_ = 0;
  int num_product_ = 0;
  int num_leaf_ = 0;
  size_t size_bytes_ = 0;
};

}  // namespace iam::estimator

#endif  // IAM_ESTIMATOR_SPN_H_
