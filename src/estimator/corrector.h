#ifndef IAM_ESTIMATOR_CORRECTOR_H_
#define IAM_ESTIMATOR_CORRECTOR_H_

#include <cstdint>

namespace iam::estimator {

// Post-estimate multiplicative corrector (DESIGN.md §18). An estimator that
// supports correction maps each query to a stable region key — a pure
// function of the query and the immutable model structure — and multiplies
// the raw estimate by MultiplierForRegion(key) before returning it. The
// concrete corrector (adapt::RegionCorrector) learns the multipliers from
// query feedback, QuickSel-style; this interface keeps the estimator layer
// free of any dependency on the adaptation subsystem.
//
// Implementations must be safe to call concurrently with their own update
// path: MultiplierForRegion is called under the estimator's batch mutex
// (LockRank::kEstimatorBatch) while feedback lands from the adaptation
// thread, so the implementation's internal lock must rank below it
// (LockRank::kCorrector).
class SelectivityCorrector {
 public:
  virtual ~SelectivityCorrector() = default;

  // Multiplier applied to the raw estimate of a query in `region_key`;
  // 1.0 for regions with no feedback. Must be positive and finite.
  virtual double MultiplierForRegion(uint64_t region_key) const = 0;
};

}  // namespace iam::estimator

#endif  // IAM_ESTIMATOR_CORRECTOR_H_
