#ifndef IAM_ESTIMATOR_POSTGRES1D_H_
#define IAM_ESTIMATOR_POSTGRES1D_H_

#include <vector>

#include "data/table.h"
#include "estimator/estimator.h"

namespace iam::estimator {

// Postgres-style statistics: per column, a most-common-values (MCV) list and
// an equi-depth histogram over the remaining values; predicates are estimated
// per column and combined under the attribute-value-independence assumption,
// mirroring PostgreSQL's row-estimation machinery.
class Postgres1DEstimator : public Estimator {
 public:
  struct Options {
    int histogram_bins = 100;
    int mcv_entries = 100;
  };

  Postgres1DEstimator(const data::Table& table, const Options& options);

  std::string name() const override { return "postgres"; }
  double Estimate(const query::Query& q) override { return EstimateOne(q); }
  // Per-column stats lookups are independent per query: use the pool.
  std::vector<double> EstimateBatch(
      std::span<const query::Query> qs) override;
  size_t SizeBytes() const override;

 private:
  // Pure lookup into the immutable statistics; safe to call concurrently.
  double EstimateOne(const query::Query& q) const;

  struct ColumnStats {
    // MCVs: value -> frequency (fraction of all rows).
    std::vector<double> mcv_values;
    std::vector<double> mcv_freqs;
    double mcv_total_freq = 0.0;
    // Equi-depth histogram over non-MCV values: ascending bounds, each
    // bucket holding an equal share of the non-MCV mass.
    std::vector<double> histogram_bounds;
    double non_mcv_freq = 0.0;
  };

  double ColumnSelectivity(const ColumnStats& stats,
                           const query::Predicate& p) const;

  std::vector<ColumnStats> stats_;
};

}  // namespace iam::estimator

#endif  // IAM_ESTIMATOR_POSTGRES1D_H_
