#ifndef IAM_ESTIMATOR_KDE_H_
#define IAM_ESTIMATOR_KDE_H_

#include <vector>

#include "data/table.h"
#include "estimator/estimator.h"
#include "util/random.h"

namespace iam::estimator {

// Gaussian kernel density estimator (Heimel et al. / Kiefer et al.): a
// uniform sample of rows acts as kernel centers; the selectivity of a
// hyper-rectangle is the average over centers of the product of per-dimension
// normal-CDF differences. Bandwidths follow Scott's rule; optionally a few
// multiplicative bandwidth refinement steps on a training workload mimic the
// query-feedback tuning of the original system.
class KdeEstimator : public Estimator {
 public:
  struct Options {
    size_t sample_size = 2000;
    uint64_t seed = 11;
  };

  KdeEstimator(const data::Table& table, const Options& options);

  std::string name() const override { return "kde"; }
  double Estimate(const query::Query& q) override { return EstimateOne(q); }
  // Kernel sums are independent per query: fan the batch out over the pool.
  std::vector<double> EstimateBatch(
      std::span<const query::Query> qs) override;
  size_t SizeBytes() const override;

  // Grid-searches a global bandwidth multiplier against a training workload
  // (queries + true selectivities), keeping the multiplier with the lowest
  // mean q-error.
  void TuneBandwidth(std::span<const query::Query> queries,
                     std::span<const double> truths, size_t num_rows);

 private:
  // Pure scan over the kernel centers; safe to call concurrently.
  double EstimateOne(const query::Query& q) const;

  std::vector<double> centers_;  // row-major sample
  std::vector<double> bandwidth_;
  size_t num_centers_ = 0;
  int num_columns_ = 0;
  double bandwidth_scale_ = 1.0;
};

}  // namespace iam::estimator

#endif  // IAM_ESTIMATOR_KDE_H_
