#include "estimator/kde.h"

#include <algorithm>
#include <cmath>

#include "util/math_util.h"

namespace iam::estimator {

KdeEstimator::KdeEstimator(const data::Table& table, const Options& options) {
  num_columns_ = table.num_columns();
  const size_t n = table.num_rows();
  IAM_CHECK(n > 0);

  Rng rng(options.seed);
  const size_t m = std::min(options.sample_size, n);
  const std::vector<size_t> rows = rng.SampleWithoutReplacement(n, m);
  num_centers_ = rows.size();
  centers_.reserve(num_centers_ * num_columns_);
  for (size_t r : rows) {
    for (int c = 0; c < num_columns_; ++c) {
      centers_.push_back(table.value(r, c));
    }
  }

  // Scott's rule: h_d = sigma_d * m^(-1/(d+4)).
  bandwidth_.resize(num_columns_);
  const double exponent =
      -1.0 / (static_cast<double>(num_columns_) + 4.0);
  const double m_factor = std::pow(static_cast<double>(num_centers_), exponent);
  for (int c = 0; c < num_columns_; ++c) {
    const MeanVar mv = ComputeMeanVar(table.column(c).values);
    const double sigma = std::sqrt(std::max(mv.variance, 1e-12));
    bandwidth_[c] = std::max(1e-9, sigma * m_factor);
  }
}

double KdeEstimator::EstimateOne(const query::Query& q) const {
  if (num_centers_ == 0) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < num_centers_; ++i) {
    const double* center = centers_.data() + i * num_columns_;
    double contrib = 1.0;
    for (const query::Predicate& p : q.predicates) {
      const double h = bandwidth_[p.column] * bandwidth_scale_;
      const double x = center[p.column];
      const double mass = NormalCdf(p.hi, x, h) - NormalCdf(p.lo, x, h);
      contrib *= mass;
      if (contrib <= 0.0) break;
    }
    total += contrib;
  }
  return Clamp(total / static_cast<double>(num_centers_), 0.0, 1.0);
}

std::vector<double> KdeEstimator::EstimateBatch(
    std::span<const query::Query> qs) {
  return ParallelEstimateBatch(
      qs, [this](const query::Query& q) { return EstimateOne(q); });
}

void KdeEstimator::TuneBandwidth(std::span<const query::Query> queries,
                                 std::span<const double> truths,
                                 size_t num_rows) {
  IAM_CHECK(queries.size() == truths.size());
  static const double kScales[] = {0.25, 0.5, 1.0, 2.0, 4.0};
  double best_scale = bandwidth_scale_;
  double best_err = std::numeric_limits<double>::infinity();
  for (double scale : kScales) {
    bandwidth_scale_ = scale;
    double err = 0.0;
    for (size_t i = 0; i < queries.size(); ++i) {
      err += query::QError(truths[i], Estimate(queries[i]), num_rows);
    }
    if (err < best_err) {
      best_err = err;
      best_scale = scale;
    }
  }
  bandwidth_scale_ = best_scale;
}

size_t KdeEstimator::SizeBytes() const {
  return (centers_.size() + bandwidth_.size() + 1) * sizeof(double);
}

}  // namespace iam::estimator
