#ifndef IAM_ESTIMATOR_BAYESNET_H_
#define IAM_ESTIMATOR_BAYESNET_H_

#include <vector>

#include "data/table.h"
#include "estimator/estimator.h"

namespace iam::estimator {

// Chow-Liu tree Bayesian network (the paper's BayesNet baseline): columns are
// discretized into equi-depth bins, the maximum-mutual-information spanning
// tree is learned, and range queries are answered exactly on the tree by
// message passing, with boundary bins weighted by their uniform-spread
// overlap with the predicate (the discretization loss the paper observes at
// the max-error tail).
class BayesNetEstimator : public Estimator {
 public:
  struct Options {
    int max_bins = 64;
    double laplace = 0.01;  // CPT smoothing
  };

  BayesNetEstimator(const data::Table& table, const Options& options);

  std::string name() const override { return "bayesnet"; }
  double Estimate(const query::Query& q) override;
  size_t SizeBytes() const override;

  // Parent of each column in the learned tree (-1 for the root). Exposed for
  // tests.
  const std::vector<int>& parents() const { return parents_; }

 private:
  struct NodeStats {
    std::vector<double> edges;     // bin boundaries, size bins+1
    std::vector<double> marginal;  // P(bin), size bins
    std::vector<double> distinct;  // distinct values per bin, size bins
    // cpt[parent_bin * bins + bin] = P(bin | parent_bin); empty for root.
    std::vector<double> cpt;
  };

  // Per-bin fraction of mass that satisfies the predicate (1.0 with no
  // predicate on the column).
  std::vector<double> BinOverlap(int col, const query::Query& q) const;

  // Message from `node` to its parent: for each parent bin, the expected
  // product of indicators in node's subtree.
  std::vector<double> Message(int node, const query::Query& q) const;

  int num_columns_ = 0;
  std::vector<NodeStats> nodes_;
  std::vector<int> parents_;
  std::vector<std::vector<int>> children_;
  int root_ = 0;
};

}  // namespace iam::estimator

#endif  // IAM_ESTIMATOR_BAYESNET_H_
