#ifndef IAM_OPTIMIZER_MINI_OPTIMIZER_H_
#define IAM_OPTIMIZER_MINI_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "estimator/estimator.h"
#include "join/star_schema.h"
#include "query/query.h"
#include "util/random.h"

namespace iam::optimizer {

// A join query over a star schema: a conjunctive filter per table.
// filters[0] applies to the dimension; filters[1 + f] to fact f. Predicates
// use the source table's own column indices.
struct JoinQuery {
  std::vector<query::Query> filters;
};

// Generates join queries by drawing per-table predicates with the paper's
// single-table rules (Section 6.1.3 adapted to JOB-light-style join graphs).
std::vector<JoinQuery> GenerateJoinWorkload(const join::StarSchema& schema,
                                            int num_queries, Rng& rng,
                                            double predicate_prob = 0.45);

// Supplies sub-join selectivities to the optimizer — the role the paper's
// modified Postgres delegates to each external estimator (Figure 5).
// `tables` lists participating tables (0 = dimension, 1 + f = fact f).
class SelectivityProvider {
 public:
  virtual ~SelectivityProvider() = default;
  virtual std::string name() const = 0;
  virtual double Selectivity(const JoinQuery& q,
                             const std::vector<int>& tables) = 0;
};

// Exact star-join selectivities by counting (the oracle; also the ground
// truth for the accuracy experiments).
class OracleProvider : public SelectivityProvider {
 public:
  explicit OracleProvider(const join::StarSchema& schema);
  std::string name() const override { return "oracle"; }
  double Selectivity(const JoinQuery& q,
                     const std::vector<int>& tables) override;

 private:
  const join::StarSchema& schema_;
  // Per fact table, per dimension row: matching fact row indices.
  std::vector<std::vector<std::vector<size_t>>> matches_;
};

// Adapts a single-table estimator trained on the full-join distribution:
// sub-join selectivities are approximated by the selectivity of the same
// predicates under the full join (the fanout-weighting bias this introduces
// is shared by every adapted estimator, so plan rankings stay comparable).
class JoinEstimatorProvider : public SelectivityProvider {
 public:
  // `estimator` must be trained over a table with MaterializeJoin's layout.
  JoinEstimatorProvider(const join::StarSchema& schema,
                        estimator::Estimator* estimator);
  std::string name() const override;
  double Selectivity(const JoinQuery& q,
                     const std::vector<int>& tables) override;

 private:
  std::vector<join::JoinColumnSource> sources_;
  estimator::Estimator* estimator_;
};

// Catalog: base and sub-join cardinalities of the star schema.
class Catalog {
 public:
  explicit Catalog(const join::StarSchema& schema);

  double table_rows(int table) const;  // 0 = dim, 1 + f = fact f
  // Inner-join size of the given table subset (keys only, no filters).
  double SubJoinRows(const std::vector<int>& tables) const;

 private:
  const join::StarSchema& schema_;
  std::vector<double> base_rows_;
  // Per dimension row, per fact: match count.
  std::vector<std::vector<double>> fanout_;  // [dim_row][fact]
};

// A left-deep join plan: table visit order plus its estimated cost.
struct Plan {
  std::vector<int> order;
  double cost = 0.0;
};

// Enumerates all left-deep orders (tables all share the dimension key, so
// every permutation is a valid equi-join plan), costing each with
//   cost = Σ (inputs read + estimated intermediate cardinality)
// and returns the cheapest.
Plan ChoosePlan(const Catalog& catalog, SelectivityProvider& provider,
                const JoinQuery& q);

// Executes the plan with real hash joins over the base tables and returns
// the output cardinality; the caller wraps it in a stopwatch for Figure 5.
struct ExecutionResult {
  double output_rows = 0.0;
  double intermediate_rows = 0.0;  // total materialized across the pipeline
};
ExecutionResult ExecutePlan(const join::StarSchema& schema, const JoinQuery& q,
                            const std::vector<int>& order);

}  // namespace iam::optimizer

#endif  // IAM_OPTIMIZER_MINI_OPTIMIZER_H_
