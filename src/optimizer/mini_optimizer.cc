#include "optimizer/mini_optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "util/macros.h"
#include "util/math_util.h"

namespace iam::optimizer {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

const data::Table& TableOf(const join::StarSchema& schema, int table) {
  return table == 0 ? schema.dim : schema.facts[table - 1];
}

int KeyColumnOf(const join::StarSchema& schema, int table) {
  return table == 0 ? schema.dim_key_col : schema.fact_key_cols[table - 1];
}

bool RowPasses(const data::Table& t, size_t row, const query::Query& q) {
  for (const query::Predicate& p : q.predicates) {
    if (!p.Matches(t.value(row, p.column))) return false;
  }
  return true;
}

// Match lists identical to the join module's internal ones; rebuilt here to
// keep the modules decoupled.
std::vector<std::vector<std::vector<size_t>>> BuildMatches(
    const join::StarSchema& schema) {
  std::unordered_map<double, size_t> key_to_dim;
  for (size_t r = 0; r < schema.dim.num_rows(); ++r) {
    key_to_dim[schema.dim.value(r, schema.dim_key_col)] = r;
  }
  std::vector<std::vector<std::vector<size_t>>> matches(
      schema.num_fact_tables(),
      std::vector<std::vector<size_t>>(schema.dim.num_rows()));
  for (int f = 0; f < schema.num_fact_tables(); ++f) {
    const data::Table& fact = schema.facts[f];
    for (size_t r = 0; r < fact.num_rows(); ++r) {
      const auto it = key_to_dim.find(
          fact.value(r, schema.fact_key_cols[f]));
      if (it != key_to_dim.end()) matches[f][it->second].push_back(r);
    }
  }
  return matches;
}

}  // namespace

std::vector<JoinQuery> GenerateJoinWorkload(const join::StarSchema& schema,
                                            int num_queries, Rng& rng,
                                            double predicate_prob) {
  std::vector<JoinQuery> out;
  out.reserve(num_queries);
  const int num_tables = 1 + schema.num_fact_tables();

  while (static_cast<int>(out.size()) < num_queries) {
    JoinQuery jq;
    jq.filters.resize(num_tables);
    int total_predicates = 0;
    for (int t = 0; t < num_tables; ++t) {
      const data::Table& table = TableOf(schema, t);
      const int key_col = KeyColumnOf(schema, t);
      for (int c = 0; c < table.num_columns(); ++c) {
        if (c == key_col) continue;
        if (rng.Uniform() >= predicate_prob) continue;
        const auto [lo, hi] = table.ColumnRange(c);
        query::Predicate p;
        p.column = c;
        if (table.column(c).type == data::ColumnType::kCategorical) {
          const double v = static_cast<double>(rng.UniformInt(
                               static_cast<uint64_t>(hi - lo) + 1)) +
                           lo;
          switch (rng.UniformInt(3)) {
            case 0:
              p.lo = p.hi = v;
              break;
            case 1:
              p.hi = v;
              break;
            default:
              p.lo = v;
              break;
          }
        } else {
          const double v = rng.Uniform(lo, hi);
          if (rng.UniformInt(2) == 0) {
            p.hi = v;
          } else {
            p.lo = v;
          }
        }
        jq.filters[t].predicates.push_back(p);
        ++total_predicates;
      }
    }
    if (total_predicates == 0) continue;
    out.push_back(std::move(jq));
  }
  return out;
}

OracleProvider::OracleProvider(const join::StarSchema& schema)
    : schema_(schema), matches_(BuildMatches(schema)) {}

double OracleProvider::Selectivity(const JoinQuery& q,
                                   const std::vector<int>& tables) {
  IAM_CHECK(!tables.empty());
  const bool has_dim =
      std::find(tables.begin(), tables.end(), 0) != tables.end();
  std::vector<int> facts;
  for (int t : tables) {
    if (t > 0) facts.push_back(t - 1);
  }

  // Single base table without joins.
  if (facts.empty()) {
    size_t hits = 0;
    for (size_t r = 0; r < schema_.dim.num_rows(); ++r) {
      hits += RowPasses(schema_.dim, r, q.filters[0]) ? 1 : 0;
    }
    return static_cast<double>(hits) /
           static_cast<double>(schema_.dim.num_rows());
  }
  if (!has_dim && facts.size() == 1) {
    const data::Table& fact = schema_.facts[facts[0]];
    size_t hits = 0;
    for (size_t r = 0; r < fact.num_rows(); ++r) {
      hits += RowPasses(fact, r, q.filters[1 + facts[0]]) ? 1 : 0;
    }
    return static_cast<double>(hits) / static_cast<double>(fact.num_rows());
  }

  // Star sub-join: Σ_d [dim ok] Π_f filtered-count / Σ_d Π_f count.
  double numer = 0.0, denom = 0.0;
  for (size_t d = 0; d < schema_.dim.num_rows(); ++d) {
    double unfiltered = 1.0;
    double filtered = 1.0;
    for (int f : facts) {
      const auto& rows = matches_[f][d];
      unfiltered *= static_cast<double>(rows.size());
      if (filtered > 0.0) {
        size_t cnt = 0;
        const data::Table& fact = schema_.facts[f];
        for (size_t r : rows) {
          cnt += RowPasses(fact, r, q.filters[1 + f]) ? 1 : 0;
        }
        filtered *= static_cast<double>(cnt);
      }
    }
    denom += unfiltered;
    if (has_dim && !RowPasses(schema_.dim, d, q.filters[0])) continue;
    numer += filtered;
  }
  return denom > 0.0 ? numer / denom : 0.0;
}

JoinEstimatorProvider::JoinEstimatorProvider(const join::StarSchema& schema,
                                             estimator::Estimator* estimator)
    : sources_(join::JoinColumns(schema)), estimator_(estimator) {
  IAM_CHECK(estimator_ != nullptr);
}

std::string JoinEstimatorProvider::name() const { return estimator_->name(); }

double JoinEstimatorProvider::Selectivity(const JoinQuery& q,
                                          const std::vector<int>& tables) {
  query::Query mapped;
  for (int t : tables) {
    const int source_table = t - 1;  // -1 encodes the dimension
    const query::Query& filter = q.filters[t];
    for (const query::Predicate& p : filter.predicates) {
      for (size_t j = 0; j < sources_.size(); ++j) {
        if (sources_[j].table == source_table &&
            sources_[j].column == p.column) {
          query::Predicate mp = p;
          mp.column = static_cast<int>(j);
          mapped.predicates.push_back(mp);
          break;
        }
      }
    }
  }
  if (mapped.predicates.empty()) return 1.0;
  return estimator_->Estimate(mapped);
}

Catalog::Catalog(const join::StarSchema& schema) : schema_(schema) {
  base_rows_.push_back(static_cast<double>(schema.dim.num_rows()));
  for (const auto& fact : schema.facts) {
    base_rows_.push_back(static_cast<double>(fact.num_rows()));
  }
  const auto matches = BuildMatches(schema);
  fanout_.assign(schema.dim.num_rows(),
                 std::vector<double>(schema.num_fact_tables(), 0.0));
  for (int f = 0; f < schema.num_fact_tables(); ++f) {
    for (size_t d = 0; d < schema.dim.num_rows(); ++d) {
      fanout_[d][f] = static_cast<double>(matches[f][d].size());
    }
  }
}

double Catalog::table_rows(int table) const { return base_rows_[table]; }

double Catalog::SubJoinRows(const std::vector<int>& tables) const {
  std::vector<int> facts;
  for (int t : tables) {
    if (t > 0) facts.push_back(t - 1);
  }
  if (facts.empty()) return base_rows_[0];
  if (facts.size() == 1 &&
      std::find(tables.begin(), tables.end(), 0) == tables.end()) {
    return base_rows_[1 + facts[0]];
  }
  double total = 0.0;
  for (const auto& row : fanout_) {
    double product = 1.0;
    for (int f : facts) {
      product *= row[f];
      if (product == 0.0) break;
    }
    total += product;
  }
  return total;
}

Plan ChoosePlan(const Catalog& catalog, SelectivityProvider& provider,
                const JoinQuery& q) {
  const int num_tables = static_cast<int>(q.filters.size());
  std::vector<int> order(num_tables);
  for (int t = 0; t < num_tables; ++t) order[t] = t;
  std::sort(order.begin(), order.end());

  Plan best;
  best.cost = kInf;
  do {
    double cost = 0.0;
    std::vector<int> prefix;
    double current_card = 0.0;
    for (int i = 0; i < num_tables && cost < kInf; ++i) {
      prefix.push_back(order[i]);
      std::sort(prefix.begin(), prefix.end());
      const double sel = Clamp(provider.Selectivity(q, prefix), 0.0, 1.0);
      const double card = sel * catalog.SubJoinRows(prefix);
      if (i == 0) {
        cost += catalog.table_rows(order[0]) + card;
      } else {
        // Read the probe input and the build input, materialize the output.
        cost += current_card + catalog.table_rows(order[i]) + card;
      }
      current_card = card;
    }
    if (cost < best.cost) {
      best.cost = cost;
      best.order = order;
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

ExecutionResult ExecutePlan(const join::StarSchema& schema, const JoinQuery& q,
                            const std::vector<int>& order) {
  IAM_CHECK(!order.empty());
  ExecutionResult result;

  // An intermediate relation: join key per row plus a payload of all carried
  // attribute values (realistic materialization cost).
  struct Rel {
    std::vector<long> keys;
    std::vector<double> payload;
    int width = 0;
  };

  auto scan = [&](int t) {
    const data::Table& table = TableOf(schema, t);
    const int key_col = KeyColumnOf(schema, t);
    Rel rel;
    rel.width = table.num_columns() - 1;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (!RowPasses(table, r, q.filters[t])) continue;
      rel.keys.push_back(static_cast<long>(table.value(r, key_col)));
      for (int c = 0; c < table.num_columns(); ++c) {
        if (c == key_col) continue;
        rel.payload.push_back(table.value(r, c));
      }
    }
    return rel;
  };

  Rel current = scan(order[0]);
  result.intermediate_rows += static_cast<double>(current.keys.size());

  for (size_t i = 1; i < order.size(); ++i) {
    const Rel build = scan(order[i]);
    // Hash the build side by key.
    std::unordered_map<long, std::vector<size_t>> hash;
    hash.reserve(build.keys.size());
    for (size_t r = 0; r < build.keys.size(); ++r) {
      hash[build.keys[r]].push_back(r);
    }
    Rel next;
    next.width = current.width + build.width;
    for (size_t r = 0; r < current.keys.size(); ++r) {
      const auto it = hash.find(current.keys[r]);
      if (it == hash.end()) continue;
      for (size_t b : it->second) {
        next.keys.push_back(current.keys[r]);
        const double* left = current.payload.data() +
                             static_cast<size_t>(r) * current.width;
        next.payload.insert(next.payload.end(), left, left + current.width);
        const double* right =
            build.payload.data() + b * static_cast<size_t>(build.width);
        next.payload.insert(next.payload.end(), right, right + build.width);
      }
    }
    current = std::move(next);
    result.intermediate_rows += static_cast<double>(current.keys.size());
    if (current.keys.empty()) break;
  }

  result.output_rows = static_cast<double>(current.keys.size());
  return result;
}

}  // namespace iam::optimizer
