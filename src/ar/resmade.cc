#include "ar/resmade.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/math_util.h"
#include "util/serialize.h"
#include "util/stopwatch.h"

namespace iam::ar {
namespace {

// Training and eval-cache instrumentation (DESIGN.md §12). The cache
// counters sit on the ConditionalDistribution hot path: one shard-local
// relaxed add per forward pass, invisible next to the matmuls.
struct ArMetrics {
  obs::Counter& train_steps;
  obs::Counter& train_rows;
  obs::Counter& wtcache_hits;
  obs::Counter& wtcache_misses;
  obs::Gauge& train_loss;
  obs::Gauge& grad_norm;
  obs::Histogram& step_seconds;

  static ArMetrics& Get() {
    static ArMetrics metrics = [] {
      obs::MetricRegistry& reg = obs::MetricRegistry::Global();
      return ArMetrics{
          reg.GetCounter("iam_ar_train_steps_total"),
          reg.GetCounter("iam_ar_train_rows_total"),
          reg.GetCounter("iam_nn_wtcache_hits_total"),
          reg.GetCounter("iam_nn_wtcache_misses_total"),
          reg.GetGauge("iam_ar_train_loss"),
          reg.GetGauge("iam_ar_grad_norm"),
          reg.GetHistogram("iam_ar_train_step_seconds", obs::LatencyBounds()),
      };
    }();
    return metrics;
  }
};

// Hidden-unit degree assignment: cyclic over [1, n-1]. Identical for every
// layer so equal-width layers share degrees and residual additions are valid.
int HiddenDegree(int unit, int num_columns) {
  const int span = std::max(1, num_columns - 1);
  return 1 + (unit % span);
}

// Weight versions are process-global so a workspace reused across model
// instances (e.g. after Deserialize replaced the model) can never mistake a
// stale transposed-weight cache for a fresh one.
uint64_t NextWeightVersion() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::span<const float> BiasSpan(const nn::MaskedLinear& layer) {
  return {layer.bias().value.data(),
          static_cast<size_t>(layer.out_features())};
}

}  // namespace

ResMade::ResMade(std::vector<int> domain_sizes, ResMadeConfig config,
                 uint64_t seed)
    : domains_(std::move(domain_sizes)),
      config_(std::move(config)),
      init_rng_(seed),
      output_([&] {
        // Placeholder; the real output layer is built below once the input
        // and output widths are known. MaskedLinear has no default ctor, so
        // construct a 1x1 layer here and move-assign later is not possible
        // (no assignment); instead compute widths first via a lambda chain.
        return nn::MaskedLinear(1, 1, init_rng_);
      }()) {
  const int n = num_columns();
  IAM_CHECK_MSG(n >= 2, "ResMade requires at least two columns");
  IAM_CHECK_MSG(!config_.hidden_sizes.empty(),
                "ResMade requires at least one hidden layer");
  for (int d : domains_) IAM_CHECK(d >= 1);

  // --- Input/output layout. -------------------------------------------------
  encodings_.resize(n);
  embeddings_.resize(n);
  int in_off = 0;
  int out_off = 0;
  for (int c = 0; c < n; ++c) {
    ColumnEncoding& enc = encodings_[c];
    const int classes = domains_[c] + 1;  // + wildcard token
    enc.one_hot = classes <= config_.one_hot_max_domain;
    enc.width = enc.one_hot ? classes : config_.embedding_dim;
    enc.input_offset = in_off;
    enc.logit_offset = out_off;
    in_off += enc.width;
    out_off += domains_[c];
    if (!enc.one_hot) {
      embeddings_[c] = nn::Parameter(classes, config_.embedding_dim);
      const double bound = 1.0 / std::sqrt(config_.embedding_dim);
      for (int r = 0; r < classes; ++r) {
        for (int k = 0; k < config_.embedding_dim; ++k) {
          embeddings_[c].value.at(r, k) =
              static_cast<float>(init_rng_.Uniform(-bound, bound));
        }
      }
    }
  }
  input_width_ = in_off;
  output_width_ = out_off;

  // --- Hidden stack with MADE masks. ---------------------------------------
  // Degree of every input unit in column block c is c+1 (1-based).
  std::vector<int> input_degree(input_width_);
  for (int c = 0; c < n; ++c) {
    for (int j = 0; j < encodings_[c].width; ++j) {
      input_degree[encodings_[c].input_offset + j] = c + 1;
    }
  }

  int prev_width = input_width_;
  std::vector<int> prev_degree = input_degree;
  for (int layer = 0; layer < static_cast<int>(config_.hidden_sizes.size());
       ++layer) {
    const int width = config_.hidden_sizes[layer];
    hidden_.emplace_back(prev_width, width, init_rng_);
    nn::Matrix mask(width, prev_width);
    std::vector<int> degree(width);
    for (int k = 0; k < width; ++k) {
      degree[k] = HiddenDegree(k, n);
      for (int j = 0; j < prev_width; ++j) {
        mask.at(k, j) = degree[k] >= prev_degree[j] ? 1.0f : 0.0f;
      }
    }
    hidden_.back().SetMask(std::move(mask));
    residual_flags_.push_back(config_.residual && prev_width == width &&
                              layer > 0);
    prev_width = width;
    prev_degree = std::move(degree);
  }

  // --- Output layer: logits block c may read hidden degree <= c. -----------
  output_ = [&] {
    nn::MaskedLinear out(prev_width, output_width_, init_rng_);
    nn::Matrix mask(output_width_, prev_width);
    for (int c = 0; c < n; ++c) {
      for (int j = 0; j < domains_[c]; ++j) {
        const int row = encodings_[c].logit_offset + j;
        for (int k = 0; k < prev_width; ++k) {
          mask.at(row, k) = prev_degree[k] <= c ? 1.0f : 0.0f;
        }
      }
    }
    out.SetMask(std::move(mask));
    return out;
  }();

  BumpWeightVersion();
}

void ResMade::BumpWeightVersion() {
  weight_version_.store(NextWeightVersion(), std::memory_order_release);
}

void ResMade::RefreshTransposedWeights(nn::EvalWorkspace& ws) const {
  const uint64_t version = weight_version_.load(std::memory_order_acquire);
  if (ws.wt_version == version) {
    ArMetrics::Get().wtcache_hits.Add();
    return;
  }
  ArMetrics::Get().wtcache_misses.Add();
  ws.wt.resize(hidden_.size() + 1);
  for (size_t i = 0; i < hidden_.size(); ++i) {
    nn::TransposeInto(hidden_[i].weight().value, ws.wt[i]);
  }
  nn::TransposeInto(output_.weight().value, ws.wt.back());
  ws.wt_version = version;
}

void ResMade::RegisterParameters(nn::Adam& adam) {
  for (int c = 0; c < num_columns(); ++c) {
    if (!encodings_[c].one_hot) adam.Register(&embeddings_[c]);
  }
  for (nn::MaskedLinear& layer : hidden_) {
    adam.Register(&layer.weight());
    adam.Register(&layer.bias());
  }
  adam.Register(&output_.weight());
  adam.Register(&output_.bias());
}

void ResMade::EncodeInput(const std::vector<std::vector<int>>& batch,
                          nn::Matrix& x) const {
  const int b = static_cast<int>(batch.size());
  x.ResizeUninitialized(b, input_width_);
  x.Zero();  // one-hot blocks rely on an all-zero background
  for (int r = 0; r < b; ++r) {
    IAM_DCHECK(static_cast<int>(batch[r].size()) == num_columns());
    float* row = x.row(r);
    for (int c = 0; c < num_columns(); ++c) {
      const ColumnEncoding& enc = encodings_[c];
      const int value = batch[r][c];
      IAM_DCHECK(value >= 0 && value <= domains_[c]);
      if (enc.one_hot) {
        row[enc.input_offset + value] = 1.0f;
      } else {
        const float* emb = embeddings_[c].value.row(value);
        float* dst = row + enc.input_offset;
        for (int k = 0; k < enc.width; ++k) dst[k] = emb[k];
      }
    }
  }
}

void ResMade::EncodeRowSparse(const int* row, nn::SparseRows& sx) const {
  for (int c = 0; c < num_columns(); ++c) {
    const ColumnEncoding& enc = encodings_[c];
    const int value = row[c];
    IAM_DCHECK(value >= 0 && value <= domains_[c]);
    if (enc.one_hot) {
      sx.Push(enc.input_offset + value, 1.0f);
    } else {
      const float* emb = embeddings_[c].value.row(value);
      for (int k = 0; k < enc.width; ++k) {
        sx.Push(enc.input_offset + k, emb[k]);
      }
    }
  }
  sx.EndRow();
}

void ResMade::EncodeInputSparse(const std::vector<std::vector<int>>& batch,
                                nn::SparseRows& sx) const {
  sx.Reset(input_width_);
  for (const std::vector<int>& row : batch) {
    IAM_DCHECK(static_cast<int>(row.size()) == num_columns());
    EncodeRowSparse(row.data(), sx);
  }
}

void ResMade::EncodeInputSparse(EncodedView batch, nn::SparseRows& sx) const {
  IAM_DCHECK(batch.rows == 0 || batch.stride >= num_columns());
  sx.Reset(input_width_);
  for (int r = 0; r < batch.rows; ++r) {
    EncodeRowSparse(batch.data + static_cast<size_t>(r) * batch.stride, sx);
  }
}

const nn::Matrix& ResMade::ForwardHidden(const nn::Matrix& x,
                                         nn::EvalWorkspace& ws) const {
  RefreshTransposedWeights(ws);
  ws.EnsureDepth(hidden_.size());
  const nn::Matrix* current = &x;
  for (size_t i = 0; i < hidden_.size(); ++i) {
    nn::LinearForwardT(*current, ws.wt[i], BiasSpan(hidden_[i]),
                       ws.pre_act[i]);
    ReluForward(ws.pre_act[i], ws.act[i]);
    if (residual_flags_[i]) {
      IAM_DCHECK(ws.act[i].size() == current->size());
      float* a = ws.act[i].data();
      const float* prev = current->data();
      for (size_t k = 0; k < ws.act[i].size(); ++k) a[k] += prev[k];
    }
    current = &ws.act[i];
  }
  return *current;
}

const nn::Matrix& ResMade::ForwardHiddenEval(nn::EvalWorkspace& ws) const {
  RefreshTransposedWeights(ws);
  ws.EnsureDepth(hidden_.size());
  // Layer 0 multiplies only the ~5% nonzero input lanes (one-hot blocks and
  // wildcard tokens dominate the encoded row); every layer fuses the ReLU
  // into the matmul's store, so no pre-activation matrix is ever written.
  nn::SparseLinearForward(ws.sparse_input, ws.wt[0], BiasSpan(hidden_[0]),
                          ws.act[0], /*fuse_relu=*/true);
  const nn::Matrix* current = &ws.act[0];
  for (size_t i = 1; i < hidden_.size(); ++i) {
    nn::LinearReluForwardT(*current, ws.wt[i], BiasSpan(hidden_[i]),
                           ws.act[i]);
    if (residual_flags_[i]) {
      IAM_DCHECK(ws.act[i].size() == current->size());
      float* a = ws.act[i].data();
      const float* prev = current->data();
      for (size_t k = 0; k < ws.act[i].size(); ++k) a[k] += prev[k];
    }
    current = &ws.act[i];
  }
  return *current;
}

void ResMade::Forward(const nn::Matrix& x, nn::EvalWorkspace& ws) const {
  const nn::Matrix& hidden = ForwardHidden(x, ws);
  nn::LinearForwardT(hidden, ws.wt.back(), BiasSpan(output_), ws.output);
}

double ResMade::TrainStep(const std::vector<std::vector<int>>& batch,
                          nn::Adam& adam, Rng& rng) {
  IAM_CHECK(!batch.empty());
  obs::TraceSpan span("ar.train_step");
  Stopwatch step_watch;
  const int b = static_cast<int>(batch.size());
  const int n = num_columns();

  adam.ZeroGrad();

  // Wildcard-skipping: randomly replace input values by the wildcard token.
  // Targets are always the original values.
  std::vector<std::vector<int>>& encoded = train_ctx_.encoded;
  encoded = batch;
  for (auto& row : encoded) {
    for (int c = 0; c < n; ++c) {
      if (rng.Uniform() < config_.wildcard_prob) {
        row[c] = wildcard_token(c);
      }
    }
  }

  nn::EvalWorkspace& ws = train_ctx_.ws;
  EncodeInput(encoded, ws.input);
  Forward(ws.input, ws);

  // Softmax cross-entropy per column block; gradient written into dlogits.
  nn::Matrix dlogits(b, output_width_);
  double total_loss = 0.0;
  std::vector<double> scratch;
  for (int r = 0; r < b; ++r) {
    const float* lrow = ws.output.row(r);
    float* grow = dlogits.row(r);
    for (int c = 0; c < n; ++c) {
      const int off = encodings_[c].logit_offset;
      const int dom = domains_[c];
      scratch.assign(lrow + off, lrow + off + dom);
      SoftmaxInPlace(scratch);
      const int target = batch[r][c];
      IAM_DCHECK(target >= 0 && target < dom);
      total_loss += -std::log(std::max(scratch[target], 1e-12));
      const float scale = 1.0f / static_cast<float>(b);
      for (int j = 0; j < dom; ++j) {
        grow[off + j] = static_cast<float>(scratch[j]) * scale;
      }
      grow[off + target] -= scale;
    }
  }

  // Backward through the stack.
  nn::Matrix d_act;
  nn::Matrix d_pre;
  nn::Matrix d_prev;
  const nn::Matrix& last =
      hidden_.empty() ? ws.input : ws.act[hidden_.size() - 1];
  output_.Backward(last, dlogits, d_act);

  for (int i = static_cast<int>(hidden_.size()) - 1; i >= 0; --i) {
    const nn::Matrix& layer_input = i == 0 ? ws.input : ws.act[i - 1];
    ReluBackward(ws.pre_act[i], d_act, d_pre);
    hidden_[i].Backward(layer_input, d_pre, d_prev);
    if (residual_flags_[i]) {
      // Skip connection routes d_act straight to the layer input as well.
      float* dp = d_prev.data();
      const float* da = d_act.data();
      for (size_t k = 0; k < d_prev.size(); ++k) dp[k] += da[k];
    }
    d_act = std::move(d_prev);
    d_prev = nn::Matrix();
  }

  // d_act now holds the gradient w.r.t. the encoded input: scatter into
  // embedding tables.
  for (int c = 0; c < n; ++c) {
    const ColumnEncoding& enc = encodings_[c];
    if (enc.one_hot) continue;
    for (int r = 0; r < b; ++r) {
      const int value = encoded[r][c];
      float* grad = embeddings_[c].grad.row(value);
      const float* src = d_act.row(r) + enc.input_offset;
      for (int k = 0; k < enc.width; ++k) grad[k] += src[k];
    }
  }

  // Global gradient L2 norm, read before the optimizer consumes the grads.
  // One linear pass over the parameters — cheap next to the batch-sized
  // forward/backward above.
  double grad_sq = 0.0;
  const auto accumulate = [&grad_sq](const nn::Matrix& g) {
    const float* p = g.data();
    for (size_t k = 0; k < g.size(); ++k) {
      grad_sq += static_cast<double>(p[k]) * static_cast<double>(p[k]);
    }
  };
  for (const nn::MaskedLinear& layer : hidden_) {
    accumulate(layer.weight().grad);
    accumulate(layer.bias().grad);
  }
  accumulate(output_.weight().grad);
  accumulate(output_.bias().grad);
  for (const nn::Parameter& emb : embeddings_) {
    if (emb.size() > 0) accumulate(emb.grad);
  }

  adam.Step();
  // The step mutated the weights: invalidate every transposed-weight cache
  // (including train_ctx_'s own, at the top of the next TrainStep).
  BumpWeightVersion();

  const double mean_loss = total_loss / static_cast<double>(b);
  ArMetrics& metrics = ArMetrics::Get();
  metrics.train_steps.Add();
  metrics.train_rows.Add(static_cast<uint64_t>(b));
  metrics.train_loss.Set(mean_loss);
  metrics.grad_norm.Set(std::sqrt(grad_sq));
  metrics.step_seconds.Record(step_watch.ElapsedSeconds());
  return mean_loss;
}

void ResMade::ConditionalDistributionImpl(int col, nn::Matrix& probs,
                                          Context& ctx) const {
  nn::EvalWorkspace& ws = ctx.ws;
  const nn::Matrix& hidden = ForwardHiddenEval(ws);

  // The output layer is evaluated just for `col`'s logits block, which keeps
  // progressive sampling cheap when other columns have large domains
  // (factorized sub-columns can have thousands of logits): the strip kernel
  // runs over the [off, off + dom) column slice of the transposed weights.
  const int dom = domains_[col];
  const int off = encodings_[col].logit_offset;
  const nn::Matrix& wt_out = ws.wt.back();
  const std::span<const float> bias = BiasSpan(output_).subspan(off, dom);
  nn::LinearForwardTSlice(hidden, wt_out.data() + off, wt_out.cols(),
                          wt_out.rows(), dom, bias, ws.output);
  nn::SoftmaxRows(ws.output, probs);
}

void ResMade::ConditionalDistribution(
    const std::vector<std::vector<int>>& inputs, int col, nn::Matrix& probs,
    Context& ctx) const {
  IAM_CHECK(col >= 0 && col < num_columns());
  RefreshTransposedWeights(ctx.ws);
  EncodeInputSparse(inputs, ctx.ws.sparse_input);
  ConditionalDistributionImpl(col, probs, ctx);
}

void ResMade::ConditionalDistribution(EncodedView inputs, int col,
                                      nn::Matrix& probs, Context& ctx) const {
  IAM_CHECK(col >= 0 && col < num_columns());
  RefreshTransposedWeights(ctx.ws);
  EncodeInputSparse(inputs, ctx.ws.sparse_input);
  ConditionalDistributionImpl(col, probs, ctx);
}

void ResMade::ConditionalDistribution(
    const std::vector<std::vector<int>>& inputs, int col,
    nn::Matrix& probs) const {
  Context ctx;
  ConditionalDistribution(inputs, col, probs, ctx);
}

double ResMade::LogProb(const std::vector<int>& tuple, Context& ctx) const {
  IAM_CHECK(static_cast<int>(tuple.size()) == num_columns());
  nn::EvalWorkspace& ws = ctx.ws;
  RefreshTransposedWeights(ws);
  EncodeInputSparse({tuple}, ws.sparse_input);
  const nn::Matrix& hidden = ForwardHiddenEval(ws);
  nn::LinearForwardT(hidden, ws.wt.back(), BiasSpan(output_), ws.output);
  double log_prob = 0.0;
  std::vector<double> scratch;
  const float* lrow = ws.output.row(0);
  for (int c = 0; c < num_columns(); ++c) {
    const int off = encodings_[c].logit_offset;
    const int dom = domains_[c];
    scratch.assign(lrow + off, lrow + off + dom);
    SoftmaxInPlace(scratch);
    log_prob += std::log(std::max(scratch[tuple[c]], 1e-300));
  }
  return log_prob;
}

double ResMade::LogProb(const std::vector<int>& tuple) const {
  Context ctx;
  return LogProb(tuple, ctx);
}

namespace {

void WriteMatrix(std::ostream& out, const nn::Matrix& m) {
  WritePod<int32_t>(out, m.rows());
  WritePod<int32_t>(out, m.cols());
  WriteRaw(out, m.data(), static_cast<size_t>(m.size()));
}

Status ReadMatrixInto(std::istream& in, nn::Matrix& m) {
  int32_t rows = 0, cols = 0;
  IAM_RETURN_IF_ERROR(ReadPod(in, &rows));
  IAM_RETURN_IF_ERROR(ReadPod(in, &cols));
  if (rows != m.rows() || cols != m.cols()) {
    return Status::IoError("matrix shape mismatch in model blob");
  }
  // The destination shape was allocated from the envelope-validated config,
  // so the read length is bounded by trusted dimensions, not by the blob.
  const Status read = ReadRaw(in, m.data(), static_cast<size_t>(m.size()));
  if (!read.ok()) return Status::IoError("truncated matrix in model blob");
  return Status::Ok();
}

}  // namespace

// Envelope identity of a persisted ResMade (util::WriteEnvelope): bump
// kResMadeFormatVersion on any payload layout change so old builds reject new
// files with a clean "unsupported format version" instead of misparsing.
constexpr std::string_view kResMadeMagic = "IAMRMADE";
constexpr uint32_t kResMadeFormatVersion = 1;

void ResMade::Serialize(std::ostream& out) const {
  std::ostringstream payload;
  WriteVector(payload, domains_);
  WriteVector(payload, config_.hidden_sizes);
  WritePod<uint8_t>(payload, config_.residual ? 1 : 0);
  WritePod<double>(payload, config_.wildcard_prob);
  WritePod<int32_t>(payload, config_.one_hot_max_domain);
  WritePod<int32_t>(payload, config_.embedding_dim);

  for (int c = 0; c < num_columns(); ++c) {
    if (!encodings_[c].one_hot) WriteMatrix(payload, embeddings_[c].value);
  }
  for (const nn::MaskedLinear& layer : hidden_) {
    WriteMatrix(payload, layer.weight().value);
    WriteMatrix(payload, layer.bias().value);
  }
  WriteMatrix(payload, output_.weight().value);
  WriteMatrix(payload, output_.bias().value);
  WriteEnvelope(out, kResMadeMagic, kResMadeFormatVersion, payload.str());
}

Result<std::unique_ptr<ResMade>> ResMade::Deserialize(std::istream& in) {
  Result<std::string> payload =
      ReadEnvelope(in, kResMadeMagic, kResMadeFormatVersion);
  if (!payload.ok()) return payload.status();
  std::istringstream body(std::move(payload.value()));

  std::vector<int> domains;
  ResMadeConfig config;
  uint8_t residual = 1;
  IAM_RETURN_IF_ERROR(ReadVector(body, &domains));
  IAM_RETURN_IF_ERROR(ReadVector(body, &config.hidden_sizes));
  IAM_RETURN_IF_ERROR(ReadPod(body, &residual));
  IAM_RETURN_IF_ERROR(ReadPod(body, &config.wildcard_prob));
  IAM_RETURN_IF_ERROR(ReadPod(body, &config.one_hot_max_domain));
  IAM_RETURN_IF_ERROR(ReadPod(body, &config.embedding_dim));
  config.residual = residual != 0;
  if (domains.size() < 2 || config.hidden_sizes.empty()) {
    return Status::IoError("inconsistent ResMade blob");
  }
  for (const int d : domains) {
    if (d < 1 || d > (1 << 24)) {
      return Status::IoError("implausible domain size in ResMade blob");
    }
  }
  for (const int h : config.hidden_sizes) {
    if (h < 1 || h > (1 << 20)) {
      return Status::IoError("implausible hidden size in ResMade blob");
    }
  }
  if (config.embedding_dim < 1 || config.embedding_dim > (1 << 16)) {
    return Status::IoError("implausible embedding dim in ResMade blob");
  }

  auto made = std::make_unique<ResMade>(domains, config, /*seed=*/0);
  for (int c = 0; c < made->num_columns(); ++c) {
    if (!made->encodings_[c].one_hot) {
      IAM_RETURN_IF_ERROR(ReadMatrixInto(body, made->embeddings_[c].value));
    }
  }
  for (nn::MaskedLinear& layer : made->hidden_) {
    IAM_RETURN_IF_ERROR(ReadMatrixInto(body, layer.weight().value));
    IAM_RETURN_IF_ERROR(ReadMatrixInto(body, layer.bias().value));
  }
  IAM_RETURN_IF_ERROR(ReadMatrixInto(body, made->output_.weight().value));
  IAM_RETURN_IF_ERROR(ReadMatrixInto(body, made->output_.bias().value));
  // The parameters changed under the model: stale transposed-weight caches
  // in any reused workspace must miss against the new version.
  made->BumpWeightVersion();
  return made;
}

size_t ResMade::ParameterCount() const {
  size_t count = 0;
  for (int c = 0; c < num_columns(); ++c) {
    if (!encodings_[c].one_hot) count += embeddings_[c].size();
  }
  for (const nn::MaskedLinear& layer : hidden_) count += layer.ParameterCount();
  count += output_.ParameterCount();
  return count;
}

}  // namespace iam::ar
