#ifndef IAM_AR_RESMADE_H_
#define IAM_AR_RESMADE_H_

#include <atomic>
#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <vector>

#include "nn/adam.h"
#include "nn/eval_workspace.h"
#include "util/status.h"
#include "nn/layers.h"
#include "nn/matrix.h"
#include "util/random.h"

namespace iam::ar {

// Non-owning view of a row-major encoded batch: row r is the num_columns()
// ints starting at data + r * stride (stride >= num_columns lets callers
// point straight into a wider pooled sample matrix without gathering into
// vector<vector<int>> first). This is the input shape of the pooled
// cross-query sampler's one-GEMM-per-column rounds (DESIGN.md §14).
struct EncodedView {
  const int* data = nullptr;
  int rows = 0;
  int stride = 0;
};

// Configuration of the ResMADE autoregressive density model. Defaults follow
// the paper (Section 6.1.2): four hidden layers of 256-128-128-256 units,
// residual connections between equal-width layers, wildcard-skipping inputs.
struct ResMadeConfig {
  std::vector<int> hidden_sizes = {256, 128, 128, 256};
  bool residual = true;
  // Per-column probability of replacing the input value with the wildcard
  // token during training (Naru's wildcard skipping).
  double wildcard_prob = 0.25;
  // Columns whose (domain size + 1) exceeds this threshold are fed through a
  // learned embedding instead of a one-hot block.
  int one_hot_max_domain = 96;
  int embedding_dim = 32;
};

// MADE (Germain et al.) with residual connections, specialized for tabular
// autoregressive likelihoods: given encoded tuples (one integer per column),
// a single forward pass produces, for every column i, the logits of
// P(A_i | A_1..A_{i-1}) under the left-to-right column order.
//
// All masks use deterministic cyclic hidden degrees, identical across
// equal-width layers, so residual additions preserve the autoregressive
// property.
//
// Threading model: after construction (or Deserialize), the parameters are
// mutated only by TrainStep. Every evaluation entry point is const and writes
// its scratch into a caller-supplied Context, so any number of threads may
// call ConditionalDistribution / LogProb concurrently on one shared model as
// long as each thread uses its own Context. TrainStep keeps a private
// training context and must not run concurrently with evaluation.
class ResMade {
 public:
  // Per-caller evaluation scratch: activation buffers plus the encoded-batch
  // cache the training step needs for its embedding backward pass. A Context
  // starts empty, grows on first use, and is reusable across calls; it holds
  // no model state, so contexts are freely created per thread.
  struct Context {
    nn::EvalWorkspace ws;
    // Wildcard-masked encoded batch (training only; embedding backward).
    std::vector<std::vector<int>> encoded;
  };

  ResMade(std::vector<int> domain_sizes, ResMadeConfig config, uint64_t seed);

  ResMade(const ResMade&) = delete;
  ResMade& operator=(const ResMade&) = delete;

  int num_columns() const { return static_cast<int>(domains_.size()); }
  int domain_size(int col) const { return domains_[col]; }
  // The wildcard token is one past the last real value of the column.
  int wildcard_token(int col) const { return domains_[col]; }

  // Registers every trainable parameter with the optimizer.
  void RegisterParameters(nn::Adam& adam);

  // One SGD step on a mini-batch of encoded tuples. Wildcard masking is
  // applied internally with `rng`. Returns the mean cross-entropy (nats per
  // tuple). The caller's optimizer must have this model's parameters
  // registered; gradients are zeroed at entry and the step is applied.
  // Uses the model's private training context — do not call concurrently
  // with other TrainStep or evaluation calls.
  double TrainStep(const std::vector<std::vector<int>>& batch, nn::Adam& adam,
                   Rng& rng);

  // Evaluates the conditional distribution of `col` for each input row.
  // inputs[r][c] must be a valid value or the wildcard token; only columns
  // before `col` influence the result. Writes probs as [batch, D_col].
  // Reentrant: concurrent callers must pass distinct contexts.
  void ConditionalDistribution(const std::vector<std::vector<int>>& inputs,
                               int col, nn::Matrix& probs,
                               Context& ctx) const;
  // Convenience overload with a throwaway context (tests, examples).
  void ConditionalDistribution(const std::vector<std::vector<int>>& inputs,
                               int col, nn::Matrix& probs) const;
  // Batched overload over a flat row-major view — same semantics and
  // bit-identical per-row results (every kernel on the eval path processes
  // batch rows independently in fixed index order), so the pooled sampler
  // can slice one megabatch into arbitrary row ranges and still reproduce
  // the per-query path exactly.
  void ConditionalDistribution(EncodedView inputs, int col, nn::Matrix& probs,
                               Context& ctx) const;

  // log \hat P(tuple) = sum_i log \hat P(t_i | t_<i). For tests/examples.
  double LogProb(const std::vector<int>& tuple, Context& ctx) const;
  double LogProb(const std::vector<int>& tuple) const;

  size_t ParameterCount() const;
  size_t SizeBytes() const { return ParameterCount() * sizeof(float); }

  // Model persistence: architecture + parameter values (optimizer moments
  // are not preserved; reload for inference or fine-tuning from scratch).
  void Serialize(std::ostream& out) const;
  static Result<std::unique_ptr<ResMade>> Deserialize(std::istream& in);

 private:
  struct ColumnEncoding {
    bool one_hot;
    int width;        // block width in the input vector
    int input_offset; // starting index of the block
    int logit_offset; // starting index of the logits block in the output
  };

  // Builds the input matrix [batch, input_width_] from encoded values.
  void EncodeInput(const std::vector<std::vector<int>>& batch,
                   nn::Matrix& x) const;
  // Sparse encoding of the same batch: per row, the (lane, value) nonzeros —
  // one entry per one-hot column plus embedding_dim entries per embedded
  // column, i.e. typically ~5% of input_width_. Lane indices are strictly
  // increasing within a row.
  void EncodeInputSparse(const std::vector<std::vector<int>>& batch,
                         nn::SparseRows& sx) const;
  void EncodeInputSparse(EncodedView batch, nn::SparseRows& sx) const;
  // Appends one encoded row (num_columns() ints) to `sx` — the shared body
  // of both EncodeInputSparse overloads.
  void EncodeRowSparse(const int* row, nn::SparseRows& sx) const;

  // Post-encode tail of ConditionalDistribution: hidden stack over
  // ctx.ws.sparse_input, `col`'s logits slice, row-wise softmax into probs.
  void ConditionalDistributionImpl(int col, nn::Matrix& probs,
                                   Context& ctx) const;

  // Rebuilds the workspace's transposed-weight cache (hidden layers plus the
  // output layer) when it does not match weight_version_. Cheap when fresh.
  void RefreshTransposedWeights(nn::EvalWorkspace& ws) const;
  // Called after every weight mutation (construction, TrainStep,
  // Deserialize); draws from a process-global counter so stale caches are
  // detected even across model instances.
  void BumpWeightVersion();

  // Full forward pass through the hidden stack and output layer, writing
  // every activation into `ws` (training path: pre-activations retained).
  void Forward(const nn::Matrix& x, nn::EvalWorkspace& ws) const;
  // Hidden stack only; returns the final hidden activation (owned by `ws`).
  const nn::Matrix& ForwardHidden(const nn::Matrix& x,
                                  nn::EvalWorkspace& ws) const;
  // Inference-path hidden stack over ws.sparse_input: sparse first layer,
  // fused Linear+ReLU throughout, no pre-activation materialization.
  const nn::Matrix& ForwardHiddenEval(nn::EvalWorkspace& ws) const;

  std::vector<int> domains_;
  ResMadeConfig config_;
  Rng init_rng_;

  std::vector<ColumnEncoding> encodings_;
  int input_width_ = 0;
  int output_width_ = 0;

  // Embedding tables; empty Parameter for one-hot columns.
  std::vector<nn::Parameter> embeddings_;  // [D_c + 1, embedding_dim]

  std::vector<nn::MaskedLinear> hidden_;
  std::vector<bool> residual_flags_;  // hidden_[i] adds its input when true
  nn::MaskedLinear output_;

  // Monotone token identifying the current weight values; workspaces compare
  // it against their transposed-weight caches. See RefreshTransposedWeights.
  // Atomic because eval threads load it on every forward pass while another
  // thread may be training a *different* model (all versions come from one
  // process-global counter); release/acquire ordering makes the token itself
  // race-free. Weight *values* are still protected only by the documented
  // contract: TrainStep must not overlap evaluation on the same model.
  std::atomic<uint64_t> weight_version_{0};

  // Private scratch for TrainStep (activation caches for the backward pass).
  Context train_ctx_;
};

}  // namespace iam::ar

#endif  // IAM_AR_RESMADE_H_
