#include "bucketize/domain_reducer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "bucketize/gmm_reducer.h"
#include "bucketize/laplace_reducer.h"
#include "util/macros.h"
#include "util/serialize.h"

namespace iam::bucketize {

double DomainReducer::RepresentativeValue(int bucket, double lo,
                                          double hi) const {
  // Default: midpoint of the intersection of the bucket's own support with
  // [lo, hi], probed via RangeMass on a bisection. Subclasses override with
  // cheaper exact forms; this generic fallback only needs RangeMass.
  (void)bucket;
  if (!std::isfinite(lo) || !std::isfinite(hi)) {
    // Without finite bounds there is no generic answer; subclasses override.
    return std::isfinite(lo) ? lo : (std::isfinite(hi) ? hi : 0.0);
  }
  return 0.5 * (lo + hi);
}

namespace {

// Shared base for reducers whose buckets are contiguous intervals
// [edges[k], edges[k+1]) with uniform mass inside and weight weights[k].
class IntervalReducer : public DomainReducer {
 public:
  IntervalReducer(std::string name, std::vector<double> edges,
                  std::vector<double> weights)
      : name_(std::move(name)),
        edges_(std::move(edges)),
        weights_(std::move(weights)) {
    IAM_CHECK(edges_.size() == weights_.size() + 1);
    IAM_CHECK(!weights_.empty());
    IAM_CHECK(std::is_sorted(edges_.begin(), edges_.end()));
  }

  std::string name() const override { return name_; }
  int num_buckets() const override {
    return static_cast<int>(weights_.size());
  }

  int Assign(double x) const override {
    // upper_bound on the left edges: the bucket whose interval contains x;
    // values outside the observed domain clamp to the first/last bucket.
    const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
    long idx = (it - edges_.begin()) - 1;
    idx = std::clamp<long>(idx, 0, num_buckets() - 1);
    return static_cast<int>(idx);
  }

  std::vector<double> RangeMass(double lo, double hi) const override {
    std::vector<double> mass(weights_.size(), 0.0);
    if (lo > hi) return mass;
    for (size_t k = 0; k < weights_.size(); ++k) {
      const double bl = edges_[k];
      const double bh = edges_[k + 1];
      const double inter_lo = std::max(lo, bl);
      const double inter_hi = std::min(hi, bh);
      if (inter_hi < inter_lo) continue;
      if (bh > bl) {
        mass[k] = (inter_hi - inter_lo) / (bh - bl);
      } else {
        // Degenerate (single-value) bucket: fully covered if it intersects.
        mass[k] = 1.0;
      }
      mass[k] = std::min(mass[k], 1.0);
    }
    return mass;
  }

  size_t SizeBytes() const override {
    return (edges_.size() + weights_.size()) * sizeof(double);
  }

  double RepresentativeValue(int bucket, double lo, double hi) const override {
    const double bl = std::max(lo, edges_[bucket]);
    const double bh = std::min(hi, edges_[bucket + 1]);
    if (bh < bl) return 0.5 * (edges_[bucket] + edges_[bucket + 1]);
    return 0.5 * (bl + bh);  // uniform inside the bucket
  }

  void Serialize(std::ostream& out) const override {
    WriteString(out, "interval");
    WriteString(out, name_);
    WriteVector(out, edges_);
    WriteVector(out, weights_);
  }

 protected:
  std::string name_;
  std::vector<double> edges_;
  std::vector<double> weights_;
};

std::vector<double> SortedCopy(std::span<const double> data) {
  std::vector<double> xs(data.begin(), data.end());
  std::sort(xs.begin(), xs.end());
  return xs;
}

// Uniform mixture model reducer: buckets are the true extents of 1-D
// clusters, which may leave gaps between them (unlike the tiling
// IntervalReducer). Values in a gap assign to the nearest bucket.
class UmmReducer : public DomainReducer {
 public:
  UmmReducer(std::vector<double> lo, std::vector<double> hi,
             std::vector<double> weights)
      : lo_(std::move(lo)), hi_(std::move(hi)), weights_(std::move(weights)) {
    IAM_CHECK(lo_.size() == hi_.size());
    IAM_CHECK(lo_.size() == weights_.size());
    IAM_CHECK(!lo_.empty());
  }

  std::string name() const override { return "umm"; }
  int num_buckets() const override { return static_cast<int>(lo_.size()); }

  int Assign(double x) const override {
    int best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (int k = 0; k < num_buckets(); ++k) {
      if (x >= lo_[k] && x <= hi_[k]) return k;
      const double dist = x < lo_[k] ? lo_[k] - x : x - hi_[k];
      if (dist < best_dist) {
        best_dist = dist;
        best = k;
      }
    }
    return best;
  }

  std::vector<double> RangeMass(double lo, double hi) const override {
    std::vector<double> mass(lo_.size(), 0.0);
    if (lo > hi) return mass;
    for (size_t k = 0; k < lo_.size(); ++k) {
      const double inter_lo = std::max(lo, lo_[k]);
      const double inter_hi = std::min(hi, hi_[k]);
      if (inter_hi < inter_lo) continue;
      const double width = hi_[k] - lo_[k];
      mass[k] = width > 0.0 ? std::min(1.0, (inter_hi - inter_lo) / width)
                            : 1.0;
    }
    return mass;
  }

  size_t SizeBytes() const override {
    return 3 * lo_.size() * sizeof(double);
  }

  double RepresentativeValue(int bucket, double lo, double hi) const override {
    const double bl = std::max(lo, lo_[bucket]);
    const double bh = std::min(hi, hi_[bucket]);
    if (bh < bl) return 0.5 * (lo_[bucket] + hi_[bucket]);
    return 0.5 * (bl + bh);
  }

  void Serialize(std::ostream& out) const override {
    WriteString(out, "umm");
    WriteVector(out, lo_);
    WriteVector(out, hi_);
    WriteVector(out, weights_);
  }

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
  std::vector<double> weights_;
};

}  // namespace

std::unique_ptr<DomainReducer> MakeEquiDepthReducer(
    std::span<const double> data, int num_buckets) {
  IAM_CHECK(!data.empty());
  IAM_CHECK(num_buckets >= 1);
  std::vector<double> xs = SortedCopy(data);
  const size_t n = xs.size();
  std::vector<double> edges;
  edges.reserve(num_buckets + 1);
  edges.push_back(xs.front());
  for (int k = 1; k < num_buckets; ++k) {
    const size_t idx = static_cast<size_t>(
        static_cast<double>(k) / num_buckets * static_cast<double>(n - 1));
    edges.push_back(xs[idx]);
  }
  edges.push_back(std::nextafter(xs.back(),
                                 std::numeric_limits<double>::infinity()));
  // De-duplicate edges (heavy hitters can collapse quantiles).
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  const int buckets = static_cast<int>(edges.size()) - 1;
  IAM_CHECK(buckets >= 1);

  // Weight = exact fraction of data per bucket.
  std::vector<double> weights(buckets, 0.0);
  for (int k = 0; k < buckets; ++k) {
    const auto first = std::lower_bound(xs.begin(), xs.end(), edges[k]);
    const auto last = std::lower_bound(xs.begin(), xs.end(), edges[k + 1]);
    weights[k] = static_cast<double>(last - first) / static_cast<double>(n);
  }
  return std::make_unique<IntervalReducer>("equidepth", std::move(edges),
                                           std::move(weights));
}

std::unique_ptr<DomainReducer> MakeSplineReducer(std::span<const double> data,
                                                 int num_buckets) {
  IAM_CHECK(!data.empty());
  IAM_CHECK(num_buckets >= 1);
  std::vector<double> xs = SortedCopy(data);
  const size_t n = xs.size();

  // Empirical CDF points (value, rank/n). Greedy knot insertion: start with
  // the endpoints, repeatedly add the data point with the largest vertical
  // distance to the current piecewise-linear interpolant.
  auto cdf = [&](size_t i) {
    return static_cast<double>(i + 1) / static_cast<double>(n);
  };

  std::vector<size_t> knots = {0, n - 1};
  while (static_cast<int>(knots.size()) - 1 < num_buckets) {
    double worst_err = -1.0;
    size_t worst_idx = 0;
    for (size_t seg = 0; seg + 1 < knots.size(); ++seg) {
      const size_t a = knots[seg];
      const size_t b = knots[seg + 1];
      if (b - a < 2) continue;
      const double xa = xs[a], xb = xs[b];
      const double ya = cdf(a), yb = cdf(b);
      // Sample the segment at up to 64 interior points for speed.
      const size_t step = std::max<size_t>(1, (b - a) / 64);
      for (size_t i = a + 1; i < b; i += step) {
        double interp = ya;
        if (xb > xa) interp = ya + (yb - ya) * (xs[i] - xa) / (xb - xa);
        const double err = std::abs(cdf(i) - interp);
        if (err > worst_err) {
          worst_err = err;
          worst_idx = i;
        }
      }
    }
    if (worst_err <= 0.0) break;  // CDF already exactly piecewise linear
    knots.insert(std::upper_bound(knots.begin(), knots.end(), worst_idx),
                 worst_idx);
  }

  std::vector<double> edges;
  std::vector<double> weights;
  edges.push_back(xs[knots[0]]);
  double prev_cdf = 0.0;
  for (size_t seg = 1; seg < knots.size(); ++seg) {
    const double edge =
        seg + 1 == knots.size()
            ? std::nextafter(xs.back(), std::numeric_limits<double>::infinity())
            : xs[knots[seg]];
    if (edge <= edges.back()) continue;
    edges.push_back(edge);
    const double c = cdf(knots[seg]);
    weights.push_back(c - prev_cdf);
    prev_cdf = c;
  }
  if (weights.empty()) {
    edges = {xs.front(),
             std::nextafter(xs.back(), std::numeric_limits<double>::infinity())};
    weights = {1.0};
  }
  return std::make_unique<IntervalReducer>("spline", std::move(edges),
                                           std::move(weights));
}

std::unique_ptr<DomainReducer> MakeUmmReducer(std::span<const double> data,
                                              int num_buckets, Rng& rng) {
  IAM_CHECK(!data.empty());
  IAM_CHECK(num_buckets >= 1);

  // Subsample for Lloyd iterations.
  const size_t kMaxFit = 20000;
  std::vector<double> xs;
  if (data.size() > kMaxFit) {
    xs.reserve(kMaxFit);
    for (size_t i = 0; i < kMaxFit; ++i) {
      xs.push_back(data[rng.UniformInt(data.size())]);
    }
  } else {
    xs.assign(data.begin(), data.end());
  }
  std::sort(xs.begin(), xs.end());
  const size_t n = xs.size();

  // 1-D k-means via Lloyd on sorted data (centers stay sorted).
  const int k = std::min<int>(num_buckets, static_cast<int>(n));
  std::vector<double> centers(k);
  for (int j = 0; j < k; ++j) {
    centers[j] = xs[(n - 1) * (2 * j + 1) / (2 * k)];
  }
  std::vector<size_t> boundary(k + 1);  // cluster j covers [boundary[j], boundary[j+1})
  for (int iter = 0; iter < 30; ++iter) {
    boundary[0] = 0;
    boundary[k] = n;
    for (int j = 1; j < k; ++j) {
      const double mid = 0.5 * (centers[j - 1] + centers[j]);
      boundary[j] = std::lower_bound(xs.begin(), xs.end(), mid) - xs.begin();
      boundary[j] = std::max(boundary[j], boundary[j - 1]);
    }
    bool moved = false;
    for (int j = 0; j < k; ++j) {
      if (boundary[j + 1] <= boundary[j]) continue;
      double sum = 0.0;
      for (size_t i = boundary[j]; i < boundary[j + 1]; ++i) sum += xs[i];
      const double c = sum / static_cast<double>(boundary[j + 1] - boundary[j]);
      if (std::abs(c - centers[j]) > 1e-12) moved = true;
      centers[j] = c;
    }
    if (!moved) break;
  }

  // Each non-empty cluster becomes a uniform bucket over its own extent;
  // clusters do not tile the domain, so gaps between modes carry no mass.
  std::vector<double> lo, hi, weights;
  for (int j = 0; j < k; ++j) {
    const size_t end = boundary[j + 1];
    if (end <= boundary[j]) continue;
    lo.push_back(xs[boundary[j]]);
    hi.push_back(xs[end - 1]);
    weights.push_back(static_cast<double>(end - boundary[j]) /
                      static_cast<double>(n));
  }
  if (lo.empty()) {
    lo = {xs.front()};
    hi = {xs.back()};
    weights = {1.0};
  }
  return std::make_unique<UmmReducer>(std::move(lo), std::move(hi),
                                      std::move(weights));
}

Result<std::unique_ptr<DomainReducer>> DomainReducer::Deserialize(
    std::istream& in) {
  std::string tag;
  IAM_RETURN_IF_ERROR(ReadString(in, &tag));
  if (tag == "interval") {
    std::string name;
    std::vector<double> edges, weights;
    IAM_RETURN_IF_ERROR(ReadString(in, &name));
    IAM_RETURN_IF_ERROR(ReadVector(in, &edges));
    IAM_RETURN_IF_ERROR(ReadVector(in, &weights));
    if (edges.size() != weights.size() + 1 || weights.empty()) {
      return Status::IoError("inconsistent interval reducer blob");
    }
    return std::unique_ptr<DomainReducer>(std::make_unique<IntervalReducer>(
        std::move(name), std::move(edges), std::move(weights)));
  }
  if (tag == "umm") {
    std::vector<double> lo, hi, weights;
    IAM_RETURN_IF_ERROR(ReadVector(in, &lo));
    IAM_RETURN_IF_ERROR(ReadVector(in, &hi));
    IAM_RETURN_IF_ERROR(ReadVector(in, &weights));
    if (lo.size() != hi.size() || lo.size() != weights.size() || lo.empty()) {
      return Status::IoError("inconsistent umm reducer blob");
    }
    return std::unique_ptr<DomainReducer>(std::make_unique<UmmReducer>(
        std::move(lo), std::move(hi), std::move(weights)));
  }
  if (tag == "laplace") {
    std::vector<double> logits, locations, scales;
    IAM_RETURN_IF_ERROR(ReadVector(in, &logits));
    IAM_RETURN_IF_ERROR(ReadVector(in, &locations));
    IAM_RETURN_IF_ERROR(ReadVector(in, &scales));
    if (logits.empty() || logits.size() != locations.size() ||
        locations.size() != scales.size()) {
      return Status::IoError("inconsistent laplace reducer blob");
    }
    gmm::LaplaceMixture1D mixture(static_cast<int>(logits.size()));
    for (size_t j = 0; j < logits.size(); ++j) {
      if (scales[j] <= 0.0) return Status::IoError("bad laplace scale");
      mixture.SetComponent(static_cast<int>(j), logits[j], locations[j],
                           scales[j]);
    }
    return std::unique_ptr<DomainReducer>(
        std::make_unique<LaplaceReducer>(std::move(mixture)));
  }
  if (tag == "gmm") {
    int32_t samples = 0;
    uint8_t exact = 0;
    IAM_RETURN_IF_ERROR(ReadPod(in, &samples));
    IAM_RETURN_IF_ERROR(ReadPod(in, &exact));
    Result<gmm::Gmm1D> gmm = gmm::Gmm1D::Deserialize(in);
    if (!gmm.ok()) return gmm.status();
    return std::unique_ptr<DomainReducer>(std::make_unique<GmmReducer>(
        std::move(gmm.value()), samples, exact != 0,
        /*seed=*/0xC0FFEEull));
  }
  return Status::IoError("unknown reducer tag '" + tag + "'");
}

}  // namespace iam::bucketize
