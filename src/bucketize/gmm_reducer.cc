#include "bucketize/gmm_reducer.h"

#include "util/serialize.h"

namespace iam::bucketize {

GmmReducer::GmmReducer(gmm::Gmm1D gmm, int samples_per_component, bool exact,
                       uint64_t seed)
    : gmm_(std::move(gmm)),
      samples_per_component_(samples_per_component),
      exact_(exact) {
  if (!exact_) RefreshSamples(seed);
}

void GmmReducer::RefreshSamples(uint64_t seed) {
  if (exact_) return;
  Rng rng(seed);
  samples_.emplace(gmm_, samples_per_component_, rng);
}

std::vector<double> GmmReducer::RangeMass(double lo, double hi) const {
  if (exact_) return gmm::ExactRangeMass(gmm_, lo, hi);
  return samples_->RangeMass(lo, hi);
}

void GmmReducer::Serialize(std::ostream& out) const {
  WriteString(out, "gmm");
  WritePod<int32_t>(out, samples_per_component_);
  WritePod<uint8_t>(out, exact_ ? 1 : 0);
  gmm_.Serialize(out);
}

}  // namespace iam::bucketize
