#include "bucketize/gmm_reducer.h"

#include "obs/metrics.h"
#include "util/serialize.h"

namespace iam::bucketize {
namespace {

// P̂_GMM(R_i) evaluation count (Section 4.2) — one per RangeMass call, i.e.
// per (query predicate, progressive-sampling step) pair on the hot path.
obs::Counter& RangeMassEvals() {
  static obs::Counter& counter =
      obs::MetricRegistry::Global().GetCounter("iam_gmm_range_mass_evals_total");
  return counter;
}

}  // namespace

GmmReducer::GmmReducer(gmm::Gmm1D gmm, int samples_per_component, bool exact,
                       uint64_t seed)
    : gmm_(std::move(gmm)),
      samples_per_component_(samples_per_component),
      exact_(exact) {
  if (!exact_) RefreshSamples(seed);
}

void GmmReducer::RefreshSamples(uint64_t seed) {
  if (exact_) return;
  Rng rng(seed);
  samples_.emplace(gmm_, samples_per_component_, rng);
}

std::vector<double> GmmReducer::RangeMass(double lo, double hi) const {
  RangeMassEvals().Add();
  if (exact_) return gmm::ExactRangeMass(gmm_, lo, hi);
  return samples_->RangeMass(lo, hi);
}

void GmmReducer::Serialize(std::ostream& out) const {
  WriteString(out, "gmm");
  WritePod<int32_t>(out, samples_per_component_);
  WritePod<uint8_t>(out, exact_ ? 1 : 0);
  gmm_.Serialize(out);
}

}  // namespace iam::bucketize
