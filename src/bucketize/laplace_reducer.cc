#include "bucketize/laplace_reducer.h"

#include <algorithm>
#include <cmath>

#include "util/serialize.h"

namespace iam::bucketize {

void LaplaceReducer::Serialize(std::ostream& out) const {
  WriteString(out, "laplace");
  const int k = mixture_.num_components();
  std::vector<double> logits(k), locations(k), scales(k);
  for (int j = 0; j < k; ++j) {
    // Reconstructible parameterization: normalized weights re-enter as
    // log-weights, which softmax maps back to the same distribution.
    logits[j] = std::log(std::max(mixture_.weight(j), 1e-300));
    locations[j] = mixture_.location(j);
    scales[j] = mixture_.scale(j);
  }
  WriteVector(out, logits);
  WriteVector(out, locations);
  WriteVector(out, scales);
}

}  // namespace iam::bucketize
