#ifndef IAM_BUCKETIZE_DOMAIN_REDUCER_H_
#define IAM_BUCKETIZE_DOMAIN_REDUCER_H_

#include <istream>
#include <memory>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace iam::bucketize {

// A domain reducer maps a continuous attribute onto a small integer domain
// [0, num_buckets) and can report, for a range R = [lo, hi], the vector
// \hat P(R) whose k-th entry is the fraction of bucket k's probability mass
// falling inside R. That vector is exactly the bias-correction term of IAM's
// unbiased progressive sampler (Section 5.2), so any reducer implementing
// this interface can be plugged into IAM — the paper's GMM, and the
// Section 6.6 alternatives (equi-depth histogram, spline histogram, UMM).
class DomainReducer {
 public:
  virtual ~DomainReducer() = default;

  virtual std::string name() const = 0;
  virtual int num_buckets() const = 0;

  // Reduced attribute value for x.
  virtual int Assign(double x) const = 0;

  // Per-bucket mass of [lo, hi]; entries in [0, 1].
  virtual std::vector<double> RangeMass(double lo, double hi) const = 0;

  // Expected attribute value of bucket k restricted to [lo, hi] — the
  // conditional mean used by the approximate-aggregation extension (AVG/SUM,
  // the paper's future work). Interval reducers return the midpoint of the
  // intersection; the GMM reducer returns the truncated-normal mean.
  virtual double RepresentativeValue(int bucket, double lo, double hi) const;

  // Storage footprint, for the model-size experiments.
  virtual size_t SizeBytes() const = 0;

  // Model persistence: writes a self-describing binary blob restorable with
  // Deserialize() — no access to the original data required.
  virtual void Serialize(std::ostream& out) const = 0;
  static Result<std::unique_ptr<DomainReducer>> Deserialize(std::istream& in);

  // --- Joint-training hooks (Section 4.3). ----------------------------------
  // Trainable reducers (the mixture models) take SGD steps inside the AR
  // model's mini-batch loop; static reducers (histograms, splines) are built
  // once and ignore these.
  virtual bool trainable() const { return false; }
  // One SGD step on a batch of raw attribute values; returns the mean NLL.
  virtual double TrainStep(std::span<const double> batch) {
    (void)batch;
    return 0.0;
  }
  // Called after each epoch (e.g. to refresh Monte-Carlo range masses).
  virtual void PostEpoch(uint64_t seed) { (void)seed; }
};

// Equi-depth histogram: bucket boundaries at sample quantiles, uniform
// distribution assumed inside each bucket.
std::unique_ptr<DomainReducer> MakeEquiDepthReducer(
    std::span<const double> data, int num_buckets);

// Spline-based histogram (Neumann & Michel): piecewise-linear approximation
// of the empirical CDF with knots inserted greedily at the point of maximum
// interpolation error; each CDF segment is one bucket.
std::unique_ptr<DomainReducer> MakeSplineReducer(std::span<const double> data,
                                                 int num_buckets);

// Uniform mixture model: 1-D Lloyd clustering of a sample; each cluster
// becomes a uniform bucket over its extent, weighted by its population.
std::unique_ptr<DomainReducer> MakeUmmReducer(std::span<const double> data,
                                              int num_buckets, Rng& rng);

}  // namespace iam::bucketize

#endif  // IAM_BUCKETIZE_DOMAIN_REDUCER_H_
