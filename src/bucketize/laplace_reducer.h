#ifndef IAM_BUCKETIZE_LAPLACE_REDUCER_H_
#define IAM_BUCKETIZE_LAPLACE_REDUCER_H_

#include "bucketize/domain_reducer.h"
#include "gmm/laplace.h"

namespace iam::bucketize {

// DomainReducer over a 1-D Laplace mixture — the paper's "other mixture
// models" future work. Range masses use the closed-form Laplace CDF (no
// Monte-Carlo needed), and the mixture trains jointly with the AR model via
// the same SGD hooks as the GMM.
class LaplaceReducer : public DomainReducer {
 public:
  explicit LaplaceReducer(gmm::LaplaceMixture1D mixture)
      : mixture_(std::move(mixture)) {}

  std::string name() const override { return "laplace"; }
  int num_buckets() const override { return mixture_.num_components(); }
  int Assign(double x) const override { return mixture_.Assign(x); }

  std::vector<double> RangeMass(double lo, double hi) const override {
    std::vector<double> mass(mixture_.num_components());
    for (int k = 0; k < mixture_.num_components(); ++k) {
      mass[k] = mixture_.ComponentIntervalMass(k, lo, hi);
    }
    return mass;
  }

  double RepresentativeValue(int bucket, double lo, double hi) const override {
    return mixture_.ComponentTruncatedMean(bucket, lo, hi);
  }

  size_t SizeBytes() const override { return mixture_.SizeBytes(); }

  void Serialize(std::ostream& out) const override;

  bool trainable() const override { return true; }
  double TrainStep(std::span<const double> batch) override {
    return mixture_.SgdStep(batch);
  }

  const gmm::LaplaceMixture1D& mixture() const { return mixture_; }
  gmm::LaplaceMixture1D& mutable_mixture() { return mixture_; }

 private:
  gmm::LaplaceMixture1D mixture_;
};

}  // namespace iam::bucketize

#endif  // IAM_BUCKETIZE_LAPLACE_REDUCER_H_
