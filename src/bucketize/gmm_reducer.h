#ifndef IAM_BUCKETIZE_GMM_REDUCER_H_
#define IAM_BUCKETIZE_GMM_REDUCER_H_

#include <memory>
#include <optional>

#include "bucketize/domain_reducer.h"
#include "gmm/gmm1d.h"

namespace iam::bucketize {

// DomainReducer adapter over a trained 1-D GMM. RangeMass uses the paper's
// Monte-Carlo estimate (S samples per component, drawn once and reused across
// queries) unless `exact` is requested, in which case the normal CDF is
// evaluated directly — the exact mode exists for verification and the
// "impact of GMM sample number" ablation.
class GmmReducer : public DomainReducer {
 public:
  GmmReducer(gmm::Gmm1D gmm, int samples_per_component, bool exact,
             uint64_t seed);

  std::string name() const override { return "gmm"; }
  int num_buckets() const override { return gmm_.num_components(); }
  int Assign(double x) const override { return gmm_.Assign(x); }
  std::vector<double> RangeMass(double lo, double hi) const override;
  size_t SizeBytes() const override { return gmm_.SizeBytes(); }
  double RepresentativeValue(int bucket, double lo, double hi) const override {
    return gmm_.ComponentTruncatedMean(bucket, lo, hi);
  }

  const gmm::Gmm1D& gmm() const { return gmm_; }
  // Mutable access for joint training; call RefreshSamples afterwards so the
  // Monte-Carlo range masses match the updated parameters.
  gmm::Gmm1D& mutable_gmm() { return gmm_; }

  // Rebuilds the Monte-Carlo sample index (after further GMM training).
  void RefreshSamples(uint64_t seed);

  void Serialize(std::ostream& out) const override;

  bool trainable() const override { return true; }
  double TrainStep(std::span<const double> batch) override {
    return gmm_.SgdStep(batch);
  }
  void PostEpoch(uint64_t seed) override { RefreshSamples(seed); }

 private:
  gmm::Gmm1D gmm_;
  int samples_per_component_;
  bool exact_;
  std::optional<gmm::ComponentSampleIndex> samples_;
};

}  // namespace iam::bucketize

#endif  // IAM_BUCKETIZE_GMM_REDUCER_H_
