#include "util/serialize.h"

#include "util/macros.h"

namespace iam {

Status ReadBytesChunked(std::istream& in, uint64_t count, std::string* out) {
  out->clear();
  constexpr uint64_t kChunkBytes = 1ULL << 20;
  uint64_t remaining = count;
  while (remaining > 0) {
    const uint64_t take = std::min(remaining, kChunkBytes);
    const size_t old_size = out->size();
    out->resize(old_size + static_cast<size_t>(take));
    in.read(out->data() + old_size, static_cast<std::streamsize>(take));
    if (!in) return Status::IoError("truncated stream reading bytes");
    remaining -= take;
  }
  return Status::Ok();
}

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void WriteEnvelope(std::ostream& out, std::string_view magic8,
                   uint32_t version, std::string_view payload) {
  IAM_CHECK(magic8.size() == 8);
  out.write(magic8.data(), 8);
  WritePod<uint32_t>(out, version);
  WritePod<uint64_t>(out, payload.size());
  WritePod<uint64_t>(out, Fnv1a64(payload));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

Result<std::string> ReadEnvelope(std::istream& in, std::string_view magic8,
                                 uint32_t max_supported_version,
                                 uint32_t* version_out) {
  IAM_CHECK(magic8.size() == 8);
  char magic[8] = {};
  in.read(magic, 8);
  if (!in) return Status::IoError("truncated stream reading magic");
  if (std::string_view(magic, 8) != magic8) {
    return Status::IoError("bad magic: expected '" + std::string(magic8) +
                           "'");
  }
  uint32_t version = 0;
  uint64_t size = 0;
  uint64_t digest = 0;
  IAM_RETURN_IF_ERROR(ReadPod(in, &version));
  IAM_RETURN_IF_ERROR(ReadPod(in, &size));
  IAM_RETURN_IF_ERROR(ReadPod(in, &digest));
  if (version == 0 || version > max_supported_version) {
    return Status::IoError("unsupported format version " +
                           std::to_string(version) + " (max supported " +
                           std::to_string(max_supported_version) + ")");
  }
  if (size > (1ULL << 34)) {
    return Status::IoError("implausible payload size");
  }
  // Chunked: the declared size is untrusted until the bytes back it (a
  // 28-byte header can otherwise demand a 16 GiB up-front allocation).
  std::string payload;
  if (!ReadBytesChunked(in, size, &payload).ok()) {
    return Status::IoError("truncated payload");
  }
  if (Fnv1a64(payload) != digest) {
    return Status::IoError("payload checksum mismatch (corrupted file)");
  }
  if (version_out != nullptr) *version_out = version;
  return payload;
}

}  // namespace iam
