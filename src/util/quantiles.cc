#include "util/quantiles.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/macros.h"

namespace iam {

QuantileSummary::QuantileSummary(std::vector<double> values)
    : sorted_(std::move(values)) {
  IAM_CHECK(!sorted_.empty());
  std::sort(sorted_.begin(), sorted_.end());
  double sum = 0.0;
  for (double v : sorted_) sum += v;
  mean_ = sum / static_cast<double>(sorted_.size());
}

double QuantileSummary::Quantile(double q) const {
  IAM_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted_.size() == 1) return sorted_[0];
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(pos));
  const size_t hi = static_cast<size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double QuantileSummary::Max() const { return sorted_.back(); }
double QuantileSummary::Min() const { return sorted_.front(); }

ErrorReport MakeErrorReport(std::span<const double> errors) {
  QuantileSummary summary(std::vector<double>(errors.begin(), errors.end()));
  ErrorReport report;
  report.mean = summary.Mean();
  report.median = summary.Median();
  report.p95 = summary.Quantile(0.95);
  report.p99 = summary.Quantile(0.99);
  report.max = summary.Max();
  report.count = summary.Count();
  return report;
}

std::string FormatErrorReport(const ErrorReport& report) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "mean=%-8.3g median=%-8.3g p95=%-8.3g p99=%-8.3g max=%-8.3g",
                report.mean, report.median, report.p95, report.p99,
                report.max);
  return buf;
}

}  // namespace iam
