#ifndef IAM_UTIL_QUANTILES_H_
#define IAM_UTIL_QUANTILES_H_

#include <span>
#include <string>
#include <vector>

namespace iam {

// Quantile summary of a sample (exact; the evaluation workloads are small
// enough that sorting a copy is fine). Quantiles use linear interpolation
// between closest ranks, matching numpy's default.
class QuantileSummary {
 public:
  explicit QuantileSummary(std::vector<double> values);

  double Quantile(double q) const;  // q in [0, 1]
  double Mean() const { return mean_; }
  double Median() const { return Quantile(0.5); }
  double Max() const;
  double Min() const;
  size_t Count() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
};

// The five-number report used throughout the paper's tables:
// mean / median / 95th / 99th / max.
struct ErrorReport {
  double mean = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  size_t count = 0;
};

ErrorReport MakeErrorReport(std::span<const double> errors);

// "mean=... median=... p95=... p99=... max=..." one-liner for benches.
std::string FormatErrorReport(const ErrorReport& report);

}  // namespace iam

#endif  // IAM_UTIL_QUANTILES_H_
