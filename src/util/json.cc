#include "util/json.h"

#include <cstdio>

namespace iam::util {
namespace {

// Advances past the string whose opening quote is at `i` (document[i] == '"');
// returns the index one past the closing quote, or npos on a truncated
// string.
size_t SkipString(std::string_view doc, size_t i) {
  for (++i; i < doc.size(); ++i) {
    if (doc[i] == '\\') {
      ++i;  // skip the escaped character
    } else if (doc[i] == '"') {
      return i + 1;
    }
  }
  return std::string_view::npos;
}

// Advances past one JSON value starting at `i` (first non-space byte of the
// value); returns the index one past its last byte, or npos on malformed
// input. Scalars run until a top-level ',' or '}' delimiter.
size_t SkipValue(std::string_view doc, size_t i) {
  if (i >= doc.size()) return std::string_view::npos;
  if (doc[i] == '"') return SkipString(doc, i);
  if (doc[i] == '{' || doc[i] == '[') {
    int depth = 0;
    for (; i < doc.size(); ++i) {
      const char c = doc[i];
      if (c == '"') {
        i = SkipString(doc, i);
        if (i == std::string_view::npos) return std::string_view::npos;
        --i;  // the loop increment moves past the closing quote
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (--depth == 0) return i + 1;
      }
    }
    return std::string_view::npos;
  }
  // Number / true / false / null: ends before the next delimiter.
  while (i < doc.size() && doc[i] != ',' && doc[i] != '}' && doc[i] != ']') {
    ++i;
  }
  return i;
}

size_t SkipSpace(std::string_view doc, size_t i) {
  while (i < doc.size() &&
         (doc[i] == ' ' || doc[i] == '\t' || doc[i] == '\n' ||
          doc[i] == '\r')) {
    ++i;
  }
  return i;
}

}  // namespace

std::string UpsertTopLevelKey(std::string_view document, std::string_view key,
                              std::string_view value_json) {
  const std::string entry =
      "\"" + JsonEscape(key) + "\":" + std::string(value_json);
  const size_t open = document.find('{');
  const size_t close = document.find_last_of('}');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    return "{" + entry + "}\n";
  }

  // Walk the top-level members looking for `key`.
  size_t i = SkipSpace(document, open + 1);
  bool any_member = false;
  while (i < document.size() && document[i] == '"') {
    const size_t key_start = i;
    const size_t key_end = SkipString(document, i);
    if (key_end == std::string_view::npos) break;
    size_t colon = SkipSpace(document, key_end);
    if (colon >= document.size() || document[colon] != ':') break;
    const size_t value_start = SkipSpace(document, colon + 1);
    const size_t value_end = SkipValue(document, value_start);
    if (value_end == std::string_view::npos) break;
    any_member = true;
    // Compare the raw key bytes (escaped form) — bench section names are
    // plain identifiers, so escaped and unescaped forms coincide.
    const std::string_view raw_key =
        document.substr(key_start + 1, key_end - key_start - 2);
    if (raw_key == key) {
      std::string result(document.substr(0, value_start));
      result.append(value_json);
      result.append(document.substr(value_end));
      return result;
    }
    i = SkipSpace(document, value_end);
    if (i < document.size() && document[i] == ',') {
      i = SkipSpace(document, i + 1);
    } else {
      break;
    }
  }

  // Not found: splice before the closing brace.
  std::string result(document.substr(0, close));
  if (any_member) result.append(",");
  result.append(entry);
  result.append(document.substr(close));
  return result;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace iam::util
