#include "util/lock_rank.h"

#if defined(IAM_LOCK_RANK) && IAM_LOCK_RANK

#include <execinfo.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

namespace iam::util::lock_rank {
namespace {

// Frames captured at each ranked acquisition; enough to see through the
// Mutex/MutexLock wrappers into the calling subsystem.
constexpr int kMaxFrames = 24;

struct HeldLock {
  const void* mutex = nullptr;
  LockRank rank = LockRank::kUnranked;
  void* frames[kMaxFrames];
  int num_frames = 0;
};

// Per-thread stack of ranked locks currently held. Bounded: a thread holding
// more ranked locks than this is itself a bug worth aborting on.
constexpr int kMaxHeld = 16;

struct ThreadLockState {
  HeldLock held[kMaxHeld];
  int depth = 0;
};

thread_local ThreadLockState tls;

void PrintStack(const HeldLock& lock, const char* label) {
  std::fprintf(stderr, "  %s (rank %d) acquired at:\n", label,
               static_cast<int>(lock.rank));
  std::fflush(stderr);
  backtrace_symbols_fd(lock.frames, lock.num_frames, STDERR_FILENO);
}

[[noreturn]] void ReportInversion(const HeldLock& held,
                                  const HeldLock& incoming) {
  std::fprintf(stderr,
               "FATAL: lock rank inversion: acquiring a rank-%d lock while "
               "holding a rank-%d lock — acquisition order must strictly "
               "descend in rank (see src/util/lock_rank.h)\n",
               static_cast<int>(incoming.rank), static_cast<int>(held.rank));
  PrintStack(held, "held lock");
  PrintStack(incoming, "incoming lock");
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void NoteAcquire(const void* mutex, LockRank rank) {
  if (rank == LockRank::kUnranked) return;
  ThreadLockState& state = tls;
  HeldLock incoming;
  incoming.mutex = mutex;
  incoming.rank = rank;
  incoming.num_frames = backtrace(incoming.frames, kMaxFrames);
  for (int i = 0; i < state.depth; ++i) {
    // Equal ranks are an inversion too: two locks of one rank have no
    // defined mutual order, so nesting them is exactly the ambiguity the
    // ranking exists to forbid.
    if (state.held[i].rank <= rank) ReportInversion(state.held[i], incoming);
  }
  if (state.depth >= kMaxHeld) {
    std::fprintf(stderr,
                 "FATAL: lock rank checker: thread holds more than %d ranked "
                 "locks — runaway nesting\n",
                 kMaxHeld);
    std::fflush(stderr);
    std::abort();
  }
  state.held[state.depth++] = incoming;
}

void NoteRelease(const void* mutex, LockRank rank) {
  if (rank == LockRank::kUnranked) return;
  ThreadLockState& state = tls;
  // Locks are almost always released LIFO; scan from the top so the common
  // case is O(1) but out-of-order release (legal for Mutex::Unlock) works.
  for (int i = state.depth - 1; i >= 0; --i) {
    if (state.held[i].mutex != mutex) continue;
    for (int j = i; j + 1 < state.depth; ++j) {
      state.held[j] = state.held[j + 1];
    }
    --state.depth;
    return;
  }
  std::fprintf(stderr,
               "FATAL: lock rank checker: releasing a rank-%d lock this "
               "thread does not hold\n",
               static_cast<int>(rank));
  std::fflush(stderr);
  std::abort();
}

}  // namespace iam::util::lock_rank

#endif  // IAM_LOCK_RANK
