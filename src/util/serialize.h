#ifndef IAM_UTIL_SERIALIZE_H_
#define IAM_UTIL_SERIALIZE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace iam {

// Minimal little-endian binary serialization helpers for model persistence.
// Readers return Status so corrupt or truncated files fail cleanly instead of
// crashing.

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
Status ReadPod(std::istream& in, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  if (!in) return Status::IoError("truncated stream reading POD");
  return Status::Ok();
}

template <typename T>
void WriteVector(std::ostream& out, const std::vector<T>& values) {
  static_assert(std::is_trivially_copyable_v<T>);
  WritePod<uint64_t>(out, values.size());
  if (!values.empty()) {
    out.write(reinterpret_cast<const char*>(values.data()),
              static_cast<std::streamsize>(values.size() * sizeof(T)));
  }
}

template <typename T>
Status ReadVector(std::istream& in, std::vector<T>* values) {
  static_assert(std::is_trivially_copyable_v<T>);
  uint64_t size = 0;
  IAM_RETURN_IF_ERROR(ReadPod(in, &size));
  if (size > (1ULL << 32)) return Status::IoError("implausible vector size");
  values->resize(size);
  if (size > 0) {
    in.read(reinterpret_cast<char*>(values->data()),
            static_cast<std::streamsize>(size * sizeof(T)));
    if (!in) return Status::IoError("truncated stream reading vector");
  }
  return Status::Ok();
}

inline void WriteString(std::ostream& out, const std::string& s) {
  WritePod<uint64_t>(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline Status ReadString(std::istream& in, std::string* s) {
  uint64_t size = 0;
  IAM_RETURN_IF_ERROR(ReadPod(in, &size));
  if (size > (1ULL << 24)) return Status::IoError("implausible string size");
  s->resize(size);
  if (size > 0) {
    in.read(s->data(), static_cast<std::streamsize>(size));
    if (!in) return Status::IoError("truncated stream reading string");
  }
  return Status::Ok();
}

// 64-bit FNV-1a over a byte span. Not cryptographic; used as a corruption
// check on persisted model payloads (a flipped bit or truncated tail changes
// the digest with overwhelming probability).
uint64_t Fnv1a64(std::string_view data);

// Checksummed, versioned container for persisted blobs:
//
//   [8-byte magic][u32 format version][u64 payload size][u64 FNV-1a][payload]
//
// Writers serialize their payload into a buffer first; readers validate the
// magic, the version range, the declared size and the digest before any field
// of the payload is interpreted, so a truncated, bit-flipped or foreign file
// yields a clean Status instead of a half-constructed model.
void WriteEnvelope(std::ostream& out, std::string_view magic8,
                   uint32_t version, std::string_view payload);

// Reads and validates one envelope; `*version_out` (optional) receives the
// stored format version. Versions above `max_supported_version` are rejected
// ("file written by a newer build").
Result<std::string> ReadEnvelope(std::istream& in, std::string_view magic8,
                                 uint32_t max_supported_version,
                                 uint32_t* version_out = nullptr);

}  // namespace iam

#endif  // IAM_UTIL_SERIALIZE_H_
