#ifndef IAM_UTIL_SERIALIZE_H_
#define IAM_UTIL_SERIALIZE_H_

#include <algorithm>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace iam {

// Minimal little-endian binary serialization helpers for model persistence.
// Readers return Status so corrupt or truncated files fail cleanly instead of
// crashing.
//
// Allocation discipline (fuzz-enforced, DESIGN.md §16): every reader that
// honours a length declared *in the stream* grows its buffer in bounded
// chunks as the bytes actually arrive, never by the declared size up front —
// a truncated or adversarial header can declare gigabytes that the stream
// does not hold, and the failure must be a clean Status, not an OOM.

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
Status ReadPod(std::istream& in, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  if (!in) return Status::IoError("truncated stream reading POD");
  return Status::Ok();
}

template <typename T>
void WriteVector(std::ostream& out, const std::vector<T>& values) {
  static_assert(std::is_trivially_copyable_v<T>);
  WritePod<uint64_t>(out, values.size());
  if (!values.empty()) {
    out.write(reinterpret_cast<const char*>(values.data()),
              static_cast<std::streamsize>(values.size() * sizeof(T)));
  }
}

template <typename T>
Status ReadVector(std::istream& in, std::vector<T>* values) {
  static_assert(std::is_trivially_copyable_v<T>);
  uint64_t size = 0;
  IAM_RETURN_IF_ERROR(ReadPod(in, &size));
  if (size > (1ULL << 32)) return Status::IoError("implausible vector size");
  values->clear();
  constexpr uint64_t kChunkElems =
      std::max<uint64_t>(1, (1ULL << 20) / sizeof(T));
  uint64_t remaining = size;
  while (remaining > 0) {
    const uint64_t take = std::min(remaining, kChunkElems);
    const size_t old_size = values->size();
    values->resize(old_size + static_cast<size_t>(take));
    in.read(reinterpret_cast<char*>(values->data() + old_size),
            static_cast<std::streamsize>(take * sizeof(T)));
    if (!in) return Status::IoError("truncated stream reading vector");
    remaining -= take;
  }
  return Status::Ok();
}

inline void WriteString(std::ostream& out, const std::string& s) {
  WritePod<uint64_t>(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

// Appends exactly `count` bytes from `in` to `*out` in bounded chunks (see
// the allocation discipline above). `*out` is cleared first.
Status ReadBytesChunked(std::istream& in, uint64_t count, std::string* out);

inline Status ReadString(std::istream& in, std::string* s) {
  uint64_t size = 0;
  IAM_RETURN_IF_ERROR(ReadPod(in, &size));
  if (size > (1ULL << 24)) return Status::IoError("implausible string size");
  return ReadBytesChunked(in, size, s);
}

// Raw little-endian byte image of a trivially-copyable array with a length
// the CALLER already knows and has validated (matrix reads in ar/resmade.cc
// check shapes against an envelope-validated config first). This pair and
// the frame codec in serve/protocol.cc are the repo's two audited
// type-punning sites; scripts/lint.sh bans reinterpret_cast elsewhere in
// src/.
template <typename T>
void WriteRaw(std::ostream& out, const T* data, size_t count) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(T)));
}

template <typename T>
Status ReadRaw(std::istream& in, T* data, size_t count) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) return Status::IoError("truncated stream reading raw array");
  return Status::Ok();
}

// 64-bit FNV-1a over a byte span. Not cryptographic; used as a corruption
// check on persisted model payloads (a flipped bit or truncated tail changes
// the digest with overwhelming probability).
uint64_t Fnv1a64(std::string_view data);

// Checksummed, versioned container for persisted blobs:
//
//   [8-byte magic][u32 format version][u64 payload size][u64 FNV-1a][payload]
//
// Writers serialize their payload into a buffer first; readers validate the
// magic, the version range, the declared size and the digest before any field
// of the payload is interpreted, so a truncated, bit-flipped or foreign file
// yields a clean Status instead of a half-constructed model.
void WriteEnvelope(std::ostream& out, std::string_view magic8,
                   uint32_t version, std::string_view payload);

// Reads and validates one envelope; `*version_out` (optional) receives the
// stored format version. Versions above `max_supported_version` are rejected
// ("file written by a newer build").
Result<std::string> ReadEnvelope(std::istream& in, std::string_view magic8,
                                 uint32_t max_supported_version,
                                 uint32_t* version_out = nullptr);

}  // namespace iam

#endif  // IAM_UTIL_SERIALIZE_H_
