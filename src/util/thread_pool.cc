#include "util/thread_pool.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/macros.h"
#include "util/stopwatch.h"

namespace iam::util {

namespace {

// Registered once; increments are shard-local relaxed adds (see
// obs/metrics.h). The event counters (jobs, indices) are deterministic for
// deterministic work; chunks and the latency histograms describe the runtime
// topology and legitimately vary with the thread count.
struct PoolMetrics {
  obs::Counter& jobs;
  obs::Counter& indices;
  obs::Counter& chunks;
  obs::Gauge& workers_busy;
  obs::Histogram& job_seconds;
  obs::Histogram& chunk_seconds;

  static PoolMetrics& Get() {
    static PoolMetrics metrics = [] {
      obs::MetricRegistry& reg = obs::MetricRegistry::Global();
      return PoolMetrics{
          reg.GetCounter("iam_pool_jobs_total"),
          reg.GetCounter("iam_pool_indices_total"),
          reg.GetCounter("iam_pool_chunks_total"),
          reg.GetGauge("iam_pool_workers_busy"),
          reg.GetHistogram("iam_pool_job_seconds", obs::LatencyBounds()),
          reg.GetHistogram("iam_pool_chunk_seconds", obs::LatencyBounds()),
      };
    }();
    return metrics;
  }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (int w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::RunChunk(int worker, const Body& body, size_t n) const {
  // Contiguous static partition of [0, n).
  const size_t t = static_cast<size_t>(num_threads_);
  const size_t begin = n * worker / t;
  const size_t end = n * (worker + 1) / t;
  if (begin >= end) return;
  PoolMetrics& metrics = PoolMetrics::Get();
  Stopwatch watch;
  for (size_t i = begin; i < end; ++i) body(i, worker);
  metrics.chunks.Add();
  metrics.chunk_seconds.Record(watch.ElapsedSeconds());
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen = 0;
  for (;;) {
    const Body* body = nullptr;
    size_t n = 0;
    {
      MutexLock lock(mutex_);
      while (!shutdown_ && generation_ == seen) lock.Wait(work_ready_);
      if (shutdown_) return;
      seen = generation_;
      // Copy the job under the lock; RunChunk then runs lock-free. The
      // pointee stays valid until ParallelFor observes workers_running_ == 0.
      body = body_;
      n = job_size_;
    }
    RunChunk(worker, *body, n);
    {
      MutexLock lock(mutex_);
      if (--workers_running_ == 0) work_done_.notify_one();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const Body& body) {
  if (n == 0) return;
  PoolMetrics& metrics = PoolMetrics::Get();
  metrics.jobs.Add();
  metrics.indices.Add(n);
  Stopwatch watch;
  if (num_threads_ == 1) {
    RunChunk(/*worker=*/0, body, n);
    metrics.job_seconds.Record(watch.ElapsedSeconds());
    return;
  }
  obs::TraceSpan span("pool.parallel_for");
  metrics.workers_busy.Set(static_cast<double>(num_threads_));
  {
    MutexLock lock(mutex_);
    IAM_CHECK_MSG(body_ == nullptr, "reentrant ParallelFor is not supported");
    body_ = &body;
    job_size_ = n;
    workers_running_ = num_threads_ - 1;
    ++generation_;
  }
  work_ready_.notify_all();
  RunChunk(/*worker=*/0, body, n);
  // The caller's own chunk is done; what remains is the barrier wait on the
  // background workers — excluded from the span's duration.
  span.Pause();
  MutexLock lock(mutex_);
  while (workers_running_ != 0) lock.Wait(work_done_);
  body_ = nullptr;
  job_size_ = 0;
  metrics.workers_busy.Set(0.0);
  metrics.job_seconds.Record(watch.ElapsedSeconds());
}

}  // namespace iam::util
