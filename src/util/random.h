#ifndef IAM_UTIL_RANDOM_H_
#define IAM_UTIL_RANDOM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/macros.h"

namespace iam {

// xoshiro256++ pseudo-random generator. Deterministic given a seed, fast, and
// good enough statistically for Monte-Carlo estimation. All randomized code in
// the library takes an explicit Rng so experiments are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Raw 64 random bits.
  uint64_t Next();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  // Standard normal via Box-Muller (cached spare value).
  double Gaussian();
  double Gaussian(double mean, double stddev);

  // Samples an index from an unnormalized non-negative weight vector.
  // Requires the total weight to be positive.
  size_t Categorical(std::span<const double> weights);

  // Samples an index from `probs` given its precomputed sum. Used by the
  // progressive samplers to avoid re-summation.
  size_t CategoricalWithSum(std::span<const double> probs, double sum);

  // Floyd-style distinct sample of k indices from [0, n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(values[i - 1], values[j]);
    }
  }

 private:
  uint64_t state_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace iam

#endif  // IAM_UTIL_RANDOM_H_
