#include "util/math_util.h"

#include <algorithm>

#include "util/macros.h"

namespace iam {

double LogSumExp(std::span<const double> xs) {
  if (xs.empty()) return kNegInf;
  double max_x = kNegInf;
  for (double x : xs) max_x = std::max(max_x, x);
  if (!std::isfinite(max_x)) return max_x;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - max_x);
  return max_x + std::log(sum);
}

void SoftmaxInPlace(std::span<double> xs) {
  if (xs.empty()) return;
  double max_x = kNegInf;
  for (double x : xs) max_x = std::max(max_x, x);
  double sum = 0.0;
  for (double& x : xs) {
    x = std::exp(x - max_x);
    sum += x;
  }
  IAM_CHECK(sum > 0.0);
  for (double& x : xs) x /= sum;
}

MeanVar ComputeMeanVar(std::span<const double> xs) {
  MeanVar mv;
  double m2 = 0.0;
  for (double x : xs) {
    ++mv.count;
    const double delta = x - mv.mean;
    mv.mean += delta / static_cast<double>(mv.count);
    m2 += delta * (x - mv.mean);
  }
  mv.variance = mv.count > 0 ? m2 / static_cast<double>(mv.count) : 0.0;
  return mv;
}

double Skewness(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const MeanVar mv = ComputeMeanVar(xs);
  if (mv.variance <= 0.0) return 0.0;
  double m3 = 0.0;
  for (double x : xs) {
    const double d = x - mv.mean;
    m3 += d * d * d;
  }
  m3 /= static_cast<double>(xs.size());
  return m3 / std::pow(mv.variance, 1.5);
}

double PearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys) {
  IAM_CHECK(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const MeanVar mx = ComputeMeanVar(xs);
  const MeanVar my = ComputeMeanVar(ys);
  if (mx.variance <= 0.0 || my.variance <= 0.0) return 0.0;
  double cov = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    cov += (xs[i] - mx.mean) * (ys[i] - my.mean);
  }
  cov /= static_cast<double>(xs.size());
  return cov / std::sqrt(mx.variance * my.variance);
}

}  // namespace iam
