#ifndef IAM_UTIL_LOCK_RANK_H_
#define IAM_UTIL_LOCK_RANK_H_

// Debug-build lock-ordering (rank) checking for util::Mutex (DESIGN.md §16).
//
// Every mutex is assigned a static LockRank at construction. At runtime each
// thread keeps a stack of the ranked locks it holds; acquiring a ranked lock
// while already holding one of equal or lower rank is a rank inversion — the
// acquisition order disagrees with the global order, so two threads taking
// the same pair of locks in opposite orders can deadlock. The checker aborts
// immediately at the inversion (long before the two-thread interleaving that
// actually deadlocks shows up) and prints the acquisition backtraces of both
// locks involved.
//
// Convention: ranks DESCEND along every legal acquisition chain — the
// outermost lock of a nesting has the numerically highest rank, and a thread
// may only acquire a lock whose rank is strictly below every ranked lock it
// already holds. kUnranked locks are exempt (not tracked); rank ad-hoc local
// mutexes kLeaf so they still participate as innermost locks.
//
// The checker is compiled in only under IAM_LOCK_RANK=1 (the TSan CI lane
// arms it; -DIAM_LOCK_RANK=ON arms any build). Elsewhere every hook is an
// empty inline function and Mutex carries no extra state.
//
// Current rank assignment (update DESIGN.md §16 when this changes):
//
//   kShutdown        server.h shutdown_mu_   joins everything below it
//   kSwap            server.h swap_mu_       taken under shutdown_mu_
//   kAdaptQueue      adapt/controller.h queue_mu_  feedback/append intake
//   kBatcherQueue    batcher.h mu_           admission / worker queue
//   kBatcherJoin     batcher.h join_mu_      DrainAndStop worker join
//   kCompletionQueue server.h completions_mu_
//   kRegistry        model_registry.h mu_    snapshot load/swap
//   kEstimatorBatch  estimator.h batch_mu_   serializes EstimateBatch
//   kCorrector       adapt/corrector.h mu_   read under batch_mu_,
//                                            reset under registry mu_
//   kThreadPool      thread_pool.h mutex_    taken under batch_mu_
//   kTraceRegistry   trace.h mu_             iterates the buffers below
//   kTraceBuffer     trace.h ThreadBuffer::mu
//   kMetricsRegistry metrics.h mu_           innermost named lock
//   kLeaf            ad-hoc waiters (e.g. MicroBatcher::Estimate)

#include <cstdint>

namespace iam::util {

enum class LockRank : int32_t {
  kUnranked = -1,  // exempt from checking (default for unranked mutexes)
  kLeaf = 50,
  kMetricsRegistry = 100,
  kTraceBuffer = 150,
  kTraceRegistry = 200,
  kThreadPool = 300,
  kCorrector = 350,
  kEstimatorBatch = 400,
  kRegistry = 500,
  kCompletionQueue = 600,
  kBatcherJoin = 650,
  kBatcherQueue = 700,
  kAdaptQueue = 750,
  kSwap = 800,
  kShutdown = 900,
};

namespace lock_rank {

// True when the checker is compiled in (IAM_LOCK_RANK=1) — tests use this to
// decide whether an inversion must abort or is legitimately unobserved.
constexpr bool Enabled() {
#if defined(IAM_LOCK_RANK) && IAM_LOCK_RANK
  return true;
#else
  return false;
#endif
}

#if defined(IAM_LOCK_RANK) && IAM_LOCK_RANK
// Called by Mutex/MutexLock immediately BEFORE the underlying lock is taken,
// so an inversion reports while the thread can still print (not after it
// deadlocked). Aborts on rank inversion with both acquisition backtraces.
void NoteAcquire(const void* mutex, LockRank rank);
// Called after the underlying unlock. Unranked locks are ignored by both.
void NoteRelease(const void* mutex, LockRank rank);
#else
inline void NoteAcquire(const void*, LockRank) {}
inline void NoteRelease(const void*, LockRank) {}
#endif

}  // namespace lock_rank

}  // namespace iam::util

#endif  // IAM_UTIL_LOCK_RANK_H_
