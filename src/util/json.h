#ifndef IAM_UTIL_JSON_H_
#define IAM_UTIL_JSON_H_

#include <string>
#include <string_view>

namespace iam::util {

// Inserts or replaces one top-level key of a JSON object document, preserving
// every other byte of the file. This is the primitive behind the bench
// harness's multi-section result files (BENCH_*.json): several binaries — or
// several runs of one binary — each merge their own section into a shared
// file without clobbering the others and without ever emitting a duplicate
// key.
//
//   - `document` is expected to be a JSON object (possibly with surrounding
//     whitespace). Anything that does not contain a top-level {...} — the
//     empty string, a fresh file, garbage — is replaced by a new object
//     holding just the given key.
//   - If `key` already exists at the top level, its value (scanned with full
//     string/escape and brace/bracket awareness, so nested objects and
//     strings containing '}' are fine) is replaced by `value_json`.
//   - Otherwise `"key":value_json` is appended before the closing brace.
//
// `value_json` must itself be a valid JSON value; it is spliced verbatim.
std::string UpsertTopLevelKey(std::string_view document, std::string_view key,
                              std::string_view value_json);

// Escapes a string for inclusion in a JSON document (quotes not included).
std::string JsonEscape(std::string_view s);

}  // namespace iam::util

#endif  // IAM_UTIL_JSON_H_
