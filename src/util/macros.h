#ifndef IAM_UTIL_MACROS_H_
#define IAM_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>

// IAM_CHECK aborts on programmer errors (invariant violations). It is active
// in all build modes; the estimation library is small enough that the cost is
// negligible next to the numeric kernels.
#define IAM_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "IAM_CHECK failed: %s at %s:%d\n", #cond,         \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define IAM_CHECK_MSG(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "IAM_CHECK failed: %s (%s) at %s:%d\n", #cond,    \
                   msg, __FILE__, __LINE__);                                 \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define IAM_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define IAM_DCHECK(cond) IAM_CHECK(cond)
#endif

// No-alias hint for the numeric kernels; the hot loops need it so the
// vectorizer does not emit runtime overlap checks (GCC/Clang).
#define IAM_RESTRICT __restrict__

#endif  // IAM_UTIL_MACROS_H_
