#ifndef IAM_UTIL_MUTEX_H_
#define IAM_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace iam::util {

// std::mutex wrapped as a Thread Safety Analysis capability. All lock-based
// synchronization in the library goes through Mutex/MutexLock so clang's
// -Wthread-safety can verify lock discipline (fields annotated
// IAM_GUARDED_BY(mu) are only touched with mu held); see DESIGN.md §11.
//
// A Mutex may additionally carry a static LockRank (lock_rank.h): under
// IAM_LOCK_RANK=1 (the TSan CI lane) every ranked acquisition is checked
// against the locks the thread already holds and a rank inversion — the
// order that can deadlock — aborts with both acquisition backtraces. The
// default-constructed Mutex is kUnranked and exempt; see DESIGN.md §16.
class IAM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(LockRank rank) { SetRank(rank); }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() IAM_ACQUIRE() {
    lock_rank::NoteAcquire(this, rank());
    mu_.lock();
  }
  void Unlock() IAM_RELEASE() {
    mu_.unlock();
    lock_rank::NoteRelease(this, rank());
  }

  LockRank rank() const {
#if defined(IAM_LOCK_RANK) && IAM_LOCK_RANK
    return rank_;
#else
    return LockRank::kUnranked;
#endif
  }

 private:
  friend class MutexLock;

  void SetRank(LockRank rank) {
#if defined(IAM_LOCK_RANK) && IAM_LOCK_RANK
    rank_ = rank;
#else
    static_cast<void>(rank);
#endif
  }

  std::mutex mu_;
#if defined(IAM_LOCK_RANK) && IAM_LOCK_RANK
  LockRank rank_ = LockRank::kUnranked;
#endif
};

// RAII holder for a Mutex, with condition-variable waits. The wait methods
// atomically release the mutex while blocked and reacquire it before
// returning, as std::condition_variable does; TSA treats the capability as
// held across the wait, which matches the caller-visible contract (the
// guarded state may only be examined before and after, never during).
class IAM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) IAM_ACQUIRE(mu)
      : lock_((lock_rank::NoteAcquire(&mu, mu.rank()), mu.mu_)), mu_(&mu) {}
  ~MutexLock() IAM_RELEASE() {
    lock_.unlock();
    lock_rank::NoteRelease(mu_, mu_->rank());
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // One blocking wait on `cv`. Callers loop on their predicate:
  //   while (!ready_) lock.Wait(cv_);
  // keeping the predicate in the enclosing scope, where TSA can check the
  // guarded reads against the held capability.
  void Wait(std::condition_variable& cv) { cv.wait(lock_); }

  // Timed variant: returns false when `seconds` elapsed without a
  // notification (callers re-check both predicate and deadline either way —
  // spurious wakeups and notify-then-timeout races make the return value a
  // hint, not a verdict).
  bool WaitFor(std::condition_variable& cv, double seconds) {
    return cv.wait_for(lock_, std::chrono::duration<double>(seconds)) ==
           std::cv_status::no_timeout;
  }

 private:
  std::unique_lock<std::mutex> lock_;
  Mutex* mu_;
};

}  // namespace iam::util

#endif  // IAM_UTIL_MUTEX_H_
