#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace iam {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  IAM_DCHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::Gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

size_t Rng::Categorical(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    IAM_DCHECK(w >= 0.0);
    total += w;
  }
  IAM_CHECK(total > 0.0);
  return CategoricalWithSum(weights, total);
}

size_t Rng::CategoricalWithSum(std::span<const double> probs, double sum) {
  const double target = Uniform() * sum;
  double acc = 0.0;
  size_t last_positive = probs.size();
  for (size_t i = 0; i < probs.size(); ++i) {
    if (probs[i] <= 0.0) continue;
    acc += probs[i];
    last_positive = i;
    if (acc >= target) return i;
  }
  // Floating-point slop: fall back to the last positive entry.
  IAM_CHECK(last_positive < probs.size());
  return last_positive;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  IAM_CHECK(k <= n);
  if (k == n) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  // Robert Floyd's algorithm: k iterations, O(k) expected memory.
  std::unordered_set<size_t> chosen;
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = UniformInt(j + 1);
    if (chosen.contains(t)) t = j;
    chosen.insert(t);
    out.push_back(t);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace iam
