#ifndef IAM_UTIL_STOPWATCH_H_
#define IAM_UTIL_STOPWATCH_H_

#include <chrono>

namespace iam {

// Wall-clock stopwatch used by the benchmark harness and the training loops.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace iam

#endif  // IAM_UTIL_STOPWATCH_H_
