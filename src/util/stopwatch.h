#ifndef IAM_UTIL_STOPWATCH_H_
#define IAM_UTIL_STOPWATCH_H_

#include <chrono>

namespace iam {

// Wall-clock stopwatch used by the benchmark harness, the training loops and
// the obs::TraceSpan layer. Starts running at construction. Pause/Resume
// accumulate across stops, so a span can exclude time spent blocked (e.g.
// waiting on the thread pool) from its duration.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  // Zeroes the accumulated time and starts running from now.
  void Restart() {
    accumulated_ = 0.0;
    running_ = true;
    start_ = Clock::now();
  }

  // Stops accumulating; idempotent while paused.
  void Pause() {
    if (!running_) return;
    accumulated_ +=
        std::chrono::duration<double>(Clock::now() - start_).count();
    running_ = false;
  }

  // Continues accumulating from now; idempotent while running.
  void Resume() {
    if (running_) return;
    running_ = true;
    start_ = Clock::now();
  }

  bool running() const { return running_; }

  // Accumulated running time (live segment included while running).
  double ElapsedSeconds() const {
    double elapsed = accumulated_;
    if (running_) {
      elapsed += std::chrono::duration<double>(Clock::now() - start_).count();
    }
    return elapsed;
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  double accumulated_ = 0.0;
  bool running_ = true;
};

}  // namespace iam

#endif  // IAM_UTIL_STOPWATCH_H_
