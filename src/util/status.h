#ifndef IAM_UTIL_STATUS_H_
#define IAM_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/macros.h"

namespace iam {

// Error codes for recoverable failures. Library code returns Status (or
// Result<T>) instead of throwing; IAM_CHECK is reserved for invariant
// violations that indicate bugs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
};

// [[nodiscard]]: silently dropping a Status turns a recoverable failure into
// a wrong answer (e.g. an unread model deserialized half-way); every call
// site must consume the status or explicitly cast it away with a comment.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// A value-or-error holder in the spirit of absl::StatusOr.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design
  Result(T value) : data_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design
  Result(Status status) : data_(std::move(status)) {
    IAM_CHECK(!std::get<Status>(data_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  const T& value() const& {
    IAM_CHECK(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    IAM_CHECK(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    IAM_CHECK(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

#define IAM_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::iam::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace iam

#endif  // IAM_UTIL_STATUS_H_
