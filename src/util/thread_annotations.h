#ifndef IAM_UTIL_THREAD_ANNOTATIONS_H_
#define IAM_UTIL_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis annotations (-Wthread-safety). Under clang
// every macro expands to the corresponding attribute and lock discipline is
// verified at compile time (scripts/ci.sh builds with -Wthread-safety
// -Werror when clang is available); under every other compiler they expand
// to nothing, so annotated code stays portable. See DESIGN.md §11 for the
// conventions and https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for
// the underlying model.
//
// Conventions:
//  - Shared fields carry IAM_GUARDED_BY(mu) naming the capability that
//    protects them.
//  - Functions that must be called with a capability held are annotated
//    IAM_REQUIRES(mu); functions that take it internally are annotated
//    IAM_EXCLUDES(mu) so self-deadlock is a compile error.
//  - util::Mutex / util::MutexLock (util/mutex.h) are the annotated lock
//    types; raw std::mutex is reserved for code TSA cannot model.

#if defined(__clang__)
#define IAM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define IAM_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// Declares a lock type (class annotation).
#define IAM_CAPABILITY(x) IAM_THREAD_ANNOTATION(capability(x))
// Declares an RAII lock holder (class annotation).
#define IAM_SCOPED_CAPABILITY IAM_THREAD_ANNOTATION(scoped_lockable)

// Field/variable is protected by the given capability.
#define IAM_GUARDED_BY(x) IAM_THREAD_ANNOTATION(guarded_by(x))
// Pointee (not the pointer itself) is protected by the given capability.
#define IAM_PT_GUARDED_BY(x) IAM_THREAD_ANNOTATION(pt_guarded_by(x))

// Caller must hold the capability / must not hold it.
#define IAM_REQUIRES(...) \
  IAM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define IAM_EXCLUDES(...) IAM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Function acquires / releases the capability.
#define IAM_ACQUIRE(...) \
  IAM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define IAM_RELEASE(...) \
  IAM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// Function returns a reference to the given capability.
#define IAM_RETURN_CAPABILITY(x) IAM_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for code whose locking TSA cannot follow; every use must
// carry a comment justifying why it is safe.
#define IAM_NO_THREAD_SAFETY_ANALYSIS \
  IAM_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // IAM_UTIL_THREAD_ANNOTATIONS_H_
