#ifndef IAM_UTIL_THREAD_POOL_H_
#define IAM_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace iam::util {

// A fixed-size pool of worker threads exposing one primitive: a blocking,
// statically partitioned ParallelFor. No work stealing, no task queue — the
// index range is split into `num_threads` contiguous chunks, one per worker,
// so a loop body that depends only on its index (the repo-wide contract:
// per-query Rng seeded from the query index, per-worker scratch contexts)
// produces bit-identical results at any thread count.
//
// The calling thread participates as worker 0; a pool of size 1 therefore
// runs everything inline and spawns no threads at all.
//
// All cross-thread state is guarded by mutex_ and annotated for clang's
// Thread Safety Analysis; the job body and size are handed to RunChunk by
// value, so workers touch no guarded state while running user code.
class ThreadPool {
 public:
  using Body = std::function<void(size_t index, int worker)>;

  // Clamped to >= 1. The pool keeps num_threads - 1 background workers.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Invokes body(index, worker) for every index in [0, n), where worker is
  // the id (in [0, num_threads)) of the thread running that index. Blocks
  // until every index has completed. body must be safe to call concurrently
  // for distinct indices; indices within one chunk run in increasing order.
  // Reentrant calls from inside body are not supported, and concurrent
  // ParallelFor calls from distinct threads are not supported either —
  // callers serialize (see estimator::Estimator::batch_mu_).
  void ParallelFor(size_t n, const Body& body) IAM_EXCLUDES(mutex_);

  // std::thread::hardware_concurrency with a floor of 1.
  static int HardwareThreads();

 private:
  void WorkerLoop(int worker) IAM_EXCLUDES(mutex_);
  // Runs this worker's contiguous chunk of [0, n). Pure: takes the job by
  // argument so it reads no guarded state.
  void RunChunk(int worker, const Body& body, size_t n) const;

  const int num_threads_;
  std::vector<std::thread> workers_;

  Mutex mutex_{LockRank::kThreadPool};
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  // Generation counter: bumping it publishes a new job to the workers.
  uint64_t generation_ IAM_GUARDED_BY(mutex_) = 0;
  int workers_running_ IAM_GUARDED_BY(mutex_) = 0;
  bool shutdown_ IAM_GUARDED_BY(mutex_) = false;
  const Body* body_ IAM_GUARDED_BY(mutex_) = nullptr;
  size_t job_size_ IAM_GUARDED_BY(mutex_) = 0;
};

}  // namespace iam::util

#endif  // IAM_UTIL_THREAD_POOL_H_
