#ifndef IAM_UTIL_THREAD_POOL_H_
#define IAM_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace iam::util {

// A fixed-size pool of worker threads exposing one primitive: a blocking,
// statically partitioned ParallelFor. No work stealing, no task queue — the
// index range is split into `num_threads` contiguous chunks, one per worker,
// so a loop body that depends only on its index (the repo-wide contract:
// per-query Rng seeded from the query index, per-worker scratch contexts)
// produces bit-identical results at any thread count.
//
// The calling thread participates as worker 0; a pool of size 1 therefore
// runs everything inline and spawns no threads at all.
class ThreadPool {
 public:
  // Clamped to >= 1. The pool keeps num_threads - 1 background workers.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Invokes body(index, worker) for every index in [0, n), where worker is
  // the id (in [0, num_threads)) of the thread running that index. Blocks
  // until every index has completed. body must be safe to call concurrently
  // for distinct indices; indices within one chunk run in increasing order.
  // Reentrant calls from inside body are not supported.
  void ParallelFor(size_t n,
                   const std::function<void(size_t index, int worker)>& body);

  // std::thread::hardware_concurrency with a floor of 1.
  static int HardwareThreads();

 private:
  void WorkerLoop(int worker);
  void RunChunk(int worker);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  // Generation counter: bumping it publishes a new job to the workers.
  uint64_t generation_ = 0;
  int workers_running_ = 0;
  bool shutdown_ = false;
  const std::function<void(size_t, int)>* body_ = nullptr;
  size_t job_size_ = 0;
};

}  // namespace iam::util

#endif  // IAM_UTIL_THREAD_POOL_H_
