#ifndef IAM_UTIL_MATH_UTIL_H_
#define IAM_UTIL_MATH_UTIL_H_

#include <cmath>
#include <limits>
#include <span>
#include <vector>

namespace iam {

inline constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// log(sum_i exp(x_i)), stable against overflow. Returns -inf for empty input.
double LogSumExp(std::span<const double> xs);

// Standard normal density and CDF.
inline double NormalPdf(double x) {
  static const double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

inline double NormalCdf(double x) {
  return 0.5 * std::erfc(-x * M_SQRT1_2);
}

// Density / CDF of N(mean, stddev^2); stddev must be positive.
inline double NormalPdf(double x, double mean, double stddev) {
  return NormalPdf((x - mean) / stddev) / stddev;
}

inline double NormalCdf(double x, double mean, double stddev) {
  return NormalCdf((x - mean) / stddev);
}

// log N(x; mean, stddev^2).
inline double NormalLogPdf(double x, double mean, double stddev) {
  static const double kLogSqrt2Pi = 0.9189385332046727;
  const double z = (x - mean) / stddev;
  return -0.5 * z * z - std::log(stddev) - kLogSqrt2Pi;
}

// Mass of [lo, hi] under N(mean, stddev^2). Requires lo <= hi.
inline double NormalIntervalMass(double lo, double hi, double mean,
                                 double stddev) {
  return NormalCdf(hi, mean, stddev) - NormalCdf(lo, mean, stddev);
}

// In-place softmax over `xs`; subtracts the max for stability.
void SoftmaxInPlace(std::span<double> xs);

// Clamps x into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

// Fisher moment-based skewness of a sample: E[(x-mu)^3] / sigma^3.
double Skewness(std::span<const double> xs);

// Pearson correlation of two equally sized samples.
double PearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys);

// Mean and (population) variance in one pass (Welford).
struct MeanVar {
  double mean = 0.0;
  double variance = 0.0;
  size_t count = 0;
};
MeanVar ComputeMeanVar(std::span<const double> xs);

}  // namespace iam

#endif  // IAM_UTIL_MATH_UTIL_H_
