#ifndef IAM_OBS_TRACE_H_
#define IAM_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"

namespace iam::obs {

// Scoped tracing (DESIGN.md §12). TraceSpan is an RAII marker around a phase
// of work; completed spans are appended to a per-thread buffer (one short
// uncontended lock per span end) owned by the process-global TraceRecorder,
// which exports them as chrome://tracing "Trace Event Format" JSON — load the
// file at chrome://tracing or https://ui.perfetto.dev — or as a flat
// per-phase table.
//
// Tracing is off by default: a disabled TraceSpan costs one relaxed atomic
// load and touches no clock, so spans can stay compiled into hot paths.
// Spans nest naturally (the viewer stacks by ts/dur containment), and
// Pause()/Resume() exclude blocked time from the recorded duration.

// One completed span. `name` must point at storage that outlives the
// recorder — instrumentation sites pass string literals.
struct TraceEvent {
  const char* name = nullptr;
  double ts_us = 0.0;   // start, microseconds since the recorder epoch
  double dur_us = 0.0;  // accumulated (unpaused) duration, microseconds
  int tid = 0;          // recorder-assigned thread id
};

// Per-phase aggregation of a set of events (the flat table export).
struct PhaseStats {
  std::string name;
  uint64_t count = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;
  double MeanMs() const {
    return count > 0 ? total_ms / static_cast<double>(count) : 0.0;
  }
};

class TraceRecorder {
 public:
  static TraceRecorder& Global();

  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Microseconds since the recorder's construction (monotonic clock).
  double NowMicros() const { return epoch_.ElapsedMicros(); }

  // Appends a completed span to the calling thread's buffer.
  void Record(const char* name, double ts_us, double dur_us);

  // All recorded events, sorted by (ts, tid, name) so the export is stable
  // regardless of which buffer a thread landed in.
  std::vector<TraceEvent> Events() const;

  // chrome://tracing JSON: {"traceEvents":[{"name":...,"ph":"X",...}],...}.
  std::string ToChromeTracingJson() const;
  // Writes ToChromeTracingJson() to `path`; false on I/O failure.
  bool WriteChromeTracingJson(const std::string& path) const;

  // Per-phase totals over all recorded events, sorted by total time
  // descending, plus a printable table.
  std::vector<PhaseStats> Phases() const;
  std::string PhaseTable() const;

  // Drops all recorded events (buffers stay registered; the epoch is kept).
  void Clear();

 private:
  struct ThreadBuffer {
    util::Mutex mu{util::LockRank::kTraceBuffer};
    int tid = 0;
    std::vector<TraceEvent> events IAM_GUARDED_BY(mu);
  };

  ThreadBuffer& BufferForThisThread();

  std::atomic<bool> enabled_{false};
  Stopwatch epoch_;  // never paused; all timestamps are relative to it

  mutable util::Mutex mu_{util::LockRank::kTraceRegistry};
  // Buffers are never removed (a dead thread's events stay exportable);
  // pointers handed to threads remain stable.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ IAM_GUARDED_BY(mu_);
};

// RAII span over the enclosing scope. Captures the enabled flag at
// construction, so a span is recorded iff tracing was on when it started.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(name), active_(TraceRecorder::Global().enabled()) {
    if (active_) {
      start_us_ = TraceRecorder::Global().NowMicros();
      watch_.Restart();
    }
  }

  ~TraceSpan() {
    if (active_) {
      TraceRecorder::Global().Record(name_, start_us_, watch_.ElapsedMicros());
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Excludes the paused stretch from the recorded duration (the span still
  // covers it on the timeline via ts).
  void Pause() {
    if (active_) watch_.Pause();
  }
  void Resume() {
    if (active_) watch_.Resume();
  }

 private:
  const char* name_;
  const bool active_;
  double start_us_ = 0.0;
  Stopwatch watch_;
};

}  // namespace iam::obs

#endif  // IAM_OBS_TRACE_H_
