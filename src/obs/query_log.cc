#include "obs/query_log.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <type_traits>

#include "util/macros.h"

namespace iam::obs {

namespace {

static_assert(std::is_trivially_copyable_v<QueryRecord>,
              "records round-trip through memcpy");

bool IsPowerOfTwo(size_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::string JsonDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

QueryLogFilter ParseQueryLogFilter(std::string_view text) {
  QueryLogFilter filter;
  size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && text[pos] == ' ') ++pos;
    size_t end = pos;
    while (end < text.size() && text[end] != ' ') ++end;
    const std::string_view token = text.substr(pos, end - pos);
    pos = end;
    const size_t eq = token.find('=');
    if (eq == std::string_view::npos) continue;
    const std::string_view key = token.substr(0, eq);
    const std::string value(token.substr(eq + 1));
    char* parse_end = nullptr;
    const double parsed = std::strtod(value.c_str(), &parse_end);
    if (parse_end == value.c_str() || parsed < 0.0) continue;
    if (key == "last") {
      filter.last_n = static_cast<size_t>(parsed);
    } else if (key == "min_ms") {
      filter.min_total_s = parsed / 1e3;
    }
    // Unknown keys are ignored: forward compatibility on the wire.
  }
  return filter;
}

QueryLog::QueryLog(size_t capacity)
    : capacity_(capacity),
      mask_(capacity - 1),
      slots_(std::make_unique<Slot[]>(capacity)) {
  IAM_CHECK_MSG(IsPowerOfTwo(capacity),
                "query-log capacity must be a power of two");
}

QueryLog& QueryLog::Global() {
  static QueryLog log;
  return log;
}

uint64_t QueryLog::Append(const QueryRecord& rec) {
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  total_draws_.fetch_add(rec.sampler_draws, std::memory_order_relaxed);

  QueryRecord stamped = rec;
  stamped.seq = seq;
  uint64_t words[kQueryRecordWords];
  std::memcpy(words, &stamped, sizeof(stamped));

  Slot& slot = slots_[(seq - 1) & mask_];
  // Per-slot writer hand-off: sequence numbers hit a slot in the order
  // s, s+capacity, s+2*capacity, ..., so wait until the previous lap has
  // committed (stamp == 2*(seq-capacity); 0 on the first lap). Without this
  // a stalled writer's late even-stamp store could mask a lapping writer's
  // in-progress payload and a reader would accept a torn mix of the two.
  // The acquire pairs with the predecessor's committing release store.
  const uint64_t prev_commit =
      seq > capacity_ ? 2 * (seq - capacity_) : 0;
  int spins = 0;
  while (slot.stamp.load(std::memory_order_acquire) != prev_commit) {
    if (++spins >= 1024) {
      spins = 0;
      std::this_thread::yield();
    }
  }
  slot.stamp.store(2 * seq - 1, std::memory_order_relaxed);
  // Release fence (not a release store on the stamp, which would only order
  // *prior* accesses): makes the in-progress stamp visible before any
  // payload word, pairing with the acquire fence in Snapshot — a reader
  // that copied one of our words re-reads a changed stamp and discards.
  std::atomic_thread_fence(std::memory_order_release);
  for (size_t w = 0; w < kQueryRecordWords; ++w) {
    slot.words[w].store(words[w], std::memory_order_relaxed);
  }
  slot.stamp.store(2 * seq, std::memory_order_release);
  return seq;
}

std::vector<QueryRecord> QueryLog::Snapshot(
    const QueryLogFilter& filter) const {
  std::vector<QueryRecord> out;
  out.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    const uint64_t before = slot.stamp.load(std::memory_order_acquire);
    if (before == 0 || (before & 1) != 0) continue;  // empty or mid-write
    uint64_t words[kQueryRecordWords];
    for (size_t w = 0; w < kQueryRecordWords; ++w) {
      words[w] = slot.words[w].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.stamp.load(std::memory_order_relaxed) != before) {
      continue;  // a writer lapped the slot mid-copy; discard
    }
    QueryRecord rec;
    std::memcpy(&rec, words, sizeof(rec));
    if (rec.total_s < filter.min_total_s) continue;
    out.push_back(rec);
  }
  std::sort(out.begin(), out.end(),
            [](const QueryRecord& a, const QueryRecord& b) {
              return a.seq < b.seq;
            });
  if (filter.last_n > 0 && out.size() > filter.last_n) {
    out.erase(out.begin(),
              out.end() - static_cast<ptrdiff_t>(filter.last_n));
  }
  return out;
}

std::optional<QueryRecord> QueryLog::Find(uint64_t seq) const {
  if (seq == 0 || seq > next_seq_.load(std::memory_order_acquire)) {
    return std::nullopt;
  }
  const Slot& slot = slots_[(seq - 1) & mask_];
  const uint64_t before = slot.stamp.load(std::memory_order_acquire);
  if (before != 2 * seq) return std::nullopt;  // overwritten or mid-write
  uint64_t words[kQueryRecordWords];
  for (size_t w = 0; w < kQueryRecordWords; ++w) {
    words[w] = slot.words[w].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (slot.stamp.load(std::memory_order_relaxed) != before) {
    return std::nullopt;  // a writer lapped the slot mid-copy
  }
  QueryRecord rec;
  std::memcpy(&rec, words, sizeof(rec));
  return rec;
}

std::string QueryLogToJson(const std::vector<QueryRecord>& records,
                           uint64_t appended, size_t capacity) {
  std::string out = "{\"records\":[";
  bool first = true;
  for (const QueryRecord& r : records) {
    if (!first) out += ",";
    first = false;
    out += "{\"seq\":" + std::to_string(r.seq) +
           ",\"shard\":" + std::to_string(r.shard) +
           ",\"batch_size\":" + std::to_string(r.batch_size) +
           ",\"model_version\":" + std::to_string(r.model_version) +
           ",\"sampler_draws\":" + std::to_string(r.sampler_draws) +
           ",\"sample_rows\":" + std::to_string(r.sample_rows) +
           ",\"rounds\":" + std::to_string(r.rounds) +
           ",\"early_stop_round\":" + std::to_string(r.early_stop_round) +
           ",\"ci_half_width\":" + JsonDouble(r.ci_half_width) +
           ",\"prefix_hits\":" + std::to_string(r.prefix_hits) +
           ",\"fallbacks\":" + std::to_string(r.fallbacks) +
           ",\"fallback_column\":" + std::to_string(r.fallback_column) +
           ",\"dead\":" + std::to_string(r.dead) +
           ",\"selectivity\":" + JsonDouble(r.selectivity) +
           ",\"region_key\":" + std::to_string(r.region_key) +
           ",\"corrector_mult\":" + JsonDouble(r.corrector_mult) +
           ",\"queue_wait_s\":" + JsonDouble(r.queue_wait_s) +
           ",\"exec_s\":" + JsonDouble(r.exec_s) +
           ",\"total_s\":" + JsonDouble(r.total_s) + "}";
  }
  out += "],\"appended\":" + std::to_string(appended) +
         ",\"capacity\":" + std::to_string(capacity) + "}";
  return out;
}

}  // namespace iam::obs
