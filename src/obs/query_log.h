#ifndef IAM_OBS_QUERY_LOG_H_
#define IAM_OBS_QUERY_LOG_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace iam::obs {

// Request-scoped diagnostics ring (DESIGN.md §17). Every served (or batch-
// estimated) query appends one fixed-size QueryRecord describing what the
// sampler actually did for it — samples drawn, adaptive-budget rounds,
// early-stop round and CI width, prefix-share hits, zero-mass wildcard
// fallbacks — plus the serving context (shard, batch size, queue-wait /
// exec / total latency, model version). The ring is always on: the write
// path is mutex-free (a seqlock-style stamp protocol over plain atomics,
// like the sharded counters in metrics.h), so it can stay enabled in
// production; readers snapshot without blocking writers and torn slots are
// detected and skipped, never returned.

// One query's diagnostics. Trivially copyable by design: the ring stores
// records as arrays of atomic 64-bit words, so the layout must be a plain
// bag of 8-byte-aligned scalars.
struct QueryRecord {
  uint64_t seq = 0;            // 1-based append order, assigned by the ring
  uint64_t model_version = 0;  // serving model version (0 outside serve)
  uint64_t sampler_draws = 0;  // progressive-sampler rows drawn for the query
  int32_t shard = -1;          // serving shard (-1 outside serve)
  int32_t batch_size = 0;      // micro-batch the query rode in
  int32_t sample_rows = 0;     // per-wave sample rows configured
  int32_t rounds = 0;          // adaptive-budget waves executed
  int32_t early_stop_round = -1;  // wave at which the CI test stopped it
  int32_t prefix_hits = 0;        // prefix-share cache hits
  int32_t fallbacks = 0;          // zero-mass wildcard fallbacks taken
  int32_t fallback_column = -1;   // column of the last fallback
  int32_t dead = 0;               // 1 if the query was provably empty
  int32_t reserved = 0;           // pad to an 8-byte multiple
  double ci_half_width = 0.0;     // CI half-width at stop (0 if never tested)
  double selectivity = 0.0;       // the estimate returned
  double queue_wait_s = 0.0;      // serve only: dequeue minus enqueue
  double exec_s = 0.0;            // estimator time attributed to the query
  double total_s = 0.0;           // queue_wait_s + exec_s
  // Post-estimate correction (DESIGN.md §18): the query's corrector region
  // key and the multiplier folded into `selectivity`. (0, 1.0) when the
  // corrector is off. The adaptation thread resolves seq-form feedback
  // against these fields, recovering the raw estimate as
  // selectivity / corrector_mult.
  uint64_t region_key = 0;
  double corrector_mult = 1.0;
};

static_assert(sizeof(QueryRecord) % sizeof(uint64_t) == 0,
              "records are stored as whole 64-bit words");

inline constexpr size_t kQueryRecordWords = sizeof(QueryRecord) / 8;

// Wire-filter for snapshots: `last=N` keeps the newest N records, `min_ms=X`
// drops records whose total latency is below X milliseconds. Unknown tokens
// are ignored so old clients can talk to newer servers.
struct QueryLogFilter {
  size_t last_n = 0;         // 0 = no limit
  double min_total_s = 0.0;  // 0 = no latency floor
};

QueryLogFilter ParseQueryLogFilter(std::string_view text);

// Fixed-capacity mutex-free ring of QueryRecords.
//
// Write protocol (seqlock per slot): Append claims a global sequence number
// s with one relaxed fetch_add, then on slot (s-1) & mask waits for the
// previous lap of the slot to commit (stamp == 2*(s-capacity); slots see
// sequence numbers in order, so this serializes the rare case of two
// writers lapping onto the same slot — otherwise a stalled writer's late
// even stamp could mask its successor's in-progress payload). It then
// stores stamp 2s-1 (slot in progress), a release fence (the fence — not a
// release store, which would only order *prior* accesses — makes the odd
// stamp visible before any payload word), the payload words (relaxed
// atomic stores), and stamp 2s (release: slot committed, seq = stamp/2).
// Readers acquire-load the stamp, skip odd/zero stamps, copy the words,
// and re-load the stamp behind an acquire fence — a changed stamp means a
// writer touched the slot mid-copy and the copy is discarded. Every
// payload access is an atomic operation, so the protocol is data-race-free
// (TSan-clean) and a returned record is always internally consistent.
class QueryLog {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit QueryLog(size_t capacity = kDefaultCapacity);
  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  // The process-global ring the serving path appends to.
  static QueryLog& Global();

  // Appends `rec` (its seq field is overwritten with the assigned sequence
  // number) and returns that 1-based sequence number. Never blocks readers;
  // a writer only waits if another writer laps onto the same slot mid-write
  // (capacity appends behind — nanoseconds of spin, and unreachable in
  // practice at the default capacity).
  uint64_t Append(const QueryRecord& rec);

  // Copies out every live record passing `filter`, ascending by seq.
  // Records mid-write or overwritten during the copy are skipped.
  std::vector<QueryRecord> Snapshot(
      const QueryLogFilter& filter = QueryLogFilter{}) const;

  // Direct lookup of the record with sequence number `seq`: one seqlock-
  // validated slot read (the slot a live seq must occupy is (seq-1) & mask).
  // nullopt when the record was never appended, has been overwritten by a
  // later lap, or is mid-write. The adaptation feedback path resolves
  // "seq=<N>" feedback through this.
  std::optional<QueryRecord> Find(uint64_t seq) const;

  // Total records ever appended (monotone; snapshot deltas reconcile with
  // iam_serve_accepted_total).
  uint64_t Appended() const {
    return next_seq_.load(std::memory_order_relaxed);
  }
  // Sum of sampler_draws over every record ever appended (reconciles with
  // iam_sampler_samples_total for served traffic).
  uint64_t TotalDraws() const {
    return total_draws_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    std::atomic<uint64_t> stamp{0};  // 0 empty, odd in-progress, even = 2*seq
    std::array<std::atomic<uint64_t>, kQueryRecordWords> words{};
  };

  size_t capacity_;
  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_seq_{0};
  std::atomic<uint64_t> total_draws_{0};
};

// Renders records as the kQueryLog wire payload:
// {"records":[{...},...],"appended":N,"capacity":C}. Deterministic key
// order; shared by the server handler, serve_cli, and the CI wire check.
std::string QueryLogToJson(const std::vector<QueryRecord>& records,
                           uint64_t appended, size_t capacity);

}  // namespace iam::obs

#endif  // IAM_OBS_QUERY_LOG_H_
