#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>

namespace iam::obs {

namespace {

std::string FormatMicros(double us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

// JSON string escaping for span names (names are literals, but keep the
// export well-formed for any input).
std::string EscapeJson(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
  return out;
}

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder recorder;
  return recorder;
}

TraceRecorder::TraceRecorder() = default;

TraceRecorder::ThreadBuffer& TraceRecorder::BufferForThisThread() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    auto owned = std::make_unique<ThreadBuffer>();
    buffer = owned.get();
    util::MutexLock lock(mu_);
    buffer->tid = static_cast<int>(buffers_.size());
    buffers_.push_back(std::move(owned));
  }
  return *buffer;
}

void TraceRecorder::Record(const char* name, double ts_us, double dur_us) {
  ThreadBuffer& buffer = BufferForThisThread();
  TraceEvent event;
  event.name = name;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.tid = buffer.tid;
  util::MutexLock lock(buffer.mu);
  buffer.events.push_back(event);
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> all;
  {
    util::MutexLock lock(mu_);
    for (const auto& buffer : buffers_) {
      util::MutexLock buffer_lock(buffer->mu);
      all.insert(all.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              return std::strcmp(a.name, b.name) < 0;
            });
  return all;
}

std::string TraceRecorder::ToChromeTracingJson() const {
  const std::vector<TraceEvent> events = Events();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + EscapeJson(e.name) +
           "\",\"cat\":\"iam\",\"ph\":\"X\",\"ts\":" + FormatMicros(e.ts_us) +
           ",\"dur\":" + FormatMicros(e.dur_us) +
           ",\"pid\":1,\"tid\":" + std::to_string(e.tid) + "}";
  }
  out += "]}";
  return out;
}

bool TraceRecorder::WriteChromeTracingJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << ToChromeTracingJson();
  return static_cast<bool>(out);
}

std::vector<PhaseStats> TraceRecorder::Phases() const {
  std::map<std::string, PhaseStats> by_name;
  for (const TraceEvent& e : Events()) {
    PhaseStats& stats = by_name[e.name];
    if (stats.count == 0) stats.name = e.name;
    ++stats.count;
    const double ms = e.dur_us / 1e3;
    stats.total_ms += ms;
    stats.max_ms = std::max(stats.max_ms, ms);
  }
  std::vector<PhaseStats> phases;
  phases.reserve(by_name.size());
  for (auto& [name, stats] : by_name) phases.push_back(std::move(stats));
  std::sort(phases.begin(), phases.end(),
            [](const PhaseStats& a, const PhaseStats& b) {
              if (a.total_ms != b.total_ms) return a.total_ms > b.total_ms;
              return a.name < b.name;
            });
  return phases;
}

std::string TraceRecorder::PhaseTable() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-32s %8s %12s %12s %12s\n", "phase",
                "count", "total ms", "mean ms", "max ms");
  out += line;
  for (const PhaseStats& p : Phases()) {
    std::snprintf(line, sizeof(line), "%-32s %8llu %12.3f %12.3f %12.3f\n",
                  p.name.c_str(), static_cast<unsigned long long>(p.count),
                  p.total_ms, p.MeanMs(), p.max_ms);
    out += line;
  }
  return out;
}

void TraceRecorder::Clear() {
  util::MutexLock lock(mu_);
  for (const auto& buffer : buffers_) {
    util::MutexLock buffer_lock(buffer->mu);
    buffer->events.clear();
  }
}

}  // namespace iam::obs
