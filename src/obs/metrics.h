#ifndef IAM_OBS_METRICS_H_
#define IAM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace iam::obs {

// Process-wide metrics substrate (DESIGN.md §12). Three metric kinds —
// counters, gauges, fixed-boundary histograms — live in a named registry and
// are written from any thread without coordination:
//
//   - Counter increments land on a per-thread shard (relaxed atomic add on a
//     cache line the thread effectively owns), so the EstimateBatch /
//     ConditionalDistribution hot paths never contend on a shared line.
//   - Snapshots sum the shards and report metrics in name order, so a
//     snapshot is deterministic: event counters driven by deterministic work
//     (queries processed, samples drawn, zero-mass fallbacks) total
//     identically at any thread count and any interleaving.
//   - Instrumentation sites cache `Counter*` / `Histogram*` handles once
//     (registration takes a mutex; increments never do).
//
// Metric names follow the Prometheus charset [a-zA-Z_][a-zA-Z0-9_]* with an
// optional single label, e.g. GetCounter("iam_sampler_zero_mass_total",
// "column", "latitude") -> `iam_sampler_zero_mass_total{column="latitude"}`.

// Shard index of the calling thread: thread-local ticket modulo kShards.
// Distinct threads may share a shard (the adds stay atomic); what matters is
// that a thread keeps hitting the same line.
inline constexpr uint32_t kMetricShards = 16;  // power of two

uint32_t ThreadShardId();

inline uint32_t ThreadShard() { return ThreadShardId() & (kMetricShards - 1); }

// Monotone event count. Add() is the hot-path entry: one relaxed fetch_add on
// the caller's shard.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta = 1) {
    shards_[ThreadShard()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  // Sum over shards. Exact once writers are quiescent; a snapshot taken
  // mid-update may miss in-flight increments (never double-counts).
  uint64_t Total() const;

  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

// Last-write-wins scalar (losses, convergence deltas, pool occupancy).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);  // CAS loop; gauges are not hot-path metrics
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Mergeable summary of one histogram (or of several merged together):
// per-bucket counts plus count/sum. Bucket i covers (bounds[i-1], bounds[i]];
// the final bucket is the +Inf overflow. Merging adds counts bucket-wise, so
// merge is associative and commutative — the property that lets per-thread
// or per-process snapshots combine in any order (unit-tested).
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;            // ascending boundaries
  std::vector<uint64_t> bucket_counts;   // bounds.size() + 1 entries
  uint64_t count = 0;
  double sum = 0.0;
  // Per-bucket exemplar: the most recent query-log sequence number recorded
  // into the bucket (0 = none), so a p99 bucket links to the concrete
  // QueryLog records behind it (DESIGN.md §17). Empty when the histogram has
  // never seen an exemplar; otherwise bounds.size() + 1 entries.
  std::vector<uint64_t> exemplar_seq;

  // Linear-interpolation quantile from the bucket counts, so snapshots
  // report p95/p99 without retaining individual samples. q in [0, 1].
  // Overflow-bucket mass resolves to the last finite boundary.
  double Quantile(double q) const;
  double Mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }

  // Adds `other` into this summary; boundaries must match. Exemplars take
  // the bucket-wise max (sequence numbers are monotone, so max = newest);
  // an empty exemplar vector merges as all-zeros.
  void Merge(const HistogramSnapshot& other);
};

// Fixed-boundary histogram, sharded like Counter: Record() bucket-searches
// (binary, ~20 boundaries) and lands two relaxed atomic adds plus one CAS
// on the caller's shard.
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double value);
  // Like Record, but also stamps `exemplar_seq` (a QueryLog sequence number)
  // onto the bucket the value lands in: one extra relaxed store, so tail
  // buckets stay linked to the newest diagnostic record that hit them.
  void Record(double value, uint64_t exemplar_seq);
  HistogramSnapshot Snapshot() const;  // name field left empty
  void Reset();

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<uint64_t>> buckets;
    std::vector<std::atomic<uint64_t>> exemplars;
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::array<Shard, kMetricShards> shards_;
};

// Default latency boundaries for the *_seconds histograms: 1/2.5/5 steps from
// 1 microsecond to 100 seconds.
std::span<const double> LatencyBounds();

// Ordered (name-sorted) snapshot of every registered metric.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}} with
// per-histogram count/sum/mean/p50/p95/p99. Deterministic key order.
std::string MetricsToJson(const MetricsSnapshot& snapshot);

// Prometheus text exposition format (# TYPE lines, _bucket/_sum/_count
// expansions for histograms, cumulative le= buckets).
std::string MetricsToPrometheus(const MetricsSnapshot& snapshot);

// Name-keyed registry. Registration (GetX) locks; returned references stay
// valid for the registry's lifetime, so call sites resolve once and cache.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // The process-global registry every built-in instrumentation point uses.
  static MetricRegistry& Global();

  Counter& GetCounter(const std::string& name) IAM_EXCLUDES(mu_);
  Counter& GetCounter(const std::string& name, const std::string& label_key,
                      const std::string& label_value) IAM_EXCLUDES(mu_);
  Gauge& GetGauge(const std::string& name) IAM_EXCLUDES(mu_);
  Gauge& GetGauge(const std::string& name, const std::string& label_key,
                  const std::string& label_value) IAM_EXCLUDES(mu_);
  // Boundaries are fixed at first registration; later calls with the same
  // name must pass matching boundaries.
  Histogram& GetHistogram(const std::string& name,
                          std::span<const double> bounds) IAM_EXCLUDES(mu_);
  // Labeled series, e.g. GetHistogram("iam_serve_batch_size", "shard", "0",
  // ...) -> `iam_serve_batch_size{shard="0"}`. Series of one family share the
  // Prometheus # TYPE header and render the `le` bucket label merged into the
  // series' label block; the name-sorted snapshot keeps sibling shards
  // contiguous and deterministic.
  Histogram& GetHistogram(const std::string& name,
                          const std::string& label_key,
                          const std::string& label_value,
                          std::span<const double> bounds) IAM_EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const IAM_EXCLUDES(mu_);

  // Zeroes every registered metric (tests measure deltas from a clean
  // slate). Handles stay valid.
  void ResetAll() IAM_EXCLUDES(mu_);

 private:
  mutable util::Mutex mu_{util::LockRank::kMetricsRegistry};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      IAM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ IAM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      IAM_GUARDED_BY(mu_);
};

}  // namespace iam::obs

#endif  // IAM_OBS_METRICS_H_
