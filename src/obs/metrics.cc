#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/macros.h"

namespace iam::obs {

namespace {

// Prometheus metric-name charset; labels reuse it for keys.
bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || c == '_' || (digit && i > 0))) return false;
  }
  return true;
}

std::string LabeledName(const std::string& name, const std::string& label_key,
                        const std::string& label_value) {
  IAM_CHECK_MSG(ValidMetricName(name), "bad metric name");
  IAM_CHECK_MSG(ValidMetricName(label_key), "bad label key");
  // Label values are free-form (column names, user strings): quotes and
  // backslashes are escaped per the Prometheus exposition format rather
  // than rejected, so `col"x` renders as label_key="col\"x".
  std::string escaped;
  escaped.reserve(label_value.size());
  for (const char c : label_value) {
    if (c == '"' || c == '\\') escaped += '\\';
    escaped += c;
  }
  return name + "{" + label_key + "=\"" + escaped + "\"}";
}

// The metric family a sample line belongs to: the name up to the label block.
std::string FamilyOf(const std::string& name) {
  const size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// JSON object keys carry the full sample name, label block included — the
// embedded quotes of `name{key="value"}` must be escaped.
std::string JsonKey(const std::string& name) {
  std::string out = "\"";
  for (const char c : name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

uint32_t ThreadShardId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

uint64_t Counter::Total() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()) {
  IAM_CHECK_MSG(!bounds_.empty(), "histogram needs at least one boundary");
  IAM_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram boundaries must ascend");
  for (Shard& s : shards_) {
    s.buckets = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
    s.exemplars = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::Record(double value) { Record(value, 0); }

void Histogram::Record(double value, uint64_t exemplar_seq) {
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  Shard& s = shards_[ThreadShard()];
  s.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  double sum = s.sum.load(std::memory_order_relaxed);
  while (!s.sum.compare_exchange_weak(sum, sum + value,
                                      std::memory_order_relaxed)) {
  }
  if (exemplar_seq != 0) {
    s.exemplars[bucket].store(exemplar_seq, std::memory_order_relaxed);
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.bucket_counts.assign(bounds_.size() + 1, 0);
  std::vector<uint64_t> exemplars(bounds_.size() + 1, 0);
  bool any_exemplar = false;
  for (const Shard& s : shards_) {
    for (size_t b = 0; b < s.buckets.size(); ++b) {
      snap.bucket_counts[b] += s.buckets[b].load(std::memory_order_relaxed);
      // Sequence numbers are monotone, so the max across shards is the most
      // recently stamped exemplar for the bucket.
      const uint64_t seq = s.exemplars[b].load(std::memory_order_relaxed);
      if (seq > exemplars[b]) exemplars[b] = seq;
      any_exemplar |= seq != 0;
    }
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum += s.sum.load(std::memory_order_relaxed);
  }
  if (any_exemplar) snap.exemplar_seq = std::move(exemplars);
  return snap;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    for (auto& e : s.exemplars) e.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
  }
}

double HistogramSnapshot::Quantile(double q) const {
  IAM_CHECK(q >= 0.0 && q <= 1.0);
  if (count == 0) return 0.0;
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < bucket_counts.size(); ++b) {
    const uint64_t in_bucket = bucket_counts[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (b == bucket_counts.size() - 1) {
        // Overflow bucket: no finite upper edge to interpolate toward.
        return bounds.back();
      }
      const double lo = b == 0 ? 0.0 : bounds[b - 1];
      const double hi = bounds[b];
      const double frac = (rank - static_cast<double>(cumulative)) /
                          static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return bounds.back();
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  IAM_CHECK_MSG(bounds == other.bounds,
                "merged histograms must share boundaries");
  for (size_t b = 0; b < bucket_counts.size(); ++b) {
    bucket_counts[b] += other.bucket_counts[b];
  }
  count += other.count;
  sum += other.sum;
  if (!other.exemplar_seq.empty()) {
    if (exemplar_seq.empty()) {
      exemplar_seq.assign(bucket_counts.size(), 0);
    }
    for (size_t b = 0; b < exemplar_seq.size(); ++b) {
      exemplar_seq[b] = std::max(exemplar_seq[b], other.exemplar_seq[b]);
    }
  }
}

std::span<const double> LatencyBounds() {
  // 1 / 2.5 / 5 per decade, 1us .. 100s.
  static const double kBounds[] = {
      1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
      1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1,
      1.0,  2.5,    5.0,  1e1,  2.5e1,  5e1,  1e2};
  return kBounds;
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry registry;
  return registry;
}

Counter& MetricRegistry::GetCounter(const std::string& name) {
  IAM_CHECK_MSG(ValidMetricName(name), "bad metric name");
  util::MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Counter& MetricRegistry::GetCounter(const std::string& name,
                                    const std::string& label_key,
                                    const std::string& label_value) {
  const std::string full = LabeledName(name, label_key, label_value);
  util::MutexLock lock(mu_);
  auto& slot = counters_[full];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::GetGauge(const std::string& name) {
  IAM_CHECK_MSG(ValidMetricName(name), "bad metric name");
  util::MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Gauge& MetricRegistry::GetGauge(const std::string& name,
                                const std::string& label_key,
                                const std::string& label_value) {
  const std::string full = LabeledName(name, label_key, label_value);
  util::MutexLock lock(mu_);
  auto& slot = gauges_[full];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::GetHistogram(const std::string& name,
                                        std::span<const double> bounds) {
  IAM_CHECK_MSG(ValidMetricName(name), "bad metric name");
  util::MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(bounds);
  } else {
    IAM_CHECK_MSG(slot->bounds() ==
                      std::vector<double>(bounds.begin(), bounds.end()),
                  "histogram re-registered with different boundaries");
  }
  return *slot;
}

Histogram& MetricRegistry::GetHistogram(const std::string& name,
                                        const std::string& label_key,
                                        const std::string& label_value,
                                        std::span<const double> bounds) {
  const std::string full = LabeledName(name, label_key, label_value);
  util::MutexLock lock(mu_);
  auto& slot = histograms_[full];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(bounds);
  } else {
    IAM_CHECK_MSG(slot->bounds() ==
                      std::vector<double>(bounds.begin(), bounds.end()),
                  "histogram re-registered with different boundaries");
  }
  return *slot;
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  // std::map iteration is name-ordered, which makes the snapshot layout (and
  // every export derived from it) independent of registration order and of
  // thread interleaving.
  MetricsSnapshot snap;
  util::MutexLock lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->Total());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h = histogram->Snapshot();
    h.name = name;
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void MetricRegistry::ResetAll() {
  util::MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ",";
    first = false;
    out += JsonKey(name) + ":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ",";
    first = false;
    out += JsonKey(name) + ":" + FormatDouble(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& h : snapshot.histograms) {
    if (!first) out += ",";
    first = false;
    out += JsonKey(h.name) + ":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + FormatDouble(h.sum) +
           ",\"mean\":" + FormatDouble(h.Mean()) +
           ",\"p50\":" + FormatDouble(h.Quantile(0.5)) +
           ",\"p95\":" + FormatDouble(h.Quantile(0.95)) +
           ",\"p99\":" + FormatDouble(h.Quantile(0.99));
    if (!h.exemplar_seq.empty()) {
      // Per-bucket query-log sequence ids (0 = none): a slow bucket links
      // straight to the QueryLog records that landed in it.
      out += ",\"exemplar_seq\":[";
      for (size_t b = 0; b < h.exemplar_seq.size(); ++b) {
        if (b > 0) out += ",";
        out += std::to_string(h.exemplar_seq[b]);
      }
      out += "]";
    }
    out += "}";
  }
  out += "}}";
  return out;
}

std::string MetricsToPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  // Counters and gauges arrive name-sorted, so labeled series of one family
  // are contiguous and the # TYPE header is emitted once per family.
  std::string last_family;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string family = FamilyOf(name);
    if (family != last_family) {
      out += "# TYPE " + family + " counter\n";
      last_family = family;
    }
    out += name + " " + std::to_string(value) + "\n";
  }
  last_family.clear();
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string family = FamilyOf(name);
    if (family != last_family) {
      out += "# TYPE " + family + " gauge\n";
      last_family = family;
    }
    out += name + " " + FormatDouble(value) + "\n";
  }
  last_family.clear();
  for (const HistogramSnapshot& h : snapshot.histograms) {
    // A labeled series `family{k="v"}` renders as family_bucket{k="v",le=...}
    // / family_sum{k="v"} / family_count{k="v"}; the # TYPE header is still
    // one per family (labeled siblings arrive contiguously, name-sorted).
    const std::string family = FamilyOf(h.name);
    const size_t brace = h.name.find('{');
    const std::string labels =  // without braces, e.g. `shard="0"`
        brace == std::string::npos
            ? ""
            : h.name.substr(brace + 1, h.name.size() - brace - 2);
    const std::string suffix = labels.empty() ? "" : "{" + labels + "}";
    if (family != last_family) {
      out += "# TYPE " + family + " histogram\n";
      last_family = family;
    }
    uint64_t cumulative = 0;
    const std::string le_prefix =
        family + "_bucket{" + (labels.empty() ? "" : labels + ",") + "le=\"";
    for (size_t b = 0; b < h.bounds.size(); ++b) {
      cumulative += h.bucket_counts[b];
      out += le_prefix + FormatDouble(h.bounds[b]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += le_prefix + "+Inf\"} " + std::to_string(h.count) + "\n";
    out += family + "_sum" + suffix + " " + FormatDouble(h.sum) + "\n";
    out += family + "_count" + suffix + " " + std::to_string(h.count) + "\n";
  }
  return out;
}

}  // namespace iam::obs
