#include "nn/layers.h"

#include <cmath>

namespace iam::nn {

MaskedLinear::MaskedLinear(int in_features, int out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      param_count_(static_cast<size_t>(out_features) * in_features +
                   out_features),
      weight_(out_features, in_features),
      bias_(1, out_features) {
  IAM_CHECK(in_features > 0 && out_features > 0);
  const double bound = std::sqrt(6.0 / in_features);
  for (int o = 0; o < out_; ++o) {
    for (int i = 0; i < in_; ++i) {
      weight_.value.at(o, i) = static_cast<float>(rng.Uniform(-bound, bound));
    }
  }
  // Biases start at zero.
}

void MaskedLinear::SetMask(Matrix mask) {
  IAM_CHECK(mask.rows() == out_ && mask.cols() == in_);
  mask_ = std::move(mask);
  ApplyMaskToWeights();
  // Cache the mask-aware parameter count; an O(out*in) scan per
  // ParameterCount() call adds up in the model-size sweeps.
  param_count_ = static_cast<size_t>(out_);  // biases
  const float* m = mask_.data();
  for (size_t k = 0; k < mask_.size(); ++k) {
    if (m[k] != 0.0f) ++param_count_;
  }
}

void MaskedLinear::ApplyMaskToWeights() {
  const float* IAM_RESTRICT m = mask_.data();
  float* IAM_RESTRICT wv = weight_.value.data();
  for (size_t k = 0; k < mask_.size(); ++k) {
    if (m[k] == 0.0f) wv[k] = 0.0f;
  }
}

void MaskedLinear::Forward(const Matrix& x, Matrix& y,
                           Matrix& wt_scratch) const {
  // Masked weights are kept exactly zero (masked at init, gradients masked on
  // every backward pass, and Adam leaves zero-gradient entries untouched), so
  // the plain GEMM is equivalent to (W∘M).
  LinearForward(x, weight_.value,
                {bias_.value.data(), static_cast<size_t>(out_)}, y,
                wt_scratch);
}

void MaskedLinear::Forward(const Matrix& x, Matrix& y) const {
  Matrix wt_scratch;
  Forward(x, y, wt_scratch);
}

void MaskedLinear::Backward(const Matrix& x, const Matrix& dy, Matrix& dx) {
  LinearBackward(x, weight_.value, dy, dx, weight_.grad,
                 {bias_.grad.data(), static_cast<size_t>(out_)});
  if (has_mask()) {
    const float* IAM_RESTRICT m = mask_.data();
    float* IAM_RESTRICT wg = weight_.grad.data();
    for (size_t k = 0; k < mask_.size(); ++k) {
      if (m[k] == 0.0f) wg[k] = 0.0f;
    }
  }
}

void ReluForward(const Matrix& x, Matrix& y) {
  y.ResizeUninitialized(x.rows(), x.cols());
  const float* in = x.data();
  float* out = y.data();
  for (size_t i = 0; i < x.size(); ++i) out[i] = in[i] > 0.0f ? in[i] : 0.0f;
}

void ReluBackward(const Matrix& x, const Matrix& dy, Matrix& dx) {
  IAM_CHECK(x.rows() == dy.rows() && x.cols() == dy.cols());
  dx.ResizeUninitialized(x.rows(), x.cols());
  const float* in = x.data();
  const float* g = dy.data();
  float* out = dx.data();
  for (size_t i = 0; i < x.size(); ++i) out[i] = in[i] > 0.0f ? g[i] : 0.0f;
}

}  // namespace iam::nn
