#include "nn/matrix.h"

namespace iam::nn {

void LinearForward(const Matrix& x, const Matrix& w,
                   std::span<const float> bias, Matrix& y) {
  const int batch = x.rows();
  const int in = x.cols();
  const int out = w.rows();
  IAM_CHECK(w.cols() == in);
  IAM_CHECK(bias.empty() || static_cast<int>(bias.size()) == out);
  y.ResizeUninitialized(batch, out);  // every element is written below

  for (int b = 0; b < batch; ++b) {
    const float* xb = x.row(b);
    float* yb = y.row(b);
    for (int o = 0; o < out; ++o) {
      const float* wo = w.row(o);
      float acc = bias.empty() ? 0.0f : bias[o];
      for (int i = 0; i < in; ++i) acc += xb[i] * wo[i];
      yb[o] = acc;
    }
  }
}

void LinearBackward(const Matrix& x, const Matrix& w, const Matrix& dy,
                    Matrix& dx, Matrix& dw, std::span<float> dbias) {
  const int batch = x.rows();
  const int in = x.cols();
  const int out = w.rows();
  IAM_CHECK(dy.rows() == batch && dy.cols() == out);
  IAM_CHECK(dw.rows() == out && dw.cols() == in);
  dx.ResizeUninitialized(batch, in);
  dx.Zero();

  for (int b = 0; b < batch; ++b) {
    const float* dyb = dy.row(b);
    const float* xb = x.row(b);
    float* dxb = dx.row(b);
    for (int o = 0; o < out; ++o) {
      const float g = dyb[o];
      if (g == 0.0f) continue;
      const float* wo = w.row(o);
      float* dwo = dw.row(o);
      for (int i = 0; i < in; ++i) {
        dxb[i] += g * wo[i];
        dwo[i] += g * xb[i];
      }
      if (!dbias.empty()) dbias[o] += g;
    }
  }
}

}  // namespace iam::nn
