#ifndef IAM_NN_LAYERS_H_
#define IAM_NN_LAYERS_H_

#include <vector>

#include "nn/kernels.h"
#include "nn/matrix.h"
#include "util/random.h"

namespace iam::nn {

// A trainable tensor: value + gradient (same shape). Optimizers own the
// moment buffers; layers own Parameter instances.
struct Parameter {
  Matrix value;
  Matrix grad;

  Parameter() = default;
  Parameter(int rows, int cols) : value(rows, cols), grad(rows, cols) {}

  void ZeroGrad() { grad.Zero(); }
  size_t size() const { return value.size(); }
};

// Fully connected layer with an optional binary connectivity mask (for MADE).
// The mask is applied multiplicatively to the weights on every forward and to
// the weight gradient on every backward, so masked connections stay exactly
// zero throughout training.
class MaskedLinear {
 public:
  // Kaiming-uniform initialization scaled by fan-in.
  MaskedLinear(int in_features, int out_features, Rng& rng);

  // mask: [out, in] of {0, 1}. Call once after construction.
  void SetMask(Matrix mask);
  bool has_mask() const { return mask_.rows() > 0; }

  int in_features() const { return in_; }
  int out_features() const { return out_; }

  // y = x (W∘M)^T + b. `wt_scratch` is the caller-owned transpose buffer the
  // large-batch kernel path needs (see nn::LinearForward); holding one per
  // caller keeps the layer free of mutable state, so a const MaskedLinear is
  // safely shared across threads.
  void Forward(const Matrix& x, Matrix& y, Matrix& wt_scratch) const;
  // Convenience overload with a throwaway scratch (tests, one-off calls);
  // re-allocates the transpose buffer on every large-batch call.
  void Forward(const Matrix& x, Matrix& y) const;

  // Accumulates weight/bias grads; writes dx (input gradient).
  void Backward(const Matrix& x, const Matrix& dy, Matrix& dx);

  void ZeroGrad() {
    weight_.ZeroGrad();
    bias_.ZeroGrad();
  }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  const Parameter& weight() const { return weight_; }
  const Parameter& bias() const { return bias_; }
  const Matrix& mask() const { return mask_; }

  // Number of scalar parameters actually trainable (mask-aware); used for
  // the model-size experiments (Tables 6 and 12). Cached at construction /
  // SetMask time — the mask never changes afterwards.
  size_t ParameterCount() const { return param_count_; }

 private:
  // Re-applies the mask to weight_.value (used after optimizer steps; Adam's
  // epsilon can otherwise drift masked weights off zero when gradients are
  // exactly zero but moments are not).
  void ApplyMaskToWeights();

  int in_;
  int out_;
  size_t param_count_;
  Parameter weight_;  // [out, in]
  Parameter bias_;    // [1, out]
  Matrix mask_;       // [out, in] or empty
};

// Elementwise ReLU with cached forward input.
void ReluForward(const Matrix& x, Matrix& y);
// dx = dy ∘ 1[x > 0]
void ReluBackward(const Matrix& x, const Matrix& dy, Matrix& dx);

}  // namespace iam::nn

#endif  // IAM_NN_LAYERS_H_
