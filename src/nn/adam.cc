#include "nn/adam.h"

#include <cmath>

namespace iam::nn {

void Adam::Register(Parameter* param) {
  IAM_CHECK(param != nullptr);
  Slot slot;
  slot.param = param;
  slot.m.assign(param->size(), 0.0f);
  slot.v.assign(param->size(), 0.0f);
  slots_.push_back(std::move(slot));
}

void Adam::Step() {
  ++step_;
  const double b1 = options_.beta1;
  const double b2 = options_.beta2;
  const double bias1 = 1.0 - std::pow(b1, step_);
  const double bias2 = 1.0 - std::pow(b2, step_);
  const double lr = options_.learning_rate;
  const double eps = options_.epsilon;

  for (Slot& slot : slots_) {
    float* value = slot.param->value.data();
    const float* grad = slot.param->grad.data();
    const size_t n = slot.param->size();
    for (size_t i = 0; i < n; ++i) {
      const double g = grad[i];
      if (g == 0.0 && slot.m[i] == 0.0f && slot.v[i] == 0.0f) {
        // Masked / untouched weights: skip so they stay exactly zero.
        continue;
      }
      slot.m[i] = static_cast<float>(b1 * slot.m[i] + (1.0 - b1) * g);
      slot.v[i] = static_cast<float>(b2 * slot.v[i] + (1.0 - b2) * g * g);
      const double m_hat = slot.m[i] / bias1;
      const double v_hat = slot.v[i] / bias2;
      value[i] -= static_cast<float>(lr * m_hat / (std::sqrt(v_hat) + eps));
    }
  }
}

void Adam::ZeroGrad() {
  for (Slot& slot : slots_) slot.param->ZeroGrad();
}

}  // namespace iam::nn
