#ifndef IAM_NN_EVAL_WORKSPACE_H_
#define IAM_NN_EVAL_WORKSPACE_H_

#include <cstdint>
#include <vector>

#include "nn/kernels.h"
#include "nn/matrix.h"

namespace iam::nn {

// Per-caller scratch buffers for evaluating a feed-forward stack. Layers and
// models hold only immutable parameters; every activation produced during a
// forward pass lives here, owned by the caller. Two callers with two
// workspaces can therefore evaluate the same model concurrently, and the
// training loop can keep its activation caches alive across the backward
// pass without blocking inference.
//
// Buffers grow on demand and are reused across calls, so a long-lived
// workspace amortizes all allocation after the first batch.
struct EvalWorkspace {
  Matrix input;                 // encoded input batch [B, input_width]
  SparseRows sparse_input;      // sparse encoding of the batch (eval path)
  std::vector<Matrix> pre_act;  // pre-activation z_i per layer [B, width_i]
  std::vector<Matrix> act;      // post-activation a_i per layer [B, width_i]
  Matrix output;                // final layer output (logits) [B, out_width]

  // Transposed ([in, out]) copies of the owning model's layer weights — the
  // layout the strip kernels and the sparse first-layer forward consume.
  // The cache is keyed by the model's weight version: models bump their
  // version on every weight mutation (TrainStep, Deserialize), and the
  // model's forward entry points rebuild this cache when `wt_version`
  // disagrees. Versions are drawn from one process-global counter, so a
  // workspace carried across model instances can never alias a stale cache.
  std::vector<Matrix> wt;
  uint64_t wt_version = 0;  // 0 == never filled

  // Ensures one pre/post activation slot per layer.
  void EnsureDepth(size_t num_layers) {
    if (pre_act.size() < num_layers) pre_act.resize(num_layers);
    if (act.size() < num_layers) act.resize(num_layers);
  }
};

}  // namespace iam::nn

#endif  // IAM_NN_EVAL_WORKSPACE_H_
