#ifndef IAM_NN_EVAL_WORKSPACE_H_
#define IAM_NN_EVAL_WORKSPACE_H_

#include <vector>

#include "nn/matrix.h"

namespace iam::nn {

// Per-caller scratch buffers for evaluating a feed-forward stack. Layers and
// models hold only immutable parameters; every activation produced during a
// forward pass lives here, owned by the caller. Two callers with two
// workspaces can therefore evaluate the same model concurrently, and the
// training loop can keep its activation caches alive across the backward
// pass without blocking inference.
//
// Buffers grow on demand and are reused across calls, so a long-lived
// workspace amortizes all allocation after the first batch.
struct EvalWorkspace {
  Matrix input;                 // encoded input batch [B, input_width]
  std::vector<Matrix> pre_act;  // pre-activation z_i per layer [B, width_i]
  std::vector<Matrix> act;      // post-activation a_i per layer [B, width_i]
  Matrix output;                // final layer output (logits) [B, out_width]

  // Ensures one pre/post activation slot per layer.
  void EnsureDepth(size_t num_layers) {
    if (pre_act.size() < num_layers) pre_act.resize(num_layers);
    if (act.size() < num_layers) act.resize(num_layers);
  }
};

}  // namespace iam::nn

#endif  // IAM_NN_EVAL_WORKSPACE_H_
